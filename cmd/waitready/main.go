// Command waitready blocks until a cgramapd server answers its health
// check, then exits 0. It exists so scripts (CI daemon-integration, local
// demos) share the service client's polling loop instead of hand-rolling
// curl retries with their own timeout arithmetic.
//
// Usage:
//
//	waitready -url http://127.0.0.1:8537 -timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"cgramap/internal/service"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8537", "server base URL")
	timeout := flag.Duration("timeout", 30*time.Second, "give up after this long")
	interval := flag.Duration("interval", service.DefaultPollInterval, "poll cadence")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := service.NewClient(*url)
	c.PollInterval = *interval
	if err := c.WaitHealthy(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "waitready:", err)
		os.Exit(1)
	}
	fmt.Println("ready:", c.BaseURL)
}
