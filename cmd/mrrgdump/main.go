// Command mrrgdump generates the MRRG of an architecture and prints its
// statistics, node listing, or Graphviz DOT rendering — handy for
// inspecting how primitives expand (the paper's Figs. 1–4).
//
// -contexts accepts a comma-separated II list (e.g. -contexts 1,2,4,2):
// every II is dumped in order, and generation routes through the
// content-addressed MRRG cache, so a repeated II is served from memory.
// -stats prints the cache's hit/miss counters afterwards.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"cgramap/internal/arch"
	"cgramap/internal/mrrg"
)

func main() {
	var (
		archFile = flag.String("arch", "", "architecture XML file (default: grid flags)")
		rows     = flag.Int("rows", 4, "grid rows")
		cols     = flag.Int("cols", 4, "grid columns")
		contexts = flag.String("contexts", "1", "execution contexts: a single II or a comma-separated list (repeats hit the MRRG cache)")
		diagonal = flag.Bool("diagonal", false, "diagonal interconnect")
		hetero   = flag.Bool("heterogeneous", false, "multipliers in only half the blocks")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		nodes    = flag.Bool("nodes", false, "list every node")
		stats    = flag.Bool("stats", false, "print MRRG cache hit/miss counts after dumping")
		syms     = flag.Bool("symmetries", false, "print the fabric's verified automorphism generators and primitive orbits")
	)
	flag.Parse()
	if err := run(*archFile, *rows, *cols, *contexts, *diagonal, *hetero, *dot, *nodes, *stats, *syms); err != nil {
		fmt.Fprintln(os.Stderr, "mrrgdump:", err)
		os.Exit(1)
	}
}

func run(archFile string, rows, cols int, contexts string, diagonal, hetero, dot, nodes, stats, syms bool) error {
	iis, err := parseContexts(contexts)
	if err != nil {
		return err
	}
	base, err := loadArch(archFile, rows, cols, diagonal, hetero)
	if err != nil {
		return err
	}
	if syms {
		printSymmetries(base)
	}
	cache := mrrg.NewCache(len(iis))
	for _, ii := range iis {
		a := *base
		a.Contexts = ii
		g, err := cache.Generate(&a)
		if err != nil {
			return err
		}
		if dot {
			if err := g.WriteDOT(os.Stdout); err != nil {
				return err
			}
			continue
		}
		st := g.Stats()
		as := a.Stats()
		fmt.Printf("architecture %s: %d FUs, %d muxes, %d regs, %d wires, %d connections\n",
			a.Name, as.FUs, as.Muxes, as.Regs, as.Wires, as.Conns)
		fmt.Printf("MRRG (%d contexts): %d nodes (%d FuncUnit, %d RouteRes), %d edges, %d cross-context\n",
			g.Contexts, st.Nodes, st.FuncUnits, st.RouteRes, st.Edges, st.CrossContextEdges)
		if nodes {
			for _, n := range g.Nodes {
				fmt.Printf("  %-40s %-6s ctx=%d fanin=%d fanout=%d\n",
					n.Name, n.Kind, n.Context, len(n.Fanins), len(n.Fanouts))
			}
		}
	}
	if stats {
		cs := cache.Stats()
		fmt.Printf("MRRG cache: %d hits, %d misses, %d entries (~%d bytes)\n",
			cs.Hits, cs.Misses, cs.Entries, cs.Bytes)
	}
	return nil
}

// printSymmetries reports the fabric's verified automorphism group: the
// generator names that survived netlist verification and the primitive
// orbits of the generated group (a size histogram; singleton orbits —
// primitives fixed by every generator — are summarised as a count).
func printSymmetries(a *arch.Arch) {
	s := arch.Discover(a)
	if s.Trivial() {
		fmt.Printf("symmetries %s: none verified\n", a.Name)
		return
	}
	names := make([]string, len(s.Gens))
	for i, g := range s.Gens {
		names[i] = g.Name
	}
	orbits := s.Orbits()
	sizes := make(map[int]int)
	moved := 0
	for _, o := range orbits {
		sizes[len(o)]++
		moved += len(o)
	}
	var sizeKeys []int
	for sz := range sizes {
		sizeKeys = append(sizeKeys, sz)
	}
	sort.Ints(sizeKeys)
	var hist []string
	for _, sz := range sizeKeys {
		hist = append(hist, fmt.Sprintf("%dx size %d", sizes[sz], sz))
	}
	fmt.Printf("symmetries %s: %d generators (%s)\n", a.Name, len(s.Gens), strings.Join(names, ", "))
	fmt.Printf("  %d non-trivial orbits (%s), %d primitives moved, %d fixed\n",
		len(orbits), strings.Join(hist, ", "), moved, len(a.Prims)-moved)
}

// parseContexts splits the -contexts value into an II list.
func parseContexts(s string) ([]int, error) {
	var iis []int
	for _, tok := range strings.Split(s, ",") {
		ii, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || ii < 1 {
			return nil, fmt.Errorf("bad context count %q", tok)
		}
		iis = append(iis, ii)
	}
	return iis, nil
}

// loadArch reads the architecture XML or builds the requested grid (at a
// context count of 1; each dump overrides Contexts per II).
func loadArch(archFile string, rows, cols int, diagonal, hetero bool) (*arch.Arch, error) {
	if archFile != "" {
		f, err := os.Open(archFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return arch.ReadXML(f)
	}
	ic := arch.Orthogonal
	if diagonal {
		ic = arch.Diagonal
	}
	return arch.Grid(arch.GridSpec{
		Rows: rows, Cols: cols,
		Interconnect: ic,
		Homogeneous:  !hetero,
		Contexts:     1,
	})
}
