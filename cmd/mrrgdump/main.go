// Command mrrgdump generates the MRRG of an architecture and prints its
// statistics, node listing, or Graphviz DOT rendering — handy for
// inspecting how primitives expand (the paper's Figs. 1–4).
package main

import (
	"flag"
	"fmt"
	"os"

	"cgramap/internal/arch"
	"cgramap/internal/mrrg"
)

func main() {
	var (
		archFile = flag.String("arch", "", "architecture XML file (default: grid flags)")
		rows     = flag.Int("rows", 4, "grid rows")
		cols     = flag.Int("cols", 4, "grid columns")
		contexts = flag.Int("contexts", 1, "execution contexts")
		diagonal = flag.Bool("diagonal", false, "diagonal interconnect")
		hetero   = flag.Bool("heterogeneous", false, "multipliers in only half the blocks")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		nodes    = flag.Bool("nodes", false, "list every node")
	)
	flag.Parse()
	if err := run(*archFile, *rows, *cols, *contexts, *diagonal, *hetero, *dot, *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "mrrgdump:", err)
		os.Exit(1)
	}
}

func run(archFile string, rows, cols, contexts int, diagonal, hetero, dot, nodes bool) error {
	var a *arch.Arch
	var err error
	if archFile != "" {
		f, err2 := os.Open(archFile)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		a, err = arch.ReadXML(f)
	} else {
		ic := arch.Orthogonal
		if diagonal {
			ic = arch.Diagonal
		}
		a, err = arch.Grid(arch.GridSpec{
			Rows: rows, Cols: cols,
			Interconnect: ic,
			Homogeneous:  !hetero,
			Contexts:     contexts,
		})
	}
	if err != nil {
		return err
	}
	g, err := mrrg.Generate(a)
	if err != nil {
		return err
	}
	if dot {
		return g.WriteDOT(os.Stdout)
	}
	st := g.Stats()
	as := a.Stats()
	fmt.Printf("architecture %s: %d FUs, %d muxes, %d regs, %d wires, %d connections\n",
		a.Name, as.FUs, as.Muxes, as.Regs, as.Wires, as.Conns)
	fmt.Printf("MRRG (%d contexts): %d nodes (%d FuncUnit, %d RouteRes), %d edges, %d cross-context\n",
		g.Contexts, st.Nodes, st.FuncUnits, st.RouteRes, st.Edges, st.CrossContextEdges)
	if nodes {
		for _, n := range g.Nodes {
			fmt.Printf("  %-40s %-6s ctx=%d fanin=%d fanout=%d\n",
				n.Name, n.Kind, n.Context, len(n.Fanins), len(n.Fanouts))
		}
	}
	return nil
}
