// Command experiments regenerates the paper's evaluation artifacts:
//
//	experiments table1                 benchmark characteristics (Table 1)
//	experiments table2 [flags]         ILP mappability sweep (Table 2)
//	experiments fig8   [flags]         ILP vs simulated annealing (Fig. 8)
//	experiments ablate [flags]         pruning / engine ablation studies
//
// Each subcommand prints the corresponding table or chart to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cgramap/internal/anneal"
	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/budget"
	"cgramap/internal/exper"
	"cgramap/internal/mapper"
	"cgramap/internal/portfolio"
	"cgramap/internal/service"
	"cgramap/internal/solve/bb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		err = exper.RenderTable1(os.Stdout)
	case "table2":
		err = runTable2(args)
	case "fig8":
		err = runFig8(args)
	case "ablate":
		err = runAblate(args)
	case "all":
		err = runAll(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments <table1|table2|fig8|ablate|all> [flags]`)
}

// runAll regenerates every artifact in one pass, reusing the ILP sweep
// for both Table 2 and the ILP side of Fig. 8.
func runAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	cfg := sweepFlags(fs)
	saTimeout := fs.Duration("sa-timeout", 10*time.Second, "per-instance annealer budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	timeout, verbose := cfg.timeout, cfg.verbose
	names, err := parseBenchList(*cfg.benchList)
	if err != nil {
		return err
	}
	mOpts, err := cfg.mapperOptions()
	if err != nil {
		return err
	}
	fmt.Println("== Table 1: benchmark characteristics ==")
	if err := exper.RenderTable1(os.Stdout); err != nil {
		return err
	}

	fmt.Printf("\n== Table 2: ILP mappability (per-instance timeout %v) ==\n", *timeout)
	opts := exper.SweepOptions{Timeout: *timeout, Benchmarks: names, Mapper: mOpts}
	if *verbose {
		opts.Progress = os.Stderr
	}
	sweep, err := exper.RunSweep(context.Background(), opts)
	if err != nil {
		return err
	}
	if err := sweep.RenderTable2(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := sweep.RuntimeSummary(os.Stdout, time.Second, 10*time.Second, *timeout); err != nil {
		return err
	}

	fmt.Printf("\n== Fig. 8: ILP vs simulated annealing (SA budget %v) ==\n", *saTimeout)
	fOpts := exper.Fig8Options{ILPSweep: sweep, SATimeout: *saTimeout}
	if *verbose {
		fOpts.Progress = os.Stderr
	}
	rows, _, err := exper.RunFig8(context.Background(), fOpts)
	if err != nil {
		return err
	}
	if err := exper.RenderFig8(os.Stdout, rows, len(sweep.Benchmarks)); err != nil {
		return err
	}

	fmt.Println("\n== Ablations ==")
	return runAblate([]string{"-timeout", timeout.String()})
}

// sweepConfig holds the flags shared by every sweep subcommand.
type sweepConfig struct {
	timeout   *time.Duration
	benchList *string
	verbose   *bool
	engine    *string
	fallback  *bool
	daemon    *string
	workers   *int
	seed      *int64
	symmetry  *string
}

func sweepFlags(fs *flag.FlagSet) sweepConfig {
	return sweepConfig{
		timeout:   fs.Duration("timeout", 60*time.Second, "per-instance solver timeout"),
		benchList: fs.String("benchmarks", "", "comma-separated benchmark subset (default: all 19)"),
		verbose:   fs.Bool("v", false, "print per-instance progress to stderr"),
		engine:    fs.String("engine", "cdcl", "ILP engine per cell: cdcl | bb | portfolio"),
		fallback:  fs.Bool("fallback", false, "portfolio only: let cells degrade to heuristic witnesses"),
		daemon:    fs.String("daemon", "", "offload every solve to a cgramapd server at this URL (duplicate instances across sweeps hit its cache)"),
		workers:   fs.Int("workers", 1, "parallel solver workers per cell: clause-sharing gang width and process worker budget (0 = all CPUs or $CGRAMAP_WORKERS; 1 = sequential, reproducible runtimes)"),
		seed:      fs.Int64("seed", 0, "base solver seed (0 = engine defaults)"),
		symmetry:  fs.String("symmetry", "auto", "symmetry-breaking constraints per cell: auto (off at fixed II) | on | off; same answer either way"),
	}
}

// mapperOptions translates the engine flags into per-cell mapper options.
// The portfolio engine rides the cell's own deadline, so no separate
// timeout is set here. A daemon URL reroutes every cell through the
// cgramapd job service with the same engine name; -fallback and -workers
// do not cross the wire (the daemon solves with its own configuration).
func (c sweepConfig) mapperOptions() (mapper.Options, error) {
	engine, fallback, daemon := *c.engine, *c.fallback, *c.daemon
	if *c.workers < 0 {
		return mapper.Options{}, fmt.Errorf("-workers must be non-negative")
	}
	if *c.workers > 0 {
		budget.SetGlobal(*c.workers)
	}
	workers := *c.workers
	if workers == 0 {
		workers = budget.Global().Size()
	}
	sym, err := mapper.ParseSymmetryMode(*c.symmetry)
	if err != nil {
		return mapper.Options{}, err
	}
	opts := mapper.Options{Workers: workers, Seed: *c.seed, Symmetry: sym}
	if daemon != "" {
		switch engine {
		case "cdcl", "bb", "portfolio":
			client := service.NewClient(daemon)
			// Fail fast with a clear message rather than erroring per
			// cell if the daemon is down or still booting.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := client.WaitHealthy(ctx); err != nil {
				return opts, err
			}
			opts.MapWith = client.MapFunc(engine)
			return opts, nil
		default:
			return opts, fmt.Errorf("unknown engine %q", engine)
		}
	}
	switch engine {
	case "cdcl":
	case "bb":
		opts.Solver = bb.New()
	case "portfolio":
		opts.MapWith = portfolio.MapFunc(portfolio.Options{
			DisableFallback: !fallback, Workers: workers, Seed: *c.seed})
	default:
		return opts, fmt.Errorf("unknown engine %q", engine)
	}
	return opts, nil
}

func parseBenchList(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	names := strings.Split(s, ",")
	for _, n := range names {
		if _, err := bench.Get(n); err != nil {
			return nil, err
		}
	}
	return names, nil
}

func runTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	cfg := sweepFlags(fs)
	times := fs.Bool("times", false, "print the runtime distribution summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	timeout, verbose := cfg.timeout, cfg.verbose
	names, err := parseBenchList(*cfg.benchList)
	if err != nil {
		return err
	}
	mOpts, err := cfg.mapperOptions()
	if err != nil {
		return err
	}
	opts := exper.SweepOptions{Timeout: *timeout, Benchmarks: names, Mapper: mOpts}
	if *verbose {
		opts.Progress = os.Stderr
	}
	sweep, err := exper.RunSweep(context.Background(), opts)
	if err != nil {
		return err
	}
	if err := sweep.RenderTable2(os.Stdout); err != nil {
		return err
	}
	if *times {
		fmt.Println()
		return sweep.RuntimeSummary(os.Stdout, time.Second, 10*time.Second, *timeout)
	}
	return nil
}

func runFig8(args []string) error {
	fs := flag.NewFlagSet("fig8", flag.ExitOnError)
	cfg := sweepFlags(fs)
	saSeed := fs.Int64("sa-seed", 1, "annealer random seed")
	saMoves := fs.Int("sa-moves", 0, "annealer moves per temperature (0 = moderate default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	timeout, verbose := cfg.timeout, cfg.verbose
	names, err := parseBenchList(*cfg.benchList)
	if err != nil {
		return err
	}
	mOpts, err := cfg.mapperOptions()
	if err != nil {
		return err
	}
	opts := exper.Fig8Options{
		Sweep:     exper.SweepOptions{Timeout: *timeout, Benchmarks: names, Mapper: mOpts},
		SA:        anneal.Options{Seed: *saSeed, MovesPerTemp: *saMoves},
		SATimeout: *timeout,
	}
	if *verbose {
		opts.Sweep.Progress = os.Stderr
		opts.Progress = os.Stderr
	}
	rows, sweep, err := exper.RunFig8(context.Background(), opts)
	if err != nil {
		return err
	}
	if err := exper.RenderFig8(os.Stdout, rows, len(sweep.Benchmarks)); err != nil {
		return err
	}
	if anomalies := exper.VerifyILPAtLeastSA(rows); len(anomalies) > 0 {
		fmt.Printf("note: SA exceeded the ILP count on %v (possible only via ILP timeouts)\n", anomalies)
	}
	return nil
}

func runAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	cfg := sweepFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	timeout := cfg.timeout
	names, err := parseBenchList(*cfg.benchList)
	if err != nil {
		return err
	}
	if names == nil {
		names = []string{"accum", "2x2-f", "mult_10"}
	}
	fmt.Println("== Reachability pruning / counting presolve ablation (homo-orth-c1-4x4) ==")
	rows, err := exper.RunPruningAblation(context.Background(), *timeout, names,
		arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1})
	if err != nil {
		return err
	}
	if err := exper.RenderAblation(os.Stdout, rows); err != nil {
		return err
	}
	fmt.Println("\n== Solver engine cross-check (CDCL vs LP branch-and-bound, 2x2 grid) ==")
	rows, err = exper.RunEngineAblation(context.Background(), *timeout, []string{"2x2-f", "2x2-p"})
	if err != nil {
		return err
	}
	return exper.RenderAblation(os.Stdout, rows)
}
