// Command frontier generates workloads and charts mappability
// frontiers:
//
//	frontier generate [flags]      emit kernel-ladder DFGs / fabric XMLs
//	frontier run      [flags]      bisect kernel size against the mapper
//	frontier report   [flags]      re-render a saved frontier as markdown
//
// The run subcommand sweeps every requested (fabric, II) pair, bisecting
// the kernel ladder between -min and -max to find where mapping flips
// from feasible to infeasible-or-timeout. With -daemon it drives a
// cgramapd server instead of solving in-process, exercising the service
// layer end to end. Fixed seeds give byte-identical reports across runs
// (probe wall clocks are excluded on purpose).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cgramap/internal/budget"
	"cgramap/internal/mapper"
	"cgramap/internal/portfolio"
	"cgramap/internal/service"
	"cgramap/internal/solve/bb"
	"cgramap/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "frontier:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: frontier <generate|run|report> [flags]")
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "generate", "gen":
		return runGenerate(rest, stdout)
	case "run", "frontier":
		return runFrontier(rest, stdout)
	case "report":
		return runReport(rest, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want generate, run or report)", cmd)
	}
}

// runGenerate writes kernel-ladder DFGs and fabric XMLs, either to a
// corpus directory (-out) or concatenated to stdout. The output is a
// pure function of the flags, so regenerating a committed corpus is a
// no-op diff.
func runGenerate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	family := fs.String("family", "gen", "kernel family: dot | fir | stencil | reduce | conv2d | matvec | gen")
	min := fs.Int("min", 1, "smallest ladder rung")
	max := fs.Int("max", 8, "largest ladder rung")
	seed := fs.Int64("seed", 1, "random seed (gen family only)")
	fabrics := fs.String("fabrics", "", "also emit these fabrics as XML, e.g. \"8x8:diag;16x16\"")
	out := fs.String("out", "", "write one file per artifact into this directory (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *min < 1 || *max < *min {
		return fmt.Errorf("bad rung range [%d, %d]", *min, *max)
	}
	emit := func(name, text string) error {
		if *out == "" {
			_, err := fmt.Fprintf(stdout, "# -- %s --\n%s", name, text)
			return err
		}
		return os.WriteFile(filepath.Join(*out, name), []byte(text), 0o644)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	for n := *min; n <= *max; n++ {
		g, err := workload.Kernel(workload.Family(*family), n, *seed)
		if err != nil {
			return err
		}
		if err := emit(g.Name+".dfg", g.FormatString()); err != nil {
			return err
		}
	}
	if *fabrics != "" {
		specs, err := workload.ParseFabrics(*fabrics)
		if err != nil {
			return err
		}
		for _, spec := range specs {
			a, err := workload.Fabric(spec)
			if err != nil {
				return err
			}
			var sb strings.Builder
			if err := a.WriteXML(&sb); err != nil {
				return err
			}
			if err := emit(spec.Name()+".xml", sb.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// runFrontier executes the sweep and writes the requested reports.
func runFrontier(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	family := fs.String("family", "dot", "kernel family: dot | fir | stencil | reduce | conv2d | matvec | gen")
	min := fs.Int("min", 1, "smallest ladder rung probed")
	max := fs.Int("max", 16, "largest ladder rung probed")
	seed := fs.Int64("seed", 1, "random seed (gen family; recorded in the report)")
	fabrics := fs.String("fabrics", "", "fabric list, e.g. \"8x8:diag;8x8:diag,hetero\" (default: the standard ladder)")
	iis := fs.String("iis", "", "comma-separated IIs per fabric (default: each fabric's own context count)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-probe budget; a timeout counts as unmappable")
	engine := fs.String("engine", "cdcl", "solver per probe: cdcl | bb | portfolio")
	daemon := fs.String("daemon", "", "solve via a cgramapd server at this URL instead of in-process")
	workers := fs.Int("workers", 1, "solver workers per probe (1 = sequential, reproducible)")
	seedSolver := fs.Int64("solver-seed", 0, "solver seed (0 = engine defaults)")
	incremental := fs.Bool("incremental", false, "share an incremental CDCL session across each boundary's probes (cdcl engine; forwarded to a daemon)")
	symmetry := fs.String("symmetry", "auto", "symmetry-breaking constraints per probe: auto (off at fixed II) | on | off; same answer either way")
	artifactCache := fs.Int("artifact-cache", 32, "artifact cache entries per class (cached MRRGs and formulation templates shared across probes; <= 0 disables)")
	fallback := fs.Bool("fallback", false, "portfolio only: allow heuristic witnesses")
	verbose := fs.Bool("v", false, "print per-probe progress to stderr")
	jsonOut := fs.String("json", "", "write the frontier as JSON to this file (\"-\" = stdout)")
	mdOut := fs.String("md", "", "write the frontier as markdown to this file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := workload.FrontierSpec{
		Family: workload.Family(*family),
		Seed:   *seed,
		MinN:   *min,
		MaxN:   *max,
	}
	if *fabrics == "" {
		spec.Fabrics = workload.StandardFabrics()
	} else {
		var err error
		if spec.Fabrics, err = workload.ParseFabrics(*fabrics); err != nil {
			return err
		}
	}
	if *iis != "" {
		for _, tok := range strings.Split(*iis, ",") {
			ii, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad II %q", tok)
			}
			spec.IIs = append(spec.IIs, ii)
		}
	}
	mOpts, err := probeOptions(*engine, *daemon, *workers, *seedSolver, *fallback, *incremental)
	if err != nil {
		return err
	}
	if mOpts.Symmetry, err = mapper.ParseSymmetryMode(*symmetry); err != nil {
		return err
	}
	if *artifactCache > 0 {
		mOpts.Artifacts = mapper.NewArtifactCache(*artifactCache)
	}
	opts := workload.FrontierOptions{Timeout: *timeout, Mapper: mOpts}
	if *verbose {
		opts.Progress = os.Stderr
	}
	front, err := workload.RunFrontier(context.Background(), spec, opts)
	if err != nil {
		return err
	}
	wrote := false
	sink := func(path string, render func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		wrote = true
		if path == "-" {
			return render(stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := sink(*jsonOut, front.WriteJSON); err != nil {
		return err
	}
	if err := sink(*mdOut, front.WriteMarkdown); err != nil {
		return err
	}
	if !wrote {
		return front.WriteMarkdown(stdout)
	}
	return nil
}

// probeOptions mirrors the experiments CLI's engine wiring: a daemon
// URL reroutes every probe through the cgramapd job service (failing
// fast if the server is unreachable), otherwise the engine solves
// in-process.
func probeOptions(engine, daemon string, workers int, seed int64, fallback, incremental bool) (mapper.Options, error) {
	if workers < 0 {
		return mapper.Options{}, fmt.Errorf("-workers must be non-negative")
	}
	if workers > 0 {
		budget.SetGlobal(workers)
	}
	if workers == 0 {
		workers = budget.Global().Size()
	}
	opts := mapper.Options{Workers: workers, Seed: seed, Incremental: incremental}
	switch engine {
	case "cdcl", "bb", "portfolio":
	default:
		return opts, fmt.Errorf("unknown engine %q", engine)
	}
	if daemon != "" {
		client := service.NewClient(daemon)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := client.WaitHealthy(ctx); err != nil {
			return opts, err
		}
		opts.MapWith = client.MapFunc(engine)
		return opts, nil
	}
	switch engine {
	case "bb":
		opts.Solver = bb.New()
	case "portfolio":
		opts.MapWith = portfolio.MapFunc(portfolio.Options{
			DisableFallback: !fallback, Workers: workers, Seed: seed,
			Incremental: incremental})
	}
	return opts, nil
}

// runReport re-renders a saved JSON frontier as markdown.
func runReport(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	in := fs.String("in", "-", "frontier JSON to render (\"-\" = stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	front, err := workload.ReadFrontierJSON(r)
	if err != nil {
		return err
	}
	return front.WriteMarkdown(stdout)
}
