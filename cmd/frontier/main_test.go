package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenerateDeterministic: generate writes the same corpus twice.
func TestGenerateDeterministic(t *testing.T) {
	emit := func() string {
		var out bytes.Buffer
		err := run([]string{"generate", "-family", "gen", "-seed", "7", "-min", "2", "-max", "4",
			"-fabrics", "2x2:diag;4x4:diag,mem2"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatal("generate output differs across identical invocations")
	}
	for _, want := range []string{"dfg gen-s7-", "homo-diag-c1-2x2.xml", "homo-diag-c1-4x4-mem2.xml"} {
		if !strings.Contains(a, want) {
			t.Errorf("generate output missing %q", want)
		}
	}
}

func TestGenerateToDirectory(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"generate", "-family", "dot", "-min", "1", "-max", "3", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("directory mode still wrote to stdout: %q", out.String())
	}
	for _, name := range []string{"dot_1.dfg", "dot_2.dfg", "dot_3.dfg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing corpus file %s: %v", name, err)
		}
	}
}

// TestRunAndReport drives a real end-to-end sweep on a tiny
// heterogeneous fabric: 2x2 hetero has two multiplier cells, so the dot
// ladder flips between n=2 (two multiplies) and n=3 (three). Every
// probe is decided quickly — either by a small solve or by the counting
// presolve — so the test stays fast and the reports deterministic.
func TestRunAndReport(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "front.json")
	sweep := func() (string, string) {
		var md bytes.Buffer
		err := run([]string{"run", "-family", "dot", "-min", "1", "-max", "4",
			"-fabrics", "2x2:diag,hetero", "-timeout", "30s",
			"-json", jsonPath, "-md", "-"}, &md)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		return md.String(), string(blob)
	}
	md1, js1 := sweep()
	md2, js2 := sweep()
	if md1 != md2 || js1 != js2 {
		t.Fatal("fixed-seed sweep reports differ across runs")
	}
	for _, want := range []string{
		"| hetero-diag-c1-2x2 | 1 | 2 | 3 |",
		"frontier between n=2 (feasible) and n=3 (unmappable)",
	} {
		if !strings.Contains(md1, want) {
			t.Errorf("markdown missing %q:\n%s", want, md1)
		}
	}

	// report re-renders the saved JSON identically.
	var md3 bytes.Buffer
	if err := run([]string{"report", "-in", jsonPath}, &md3); err != nil {
		t.Fatal(err)
	}
	if md3.String() != md1 {
		t.Error("report rendering differs from the original markdown")
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"generate", "-min", "5", "-max", "2"}, &out); err == nil {
		t.Error("inverted rung range accepted")
	}
	if err := run([]string{"run", "-fabrics", "broken"}, &out); err == nil {
		t.Error("bad fabric list accepted")
	}
	if err := run([]string{"run", "-engine", "bogus", "-fabrics", "2x2"}, &out); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run([]string{"report", "-in", filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Error("missing report input accepted")
	}
}
