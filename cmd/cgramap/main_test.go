package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLoadDFG(t *testing.T) {
	if _, err := loadDFG("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadDFG("x.dfg", "accum"); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadDFG("", "accum"); err != nil {
		t.Errorf("benchmark: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "k.dfg")
	if err := os.WriteFile(path, []byte("dfg k\ninput a\noutput o a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadDFG(path, "")
	if err != nil || g.NumOps() != 2 {
		t.Errorf("file DFG: %v", err)
	}
	if _, err := loadDFG(filepath.Join(dir, "missing.dfg"), ""); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadArch(t *testing.T) {
	a, err := loadArch("", 2, 2, 1, false, false)
	if err != nil || a.Name != "homo-orth-c1-2x2" {
		t.Fatalf("grid: %v %v", a, err)
	}
	// Round-trip through a file.
	dir := t.TempDir()
	path := filepath.Join(dir, "a.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteXML(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	a2, err := loadArch(path, 0, 0, 0, false, false)
	if err != nil || a2.Name != a.Name {
		t.Errorf("xml: %v", err)
	}
}

func TestRunLPExport(t *testing.T) {
	dir := t.TempDir()
	lp := filepath.Join(dir, "m.lp")
	code, err := run(runOpts{benchName: "2x2-f", rows: 4, cols: 4, contexts: 1, diagonal: true,
		objective: "feasibility", engine: "cdcl", fallback: true, timeout: time.Minute, lpOut: lp, quiet: true})
	if err != nil || code != exitOK {
		t.Fatal(code, err)
	}
	data, err := os.ReadFile(lp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Minimize") || !strings.Contains(string(data), "Binary") {
		t.Error("LP file malformed")
	}
}

func TestRunSolveSmall(t *testing.T) {
	code, err := run(runOpts{benchName: "2x2-f", rows: 4, cols: 4, contexts: 2, diagonal: true,
		objective: "feasibility", engine: "cdcl", fallback: true, timeout: 2 * time.Minute,
		quiet: true, showCfg: true, validate: true, floorplan: true})
	if err != nil || code != exitOK {
		t.Fatal(code, err)
	}
	// Bad flag values.
	if code, err := run(runOpts{benchName: "2x2-f", rows: 4, cols: 4, contexts: 1,
		objective: "zorp", engine: "cdcl", fallback: true, timeout: time.Minute, quiet: true}); err == nil || code != exitError {
		t.Error("bad objective accepted")
	}
	if code, err := run(runOpts{benchName: "2x2-f", rows: 4, cols: 4, contexts: 1,
		objective: "feasibility", engine: "zorp", fallback: true, timeout: time.Minute, quiet: true}); err == nil || code != exitError {
		t.Error("bad engine accepted")
	}
	if code, err := run(runOpts{benchName: "2x2-f", rows: 4, cols: 4, contexts: 1, workers: -1,
		objective: "feasibility", engine: "cdcl", fallback: true, timeout: time.Minute, quiet: true}); err == nil || code != exitError {
		t.Error("negative -workers accepted")
	}
}

func TestRunSolvePortfolio(t *testing.T) {
	code, err := run(runOpts{benchName: "2x2-f", rows: 2, cols: 2, contexts: 2, diagonal: true,
		objective: "feasibility", engine: "portfolio", fallback: true, workers: 2, seed: 7,
		timeout: time.Minute, quiet: true})
	if err != nil || code != exitOK {
		t.Fatal(code, err)
	}
}

// TestRunExitInfeasible: a DFG with more operations than a 1-context 2x2
// grid has FUs is provably unmappable, and the CLI must say so with
// exit status 2 — the script-visible difference from a timeout.
func TestRunExitInfeasible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.dfg")
	var sb strings.Builder
	sb.WriteString("dfg big\ninput a\ninput b\n")
	prev := "a"
	for i := 0; i < 6; i++ {
		cur := string(rune('c' + i))
		sb.WriteString("add " + cur + " " + prev + " b\n")
		prev = cur
	}
	sb.WriteString("output o " + prev + "\n")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	code, err := run(runOpts{dfgFile: path, rows: 2, cols: 2, contexts: 1, diagonal: true,
		objective: "feasibility", engine: "cdcl", fallback: true, timeout: time.Minute, quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitInfeasible {
		t.Errorf("exit code %d for a proven-infeasible instance, want %d", code, exitInfeasible)
	}
}

// TestRunExitUnknown: an expired deadline leaves the instance undecided,
// which must surface as exit status 3, not as infeasibility.
func TestRunExitUnknown(t *testing.T) {
	code, err := run(runOpts{benchName: "mac", rows: 4, cols: 4, contexts: 2, diagonal: true,
		objective: "feasibility", engine: "cdcl", fallback: true, timeout: time.Nanosecond, quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitUnknown {
		t.Errorf("exit code %d for a timed-out solve, want %d", code, exitUnknown)
	}
}
