package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLoadDFG(t *testing.T) {
	if _, err := loadDFG("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadDFG("x.dfg", "accum"); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadDFG("", "accum"); err != nil {
		t.Errorf("benchmark: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "k.dfg")
	if err := os.WriteFile(path, []byte("dfg k\ninput a\noutput o a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadDFG(path, "")
	if err != nil || g.NumOps() != 2 {
		t.Errorf("file DFG: %v", err)
	}
	if _, err := loadDFG(filepath.Join(dir, "missing.dfg"), ""); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadArch(t *testing.T) {
	a, err := loadArch("", 2, 2, 1, false, false)
	if err != nil || a.Name != "homo-orth-c1-2x2" {
		t.Fatalf("grid: %v %v", a, err)
	}
	// Round-trip through a file.
	dir := t.TempDir()
	path := filepath.Join(dir, "a.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteXML(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	a2, err := loadArch(path, 0, 0, 0, false, false)
	if err != nil || a2.Name != a.Name {
		t.Errorf("xml: %v", err)
	}
}

func TestRunLPExport(t *testing.T) {
	dir := t.TempDir()
	lp := filepath.Join(dir, "m.lp")
	err := run("", "2x2-f", "", 4, 4, 1, true, false, "feasibility", "cdcl", true, false,
		time.Minute, lp, true, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(lp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Minimize") || !strings.Contains(string(data), "Binary") {
		t.Error("LP file malformed")
	}
}

func TestRunSolveSmall(t *testing.T) {
	err := run("", "2x2-f", "", 4, 4, 2, true, false, "feasibility", "cdcl", true, false,
		2*time.Minute, "", true, true, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// Bad flag values.
	if err := run("", "2x2-f", "", 4, 4, 1, false, false, "zorp", "cdcl", true, false, time.Minute, "", true, false, false, false); err == nil {
		t.Error("bad objective accepted")
	}
	if err := run("", "2x2-f", "", 4, 4, 1, false, false, "feasibility", "zorp", true, false, time.Minute, "", true, false, false, false); err == nil {
		t.Error("bad engine accepted")
	}
}

func TestRunSolvePortfolio(t *testing.T) {
	err := run("", "2x2-f", "", 2, 2, 2, true, false, "feasibility", "portfolio", true, false,
		time.Minute, "", true, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
}
