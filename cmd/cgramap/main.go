// Command cgramap maps one application DFG onto one CGRA architecture
// using the paper's ILP formulation (or the simulated-annealing baseline)
// and prints the resulting placement and routing.
//
// The application comes from -dfg (textual DFG file) or -benchmark (one
// of the paper's Table 1 kernels); the architecture from -arch (XML
// description) or the -grid family of flags. Examples:
//
//	cgramap -benchmark accum -rows 4 -cols 4 -contexts 2 -diagonal
//	cgramap -dfg kernel.dfg -arch mycgra.xml -objective routing
//	cgramap -benchmark mac -contexts 1 -lp model.lp   # export, don't solve
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"cgramap/internal/anneal"
	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/budget"
	"cgramap/internal/config"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/portfolio"
	"cgramap/internal/sim"
	"cgramap/internal/solve/bb"
	"cgramap/internal/visual"
)

// runOpts carries one invocation's parsed flags.
type runOpts struct {
	dfgFile, benchName, archFile string
	rows, cols, contexts         int
	diagonal, hetero             bool
	objective, engine            string
	fallback, useSA              bool
	workers                      int
	autoII                       int
	incremental                  bool
	symmetry                     string
	artifactCache                int
	seed                         int64
	timeout                      time.Duration
	lpOut                        string
	quiet, showCfg, validate     bool
	floorplan                    bool
}

func main() {
	var o runOpts
	flag.StringVar(&o.dfgFile, "dfg", "", "application DFG file (textual format)")
	flag.StringVar(&o.benchName, "benchmark", "", "built-in benchmark name (see 'experiments table1')")
	flag.StringVar(&o.archFile, "arch", "", "architecture XML file (default: grid flags below)")
	flag.IntVar(&o.rows, "rows", 4, "grid rows")
	flag.IntVar(&o.cols, "cols", 4, "grid columns")
	flag.IntVar(&o.contexts, "contexts", 1, "execution contexts (II)")
	flag.BoolVar(&o.diagonal, "diagonal", false, "diagonal interconnect")
	flag.BoolVar(&o.hetero, "heterogeneous", false, "multipliers in only half the blocks")
	flag.StringVar(&o.objective, "objective", "feasibility", "feasibility | routing (minimise routing resources)")
	flag.StringVar(&o.engine, "engine", "cdcl", "ILP engine: cdcl | bb | portfolio (race all engines under the timeout)")
	flag.BoolVar(&o.fallback, "fallback", true, "portfolio only: degrade to the annealing heuristic when no exact engine decides")
	flag.BoolVar(&o.useSA, "anneal", false, "use the simulated-annealing mapper instead of ILP")
	flag.IntVar(&o.workers, "workers", 0, "parallel solver workers: the clause-sharing gang width and the process worker budget (0 = all CPUs or $CGRAMAP_WORKERS; 1 = sequential, bit-reproducible with -seed)")
	flag.IntVar(&o.autoII, "auto-ii", 0, "search for the provably smallest initiation interval up to this bound (overrides -contexts; exact engines only)")
	flag.BoolVar(&o.incremental, "incremental", false, "solve the auto-II ladder through one incremental CDCL session (learnt clauses carry across IIs; same answer, usually faster)")
	flag.StringVar(&o.symmetry, "symmetry", "auto", "symmetry-breaking constraints from verified fabric automorphisms: auto (on for -auto-ii, off otherwise) | on | off; same answer either way")
	flag.IntVar(&o.artifactCache, "artifact-cache", 16, "artifact cache entries per class (cached MRRGs and formulation templates reused across the run; <= 0 disables)")
	flag.Int64Var(&o.seed, "seed", 0, "base solver seed (0 = the engine default)")
	flag.DurationVar(&o.timeout, "timeout", 5*time.Minute, "solve timeout")
	flag.StringVar(&o.lpOut, "lp", "", "write the ILP model in LP format to this file and exit")
	flag.BoolVar(&o.quiet, "q", false, "print only the status line")
	flag.BoolVar(&o.showCfg, "config", false, "print the extracted fabric configuration")
	flag.BoolVar(&o.validate, "validate", false, "simulate the configuration and check it against DFG evaluation")
	flag.BoolVar(&o.floorplan, "floorplan", false, "print an ASCII floor plan of the mapping (grid architectures)")
	flag.Parse()
	code, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgramap:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// Exit statuses, script-friendly: a wrapper can distinguish "mapping
// provably impossible" from "undecided within the budget" without
// parsing output.
const (
	exitOK         = 0 // feasible mapping found (or nothing to solve)
	exitError      = 1 // usage or internal error
	exitInfeasible = 2 // infeasibility proven
	exitUnknown    = 3 // timeout / undecided (the paper's "T")
)

func run(o runOpts) (int, error) {
	g, err := loadDFG(o.dfgFile, o.benchName)
	if err != nil {
		return exitError, err
	}
	a, err := loadArch(o.archFile, o.rows, o.cols, o.contexts, o.diagonal, o.hetero)
	if err != nil {
		return exitError, err
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		return exitError, err
	}
	fmt.Printf("mapping %s (%d ops, %d values) onto %s (%d MRRG nodes, %d contexts)\n",
		g.Name, g.NumOps(), g.NumVals(), a.Name, len(mg.Nodes), mg.Contexts)

	if o.workers < 0 {
		return exitError, fmt.Errorf("-workers must be non-negative")
	}
	if o.workers > 0 {
		budget.SetGlobal(o.workers)
	}
	workers := o.workers
	if workers == 0 {
		workers = budget.Global().Size()
	}

	sym, err := mapper.ParseSymmetryMode(o.symmetry)
	if err != nil {
		return exitError, err
	}
	opts := mapper.Options{Workers: workers, Seed: o.seed, Incremental: o.incremental, Symmetry: sym}
	if o.artifactCache > 0 {
		opts.Artifacts = mapper.NewArtifactCache(o.artifactCache)
	}
	switch o.objective {
	case "feasibility":
	case "routing":
		opts.Objective = mapper.MinimizeRouting
	default:
		return exitError, fmt.Errorf("unknown objective %q", o.objective)
	}
	switch o.engine {
	case "cdcl", "portfolio":
	case "bb":
		opts.Solver = bb.New()
	default:
		return exitError, fmt.Errorf("unknown engine %q", o.engine)
	}

	if o.lpOut != "" {
		model, reason, err := mapper.BuildModel(g, mg, opts)
		if err != nil {
			return exitError, err
		}
		if model == nil {
			return exitInfeasible, fmt.Errorf("instance infeasible before solving: %s", reason)
		}
		f, err := os.Create(o.lpOut)
		if err != nil {
			return exitError, err
		}
		defer f.Close()
		if err := model.WriteLP(f); err != nil {
			return exitError, err
		}
		fmt.Printf("wrote %s (%d binaries, %d constraints)\n", o.lpOut, model.NumVars(), len(model.Constraints))
		return exitOK, nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	if o.useSA {
		res, err := anneal.Map(ctx, g, mg, anneal.Options{})
		if err != nil {
			return exitError, err
		}
		if !res.Feasible {
			// A heuristic miss is undecided, never an infeasibility proof.
			fmt.Printf("status: no mapping found by annealing (%d moves, cost %.0f)\n", res.Moves, res.Cost)
			return exitUnknown, nil
		}
		fmt.Printf("status: feasible (annealing, %d moves, routing cost %d)\n",
			res.Moves, res.Mapping.RoutingCost())
		if !o.quiet {
			if err := res.Mapping.Write(os.Stdout); err != nil {
				return exitError, err
			}
		}
		return exitOK, nil
	}

	if o.autoII > 0 {
		if o.useSA {
			return exitError, fmt.Errorf("-auto-ii requires an exact engine (a heuristic cannot prove an II minimal)")
		}
		return runAutoII(ctx, g, a, o, workers, opts)
	}

	start := time.Now()
	var res *mapper.Result
	if o.engine == "portfolio" {
		pres, err := portfolio.Map(ctx, g, mg, portfolio.Options{
			Timeout:         o.timeout,
			DisableFallback: !o.fallback,
			Workers:         workers,
			Seed:            o.seed,
			Mapper:          opts,
		})
		if err != nil {
			return exitError, err
		}
		for _, rep := range pres.Reports {
			note := ""
			if rep.Winner {
				note = "  <- winner"
			} else if rep.Cancelled {
				note = "  (cancelled)"
			}
			if rep.Panics > 0 {
				note += fmt.Sprintf("  [%d panics contained]", rep.Panics)
			}
			fmt.Printf("portfolio: %-12s %-10v %d attempt(s) in %v%s\n",
				rep.Strategy, rep.Status, rep.Attempts, rep.Elapsed.Round(time.Millisecond), note)
		}
		if pres.Degraded() {
			fmt.Println("portfolio: DEGRADED — heuristic witness only, no optimality or infeasibility proof")
		}
		res = pres.Result
	} else {
		var err error
		res, err = mapper.Map(ctx, g, mg, opts)
		if err != nil {
			return exitError, err
		}
	}
	return reportResult(res, g, o, o.timeout, time.Since(start))
}

// runAutoII sweeps the II ladder for the provably smallest initiation
// interval, sequentially or speculatively (and, with -incremental,
// through one incremental CDCL session per lane).
func runAutoII(ctx context.Context, g *dfg.Graph, a *arch.Arch, o runOpts, workers int, opts mapper.Options) (int, error) {
	if o.engine == "portfolio" {
		// Exact engines only inside the ladder: a heuristic miss at some
		// II proves nothing about that II.
		opts.MapWith = portfolio.MapFunc(portfolio.Options{
			DisableFallback: true, Workers: workers, Seed: o.seed,
			Incremental: o.incremental})
	}
	start := time.Now()
	auto, err := mapper.MapAuto(ctx, g, a, o.autoII, opts)
	if err != nil {
		return exitError, err
	}
	if len(auto.Tried) > 0 {
		fmt.Printf("auto-ii: tried %d II(s): %v\n", len(auto.Tried), auto.Tried)
	}
	if auto.Feasible() {
		fmt.Printf("auto-ii: smallest II = %d (proven, %v)\n", auto.II, time.Since(start).Round(time.Millisecond))
	}
	return reportResult(auto.Result, g, o, o.timeout, time.Since(start))
}

// reportResult prints a mapping attempt's outcome and translates it to
// the script-friendly exit code.
func reportResult(res *mapper.Result, g *dfg.Graph, o runOpts, timeout, elapsed time.Duration) (int, error) {
	switch res.Status {
	case ilp.Infeasible:
		fmt.Printf("status: infeasible (proven in %v)", elapsed.Round(time.Millisecond))
		if res.Reason != "" {
			fmt.Printf(" — %s", res.Reason)
		}
		fmt.Println()
		return exitInfeasible, nil
	case ilp.Unknown:
		fmt.Printf("status: timeout after %v (T)\n", timeout)
		if res.Reason != "" {
			fmt.Printf("  %s\n", res.Reason)
		}
		return exitUnknown, nil
	default:
		fmt.Printf("status: %s in %v (%d vars, %d constraints, routing cost %d)\n",
			res.Status, elapsed.Round(time.Millisecond),
			res.Vars, res.Constraints, res.Mapping.RoutingCost())
		if !o.quiet {
			if err := res.Mapping.Write(os.Stdout); err != nil {
				return exitError, err
			}
		}
		if err := postProcess(res.Mapping, g, o.showCfg, o.validate, o.floorplan); err != nil {
			return exitError, err
		}
		return exitOK, nil
	}
}

// postProcess optionally prints the floor plan and fabric configuration,
// and validates the mapping by simulation.
func postProcess(m *mapper.Mapping, g *dfg.Graph, showCfg, validate, floorplan bool) error {
	if floorplan {
		if err := visual.WriteGrid(os.Stdout, m); err != nil {
			return err
		}
	}
	if !showCfg && !validate {
		return nil
	}
	cfg, err := config.Extract(m)
	if err != nil {
		return err
	}
	if showCfg {
		if err := cfg.Render(os.Stdout); err != nil {
			return err
		}
	}
	if validate {
		if !g.Acyclic() {
			return fmt.Errorf("-validate requires an acyclic DFG")
		}
		inputs := sim.DefaultInputs(g, 7)
		mem := map[uint32]uint32{}
		for a := uint32(0); a < 64; a++ {
			mem[a] = 2*a + 1
		}
		if err := sim.Validate(m, inputs, mem); err != nil {
			return err
		}
		fmt.Println("validated: simulated configuration matches DFG evaluation")
	}
	return nil
}

func loadDFG(dfgFile, benchName string) (*dfg.Graph, error) {
	switch {
	case dfgFile != "" && benchName != "":
		return nil, fmt.Errorf("specify -dfg or -benchmark, not both")
	case dfgFile != "":
		f, err := os.Open(dfgFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dfg.Parse(f)
	case benchName != "":
		return bench.Get(benchName)
	default:
		return nil, fmt.Errorf("no application: use -dfg <file> or -benchmark <name>")
	}
}

func loadArch(archFile string, rows, cols, contexts int, diagonal, hetero bool) (*arch.Arch, error) {
	if archFile != "" {
		f, err := os.Open(archFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return arch.ReadXML(f)
	}
	ic := arch.Orthogonal
	if diagonal {
		ic = arch.Diagonal
	}
	return arch.Grid(arch.GridSpec{
		Rows: rows, Cols: cols,
		Interconnect: ic,
		Homogeneous:  !hetero,
		Contexts:     contexts,
	})
}
