package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/faultinject"
	"cgramap/internal/ilp"
	"cgramap/internal/service"
)

// TestServeLifecycle boots the daemon on an ephemeral port, solves a
// job through the HTTP client, verifies the duplicate is a cache hit,
// and checks that shutdown drains cleanly.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	go func() {
		done <- serve(ctx, "127.0.0.1:0", service.Options{Workers: 2}, time.Minute, logger, ready, nil)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	}

	c := service.NewClient("http://" + addr)
	c.PollInterval = 5 * time.Millisecond
	reqCtx, reqCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer reqCancel()
	req := &service.JobRequest{
		Benchmark: "2x2-f",
		Grid:      &arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2},
	}
	res, err := c.Solve(reqCtx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Mapping == nil {
		t.Fatalf("expected feasible mapping, got %+v", res)
	}
	st, err := c.Submit(reqCtx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Errorf("duplicate submission not served from cache: %+v", st)
	}

	cancel() // SIGTERM equivalent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
}

func gridJob(contexts int) *service.JobRequest {
	return &service.JobRequest{
		Benchmark: "2x2-f",
		Grid:      &arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: contexts},
	}
}

// TestDrainSemantics pins down what SIGTERM means: the in-flight job
// finishes, queued jobs complete, new submissions are refused with 503 +
// Retry-After while draining, and the process then exits cleanly.
func TestDrainSemantics(t *testing.T) {
	release := make(chan struct{})
	running := make(chan struct{}, 8)
	var solved atomic.Int64
	opts := service.Options{
		Workers:    1,
		QueueDepth: 4,
		Solve: func(ctx context.Context, spec *service.JobSpec) (*service.JobResult, error) {
			running <- struct{}{}
			<-release
			solved.Add(1)
			return &service.JobResult{Status: ilp.Feasible, Feasible: true, Reason: "stub"}, nil
		},
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	go func() {
		done <- serve(ctx, "127.0.0.1:0", opts, time.Minute, logger, ready, nil)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	}

	c := service.NewClient("http://" + addr)
	c.MaxRetries = -1 // the 503 assertions below must see the first answer
	reqCtx, reqCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer reqCancel()

	// One in-flight, two queued.
	ids := make([]string, 0, 3)
	for i := 2; i <= 4; i++ {
		st, err := c.Submit(reqCtx, gridJob(i))
		if err != nil {
			t.Fatalf("submit contexts=%d: %v", i, err)
		}
		ids = append(ids, st.ID)
		if i == 2 {
			<-running // the worker holds job 1 before we queue the rest
		}
	}

	cancel() // SIGTERM

	// Draining: /healthz flips to 503 and new submissions are refused
	// with 503 + Retry-After, while the accepted jobs keep running.
	err := service.Poll(reqCtx, 5*time.Millisecond, func(ctx context.Context) (bool, error) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			return false, err
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable, nil
	})
	if err != nil {
		t.Fatalf("healthz never reported draining: %v", err)
	}
	_, err = c.Submit(reqCtx, gridJob(9))
	var se *service.Error
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: got %v, want 503", err)
	}
	if se.RetryAfter < 1 {
		t.Errorf("drain 503 without Retry-After: %+v", se)
	}
	if got := solved.Load(); got != 0 {
		t.Fatalf("%d jobs finished before release; test lost control of the drain", got)
	}

	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
	if got := solved.Load(); got != int64(len(ids)) {
		t.Errorf("%d of %d accepted jobs solved across the drain", got, len(ids))
	}
}

// TestServeChaos is the daemon-level chaos smoke: real solves behind the
// -chaos fault-injecting middleware, multiple concurrent clients, and
// every Solve must converge through retries.
func TestServeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke")
	}
	ho, err := faultinject.ParseHTTPOptions("error=0.15,drop=0.1,truncate=0.15,latency=2ms,latency-p=0.3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	mw := func(h http.Handler) http.Handler { return faultinject.HTTPMiddleware(h, ho) }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	go func() {
		done <- serve(ctx, "127.0.0.1:0", service.Options{Workers: 2}, time.Minute, logger, ready, mw)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	}

	const clients = 4
	reqCtx, reqCancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer reqCancel()
	errs := make(chan error, clients*2)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		c := service.NewClient("http://" + addr)
		c.PollInterval = 10 * time.Millisecond
		c.MaxRetries = 12
		c.RetryBaseDelay = 5 * time.Millisecond
		c.RetryMaxDelay = 100 * time.Millisecond
		c.RetrySeed = int64(i + 1)
		c.BreakerThreshold = 5
		c.BreakerCooldown = 50 * time.Millisecond
		wg.Add(1)
		go func(id int, c *service.Client) {
			defer wg.Done()
			for _, contexts := range []int{2, 3} {
				res, err := c.Solve(reqCtx, gridJob(contexts))
				if err != nil {
					errs <- fmt.Errorf("client %d contexts=%d: %w", id, contexts, err)
					return
				}
				if !res.Feasible || res.Mapping == nil {
					errs <- fmt.Errorf("client %d contexts=%d: no feasible mapping", id, contexts)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
}
