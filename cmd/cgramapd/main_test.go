package main

import (
	"context"
	"io"
	"log"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/service"
)

// TestServeLifecycle boots the daemon on an ephemeral port, solves a
// job through the HTTP client, verifies the duplicate is a cache hit,
// and checks that shutdown drains cleanly.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	go func() {
		done <- serve(ctx, "127.0.0.1:0", service.Options{Workers: 2}, time.Minute, logger, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	}

	c := service.NewClient("http://" + addr)
	c.PollInterval = 5 * time.Millisecond
	reqCtx, reqCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer reqCancel()
	req := &service.JobRequest{
		Benchmark: "2x2-f",
		Grid:      &arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2},
	}
	res, err := c.Solve(reqCtx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Mapping == nil {
		t.Fatalf("expected feasible mapping, got %+v", res)
	}
	st, err := c.Submit(reqCtx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Errorf("duplicate submission not served from cache: %+v", st)
	}

	cancel() // SIGTERM equivalent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
}
