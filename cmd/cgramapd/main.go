// Command cgramapd is the CGRA mapping daemon: a long-lived HTTP server
// exposing the paper's ILP mappers as a job service (internal/service).
//
// Clients POST mapping jobs (DFG + architecture + engine options) to
// /v1/jobs and poll for results; identical jobs are deduplicated
// in-flight and answered from a content-addressed result cache, which is
// what makes the daemon useful for architecture-exploration sweeps that
// revisit the same instances. Operational state is exported at /metrics
// in the Prometheus text format.
//
//	cgramapd -addr :8537 -workers 8 -cache 1024
//
// On SIGINT/SIGTERM the daemon stops accepting jobs and drains: every
// accepted job still runs to completion (bounded by -drain-timeout)
// before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cgramap/internal/budget"
	"cgramap/internal/faultinject"
	"cgramap/internal/mapper"
	"cgramap/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8537", "HTTP listen address")
		workers      = flag.Int("workers", 4, "solver worker pool size (concurrent jobs)")
		solveWorkers = flag.Int("solve-workers", 0, "parallel solver workers inside each job: clause-sharing gang width and process worker budget (0 = all CPUs or $CGRAMAP_WORKERS; 1 = sequential solves)")
		seed         = flag.Int64("seed", 0, "base solver seed for every job (0 = engine defaults)")
		incremental  = flag.Bool("incremental", false, "default every job to incremental CDCL sessions (auto-II ladders reuse learnt clauses; clients can also opt in per job)")
		symmetry     = flag.String("symmetry", "auto", "server-wide symmetry-breaking default for jobs that submit \"auto\": auto (on for auto-II, off at fixed II) | on | off")
		queue        = flag.Int("queue", 64, "max queued solves before 429 backpressure")
		cacheSize    = flag.Int("cache", 512, "result cache entries (negative disables)")
		artifactSize = flag.Int("artifact-cache", 64, "artifact cache entries per class (cached MRRGs and formulation templates shared across jobs; negative disables)")
		deadline     = flag.Duration("default-deadline", time.Minute, "solve deadline for jobs that set none")
		maxDeadline  = flag.Duration("max-deadline", 15*time.Minute, "upper clamp on client-requested deadlines")
		jobTimeout   = flag.Duration("job-timeout", 0, "server-side cap on each job's solve wall clock (0 = no cap)")
		degrade      = flag.Bool("degrade", false, "answer queue-full submissions with a fast labelled heuristic mapping (degraded: true) instead of shedding with 429")
		degradedBy   = flag.Duration("degraded-deadline", 2*time.Second, "solve budget for each degraded heuristic answer")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "max wait for accepted jobs on shutdown")
		chaos        = flag.String("chaos", "", "inject HTTP faults in front of the API (testing only), e.g. 'error=0.1,drop=0.05,truncate=0.1,latency=20ms,latency-p=0.3,seed=1'")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "cgramapd: ", log.LstdFlags)

	sym, err := mapper.ParseSymmetryMode(*symmetry)
	if err != nil {
		logger.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *solveWorkers > 0 {
		budget.SetGlobal(*solveWorkers)
	}
	sw := *solveWorkers
	if sw == 0 {
		sw = budget.Global().Size()
	}
	opts := service.Options{
		Workers:              *workers,
		QueueDepth:           *queue,
		CacheEntries:         *cacheSize,
		ArtifactCacheEntries: *artifactSize,
		DefaultDeadline:      *deadline,
		MaxDeadline:          *maxDeadline,
		JobTimeout:           *jobTimeout,
		DegradeOnOverload:    *degrade,
		DegradedDeadline:     *degradedBy,
		SolveWorkers:         sw,
		Seed:                 *seed,
		Incremental:          *incremental,
		Symmetry:             sym,
		Logf:                 logger.Printf,
	}
	var mw func(http.Handler) http.Handler
	if *chaos != "" {
		ho, err := faultinject.ParseHTTPOptions(*chaos)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("CHAOS MODE: injecting HTTP faults (%s) — not for production", *chaos)
		mw = func(h http.Handler) http.Handler { return faultinject.HTTPMiddleware(h, ho) }
	}
	if err := serve(ctx, *addr, opts, *drainTimeout, logger, nil, mw); err != nil {
		logger.Fatal(err)
	}
}

// serve runs the daemon until ctx is cancelled, then drains. When ready
// is non-nil it receives the bound listen address once the server
// accepts connections (the seam the integration tests use for :0).
// mw, when non-nil, wraps the HTTP API (the -chaos fault injector).
func serve(ctx context.Context, addr string, opts service.Options, drainTimeout time.Duration, logger *log.Logger, ready chan<- string, mw func(http.Handler) http.Handler) error {
	svc := service.New(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	handler := svc.Handler()
	if mw != nil {
		handler = mw(handler)
	}
	httpSrv := &http.Server{Handler: handler}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (%d workers, queue %d, cache %d)",
		ln.Addr(), opts.Workers, opts.QueueDepth, opts.CacheEntries)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	case <-ctx.Done():
	}

	// Drain order matters: first refuse new jobs and finish the accepted
	// ones (clients keep polling over HTTP meanwhile), then close the
	// HTTP side once there is nothing left to report.
	logger.Printf("shutdown requested, draining accepted jobs (up to %v)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	} else {
		logger.Printf("drained")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
