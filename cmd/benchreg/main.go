// Command benchreg runs the repository's benchmark-regression suite and
// compares result files.
//
//	benchreg run  [-label L] [-out FILE] [-short] [-samples N] [-series REGEX] [-min-sample-time D] [-solve-budget D]
//	benchreg diff [-threshold F] [-metric time,allocs] [-gated-only] [-md FILE] BASE.json NEW.json
//	benchreg list [-short]
//
// `run` executes the suite (MRRG generation, ILP formulation and solver
// end-to-end series) and writes a schema-versioned JSON result,
// conventionally committed as BENCH_<label>.json. `diff` compares two
// such files with robust statistics (median + MAD) and exits 1 when a
// gated series regressed beyond the threshold, which is how CI gates
// performance. `list` prints the series of a tier.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"syscall"
	"time"

	"cgramap/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = runRun(args)
	case "diff":
		err = runDiff(args)
	case "list":
		err = runList(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: benchreg <run|diff|list> [flags]
  run   runs the suite and writes a BENCH_<label>.json result
  diff  compares two result files; exit 1 on a gated regression
  list  prints the series names of a tier`)
}

func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	label := fs.String("label", "dev", "result label (written into the file)")
	out := fs.String("out", "", "output path (default BENCH_<label>.json)")
	short := fs.Bool("short", false, "reduced tier: gated series only, smaller budgets")
	samples := fs.Int("samples", 0, "samples per series (0 = tier default)")
	series := fs.String("series", "", "regexp restricting which series run")
	minSample := fs.Duration("min-sample-time", 0, "per-sample calibration floor (0 = tier default)")
	solveBudget := fs.Duration("solve-budget", 0, "per-iteration budget of solver series (0 = 30s)")
	workers := fs.Int("workers", 1, "gang width of the parallel mapauto series (diff a -workers 1 file against a -workers 4 file to measure scaling)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("run takes no positional arguments")
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1")
	}
	opts := perf.SuiteOptions{
		Label:         *label,
		Short:         *short,
		Samples:       *samples,
		MinSampleTime: *minSample,
		SolveBudget:   *solveBudget,
		Workers:       *workers,
	}
	if *series != "" {
		re, err := regexp.Compile(*series)
		if err != nil {
			return fmt.Errorf("-series: %w", err)
		}
		opts.Filter = re
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	res, err := perf.RunSuite(ctx, opts, os.Stderr)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if err := res.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d series, %v)\n", path, len(res.Series), time.Since(start).Round(time.Millisecond))
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.25, "fractional median change that counts as a regression")
	metrics := fs.String("metric", "time,allocs", "comma-separated metrics: time, allocs, bytes")
	gatedOnly := fs.Bool("gated-only", false, "compare gated series only")
	noiseMADs := fs.Float64("noise-mads", 3, "time-metric noise guard in MADs")
	md := fs.String("md", "", "also write the markdown report to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two result files (baseline, candidate)")
	}
	ms, err := perf.ParseMetrics(*metrics)
	if err != nil {
		return err
	}
	base, err := perf.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cand, err := perf.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	rep, err := perf.Diff(base, cand, perf.DiffOptions{
		Metrics:   ms,
		Threshold: *threshold,
		NoiseMADs: *noiseMADs,
		GatedOnly: *gatedOnly,
	})
	if err != nil {
		return err
	}
	if err := rep.WriteMarkdown(os.Stdout); err != nil {
		return err
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			return err
		}
		if err := rep.WriteMarkdown(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if rep.Failed {
		os.Exit(1)
	}
	return nil
}

func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	short := fs.Bool("short", false, "list the reduced tier")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, name := range perf.SeriesNames(*short) {
		fmt.Println(name)
	}
	return nil
}
