// Command archgen emits CGRA architectures in the XML description
// language. With -all it writes the paper's eight Table 2 architectures
// into a directory; otherwise it prints one architecture built from the
// grid flags to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cgramap/internal/arch"
)

func main() {
	var (
		all      = flag.Bool("all", false, "write all eight paper architectures")
		outDir   = flag.String("dir", ".", "output directory for -all")
		rows     = flag.Int("rows", 4, "grid rows")
		cols     = flag.Int("cols", 4, "grid columns")
		contexts = flag.Int("contexts", 1, "execution contexts")
		diagonal = flag.Bool("diagonal", false, "diagonal interconnect")
		hetero   = flag.Bool("heterogeneous", false, "multipliers in only half the blocks")
	)
	flag.Parse()
	if err := run(*all, *outDir, *rows, *cols, *contexts, *diagonal, *hetero); err != nil {
		fmt.Fprintln(os.Stderr, "archgen:", err)
		os.Exit(1)
	}
}

func run(all bool, outDir string, rows, cols, contexts int, diagonal, hetero bool) error {
	if all {
		for _, spec := range arch.PaperArchitectures() {
			a, err := arch.Grid(spec)
			if err != nil {
				return err
			}
			path := filepath.Join(outDir, spec.Name()+".xml")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := a.WriteXML(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
		return nil
	}
	ic := arch.Orthogonal
	if diagonal {
		ic = arch.Diagonal
	}
	a, err := arch.Grid(arch.GridSpec{
		Rows: rows, Cols: cols,
		Interconnect: ic,
		Homogeneous:  !hetero,
		Contexts:     contexts,
	})
	if err != nil {
		return err
	}
	return a.WriteXML(os.Stdout)
}
