// Package cgramap is an architecture-agnostic CGRA mapping toolkit: a Go
// reproduction of "An Architecture-Agnostic Integer Linear Programming
// Approach to CGRA Mapping" (Chin & Anderson, DAC 2018) together with the
// CGRA-ME-style modelling substrate it builds on.
//
// The flow mirrors the paper's Fig. 7:
//
//	arch  := cgramap.MustGrid(cgramap.GridSpec{Rows: 4, Cols: 4, Contexts: 2, Homogeneous: true})
//	mrrg  := cgramap.MustMRRG(arch)              // device model
//	app   := cgramap.Benchmark("accum")          // or build/parse your own DFG
//	res, _ := cgramap.Map(ctx, app, mrrg, cgramap.MapOptions{})
//	if res.Feasible() { res.Mapping.Write(os.Stdout) }
//
// The ILP mapper provably decides feasibility (and, in MinimizeRouting
// mode, optimality); the annealing mapper is the heuristic baseline the
// paper compares against. This facade re-exports the stable surface of
// the internal packages.
package cgramap

import (
	"context"
	"io"

	"cgramap/internal/anneal"
	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/budget"
	"cgramap/internal/config"
	"cgramap/internal/dfg"
	"cgramap/internal/faultinject"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/portfolio"
	"cgramap/internal/sched"
	"cgramap/internal/service"
	"cgramap/internal/sim"
	"cgramap/internal/solve/bb"
	"cgramap/internal/solve/cdcl"
	"cgramap/internal/visual"
	"cgramap/internal/workload"
)

// Core model types.
type (
	// DFG is an application data-flow graph.
	DFG = dfg.Graph
	// Op and Value are DFG elements; OpKind enumerates operations.
	Op     = dfg.Op
	Value  = dfg.Value
	OpKind = dfg.Kind
	// Arch is a CGRA architecture (primitive netlist + context count).
	Arch = arch.Arch
	// GridSpec parameterises the paper's grid architecture family.
	GridSpec = arch.GridSpec
	// MRRG is the Modulo Routing Resource Graph of an architecture.
	MRRG = mrrg.Graph
	// Mapping is a verified placement and routing of a DFG on an MRRG.
	Mapping = mapper.Mapping
	// MapOptions and MapResult configure and report the ILP mapper.
	MapOptions = mapper.Options
	MapResult  = mapper.Result
	// AnnealOptions and AnnealResult configure and report the
	// simulated-annealing baseline mapper.
	AnnealOptions = anneal.Options
	AnnealResult  = anneal.Result
	// SymmetryMode controls symmetry-breaking constraints in the ILP
	// formulation (see MapOptions.Symmetry).
	SymmetryMode = mapper.SymmetryMode
	// FabricSymmetries holds the verified automorphisms of an
	// architecture's fabric graph and the PE orbits they induce.
	FabricSymmetries = arch.Symmetries
	// FabricAutomorphism is one verified fabric self-map.
	FabricAutomorphism = arch.Automorphism
	// Solver is the pluggable ILP engine interface.
	Solver = ilp.Solver
	// Status is a solve outcome (Optimal, Feasible, Infeasible,
	// Unknown).
	Status = ilp.Status
)

// Re-exported operation kinds.
const (
	Input  = dfg.Input
	Output = dfg.Output
	Add    = dfg.Add
	Sub    = dfg.Sub
	Mul    = dfg.Mul
	Shl    = dfg.Shl
	Shr    = dfg.Shr
	And    = dfg.And
	Or     = dfg.Or
	Xor    = dfg.Xor
	Not    = dfg.Not
	Load   = dfg.Load
	Store  = dfg.Store
)

// Re-exported solve statuses and objective modes.
const (
	StatusUnknown    = ilp.Unknown
	StatusInfeasible = ilp.Infeasible
	StatusFeasible   = ilp.Feasible
	StatusOptimal    = ilp.Optimal

	Feasibility     = mapper.Feasibility
	MinimizeRouting = mapper.MinimizeRouting

	SymmetryAuto = mapper.SymmetryAuto
	SymmetryOn   = mapper.SymmetryOn
	SymmetryOff  = mapper.SymmetryOff

	Orthogonal = arch.Orthogonal
	Diagonal   = arch.Diagonal
)

// NewDFG returns an empty data-flow graph with the given kernel name.
func NewDFG(name string) *DFG { return dfg.New(name) }

// ParseDFG reads a DFG in the textual format (see internal/dfg).
func ParseDFG(r io.Reader) (*DFG, error) { return dfg.Parse(r) }

// Benchmark builds one of the paper's 19 Table 1 benchmarks.
func Benchmark(name string) (*DFG, error) { return bench.Get(name) }

// BenchmarkNames lists the paper's benchmarks in Table 1 order.
func BenchmarkNames() []string { return bench.Names() }

// Grid builds a paper-style grid architecture.
func Grid(spec GridSpec) (*Arch, error) { return arch.Grid(spec) }

// MustGrid is Grid for known-good specs; it panics on error.
func MustGrid(spec GridSpec) *Arch {
	a, err := arch.Grid(spec)
	if err != nil {
		panic(err)
	}
	return a
}

// PaperArchitectures returns the paper's eight Table 2 architectures.
func PaperArchitectures() []GridSpec { return arch.PaperArchitectures() }

// DiscoverSymmetries finds and verifies the fabric automorphisms of an
// architecture: candidate grid transforms (reflections, rotations, torus
// translations) are checked against the actual primitive and
// interconnect structure, so heterogeneous ALU placement or shared
// memory ports soundly shrink the group. MapOptions.Symmetry turns the
// result into symmetry-breaking constraints; cmd/mrrgdump -symmetries
// prints it.
func DiscoverSymmetries(a *Arch) *FabricSymmetries { return arch.Discover(a) }

// ParseSymmetryMode resolves a -symmetry flag value ("auto", "on",
// "off").
func ParseSymmetryMode(s string) (SymmetryMode, error) { return mapper.ParseSymmetryMode(s) }

// ReadArchXML parses an architecture from the XML description language.
func ReadArchXML(r io.Reader) (*Arch, error) { return arch.ReadXML(r) }

// GenerateMRRG expands an architecture into its MRRG.
func GenerateMRRG(a *Arch) (*MRRG, error) { return mrrg.Generate(a) }

// MustMRRG is GenerateMRRG for known-good architectures; it panics on
// error.
func MustMRRG(a *Arch) *MRRG {
	g, err := mrrg.Generate(a)
	if err != nil {
		panic(err)
	}
	return g
}

// Map places and routes a DFG onto an MRRG with the paper's ILP
// formulation and independently verifies the result.
func Map(ctx context.Context, g *DFG, m *MRRG, opts MapOptions) (*MapResult, error) {
	return mapper.Map(ctx, g, m, opts)
}

// AnnealMap runs the simulated-annealing baseline mapper.
func AnnealMap(ctx context.Context, g *DFG, m *MRRG, opts AnnealOptions) (*AnnealResult, error) {
	return anneal.Map(ctx, g, m, opts)
}

// NewCDCLSolver returns the default propagation-based ILP engine.
func NewCDCLSolver() Solver { return cdcl.New() }

// NewParallelCDCLSolver returns a clause-sharing portfolio of diversified
// CDCL workers racing on the same formulation. workers <= 1 (or an empty
// worker budget) degrades to the sequential engine; with seed fixed and
// workers == 1 the run is bit-identical to NewCDCLSolver. Extra workers
// draw tokens from the process-wide budget (SetWorkerBudget).
func NewParallelCDCLSolver(workers int, seed int64) Solver {
	return cdcl.NewParallel(workers, seed)
}

// NewIncrementalCDCLSolver returns an assumption-based incremental CDCL
// session: successive Solve calls on related models reuse learnt clauses
// and warm-started variable phases, which is what makes auto-II ladders
// cheap (see MapOptions.Incremental for the ladder shortcut that wires
// one up automatically). Sessions are stateful and not safe for
// concurrent use; seed 0 keeps the engine defaults.
func NewIncrementalCDCLSolver(seed int64) Solver { return cdcl.NewSession(seed) }

// SetWorkerBudget caps the number of extra solver workers the whole
// process may run concurrently — shared by parallel gangs, speculative
// MapAuto sweeps, portfolio races and the job service. The default is
// $CGRAMAP_WORKERS or the CPU count.
func SetWorkerBudget(n int) { budget.SetGlobal(n) }

// WorkerBudgetSize reports the process-wide worker budget's capacity.
func WorkerBudgetSize() int { return budget.Global().Size() }

// NewBranchBoundSolver returns the LP-relaxation branch-and-bound engine
// (tractable on small instances; used for cross-checking).
func NewBranchBoundSolver() Solver { return bb.New() }

// Portfolio orchestration: race the exact engines (and optionally the
// annealing heuristic) under a shared deadline, containing panics and
// retrying transient failures. See internal/portfolio.
type (
	// PortfolioOptions configures a portfolio race.
	PortfolioOptions = portfolio.Options
	// PortfolioResult is a mapping result annotated with the winning
	// strategy, whether the answer is a proof, and per-strategy reports.
	PortfolioResult = portfolio.Result
	// PortfolioReport describes one strategy's fate in a race.
	PortfolioReport = portfolio.Report
	// MapFunc is a drop-in replacement for the direct mapping pipeline
	// (see MapOptions.MapWith).
	MapFunc = mapper.MapFunc
)

// MapPortfolio maps with the resilient portfolio orchestrator: all exact
// engines race, losers are cancelled, panics are contained, and (unless
// disabled) the annealer provides a clearly-labelled heuristic fallback.
func MapPortfolio(ctx context.Context, g *DFG, m *MRRG, opts PortfolioOptions) (*PortfolioResult, error) {
	return portfolio.Map(ctx, g, m, opts)
}

// PortfolioMapFunc adapts portfolio options into a MapFunc, so MapAuto
// and the experiment sweeps can route every attempt through the
// orchestrator via MapOptions.MapWith.
func PortfolioMapFunc(opts PortfolioOptions) MapFunc { return portfolio.MapFunc(opts) }

// Fault injection: a Solver decorator that exercises the robustness of
// everything above the solver seam. See internal/faultinject.
type (
	// FaultClass selects which faults an injector may fire.
	FaultClass = faultinject.Fault
	// FaultOptions configures a fault injector.
	FaultOptions = faultinject.Options
)

// Injectable fault classes.
const (
	FaultDelay           = faultinject.Delay
	FaultPanic           = faultinject.Panic
	FaultCancelEarly     = faultinject.CancelEarly
	FaultCorruptFlip     = faultinject.CorruptFlip
	FaultCorruptTruncate = faultinject.CorruptTruncate
)

// NewFaultInjector wraps a solver with configurable fault injection —
// the harness used to prove corrupted solutions never survive the
// mapper's decode/Verify gate.
func NewFaultInjector(inner Solver, opts FaultOptions) Solver { return faultinject.New(inner, opts) }

// Config is a fabric configuration (per-context multiplexer selections
// and functional-unit opcodes) extracted from a mapping.
type Config = config.Config

// ExtractConfig derives the fabric configuration from a verified mapping.
func ExtractConfig(m *Mapping) (*Config, error) { return config.Extract(m) }

// ValidateMapping simulates the mapping's fabric configuration with the
// given inputs (by input-op name) and load memory, and checks the
// observed outputs and stores against direct DFG evaluation.
func ValidateMapping(m *Mapping, inputs map[string]uint32, mem map[uint32]uint32) error {
	return sim.Validate(m, inputs, mem)
}

// DefaultInputs builds a deterministic input vector for a DFG.
func DefaultInputs(g *DFG, seed uint32) map[string]uint32 { return sim.DefaultInputs(g, seed) }

// MinII returns the modulo-scheduling lower bound max(ResMII, RecMII) for
// mapping g onto the architecture: the smallest context count that could
// possibly work (paper §3.2's modulo framing).
func MinII(g *DFG, a *Arch) (int, error) {
	single := *a
	single.Contexts = 1
	mg, err := mrrg.Generate(&single)
	if err != nil {
		return 0, err
	}
	return sched.MII(g, mg)
}

// AutoResult reports a MapAuto search.
type AutoResult = mapper.AutoResult

// MapAuto finds the provably smallest initiation interval (context count)
// that maps g onto the architecture, searching upward from the MII bound.
func MapAuto(ctx context.Context, g *DFG, a *Arch, maxII int, opts MapOptions) (*AutoResult, error) {
	return mapper.MapAuto(ctx, g, a, maxII, opts)
}

// ExtraKernel builds one of the extended (non-Table 1) kernels: fir4,
// complexmul, matvec2, horner4, iir1, memstride.
func ExtraKernel(name string) (*DFG, error) { return bench.GetExtra(name) }

// ExtraKernelNames lists the extended kernels.
func ExtraKernelNames() []string { return bench.ExtraNames() }

// WriteFloorPlan renders a mapping on a grid architecture as an ASCII
// floor plan, one panel per context.
func WriteFloorPlan(w io.Writer, m *Mapping) error { return visual.WriteGrid(w, m) }

// Mapping as a service: the cgramapd daemon (cmd/cgramapd) exposes the
// mappers as a concurrent job server with single-flight deduplication
// and a content-addressed result cache. See internal/service.
type (
	// ServiceOptions configures an embedded mapping job server.
	ServiceOptions = service.Options
	// Service is the mapping job server itself (HTTP surface via
	// Handler, programmatic via Submit/Wait/Result).
	Service = service.Server
	// ServiceClient talks to a cgramapd server; its MapFunc method
	// plugs remote solving into MapOptions.MapWith.
	ServiceClient = service.Client
	// JobRequest, JobStatus and JobResult are the service wire types.
	JobRequest = service.JobRequest
	JobStatus  = service.JobStatus
	JobResult  = service.JobResult
	// PortableMapping is the name-based serialisable mapping form;
	// reconstruct (and re-verify) with MappingFromPortable.
	PortableMapping = mapper.Portable
)

// NewService builds a mapping job server and starts its worker pool.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// NewServiceClient returns a client for a cgramapd server.
func NewServiceClient(baseURL string) *ServiceClient { return service.NewClient(baseURL) }

// MappingFromPortable rebinds a portable mapping to locally built DFG
// and MRRG values and verifies it from scratch.
func MappingFromPortable(g *DFG, m *MRRG, p *PortableMapping) (*Mapping, error) {
	return mapper.FromPortable(g, m, p)
}

// JobFingerprint is the canonical content-address of a mapping job:
// stable under DFG/architecture renaming and iteration order, sensitive
// to any semantic change. It keys the service's result cache.
func JobFingerprint(g *DFG, a *Arch, engine string, objective mapper.ObjectiveMode, autoII int) string {
	return service.Fingerprint(g, a, engine, objective, autoII)
}

// Artifact caching: bounded content-addressed stores for built MRRGs
// (keyed by architecture fingerprint and context count) and formulation
// templates (keyed by DFG and architecture fingerprints), shared across
// auto-II ladders, speculative lanes, and daemon jobs. See
// internal/mapper and MapOptions.Artifacts.
type (
	// ArtifactCache is a concurrency-safe LRU store of mapping
	// artifacts; concurrent misses for one key build it exactly once.
	ArtifactCache = mapper.ArtifactCache
	// ArtifactStats reports the cache's hit/miss/eviction counters and
	// retained-size gauges.
	ArtifactStats = mapper.ArtifactStats
	// FormulationTemplate is the II-independent half of the ILP
	// formulation for one (DFG, architecture) pair: build once, stamp a
	// model per context count.
	FormulationTemplate = mapper.Template
)

// NewArtifactCache returns an artifact cache holding up to capacity
// entries per artifact class. Share one cache across everything that
// maps the same kernels or fabrics: MapOptions.Artifacts threads it
// through Map/MapAuto, ServiceOptions sizes a daemon-wide one.
func NewArtifactCache(capacity int) *ArtifactCache { return mapper.NewArtifactCache(capacity) }

// NewFormulationTemplate performs the II-independent formulation
// analysis directly (MapOptions.Artifacts does this implicitly and
// caches the result).
func NewFormulationTemplate(g *DFG, a *Arch, opts MapOptions) (*FormulationTemplate, error) {
	return mapper.NewTemplate(g, a, opts)
}

// DFGFingerprint is the structural hash of an application graph alone.
func DFGFingerprint(g *DFG) string { return g.Fingerprint() }

// ArchFingerprint is the structural hash of an architecture alone.
func ArchFingerprint(a *Arch) string { return a.Fingerprint() }

// Workload generation: seeded random DFGs, kernel-family ladders and
// scaled fabrics, plus the mappability-frontier engine that bisects
// kernel size against the mapper. See internal/workload and
// cmd/frontier.
type (
	// WorkloadSpec shape-controls the seeded random-DFG generator.
	WorkloadSpec = workload.DFGSpec
	// KernelFamily names a parameterised kernel ladder (dot, fir,
	// stencil, reduce, conv2d, matvec, gen).
	KernelFamily = workload.Family
	// FabricSpec parameterises a generated fabric beyond the paper's
	// 4x4 (size, interconnect, contexts, memory-port layout).
	FabricSpec = workload.FabricSpec
	// FrontierSpec and FrontierOptions configure a mappability sweep;
	// Frontier and FrontierBoundary report it.
	FrontierSpec     = workload.FrontierSpec
	FrontierOptions  = workload.FrontierOptions
	Frontier         = workload.Frontier
	FrontierBoundary = workload.Boundary
	FrontierProbe    = workload.Probe
)

// GenerateDFG builds a random DFG with the spec's shape; equal specs
// generate byte-identical graphs.
func GenerateDFG(spec WorkloadSpec) (*DFG, error) { return workload.GenerateDFG(spec) }

// Kernel builds rung n of a kernel family's ladder (seed matters only
// for the gen family).
func Kernel(family KernelFamily, n int, seed int64) (*DFG, error) {
	return workload.Kernel(family, n, seed)
}

// KernelFamilies lists the kernel families in a stable order.
func KernelFamilies() []KernelFamily { return workload.Families() }

// Fabric builds a generated fabric's architecture netlist.
func Fabric(spec FabricSpec) (*Arch, error) { return workload.Fabric(spec) }

// ParseFabric parses a compact fabric description such as
// "8x8:diag,hetero,c2" or "16x16:torus,mem4".
func ParseFabric(desc string) (FabricSpec, error) { return workload.ParseFabric(desc) }

// StandardFabrics is the default exploration ladder from the paper's
// 4x4 through 16x16.
func StandardFabrics() []FabricSpec { return workload.StandardFabrics() }

// RunFrontier charts where a kernel ladder flips from mappable to
// unmappable on each fabric, bisecting kernel size per (fabric, II)
// pair with per-probe panic and timeout containment.
func RunFrontier(ctx context.Context, spec FrontierSpec, opts FrontierOptions) (*Frontier, error) {
	return workload.RunFrontier(ctx, spec, opts)
}

// ReadFrontierJSON parses a frontier report written by
// Frontier.WriteJSON (or cmd/frontier's -json output).
func ReadFrontierJSON(r io.Reader) (*Frontier, error) { return workload.ReadFrontierJSON(r) }
