package cgramap

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md, experiment index):
//
//	BenchmarkTable1              benchmark characteristics (Table 1)
//	BenchmarkTable2/<arch>       ILP mappability row per architecture (Table 2)
//	BenchmarkFig8SA/<arch>       simulated-annealing side of Fig. 8
//	BenchmarkMRRGGenerate/...    device-model construction (Figs. 1-4, 6)
//	BenchmarkFormulate/...       ILP formulation build (Fig. 7 flow)
//	BenchmarkAblation...         design-choice ablations
//
// Per-iteration timeouts are kept short here so `go test -bench .`
// terminates promptly; `cmd/experiments` runs the same code with the
// paper-scale budgets and prints the full tables (EXPERIMENTS.md records
// those results).
//
// `go test -short -bench .` runs the quick tier only: the solver sweeps
// (Table 2, Fig. 8, ablations) are skipped and the construction
// benchmarks remain — the same split cmd/benchreg gates CI on. Every
// benchmark reports allocations.

import (
	"context"
	"io"
	"testing"
	"time"

	"cgramap/internal/anneal"
	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/exper"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/bb"
)

// benchCellTimeout bounds each benchmark/architecture solve inside the
// testing.B loops.
const benchCellTimeout = 2 * time.Second

// BenchmarkTable1 regenerates Table 1: build all 19 benchmark DFGs and
// compute their characteristics.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exper.RenderTable1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates one architecture column of Table 2 per
// sub-benchmark: all 19 benchmarks through the ILP mapper. The reported
// "feasible" metric is the column's Total Feasible count at this budget.
func BenchmarkTable2(b *testing.B) {
	if testing.Short() {
		b.Skip("solver sweep: skipped in -short tier")
	}
	for _, spec := range arch.PaperArchitectures() {
		spec := spec
		b.Run(spec.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sweep, err := exper.RunSweep(context.Background(), exper.SweepOptions{
					Timeout: benchCellTimeout,
					Specs:   []arch.GridSpec{spec},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sweep.FeasibleTotals()[0]), "feasible")
			}
		})
	}
}

// fig8Kernels is the benchmark subset used for the in-tree Fig. 8 bench;
// cmd/experiments fig8 runs all 19.
var fig8Kernels = []string{"accum", "2x2-f", "2x2-p", "add_10", "mult_10", "exp_4"}

// BenchmarkFig8SA regenerates the simulated-annealing side of Fig. 8 on
// one architecture per sub-benchmark, reporting how many kernels the
// heuristic mapped.
func BenchmarkFig8SA(b *testing.B) {
	if testing.Short() {
		b.Skip("annealer sweep: skipped in -short tier")
	}
	for _, spec := range arch.PaperArchitectures() {
		spec := spec
		b.Run(spec.Name(), func(b *testing.B) {
			b.ReportAllocs()
			mg := mustMRRG(b, spec)
			for i := 0; i < b.N; i++ {
				found := 0
				for _, name := range fig8Kernels {
					ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
					res, err := anneal.Map(ctx, bench.MustGet(name), mg, anneal.Options{})
					cancel()
					if err != nil {
						b.Fatal(err)
					}
					if res.Feasible {
						found++
					}
				}
				b.ReportMetric(float64(found), "feasible")
			}
		})
	}
}

// BenchmarkMRRGGenerate measures device-model generation (the expansion
// rules of Figs. 1-3 applied to the full Fig. 6 grid).
func BenchmarkMRRGGenerate(b *testing.B) {
	for _, spec := range []arch.GridSpec{
		{Rows: 4, Cols: 4, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1},
		{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 2},
		{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2},
	} {
		spec := spec
		b.Run(spec.Name(), func(b *testing.B) {
			b.ReportAllocs()
			a, err := arch.Grid(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mrrg.Generate(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFormulate measures ILP model construction (the "ILP
// Formulation Creation" box of Fig. 7) for representative kernels.
func BenchmarkFormulate(b *testing.B) {
	mg := mustMRRG(b, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	for _, name := range []string{"2x2-f", "accum", "extreme"} {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			g := bench.MustGet(name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, reason, err := mapper.BuildModel(g, mg, mapper.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if m == nil {
					b.Fatal(reason)
				}
			}
		})
	}
}

// BenchmarkSolveFeasible measures an end-to-end feasible ILP solve.
func BenchmarkSolveFeasible(b *testing.B) {
	b.ReportAllocs()
	mg := mustMRRG(b, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1})
	g := bench.MustGet("accum")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mapper.Map(context.Background(), g, mg, mapper.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible() {
			b.Fatal(res.Status)
		}
	}
}

// BenchmarkAblationPruning measures the reachability-pruning design
// choice: identical instance with and without pruning/presolve.
func BenchmarkAblationPruning(b *testing.B) {
	if testing.Short() {
		b.Skip("solver ablation: skipped in -short tier")
	}
	mg := mustMRRG(b, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1})
	g := bench.MustGet("2x2-f")
	for _, cfg := range []struct {
		name string
		opts mapper.Options
	}{
		{"pruned", mapper.Options{}},
		{"unpruned", mapper.Options{DisablePruning: true, DisablePresolve: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mapper.Map(context.Background(), g, mg, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Vars), "vars")
			}
		})
	}
}

// BenchmarkAblationEngine compares the CDCL engine against LP
// branch-and-bound on an instance small enough for both (2x2 grid).
func BenchmarkAblationEngine(b *testing.B) {
	if testing.Short() {
		b.Skip("solver ablation: skipped in -short tier")
	}
	mg := mustMRRG(b, arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1})
	g := bench.MustGet("2x2-f")
	for _, cfg := range []struct {
		name string
		opts mapper.Options
	}{
		{"cdcl", mapper.Options{}},
		{"branch-and-bound", mapper.Options{Solver: bb.New()}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				_, err := mapper.Map(ctx, g, mg, cfg.opts)
				cancel()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationObjective measures the cost of proving routing
// optimality (eq. 10) over plain feasibility.
func BenchmarkAblationObjective(b *testing.B) {
	if testing.Short() {
		b.Skip("solver ablation: skipped in -short tier")
	}
	mg := mustMRRG(b, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1})
	g := bench.MustGet("2x2-f")
	for _, cfg := range []struct {
		name string
		opts mapper.Options
	}{
		{"feasibility", mapper.Options{}},
		{"minimize-routing", mapper.Options{Objective: mapper.MinimizeRouting}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				res, err := mapper.Map(ctx, g, mg, cfg.opts)
				cancel()
				if err != nil {
					b.Fatal(err)
				}
				if res.Mapping != nil {
					b.ReportMetric(float64(res.Mapping.RoutingCost()), "routing-cost")
				}
			}
		})
	}
}

func mustMRRG(b *testing.B, spec arch.GridSpec) *mrrg.Graph {
	b.Helper()
	a, err := arch.Grid(spec)
	if err != nil {
		b.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		b.Fatal(err)
	}
	return mg
}
