// Customdfg: author a kernel in the textual DFG format, map it with the
// routing-minimisation objective (the paper's eq. 10), and compare the
// optimal routing cost against a plain feasibility solution.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cgramap"
)

// A small Horner-evaluation kernel in the textual DFG format. Operands
// name the producing operation; '#' starts a comment.
const kernelText = `
dfg horner3
# p(x) = ((c3*x + c2)*x + c1)
input x
input c1
input c2
input c3
mul t1 c3 x
add t2 t1 c2
mul t3 t2 x
add t4 t3 c1
output p t4
`

func main() {
	app, err := cgramap.ParseDFG(strings.NewReader(kernelText))
	if err != nil {
		log.Fatal(err)
	}
	st := app.Stats()
	fmt.Printf("parsed %s: %d I/Os, %d ops (%d multiplies)\n", app.Name, st.IOs, st.Ops, st.Multiplies)

	device := cgramap.MustMRRG(cgramap.MustGrid(cgramap.GridSpec{
		Rows: 4, Cols: 4,
		Interconnect: cgramap.Diagonal,
		Homogeneous:  true,
		Contexts:     1,
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	feas, err := cgramap.Map(ctx, app, device, cgramap.MapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !feas.Feasible() {
		log.Fatalf("unmappable: %v %s", feas.Status, feas.Reason)
	}
	fmt.Printf("feasibility solve:  status %-10v routing cost %d\n", feas.Status, feas.Mapping.RoutingCost())

	opt, err := cgramap.Map(ctx, app, device, cgramap.MapOptions{Objective: cgramap.MinimizeRouting})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimised solve:    status %-10v routing cost %d\n", opt.Status, opt.Mapping.RoutingCost())
	fmt.Println()
	if err := opt.Mapping.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
