// Frontier: chart where a kernel ladder stops mapping onto a fabric.
// The workload generator emits the dot-product ladder (rung n = an
// n-lane unrolled dot product) and the frontier engine bisects rung
// size against the ILP mapper on a tiny heterogeneous 2x2 — whose two
// multiplier cells pin the frontier at n=2 — then re-renders the saved
// JSON report as markdown. The cmd/frontier CLI wraps exactly this
// flow for bigger fabrics.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"cgramap"
)

func main() {
	// A fabric description, exactly as cmd/frontier's -fabrics flag
	// takes it: 2x2, diagonal interconnect, heterogeneous (only the
	// checkerboard cells multiply).
	fabric, err := cgramap.ParseFabric("2x2:diag,hetero")
	if err != nil {
		log.Fatal(err)
	}

	// Probe the dot ladder: rung n needs n multipliers, so feasibility
	// must flip between n=2 (the fabric's multiplier count) and n=3.
	spec := cgramap.FrontierSpec{
		Family:  cgramap.KernelFamily("dot"),
		MinN:    1,
		MaxN:    8,
		Fabrics: []cgramap.FabricSpec{fabric},
	}
	front, err := cgramap.RunFrontier(context.Background(), spec, cgramap.FrontierOptions{
		Timeout:  30 * time.Second,
		Progress: os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, b := range front.Boundaries {
		if b.Bracketed() {
			fmt.Printf("%s @ II=%d: largest mappable rung n=%d, first unmappable n=%d (%d probes)\n",
				b.Fabric, b.II, b.MaxFeasibleN, b.MinInfeasibleN, len(b.Probes))
		}
	}

	// Reports are deterministic for a fixed seed: serialise to JSON,
	// read back, render markdown — what cmd/frontier's run/report
	// subcommands do.
	var blob bytes.Buffer
	if err := front.WriteJSON(&blob); err != nil {
		log.Fatal(err)
	}
	reloaded, err := cgramap.ReadFrontierJSON(&blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := reloaded.WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
