// Quickstart: the paper's Fig. 7 flow end to end — describe an
// architecture, generate its MRRG, build an application DFG, solve the
// ILP mapping formulation, and print the verified placement and routing.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"cgramap"
)

func main() {
	// 1. Architecture: a 4x4 array with diagonal interconnect, full
	//    ALUs, and two execution contexts (II = 2).
	architecture := cgramap.MustGrid(cgramap.GridSpec{
		Rows: 4, Cols: 4,
		Interconnect: cgramap.Diagonal,
		Homogeneous:  true,
		Contexts:     2,
	})

	// 2. Device model: the Modulo Routing Resource Graph.
	device := cgramap.MustMRRG(architecture)
	fmt.Printf("architecture %s -> MRRG with %d nodes\n", architecture.Name, len(device.Nodes))

	// 3. Application: a multiply-accumulate kernel built through the
	//    DFG builder API.
	app := cgramap.NewDFG("dot2")
	a := app.In("a")
	b := app.In("b")
	c := app.In("c")
	d := app.In("d")
	ab := app.Mul("ab", a, b)
	cd := app.Mul("cd", c, d)
	sum := app.Add("sum", ab, cd)
	app.Out("result", sum)

	// 4. Map with the ILP formulation (feasibility mode).
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := cgramap.Map(ctx, app, device, cgramap.MapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status: %v (%d ILP variables, %d constraints)\n", res.Status, res.Vars, res.Constraints)
	if !res.Feasible() {
		log.Fatalf("no mapping: %s", res.Reason)
	}

	// 5. The mapping has already been verified independently; print it.
	if err := res.Mapping.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing cost: %d resources\n", res.Mapping.RoutingCost())
}
