// Archexplore: the architect's use case from the paper's introduction —
// tune architecture flexibility down to the limit of mappability for a
// domain's kernels. The ILP mapper's provable feasibility/infeasibility
// answers make the trade-off table trustworthy: a 0 here means *no*
// mapping exists, not that a heuristic gave up.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cgramap"
)

func main() {
	// The kernel set of a hypothetical signal-processing domain.
	kernels := []string{"accum", "2x2-f", "2x2-p", "mult_10", "exp_4"}

	// Candidate architectures, cheapest first: fewer contexts, fewer
	// multipliers, narrower interconnect.
	type candidate struct {
		label string
		spec  cgramap.GridSpec
	}
	candidates := []candidate{
		{"cheapest ", cgramap.GridSpec{Rows: 4, Cols: 4, Contexts: 1}},
		{"+diagonal", cgramap.GridSpec{Rows: 4, Cols: 4, Contexts: 1, Interconnect: cgramap.Diagonal}},
		{"+homogen ", cgramap.GridSpec{Rows: 4, Cols: 4, Contexts: 1, Homogeneous: true}},
		{"+both    ", cgramap.GridSpec{Rows: 4, Cols: 4, Contexts: 1, Interconnect: cgramap.Diagonal, Homogeneous: true}},
		{"2 ctx    ", cgramap.GridSpec{Rows: 4, Cols: 4, Contexts: 2, Homogeneous: true, Interconnect: cgramap.Diagonal}},
	}

	fmt.Printf("%-10s", "arch")
	for _, k := range kernels {
		fmt.Printf(" %-8s", k)
	}
	fmt.Println(" verdict")
	for _, cand := range candidates {
		device := cgramap.MustMRRG(cgramap.MustGrid(cand.spec))
		fmt.Printf("%-10s", cand.label)
		allMapped := true
		for _, k := range kernels {
			g, err := cgramap.Benchmark(k)
			if err != nil {
				log.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := cgramap.Map(ctx, g, device, cgramap.MapOptions{})
			cancel()
			if err != nil {
				log.Fatal(err)
			}
			mark := "no"
			if res.Feasible() {
				mark = "yes"
			} else if res.Status == cgramap.StatusUnknown {
				mark = "t/o"
			}
			allMapped = allMapped && res.Feasible()
			fmt.Printf(" %-8s", mark)
		}
		if allMapped {
			fmt.Println(" <- sufficient: stop paying for more flexibility")
			return
		}
		fmt.Println()
	}
	fmt.Println("no candidate maps the whole kernel set")
}
