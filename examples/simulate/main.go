// Simulate: the full hardware story — map a kernel with the ILP mapper,
// extract the fabric configuration (mux selections and opcodes per
// context), execute it on the cycle-accurate simulator, and check the
// computed values against direct DFG evaluation.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"cgramap"
)

func main() {
	// A 3-tap weighted sum: r = w0*x0 + w1*x1 + w2*x2.
	app := cgramap.NewDFG("taps3")
	var terms []*cgramap.Value
	for i := 0; i < 3; i++ {
		w := app.In(fmt.Sprintf("w%d", i))
		x := app.In(fmt.Sprintf("x%d", i))
		terms = append(terms, app.Mul(fmt.Sprintf("m%d", i), w, x))
	}
	sum := app.Add("s1", terms[0], terms[1])
	sum = app.Add("s2", sum, terms[2])
	app.Out("r", sum)

	spec := cgramap.GridSpec{Rows: 4, Cols: 4, Interconnect: cgramap.Diagonal, Homogeneous: true, Contexts: 2}
	architecture := cgramap.MustGrid(spec)

	// The modulo-scheduling bound tells the architect the minimum
	// context count before any solve.
	if mii, err := cgramap.MinII(app, architecture); err == nil {
		fmt.Printf("minimum initiation interval: %d (mapping with %d contexts)\n", mii, spec.Contexts)
	}

	device := cgramap.MustMRRG(architecture)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := cgramap.Map(ctx, app, device, cgramap.MapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible() {
		log.Fatalf("unmappable: %v %s", res.Status, res.Reason)
	}

	cfg, err := cgramap.ExtractConfig(res.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := cfg.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	inputs := map[string]uint32{
		"w0": 2, "x0": 10,
		"w1": 3, "x1": 100,
		"w2": 5, "x2": 1000,
	}
	if err := cgramap.ValidateMapping(res.Mapping, inputs, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated fabric computes r = %d — matches direct DFG evaluation\n",
		2*10+3*100+5*1000)
}
