// Heuristicgap: the CAD expert's use case from the paper's introduction —
// the ILP mapper bounds what any heuristic can achieve, so running the
// simulated-annealing mapper against it quantifies the heuristic's gap
// (the per-instance version of the paper's Fig. 8).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cgramap"
)

func main() {
	device := cgramap.MustMRRG(cgramap.MustGrid(cgramap.GridSpec{
		Rows: 4, Cols: 4,
		Interconnect: cgramap.Orthogonal,
		Homogeneous:  true,
		Contexts:     2,
	}))

	kernels := []string{"accum", "2x2-f", "2x2-p", "add_10", "mult_10", "exp_4"}
	fmt.Printf("%-10s %-14s %-14s %s\n", "kernel", "ILP", "annealing", "verdict")

	ilpFound, saFound := 0, 0
	for _, k := range kernels {
		g, err := cgramap.Benchmark(k)
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
		ilpRes, err := cgramap.Map(ctx, g, device, cgramap.MapOptions{})
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		g2, _ := cgramap.Benchmark(k)
		ctx, cancel = context.WithTimeout(context.Background(), 45*time.Second)
		saRes, err := cgramap.AnnealMap(ctx, g2, device, cgramap.AnnealOptions{})
		cancel()
		if err != nil {
			log.Fatal(err)
		}

		ilpMark, saMark := mark(ilpRes.Feasible()), mark(saRes.Feasible)
		if ilpRes.Feasible() {
			ilpFound++
		}
		if saRes.Feasible {
			saFound++
		}
		verdict := ""
		switch {
		case ilpRes.Feasible() && !saRes.Feasible:
			verdict = "heuristic missed a provably existing mapping"
		case ilpRes.Status == cgramap.StatusInfeasible && !saRes.Feasible:
			verdict = "no mapping exists; heuristic correctly failed"
		}
		fmt.Printf("%-10s %-14s %-14s %s\n", k, ilpMark, saMark, verdict)
	}
	fmt.Printf("\nILP mapped %d/%d kernels, annealing %d/%d — the gap the paper's Fig. 8 reports\n",
		ilpFound, len(kernels), saFound, len(kernels))
}

func mark(ok bool) string {
	if ok {
		return "mapped"
	}
	return "not mapped"
}
