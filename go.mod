module cgramap

go 1.24
