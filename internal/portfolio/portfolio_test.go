package portfolio

import (
	"context"
	"strings"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/faultinject"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// spec2x2 is a tiny diagonal grid with two contexts — 2x2-f's minimum
// initiation interval is 2, and every engine decides it there quickly.
var spec2x2 = arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2}

func instance(t testing.TB, name string, spec arch.GridSpec) (*dfg.Graph, *mrrg.Graph) {
	t.Helper()
	g, err := bench.Get(name)
	if err != nil {
		t.Fatalf("bench %s: %v", name, err)
	}
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatalf("mrrg: %v", err)
	}
	return g, mg
}

func report(t *testing.T, res *Result, name string) Report {
	t.Helper()
	for _, r := range res.Reports {
		if r.Strategy == name {
			return r
		}
	}
	t.Fatalf("no report for strategy %q in %+v", name, res.Reports)
	return Report{}
}

// TestRaceWinnerAndLoserCancellation stalls every strategy except the
// default CDCL racer and checks that the winner's verified answer comes
// back while all losers observe cancellation.
func TestRaceWinnerAndLoserCancellation(t *testing.T) {
	g, mg := instance(t, "2x2-f", spec2x2)
	res, err := Map(context.Background(), g, mg, Options{
		Timeout:         30 * time.Second,
		Attempts:        1,
		DisableFallback: true, // keep the heuristic out of the race
		WrapSolver: func(name string, s ilp.Solver) ilp.Solver {
			if name == "cdcl" {
				return s
			}
			return faultinject.New(s, faultinject.Options{Faults: faultinject.Delay, DelayFor: time.Hour})
		},
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if !res.Feasible() {
		t.Fatalf("status = %v (%s), want feasible", res.Status, res.Reason)
	}
	if res.Winner != "cdcl" || !res.Proven {
		t.Fatalf("winner = %q proven=%v, want cdcl/proven", res.Winner, res.Proven)
	}
	if res.Mapping == nil {
		t.Fatal("feasible result without mapping")
	}
	if err := res.Mapping.Verify(); err != nil {
		t.Fatalf("winner mapping fails verification: %v", err)
	}
	if !report(t, res, "cdcl").Winner {
		t.Error("cdcl report not marked winner")
	}
	for _, loser := range []string{"cdcl-rand1", "bb"} {
		if r := report(t, res, loser); !r.Cancelled {
			t.Errorf("loser %s did not observe cancellation: %+v", loser, r)
		}
	}
}

// TestPanicContainment makes every exact engine panic on every attempt:
// the orchestrator must retry per its budget, attach recovered stacks,
// and come back with Unknown — never crash.
func TestPanicContainment(t *testing.T) {
	g, mg := instance(t, "2x2-f", spec2x2)
	res, err := Map(context.Background(), g, mg, Options{
		Timeout:         30 * time.Second,
		Attempts:        3,
		Backoff:         time.Millisecond,
		DisableFallback: true,
		WrapSolver: func(_ string, s ilp.Solver) ilp.Solver {
			return faultinject.New(s, faultinject.Options{Faults: faultinject.Panic})
		},
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.Status != ilp.Unknown || res.Winner != "" {
		t.Fatalf("status=%v winner=%q, want unknown/no winner", res.Status, res.Winner)
	}
	for _, name := range []string{"cdcl", "cdcl-rand1", "bb"} {
		r := report(t, res, name)
		if r.Panics != 3 || r.Attempts != 3 {
			t.Errorf("%s: panics=%d attempts=%d, want 3/3", name, r.Panics, r.Attempts)
		}
		if !strings.Contains(r.LastPanic, "injected panic") {
			t.Errorf("%s: LastPanic missing recovered value: %q", name, r.LastPanic)
		}
	}
	if !strings.Contains(res.Reason, "panicked") {
		t.Errorf("Reason lacks panic post-mortem: %q", res.Reason)
	}
}

// TestHeuristicFallback breaks every exact engine and checks the
// degradation path: the annealing witness is returned, clearly labelled
// as non-provable.
func TestHeuristicFallback(t *testing.T) {
	g, mg := instance(t, "2x2-f", spec2x2)
	res, err := Map(context.Background(), g, mg, Options{
		Timeout:  60 * time.Second,
		Attempts: 2,
		Backoff:  time.Millisecond,
		WrapSolver: func(_ string, s ilp.Solver) ilp.Solver {
			return faultinject.New(s, faultinject.Options{Faults: faultinject.Panic})
		},
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if !res.Feasible() {
		t.Fatalf("status = %v (%s), want heuristic feasible", res.Status, res.Reason)
	}
	if res.Winner != "anneal" || res.Proven || !res.Degraded() {
		t.Fatalf("winner=%q proven=%v degraded=%v, want anneal/unproven/degraded", res.Winner, res.Proven, res.Degraded())
	}
	if !strings.Contains(res.Reason, "heuristic") {
		t.Errorf("heuristic win not labelled: Reason = %q", res.Reason)
	}
	if err := res.Mapping.Verify(); err != nil {
		t.Fatalf("heuristic mapping fails verification: %v", err)
	}
}

// TestInfeasibilityProofWins maps a kernel that cannot fit: an exact
// strategy must win with a proof while the heuristic (which can never
// prove absence) loses.
func TestInfeasibilityProofWins(t *testing.T) {
	g, mg := instance(t, "add_10", spec2x2)
	res, err := Map(context.Background(), g, mg, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.Status != ilp.Infeasible {
		t.Fatalf("status = %v (%s), want infeasible", res.Status, res.Reason)
	}
	if res.Winner == "anneal" || !res.Proven {
		t.Fatalf("infeasibility claimed by %q (proven=%v)", res.Winner, res.Proven)
	}
}

// TestRetryAfterTransientFaults fires a fault on roughly half the solver
// calls: the backoff-and-reseed retry loop must still converge on the
// right answer.
func TestRetryAfterTransientFaults(t *testing.T) {
	g, mg := instance(t, "2x2-f", spec2x2)
	res, err := Map(context.Background(), g, mg, Options{
		Timeout:  60 * time.Second,
		Attempts: 4,
		Backoff:  time.Millisecond,
		WrapSolver: func(_ string, s ilp.Solver) ilp.Solver {
			return faultinject.New(s, faultinject.Options{
				Faults: faultinject.Panic | faultinject.CorruptFlip,
				Prob:   0.5,
			})
		},
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if !res.Feasible() {
		t.Fatalf("status = %v (%s), want feasible despite transient faults", res.Status, res.Reason)
	}
	if err := res.Mapping.Verify(); err != nil {
		t.Fatalf("returned mapping fails verification: %v", err)
	}
}

// TestMapAutoThroughPortfolio checks the MapWith seam: MapAuto driven by
// the portfolio must find the same minimal II as the direct mapper.
func TestMapAutoThroughPortfolio(t *testing.T) {
	g, err := bench.Get("2x2-f")
	if err != nil {
		t.Fatal(err)
	}
	a, err := arch.Grid(spec2x2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := mapper.MapAuto(context.Background(), g, a, 4, mapper.Options{})
	if err != nil {
		t.Fatalf("direct MapAuto: %v", err)
	}
	ported, err := mapper.MapAuto(context.Background(), g, a, 4, mapper.Options{
		MapWith: MapFunc(Options{Timeout: 30 * time.Second}),
	})
	if err != nil {
		t.Fatalf("portfolio MapAuto: %v", err)
	}
	if !direct.Feasible() || !ported.Feasible() {
		t.Fatalf("feasibility: direct=%v portfolio=%v", direct.Status, ported.Status)
	}
	if direct.II != ported.II {
		t.Fatalf("II mismatch: direct=%d portfolio=%d", direct.II, ported.II)
	}
	if err := ported.Mapping.Verify(); err != nil {
		t.Fatalf("portfolio MapAuto mapping invalid: %v", err)
	}
}

// TestPortfolioDeadline bounds a race where every strategy stalls: the
// orchestrator must give up at its deadline with Unknown, not hang.
func TestPortfolioDeadline(t *testing.T) {
	g, mg := instance(t, "2x2-f", spec2x2)
	start := time.Now()
	res, err := Map(context.Background(), g, mg, Options{
		Timeout:         200 * time.Millisecond,
		Attempts:        1,
		DisableFallback: true,
		WrapSolver: func(_ string, s ilp.Solver) ilp.Solver {
			return faultinject.New(s, faultinject.Options{Faults: faultinject.Delay, DelayFor: time.Hour})
		},
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.Status != ilp.Unknown {
		t.Fatalf("status = %v, want unknown at deadline", res.Status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("race outlived its deadline: %v", elapsed)
	}
}

// TestIncrementalStrategyWins stalls every strategy except cdcl-inc and
// checks that the incremental session's answer wins the race verified,
// and that its retries reuse one session (the second attempt reports
// reused constraints).
func TestIncrementalStrategyWins(t *testing.T) {
	g, mg := instance(t, "2x2-f", spec2x2)
	res, err := Map(context.Background(), g, mg, Options{
		Timeout:         30 * time.Second,
		Attempts:        1,
		Incremental:     true,
		DisableFallback: true,
		WrapSolver: func(name string, s ilp.Solver) ilp.Solver {
			if name == "cdcl-inc" {
				return s
			}
			return faultinject.New(s, faultinject.Options{Faults: faultinject.Delay, DelayFor: time.Hour})
		},
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if !res.Feasible() {
		t.Fatalf("status = %v (%s), want feasible", res.Status, res.Reason)
	}
	if res.Winner != "cdcl-inc" || !res.Proven {
		t.Fatalf("winner = %q proven=%v, want cdcl-inc/proven", res.Winner, res.Proven)
	}
	if err := res.Mapping.Verify(); err != nil {
		t.Fatalf("winner mapping fails verification: %v", err)
	}
	if res.SolverStats["incremental"] != 1 {
		t.Fatalf("winner stats not incremental: %v", res.SolverStats)
	}
}

// TestIncrementalStrategyRetryAfterPanic panics cdcl-inc's first
// attempt. The race harness must contain the panic and the retry must
// win on the same session object (the session's busy guard rebuilds the
// solver if the aborted attempt had touched it).
func TestIncrementalStrategyRetryAfterPanic(t *testing.T) {
	g, mg := instance(t, "2x2-f", spec2x2)
	failed := false
	res, err := Map(context.Background(), g, mg, Options{
		Timeout:         30 * time.Second,
		Attempts:        3,
		Backoff:         time.Millisecond,
		Incremental:     true,
		DisableFallback: true,
		WrapSolver: func(name string, s ilp.Solver) ilp.Solver {
			if name != "cdcl-inc" {
				return faultinject.New(s, faultinject.Options{Faults: faultinject.Delay, DelayFor: time.Hour})
			}
			if !failed {
				failed = true
				return faultinject.New(s, faultinject.Options{Faults: faultinject.Panic})
			}
			return s
		},
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.Winner != "cdcl-inc" || !res.Feasible() {
		t.Fatalf("winner = %q status=%v, want feasible cdcl-inc", res.Winner, res.Status)
	}
	r := report(t, res, "cdcl-inc")
	if r.Attempts < 2 || r.Panics != 1 {
		t.Fatalf("expected one contained panic then a winning retry, got %+v", r)
	}
	if res.SolverStats["incremental"] != 1 {
		t.Fatalf("winner stats not incremental: %v", res.SolverStats)
	}
}
