// Package portfolio implements a resilient solve orchestrator for CGRA
// mapping: it races several strategies — the CDCL engine, CDCL with
// randomized branching seeds, LP branch-and-bound, and the
// simulated-annealing heuristic — in parallel goroutines under a shared
// deadline, returns the first definitive answer (a verified feasible
// mapping or an infeasibility proof) and cancels the losers.
//
// The orchestrator is built to degrade gracefully rather than fail:
//
//   - every strategy attempt runs inside a panic-containment wrapper, so
//     a buggy or fault-injected engine becomes a Status: Unknown report
//     (with the recovered stack attached) instead of killing a sweep;
//   - each strategy has an attempt budget with backoff-and-reseed
//     retries, so transient stalls, panics and injected faults are
//     retried on a fresh search trajectory;
//   - when every exact engine times out, a feasible annealing answer is
//     still returned, clearly labelled as a heuristic witness with no
//     optimality or infeasibility proof (the degradation order is exact
//     → reseeded exact → heuristic);
//   - when nothing is definitive, the result is Status: Unknown with a
//     per-strategy post-mortem, never an orchestrator crash.
//
// This mirrors how later exact mappers (Walker & Anderson's
// connectivity-based ILP, SAT-MapIt) stay usable on NP-hard instances:
// solver time limits plus staged fallbacks, here generalised to a
// portfolio race.
package portfolio

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"cgramap/internal/anneal"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/bb"
	"cgramap/internal/solve/cdcl"
)

// Options configures the orchestrator. The zero value races the default
// strategy set with a 3-attempt budget per strategy.
type Options struct {
	// Timeout bounds the whole race; 0 relies on the caller's context
	// deadline alone.
	Timeout time.Duration
	// Attempts is the per-strategy attempt budget: an attempt that
	// panics, errors, or ends Unknown is retried on a fresh seed after
	// a backoff, up to this many times (default 3).
	Attempts int
	// Backoff is the base delay between a strategy's attempts; the k-th
	// retry waits k*Backoff (default 10ms).
	Backoff time.Duration
	// Seed drives every derived reseed (default 1).
	Seed int64
	// ReseededRacers is how many extra CDCL strategies race with
	// randomized branching seeds (default 1).
	ReseededRacers int
	// Workers, when > 1, adds a clause-sharing parallel CDCL gang of
	// that width ("cdcl-par") to the race. The gang's extra workers pay
	// tokens from Mapper.Budget (nil selects the process-wide pool), so
	// the strategy narrows rather than oversubscribes when the machine
	// is busy.
	Workers int
	// Incremental adds an assumption-based incremental CDCL strategy
	// ("cdcl-inc") to the race: one cdcl.Session is kept across the
	// strategy's attempts, so a retry after a timeout resumes with every
	// clause the failed attempt learnt instead of starting over. The
	// session's poisoning guard makes this safe even when an attempt
	// panics and is contained by the race harness.
	Incremental bool
	// DisableFallback drops the annealing strategy, leaving only exact
	// engines.
	DisableFallback bool
	// DisableBB drops the LP branch-and-bound strategy.
	DisableBB bool
	// Anneal parameterises the heuristic fallback.
	Anneal anneal.Options
	// Mapper carries the formulation options (objective, ablations).
	// Its Solver and MapWith fields are ignored: the portfolio chooses
	// engines itself.
	Mapper mapper.Options
	// WrapSolver, when non-nil, decorates each exact strategy's engine
	// before use — the seam the fault-injection harness plugs into.
	WrapSolver func(strategy string, s ilp.Solver) ilp.Solver
}

func (o *Options) fill() {
	if o.Attempts == 0 {
		o.Attempts = 3
	}
	if o.Backoff == 0 {
		o.Backoff = 10 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ReseededRacers == 0 {
		o.ReseededRacers = 1
	}
}

// Report is one strategy's post-mortem of the race.
type Report struct {
	// Strategy names the engine ("cdcl", "cdcl-rand1", "bb", "anneal").
	Strategy string
	// Attempts counts how many attempts ran (>= 1 unless the race ended
	// before the strategy's first attempt started).
	Attempts int
	// Status is the last solve status the strategy reached.
	Status ilp.Status
	// Panics counts contained panics; LastPanic holds the final
	// recovered value with its stack, truncated.
	Panics    int
	LastPanic string
	// Err is the last non-panic error, if any.
	Err string
	// Cancelled reports that the strategy observed the shared race
	// context ending (because another strategy won, or the deadline
	// passed) before producing a definitive answer.
	Cancelled bool
	// Winner marks the strategy whose answer was returned.
	Winner bool
	// Elapsed is the strategy's wall-clock time in the race.
	Elapsed time.Duration
}

// Result is a portfolio mapping outcome.
type Result struct {
	// Result is the winning answer (or a Status: Unknown summary when
	// no strategy was definitive). A heuristic win carries its label in
	// Reason.
	*mapper.Result
	// Winner names the strategy whose answer was returned; empty when
	// nothing was definitive.
	Winner string
	// Proven is true when the answer came from an exact engine (an
	// infeasibility proof, or a mapping found by a complete search). A
	// heuristic win is a verified witness but proves nothing beyond
	// feasibility, and a heuristic non-answer proves nothing at all.
	Proven bool
	// Reports collects every strategy's post-mortem, sorted by name.
	Reports []Report
}

// Degraded reports that the answer came from the heuristic fallback.
func (r *Result) Degraded() bool { return r.Winner == annealStrategy }

const annealStrategy = "anneal"

// strategy is one racer: name plus an attempt runner. run must honour
// ctx and may be called multiple times with increasing attempt numbers.
type strategy struct {
	name string
	run  func(ctx context.Context, attempt int) (*mapper.Result, error)
}

// outcome is what a strategy goroutine sends back when it exits.
type outcome struct {
	report Report
	res    *mapper.Result // non-nil only for a definitive answer
}

// deriveSeed mixes the base seed with a strategy and attempt index into
// a non-zero seed for an independent trajectory.
func deriveSeed(base int64, strat, attempt int) int64 {
	h := uint64(base) + uint64(strat+1)*0x9E3779B97F4A7C15 + uint64(attempt+1)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	if h == 0 {
		h = 1
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// strategies assembles the racer set for one Map call.
func strategies(g *dfg.Graph, mg *mrrg.Graph, opts Options) []strategy {
	wrap := opts.WrapSolver
	if wrap == nil {
		wrap = func(_ string, s ilp.Solver) ilp.Solver { return s }
	}
	mo := opts.Mapper
	mo.MapWith = nil

	exact := func(name string, mk func(attempt int) ilp.Solver) strategy {
		return strategy{name: name, run: func(ctx context.Context, attempt int) (*mapper.Result, error) {
			o := mo
			o.Solver = wrap(name, mk(attempt))
			return mapper.Map(ctx, g, mg, o)
		}}
	}

	sts := []strategy{
		// The deterministic default trajectory first; its retries
		// reseed (backoff-and-reseed for transient stalls).
		exact("cdcl", func(attempt int) ilp.Solver {
			if attempt == 0 {
				return cdcl.New()
			}
			return cdcl.NewSeeded(deriveSeed(opts.Seed, 0, attempt))
		}),
	}
	for k := 1; k <= opts.ReseededRacers; k++ {
		k := k
		sts = append(sts, exact(fmt.Sprintf("cdcl-rand%d", k), func(attempt int) ilp.Solver {
			return cdcl.NewSeeded(deriveSeed(opts.Seed, k, attempt))
		}))
	}
	if opts.Workers > 1 {
		idx := len(sts)
		sts = append(sts, exact("cdcl-par", func(attempt int) ilp.Solver {
			seed := opts.Seed
			if attempt > 0 {
				seed = deriveSeed(opts.Seed, idx, attempt)
			}
			pe := cdcl.NewParallel(opts.Workers, seed)
			pe.Budget = opts.Mapper.Budget
			return pe
		}))
	}
	if opts.Incremental {
		// One session for every attempt of this strategy: retries keep
		// the learnt clauses of the attempts that timed out.
		sess := cdcl.NewSession(deriveSeed(opts.Seed, len(sts), 0))
		sts = append(sts, exact("cdcl-inc", func(int) ilp.Solver { return sess }))
	}
	if !opts.DisableBB {
		sts = append(sts, exact("bb", func(int) ilp.Solver { return bb.New() }))
	}
	if !opts.DisableFallback {
		idx := len(sts)
		sts = append(sts, strategy{name: annealStrategy, run: func(ctx context.Context, attempt int) (*mapper.Result, error) {
			ao := opts.Anneal
			ao.Seed = deriveSeed(opts.Seed, idx, attempt)
			start := time.Now()
			res, err := anneal.Map(ctx, g, mg, ao)
			if err != nil {
				return nil, err
			}
			out := &mapper.Result{
				Status:      res.Status,
				SolverStats: res.Stats,
				SolveTime:   time.Since(start),
			}
			if res.Feasible {
				out.Mapping = res.Mapping
				out.Reason = "heuristic (simulated annealing) witness; no optimality or infeasibility proof"
			}
			return out, nil
		}})
	}
	return sts
}

// runContained executes one attempt with panic containment. A panic is
// reported as a message (recovered value plus truncated stack) instead
// of unwinding into the race.
func runContained(fn func() (*mapper.Result, error)) (res *mapper.Result, err error, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, nil
			stack := debug.Stack()
			if len(stack) > 4096 {
				stack = stack[:4096]
			}
			panicMsg = fmt.Sprintf("%v\n%s", r, stack)
		}
	}()
	res, err = fn()
	return res, err, ""
}

// definitive reports whether a strategy result decides the instance: a
// feasible mapping or an infeasibility proof. Unknown (timeout, stall,
// heuristic miss) keeps the race open.
func definitive(res *mapper.Result) bool {
	return res != nil && res.Status != ilp.Unknown
}

// race runs one strategy's attempt loop and reports its fate.
func race(ctx context.Context, st strategy, opts Options) outcome {
	rep := Report{Strategy: st.name}
	start := time.Now()
	var won *mapper.Result
	for attempt := 0; attempt < opts.Attempts && ctx.Err() == nil; attempt++ {
		rep.Attempts++
		res, err, panicMsg := runContained(func() (*mapper.Result, error) {
			return st.run(ctx, attempt)
		})
		switch {
		case panicMsg != "":
			rep.Panics++
			rep.LastPanic = panicMsg
			rep.Status = ilp.Unknown
		case err != nil:
			rep.Err = err.Error()
			rep.Status = ilp.Unknown
		default:
			rep.Status = res.Status
			if definitive(res) {
				won = res
			}
		}
		if won != nil {
			break
		}
		if attempt+1 < opts.Attempts {
			// Back off before reseeding, without outliving the race.
			t := time.NewTimer(time.Duration(attempt+1) * opts.Backoff)
			select {
			case <-ctx.Done():
			case <-t.C:
			}
			t.Stop()
		}
	}
	rep.Elapsed = time.Since(start)
	rep.Cancelled = ctx.Err() != nil && won == nil
	return outcome{report: rep, res: won}
}

// Map places and routes g onto mg by racing the portfolio's strategies.
// It never returns an error for solver-level failures (panics, stalls,
// corrupted solutions): those are contained, retried, and ultimately
// reported as a Status: Unknown result with per-strategy post-mortems.
func Map(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error) {
	opts.fill()
	raceCtx := ctx
	cancel := context.CancelFunc(func() {})
	if opts.Timeout > 0 {
		raceCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
	} else {
		raceCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	sts := strategies(g, mg, opts)
	outcomes := make(chan outcome, len(sts))
	for _, st := range sts {
		st := st
		go func() { outcomes <- race(raceCtx, st, opts) }()
	}

	var winner *mapper.Result
	winnerName := ""
	reports := make([]Report, 0, len(sts))
	for range sts {
		// Collect every strategy: this both gathers complete reports
		// and guarantees the losers observed cancellation before Map
		// returns (no goroutine outlives the call).
		o := <-outcomes
		if o.res != nil && winner == nil {
			winner = o.res
			winnerName = o.report.Strategy
			o.report.Winner = true
			cancel()
		}
		reports = append(reports, o.report)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Strategy < reports[j].Strategy })

	if winner != nil {
		return &Result{
			Result:  winner,
			Winner:  winnerName,
			Proven:  winnerName != annealStrategy,
			Reports: reports,
		}, nil
	}
	return &Result{
		Result: &mapper.Result{
			Status: ilp.Unknown,
			Reason: "portfolio: no strategy decided the instance — " + summarize(reports),
		},
		Reports: reports,
	}, nil
}

// summarize renders a compact per-strategy post-mortem for the Unknown
// result's Reason.
func summarize(reports []Report) string {
	parts := make([]string, 0, len(reports))
	for _, r := range reports {
		detail := r.Status.String()
		switch {
		case r.Panics > 0:
			detail = fmt.Sprintf("panicked x%d", r.Panics)
		case r.Err != "":
			detail = "error: " + firstLine(r.Err)
		case r.Cancelled:
			detail = "cancelled"
		}
		parts = append(parts, fmt.Sprintf("%s: %s after %d attempt(s)", r.Strategy, detail, r.Attempts))
	}
	return strings.Join(parts, "; ")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// MapFunc adapts the portfolio to the mapper.MapFunc seam, for slotting
// into mapper.Options.MapWith (MapAuto, the experiment sweeps, the
// CLIs). The formulation options of each dispatch call override
// opts.Mapper; the portfolio's racing parameters come from opts.
func MapFunc(opts Options) mapper.MapFunc {
	return func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, mo mapper.Options) (*mapper.Result, error) {
		o := opts
		o.Mapper = mo
		res, err := Map(ctx, g, mg, o)
		if err != nil {
			return nil, err
		}
		return res.Result, nil
	}
}
