package portfolio

import (
	"context"
	"testing"

	"cgramap/internal/anneal"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/solve/bb"
	"cgramap/internal/solve/cdcl"
)

// TestUnifiedCancellationSemantics pins the contract every engine in the
// portfolio relies on: under a cancelled context, cdcl, branch-and-bound
// and the annealer all return Status Unknown with a "cancelled" stat —
// never an error, never a bogus proof.
func TestUnifiedCancellationSemantics(t *testing.T) {
	g, mg := instance(t, "2x2-f", spec2x2)
	model, reason, err := mapper.BuildModel(g, mg, mapper.Options{})
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	if model == nil {
		t.Fatalf("instance unexpectedly infeasible at build time: %s", reason)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		engine string
		solve  func() (ilp.Status, map[string]int64, error)
	}{
		{"cdcl", func() (ilp.Status, map[string]int64, error) {
			sol, err := cdcl.New().Solve(ctx, model)
			if err != nil {
				return 0, nil, err
			}
			return sol.Status, sol.Stats, nil
		}},
		{"bb", func() (ilp.Status, map[string]int64, error) {
			sol, err := bb.New().Solve(ctx, model)
			if err != nil {
				return 0, nil, err
			}
			return sol.Status, sol.Stats, nil
		}},
		{"anneal", func() (ilp.Status, map[string]int64, error) {
			res, err := anneal.Map(ctx, g, mg, anneal.Options{})
			if err != nil {
				return 0, nil, err
			}
			return res.Status, res.Stats, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.engine, func(t *testing.T) {
			status, stats, err := tc.solve()
			if err != nil {
				t.Fatalf("cancelled solve returned error: %v", err)
			}
			if status != ilp.Unknown {
				t.Errorf("status = %v, want Unknown", status)
			}
			if stats["cancelled"] != 1 {
				t.Errorf(`stats["cancelled"] = %d, want 1 (stats: %v)`, stats["cancelled"], stats)
			}
		})
	}
}
