package workload

import (
	"context"
	"fmt"
	"io"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/cdcl"
)

// FrontierSpec declares a mappability-frontier sweep: for every
// (fabric, II) pair, bisect the kernel-family ladder between MinN and
// MaxN to find where mapping flips from feasible to
// infeasible-or-timeout.
type FrontierSpec struct {
	// Family selects the kernel ladder; Seed parameterises the Gen
	// family (and is recorded so reports are reproducible).
	Family Family `json:"family"`
	Seed   int64  `json:"seed"`
	// MinN and MaxN bracket the ladder rungs probed (inclusive).
	MinN int `json:"min_n"`
	MaxN int `json:"max_n"`
	// Fabrics are the architectures swept.
	Fabrics []FabricSpec `json:"fabrics"`
	// IIs are the context counts tried per fabric (default: each
	// fabric's own context count).
	IIs []int `json:"iis"`
}

func (s FrontierSpec) validate() error {
	switch {
	case s.MinN < 1:
		return fmt.Errorf("workload: frontier MinN %d < 1", s.MinN)
	case s.MaxN < s.MinN:
		return fmt.Errorf("workload: frontier MaxN %d < MinN %d", s.MaxN, s.MinN)
	case len(s.Fabrics) == 0:
		return fmt.Errorf("workload: frontier needs at least one fabric")
	}
	for _, ii := range s.IIs {
		if ii < 1 {
			return fmt.Errorf("workload: frontier II %d < 1", ii)
		}
	}
	return nil
}

// FrontierOptions configures how each probe is solved.
type FrontierOptions struct {
	// Timeout bounds each probe's wall clock (default 10s). A probe
	// that times out counts as unmappable: the frontier charts what the
	// stack decides within budget, mirroring the paper's "T" cells.
	Timeout time.Duration
	// Mapper carries per-probe mapper options. Set Mapper.MapWith
	// (portfolio.MapFunc, or a service client's MapFunc for a remote
	// daemon) to route probes through an orchestrator. With
	// Mapper.Incremental set (and no Solver or MapWith), each boundary's
	// sequential probes share one incremental CDCL session: ladder rungs
	// of one kernel family overlap heavily, so later probes of a
	// bisection start from the earlier probes' learnt clauses.
	Mapper mapper.Options
	// Progress, when non-nil, receives one line per probe.
	Progress io.Writer
}

// Probe is one solved frontier cell.
type Probe struct {
	N      int        `json:"n"`
	Kernel string     `json:"kernel"`
	Status ilp.Status `json:"status"`
	Reason string     `json:"reason,omitempty"`
	// Elapsed is kept out of the serialised report so fixed-seed runs
	// are byte-identical across machines.
	Elapsed time.Duration `json:"-"`
}

// Feasible reports whether the probe found a mapping.
func (p Probe) Feasible() bool { return p.Status == ilp.Optimal || p.Status == ilp.Feasible }

// Boundary is the bisection result for one (fabric, II) pair.
type Boundary struct {
	Fabric string `json:"fabric"`
	II     int    `json:"ii"`
	// MaxFeasibleN is the largest rung found mappable (0: even MinN is
	// not); MinInfeasibleN is the smallest rung found unmappable
	// within budget (0: even MaxN maps). When both are set they are
	// adjacent probes bracketing the frontier.
	MaxFeasibleN   int `json:"max_feasible_n"`
	MinInfeasibleN int `json:"min_infeasible_n"`
	// Probes records every cell solved, in probe order.
	Probes []Probe `json:"probes"`
}

// Bracketed reports whether this boundary observed both a feasible and
// an unmappable rung — a genuine frontier crossing.
func (b Boundary) Bracketed() bool { return b.MaxFeasibleN > 0 && b.MinInfeasibleN > 0 }

// Frontier is a full sweep result.
type Frontier struct {
	Family     Family     `json:"family"`
	Seed       int64      `json:"seed"`
	MinN       int        `json:"min_n"`
	MaxN       int        `json:"max_n"`
	Boundaries []Boundary `json:"boundaries"`
}

// RunFrontier charts the mappability frontier described by spec. The
// bisection assumes ladder monotonicity (larger rungs are at most as
// mappable as smaller ones); per-probe panics and timeouts are
// contained into Unknown probes, exactly like the experiment sweeps, so
// one wedged instance costs one cell rather than the run. Only a
// cancelled sweep context aborts.
func RunFrontier(ctx context.Context, spec FrontierSpec, opts FrontierOptions) (*Frontier, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	front := &Frontier{Family: spec.Family, Seed: spec.Seed, MinN: spec.MinN, MaxN: spec.MaxN}
	kernels := make(map[int]*dfg.Graph)
	kernel := func(n int) (*dfg.Graph, error) {
		if g, ok := kernels[n]; ok {
			return g, nil
		}
		g, err := Kernel(spec.Family, n, spec.Seed)
		if err != nil {
			return nil, err
		}
		kernels[n] = g
		return g, nil
	}
	for _, fs := range spec.Fabrics {
		iis := spec.IIs
		if len(iis) == 0 {
			// Default: each fabric solved at its own context count.
			iis = []int{fs.GridSpec().Contexts}
		}
		for _, ii := range iis {
			gs := fs.GridSpec()
			gs.Contexts = ii
			device, err := buildDevice(gs, opts.Mapper.Artifacts)
			if err != nil {
				return nil, fmt.Errorf("workload: building %s: %w", gs.Name(), err)
			}
			b, err := bisect(ctx, device, gs.Name(), ii, spec, opts, kernel)
			if err != nil {
				return nil, err
			}
			front.Boundaries = append(front.Boundaries, *b)
		}
	}
	return front, nil
}

// buildDevice generates the MRRG for one fabric/II cell of the sweep,
// through the artifact cache when the sweep carries one (fabrics
// revisited at several IIs then share their per-II graphs).
func buildDevice(gs arch.GridSpec, cache *mapper.ArtifactCache) (*mrrg.Graph, error) {
	a, err := arch.Grid(gs)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		return cache.MRRG(a)
	}
	return mrrg.Generate(a)
}

// bisect runs the monotone search for one (fabric, II) pair.
func bisect(ctx context.Context, device *mrrg.Graph, fabricName string, ii int,
	spec FrontierSpec, opts FrontierOptions, kernel func(int) (*dfg.Graph, error)) (*Boundary, error) {
	b := &Boundary{Fabric: fabricName, II: ii}
	if opts.Mapper.Incremental && opts.Mapper.Solver == nil && opts.Mapper.MapWith == nil {
		// One session per boundary: its probes run sequentially on one
		// device, so they can safely share a solver. A probe that
		// panics poisons only the session's current state — the busy
		// guard rebuilds it on the next probe.
		opts.Mapper.Solver = cdcl.NewSession(opts.Mapper.Seed)
	}
	probe := func(n int) (bool, error) {
		g, err := kernel(n)
		if err != nil {
			return false, err
		}
		p, err := runProbe(ctx, g, device, n, opts)
		if err != nil {
			return false, err
		}
		b.Probes = append(b.Probes, p)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-22s ii=%d n=%-5d %s  %8.1fms  %s\n",
				fabricName, ii, n, p.Status.Mark(),
				float64(p.Elapsed.Microseconds())/1000, p.Reason)
		}
		return p.Feasible(), nil
	}

	lo, hi := spec.MinN, spec.MaxN
	ok, err := probe(lo)
	if err != nil {
		return nil, err
	}
	if !ok {
		b.MinInfeasibleN = lo
		return b, nil
	}
	b.MaxFeasibleN = lo
	if hi == lo {
		return b, nil
	}
	ok, err = probe(hi)
	if err != nil {
		return nil, err
	}
	if ok {
		b.MaxFeasibleN = hi
		return b, nil
	}
	b.MinInfeasibleN = hi
	for hi-lo > 1 {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		mid := lo + (hi-lo)/2
		ok, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			lo = mid
			b.MaxFeasibleN = mid
		} else {
			hi = mid
			b.MinInfeasibleN = mid
		}
	}
	return b, nil
}

// runProbe maps one kernel onto one device under the probe deadline,
// containing panics and mapper errors into Unknown cells.
func runProbe(ctx context.Context, g *dfg.Graph, device *mrrg.Graph, n int, opts FrontierOptions) (p Probe, err error) {
	probeCtx, cancel := context.WithTimeout(ctx, opts.Timeout)
	defer cancel()
	start := time.Now()
	p = Probe{N: n, Kernel: g.Name}
	defer func() {
		p.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			p.Status = ilp.Unknown
			p.Reason = fmt.Sprintf("mapper panicked: %v", r)
			err = nil
		}
	}()
	res, mapErr := mapper.Dispatch(probeCtx, g, device, opts.Mapper)
	if mapErr != nil {
		if ctx.Err() != nil {
			return Probe{}, fmt.Errorf("workload: probing %s: %w", g.Name, mapErr)
		}
		p.Status = ilp.Unknown
		p.Reason = fmt.Sprintf("mapper failed: %v", mapErr)
		return p, nil
	}
	p.Status = res.Status
	p.Reason = res.Reason
	return p, nil
}
