package workload

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// thresholdMapper fakes a monotone frontier: kernels with at most limit
// internal ops map, larger ones are infeasible. It also counts probes
// so tests can check the bisection does logarithmic work.
func thresholdMapper(limit int, probed *[]string) mapper.MapFunc {
	return func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts mapper.Options) (*mapper.Result, error) {
		if probed != nil {
			*probed = append(*probed, g.Name)
		}
		if g.Stats().Ops <= limit {
			return &mapper.Result{Status: ilp.Feasible}, nil
		}
		return &mapper.Result{Status: ilp.Infeasible, Reason: "stub threshold"}, nil
	}
}

func stubSpec() FrontierSpec {
	return FrontierSpec{
		Family: Reduce, // rung n has n-1 internal ops
		MinN:   1,
		MaxN:   64,
		Fabrics: []FabricSpec{
			{Rows: 2, Cols: 2, Homogeneous: true, Contexts: 1},
		},
	}
}

func TestBisectFindsBoundary(t *testing.T) {
	var probed []string
	// Threshold 11 internal ops: reduce_12 maps, reduce_13 does not.
	front, err := RunFrontier(context.Background(), stubSpec(), FrontierOptions{
		Mapper: mapper.Options{MapWith: thresholdMapper(11, &probed)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Boundaries) != 1 {
		t.Fatalf("got %d boundaries, want 1", len(front.Boundaries))
	}
	b := front.Boundaries[0]
	if !b.Bracketed() {
		t.Fatalf("boundary not bracketed: %+v", b)
	}
	if b.MaxFeasibleN != 12 || b.MinInfeasibleN != 13 {
		t.Errorf("bracket [%d, %d], want [12, 13]", b.MaxFeasibleN, b.MinInfeasibleN)
	}
	if b.II != 1 {
		t.Errorf("II = %d, want the fabric's context count 1", b.II)
	}
	// Bisection over 64 rungs: 2 endpoint probes + at most 6 splits.
	if len(probed) > 8 {
		t.Errorf("bisection made %d probes (%v), want <= 8", len(probed), probed)
	}
	if len(b.Probes) != len(probed) {
		t.Errorf("boundary records %d probes, mapper saw %d", len(b.Probes), len(probed))
	}
}

func TestBisectDegenerateEnds(t *testing.T) {
	// Nothing maps: even MinN is infeasible, one probe suffices.
	front, err := RunFrontier(context.Background(), stubSpec(), FrontierOptions{
		Mapper: mapper.Options{MapWith: thresholdMapper(-1, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := front.Boundaries[0]
	if b.MaxFeasibleN != 0 || b.MinInfeasibleN != 1 || len(b.Probes) != 1 {
		t.Errorf("all-infeasible boundary %+v, want MinInfeasibleN=1 after one probe", b)
	}

	// Everything maps: two probes (both ends) suffice.
	front, err = RunFrontier(context.Background(), stubSpec(), FrontierOptions{
		Mapper: mapper.Options{MapWith: thresholdMapper(1<<20, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	b = front.Boundaries[0]
	if b.MaxFeasibleN != 64 || b.MinInfeasibleN != 0 || len(b.Probes) != 2 {
		t.Errorf("all-feasible boundary %+v, want MaxFeasibleN=64 after two probes", b)
	}
}

func TestFrontierPanicContainment(t *testing.T) {
	panicky := func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts mapper.Options) (*mapper.Result, error) {
		panic("solver wedged")
	}
	spec := stubSpec()
	front, err := RunFrontier(context.Background(), spec, FrontierOptions{
		Mapper: mapper.Options{MapWith: mapper.MapFunc(panicky)},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := front.Boundaries[0]
	if len(b.Probes) != 1 || b.Probes[0].Status != ilp.Unknown {
		t.Fatalf("panicking probe %+v, want one contained Unknown cell", b.Probes)
	}
	if !strings.Contains(b.Probes[0].Reason, "panicked") {
		t.Errorf("reason %q should mention the panic", b.Probes[0].Reason)
	}
}

func TestFrontierCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunFrontier(ctx, stubSpec(), FrontierOptions{
		Mapper: mapper.Options{MapWith: thresholdMapper(11, nil)},
	})
	if err == nil {
		t.Fatal("cancelled sweep should fail, not fabricate a frontier")
	}
}

func TestFrontierValidation(t *testing.T) {
	for _, spec := range []FrontierSpec{
		{Family: Dot, MinN: 0, MaxN: 4, Fabrics: StandardFabrics()},
		{Family: Dot, MinN: 5, MaxN: 4, Fabrics: StandardFabrics()},
		{Family: Dot, MinN: 1, MaxN: 4},
		{Family: Dot, MinN: 1, MaxN: 4, Fabrics: StandardFabrics(), IIs: []int{0}},
	} {
		if _, err := RunFrontier(context.Background(), spec, FrontierOptions{}); err == nil {
			t.Errorf("%+v: expected an error", spec)
		}
	}
}

// TestFrontierReportDeterministic: a fixed-seed sweep writes
// byte-identical JSON and markdown across runs, and the JSON round
// trips through ReadFrontierJSON.
func TestFrontierReportDeterministic(t *testing.T) {
	spec := stubSpec()
	spec.Family = Gen
	spec.Seed = 42
	spec.MaxN = 24
	spec.IIs = []int{1, 2}
	run := func() (string, string) {
		front, err := RunFrontier(context.Background(), spec, FrontierOptions{
			Mapper: mapper.Options{MapWith: thresholdMapper(9, nil)},
		})
		if err != nil {
			t.Fatal(err)
		}
		var j, m bytes.Buffer
		if err := front.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := front.WriteMarkdown(&m); err != nil {
			t.Fatal(err)
		}
		return j.String(), m.String()
	}
	j1, m1 := run()
	j2, m2 := run()
	if j1 != j2 {
		t.Errorf("JSON reports differ across identical runs:\n%s\n---\n%s", j1, j2)
	}
	if m1 != m2 {
		t.Error("markdown reports differ across identical runs")
	}
	back, err := ReadFrontierJSON(strings.NewReader(j1))
	if err != nil {
		t.Fatal(err)
	}
	var j3 bytes.Buffer
	if err := back.WriteJSON(&j3); err != nil {
		t.Fatal(err)
	}
	if j3.String() != j1 {
		t.Error("JSON report changed across a read/write round trip")
	}
}

// TestFrontier8x8Bracket drives the real mapper stack: on a
// homogeneous diagonal 8x8 (32 I/O blocks), the dot ladder must flip
// from feasible to unmappable. dot_1 maps in well under a second;
// dot_17 needs 35 I/O operations and is pigeonhole-infeasible at
// presolve; rungs between are decided by solve or by the probe budget
// (a timeout counts as unmappable, like the paper's T entries).
func TestFrontier8x8Bracket(t *testing.T) {
	if testing.Short() {
		t.Skip("real 8x8 solves in -short mode")
	}
	spec := FrontierSpec{
		Family: Dot,
		MinN:   1,
		MaxN:   17,
		Fabrics: []FabricSpec{
			{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1},
		},
	}
	front, err := RunFrontier(context.Background(), spec, FrontierOptions{
		Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := front.Boundaries[0]
	if b.Fabric != "homo-diag-c1-8x8" {
		t.Errorf("fabric %q, want homo-diag-c1-8x8", b.Fabric)
	}
	if !b.Bracketed() {
		t.Fatalf("8x8 boundary not bracketed: %+v", b)
	}
	if b.MinInfeasibleN != b.MaxFeasibleN+1 {
		t.Errorf("bracket [%d, %d] not adjacent", b.MaxFeasibleN, b.MinInfeasibleN)
	}
	if b.Probes[0].N != 1 || !b.Probes[0].Feasible() {
		t.Errorf("dot_1 should map on an 8x8: %+v", b.Probes[0])
	}
	// The top rung exceeds the fabric's 32 I/O blocks and must be
	// *proven* infeasible by the counting presolve, not timed out.
	top := b.Probes[1]
	if top.N != 17 || top.Status != ilp.Infeasible || top.Reason == "" {
		t.Errorf("dot_17 should be presolve-infeasible on 32 I/O blocks: %+v", top)
	}
}
