package workload

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/cdcl"
)

// TestQuickIncrementalMatchesScratch is the cross-check property behind
// the incremental sweep: for seeded generated workloads, solving each II
// of a ladder through one shared incremental session must report exactly
// the per-II status (Feasible/Infeasible/...) that independent scratch
// solves report. The generator-derived instances are deliberately tiny
// so solves normally decide in milliseconds; if a loaded machine still
// leaves a scratch solve undecided there is no ground truth, so that
// instance is skipped — and the test fails if *every* instance skipped,
// keeping the property non-vacuous.
func TestQuickIncrementalMatchesScratch(t *testing.T) {
	const maxII = 3
	gs := arch.GridSpec{Rows: 3, Cols: 3, Interconnect: arch.Orthogonal, Homogeneous: true}

	// One MRRG per II, shared across all property iterations: devices do
	// not depend on the generated kernel.
	devices := make([]*mrrg.Graph, maxII+1)
	for ii := 1; ii <= maxII; ii++ {
		g := gs
		g.Contexts = ii
		a, err := arch.Grid(g)
		if err != nil {
			t.Fatal(err)
		}
		if devices[ii], err = mrrg.Generate(a); err != nil {
			t.Fatal(err)
		}
	}

	compared := 0
	property := func(rawSeed int64) bool {
		seed := rawSeed
		u := uint64(rawSeed)
		spec := DFGSpec{
			Seed:       seed,
			Ops:        2 + int(u%5),           // 2..6 compute ops
			MaxFanout:  2 + int((u>>8)%2),      // 2..3
			MulDensity: float64((u>>16)%3) / 4, // 0, 0.25, 0.5
			Inputs:     2,
			Outputs:    1 + int((u>>24)%2), // 1..2
		}
		spec.Depth = 1 + int((u>>4)%uint64(spec.Ops))
		g, err := GenerateDFG(spec)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}

		// The incremental side threads one session through the whole
		// ladder, exactly like the frontier's per-boundary sharing.
		sess := cdcl.NewSession(1)
		for ii := 1; ii <= maxII; ii++ {
			sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
			scr, scrErr := mapper.Map(sctx, g, devices[ii], mapper.Options{Seed: 1})
			scancel()
			if scrErr != nil {
				t.Logf("seed %d ii=%d: scratch err %v", seed, ii, scrErr)
				return false
			}
			if scr.Status == ilp.Unknown {
				t.Logf("seed %d ii=%d: scratch undecided — skipping instance (no ground truth)", seed, ii)
				return true
			}
			ictx, icancel := context.WithTimeout(context.Background(), 60*time.Second)
			inc, incErr := mapper.Map(ictx, g, devices[ii], mapper.Options{Solver: sess, Seed: 1})
			icancel()
			if incErr != nil {
				t.Logf("seed %d ii=%d: inc err %v", seed, ii, incErr)
				return false
			}
			if inc.Status != scr.Status {
				t.Logf("seed %d ii=%d: incremental %v != scratch %v", seed, ii, inc.Status, scr.Status)
				return false
			}
			if inc.Feasible() {
				if err := inc.Mapping.Verify(); err != nil {
					t.Logf("seed %d ii=%d: incremental mapping invalid: %v", seed, ii, err)
					return false
				}
			}
			compared++
		}
		return true
	}

	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
	if compared == 0 {
		t.Fatal("every generated instance skipped undecided — the property never compared a status")
	}
}
