package workload

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
)

// quickSpec is the quick-check generator for DFGSpec: arbitrary seeds,
// small-but-varied shapes, always legal.
func quickSpec(rng *rand.Rand) DFGSpec {
	ops := 1 + rng.Intn(24)
	spec := DFGSpec{
		Seed:       rng.Int63(),
		Ops:        ops,
		Depth:      1 + rng.Intn(ops),
		MaxFanout:  1 + rng.Intn(4),
		MulDensity: float64(rng.Intn(101)) / 100,
		Inputs:     1 + rng.Intn(6),
		Outputs:    1 + rng.Intn(4),
	}
	if rng.Intn(2) == 0 {
		spec.Loads = rng.Intn(ops + 1)
		spec.Stores = rng.Intn(3)
	}
	return spec
}

// TestGeneratedDFGRoundTrip is the generator's core contract as a
// property: for every legal spec, the generated graph formats to text
// that parses back to a graph formatting identically — and generating
// twice from the same spec is byte-identical.
func TestGeneratedDFGRoundTrip(t *testing.T) {
	property := func(spec DFGSpec) bool {
		g, err := GenerateDFG(spec)
		if err != nil {
			t.Logf("%+v: generate: %v", spec, err)
			return false
		}
		text := g.FormatString()
		back, err := dfg.ParseString(text)
		if err != nil {
			t.Logf("%+v: parse back: %v", spec, err)
			return false
		}
		if back.FormatString() != text {
			t.Logf("%+v: reformat differs", spec)
			return false
		}
		again, err := GenerateDFG(spec)
		if err != nil || again.FormatString() != text {
			t.Logf("%+v: regeneration differs", spec)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(quickSpec(rng))
		},
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedFabricRoundTrip: every generated fabric serialises to
// XML that reads back and re-serialises byte-identically, preserving
// the architecture fingerprint.
func TestGeneratedFabricRoundTrip(t *testing.T) {
	property := func(spec FabricSpec) bool {
		a, err := Fabric(spec)
		if err != nil {
			t.Logf("%s: build: %v", spec.Name(), err)
			return false
		}
		var first strings.Builder
		if err := a.WriteXML(&first); err != nil {
			t.Logf("%s: write: %v", spec.Name(), err)
			return false
		}
		back, err := arch.ParseXMLString(first.String())
		if err != nil {
			t.Logf("%s: read back: %v", spec.Name(), err)
			return false
		}
		var second strings.Builder
		if err := back.WriteXML(&second); err != nil {
			t.Logf("%s: rewrite: %v", spec.Name(), err)
			return false
		}
		if first.String() != second.String() {
			t.Logf("%s: XML round trip differs", spec.Name())
			return false
		}
		if a.Fingerprint() != back.Fingerprint() {
			t.Logf("%s: fingerprint changed across round trip", spec.Name())
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			spec := FabricSpec{
				Rows:        1 + rng.Intn(8),
				Cols:        1 + rng.Intn(8),
				Homogeneous: rng.Intn(2) == 0,
				Contexts:    1 + rng.Intn(3),
				Torus:       rng.Intn(2) == 0,
			}
			if rng.Intn(2) == 0 {
				spec.Interconnect = arch.Diagonal
			}
			if rng.Intn(3) == 0 {
				spec.MemPortEvery = 1 + rng.Intn(spec.Rows+2)
			}
			vals[0] = reflect.ValueOf(spec)
		},
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
