package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serialises the frontier deterministically: a fixed-seed
// sweep writes byte-identical JSON on every run (probe wall clocks are
// deliberately excluded).
func (f *Frontier) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: encoding frontier: %w", err)
	}
	blob = append(blob, '\n')
	if _, err := w.Write(blob); err != nil {
		return fmt.Errorf("workload: writing frontier: %w", err)
	}
	return nil
}

// ReadFrontierJSON parses a frontier report written by WriteJSON.
func ReadFrontierJSON(r io.Reader) (*Frontier, error) {
	var f Frontier
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("workload: decoding frontier: %w", err)
	}
	return &f, nil
}

// WriteMarkdown renders the frontier as a report table. Like WriteJSON
// it is deterministic for a fixed-seed sweep.
func (f *Frontier) WriteMarkdown(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Mappability frontier — %s ladder\n\n", f.Family)
	fmt.Fprintf(bw, "Kernel sizes probed: n in [%d, %d] (seed %d). Marks: 1 feasible, 0 proven infeasible, T undecided within budget.\n\n",
		f.MinN, f.MaxN, f.Seed)
	fmt.Fprintf(bw, "| fabric | II | max feasible n | min unmappable n | probes |\n")
	fmt.Fprintf(bw, "|---|---|---|---|---|\n")
	for _, b := range f.Boundaries {
		maxN, minN := "-", "-"
		if b.MaxFeasibleN > 0 {
			maxN = fmt.Sprintf("%d", b.MaxFeasibleN)
		}
		if b.MinInfeasibleN > 0 {
			minN = fmt.Sprintf("%d", b.MinInfeasibleN)
		}
		probes := ""
		for i, p := range b.Probes {
			if i > 0 {
				probes += " "
			}
			probes += fmt.Sprintf("n%d:%s", p.N, p.Status.Mark())
		}
		fmt.Fprintf(bw, "| %s | %d | %s | %s | %s |\n", b.Fabric, b.II, maxN, minN, probes)
	}
	fmt.Fprintln(bw)
	for _, b := range f.Boundaries {
		if b.Bracketed() {
			fmt.Fprintf(bw, "- **%s @ II=%d**: frontier between n=%d (feasible) and n=%d (unmappable)\n",
				b.Fabric, b.II, b.MaxFeasibleN, b.MinInfeasibleN)
		} else if b.MaxFeasibleN == 0 && len(b.Probes) > 0 {
			fmt.Fprintf(bw, "- **%s @ II=%d**: unmappable at the smallest probed size n=%d (%s)\n",
				b.Fabric, b.II, b.Probes[0].N, b.Probes[0].Reason)
		} else if b.MinInfeasibleN == 0 {
			fmt.Fprintf(bw, "- **%s @ II=%d**: the whole probed range maps (frontier above n=%d)\n",
				b.Fabric, b.II, b.MaxFeasibleN)
		}
	}
	return bw.Flush()
}
