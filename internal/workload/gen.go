// Package workload generates parameterised workloads for the mapper
// stack — seeded random data-flow graphs, kernel-family ladders in the
// spirit of the CGRA toolchain-evaluation studies, and fabrics scaled
// beyond the paper's 4x4 grids — and charts the mappability frontier of
// an architecture by bisecting kernel size against the mapper.
//
// Everything here is deterministic: the same spec and seed produce
// byte-identical DFG text, architecture XML and frontier reports, so
// generated workloads can serve as fuzz corpora, regression benchmarks
// and reproducible experiment inputs.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"cgramap/internal/dfg"
)

// DFGSpec shape-controls the random DFG generator. The zero value of
// every field selects a default (8 ops, depth 4, fanout 3, multiply
// density 0.25, 4 inputs, 2 outputs, no memory traffic).
type DFGSpec struct {
	// Seed fixes the random stream; equal specs generate byte-identical
	// graphs.
	Seed int64
	// Ops is the number of internal compute operations (>= 1).
	Ops int
	// Depth is the dependence-chain depth the compute operations are
	// spread over (1 <= Depth <= Ops). The generated graph's critical
	// path is at least Depth+1 operations (the chain plus an input).
	Depth int
	// MaxFanout bounds how many consumers one value feeds (>= 1). The
	// bound is best-effort: when a level would otherwise have no legal
	// operand the generator reuses a value rather than fail, so every
	// spec yields a valid graph.
	MaxFanout int
	// MulDensity is the fraction of compute operations that multiply,
	// in [0, 1]; the generator hits round(MulDensity*Ops) exactly.
	MulDensity float64
	// Inputs and Outputs are the external I/O operation counts (>= 1).
	Inputs, Outputs int
	// Loads converts this many compute operations into memory loads;
	// Stores appends this many store operations after the compute body.
	// Both default to 0: memory-free kernels map onto any grid.
	Loads, Stores int
}

func (s DFGSpec) withDefaults() DFGSpec {
	if s.Ops == 0 {
		s.Ops = 8
	}
	if s.Depth == 0 {
		s.Depth = 4
		if s.Depth > s.Ops {
			s.Depth = s.Ops
		}
	}
	if s.MaxFanout == 0 {
		s.MaxFanout = 3
	}
	if s.MulDensity == 0 {
		s.MulDensity = 0.25
	}
	if s.Inputs == 0 {
		s.Inputs = 4
	}
	if s.Outputs == 0 {
		s.Outputs = 2
	}
	return s
}

func (s DFGSpec) validate() error {
	switch {
	case s.Ops < 1:
		return fmt.Errorf("workload: Ops %d < 1", s.Ops)
	case s.Depth < 1 || s.Depth > s.Ops:
		return fmt.Errorf("workload: Depth %d outside [1, Ops=%d]", s.Depth, s.Ops)
	case s.MaxFanout < 1:
		return fmt.Errorf("workload: MaxFanout %d < 1", s.MaxFanout)
	case s.MulDensity < 0 || s.MulDensity > 1:
		return fmt.Errorf("workload: MulDensity %g outside [0, 1]", s.MulDensity)
	case s.Inputs < 1:
		return fmt.Errorf("workload: Inputs %d < 1", s.Inputs)
	case s.Outputs < 1:
		return fmt.Errorf("workload: Outputs %d < 1", s.Outputs)
	case s.Loads < 0 || s.Loads > s.Ops:
		return fmt.Errorf("workload: Loads %d outside [0, Ops=%d]", s.Loads, s.Ops)
	case s.Stores < 0:
		return fmt.Errorf("workload: Stores %d < 0", s.Stores)
	}
	return nil
}

// Name derives the canonical kernel name of the spec, e.g.
// "gen-s42-o8-d4-f3-m25-i4-o2".
func (s DFGSpec) Name() string {
	s = s.withDefaults()
	name := fmt.Sprintf("gen-s%d-o%d-d%d-f%d-m%d-i%d-o%d",
		s.Seed, s.Ops, s.Depth, s.MaxFanout, int(s.MulDensity*100+0.5), s.Inputs, s.Outputs)
	if s.Loads > 0 || s.Stores > 0 {
		name += fmt.Sprintf("-ld%d-st%d", s.Loads, s.Stores)
	}
	return name
}

// binaryKinds are the non-multiply compute operations the generator
// draws from.
var binaryKinds = []dfg.Kind{dfg.Add, dfg.Sub, dfg.And, dfg.Or, dfg.Xor, dfg.Shl, dfg.Shr}

// GenerateDFG builds a random DFG with the spec's shape. The result is
// always a valid, acyclic, parseable graph: GenerateDFG(s).FormatString()
// round-trips through dfg.Parse identically for every legal spec.
func GenerateDFG(spec DFGSpec) (*dfg.Graph, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g := dfg.New(spec.Name())

	// Level 0: inputs.
	levels := make([][]*dfg.Value, spec.Depth+1)
	uses := make(map[*dfg.Value]int)
	for i := 0; i < spec.Inputs; i++ {
		levels[0] = append(levels[0], g.In(fmt.Sprintf("in%d", i)))
	}

	// Decide which compute ops load and which multiply. Exact counts,
	// chosen from one deterministic permutation of the op indices.
	nMul := int(spec.MulDensity*float64(spec.Ops-spec.Loads) + 0.5)
	isLoad := make([]bool, spec.Ops)
	isMul := make([]bool, spec.Ops)
	perm := rng.Perm(spec.Ops)
	for _, i := range perm[:spec.Loads] {
		isLoad[i] = true
	}
	taken := 0
	for _, i := range perm[spec.Loads:] {
		if taken == nMul {
			break
		}
		isMul[i] = true
		taken++
	}

	// pick chooses an operand from the candidate levels, preferring
	// values still under the fanout bound; validity beats strictness,
	// so a saturated pool falls back to the least-used candidate.
	pick := func(cands []*dfg.Value) *dfg.Value {
		var under []*dfg.Value
		for _, v := range cands {
			if uses[v] < spec.MaxFanout {
				under = append(under, v)
			}
		}
		if len(under) > 0 {
			v := under[rng.Intn(len(under))]
			uses[v]++
			return v
		}
		best := cands[0]
		for _, v := range cands[1:] {
			if uses[v] < uses[best] {
				best = v
			}
		}
		uses[best]++
		return best
	}
	// below collects every value defined strictly above the given
	// level (closer to the inputs).
	below := func(lvl int) []*dfg.Value {
		var all []*dfg.Value
		for l := 0; l < lvl; l++ {
			all = append(all, levels[l]...)
		}
		return all
	}

	// Compute body: op i lives on level 1 + i*Depth/Ops, so every level
	// is populated and the level assignment is deterministic. The first
	// operand comes from the previous level, which forces a dependence
	// chain of the full requested depth.
	for i := 0; i < spec.Ops; i++ {
		lvl := 1 + i*spec.Depth/spec.Ops
		name := fmt.Sprintf("n%d", i)
		var (
			op  *dfg.Op
			err error
		)
		first := pick(levels[lvl-1])
		if isLoad[i] {
			op, err = g.AddOp(name, dfg.Load, first)
		} else {
			kind := binaryKinds[rng.Intn(len(binaryKinds))]
			if isMul[i] {
				kind = dfg.Mul
			}
			op, err = g.AddOp(name, kind, first, pick(below(lvl)))
		}
		if err != nil {
			return nil, fmt.Errorf("workload: generating %s: %w", spec.Name(), err)
		}
		levels[lvl] = append(levels[lvl], op.Out)
	}

	// Stores consume (address, data) from anywhere in the graph.
	all := below(spec.Depth + 1)
	for i := 0; i < spec.Stores; i++ {
		addr := pick(all)
		data := pick(all)
		if _, err := g.AddOp(fmt.Sprintf("st%d", i), dfg.Store, addr, data); err != nil {
			return nil, fmt.Errorf("workload: generating %s: %w", spec.Name(), err)
		}
	}

	// Outputs drain the deepest unconsumed values first, so the
	// critical path ends in an output whenever one is available; when
	// leaves run out, the least-used deep values are re-exported.
	var leaves, rest []*dfg.Value
	for lvl := spec.Depth; lvl >= 1; lvl-- {
		for _, v := range levels[lvl] {
			if uses[v] == 0 {
				leaves = append(leaves, v)
			} else {
				rest = append(rest, v)
			}
		}
	}
	sort.SliceStable(rest, func(i, j int) bool { return uses[rest[i]] < uses[rest[j]] })
	pool := append(leaves, rest...)
	if len(pool) == 0 {
		// Degenerate all-store graph; export an input instead.
		pool = levels[0]
	}
	for i := 0; i < spec.Outputs; i++ {
		g.Out(fmt.Sprintf("out%d", i), pool[i%len(pool)])
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid graph for %s: %w", spec.Name(), err)
	}
	return g, nil
}
