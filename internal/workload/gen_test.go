package workload

import (
	"testing"

	"cgramap/internal/dfg"
)

func TestGenerateDFGDeterministic(t *testing.T) {
	spec := DFGSpec{Seed: 42, Ops: 16, Depth: 5, MaxFanout: 3, MulDensity: 0.4, Inputs: 6, Outputs: 3}
	a, err := GenerateDFG(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDFG(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.FormatString() != b.FormatString() {
		t.Fatal("same spec generated different graphs")
	}
	other, err := GenerateDFG(DFGSpec{Seed: 43, Ops: 16, Depth: 5, MaxFanout: 3, MulDensity: 0.4, Inputs: 6, Outputs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.FormatString() == other.FormatString() {
		t.Fatal("different seeds generated identical graphs (suspicious)")
	}
}

func TestGenerateDFGShape(t *testing.T) {
	for _, spec := range []DFGSpec{
		{Seed: 1},
		{Seed: 2, Ops: 1, Depth: 1, Inputs: 1, Outputs: 1},
		{Seed: 3, Ops: 24, Depth: 8, MaxFanout: 2, MulDensity: 0.5, Inputs: 8, Outputs: 4},
		{Seed: 4, Ops: 12, Depth: 12, MaxFanout: 1, MulDensity: 1, Inputs: 2, Outputs: 1},
		{Seed: 5, Ops: 10, Depth: 3, MulDensity: 0, Inputs: 3, Outputs: 6},
		{Seed: 6, Ops: 9, Depth: 3, Inputs: 4, Outputs: 2, Loads: 2, Stores: 1},
	} {
		g, err := GenerateDFG(spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%+v: invalid graph: %v", spec, err)
		}
		if !g.Acyclic() {
			t.Fatalf("%+v: generated a cyclic graph", spec)
		}
		full := spec.withDefaults()
		st := g.Stats()
		if want := full.Inputs + full.Outputs; st.IOs != want {
			t.Errorf("%+v: %d I/Os, want %d", spec, st.IOs, want)
		}
		if want := full.Ops + full.Stores; st.Ops != want {
			t.Errorf("%+v: %d internal ops, want %d", spec, st.Ops, want)
		}
		wantMul := int(full.MulDensity*float64(full.Ops-full.Loads) + 0.5)
		if st.Multiplies != wantMul {
			t.Errorf("%+v: %d multiplies, want %d", spec, st.Multiplies, wantMul)
		}
		if got := g.OpsOfKind(dfg.Load); got != full.Loads {
			t.Errorf("%+v: %d loads, want %d", spec, got, full.Loads)
		}
		if got := g.OpsOfKind(dfg.Store); got != full.Stores {
			t.Errorf("%+v: %d stores, want %d", spec, got, full.Stores)
		}
		cpl, err := g.CriticalPathLength()
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if cpl < full.Depth+1 {
			t.Errorf("%+v: critical path %d, want >= %d", spec, cpl, full.Depth+1)
		}
	}
}

func TestGenerateDFGRejectsBadSpecs(t *testing.T) {
	for _, spec := range []DFGSpec{
		{Ops: -1},
		{Ops: 4, Depth: 5},
		{Ops: 4, Depth: 2, MaxFanout: -1},
		{Ops: 4, Depth: 2, MulDensity: 1.5},
		{Ops: 4, Depth: 2, Inputs: -1},
		{Ops: 4, Depth: 2, Outputs: -2},
		{Ops: 4, Depth: 2, Loads: 9},
		{Ops: 4, Depth: 2, Stores: -1},
	} {
		if _, err := GenerateDFG(spec); err == nil {
			t.Errorf("%+v: expected an error", spec)
		}
	}
}
