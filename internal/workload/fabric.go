package workload

import (
	"fmt"
	"strconv"
	"strings"

	"cgramap/internal/arch"
)

// FabricSpec parameterises a generated fabric: the paper's grid family
// scaled to arbitrary sizes, interconnects, context counts and
// memory-port layouts. It is a thin, parseable veneer over
// arch.GridSpec so sweeps can name fabrics on a command line.
type FabricSpec struct {
	Rows, Cols   int
	Interconnect arch.Interconnect
	Homogeneous  bool
	Contexts     int
	Torus        bool
	// MemPortEvery shares one memory port among this many rows
	// (<= 1: the paper's one-per-row layout).
	MemPortEvery int
}

// GridSpec converts to the arch-level spec, defaulting Contexts to 1.
func (s FabricSpec) GridSpec() arch.GridSpec {
	contexts := s.Contexts
	if contexts < 1 {
		contexts = 1
	}
	return arch.GridSpec{
		Rows: s.Rows, Cols: s.Cols,
		Interconnect: s.Interconnect,
		Homogeneous:  s.Homogeneous,
		Contexts:     contexts,
		Torus:        s.Torus,
		MemPortEvery: s.MemPortEvery,
	}
}

// Name is the canonical architecture name (arch.GridSpec.Name).
func (s FabricSpec) Name() string { return s.GridSpec().Name() }

// Fabric builds the fabric's architecture netlist.
func Fabric(s FabricSpec) (*arch.Arch, error) { return arch.Grid(s.GridSpec()) }

// ParseFabric parses a compact fabric description of the form
//
//	RxC[:token,token,...]
//
// with tokens orth|diag, homo|hetero, torus, cN (contexts) and memN
// (memory-port stride). Defaults: orthogonal, homogeneous, c1, mem1.
// Examples: "8x8", "16x16:diag,hetero,c2", "8x8:diag,mem4".
func ParseFabric(desc string) (FabricSpec, error) {
	spec := FabricSpec{Homogeneous: true, Contexts: 1}
	dims, opts, _ := strings.Cut(desc, ":")
	rs, cs, ok := strings.Cut(dims, "x")
	if !ok {
		return spec, fmt.Errorf("workload: fabric %q: want RxC[:options]", desc)
	}
	var err error
	if spec.Rows, err = strconv.Atoi(rs); err != nil || spec.Rows < 1 {
		return spec, fmt.Errorf("workload: fabric %q: bad row count %q", desc, rs)
	}
	if spec.Cols, err = strconv.Atoi(cs); err != nil || spec.Cols < 1 {
		return spec, fmt.Errorf("workload: fabric %q: bad column count %q", desc, cs)
	}
	if opts == "" {
		return spec, nil
	}
	for _, tok := range strings.Split(opts, ",") {
		switch {
		case tok == "orth":
			spec.Interconnect = arch.Orthogonal
		case tok == "diag":
			spec.Interconnect = arch.Diagonal
		case tok == "homo":
			spec.Homogeneous = true
		case tok == "hetero":
			spec.Homogeneous = false
		case tok == "torus":
			spec.Torus = true
		case strings.HasPrefix(tok, "c"):
			if spec.Contexts, err = strconv.Atoi(tok[1:]); err != nil || spec.Contexts < 1 {
				return spec, fmt.Errorf("workload: fabric %q: bad context token %q", desc, tok)
			}
		case strings.HasPrefix(tok, "mem"):
			if spec.MemPortEvery, err = strconv.Atoi(tok[3:]); err != nil || spec.MemPortEvery < 1 {
				return spec, fmt.Errorf("workload: fabric %q: bad memory token %q", desc, tok)
			}
		default:
			return spec, fmt.Errorf("workload: fabric %q: unknown token %q", desc, tok)
		}
	}
	return spec, nil
}

// ParseFabrics parses a comma-free list of fabric descriptions (the
// descriptions themselves use commas, so the list separator is ';' or
// whitespace).
func ParseFabrics(list string) ([]FabricSpec, error) {
	var specs []FabricSpec
	for _, f := range strings.FieldsFunc(list, func(r rune) bool { return r == ';' || r == ' ' }) {
		s, err := ParseFabric(f)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: empty fabric list %q", list)
	}
	return specs, nil
}

// StandardFabrics is the default exploration ladder: the paper's 4x4
// scaled through 8x8 to 16x16, plus a heterogeneous and a memory-poor
// 8x8 variant.
func StandardFabrics() []FabricSpec {
	return []FabricSpec{
		{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1},
		{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1},
		{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 1},
		{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1, MemPortEvery: 4},
		{Rows: 16, Cols: 16, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1},
	}
}
