package workload

import (
	"strings"
	"testing"

	"cgramap/internal/arch"
	"cgramap/internal/mrrg"
)

func TestParseFabric(t *testing.T) {
	cases := []struct {
		desc string
		want FabricSpec
	}{
		{"4x4", FabricSpec{Rows: 4, Cols: 4, Homogeneous: true, Contexts: 1}},
		{"8x8:diag", FabricSpec{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1}},
		{"8x8:diag,hetero,c2", FabricSpec{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Contexts: 2}},
		{"16x16:torus,mem4", FabricSpec{Rows: 16, Cols: 16, Homogeneous: true, Contexts: 1, Torus: true, MemPortEvery: 4}},
		{"2x6:orth,homo,c3,mem2", FabricSpec{Rows: 2, Cols: 6, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 3, MemPortEvery: 2}},
	}
	for _, tc := range cases {
		got, err := ParseFabric(tc.desc)
		if err != nil {
			t.Fatalf("%q: %v", tc.desc, err)
		}
		if got != tc.want {
			t.Errorf("%q: %+v, want %+v", tc.desc, got, tc.want)
		}
	}
}

func TestParseFabricErrors(t *testing.T) {
	for _, desc := range []string{
		"", "8", "8x", "x8", "0x4", "4x0", "axb",
		"4x4:bogus", "4x4:c0", "4x4:cx", "4x4:mem0", "4x4:memx",
	} {
		if _, err := ParseFabric(desc); err == nil {
			t.Errorf("%q: expected an error", desc)
		}
	}
}

func TestParseFabrics(t *testing.T) {
	specs, err := ParseFabrics("4x4:diag;8x8:diag,hetero 16x16")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	if specs[1].Homogeneous {
		t.Error("second spec should be heterogeneous")
	}
	if specs[2].Rows != 16 || specs[2].Cols != 16 {
		t.Errorf("third spec is %dx%d, want 16x16", specs[2].Rows, specs[2].Cols)
	}
	if _, err := ParseFabrics("  "); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := ParseFabrics("4x4;broken"); err == nil {
		t.Error("bad element accepted")
	}
}

func TestStandardFabricsBuild(t *testing.T) {
	seen := map[string]bool{}
	for _, fs := range StandardFabrics() {
		a, err := Fabric(fs)
		if err != nil {
			t.Fatalf("%s: %v", fs.Name(), err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: invalid arch: %v", fs.Name(), err)
		}
		if seen[fs.Name()] {
			t.Fatalf("duplicate standard fabric %s", fs.Name())
		}
		seen[fs.Name()] = true
		if _, err := mrrg.Generate(a); err != nil {
			t.Fatalf("%s: MRRG generation: %v", fs.Name(), err)
		}
	}
	if !seen["homo-diag-c1-8x8"] || len(seen) < 5 {
		t.Errorf("standard ladder %v should scale through 8x8", seen)
	}
}

func TestFabricXMLStable(t *testing.T) {
	// Generated fabrics serialise deterministically — the property the
	// fuzz corpus and CI smoke job rely on.
	fs := FabricSpec{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1, MemPortEvery: 4}
	var a, b strings.Builder
	for _, w := range []*strings.Builder{&a, &b} {
		ar, err := Fabric(fs)
		if err != nil {
			t.Fatal(err)
		}
		if err := ar.WriteXML(w); err != nil {
			t.Fatal(err)
		}
	}
	if a.String() != b.String() {
		t.Fatal("same fabric spec produced different XML")
	}
}
