package workload

import (
	"testing"

	"cgramap/internal/dfg"
)

func TestKernelFamilies(t *testing.T) {
	// Expected Table 1-style stats per family as functions of n.
	stats := map[Family]func(n int) dfg.Stats{
		Dot: func(n int) dfg.Stats {
			return dfg.Stats{IOs: 2*n + 1, Ops: 2*n - 1, Multiplies: n}
		},
		FIR: func(n int) dfg.Stats {
			nc := minInt(n, 4)
			return dfg.Stats{IOs: n + nc + 1, Ops: 2*n - 1, Multiplies: n}
		},
		Stencil: func(n int) dfg.Stats {
			return dfg.Stats{IOs: 2*n + 5, Ops: 5 * n, Multiplies: 3 * n}
		},
		Reduce: func(n int) dfg.Stats {
			return dfg.Stats{IOs: n + 1, Ops: n - 1, Multiplies: 0}
		},
		Conv2D: func(n int) dfg.Stats {
			return dfg.Stats{IOs: (n+1)*(n+1) + n*n + 4, Ops: 7 * n * n, Multiplies: 4 * n * n}
		},
		MatVec: func(n int) dfg.Stats {
			return dfg.Stats{IOs: n*n + 2*n, Ops: 2*n*n - n, Multiplies: n * n}
		},
	}
	for _, family := range Families() {
		for _, n := range []int{1, 2, 3, 4, 7, 16} {
			g, err := Kernel(family, n, 7)
			if err != nil {
				t.Fatalf("%s n=%d: %v", family, n, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s n=%d: invalid: %v", family, n, err)
			}
			if !g.Acyclic() {
				t.Fatalf("%s n=%d: cyclic", family, n)
			}
			if want, ok := stats[family]; ok {
				if got := g.Stats(); got != want(n) {
					t.Errorf("%s n=%d: stats %+v, want %+v", family, n, got, want(n))
				}
			}
			// Every kernel must survive the textual round trip.
			back, err := dfg.ParseString(g.FormatString())
			if err != nil {
				t.Fatalf("%s n=%d: reparse: %v", family, n, err)
			}
			if back.FormatString() != g.FormatString() {
				t.Errorf("%s n=%d: format/parse round trip changed the graph", family, n)
			}
		}
	}
}

func TestKernelLadderMonotone(t *testing.T) {
	// The frontier bisection relies on rung n+1 demanding at least as
	// many I/Os and internal ops as rung n.
	for _, family := range Families() {
		prev := dfg.Stats{}
		for n := 1; n <= 20; n++ {
			g, err := Kernel(family, n, 3)
			if err != nil {
				t.Fatalf("%s n=%d: %v", family, n, err)
			}
			st := g.Stats()
			if st.IOs < prev.IOs || st.Ops < prev.Ops {
				t.Fatalf("%s: rung %d (%+v) shrank below rung %d (%+v)", family, n, st, n-1, prev)
			}
			prev = st
		}
	}
}

func TestKernelSeedOnlyAffectsGen(t *testing.T) {
	for _, family := range []Family{Dot, FIR, Stencil, Reduce, Conv2D, MatVec} {
		a, _ := Kernel(family, 5, 1)
		b, _ := Kernel(family, 5, 99)
		if a.FormatString() != b.FormatString() {
			t.Errorf("%s: structured family varied with seed", family)
		}
	}
	a, err := Kernel(Gen, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Kernel(Gen, 12, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.FormatString() == b.FormatString() {
		t.Error("gen: seed had no effect")
	}
}

// TestKernelByteDeterminism: equal (family, n, seed) triples must emit
// byte-identical kernels — the property that makes committed frontier
// corpora regenerate as no-op diffs.
func TestKernelByteDeterminism(t *testing.T) {
	for _, family := range Families() {
		for _, seed := range []int64{1, 42} {
			a, err := Kernel(family, 6, seed)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", family, seed, err)
			}
			b, err := Kernel(family, 6, seed)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", family, seed, err)
			}
			if a.FormatString() != b.FormatString() {
				t.Errorf("%s seed=%d: repeated build differs", family, seed)
			}
		}
	}
}

func TestKernelErrors(t *testing.T) {
	if _, err := Kernel(Dot, 0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Kernel(Family("bogus"), 3, 0); err == nil {
		t.Error("unknown family accepted")
	}
}
