package workload

import (
	"fmt"

	"cgramap/internal/dfg"
)

// Family names a parameterised kernel family. Each family is a ladder:
// Kernel(family, n, seed) emits the size-n rung, and increasing n
// monotonically increases operation and I/O pressure — the property the
// frontier engine's bisection relies on.
type Family string

const (
	// Dot is an unrolled dot product: sum of a_i*b_i over n lanes.
	// I/Os 2n+1, ops 2n-1, multiplies n.
	Dot Family = "dot"
	// FIR is an n-tap finite impulse response filter whose taps share
	// a bank of four coefficient inputs (a growing-fanout ladder):
	// sum of c_{i mod 4}*x_i. I/Os n+min(n,4)+1, ops 2n-1, multiplies n.
	FIR Family = "fir"
	// Stencil is a 3-point weighted 1-D stencil over n output points
	// with three shared coefficient inputs (a fanout stress).
	// I/Os 2n+5, ops 5n, multiplies 3n.
	Stencil Family = "stencil"
	// Reduce is a balanced binary adder-reduction tree over n inputs.
	// I/Os n+1, ops n-1, multiplies 0 — a pure I/O-pressure ladder.
	Reduce Family = "reduce"
	// Gen is the seeded random generator as a family: rung n is a
	// random DFG with n compute operations (GenerateDFG with the
	// family's default shape).
	Gen Family = "gen"
)

// Families lists every kernel family in a stable order.
func Families() []Family { return []Family{Dot, FIR, Stencil, Reduce, Gen} }

// Kernel builds rung n of the family's ladder. The seed only affects
// the Gen family; structured families are fully determined by n.
func Kernel(family Family, n int, seed int64) (*dfg.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: kernel size %d < 1", n)
	}
	switch family {
	case Dot:
		return dotKernel(n), nil
	case FIR:
		return firKernel(n), nil
	case Stencil:
		return stencilKernel(n), nil
	case Reduce:
		return reduceKernel(n), nil
	case Gen:
		return GenerateDFG(DFGSpec{
			Seed:    seed,
			Ops:     n,
			Depth:   maxInt(1, minInt(n, (n+2)/3)),
			Inputs:  maxInt(1, (n+3)/4),
			Outputs: maxInt(1, (n+7)/8),
		})
	default:
		return nil, fmt.Errorf("workload: unknown kernel family %q", family)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// dotKernel: y = sum_{i<n} a_i * b_i, accumulated as a chain (the way
// an unrolled loop body accumulates).
func dotKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("dot_%d", n))
	var acc *dfg.Value
	for i := 0; i < n; i++ {
		a := g.In(fmt.Sprintf("a%d", i))
		b := g.In(fmt.Sprintf("b%d", i))
		m := g.Mul(fmt.Sprintf("m%d", i), a, b)
		if acc == nil {
			acc = m
		} else {
			acc = g.Add(fmt.Sprintf("s%d", i), acc, m)
		}
	}
	g.Out("y", acc)
	return g
}

// firKernel: y = sum_{i<n} c_{i mod 4} * x_i. The coefficient bank is
// shared across taps, so coefficient fanout grows with n — a routing
// pressure the dot ladder does not have.
func firKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("fir_%d", n))
	nc := minInt(n, 4)
	cs := make([]*dfg.Value, nc)
	for i := range cs {
		cs[i] = g.In(fmt.Sprintf("c%d", i))
	}
	var acc *dfg.Value
	for i := 0; i < n; i++ {
		x := g.In(fmt.Sprintf("x%d", i))
		m := g.Mul(fmt.Sprintf("m%d", i), cs[i%nc], x)
		if acc == nil {
			acc = m
		} else {
			acc = g.Add(fmt.Sprintf("s%d", i), acc, m)
		}
	}
	g.Out("y", acc)
	return g
}

// stencilKernel: y_i = c0*x_i + c1*x_{i+1} + c2*x_{i+2} for i < n. The
// three coefficient inputs fan out to every point, stressing routing
// the way the paper's "extreme" benchmark does.
func stencilKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("stencil_%d", n))
	xs := make([]*dfg.Value, n+2)
	for i := range xs {
		xs[i] = g.In(fmt.Sprintf("x%d", i))
	}
	c0 := g.In("c0")
	c1 := g.In("c1")
	c2 := g.In("c2")
	for i := 0; i < n; i++ {
		m0 := g.Mul(fmt.Sprintf("m%d_0", i), c0, xs[i])
		m1 := g.Mul(fmt.Sprintf("m%d_1", i), c1, xs[i+1])
		m2 := g.Mul(fmt.Sprintf("m%d_2", i), c2, xs[i+2])
		t := g.Add(fmt.Sprintf("t%d", i), m0, m1)
		g.Out(fmt.Sprintf("y%d", i), g.Add(fmt.Sprintf("u%d", i), t, m2))
	}
	return g
}

// reduceKernel: a balanced binary adder tree over n inputs.
func reduceKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("reduce_%d", n))
	level := make([]*dfg.Value, n)
	for i := 0; i < n; i++ {
		level[i] = g.In(fmt.Sprintf("x%d", i))
	}
	adds := 0
	for len(level) > 1 {
		var next []*dfg.Value
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, g.Add(fmt.Sprintf("s%d", adds), level[i], level[i+1]))
			adds++
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	g.Out("y", level[0])
	return g
}
