package workload

import (
	"fmt"

	"cgramap/internal/dfg"
)

// Family names a parameterised kernel family. Each family is a ladder:
// Kernel(family, n, seed) emits the size-n rung, and increasing n
// monotonically increases operation and I/O pressure — the property the
// frontier engine's bisection relies on.
type Family string

const (
	// Dot is an unrolled dot product: sum of a_i*b_i over n lanes.
	// I/Os 2n+1, ops 2n-1, multiplies n.
	Dot Family = "dot"
	// FIR is an n-tap finite impulse response filter whose taps share
	// a bank of four coefficient inputs (a growing-fanout ladder):
	// sum of c_{i mod 4}*x_i. I/Os n+min(n,4)+1, ops 2n-1, multiplies n.
	FIR Family = "fir"
	// Stencil is a 3-point weighted 1-D stencil over n output points
	// with three shared coefficient inputs (a fanout stress).
	// I/Os 2n+5, ops 5n, multiplies 3n.
	Stencil Family = "stencil"
	// Reduce is a balanced binary adder-reduction tree over n inputs.
	// I/Os n+1, ops n-1, multiplies 0 — a pure I/O-pressure ladder.
	Reduce Family = "reduce"
	// Conv2D is an unrolled 2-D convolution with a shared 2x2 weight
	// kernel, the inner loop of the CNN layers the CGRA
	// toolchain-evaluation study (arXiv 2502.19114) benchmarks: rung n
	// computes an n x n output tile from an (n+1) x (n+1) input window,
	// every weight fanning out to all n*n output points.
	// I/Os (n+1)^2 + n^2 + 4, ops 7n^2, multiplies 4n^2.
	Conv2D Family = "conv2d"
	// MatVec is a dense matrix-vector product y = A*x from the same
	// study's linear-algebra kernels: rung n multiplies an n x n matrix
	// into an n-vector, each x_j shared by a column of multiplies.
	// I/Os n^2 + 2n, ops 2n^2 - n, multiplies n^2.
	MatVec Family = "matvec"
	// Gen is the seeded random generator as a family: rung n is a
	// random DFG with n compute operations (GenerateDFG with the
	// family's default shape).
	Gen Family = "gen"
)

// Families lists every kernel family in a stable order.
func Families() []Family { return []Family{Dot, FIR, Stencil, Reduce, Conv2D, MatVec, Gen} }

// Kernel builds rung n of the family's ladder. The seed only affects
// the Gen family; structured families are fully determined by n.
func Kernel(family Family, n int, seed int64) (*dfg.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: kernel size %d < 1", n)
	}
	switch family {
	case Dot:
		return dotKernel(n), nil
	case FIR:
		return firKernel(n), nil
	case Stencil:
		return stencilKernel(n), nil
	case Reduce:
		return reduceKernel(n), nil
	case Conv2D:
		return conv2dKernel(n), nil
	case MatVec:
		return matvecKernel(n), nil
	case Gen:
		return GenerateDFG(DFGSpec{
			Seed:    seed,
			Ops:     n,
			Depth:   maxInt(1, minInt(n, (n+2)/3)),
			Inputs:  maxInt(1, (n+3)/4),
			Outputs: maxInt(1, (n+7)/8),
		})
	default:
		return nil, fmt.Errorf("workload: unknown kernel family %q", family)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// dotKernel: y = sum_{i<n} a_i * b_i, accumulated as a chain (the way
// an unrolled loop body accumulates).
func dotKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("dot_%d", n))
	var acc *dfg.Value
	for i := 0; i < n; i++ {
		a := g.In(fmt.Sprintf("a%d", i))
		b := g.In(fmt.Sprintf("b%d", i))
		m := g.Mul(fmt.Sprintf("m%d", i), a, b)
		if acc == nil {
			acc = m
		} else {
			acc = g.Add(fmt.Sprintf("s%d", i), acc, m)
		}
	}
	g.Out("y", acc)
	return g
}

// firKernel: y = sum_{i<n} c_{i mod 4} * x_i. The coefficient bank is
// shared across taps, so coefficient fanout grows with n — a routing
// pressure the dot ladder does not have.
func firKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("fir_%d", n))
	nc := minInt(n, 4)
	cs := make([]*dfg.Value, nc)
	for i := range cs {
		cs[i] = g.In(fmt.Sprintf("c%d", i))
	}
	var acc *dfg.Value
	for i := 0; i < n; i++ {
		x := g.In(fmt.Sprintf("x%d", i))
		m := g.Mul(fmt.Sprintf("m%d", i), cs[i%nc], x)
		if acc == nil {
			acc = m
		} else {
			acc = g.Add(fmt.Sprintf("s%d", i), acc, m)
		}
	}
	g.Out("y", acc)
	return g
}

// stencilKernel: y_i = c0*x_i + c1*x_{i+1} + c2*x_{i+2} for i < n. The
// three coefficient inputs fan out to every point, stressing routing
// the way the paper's "extreme" benchmark does.
func stencilKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("stencil_%d", n))
	xs := make([]*dfg.Value, n+2)
	for i := range xs {
		xs[i] = g.In(fmt.Sprintf("x%d", i))
	}
	c0 := g.In("c0")
	c1 := g.In("c1")
	c2 := g.In("c2")
	for i := 0; i < n; i++ {
		m0 := g.Mul(fmt.Sprintf("m%d_0", i), c0, xs[i])
		m1 := g.Mul(fmt.Sprintf("m%d_1", i), c1, xs[i+1])
		m2 := g.Mul(fmt.Sprintf("m%d_2", i), c2, xs[i+2])
		t := g.Add(fmt.Sprintf("t%d", i), m0, m1)
		g.Out(fmt.Sprintf("y%d", i), g.Add(fmt.Sprintf("u%d", i), t, m2))
	}
	return g
}

// conv2dKernel: y_{r,c} = sum_{i,j<2} w_{i,j} * x_{r+i,c+j} over an
// n x n output tile. The four weights are shared by every output point
// (fanout n^2 each), and interior image pixels feed up to four
// neighbouring outputs — the two fanout regimes that make unrolled
// convolutions routing-bound on spatial fabrics.
func conv2dKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("conv2d_%d", n))
	xs := make([][]*dfg.Value, n+1)
	for r := range xs {
		xs[r] = make([]*dfg.Value, n+1)
		for c := range xs[r] {
			xs[r][c] = g.In(fmt.Sprintf("x%d_%d", r, c))
		}
	}
	var ws [2][2]*dfg.Value
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			ws[i][j] = g.In(fmt.Sprintf("w%d_%d", i, j))
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			var acc *dfg.Value
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					m := g.Mul(fmt.Sprintf("m%d_%d_%d%d", r, c, i, j), ws[i][j], xs[r+i][c+j])
					if acc == nil {
						acc = m
					} else {
						acc = g.Add(fmt.Sprintf("s%d_%d_%d%d", r, c, i, j), acc, m)
					}
				}
			}
			g.Out(fmt.Sprintf("y%d_%d", r, c), acc)
		}
	}
	return g
}

// matvecKernel: y_i = sum_j a_{i,j} * x_j — one accumulation chain per
// matrix row, with each vector element fanning out to a column of
// multiplies.
func matvecKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("matvec_%d", n))
	xs := make([]*dfg.Value, n)
	for j := range xs {
		xs[j] = g.In(fmt.Sprintf("x%d", j))
	}
	for i := 0; i < n; i++ {
		var acc *dfg.Value
		for j := 0; j < n; j++ {
			a := g.In(fmt.Sprintf("a%d_%d", i, j))
			m := g.Mul(fmt.Sprintf("m%d_%d", i, j), a, xs[j])
			if acc == nil {
				acc = m
			} else {
				acc = g.Add(fmt.Sprintf("s%d_%d", i, j), acc, m)
			}
		}
		g.Out(fmt.Sprintf("y%d", i), acc)
	}
	return g
}

// reduceKernel: a balanced binary adder tree over n inputs.
func reduceKernel(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("reduce_%d", n))
	level := make([]*dfg.Value, n)
	for i := 0; i < n; i++ {
		level[i] = g.In(fmt.Sprintf("x%d", i))
	}
	adds := 0
	for len(level) > 1 {
		var next []*dfg.Value
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, g.Add(fmt.Sprintf("s%d", adds), level[i], level[i+1]))
			adds++
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	g.Out("y", level[0])
	return g
}
