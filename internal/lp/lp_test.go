package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLP(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6, 0<=x,y<=inf  => min -(x+y)
	// Optimum at intersection: x=8/5, y=6/5, obj=-14/5.
	p := &Problem{
		NumVars: 2,
		Obj:     []float64{-1, -1},
		Rows: []Constraint{
			{Coefs: []float64{1, 2}, Rel: LE, RHS: 4},
			{Coefs: []float64{3, 1}, Rel: LE, RHS: 6},
		},
		Upper: []float64{math.Inf(1), math.Inf(1)},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Obj, -14.0/5) {
		t.Errorf("status=%v obj=%v, want optimal -2.8", sol.Status, sol.Obj)
	}
	if !approx(sol.X[0], 1.6) || !approx(sol.X[1], 1.2) {
		t.Errorf("x = %v, want [1.6 1.2]", sol.X)
	}
}

func TestDefaultUnitBox(t *testing.T) {
	// Upper nil => [0,1] box. min -(x+y) with x+y >= 0 trivially, so
	// optimum is the corner (1,1).
	p := &Problem{
		NumVars: 2,
		Obj:     []float64{-1, -1},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Obj, -2) {
		t.Errorf("got %v obj %v, want optimal -2", sol.Status, sol.Obj)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x+y s.t. x+y = 1, x >= 0.3, box [0,1].
	p := &Problem{
		NumVars: 2,
		Obj:     []float64{1, 1},
		Rows: []Constraint{
			{Coefs: []float64{1, 1}, Rel: EQ, RHS: 1},
			{Coefs: []float64{1, 0}, Rel: GE, RHS: 0.3},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Obj, 1) {
		t.Errorf("status=%v obj=%v, want optimal 1", sol.Status, sol.Obj)
	}
	if sol.X[0] < 0.3-1e-9 {
		t.Errorf("x[0] = %v violates >= 0.3", sol.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		Obj:     []float64{1},
		Rows: []Constraint{
			{Coefs: []float64{1}, Rel: GE, RHS: 2}, // x >= 2 vs box [0,1]
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		Obj:     []float64{-1},
		Upper:   []float64{math.Inf(1)},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -0.5  <=>  x >= 0.5.
	p := &Problem{
		NumVars: 1,
		Obj:     []float64{1},
		Rows: []Constraint{
			{Coefs: []float64{-1}, Rel: LE, RHS: -0.5},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Obj, 0.5) {
		t.Errorf("status=%v obj=%v, want optimal 0.5", sol.Status, sol.Obj)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{NumVars: 2, Obj: []float64{1}},
		{NumVars: 1, Obj: []float64{1}, Rows: []Constraint{{Coefs: []float64{1, 2}, Rel: LE, RHS: 1}}},
		{NumVars: 1, Obj: []float64{1}, Upper: []float64{-1}},
		{NumVars: 1, Obj: []float64{1}, Upper: []float64{1, 2}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
	}
}

func TestDegenerateCycleGuard(t *testing.T) {
	// A classic degenerate LP (Beale-like); must terminate.
	p := &Problem{
		NumVars: 4,
		Obj:     []float64{-0.75, 150, -0.02, 6},
		Rows: []Constraint{
			{Coefs: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coefs: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coefs: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
		Upper: []float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Obj, -0.05) {
		t.Errorf("status=%v obj=%v, want optimal -0.05", sol.Status, sol.Obj)
	}
}

// TestFeasibilityOfReturnedPoint: for random box LPs, a returned optimal
// point satisfies every constraint.
func TestFeasibilityOfReturnedPoint(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := rng.Intn(8)
		p := &Problem{NumVars: n, Obj: make([]float64, n)}
		for j := range p.Obj {
			p.Obj[j] = float64(rng.Intn(11) - 5)
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coefs: make([]float64, n), Rel: Rel(rng.Intn(3))}
			for j := range c.Coefs {
				c.Coefs[j] = float64(rng.Intn(7) - 3)
			}
			// Keep RHS achievable reasonably often.
			c.RHS = float64(rng.Intn(5) - 1)
			p.Rows = append(p.Rows, c)
		}
		sol, err := Solve(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if sol.Status != Optimal {
			return true // infeasible is a legal outcome; nothing to check
		}
		for j, x := range sol.X {
			if x < -1e-7 || x > 1+1e-7 {
				t.Logf("seed %d: x[%d]=%v out of box", seed, j, x)
				return false
			}
		}
		for i, r := range p.Rows {
			lhs := 0.0
			for j := range r.Coefs {
				lhs += r.Coefs[j] * sol.X[j]
			}
			ok := false
			switch r.Rel {
			case LE:
				ok = lhs <= r.RHS+1e-6
			case GE:
				ok = lhs >= r.RHS-1e-6
			case EQ:
				ok = math.Abs(lhs-r.RHS) <= 1e-6
			}
			if !ok {
				t.Logf("seed %d: row %d violated: %v %v %v", seed, i, lhs, r.Rel, r.RHS)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
