// Package lp implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize   c·x
//	subject to A·x (<=|>=|=) b,  0 <= x <= u
//
// It is the relaxation substrate of the branch-and-bound ILP engine
// (internal/solve/bb), which serves as the textbook-ILP cross-check for
// the CDCL engine on reduced problem instances. Dantzig pricing with a
// Bland's-rule fallback guarantees termination.
package lp

import (
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

const (
	// LE is "less than or equal".
	LE Rel = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// Constraint is one row: sum(Coefs[j]*x[j]) Rel RHS. Coefs must have
// length NumVars of the owning problem.
type Constraint struct {
	Coefs []float64
	Rel   Rel
	RHS   float64
}

// Problem is a linear program. Variables are bounded to [0, Upper[j]]
// (Upper nil means every variable is bounded to [0, 1], the relaxation of
// a 0-1 program).
type Problem struct {
	NumVars int
	Obj     []float64
	Rows    []Constraint
	Upper   []float64
	// Cancel, when non-nil, aborts the solve with Status Cancelled as
	// soon as the channel closes (checked between pivots). A single
	// relaxation can run for many seconds on mapper-sized tableaus, so
	// callers that race or deadline the solve need this hook.
	Cancel <-chan struct{}
}

// Status is the outcome of a solve.
type Status int

const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective is unbounded below (cannot happen for
	// bounded-variable problems but is reported defensively).
	Unbounded
	// Cancelled: the Problem's Cancel channel closed mid-solve.
	Cancelled
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is a solver result.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	Iters  int
}

const eps = 1e-9

// Solve runs two-phase primal simplex on p.
func Solve(p *Problem) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	n := p.NumVars
	upper := p.Upper
	if upper == nil {
		upper = make([]float64, n)
		for i := range upper {
			upper[i] = 1
		}
	}
	// Tableau assembly for a large problem allocates and fills O(m*total)
	// memory, which can dwarf the pivot time; poll Cancel here too so an
	// already-lost race does not keep building a tableau it will never use.
	cancelCheck := func() bool {
		if p.Cancel == nil {
			return false
		}
		select {
		case <-p.Cancel:
			return true
		default:
			return false
		}
	}

	// Assemble rows: the user's rows plus one x_j <= u_j bound row per
	// finite upper bound.
	type row struct {
		coefs []float64
		rel   Rel
		rhs   float64
	}
	var rows []row
	for _, r := range p.Rows {
		rows = append(rows, row{coefs: r.Coefs, rel: r.Rel, rhs: r.RHS})
	}
	for j := 0; j < n; j++ {
		if j%4096 == 0 && cancelCheck() {
			return &Solution{Status: Cancelled}, nil
		}
		if math.IsInf(upper[j], 1) {
			continue
		}
		coefs := make([]float64, n)
		coefs[j] = 1
		rows = append(rows, row{coefs: coefs, rel: LE, rhs: upper[j]})
	}
	m := len(rows)

	// Count slack and artificial columns. Every row gets either a
	// slack that can serve as the initial basis (<= with rhs >= 0) or
	// an artificial variable.
	// Normalise RHS >= 0 first (flipping the relation).
	for i := range rows {
		if rows[i].rhs < 0 {
			c := make([]float64, n)
			for j, v := range rows[i].coefs {
				c[j] = -v
			}
			rows[i].coefs = c
			rows[i].rhs = -rows[i].rhs
			switch rows[i].rel {
			case LE:
				rows[i].rel = GE
			case GE:
				rows[i].rel = LE
			}
		}
	}
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		switch r.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows of total+1 (last column RHS), plus objective row.
	t := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	artCols := make([]int, 0, nArt)
	for i, r := range rows {
		if i%512 == 0 && cancelCheck() {
			return &Solution{Status: Cancelled}, nil
		}
		t[i] = make([]float64, total+1)
		copy(t[i], r.coefs)
		t[i][total] = r.rhs
		switch r.rel {
		case LE:
			t[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			t[i][slackCol] = -1
			slackCol++
			t[i][artCol] = 1
			basis[i] = artCol
			artCols = append(artCols, artCol)
			artCol++
		case EQ:
			t[i][artCol] = 1
			basis[i] = artCol
			artCols = append(artCols, artCol)
			artCol++
		}
	}

	iters := 0
	// Phase 1: minimise the sum of artificials.
	if nArt > 0 {
		obj := make([]float64, total+1)
		for _, c := range artCols {
			obj[c] = 1
		}
		// Price out basic artificials.
		for i, b := range basis {
			if obj[b] != 0 {
				sub(obj, t[i], obj[b])
			}
		}
		it, unb, cancelled := pivotLoop(t, basis, obj, total, p.Cancel)
		iters += it
		if cancelled {
			return &Solution{Status: Cancelled, Iters: iters}, nil
		}
		if unb {
			return nil, fmt.Errorf("lp: phase-1 unbounded (internal error)")
		}
		if -obj[total] > 1e-7 {
			return &Solution{Status: Infeasible, Iters: iters}, nil
		}
		// Drive any artificial still in the basis out (degenerate).
		for i, b := range basis {
			if !isArt(b, n+nSlack) {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, obj, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless to leave (its RHS
				// is ~0 and the artificial stays at 0).
				_ = i
			}
		}
	}

	// Phase 2: original objective (artificial columns frozen at 0 by
	// removing them from pricing).
	obj := make([]float64, total+1)
	copy(obj, p.Obj)
	for i, b := range basis {
		if obj[b] != 0 {
			sub(obj, t[i], obj[b])
		}
	}
	limit := n + nSlack // exclude artificial columns from entering
	it, unb, cancelled := pivotLoop(t, basis, obj, limit, p.Cancel)
	iters += it
	if cancelled {
		return &Solution{Status: Cancelled, Iters: iters}, nil
	}
	if unb {
		return &Solution{Status: Unbounded, Iters: iters}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = t[i][total]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.Obj[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: objVal, Iters: iters}, nil
}

func isArt(col, firstArt int) bool { return col >= firstArt }

func validate(p *Problem) error {
	if p.NumVars < 0 {
		return fmt.Errorf("lp: negative variable count")
	}
	if len(p.Obj) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Obj), p.NumVars)
	}
	if p.Upper != nil && len(p.Upper) != p.NumVars {
		return fmt.Errorf("lp: upper bounds have %d entries, want %d", len(p.Upper), p.NumVars)
	}
	if p.Upper != nil {
		for j, u := range p.Upper {
			if u < 0 || math.IsNaN(u) {
				return fmt.Errorf("lp: upper bound %d is %v", j, u)
			}
		}
	}
	for i, r := range p.Rows {
		if len(r.Coefs) != p.NumVars {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(r.Coefs), p.NumVars)
		}
	}
	return nil
}

// sub performs obj -= factor*row.
func sub(obj, row []float64, factor float64) {
	for j := range obj {
		obj[j] -= factor * row[j]
	}
}

// pivotLoop runs primal simplex pivots until optimality (no negative
// reduced cost among columns [0, limit)), unboundedness, or
// cancellation. It uses Dantzig pricing for the first 5000 iterations,
// then Bland's rule for guaranteed termination. A pivot on a
// mapper-sized tableau costs O(m*total) flops, so the cancel channel is
// polled every iteration — the poll is noise next to the pivot itself
// and bounds cancellation latency to a single pivot.
func pivotLoop(t [][]float64, basis []int, obj []float64, limit int, cancel <-chan struct{}) (iters int, unbounded, cancelled bool) {
	m := len(t)
	total := len(obj) - 1
	const blandAfter = 5000
	for {
		if cancel != nil {
			select {
			case <-cancel:
				return iters, false, true
			default:
			}
		}
		// Entering column.
		enter := -1
		if iters < blandAfter {
			best := -eps
			for j := 0; j < limit; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < limit; j++ {
				if obj[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return iters, false, false
		}
		// Leaving row: minimum ratio; ties by smallest basis index
		// (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][total] / t[i][enter]
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return iters, true, false
		}
		pivot(t, basis, obj, leave, enter)
		iters++
	}
}

// pivot makes (row, col) the new basic entry.
func pivot(t [][]float64, basis []int, obj []float64, row, col int) {
	pr := t[row]
	inv := 1 / pr[col]
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * pr[j]
		}
		t[i][col] = 0
	}
	if f := obj[col]; f != 0 {
		for j := range obj {
			obj[j] -= f * pr[j]
		}
		obj[col] = 0
	}
	basis[row] = col
}
