package mapper

import (
	"context"
	"encoding/json"
	"testing"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/mrrg"
)

func solveSmall(t *testing.T) (*Mapping, *mrrg.Graph) {
	t.Helper()
	g, err := bench.Get("2x2-f")
	if err != nil {
		t.Fatal(err)
	}
	a, err := arch.Grid(arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(context.Background(), g, mg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("expected feasible, got %v", res.Status)
	}
	return res.Mapping, mg
}

// TestPortableJSONRoundTrip: Mapping -> Portable -> JSON -> Portable ->
// Mapping survives, and the reconstruction passes full verification with
// the same routing cost.
func TestPortableJSONRoundTrip(t *testing.T) {
	m, mg := solveSmall(t)
	p := m.Portable()
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Portable
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := FromPortable(m.DFG, mg, &decoded)
	if err != nil {
		t.Fatal(err)
	}
	if back.RoutingCost() != p.RoutingCost {
		t.Errorf("routing cost %d after round trip, want %d", back.RoutingCost(), p.RoutingCost)
	}
	for _, op := range m.DFG.Ops() {
		if back.Placement[op.ID] != m.Placement[op.ID] {
			t.Errorf("op %s moved from %d to %d in round trip", op.Name, m.Placement[op.ID], back.Placement[op.ID])
		}
	}
}

// TestFromPortableRejectsCorruption: tampered portable mappings are
// rejected either structurally or by Verify.
func TestFromPortableRejectsCorruption(t *testing.T) {
	m, mg := solveSmall(t)
	fresh := func() *Portable {
		blob, _ := json.Marshal(m.Portable())
		var p Portable
		_ = json.Unmarshal(blob, &p)
		return &p
	}

	p := fresh()
	p.Placements[0].Node = "no-such-node"
	if _, err := FromPortable(m.DFG, mg, p); err == nil {
		t.Error("unknown node accepted")
	}

	p = fresh()
	p.Placements[0].Op = "no-such-op"
	if _, err := FromPortable(m.DFG, mg, p); err == nil {
		t.Error("unknown op accepted")
	}

	p = fresh()
	p.Placements = p.Placements[1:]
	if _, err := FromPortable(m.DFG, mg, p); err == nil {
		t.Error("missing placement accepted")
	}

	p = fresh()
	// All ops on one node: violates FU exclusivity, must fail Verify.
	for i := range p.Placements {
		p.Placements[i].Node = p.Placements[0].Node
	}
	if _, err := FromPortable(m.DFG, mg, p); err == nil {
		t.Error("verification bypassed for conflicting placements")
	}

	p = fresh()
	if len(p.Routes) > 0 {
		p.Routes[0].Nodes = nil // broken route connectivity
		if _, err := FromPortable(m.DFG, mg, p); err == nil {
			t.Error("empty route accepted")
		}
	}

	p = fresh()
	p.Contexts++
	if _, err := FromPortable(m.DFG, mg, p); err == nil {
		t.Error("context mismatch accepted")
	}
}
