package mapper

import (
	"context"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
)

func TestMapAutoFindsMinimalII(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	// mult_10 needs 9 multipliers; hetero has 8 per context -> II >= 2,
	// and the paper's Table 2 shows it mappable at II = 2.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := MapAuto(ctx, bench.MustGet("mult_10"), a, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("mult_10 auto-II failed: %v (%s)", res.Status, res.Reason)
	}
	if res.II != 2 {
		t.Errorf("II = %d, want 2 (MII bound from 9 multiplies on 8 slots)", res.II)
	}
	// The search starts at the MII, so II=1 must not even be attempted.
	if len(res.Tried) != 1 {
		t.Errorf("tried %d IIs, want 1 (search starts at MII=2)", len(res.Tried))
	}
}

func TestMapAutoEasyKernelAtIIOne(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := MapAuto(ctx, bench.MustGet("2x2-f"), a, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() || res.II != 1 {
		t.Errorf("2x2-f: II=%d status=%v, want feasible at II=1", res.II, res.Status)
	}
}

func TestMapAutoExhaustsBudget(t *testing.T) {
	// div is unsupported: infeasible at every II.
	a, err := arch.Grid(arch.GridSpec{Rows: 2, Cols: 2, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := dfg.New("d")
	x := g.In("x")
	op, _ := g.AddOp("q", dfg.Div, x, x)
	g.Out("o", op.Out)
	res, err := MapAuto(context.Background(), g, a, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible() || res.Status != ilp.Infeasible {
		t.Errorf("unsupported kernel: %v", res.Status)
	}
	if _, err := MapAuto(context.Background(), g, a, 0, Options{}); err == nil {
		t.Error("maxII=0 accepted")
	}
}

func TestMapAutoMIIGate(t *testing.T) {
	// extreme needs II >= 2 (19 ALU ops on 16 ALUs); with maxII=1 the
	// search must conclude infeasible without any solve.
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Homogeneous: true, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MapAuto(context.Background(), bench.MustGet("extreme"), a, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Infeasible || len(res.Tried) != 0 {
		t.Errorf("status=%v tried=%v, want immediate infeasible", res.Status, res.Tried)
	}
}
