package mapper

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cgramap/internal/budget"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/cdcl"
)

// ObjectiveMode selects the ILP objective.
type ObjectiveMode int

const (
	// Feasibility solves the pure mapping-existence question — what
	// the paper's Table 2 reports.
	Feasibility ObjectiveMode = iota
	// MinimizeRouting minimises total routing-resource usage (paper
	// eq. 10).
	MinimizeRouting
)

// Options configures the ILP mapper.
type Options struct {
	// Solver is the ILP engine; nil selects the CDCL engine.
	Solver ilp.Solver
	// Objective selects feasibility or routing minimisation.
	Objective ObjectiveMode
	// DisablePruning turns off sub-value reachability pruning and
	// placement refinement (for the ablation study); the formulation
	// then carries R variables for every routing node.
	DisablePruning bool
	// DisablePresolve turns off the counting presolve, forcing even
	// pigeonhole-infeasible instances through the solver.
	DisablePresolve bool
	// Workers requests parallelism of this width: Map runs a
	// clause-sharing CDCL gang (when Solver is nil), and MapAuto
	// additionally speculates on several candidate IIs concurrently.
	// Values <= 1 keep both fully sequential; with Workers <= 1 and a
	// fixed Seed every run is bit-identical.
	Workers int
	// Seed fixes the solver's search trajectory (and derives the
	// diversified trajectories of a parallel gang).
	Seed int64
	// Incremental makes MapAuto solve the II ladder through an
	// assumption-based incremental CDCL session instead of independent
	// from-scratch solves: the solver stays alive across II bumps,
	// constraints shared between successive formulations keep their
	// learnt clauses, and placement variables warm-start from the
	// previous II's trajectory. With Workers > 1 each speculative lane
	// owns its own session (contexts are never shared across
	// goroutines). Sweep drivers (the frontier engine, the service's
	// auto-II jobs) honour the flag too. Ignored when Solver or MapWith
	// is set. The minimal II and every per-II status are unchanged —
	// incremental solving only changes how fast the answer arrives.
	Incremental bool
	// Symmetry controls symmetry-breaking constraints: verified fabric
	// automorphisms (arch.Discover) become lex-leader and orbit-fixing
	// constraints, and interchangeable commutative operands are ordered
	// (symmetry.go). The default SymmetryAuto resolves to on for
	// MapAuto sweeps and off for direct Map/BuildModel calls. Symmetry
	// breaking removes symmetric duplicates from the search space but
	// never an entire solution orbit, so feasibility status, minimal II
	// and optimal objective are unchanged — like Workers, Seed and
	// Incremental it is a speed knob, exempt from job fingerprints.
	Symmetry SymmetryMode
	// Budget pays for parallelism beyond the caller's own goroutine;
	// nil selects the process-wide budget.Global pool.
	Budget *budget.Pool
	// Artifacts, when non-nil, caches the intermediate artifacts
	// between parsing and solving: generated MRRGs and formulation
	// templates, both content-addressed by structural fingerprints.
	// Map and BuildModel then stamp per-II models from a shared
	// template instead of re-deriving the II-independent analysis, and
	// MapAuto additionally reuses cached MRRGs across the ladder. The
	// cache never changes any answer — stamped formulations are
	// byte-identical to scratch ones — so, like Workers and Seed, the
	// field is exempt from job fingerprints.
	Artifacts *ArtifactCache
	// MapWith, when non-nil, replaces the direct build-and-solve
	// pipeline for callers that go through Dispatch (MapAuto, the
	// experiment sweeps, the CLIs). It is the seam that lets an
	// orchestrator such as internal/portfolio slot in above the solver
	// without an import cycle. Dispatch clears the field before
	// invoking it, so the replacement may itself call Map or Dispatch
	// with the options it receives.
	MapWith MapFunc
}

// MapFunc is the signature of Map. Orchestrators provide drop-in
// replacements (see Options.MapWith).
type MapFunc func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error)

// Dispatch routes a mapping request through opts.MapWith when set, and
// through Map otherwise.
func Dispatch(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error) {
	if opts.MapWith != nil {
		fn := opts.MapWith
		opts.MapWith = nil
		return fn(ctx, g, mg, opts)
	}
	return Map(ctx, g, mg, opts)
}

// Result reports one mapping attempt.
type Result struct {
	// Status is Optimal/Feasible when a mapping was found, Infeasible
	// when mapping is provably impossible, Unknown on solver timeout
	// (the paper's "T" entries).
	Status ilp.Status
	// Mapping is the decoded, verified mapping (nil unless feasible).
	Mapping *Mapping
	// Reason explains construction-time infeasibility (presolve or
	// reachability), empty when the solver decided the instance.
	Reason string
	// Vars and Constraints describe the solved model size.
	Vars, Constraints int
	// SolverStats carries engine counters.
	SolverStats map[string]int64
	// BuildTime and SolveTime split the runtime.
	BuildTime, SolveTime time.Duration
}

// Feasible reports whether a mapping was found.
func (r *Result) Feasible() bool {
	return r.Status == ilp.Optimal || r.Status == ilp.Feasible
}

// BuildModel constructs the ILP model for mapping g onto mg without
// solving it. It returns the model (nil when construction already proved
// infeasibility, together with the reason).
func BuildModel(g *dfg.Graph, mg *mrrg.Graph, opts Options) (*ilp.Model, string, error) {
	if opts.Symmetry == SymmetryAuto {
		opts.Symmetry = SymmetryOff
	}
	t, err := templateFor(g, mg.Arch, opts)
	if err != nil {
		return nil, "", err
	}
	return t.BuildModel(mg)
}

// Map places and routes g onto mg by building and solving the paper's
// ILP formulation, then decodes and independently verifies the result.
func Map(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error) {
	if opts.Symmetry == SymmetryAuto {
		// A single fixed-II solve is as likely to be an easy SAT
		// instance (where lex chains are pure overhead) as a hard
		// proof; only explicit opt-in pays for them here.
		opts.Symmetry = SymmetryOff
	}
	solver := opts.Solver
	if solver == nil {
		if opts.Workers > 1 {
			pe := cdcl.NewParallel(opts.Workers, opts.Seed)
			pe.Budget = opts.Budget
			solver = pe
		} else if opts.Seed != 0 {
			solver = cdcl.NewSeeded(opts.Seed)
		} else {
			solver = cdcl.New()
		}
	}
	start := time.Now()
	t, err := templateFor(g, mg.Arch, opts)
	if err != nil {
		return nil, err
	}
	f, err := t.stamp(mg)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(start)
	if f.infeasible != "" {
		return &Result{Status: ilp.Infeasible, Reason: f.infeasible, BuildTime: buildTime}, nil
	}

	solveStart := time.Now()
	sol, err := solver.Solve(ctx, f.model)
	if err != nil {
		return nil, fmt.Errorf("mapper: solving %s: %w", f.model.Name, err)
	}
	res := &Result{
		Status:      sol.Status,
		Vars:        f.model.NumVars(),
		Constraints: len(f.model.Constraints),
		SolverStats: sol.Stats,
		BuildTime:   buildTime,
		SolveTime:   time.Since(solveStart),
	}
	if !res.Feasible() {
		return res, nil
	}
	m, err := f.decode(sol.Assignment)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("mapper: solver returned an invalid mapping: %w", err)
	}
	res.Mapping = m
	return res, nil
}

// decode converts a satisfying assignment into a Mapping.
func (f *formulation) decode(a ilp.Assignment) (*Mapping, error) {
	if len(a) != f.model.NumVars() {
		// A wrong-shaped assignment (e.g. a truncated solution from a
		// misbehaving engine) must be rejected here, not crash the
		// variable lookups below.
		return nil, fmt.Errorf("mapper: solver returned %d-variable assignment for %d-variable model",
			len(a), f.model.NumVars())
	}
	m := &Mapping{
		DFG:       f.g,
		MRRG:      f.mg,
		Placement: make([]int, f.g.NumOps()),
		Routes:    make([][][]int, f.g.NumVals()),
	}
	for _, op := range f.g.Ops() {
		m.Placement[op.ID] = -1
		for p, v := range f.fvar[op.ID] {
			if a[v] {
				if m.Placement[op.ID] >= 0 {
					return nil, fmt.Errorf("mapper: op %s placed twice", op.Name)
				}
				m.Placement[op.ID] = p
			}
		}
		if m.Placement[op.ID] < 0 {
			return nil, fmt.Errorf("mapper: op %s unplaced in solution", op.Name)
		}
	}
	for _, val := range f.g.Vals() {
		m.Routes[val.ID] = make([][]int, len(val.Uses))
		for k := range val.Uses {
			var nodes []int
			for i, v := range f.r3[val.ID][k] {
				if a[v] {
					nodes = append(nodes, i)
				}
			}
			sort.Ints(nodes)
			m.Routes[val.ID][k] = m.trimRoute(val, k, nodes)
		}
	}
	return m, nil
}

// trimRoute reduces a sub-value's assigned node set to an actual
// source-to-sink path. In feasibility mode the solver may set routing
// variables beyond the useful path (nothing in the formulation rewards
// sparseness without the objective); the extra nodes are legal but noisy,
// so reporting keeps only a breadth-first path from the producer's output
// to the sink's operand port. Falls back to the full set if no path is
// found (Verify will then report the real problem).
func (m *Mapping) trimRoute(val *dfg.Value, k int, nodes []int) []int {
	mg := m.MRRG
	u := val.Uses[k]
	src := mg.Nodes[m.Placement[val.Def.ID]].OutNode
	sinkFU := m.Placement[u.Op.ID]
	inSet := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	if !inSet[src] {
		return nodes
	}
	prev := map[int]int{src: -1}
	queue := []int{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		node := mg.Nodes[n]
		if node.OperandPort >= 0 && node.FUNode == sinkFU && mg.CompatibleSink(node, u.Op, u.Operand) {
			var path []int
			for c := n; c != -1; c = prev[c] {
				path = append(path, c)
			}
			// Reverse into source-to-sink hop order.
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		for _, f := range node.Fanouts {
			if _, seen := prev[f]; !seen && inSet[f] {
				prev[f] = n
				queue = append(queue, f)
			}
		}
	}
	return nodes
}
