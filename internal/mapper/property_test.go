package mapper

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/bb"
)

// randomKernel builds a small random DFG over ALU-mappable operations.
func randomKernel(seed int64, maxOps int) *dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dfg.New("rk")
	nIn := 1 + rng.Intn(3)
	vals := make([]*dfg.Value, 0, 16)
	for i := 0; i < nIn; i++ {
		vals = append(vals, g.In(fmt.Sprintf("in%d", i)))
	}
	kinds := []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Xor, dfg.And, dfg.Shr}
	nOps := rng.Intn(maxOps)
	for i := 0; i < nOps; i++ {
		k := kinds[rng.Intn(len(kinds))]
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		op, err := g.AddOp(fmt.Sprintf("op%d", i), k, a, b)
		if err != nil {
			panic(err)
		}
		vals = append(vals, op.Out)
	}
	g.Out("out", vals[len(vals)-1])
	return g
}

// TestPropertyFeasibleImpliesVerified: on a flexible architecture, any
// mapping the ILP mapper returns passes independent verification (Map
// errors out otherwise) and uses exactly the DFG's operations.
func TestPropertyFeasibleImpliesVerified(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 3, Cols: 3, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		g := randomKernel(seed, 5)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := Map(ctx, g, mg, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !res.Feasible() {
			return true // nothing further to check
		}
		// Placements are unique and legal (Verify ran inside Map; spot
		// re-check here).
		return res.Mapping.Verify() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPruningPreservesStatus: reachability pruning and the
// counting presolve are pure model reductions — they never change the
// feasibility verdict.
func TestPropertyPruningPreservesStatus(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		g := randomKernel(seed, 4)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		pruned, err := Map(ctx, g, mg, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		unpruned, err := Map(ctx, g, mg, Options{DisablePruning: true, DisablePresolve: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if pruned.Status == ilp.Unknown || unpruned.Status == ilp.Unknown {
			return true // timeout: no verdict to compare
		}
		if pruned.Feasible() != unpruned.Feasible() {
			t.Logf("seed %d: pruned=%v unpruned=%v", seed, pruned.Status, unpruned.Status)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEnginesAgreeOnMapping: the CDCL and branch-and-bound
// engines agree on tiny mapping instances.
func TestPropertyEnginesAgreeOnMapping(t *testing.T) {
	b := arch.NewBuilder("tiny2", 1)
	io1 := b.FU("io1", []dfg.Kind{dfg.Input, dfg.Output}, 1, 0, 1)
	io2 := b.FU("io2", []dfg.Kind{dfg.Input, dfg.Output}, 1, 0, 1)
	muxA := b.Mux("mux_a", 3)
	muxB := b.Mux("mux_b", 3)
	alu := b.FU("alu", []dfg.Kind{dfg.Add, dfg.Mul, dfg.Sub}, 2, 0, 1)
	reg := b.Reg("reg")
	b.Connect(io1, muxA, 0)
	b.Connect(io2, muxA, 1)
	b.Connect(reg, muxA, 2)
	b.Connect(io1, muxB, 0)
	b.Connect(io2, muxB, 1)
	b.Connect(reg, muxB, 2)
	b.Connect(muxA, alu, 0)
	b.Connect(muxB, alu, 1)
	b.Connect(alu, reg, 0)
	b.Connect(alu, io1, 0)
	b.Connect(alu, io2, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		g := randomKernel(seed, 2)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		r1, err := Map(ctx, g, mg, Options{})
		if err != nil {
			t.Logf("seed %d: cdcl: %v", seed, err)
			return false
		}
		r2, err := Map(ctx, g, mg, Options{Solver: bb.New()})
		if err != nil {
			t.Logf("seed %d: bb: %v", seed, err)
			return false
		}
		if r1.Status == ilp.Unknown || r2.Status == ilp.Unknown {
			return true
		}
		if r1.Feasible() != r2.Feasible() {
			t.Logf("seed %d: cdcl=%v bb=%v", seed, r1.Status, r2.Status)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
