package mapper

import (
	"context"
	"os"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
)

// equivKernels is the fast subset checked on every `go test` run. The CI
// equivalence job sets CGRAMAP_EQUIV_ALL=1 to sweep the whole Table 1
// benchmark set instead.
var equivKernels = []string{"accum", "mac", "2x2-f", "2x2-p", "mult_10", "exp_4"}

// TestMapAutoIncrementalEquivalence is the contract the incremental mode
// lives by: for every kernel, MapAuto with Incremental on must report the
// same minimal II and the same per-II status trajectory as the scratch
// ladder. Incremental solving may only change how fast the answer
// arrives, never the answer.
func TestMapAutoIncrementalEquivalence(t *testing.T) {
	kernels := equivKernels
	scratchBudget := 4 * time.Minute
	if os.Getenv("CGRAMAP_EQUIV_ALL") != "" {
		// The full Table 1 sweep has to fit a CI job: give the scratch
		// ladder a bounded slice and skip kernels it cannot decide —
		// without a decided scratch answer there is no ground truth to
		// hold the incremental ladder to.
		kernels = bench.Names()
		scratchBudget = 45 * time.Second
	}
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range kernels {
		name := name
		t.Run(name, func(t *testing.T) {
			g := bench.MustGet(name)
			sctx, scancel := context.WithTimeout(context.Background(), scratchBudget)
			defer scancel()
			scratch, err := MapAuto(sctx, g, a, 4, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if scratch.Status == ilp.Unknown {
				t.Skipf("scratch ladder undecided within %v; no ground truth", scratchBudget)
			}
			// A decided ladder is a proof, not a timing artifact: every
			// tried rung is Feasible or Infeasible, so the incremental
			// ladder must reproduce it exactly. 10x the scratch budget
			// absorbs the first-solve guard tax (worst measured: the
			// extreme kernel at 6.7x — DESIGN.md "Paying for the
			// guards") without letting a hang pass silently.
			ictx, icancel := context.WithTimeout(context.Background(), 10*scratchBudget)
			defer icancel()
			inc, err := MapAuto(ictx, g, a, 4, Options{Seed: 1, Incremental: true})
			if err != nil {
				t.Fatal(err)
			}
			if inc.II != scratch.II || inc.Status != scratch.Status {
				t.Fatalf("incremental II=%d status=%v, scratch II=%d status=%v",
					inc.II, inc.Status, scratch.II, scratch.Status)
			}
			if len(inc.Tried) != len(scratch.Tried) {
				t.Fatalf("incremental tried %v, scratch tried %v", inc.Tried, scratch.Tried)
			}
			for i := range inc.Tried {
				if inc.Tried[i] != scratch.Tried[i] {
					t.Fatalf("II=%d: incremental %v, scratch %v (full: %v vs %v)",
						i, inc.Tried[i], scratch.Tried[i], inc.Tried, scratch.Tried)
				}
			}
			if inc.Feasible() {
				if err := inc.Mapping.Verify(); err != nil {
					t.Fatalf("incremental mapping invalid: %v", err)
				}
			}
		})
	}
}

// TestMapAutoIncrementalSpeculative composes the incremental sessions
// with the speculative sweep: per-lane sessions must produce the same
// minimal II as the sequential scratch ladder.
func TestMapAutoIncrementalSpeculative(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := bench.MustGet("mult_10") // minimal II = 2 on the hetero grid
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	res, err := MapAuto(ctx, g, a, 4, Options{Workers: 3, Incremental: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() || res.II != 2 {
		t.Fatalf("speculative incremental: II=%d status=%v, want feasible at II=2", res.II, res.Status)
	}
	if err := res.Mapping.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalEligibility: a caller-supplied solver or orchestrator
// must win over the Incremental flag.
func TestIncrementalEligibility(t *testing.T) {
	if incrementalEligible(Options{Incremental: true}) != true {
		t.Error("plain Incremental option not eligible")
	}
	if incrementalEligible(Options{}) {
		t.Error("eligible without the flag")
	}
	var mf MapFunc = func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error) {
		return nil, nil
	}
	if incrementalEligible(Options{Incremental: true, MapWith: mf}) {
		t.Error("eligible despite MapWith")
	}
}
