package mapper

import (
	"container/list"
	"fmt"
	"sync"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/mrrg"
)

// ArtifactCache is a content-addressed store of the intermediate
// artifacts between parsing and solving: generated MRRGs, keyed by
// (architecture fingerprint, context count), and formulation templates,
// keyed by (DFG fingerprint, architecture fingerprint, formulation
// options). One cache serves a whole process — the daemon shares one
// across all jobs, the CLIs across a run — so repeated sweeps over one
// fabric skip straight to stamping and solving.
//
// Keying is purely structural: renaming a kernel or a primitive does
// not miss, and any semantic edit misses by construction, so there is
// no invalidation protocol — stale entries are impossible, and the only
// eviction is LRU capacity pressure. All methods are safe for
// concurrent use; cached artifacts are shared and immutable.
type ArtifactCache struct {
	mrrgs *mrrg.Cache

	mu       sync.Mutex
	cap      int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*tmplFlight

	hits      int64
	misses    int64
	evictions int64
	bytes     int64
}

type tmplEntry struct {
	key   string
	t     *Template
	bytes int64
}

type tmplFlight struct {
	done chan struct{}
	t    *Template
	err  error
}

// NewArtifactCache returns a cache bounded to the given number of
// entries per artifact class (MRRGs and templates each get their own
// LRU of that capacity, since their sizes and reuse patterns differ). A
// zero or negative capacity disables retention; lookups then always
// rebuild (still single-flighted, so concurrent identical requests
// share one build).
func NewArtifactCache(capacity int) *ArtifactCache {
	return &ArtifactCache{
		mrrgs:    mrrg.NewCache(capacity),
		cap:      capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*tmplFlight),
	}
}

// ArtifactStats is a point-in-time snapshot of both artifact classes.
type ArtifactStats struct {
	// MRRG reports the MRRG store (hits, misses, evictions, entries,
	// approximate bytes).
	MRRG mrrg.CacheStats
	// Template* report the formulation-template store.
	TemplateHits, TemplateMisses, TemplateEvictions int64
	TemplateEntries                                 int
	TemplateBytes                                   int64
}

// Stats returns a snapshot of the cache counters.
func (c *ArtifactCache) Stats() ArtifactStats {
	s := ArtifactStats{MRRG: c.mrrgs.Stats()}
	c.mu.Lock()
	s.TemplateHits = c.hits
	s.TemplateMisses = c.misses
	s.TemplateEvictions = c.evictions
	s.TemplateEntries = c.order.Len()
	s.TemplateBytes = c.bytes
	c.mu.Unlock()
	return s
}

// MRRG returns the (cached) MRRG for a. The returned graph is shared:
// callers must not modify it.
func (c *ArtifactCache) MRRG(a *arch.Arch) (*mrrg.Graph, error) {
	return c.mrrgs.Generate(a)
}

// templateKey derives the content-addressed template key. The
// architecture hash is taken at a normalised context count of 1,
// because a template is II-independent: every II of one fabric shares
// the entry. The formulation options that shape the template (objective
// mode, pruning, presolve, symmetry) are part of the key; solver-side
// options (workers, seed, incremental) are not — they never reach the
// formulation. Symmetry must be resolved (never SymmetryAuto) by the
// time a template is requested, so the key is well-defined.
func templateKey(g *dfg.Graph, a *arch.Arch, opts Options) string {
	single := *a
	single.Contexts = 1
	return fmt.Sprintf("%s/%s/o%d-p%t-s%t-y%t", g.Fingerprint(), single.Fingerprint(),
		opts.Objective, opts.DisablePruning, opts.DisablePresolve, opts.Symmetry == SymmetryOn)
}

// template returns the (cached) formulation template for mapping g onto
// the architecture, building and single-flighting on miss.
func (c *ArtifactCache) template(g *dfg.Graph, a *arch.Arch, opts Options) (*Template, error) {
	key := templateKey(g, a, opts)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		t := el.Value.(*tmplEntry).t
		c.mu.Unlock()
		return t, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.t, fl.err
	}
	c.misses++
	fl := &tmplFlight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.t, fl.err = NewTemplate(g, a, opts)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil && c.cap > 0 {
		size := fl.t.approxBytes
		c.entries[key] = c.order.PushFront(&tmplEntry{key: key, t: fl.t, bytes: size})
		c.bytes += size
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			e := oldest.Value.(*tmplEntry)
			delete(c.entries, e.key)
			c.bytes -= e.bytes
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.t, fl.err
}

// templateFor resolves the formulation template for (g, arch): from the
// artifact cache when the caller carries one, freshly built otherwise.
// This is the single seam through which every formulation — scratch or
// cached — is produced, which is what makes stamped and scratch models
// byte-identical by construction.
func templateFor(g *dfg.Graph, a *arch.Arch, opts Options) (*Template, error) {
	if opts.Artifacts != nil {
		return opts.Artifacts.template(g, a, opts)
	}
	return NewTemplate(g, a, opts)
}
