package mapper

import (
	"context"
	"strings"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
)

func mustMRRG(t *testing.T, a *arch.Arch, err error) *mrrg.Graph {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	g, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustGridMRRG(t *testing.T, spec arch.GridSpec) *mrrg.Graph {
	t.Helper()
	a, err := arch.Grid(spec)
	return mustMRRG(t, a, err)
}

// lineArch: io_in FU -> mux -> alu -> mux2 -> io_out FU, with a register
// loop for feasibility across contexts. alu operand muxes select from
// io_in and the alu's own register.
func lineArch(t *testing.T, contexts int, aluOps []dfg.Kind) *mrrg.Graph {
	t.Helper()
	b := arch.NewBuilder("line", contexts)
	ioIn := b.FU("io_in", []dfg.Kind{dfg.Input}, 0, 0, 1)
	ioOut := b.FU("io_out", []dfg.Kind{dfg.Output}, 1, 0, 1)
	muxA := b.Mux("mux_a", 2)
	muxB := b.Mux("mux_b", 2)
	alu := b.FU("alu", aluOps, 2, 0, 1)
	reg := b.Reg("reg")
	muxO := b.Mux("mux_o", 2)
	b.Connect(ioIn, muxA, 0)
	b.Connect(ioIn, muxB, 0)
	b.Connect(reg, muxA, 1)
	b.Connect(reg, muxB, 1)
	b.Connect(muxA, alu, 0)
	b.Connect(muxB, alu, 1)
	b.Connect(alu, reg, 0)
	b.Connect(alu, muxO, 0)
	b.Connect(reg, muxO, 1)
	b.Connect(muxO, ioOut, 0)
	a, err := b.Build()
	return mustMRRG(t, a, err)
}

func mapIt(t *testing.T, g *dfg.Graph, mg *mrrg.Graph, opts Options) *Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Map(ctx, g, mg, opts)
	if err != nil {
		t.Fatalf("Map(%s): %v", g.Name, err)
	}
	return res
}

func TestSquareEndToEnd(t *testing.T) {
	// x*x: one value feeding both operand ports of the same FU.
	g := dfg.New("square")
	x := g.In("x")
	sq := g.Mul("sq", x, x)
	g.Out("o", sq)
	mg := lineArch(t, 1, []dfg.Kind{dfg.Mul})
	res := mapIt(t, g, mg, Options{})
	if !res.Feasible() {
		t.Fatalf("status = %v (%s), want feasible", res.Status, res.Reason)
	}
	m := res.Mapping
	if mg.Nodes[m.Placement[g.OpByName("sq").ID]].Name != "c0.alu" {
		t.Errorf("sq placed on %s", mg.Nodes[m.Placement[1]].Name)
	}
	// The verifier already ran inside Map; run it again explicitly.
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}

// TestExample1 reproduces the paper's Example 1: a single-sink value from
// Op1 can terminate at either of two downstream FUs; Implied Placement
// must put Op2 wherever the route ends.
func TestExample1(t *testing.T) {
	b := arch.NewBuilder("mrrgA", 1)
	fu1 := b.FU("fu1", []dfg.Kind{dfg.Input}, 0, 0, 1)
	r1 := b.Wire("r1")
	r2 := b.Wire("r2")
	r3 := b.Wire("r3")
	fu2 := b.FU("fu2", []dfg.Kind{dfg.Output}, 1, 0, 1)
	fu3 := b.FU("fu3", []dfg.Kind{dfg.Output}, 1, 0, 1)
	b.Connect(fu1, r1, 0)
	b.Connect(r1, r2, 0)
	b.Connect(r1, r3, 0)
	b.Connect(r2, fu2, 0)
	b.Connect(r3, fu3, 0)
	a, err := b.Build()
	mg := mustMRRG(t, a, err)

	g := dfg.New("dfgA")
	v := g.In("op1")
	g.Out("op2", v)
	res := mapIt(t, g, mg, Options{})
	if !res.Feasible() {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	placed := mg.Nodes[res.Mapping.Placement[g.OpByName("op2").ID]].Name
	if placed != "c0.fu2" && placed != "c0.fu3" {
		t.Errorf("op2 placed on %s, want fu2 or fu3", placed)
	}
}

// TestExample3MultiFanout reproduces the paper's Example 3: a two-fanout
// value must route to two distinct FUs through distinct clouds, which is
// exactly why routing is formulated per sub-value.
func TestExample3MultiFanout(t *testing.T) {
	b := arch.NewBuilder("mrrgC", 1)
	fu1 := b.FU("fu1", []dfg.Kind{dfg.Input}, 0, 0, 1)
	r1 := b.Wire("r1")
	c1 := b.Wire("c1")
	c2 := b.Wire("c2")
	r2 := b.Wire("r2")
	r3 := b.Wire("r3")
	fu2 := b.FU("fu2", []dfg.Kind{dfg.Output}, 1, 0, 1)
	fu3 := b.FU("fu3", []dfg.Kind{dfg.Output}, 1, 0, 1)
	b.Connect(fu1, r1, 0)
	b.Connect(r1, c1, 0)
	b.Connect(r1, c2, 0)
	b.Connect(c1, r2, 0)
	b.Connect(c2, r3, 0)
	b.Connect(r2, fu2, 0)
	b.Connect(r3, fu3, 0)
	a, err := b.Build()
	mg := mustMRRG(t, a, err)

	g := dfg.New("dfgB")
	v := g.In("op1")
	g.Out("op2", v)
	g.Out("op3", v)
	res := mapIt(t, g, mg, Options{})
	if !res.Feasible() {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	p2 := res.Mapping.Placement[g.OpByName("op2").ID]
	p3 := res.Mapping.Placement[g.OpByName("op3").ID]
	if p2 == p3 {
		t.Error("op2 and op3 share a FuncUnit")
	}
	// Three-fanout cannot work: only two output FUs exist.
	g2 := dfg.New("dfgB3")
	v2 := g2.In("op1")
	g2.Out("op2", v2)
	g2.Out("op3", v2)
	g2.Out("op4", v2)
	if res := mapIt(t, g2, mg, Options{}); res.Feasible() {
		t.Error("three outputs mapped onto two output FUs")
	}
}

// TestOperandCorrectness: a non-commutative operation must receive its
// operands on the right ports (paper constraint 6). The architecture
// wires producer A only to port 0 and producer B only to port 1.
func TestOperandCorrectness(t *testing.T) {
	build := func(ops []dfg.Kind) *mrrg.Graph {
		b := arch.NewBuilder("ports", 1)
		inA := b.FU("inA", []dfg.Kind{dfg.Input}, 0, 0, 1)
		inB := b.FU("inB", []dfg.Kind{dfg.Input}, 0, 0, 1)
		alu := b.FU("alu", ops, 2, 0, 1)
		out := b.FU("out", []dfg.Kind{dfg.Output}, 1, 0, 1)
		b.Connect(inA, alu, 0)
		b.Connect(inB, alu, 1)
		b.Connect(alu, out, 0)
		a, err := b.Build()
		return mustMRRG(t, a, err)
	}
	// shr(a, b): a on port 0, b on port 1.
	right := dfg.New("right")
	a := right.In("a")
	bb := right.In("b")
	right.Out("o", right.Shr("s", a, bb))
	if res := mapIt(t, right, build([]dfg.Kind{dfg.Shr}), Options{}); !res.Feasible() {
		t.Errorf("correct operand order infeasible: %v (%s)", res.Status, res.Reason)
	}
	// shr(b, a): b can only reach port 1, but it is operand 0.
	wrong := dfg.New("wrong")
	a2 := wrong.In("a")
	b2 := wrong.In("b")
	wrong.Out("o", wrong.Shr("s", b2, a2))
	// Inputs are interchangeable FUs here (both support input), so the
	// mapper can swap which physical input block hosts which DFG
	// input; to pin them down, make the producers distinguishable.
	_ = a2
	res := mapIt(t, wrong, build([]dfg.Kind{dfg.Shr}), Options{})
	// Both inputs can be placed on either input FU, so this is still
	// feasible by swapping placements — assert the verifier accepted
	// whatever came back.
	if !res.Feasible() {
		t.Errorf("swappable inputs should still map: %v (%s)", res.Status, res.Reason)
	}
}

// TestOperandCorrectnessPinned: distinguishable producers (a load vs an
// input) force the operand-port check to actually bite.
func TestOperandCorrectnessPinned(t *testing.T) {
	build := func() *mrrg.Graph {
		b := arch.NewBuilder("pinned", 1)
		inA := b.FU("inA", []dfg.Kind{dfg.Input}, 0, 0, 1)
		mem := b.FU("mem", []dfg.Kind{dfg.Load}, 2, 0, 1)
		alu := b.FU("alu", []dfg.Kind{dfg.Shr}, 2, 0, 1)
		out := b.FU("out", []dfg.Kind{dfg.Output}, 1, 0, 1)
		// input -> alu port 0 AND mem address; load result -> alu port 1 only.
		b.Connect(inA, alu, 0)
		b.Connect(inA, mem, 0)
		b.Connect(inA, mem, 1)
		b.Connect(mem, alu, 1)
		b.Connect(alu, out, 0)
		a, err := b.Build()
		return mustMRRG(t, a, err)
	}
	// shr(x, m): x -> port0, m -> port1: feasible.
	ok := dfg.New("ok")
	x := ok.In("x")
	m := ok.Load("m", x)
	ok.Out("o", ok.Shr("s", x, m))
	if res := mapIt(t, ok, build(), Options{}); !res.Feasible() {
		t.Errorf("aligned operands infeasible: %v (%s)", res.Status, res.Reason)
	}
	// shr(m, x): m must reach port 0, but the load only drives port 1.
	bad := dfg.New("bad")
	x2 := bad.In("x")
	m2 := bad.Load("m", x2)
	bad.Out("o", bad.Shr("s", m2, x2))
	if res := mapIt(t, bad, build(), Options{}); res.Feasible() {
		t.Error("misaligned non-commutative operands mapped")
	}
}

func TestPresolvePigeonhole(t *testing.T) {
	// mult_10 has 9 multiplies; hetero 4x4 has 8 multiplier slots in
	// one context.
	g := bench.MustGet("mult_10")
	mg := mustGridMRRG(t, (arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Orthogonal, Contexts: 1}))
	res := mapIt(t, g, mg, Options{})
	if res.Status != ilp.Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
	if res.Reason == "" {
		t.Error("presolve reason missing")
	}
}

func TestUnsupportedOpKind(t *testing.T) {
	g := dfg.New("div")
	x := g.In("x")
	d, _ := g.AddOp("d", dfg.Div, x, x)
	g.Out("o", d.Out)
	mg := lineArch(t, 1, []dfg.Kind{dfg.Mul})
	res := mapIt(t, g, mg, Options{})
	if res.Status != ilp.Infeasible || res.Reason == "" {
		t.Errorf("status=%v reason=%q, want infeasible with reason", res.Status, res.Reason)
	}
}

func TestRegisterLoopAccumulator(t *testing.T) {
	// acc = add(x, acc): a loop-carried dependence must route through
	// the register back-edge of the MRRG.
	g := dfg.New("acc")
	x := g.In("x")
	op, err := g.AddOp("acc", dfg.Add, x, x)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire operand 1 to the op's own output.
	old := op.In[1]
	op.In[1] = op.Out
	old.Uses = old.Uses[:1]
	op.Out.Uses = append(op.Out.Uses, dfg.Use{Op: op, Operand: 1})
	g.Out("o", op.Out)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mg := lineArch(t, 1, []dfg.Kind{dfg.Add})
	res := mapIt(t, g, mg, Options{})
	if !res.Feasible() {
		t.Fatalf("accumulator unmappable: %v (%s)", res.Status, res.Reason)
	}
	// The self-route must use the register (only cycle in the MRRG).
	acc := g.OpByName("acc")
	selfK := -1
	for k, u := range acc.Out.Uses {
		if u.Op == acc {
			selfK = k
		}
	}
	route := res.Mapping.Routes[acc.Out.ID][selfK]
	usesReg := false
	for _, n := range route {
		if mg.Nodes[n].Prim == mg.Arch.PrimIndex("reg") {
			usesReg = true
		}
	}
	if !usesReg {
		t.Error("loop-carried route does not use the register")
	}
}

func TestPruningAblationAgrees(t *testing.T) {
	mg := lineArch(t, 1, []dfg.Kind{dfg.Add, dfg.Mul})
	g := dfg.New("k")
	x := g.In("x")
	g.Out("o", g.Mul("m", x, x))
	with := mapIt(t, g, mg, Options{})
	without := mapIt(t, g, mg, Options{DisablePruning: true, DisablePresolve: true})
	if with.Feasible() != without.Feasible() {
		t.Errorf("pruned=%v unpruned=%v disagree", with.Status, without.Status)
	}
	if with.Vars >= without.Vars {
		t.Errorf("pruning did not shrink the model: %d vs %d vars", with.Vars, without.Vars)
	}
}

func TestMinimizeRoutingTightensCost(t *testing.T) {
	mg := lineArch(t, 1, []dfg.Kind{dfg.Add})
	g := dfg.New("k")
	x := g.In("x")
	g.Out("o", g.Add("a", x, x))
	feas := mapIt(t, g, mg, Options{})
	opt := mapIt(t, g, mg, Options{Objective: MinimizeRouting})
	if !feas.Feasible() || !opt.Feasible() {
		t.Fatalf("feas=%v opt=%v", feas.Status, opt.Status)
	}
	if opt.Status != ilp.Optimal {
		t.Errorf("optimisation status = %v", opt.Status)
	}
	if opt.Mapping.RoutingCost() > feas.Mapping.RoutingCost() {
		t.Errorf("optimised cost %d exceeds feasibility cost %d",
			opt.Mapping.RoutingCost(), feas.Mapping.RoutingCost())
	}
}

func TestTimeoutReportsUnknown(t *testing.T) {
	g := bench.MustGet("weighted_sum")
	mg := mustGridMRRG(t, (arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2}))
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := Map(ctx, g, mg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Unknown && !res.Feasible() && res.Status != ilp.Infeasible {
		t.Errorf("status = %v", res.Status)
	}
}

func TestGridSmallBenchmarks(t *testing.T) {
	// Table 2 row "accum": feasible on every single-context
	// architecture; "2x2-f" likewise.
	homoOrth := mustGridMRRG(t, (arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1}))
	for _, name := range []string{"2x2-f", "accum"} {
		g := bench.MustGet(name)
		res := mapIt(t, g, homoOrth, Options{})
		if !res.Feasible() {
			t.Errorf("%s on homo-orth-c1: %v (%s)", name, res.Status, res.Reason)
		}
	}
}

func TestBuildModelExport(t *testing.T) {
	mg := lineArch(t, 1, []dfg.Kind{dfg.Add})
	g := dfg.New("k")
	x := g.In("x")
	g.Out("o", g.Add("a", x, x))
	m, reason, err := BuildModel(g, mg, Options{})
	if err != nil || reason != "" || m == nil {
		t.Fatalf("BuildModel: %v %q", err, reason)
	}
	if m.NumVars() == 0 || len(m.Constraints) == 0 {
		t.Error("empty model")
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMappingWriteRenders(t *testing.T) {
	mg := lineArch(t, 1, []dfg.Kind{dfg.Add})
	g := dfg.New("k")
	x := g.In("x")
	g.Out("o", g.Add("a", x, x))
	res := mapIt(t, g, mg, Options{})
	if !res.Feasible() {
		t.Fatal(res.Status)
	}
	var sb strings.Builder
	if err := res.Mapping.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Error("empty rendering")
	}
}
