package mapper

import (
	"context"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/bb"
)

// TestPipelinedMultiplier maps through a latency-1 multiplier in a
// 2-context architecture: the operand is consumed in one context and the
// result appears in the next (paper Fig. 2 semantics, end to end).
func TestPipelinedMultiplier(t *testing.T) {
	b := arch.NewBuilder("pipe", 2)
	src := b.FU("src", []dfg.Kind{dfg.Input}, 0, 0, 1)
	mul := b.FU("mul", []dfg.Kind{dfg.Mul}, 2, 1, 1) // latency 1, pipelined
	sink := b.FU("sink", []dfg.Kind{dfg.Output}, 1, 0, 1)
	b.Connect(src, mul, 0)
	b.Connect(src, mul, 1)
	b.Connect(mul, sink, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}

	g := dfg.New("sq")
	x := g.In("x")
	g.Out("o", g.Mul("m", x, x))
	res := mapIt(t, g, mg, Options{})
	if !res.Feasible() {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
	m := res.Mapping
	mulNode := mg.Nodes[m.Placement[g.OpByName("m").ID]]
	outNode := mg.Nodes[mulNode.OutNode]
	if outNode.Context != (mulNode.Context+1)%2 {
		t.Errorf("latency-1 result in context %d, firing in %d", outNode.Context, mulNode.Context)
	}
	// The output op must sit in the context where the result lands.
	outOp := mg.Nodes[m.Placement[g.OpByName("o").ID]]
	if outOp.Context != outNode.Context {
		t.Errorf("sink placed in context %d but result lands in %d", outOp.Context, outNode.Context)
	}
}

// TestNonPipelinedII2 uses an II=2 FU in a 2-context architecture: only
// one execution slot exists, so two multiplies cannot share the unit.
func TestNonPipelinedII2(t *testing.T) {
	build := func() *mrrg.Graph {
		b := arch.NewBuilder("ii2", 2)
		src := b.FU("src", []dfg.Kind{dfg.Input}, 0, 0, 1)
		mul := b.FU("mul", []dfg.Kind{dfg.Mul}, 2, 0, 2) // II 2: fires in context 0 only
		sink := b.FU("sink", []dfg.Kind{dfg.Output}, 1, 0, 1)
		sink2 := b.FU("sink2", []dfg.Kind{dfg.Output}, 1, 0, 1)
		b.Connect(src, mul, 0)
		b.Connect(src, mul, 1)
		b.Connect(mul, sink, 0)
		b.Connect(mul, sink2, 0)
		a, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		mg, err := mrrg.Generate(a)
		if err != nil {
			t.Fatal(err)
		}
		return mg
	}
	mg := build()
	// One multiply: fine.
	g1 := dfg.New("one")
	x := g1.In("x")
	g1.Out("o", g1.Mul("m", x, x))
	if res := mapIt(t, g1, mg, Options{}); !res.Feasible() {
		t.Errorf("single multiply on II=2 unit: %v (%s)", res.Status, res.Reason)
	}
	// Two multiplies need two slots; the II=2 unit provides only one
	// across both contexts.
	g2 := dfg.New("two")
	y := g2.In("y")
	m1 := g2.Mul("m1", y, y)
	m2 := g2.Mul("m2", m1, y)
	g2.Out("o", m2)
	if res := mapIt(t, g2, mg, Options{}); res.Feasible() {
		t.Error("two multiplies mapped onto a single II=2 execution slot")
	}
}

// TestWeightedRoutingObjective exercises the paper's "alternative
// objective functions" remark (§4.2): expensive long wires get cost 3,
// and the optimising mapper avoids them when a cheap path exists. The
// branch-and-bound engine handles the non-unit coefficients.
func TestWeightedRoutingObjective(t *testing.T) {
	b := arch.NewBuilder("weighted", 1)
	src := b.FU("src", []dfg.Kind{dfg.Input}, 0, 0, 1)
	cheap := b.Wire("cheap")
	exp1 := b.Wire("exp1")
	exp2 := b.Wire("exp2")
	mux := b.Mux("mux", 2)
	sink := b.FU("sink", []dfg.Kind{dfg.Output}, 1, 0, 1)
	b.Connect(src, cheap, 0)
	b.Connect(src, exp1, 0)
	b.Connect(exp1, exp2, 0)
	b.Connect(cheap, mux, 0)
	b.Connect(exp2, mux, 1)
	b.Connect(mux, sink, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a.PrimByName("exp1").Cost = 3
	a.PrimByName("exp2").Cost = 3
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	g := dfg.New("w")
	x := g.In("x")
	g.Out("o", x)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Map(ctx, g, mg, Options{Objective: MinimizeRouting, Solver: bb.New()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Optimal {
		t.Fatalf("status %v", res.Status)
	}
	route := res.Mapping.Routes[g.OpByName("x").Out.ID][0]
	for _, n := range route {
		if mg.Nodes[n].Cost > 1 {
			t.Errorf("optimal route uses expensive node %s", mg.Nodes[n].Name)
		}
	}
}

// TestLoopPreventionExample2 recreates the paper's Example 2 hazard: a
// cloud of routing resources that loops back through a multiplexer. The
// Multiplexer Input Exclusivity constraint must forbid the route from
// "terminating" inside the loop, forcing it through to the real sink.
func TestLoopPreventionExample2(t *testing.T) {
	b := arch.NewBuilder("loopy", 1)
	fu1 := b.FU("fu1", []dfg.Kind{dfg.Input}, 0, 0, 1)
	// r2 fans out into cloud c1 (which loops back into r2's driver
	// mux) and to the onward path r4/r5 toward fu2.
	muxIn := b.Mux("mux_in", 2) // selects fu1 or the loop-back
	c1a := b.Wire("c1a")
	c1b := b.Wire("c1b")
	r4 := b.Wire("r4")
	r5 := b.Wire("r5")
	fu2 := b.FU("fu2", []dfg.Kind{dfg.Output}, 1, 0, 1)
	b.Connect(fu1, muxIn, 0)
	b.Connect(c1b, muxIn, 1) // the loop back
	b.Connect(muxIn, c1a, 0)
	b.Connect(c1a, c1b, 0)
	b.Connect(muxIn, r4, 0)
	b.Connect(r4, r5, 0)
	b.Connect(r5, fu2, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	g := dfg.New("loop")
	v := g.In("op1")
	g.Out("op2", v)
	res := mapIt(t, g, mg, Options{})
	if !res.Feasible() {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
	// The verified route must reach fu2's port; the verifier enforces
	// real connectivity, so feasibility plus verification is the
	// assertion. Check the route explicitly ends at the sink port.
	route := res.Mapping.Routes[g.OpByName("op1").Out.ID][0]
	foundPort := false
	for _, n := range route {
		if mg.Nodes[n].OperandPort >= 0 {
			foundPort = true
		}
	}
	if !foundPort {
		t.Error("route terminates without reaching a functional-unit port")
	}
}
