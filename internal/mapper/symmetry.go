package mapper

import (
	"fmt"
	"strconv"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
)

// SymmetryMode selects whether symmetry-breaking constraints are added
// to the formulation.
type SymmetryMode int

const (
	// SymmetryAuto (the zero value) enables symmetry breaking where it
	// pays: MapAuto sweeps — which spend most of their time *proving*
	// rungs infeasible, exactly where pruning symmetric subtrees wins —
	// turn it on; direct Map/BuildModel calls leave it off. Callers
	// that know better say so explicitly.
	SymmetryAuto SymmetryMode = iota
	// SymmetryOn always emits the constraints.
	SymmetryOn
	// SymmetryOff never does.
	SymmetryOff
)

// String returns "auto", "on" or "off".
func (m SymmetryMode) String() string {
	switch m {
	case SymmetryOn:
		return "on"
	case SymmetryOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseSymmetryMode resolves a -symmetry flag value.
func ParseSymmetryMode(s string) (SymmetryMode, error) {
	switch s {
	case "", "auto":
		return SymmetryAuto, nil
	case "on", "true", "1":
		return SymmetryOn, nil
	case "off", "false", "0":
		return SymmetryOff, nil
	}
	return SymmetryAuto, fmt.Errorf("mapper: unknown symmetry mode %q (want auto, on or off)", s)
}

// maxLexPositions caps each lexicographic chain. Lex-leader constraints
// prune from the front of the chain — the first few positions decide
// almost all of the ordering — while every position costs aux variables
// and clauses on instances that may never branch there. Truncating a
// lex prefix is sound (the full constraint implies every prefix), so
// the cap trades a sliver of pruning for bounded overhead.
const maxLexPositions = 64

// findValueSwaps detects interchangeable operand producers: two
// distinct leaf operations of the same kind whose single uses feed the
// two operands of one commutative operation. Swapping their placements
// (and, implicitly, their routes) maps any valid mapping to another —
// the classic value symmetry of a*b = b*a with independent inputs. The
// anchor operation is excluded: its placement is already pinned to
// orbit representatives by the fabric-symmetry constraints, and keeping
// the two families on disjoint operations makes their joint soundness
// immediate. Each operation joins at most one pair (single use), so
// the pairs are disjoint by construction.
func findValueSwaps(g *dfg.Graph, anchor int) [][2]int {
	var pairs [][2]int
	for _, op := range g.Ops() {
		if !op.Kind.Commutative() || len(op.In) != 2 || op.In[0] == op.In[1] {
			continue
		}
		d0, d1 := op.In[0].Def, op.In[1].Def
		if d0 == nil || d1 == nil || len(d0.In) != 0 || len(d1.In) != 0 || d0.Kind != d1.Kind {
			continue
		}
		if len(d0.Out.Uses) != 1 || len(d1.Out.Uses) != 1 {
			continue
		}
		if d0.ID == anchor || d1.ID == anchor {
			continue
		}
		a, b := d0.ID, d1.ID
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, [2]int{a, b})
	}
	return pairs
}

// initSymmetry performs the II-independent symmetry analysis for a
// template: fabric automorphism discovery plus DFG value-swap
// detection. Called from NewTemplate only when the resolved mode is on.
func (t *Template) initSymmetry(a *arch.Arch) {
	t.symmetry = true
	if t.g.NumOps() == 0 {
		return
	}
	t.anchorOp = t.g.Ops()[0].ID
	t.syms = arch.Discover(a)
	t.valueSwaps = findValueSwaps(t.g, t.anchorOp)
	t.approxBytes += int64(len(t.syms.Gens)) * int64(len(a.Prims)) * 16
}

// liftGenFU lifts one fabric generator to the functional-unit nodes of
// the stamped MRRG: lift[p] is the image FuncUnit node of p, or -1.
// The lift acts context-uniformly (automorphisms preserve FU IIs, so
// image units fire in the same contexts). It fails — and with it this
// stamp's entire fabric-symmetry emission — if any placement variable's
// image slot is missing, which would mean the generator is not closed
// on the placement support. Legality and reachability are symmetric
// under a verified automorphism, so failure indicates a bug upstream;
// the check turns that bug into "no symmetry breaking" instead of an
// unsound model.
func (s *stamper) liftGenFU(gen *arch.Automorphism) ([]int, bool) {
	mg := s.mg
	lift := make([]int, len(mg.Nodes))
	for i := range lift {
		lift[i] = -1
	}
	for _, p := range mg.FuncUnits() {
		n := mg.Nodes[p]
		img := mg.NodeByName("c" + strconv.Itoa(n.Context) + "." + mg.Arch.Prims[gen.Perm[n.Prim]].Name)
		if img == nil {
			return nil, false
		}
		lift[p] = img.ID
	}
	// Closure of every operation's placement support under the lift.
	for _, op := range s.t.g.Ops() {
		for _, p := range s.legal[op.ID] {
			if _, ok := s.f.fvar[op.ID][lift[p]]; !ok {
				return nil, false
			}
		}
	}
	return lift, true
}

// addSymmetryConstraints emits the symmetry-breaking constraint groups
// after the paper's constraints (1)-(9):
//
//   - "sym-orbit": the anchor operation (the DFG's first) may only be
//     placed on the canonical representative of each fabric orbit. For
//     any mapping some group element moves the anchor onto its orbit's
//     representative, so at least one member of every solution orbit
//     survives.
//   - "sym-lex": for each verified generator π, the placement vector
//     must be lexicographically <= its image under π. Sound for any
//     subset of group elements — the orbit's lex-minimal solution
//     satisfies them all — and that same witness places the anchor on
//     the orbit representative (slots ascend by node ID and 0 < 1, so
//     the lex-minimal anchor block pushes its single 1 to the
//     highest-index slot, which is how arch.Symmetries defines the
//     representative). The two groups therefore compose soundly.
//   - "sym-swap": interchangeable commutative operand producers are
//     ordered by the same lexicographic device.
//
// Everything here is emitted in deterministic order and participates in
// the template/stamp byte-equivalence guarantee; the constraints only
// remove symmetric duplicates, never all members of a solution orbit,
// so feasibility status and minimal II are unchanged.
func (s *stamper) addSymmetryConstraints() {
	t := s.t
	if t.syms != nil && !t.syms.Trivial() {
		lifts := make([][]int, len(t.syms.Gens))
		ok := true
		for gi := range t.syms.Gens {
			lift, good := s.liftGenFU(&t.syms.Gens[gi])
			if !good {
				ok = false
				break
			}
			lifts[gi] = lift
		}
		// All or nothing: orbit fixing is justified by the *full*
		// generated group, so dropping one failed generator while
		// keeping orbit constraints derived from it would be unsound.
		if ok {
			s.addOrbitFixing()
			for gi := range t.syms.Gens {
				s.addLexChain("sym-lex", t.syms.Gens[gi].Name, s.lexPositions(lifts[gi]))
			}
		}
	}
	for _, pair := range t.valueSwaps {
		s.addValueSwap(pair[0], pair[1])
	}
}

// addOrbitFixing forbids the anchor operation on non-representative
// orbit members (one constraint summing the excluded slots to zero).
func (s *stamper) addOrbitFixing() {
	t, f, mg := s.t, s.f, s.mg
	syms := t.syms
	s.terms = s.terms[:0]
	for _, p := range s.legal[t.anchorOp] {
		prim := mg.Nodes[p].Prim
		rep := syms.OrbitRep(prim)
		if rep == prim {
			continue
		}
		// Defensive: only exclude a slot when the representative slot
		// in the same context is actually available to the anchor
		// (guaranteed by generator closure, checked cheaply anyway).
		repNode := mg.NodeByName("c" + strconv.Itoa(mg.Nodes[p].Context) + "." + mg.Arch.Prims[rep].Name)
		if repNode == nil {
			continue
		}
		if _, ok := f.fvar[t.anchorOp][repNode.ID]; !ok {
			continue
		}
		s.terms = append(s.terms, ilp.Term{Var: f.fvar[t.anchorOp][p], Coef: 1})
	}
	if len(s.terms) > 0 {
		f.model.AddLE("sym-orbit", s.terms, 0)
	}
}

// lexPosition is one slot of the canonical placement vector paired with
// its image under a generator.
type lexPosition struct {
	x, y ilp.Var
	// op/node identify the slot for stable aux-variable naming.
	op   string
	node string
}

// lexPositions builds the canonical placement vector for one lifted
// generator: operations in creation order (the anchor leads, matching
// the orbit-fixing argument), slots ascending by node ID within each
// operation. Fixed points contribute equal positions and are skipped —
// removing always-equal positions preserves the lexicographic relation
// exactly. The list is truncated to maxLexPositions.
func (s *stamper) lexPositions(lift []int) []lexPosition {
	f, mg := s.f, s.mg
	var pos []lexPosition
	for _, op := range s.t.g.Ops() {
		for _, p := range s.legal[op.ID] {
			img := lift[p]
			if img == p {
				continue
			}
			pos = append(pos, lexPosition{
				x:    f.fvar[op.ID][p],
				y:    f.fvar[op.ID][img],
				op:   op.Name,
				node: mg.Nodes[p].Name,
			})
			if len(pos) == maxLexPositions {
				return pos
			}
		}
	}
	return pos
}

// addValueSwap emits the lexicographic ordering between the placement
// blocks of two interchangeable operations. The blocks must be
// identical slot-for-slot (same kind implies the same legality mask,
// and the swap symmetry makes reachability refinement agree); if they
// ever diverge the pair is skipped rather than mis-aligned.
func (s *stamper) addValueSwap(a, b int) {
	f, mg := s.f, s.mg
	la, lb := s.legal[a], s.legal[b]
	if len(la) != len(lb) {
		return
	}
	for i := range la {
		if la[i] != lb[i] {
			return
		}
	}
	opA := s.t.g.Ops()[a]
	opB := s.t.g.Ops()[b]
	var pos []lexPosition
	for _, p := range la {
		pos = append(pos, lexPosition{
			x:    f.fvar[a][p],
			y:    f.fvar[b][p],
			op:   opA.Name + "+" + opB.Name,
			node: mg.Nodes[p].Name,
		})
		if len(pos) == maxLexPositions {
			break
		}
	}
	s.addLexChain("sym-swap", "swap", pos)
}

// addLexChain encodes x <=lex y over the given positions in the
// solver's native clause vocabulary: unit-coefficient >= constraints
// that the CDCL engine lowers to watched clauses. Auxiliary
// prefix-equality variables e_i ("positions 0..i agree") chain the
// positions:
//
//	x_0 <= y_0
//	e_i  <-> e_{i-1} and x_i == y_i     (e_{-1} = true)
//	e_{i-1} -> x_{i+1} <= y_{i+1}
//
// Aux variables are named by (group, generator, slot), so identical
// slots across the II ladder produce identical ilp.VarKeys and an
// incremental session unifies them like any formulation variable.
func (s *stamper) addLexChain(group, gen string, pos []lexPosition) {
	if len(pos) == 0 {
		return
	}
	f := s.f
	clause := func(terms ...ilp.Term) {
		rhs := 1
		for _, t := range terms {
			if t.Coef < 0 {
				rhs-- // negated literal: (1 - v) contributes the constant
			}
		}
		f.model.AddGE(group, terms, rhs)
	}
	// x_0 <= y_0.
	f.model.AddLE(group, []ilp.Term{{Var: pos[0].x, Coef: 1}, {Var: pos[0].y, Coef: -1}}, 0)
	var prev ilp.Var
	for i := 0; i+1 < len(pos); i++ {
		x, y := pos[i].x, pos[i].y
		e := f.model.BinaryComposite("SE", gen+"/"+pos[i].op, pos[i].node, -1)
		if i == 0 {
			// e_0 <-> (x_0 == y_0).
			clause(ilp.Term{Var: e, Coef: -1}, ilp.Term{Var: x, Coef: -1}, ilp.Term{Var: y, Coef: 1})
			clause(ilp.Term{Var: e, Coef: -1}, ilp.Term{Var: x, Coef: 1}, ilp.Term{Var: y, Coef: -1})
			clause(ilp.Term{Var: x, Coef: -1}, ilp.Term{Var: y, Coef: -1}, ilp.Term{Var: e, Coef: 1})
			clause(ilp.Term{Var: x, Coef: 1}, ilp.Term{Var: y, Coef: 1}, ilp.Term{Var: e, Coef: 1})
		} else {
			// e_i -> e_{i-1}; e_i <-> e_{i-1} and (x_i == y_i).
			clause(ilp.Term{Var: e, Coef: -1}, ilp.Term{Var: prev, Coef: 1})
			clause(ilp.Term{Var: e, Coef: -1}, ilp.Term{Var: x, Coef: -1}, ilp.Term{Var: y, Coef: 1})
			clause(ilp.Term{Var: e, Coef: -1}, ilp.Term{Var: x, Coef: 1}, ilp.Term{Var: y, Coef: -1})
			clause(ilp.Term{Var: prev, Coef: -1}, ilp.Term{Var: x, Coef: -1}, ilp.Term{Var: y, Coef: -1}, ilp.Term{Var: e, Coef: 1})
			clause(ilp.Term{Var: prev, Coef: -1}, ilp.Term{Var: x, Coef: 1}, ilp.Term{Var: y, Coef: 1}, ilp.Term{Var: e, Coef: 1})
		}
		// e_i -> x_{i+1} <= y_{i+1}.
		clause(ilp.Term{Var: e, Coef: -1}, ilp.Term{Var: pos[i+1].x, Coef: -1}, ilp.Term{Var: pos[i+1].y, Coef: 1})
		prev = e
	}
}
