package mapper

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/budget"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
)

func grid2x2(t *testing.T) *arch.Arch {
	t.Helper()
	a, err := arch.Grid(arch.GridSpec{Rows: 2, Cols: 2, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// tinyDFG is small enough that its MII on a 2x2 grid is 1, so the
// stub-driven sweeps below deterministically start at II=1.
func tinyDFG(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New("tiny")
	x := g.In("x")
	op, err := g.AddOp("s", dfg.Add, x, x)
	if err != nil {
		t.Fatal(err)
	}
	g.Out("o", op.Out)
	return g
}

func status(s ilp.Status) *Result { return &Result{Status: s} }

// TestMapAutoSpeculativeMinimalII: even when a higher II finishes first,
// the sweep must wait for — and return — the lower feasible II.
func TestMapAutoSpeculativeMinimalII(t *testing.T) {
	gate := make(chan struct{}) // closed once II=2 has answered
	var once sync.Once
	stub := func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error) {
		switch mg.Contexts {
		case 2:
			once.Do(func() { close(gate) })
			return status(ilp.Feasible), nil
		default: // II=1 resolves feasible only after II=2 already has
			<-gate
			return status(ilp.Feasible), nil
		}
	}
	res, err := MapAuto(context.Background(), tinyDFG(t), grid2x2(t), 2,
		Options{Workers: 2, Budget: budget.New(4), MapWith: stub})
	if err != nil {
		t.Fatal(err)
	}
	if res.II != 1 || !res.Feasible() {
		t.Errorf("II=%d status=%v, want the minimal II=1 despite II=2 finishing first", res.II, res.Status)
	}
	if len(res.Tried) != 1 || res.Tried[0] != ilp.Feasible {
		t.Errorf("Tried = %v, want the sequential sweep's [feasible]", res.Tried)
	}
}

// TestMapAutoSpeculativeSkipsInfeasible: an infeasible lower II lets the
// already-finished higher II win, with sequential-identical Tried.
func TestMapAutoSpeculativeSkipsInfeasible(t *testing.T) {
	stub := func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error) {
		if mg.Contexts == 1 {
			return status(ilp.Infeasible), nil
		}
		return status(ilp.Feasible), nil
	}
	res, err := MapAuto(context.Background(), tinyDFG(t), grid2x2(t), 3,
		Options{Workers: 2, Budget: budget.New(4), MapWith: stub})
	if err != nil {
		t.Fatal(err)
	}
	if res.II != 2 || !res.Feasible() {
		t.Errorf("II=%d status=%v, want feasible at II=2", res.II, res.Status)
	}
	if len(res.Tried) != 2 || res.Tried[0] != ilp.Infeasible || res.Tried[1] != ilp.Feasible {
		t.Errorf("Tried = %v, want [infeasible feasible]", res.Tried)
	}
}

// TestMapAutoSpeculativeCancelsLosers: once the lowest II proves
// feasible, every speculative attempt at a higher II must be cancelled
// rather than left running.
func TestMapAutoSpeculativeCancelsLosers(t *testing.T) {
	var cancelled atomic.Int32
	stub := func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error) {
		if mg.Contexts == 1 {
			return status(ilp.Feasible), nil
		}
		<-ctx.Done() // higher IIs block until somebody cancels them
		cancelled.Add(1)
		return status(ilp.Unknown), nil
	}
	res, err := MapAuto(context.Background(), tinyDFG(t), grid2x2(t), 4,
		Options{Workers: 3, Budget: budget.New(4), MapWith: stub})
	if err != nil {
		t.Fatal(err)
	}
	if res.II != 1 || !res.Feasible() {
		t.Fatalf("II=%d status=%v, want feasible at II=1", res.II, res.Status)
	}
	if got := cancelled.Load(); got != 2 {
		t.Errorf("%d speculative losers saw cancellation, want 2 (IIs 2 and 3 in flight)", got)
	}
}

// TestMapAutoSequentialCancelledStatus: a context cancelled mid-sweep
// must yield Unknown — an interrupted search proves nothing — never the
// old Infeasible verdict.
func TestMapAutoSequentialCancelledStatus(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stub := func(context.Context, *dfg.Graph, *mrrg.Graph, Options) (*Result, error) {
		cancel() // the deadline fires while the first attempt runs
		return status(ilp.Unknown), nil
	}
	res, err := MapAuto(ctx, tinyDFG(t), grid2x2(t), 3, Options{MapWith: stub})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Unknown {
		t.Errorf("status = %v, want unknown after cancellation", res.Status)
	}
	if res.Reason == "" {
		t.Error("cancelled sweep should explain itself in Reason")
	}
	if len(res.Tried) != 1 {
		t.Errorf("Tried = %v, want only the interrupted attempt", res.Tried)
	}
}

func TestMapAutoSpeculativeCancelledStatus(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stub := func(context.Context, *dfg.Graph, *mrrg.Graph, Options) (*Result, error) {
		cancel()
		return status(ilp.Unknown), nil
	}
	res, err := MapAuto(ctx, tinyDFG(t), grid2x2(t), 4,
		Options{Workers: 2, Budget: budget.New(4), MapWith: stub})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Unknown {
		t.Errorf("status = %v, want unknown after cancellation (never infeasible)", res.Status)
	}
}

// TestMapAutoSpeculativeBudgetStarved: with no budget tokens the sweep
// degrades to one attempt at a time but still finds the minimal II.
func TestMapAutoSpeculativeBudgetStarved(t *testing.T) {
	var inFlight, peak atomic.Int32
	stub := func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		if mg.Contexts < 3 {
			return status(ilp.Infeasible), nil
		}
		return status(ilp.Feasible), nil
	}
	res, err := MapAuto(context.Background(), tinyDFG(t), grid2x2(t), 4,
		Options{Workers: 4, Budget: budget.New(0), MapWith: stub})
	if err != nil {
		t.Fatal(err)
	}
	if res.II != 3 || !res.Feasible() {
		t.Errorf("II=%d status=%v, want feasible at II=3", res.II, res.Status)
	}
	if peak.Load() != 1 {
		t.Errorf("peak concurrency %d with an empty budget, want 1", peak.Load())
	}
}

// TestMapAutoSpeculativeEndToEnd runs the real pipeline (no stubs):
// formulation, parallel gang, decode, verify.
func TestMapAutoSpeculativeEndToEnd(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelT := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelT()
	res, err := MapAuto(ctx, bench.MustGet("2x2-f"), a, 2,
		Options{Workers: 2, Seed: 11, Budget: budget.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() || res.II != 1 {
		t.Fatalf("2x2-f speculative: II=%d status=%v (%s), want feasible at II=1", res.II, res.Status, res.Reason)
	}
	if res.Mapping == nil {
		t.Fatal("feasible result without a mapping")
	}
	if err := res.Mapping.Verify(); err != nil {
		t.Error(err)
	}
}
