package mapper

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
	"cgramap/internal/sched"
)

// The formulation pipeline is split in two phases:
//
//   - Template (per DFG + architecture): everything independent of the
//     initiation interval — DFG validation, per-operation legal
//     primitive sets, the counting-presolve data, and the
//     modulo-scheduling lower bound MII. Built once, reused across the
//     whole auto-II ladder (and, through an ArtifactCache, across
//     requests).
//   - Stamp (per II): emits the ilp.Model for one context count from
//     the template, working out of pooled scratch buffers so the hot
//     path of an II sweep allocates only the model it produces.
//
// There is exactly one code path: a "scratch" formulation is a freshly
// built template stamped once, so a stamped model is byte-identical to
// a scratch one by construction (the CI equivalence job pins this).

// formulation is the ILP model of one mapping instance, plus the
// variable maps needed to decode a solution.
type formulation struct {
	g  *dfg.Graph
	mg *mrrg.Graph

	model *ilp.Model

	// fvar[opID][fuNode] is the placement variable F_{p,q}.
	fvar []map[int]ilp.Var
	// r2[valID][routeNode] is the value-level routing variable R_{i,j}.
	r2 []map[int]ilp.Var
	// r3[valID][sinkIdx][routeNode] is the sink-level routing variable
	// R_{i,j,k}. Its key set is the sub-value's allowed node set.
	r3 [][]map[int]ilp.Var

	// infeasible holds a human-readable reason when the instance was
	// proven infeasible during construction (presolve / pruning).
	infeasible string
}

// kindSlots is the counting-presolve data for one operation kind.
type kindSlots struct {
	kind dfg.Kind
	// ops is the number of operations of this kind in the DFG.
	ops int
	// iis lists the initiation intervals of the FU primitives that
	// support the kind: at context count N each such primitive
	// contributes N/ii execution slots.
	iis []int
}

// Template is the II-independent half of the ILP formulation for one
// (DFG, architecture) pair. It is immutable after construction and safe
// for concurrent stamping: speculative II lanes and portfolio retries
// may call Stamp simultaneously, each drawing its own scratch from the
// pool.
type Template struct {
	g *dfg.Graph

	objective       ObjectiveMode
	disablePruning  bool
	disablePresolve bool

	// infeasible records an II-independent infeasibility: an operation
	// kind no functional unit supports. Every stamp at any II returns
	// it unchanged.
	infeasible string

	// legalPrim[opID][prim] reports whether the architecture primitive
	// may host the operation (constraint 3 data, lifted from MRRG nodes
	// to primitives — every context replica of a primitive has the same
	// operation set). Rows are shared between operations of one kind.
	legalPrim [][]bool

	// kinds carries the counting-presolve data, sorted by kind so
	// infeasibility messages are deterministic.
	kinds []kindSlots
	// fuIIs lists the initiation intervals of all FU primitives: at
	// context count N the device has Σ N/ii functional-unit slots.
	fuIIs []int

	// mii is the modulo-scheduling lower bound max(ResMII, RecMII)
	// computed once on a single-context device model; 0 when the bound
	// is unavailable (exotic architectures).
	mii int

	// symmetry enables symmetry-breaking constraint emission; syms,
	// anchorOp and valueSwaps carry the II-independent analysis
	// (symmetry.go). syms may be nil or trivial when the fabric has no
	// verified automorphisms — value swaps are emitted regardless.
	symmetry   bool
	syms       *arch.Symmetries
	anchorOp   int
	valueSwaps [][2]int

	// approxBytes estimates the retained size for artifact-cache
	// capacity accounting.
	approxBytes int64

	// hintVars/hintCons/hintTerms remember the largest model any stamp
	// of this template has produced, so repeat stamps (the warm half of
	// an II ladder) pre-size the model's backing arrays instead of
	// growing them append by append. Capacity only — reservation never
	// changes the emitted model.
	hintVars, hintCons, hintTerms atomic.Int64

	scratch sync.Pool // *stamper
}

// NewTemplate performs the II-independent analysis for mapping g onto
// the architecture. The architecture's Contexts field is irrelevant:
// one template serves every II. When opts.Artifacts is set, the
// single-context device model needed for the MII bound comes from the
// cache.
func NewTemplate(g *dfg.Graph, a *arch.Arch, opts Options) (*Template, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("mapper: invalid DFG: %w", err)
	}
	t := &Template{
		g:               g,
		objective:       opts.Objective,
		disablePruning:  opts.DisablePruning,
		disablePresolve: opts.DisablePresolve,
	}

	// Per-kind legal primitive sets and presolve data.
	kindMask := make(map[dfg.Kind][]bool)
	kindIIs := make(map[dfg.Kind][]int)
	opsOf := make(map[dfg.Kind]int)
	for _, p := range a.Prims {
		if len(p.Ops) == 0 {
			continue // routing primitive
		}
		t.fuIIs = append(t.fuIIs, p.II)
	}
	t.legalPrim = make([][]bool, g.NumOps())
	for _, op := range g.Ops() {
		opsOf[op.Kind]++
		mask, ok := kindMask[op.Kind]
		if !ok {
			mask = make([]bool, len(a.Prims))
			any := false
			for i, p := range a.Prims {
				if p.SupportsOp(op.Kind) {
					mask[i] = true
					kindIIs[op.Kind] = append(kindIIs[op.Kind], p.II)
					any = true
				}
			}
			if !any {
				mask = nil
			}
			kindMask[op.Kind] = mask
		}
		if mask == nil && t.infeasible == "" {
			t.infeasible = fmt.Sprintf("no functional unit supports operation %s (%s)", op.Name, op.Kind)
		}
		t.legalPrim[op.ID] = mask
	}
	if t.infeasible != "" {
		return t, nil
	}
	for k, n := range opsOf {
		t.kinds = append(t.kinds, kindSlots{kind: k, ops: n, iis: kindIIs[k]})
	}
	sort.Slice(t.kinds, func(i, j int) bool { return t.kinds[i].kind < t.kinds[j].kind })

	// Retained-size estimate for artifact-cache accounting: one shared
	// legality row per distinct kind, a row header per operation, and
	// the presolve tables.
	t.approxBytes = int64(len(kindMask))*int64(len(a.Prims)) +
		int64(g.NumOps())*24 + int64(len(t.fuIIs))*8 + int64(len(t.kinds))*40 + 256

	if opts.Symmetry == SymmetryOn {
		t.initSymmetry(a)
	}
	if !opts.DisablePresolve {
		t.computeMII(a, opts)
	}
	return t, nil
}

// computeMII evaluates the modulo-scheduling lower bound once, on a
// single-context device model (cached when an ArtifactCache is
// available).
func (t *Template) computeMII(a *arch.Arch, opts Options) {
	single := *a
	single.Contexts = 1
	var mg1 *mrrg.Graph
	var err error
	if opts.Artifacts != nil {
		mg1, err = opts.Artifacts.MRRG(&single)
	} else {
		mg1, err = mrrg.Generate(&single)
	}
	if err != nil {
		return // exotic architecture (e.g. II>1 units); skip the bound
	}
	if mii, err := sched.MII(t.g, mg1); err == nil {
		t.mii = mii
	}
}

// BuildModel stamps the ILP model for one context count. It returns the
// model (nil when the stamp already proved infeasibility, together with
// the reason).
func (t *Template) BuildModel(mg *mrrg.Graph) (*ilp.Model, string, error) {
	f, err := t.stamp(mg)
	if err != nil {
		return nil, "", err
	}
	if f.infeasible != "" {
		return nil, f.infeasible, nil
	}
	return f.model, "", nil
}

// stamper holds the per-stamp state and the reusable scratch buffers.
// One stamper serves one Stamp call at a time; the template's pool
// recycles them across calls (and across concurrent lanes).
type stamper struct {
	t  *Template
	mg *mrrg.Graph
	f  *formulation

	// legal[opID] lists the FuncUnit node IDs the operation may be
	// placed on, carved from legalArena (constraint 3 by variable
	// omission: illegal F variables are never created).
	legal [][]int

	// terms is the constraint-builder scratch buffer: ilp.Model.Add
	// copies its input, so one buffer serves every constraint without
	// per-constraint slice allocations.
	terms []ilp.Term
	// keys is the scratch buffer for iterating the routing-variable
	// maps in sorted node order. Map iteration order must never reach
	// the model: variable numbering and constraint order would then
	// vary run to run, and with them the solver's entire search path —
	// seeded runs have to be reproducible across processes.
	keys []int

	queue      []int
	fwd, bwd   []bool
	legalArena []int
	// boolArena backs the per-sub-value allowed route sets; boolUsed
	// tracks the high-water mark that must be re-zeroed before reuse.
	boolArena []bool
	boolUsed  int
}

// stamp emits the formulation for one context count. On success, either
// f.infeasible is non-empty or f.model is ready to solve.
func (t *Template) stamp(mg *mrrg.Graph) (*formulation, error) {
	f := &formulation{g: t.g, mg: mg}
	if t.infeasible != "" {
		f.infeasible = t.infeasible
		return f, nil
	}
	s, _ := t.scratch.Get().(*stamper)
	if s == nil {
		s = &stamper{}
	}
	s.t, s.mg, s.f = t, mg, f
	err := s.run()
	// Release the scratch for the next stamp; the formulation keeps
	// only the model and the decode maps, never arena-backed slices.
	s.t, s.mg, s.f = nil, nil, nil
	t.scratch.Put(s)
	return f, err
}

func (s *stamper) run() error {
	t, f := s.t, s.f
	f.model = ilp.NewModel(fmt.Sprintf("map-%s-onto-%s", t.g.Name, s.mg.Arch.Name))

	s.computeLegal()
	if !t.disablePresolve {
		if s.pigeonhole(); f.infeasible != "" {
			return nil
		}
		if t.mii > s.mg.Contexts {
			f.infeasible = fmt.Sprintf("minimum initiation interval %d exceeds the %d available contexts", t.mii, s.mg.Contexts)
			return nil
		}
	}

	allowed := s.computeAllowed()
	if f.infeasible != "" {
		return nil
	}
	if !t.disablePruning {
		if s.refineLegal(allowed); f.infeasible != "" {
			return nil
		}
	}

	if n := t.hintVars.Load(); n > 0 {
		f.model.Reserve(int(n), int(t.hintCons.Load()), int(t.hintTerms.Load()))
	}
	s.createVars(allowed)
	s.addPlacementConstraints()
	s.addRoutingConstraints()
	if t.symmetry {
		s.addSymmetryConstraints()
	}
	if t.objective == MinimizeRouting {
		for j := range f.r2 {
			s.keys = sortedKeys(s.keys, f.r2[j])
			for _, i := range s.keys {
				f.model.Objective = append(f.model.Objective,
					ilp.Term{Var: f.r2[j][i], Coef: s.mg.Nodes[i].Cost})
			}
		}
	}
	if err := f.model.Validate(); err != nil {
		return err
	}
	terms := 0
	for i := range f.model.Constraints {
		terms += len(f.model.Constraints[i].Terms)
	}
	storeMax(&t.hintVars, int64(f.model.NumVars()))
	storeMax(&t.hintCons, int64(len(f.model.Constraints)))
	storeMax(&t.hintTerms, int64(terms))
	return nil
}

// storeMax raises a to v unless a concurrent stamp already recorded a
// larger model.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// sortedKeys returns m's keys ascending, reusing buf.
func sortedKeys(buf []int, m map[int]ilp.Var) []int {
	buf = buf[:0]
	for i := range m {
		buf = append(buf, i)
	}
	sort.Ints(buf)
	return buf
}

// boolSlice carves a zeroed n-bool slice from the arena.
func (s *stamper) boolSlice(n int) []bool {
	if len(s.boolArena)-s.boolUsed < n {
		grown := make([]bool, 2*len(s.boolArena)+n)
		s.boolArena = grown // old segments stay alive with their owners
		s.boolUsed = 0
	}
	out := s.boolArena[s.boolUsed : s.boolUsed+n : s.boolUsed+n]
	s.boolUsed += n
	clear(out)
	return out
}

// computeLegal expands the template's per-primitive legality into
// legal[q]: every FuncUnit node supporting the operation, in MRRG node
// order (identical to testing every node, because all context replicas
// of one primitive share an operation set). An operation kind with no
// supporting primitive was already caught at template construction, so
// every list here is non-empty.
func (s *stamper) computeLegal() {
	t, mg := s.t, s.mg
	fus := mg.FuncUnits()
	total := 0
	for _, op := range t.g.Ops() {
		mask := t.legalPrim[op.ID]
		for _, p := range fus {
			if mask[mg.Nodes[p].Prim] {
				total++
			}
		}
	}
	if cap(s.legalArena) < total {
		s.legalArena = make([]int, 0, total)
	}
	arena := s.legalArena[:0]
	if cap(s.legal) < t.g.NumOps() {
		s.legal = make([][]int, t.g.NumOps())
	}
	s.legal = s.legal[:t.g.NumOps()]
	for _, op := range t.g.Ops() {
		mask := t.legalPrim[op.ID]
		start := len(arena)
		for _, p := range fus {
			if mask[mg.Nodes[p].Prim] {
				arena = append(arena, p)
			}
		}
		s.legal[op.ID] = arena[start:len(arena):len(arena)]
	}
	s.legalArena = arena[:0]
}

// pigeonhole applies the counting presolve: more operations of a kind
// than FuncUnit slots supporting that kind is infeasible outright, as
// is more operations than slots overall. Each primitive with initiation
// interval ii contributes N/ii slots at context count N (ii divides N,
// or the MRRG would not have been generated).
func (s *stamper) pigeonhole() {
	n := s.mg.Contexts
	for _, ks := range s.t.kinds {
		slots := 0
		for _, ii := range ks.iis {
			slots += n / ii
		}
		if ks.ops > slots {
			s.f.infeasible = fmt.Sprintf("%d operations of kind %s but only %d supporting slots", ks.ops, ks.kind, slots)
			return
		}
	}
	total := 0
	for _, ii := range s.t.fuIIs {
		total += n / ii
	}
	if s.t.g.NumOps() > total {
		s.f.infeasible = fmt.Sprintf("%d operations but only %d functional-unit slots",
			s.t.g.NumOps(), total)
	}
}

// forEachRouteFanout enumerates RouteRes neighbours.
func (s *stamper) forEachRouteFanout(i int, fn func(int)) {
	for _, m := range s.mg.Nodes[i].Fanouts {
		if s.mg.Nodes[m].Kind == mrrg.RouteRes {
			fn(m)
		}
	}
}

// computeAllowed returns, per sub-value, the set of routing nodes that
// lie on some source-to-sink path (forward reachability from every legal
// producer output intersected with backward reachability from every
// compatible sink port). With pruning disabled, every routing node is
// allowed for every sub-value.
func (s *stamper) computeAllowed() [][][]bool {
	g, mg := s.t.g, s.mg
	nNodes := len(mg.Nodes)
	s.boolUsed = 0
	allowed := make([][][]bool, g.NumVals())

	if s.t.disablePruning {
		// Every sub-value shares one read-only mask of all routing
		// nodes.
		all := s.boolSlice(nNodes)
		for i, n := range mg.Nodes {
			all[i] = n.Kind == mrrg.RouteRes
		}
		for _, v := range g.Vals() {
			allowed[v.ID] = make([][]bool, len(v.Uses))
			for k := range v.Uses {
				allowed[v.ID][k] = all
			}
		}
		return allowed
	}

	if cap(s.fwd) < nNodes {
		s.fwd = make([]bool, nNodes)
		s.bwd = make([]bool, nNodes)
	}
	fwd, bwd := s.fwd[:nNodes], s.bwd[:nNodes]
	for _, v := range g.Vals() {
		// Forward reachability from every legal producer output.
		clear(fwd)
		queue := s.queue[:0]
		for _, p := range s.legal[v.Def.ID] {
			out := mg.Nodes[p].OutNode
			if !fwd[out] {
				fwd[out] = true
				queue = append(queue, out)
			}
		}
		for len(queue) > 0 {
			i := queue[0]
			queue = queue[1:]
			s.forEachRouteFanout(i, func(m int) {
				if !fwd[m] {
					fwd[m] = true
					queue = append(queue, m)
				}
			})
		}
		allowed[v.ID] = make([][]bool, len(v.Uses))
		for k, u := range v.Uses {
			// Backward reachability from compatible sink ports.
			clear(bwd)
			queue = queue[:0]
			for _, n := range mg.Nodes {
				if n.OperandPort >= 0 && mg.CompatibleSink(n, u.Op, u.Operand) {
					bwd[n.ID] = true
					queue = append(queue, n.ID)
				}
			}
			for len(queue) > 0 {
				i := queue[0]
				queue = queue[1:]
				for _, m := range mg.Nodes[i].Fanins {
					if mg.Nodes[m].Kind == mrrg.RouteRes && !bwd[m] {
						bwd[m] = true
						queue = append(queue, m)
					}
				}
			}
			set := s.boolSlice(nNodes)
			any := false
			for i := range set {
				set[i] = fwd[i] && bwd[i]
				any = any || set[i]
			}
			if !any {
				s.f.infeasible = fmt.Sprintf("value %s cannot reach %s.op%d on this architecture",
					v.Name, u.Op.Name, u.Operand)
				s.queue = queue[:0]
				return nil
			}
			allowed[v.ID][k] = set
		}
		s.queue = queue[:0]
	}
	return allowed
}

// refineLegal drops placements whose output cannot reach every sink and
// whose operand ports cannot be reached by the corresponding producers
// (sound because the allowed sets were computed from a superset of the
// refined placements).
func (s *stamper) refineLegal(allowed [][][]bool) {
	mg := s.mg
	for _, op := range s.t.g.Ops() {
		kept := s.legal[op.ID][:0]
	placements:
		for _, p := range s.legal[op.ID] {
			fu := mg.Nodes[p]
			if op.Out != nil {
				out := fu.OutNode
				for k := range op.Out.Uses {
					if !allowed[op.Out.ID][k][out] {
						continue placements
					}
				}
			}
			for si, v := range op.In {
				k := useIndex(v, op, si)
				ok := false
				for _, pn := range fu.PortNodes {
					if mg.CompatibleSink(mg.Nodes[pn], op, si) && allowed[v.ID][k][pn] {
						ok = true
						break
					}
				}
				if !ok {
					continue placements
				}
			}
			kept = append(kept, p)
		}
		s.legal[op.ID] = kept
		if len(kept) == 0 {
			s.f.infeasible = fmt.Sprintf("no reachable placement for operation %s (%s)", op.Name, op.Kind)
			return
		}
	}
}

func (s *stamper) createVars(allowed [][][]bool) {
	f, g, mg := s.f, s.t.g, s.mg
	f.fvar = make([]map[int]ilp.Var, g.NumOps())
	for _, op := range g.Ops() {
		f.fvar[op.ID] = make(map[int]ilp.Var, len(s.legal[op.ID]))
		for _, p := range s.legal[op.ID] {
			v := f.model.BinaryComposite("F", mg.Nodes[p].Name, op.Name, -1)
			// Placement decisions dominate the search: branch on
			// them first, trying "placed here" before "not here"
			// so that each decision constructively extends a
			// partial placement instead of enumerating
			// exclusions.
			f.model.SetBranchPriority(v, 1)
			f.model.SetPhaseHint(v, true)
			f.fvar[op.ID][p] = v
		}
	}
	f.r3 = make([][]map[int]ilp.Var, g.NumVals())
	f.r2 = make([]map[int]ilp.Var, g.NumVals())
	for _, v := range g.Vals() {
		f.r3[v.ID] = make([]map[int]ilp.Var, len(v.Uses))
		union := make(map[int]bool)
		for k := range v.Uses {
			f.r3[v.ID][k] = make(map[int]ilp.Var)
			for i, ok := range allowed[v.ID][k] {
				if !ok {
					continue
				}
				f.r3[v.ID][k][i] = f.model.BinaryComposite("R", mg.Nodes[i].Name, v.Name, k)
				union[i] = true
			}
		}
		f.r2[v.ID] = make(map[int]ilp.Var, len(union))
		s.keys = s.keys[:0]
		for i := range union {
			s.keys = append(s.keys, i)
		}
		sort.Ints(s.keys)
		for _, i := range s.keys {
			f.r2[v.ID][i] = f.model.BinaryComposite("R", mg.Nodes[i].Name, v.Name, -1)
		}
	}
}

// addPlacementConstraints emits constraints (1) and (2).
func (s *stamper) addPlacementConstraints() {
	f, g := s.f, s.t.g
	// (1) Operation Placement: every op on exactly one FU.
	for _, op := range g.Ops() {
		s.terms = s.terms[:0]
		for _, p := range s.legal[op.ID] {
			s.terms = append(s.terms, ilp.Term{Var: f.fvar[op.ID][p], Coef: 1})
		}
		f.model.AddEQ("placement", s.terms, 1)
	}
	// (2) Functional Unit Exclusivity: at most one op per FU slot.
	perFU := make(map[int][]ilp.Term)
	for _, op := range g.Ops() {
		for _, p := range s.legal[op.ID] {
			perFU[p] = append(perFU[p], ilp.Term{Var: f.fvar[op.ID][p], Coef: 1})
		}
	}
	for _, p := range s.mg.FuncUnits() {
		if terms := perFU[p]; len(terms) > 1 {
			f.model.AddLE("fu-exclusivity", terms, 1)
		}
	}
}

// addRoutingConstraints emits constraints (4) through (9).
func (s *stamper) addRoutingConstraints() {
	f, g, mg := s.f, s.t.g, s.mg
	// (4) Route Exclusivity: at most one value per routing node.
	perNode := make(map[int][]ilp.Term)
	for _, v := range g.Vals() {
		for i, rv := range f.r2[v.ID] {
			perNode[i] = append(perNode[i], ilp.Term{Var: rv, Coef: 1})
		}
	}
	for i := range mg.Nodes {
		if terms := perNode[i]; len(terms) > 1 {
			f.model.AddLE("route-exclusivity", terms, 1)
		}
	}

	for _, v := range g.Vals() {
		for k, u := range v.Uses {
			rk := f.r3[v.ID][k]
			s.keys = sortedKeys(s.keys, rk)
			for _, i := range s.keys {
				rv := rk[i]
				node := mg.Nodes[i]
				// (5) Fanout Routing: a used node drives a
				// downstream node with the same sub-value or
				// terminates at the sink's FU.
				s.terms = append(s.terms[:0], ilp.Term{Var: rv, Coef: -1})
				for _, m := range node.Fanouts {
					mn := mg.Nodes[m]
					if mn.Kind == mrrg.RouteRes {
						if mv, ok := rk[m]; ok {
							s.terms = append(s.terms, ilp.Term{Var: mv, Coef: 1})
						}
						continue
					}
					// FU fanout: i is an operand port of mn.
					if mg.CompatibleSink(node, u.Op, u.Operand) {
						if fv, ok := f.fvar[u.Op.ID][m]; ok {
							s.terms = append(s.terms, ilp.Term{Var: fv, Coef: 1})
						}
					}
				}
				f.model.AddGE("fanout-routing", s.terms, 0)

				// (6) Implied Placement (and operand
				// correctness): routing onto an operand port
				// forces the sink op onto that FU; an
				// incompatible port cannot carry the
				// sub-value at all.
				if node.OperandPort >= 0 {
					p := node.FUNode
					if mg.CompatibleSink(node, u.Op, u.Operand) {
						if fv, ok := f.fvar[u.Op.ID][p]; ok {
							f.model.AddGE("implied-placement",
								[]ilp.Term{{Var: fv, Coef: 1}, {Var: rv, Coef: -1}}, 0)
						} else {
							f.model.AddLE("implied-placement", []ilp.Term{{Var: rv, Coef: 1}}, 0)
						}
					} else {
						f.model.AddLE("operand-correctness", []ilp.Term{{Var: rv, Coef: 1}}, 0)
					}
				}

				// (8) Routing Resource Usage.
				f.model.AddGE("resource-usage",
					[]ilp.Term{{Var: f.r2[v.ID][i], Coef: 1}, {Var: rv, Coef: -1}}, 0)
			}
		}

		// (7) Initial Fanout: the producer's output node carries
		// every sub-value of the produced value iff the producer is
		// placed there.
		def := v.Def
		for _, p := range s.legal[def.ID] {
			out := mg.Nodes[p].OutNode
			fv := f.fvar[def.ID][p]
			for k := range v.Uses {
				if rv, ok := f.r3[v.ID][k][out]; ok {
					f.model.AddEQ("initial-fanout",
						[]ilp.Term{{Var: rv, Coef: 1}, {Var: fv, Coef: -1}}, 0)
				} else {
					// The output cannot reach this sink:
					// the placement is impossible (only
					// reachable with pruning disabled, or
					// kept deliberately when refinement is
					// off).
					f.model.AddLE("initial-fanout", []ilp.Term{{Var: fv, Coef: 1}}, 0)
				}
			}
		}

		// Distinct operand ports: when one value feeds both operands
		// of a commutative operation (e.g. x*x), its two sub-values
		// must terminate on different ports — route exclusivity
		// (4) enforces this only across *different* values, and
		// constraint (6) alone would let both sub-values share one
		// port, leaving the other ALU input undriven.
		for _, op := range g.Ops() {
			if len(op.In) != 2 || op.In[0] != op.In[1] || op.In[0] != v {
				continue
			}
			k0 := useIndex(v, op, 0)
			k1 := useIndex(v, op, 1)
			s.keys = sortedKeys(s.keys, f.r3[v.ID][k0])
			for _, i := range s.keys {
				rv0 := f.r3[v.ID][k0][i]
				if mg.Nodes[i].OperandPort < 0 {
					continue
				}
				if rv1, ok := f.r3[v.ID][k1][i]; ok {
					f.model.AddLE("distinct-ports",
						[]ilp.Term{{Var: rv0, Coef: 1}, {Var: rv1, Coef: 1}}, 1)
				}
			}
		}

		// (9) Multiplexer Input Exclusivity: on multi-fanin routing
		// nodes the value enters through exactly as many inputs as
		// the node is used — preventing self-reinforcing loops
		// (paper Example 2) and forcing per-value route trees.
		s.keys = sortedKeys(s.keys, f.r2[v.ID])
		for _, i := range s.keys {
			rv := f.r2[v.ID][i]
			node := mg.Nodes[i]
			if len(node.Fanins) <= 1 {
				continue
			}
			s.terms = append(s.terms[:0], ilp.Term{Var: rv, Coef: -1})
			for _, m := range node.Fanins {
				if mv, ok := f.r2[v.ID][m]; ok {
					s.terms = append(s.terms, ilp.Term{Var: mv, Coef: 1})
				}
			}
			f.model.AddEQ("mux-input-exclusivity", s.terms, 0)
		}
	}
}
