package mapper

import (
	"fmt"
	"sort"

	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
	"cgramap/internal/sched"
)

// formulation is the ILP model of one mapping instance, plus the variable
// maps needed to decode a solution.
type formulation struct {
	g    *dfg.Graph
	mg   *mrrg.Graph
	opts Options

	model *ilp.Model

	// legal[opID] lists the FuncUnit node IDs the operation may be
	// placed on (constraint 3 is enforced by construction: illegal F
	// variables are never created).
	legal [][]int
	// fvar[opID][fuNode] is the placement variable F_{p,q}.
	fvar []map[int]ilp.Var
	// r2[valID][routeNode] is the value-level routing variable R_{i,j}.
	r2 []map[int]ilp.Var
	// r3[valID][sinkIdx][routeNode] is the sink-level routing variable
	// R_{i,j,k}. Its key set is the sub-value's allowed node set.
	r3 [][]map[int]ilp.Var

	// infeasible holds a human-readable reason when the instance was
	// proven infeasible during construction (presolve / pruning).
	infeasible string

	// terms is the constraint-builder scratch buffer: ilp.Model.Add
	// copies its input, so one buffer serves every constraint without
	// per-constraint slice allocations.
	terms []ilp.Term
	// keys is the scratch buffer for iterating the routing-variable
	// maps in sorted node order. Map iteration order must never reach
	// the model: variable numbering and constraint order would then
	// vary run to run, and with them the solver's entire search path —
	// seeded runs have to be reproducible across processes.
	keys []int
}

// sortedKeys returns m's keys ascending, reusing buf.
func sortedKeys(buf []int, m map[int]ilp.Var) []int {
	buf = buf[:0]
	for i := range m {
		buf = append(buf, i)
	}
	sort.Ints(buf)
	return buf
}

// build constructs the full model. On return, either f.infeasible is
// non-empty or f.model is ready to solve.
func (f *formulation) build() error {
	if err := f.g.Validate(); err != nil {
		return fmt.Errorf("mapper: invalid DFG: %w", err)
	}
	f.model = ilp.NewModel(fmt.Sprintf("map-%s-onto-%s", f.g.Name, f.mg.Arch.Name))

	f.computeLegal()
	if f.infeasible != "" {
		return nil
	}
	if !f.opts.DisablePresolve {
		f.pigeonhole()
		if f.infeasible != "" {
			return nil
		}
		f.miiBound()
		if f.infeasible != "" {
			return nil
		}
	}

	allowed := f.computeAllowed()
	if f.infeasible != "" {
		return nil
	}
	if !f.opts.DisablePruning {
		f.refineLegal(allowed)
		if f.infeasible != "" {
			return nil
		}
	}

	f.createVars(allowed)
	f.addPlacementConstraints()
	f.addRoutingConstraints()
	if f.opts.Objective == MinimizeRouting {
		for j := range f.r2 {
			f.keys = sortedKeys(f.keys, f.r2[j])
			for _, i := range f.keys {
				f.model.Objective = append(f.model.Objective,
					ilp.Term{Var: f.r2[j][i], Coef: f.mg.Nodes[i].Cost})
			}
		}
	}
	return f.model.Validate()
}

// computeLegal fills legal[q] with every FuncUnit node supporting the
// operation (paper constraint 3, by variable omission).
func (f *formulation) computeLegal() {
	f.legal = make([][]int, f.g.NumOps())
	for _, op := range f.g.Ops() {
		for _, p := range f.mg.FuncUnits() {
			if f.mg.Nodes[p].SupportsOp(op.Kind) {
				f.legal[op.ID] = append(f.legal[op.ID], p)
			}
		}
		if len(f.legal[op.ID]) == 0 {
			f.infeasible = fmt.Sprintf("no functional unit supports operation %s (%s)", op.Name, op.Kind)
			return
		}
	}
}

// pigeonhole applies the counting presolve: more operations of a kind
// than FuncUnit slots supporting that kind is infeasible outright, as is
// more operations than slots overall.
func (f *formulation) pigeonhole() {
	slotsFor := make(map[dfg.Kind]int)
	opsOf := make(map[dfg.Kind]int)
	for _, p := range f.mg.FuncUnits() {
		for _, k := range f.mg.Nodes[p].Ops {
			slotsFor[k]++
		}
	}
	for _, op := range f.g.Ops() {
		opsOf[op.Kind]++
	}
	for k, n := range opsOf {
		if n > slotsFor[k] {
			f.infeasible = fmt.Sprintf("%d operations of kind %s but only %d supporting slots", n, k, slotsFor[k])
			return
		}
	}
	if f.g.NumOps() > len(f.mg.FuncUnits()) {
		f.infeasible = fmt.Sprintf("%d operations but only %d functional-unit slots",
			f.g.NumOps(), len(f.mg.FuncUnits()))
	}
}

// miiBound applies the modulo-scheduling lower bound: the minimum
// initiation interval max(ResMII, RecMII) computed on a single-context
// device model must not exceed the context count being mapped to.
func (f *formulation) miiBound() {
	single := *f.mg.Arch
	single.Contexts = 1
	mg1, err := mrrg.Generate(&single)
	if err != nil {
		return // exotic architecture (e.g. II>1 units); skip the bound
	}
	mii, err := sched.MII(f.g, mg1)
	if err != nil {
		return // pigeonhole already reported unsupported kinds
	}
	if mii > f.mg.Contexts {
		f.infeasible = fmt.Sprintf("minimum initiation interval %d exceeds the %d available contexts", mii, f.mg.Contexts)
	}
}

// routeFanouts/routeFanins enumerate RouteRes neighbours.
func (f *formulation) forEachRouteFanout(i int, fn func(int)) {
	for _, m := range f.mg.Nodes[i].Fanouts {
		if f.mg.Nodes[m].Kind == mrrg.RouteRes {
			fn(m)
		}
	}
}

// computeAllowed returns, per sub-value, the set of routing nodes that
// lie on some source-to-sink path (forward reachability from every legal
// producer output intersected with backward reachability from every
// compatible sink port). With pruning disabled, every routing node is
// allowed for every sub-value.
func (f *formulation) computeAllowed() [][][]bool {
	nNodes := len(f.mg.Nodes)
	allowed := make([][][]bool, f.g.NumVals())

	if f.opts.DisablePruning {
		for _, v := range f.g.Vals() {
			allowed[v.ID] = make([][]bool, len(v.Uses))
			for k := range v.Uses {
				all := make([]bool, nNodes)
				for i, n := range f.mg.Nodes {
					all[i] = n.Kind == mrrg.RouteRes
				}
				allowed[v.ID][k] = all
			}
		}
		return allowed
	}

	for _, v := range f.g.Vals() {
		// Forward reachability from every legal producer output.
		fwd := make([]bool, nNodes)
		queue := make([]int, 0, 64)
		for _, p := range f.legal[v.Def.ID] {
			out := f.mg.Nodes[p].OutNode
			if !fwd[out] {
				fwd[out] = true
				queue = append(queue, out)
			}
		}
		for len(queue) > 0 {
			i := queue[0]
			queue = queue[1:]
			f.forEachRouteFanout(i, func(m int) {
				if !fwd[m] {
					fwd[m] = true
					queue = append(queue, m)
				}
			})
		}
		allowed[v.ID] = make([][]bool, len(v.Uses))
		for k, u := range v.Uses {
			// Backward reachability from compatible sink ports.
			bwd := make([]bool, nNodes)
			queue = queue[:0]
			for _, n := range f.mg.Nodes {
				if n.OperandPort >= 0 && f.mg.CompatibleSink(n, u.Op, u.Operand) {
					bwd[n.ID] = true
					queue = append(queue, n.ID)
				}
			}
			for len(queue) > 0 {
				i := queue[0]
				queue = queue[1:]
				for _, m := range f.mg.Nodes[i].Fanins {
					if f.mg.Nodes[m].Kind == mrrg.RouteRes && !bwd[m] {
						bwd[m] = true
						queue = append(queue, m)
					}
				}
			}
			set := make([]bool, nNodes)
			any := false
			for i := range set {
				set[i] = fwd[i] && bwd[i]
				any = any || set[i]
			}
			if !any {
				f.infeasible = fmt.Sprintf("value %s cannot reach %s.op%d on this architecture",
					v.Name, u.Op.Name, u.Operand)
				return nil
			}
			allowed[v.ID][k] = set
		}
	}
	return allowed
}

// refineLegal drops placements whose output cannot reach every sink and
// whose operand ports cannot be reached by the corresponding producers
// (sound because the allowed sets were computed from a superset of the
// refined placements).
func (f *formulation) refineLegal(allowed [][][]bool) {
	for _, op := range f.g.Ops() {
		kept := f.legal[op.ID][:0]
	placements:
		for _, p := range f.legal[op.ID] {
			fu := f.mg.Nodes[p]
			if op.Out != nil {
				out := fu.OutNode
				for k := range op.Out.Uses {
					if !allowed[op.Out.ID][k][out] {
						continue placements
					}
				}
			}
			for s, v := range op.In {
				k := useIndex(v, op, s)
				ok := false
				for _, pn := range fu.PortNodes {
					if f.mg.CompatibleSink(f.mg.Nodes[pn], op, s) && allowed[v.ID][k][pn] {
						ok = true
						break
					}
				}
				if !ok {
					continue placements
				}
			}
			kept = append(kept, p)
		}
		f.legal[op.ID] = kept
		if len(kept) == 0 {
			f.infeasible = fmt.Sprintf("no reachable placement for operation %s (%s)", op.Name, op.Kind)
			return
		}
	}
}

func (f *formulation) createVars(allowed [][][]bool) {
	f.fvar = make([]map[int]ilp.Var, f.g.NumOps())
	for _, op := range f.g.Ops() {
		f.fvar[op.ID] = make(map[int]ilp.Var, len(f.legal[op.ID]))
		for _, p := range f.legal[op.ID] {
			v := f.model.BinaryComposite("F", f.mg.Nodes[p].Name, op.Name, -1)
			// Placement decisions dominate the search: branch on
			// them first, trying "placed here" before "not here"
			// so that each decision constructively extends a
			// partial placement instead of enumerating
			// exclusions.
			f.model.SetBranchPriority(v, 1)
			f.model.SetPhaseHint(v, true)
			f.fvar[op.ID][p] = v
		}
	}
	f.r3 = make([][]map[int]ilp.Var, f.g.NumVals())
	f.r2 = make([]map[int]ilp.Var, f.g.NumVals())
	for _, v := range f.g.Vals() {
		f.r3[v.ID] = make([]map[int]ilp.Var, len(v.Uses))
		union := make(map[int]bool)
		for k := range v.Uses {
			f.r3[v.ID][k] = make(map[int]ilp.Var)
			for i, ok := range allowed[v.ID][k] {
				if !ok {
					continue
				}
				f.r3[v.ID][k][i] = f.model.BinaryComposite("R", f.mg.Nodes[i].Name, v.Name, k)
				union[i] = true
			}
		}
		f.r2[v.ID] = make(map[int]ilp.Var, len(union))
		f.keys = f.keys[:0]
		for i := range union {
			f.keys = append(f.keys, i)
		}
		sort.Ints(f.keys)
		for _, i := range f.keys {
			f.r2[v.ID][i] = f.model.BinaryComposite("R", f.mg.Nodes[i].Name, v.Name, -1)
		}
	}
}

// addPlacementConstraints emits constraints (1) and (2).
func (f *formulation) addPlacementConstraints() {
	// (1) Operation Placement: every op on exactly one FU.
	for _, op := range f.g.Ops() {
		f.terms = f.terms[:0]
		for _, p := range f.legal[op.ID] {
			f.terms = append(f.terms, ilp.Term{Var: f.fvar[op.ID][p], Coef: 1})
		}
		f.model.AddEQ("placement", f.terms, 1)
	}
	// (2) Functional Unit Exclusivity: at most one op per FU slot.
	perFU := make(map[int][]ilp.Term)
	for _, op := range f.g.Ops() {
		for _, p := range f.legal[op.ID] {
			perFU[p] = append(perFU[p], ilp.Term{Var: f.fvar[op.ID][p], Coef: 1})
		}
	}
	for _, p := range f.mg.FuncUnits() {
		if terms := perFU[p]; len(terms) > 1 {
			f.model.AddLE("fu-exclusivity", terms, 1)
		}
	}
}

// addRoutingConstraints emits constraints (4) through (9).
func (f *formulation) addRoutingConstraints() {
	mg := f.mg
	// (4) Route Exclusivity: at most one value per routing node.
	perNode := make(map[int][]ilp.Term)
	for _, v := range f.g.Vals() {
		for i, rv := range f.r2[v.ID] {
			perNode[i] = append(perNode[i], ilp.Term{Var: rv, Coef: 1})
		}
	}
	for i := range mg.Nodes {
		if terms := perNode[i]; len(terms) > 1 {
			f.model.AddLE("route-exclusivity", terms, 1)
		}
	}

	for _, v := range f.g.Vals() {
		for k, u := range v.Uses {
			rk := f.r3[v.ID][k]
			f.keys = sortedKeys(f.keys, rk)
			for _, i := range f.keys {
				rv := rk[i]
				node := mg.Nodes[i]
				// (5) Fanout Routing: a used node drives a
				// downstream node with the same sub-value or
				// terminates at the sink's FU.
				f.terms = append(f.terms[:0], ilp.Term{Var: rv, Coef: -1})
				for _, m := range node.Fanouts {
					mn := mg.Nodes[m]
					if mn.Kind == mrrg.RouteRes {
						if mv, ok := rk[m]; ok {
							f.terms = append(f.terms, ilp.Term{Var: mv, Coef: 1})
						}
						continue
					}
					// FU fanout: i is an operand port of mn.
					if mg.CompatibleSink(node, u.Op, u.Operand) {
						if fv, ok := f.fvar[u.Op.ID][m]; ok {
							f.terms = append(f.terms, ilp.Term{Var: fv, Coef: 1})
						}
					}
				}
				f.model.AddGE("fanout-routing", f.terms, 0)

				// (6) Implied Placement (and operand
				// correctness): routing onto an operand port
				// forces the sink op onto that FU; an
				// incompatible port cannot carry the
				// sub-value at all.
				if node.OperandPort >= 0 {
					p := node.FUNode
					if mg.CompatibleSink(node, u.Op, u.Operand) {
						if fv, ok := f.fvar[u.Op.ID][p]; ok {
							f.model.AddGE("implied-placement",
								[]ilp.Term{{Var: fv, Coef: 1}, {Var: rv, Coef: -1}}, 0)
						} else {
							f.model.AddLE("implied-placement", []ilp.Term{{Var: rv, Coef: 1}}, 0)
						}
					} else {
						f.model.AddLE("operand-correctness", []ilp.Term{{Var: rv, Coef: 1}}, 0)
					}
				}

				// (8) Routing Resource Usage.
				f.model.AddGE("resource-usage",
					[]ilp.Term{{Var: f.r2[v.ID][i], Coef: 1}, {Var: rv, Coef: -1}}, 0)
			}
		}

		// (7) Initial Fanout: the producer's output node carries
		// every sub-value of the produced value iff the producer is
		// placed there.
		def := v.Def
		for _, p := range f.legal[def.ID] {
			out := mg.Nodes[p].OutNode
			fv := f.fvar[def.ID][p]
			for k := range v.Uses {
				if rv, ok := f.r3[v.ID][k][out]; ok {
					f.model.AddEQ("initial-fanout",
						[]ilp.Term{{Var: rv, Coef: 1}, {Var: fv, Coef: -1}}, 0)
				} else {
					// The output cannot reach this sink:
					// the placement is impossible (only
					// reachable with pruning disabled, or
					// kept deliberately when refinement is
					// off).
					f.model.AddLE("initial-fanout", []ilp.Term{{Var: fv, Coef: 1}}, 0)
				}
			}
		}

		// Distinct operand ports: when one value feeds both operands
		// of a commutative operation (e.g. x*x), its two sub-values
		// must terminate on different ports — route exclusivity
		// (4) enforces this only across *different* values, and
		// constraint (6) alone would let both sub-values share one
		// port, leaving the other ALU input undriven.
		for _, op := range f.g.Ops() {
			if len(op.In) != 2 || op.In[0] != op.In[1] || op.In[0] != v {
				continue
			}
			k0 := useIndex(v, op, 0)
			k1 := useIndex(v, op, 1)
			f.keys = sortedKeys(f.keys, f.r3[v.ID][k0])
			for _, i := range f.keys {
				rv0 := f.r3[v.ID][k0][i]
				if f.mg.Nodes[i].OperandPort < 0 {
					continue
				}
				if rv1, ok := f.r3[v.ID][k1][i]; ok {
					f.model.AddLE("distinct-ports",
						[]ilp.Term{{Var: rv0, Coef: 1}, {Var: rv1, Coef: 1}}, 1)
				}
			}
		}

		// (9) Multiplexer Input Exclusivity: on multi-fanin routing
		// nodes the value enters through exactly as many inputs as
		// the node is used — preventing self-reinforcing loops
		// (paper Example 2) and forcing per-value route trees.
		f.keys = sortedKeys(f.keys, f.r2[v.ID])
		for _, i := range f.keys {
			rv := f.r2[v.ID][i]
			node := mg.Nodes[i]
			if len(node.Fanins) <= 1 {
				continue
			}
			f.terms = append(f.terms[:0], ilp.Term{Var: rv, Coef: -1})
			for _, m := range node.Fanins {
				if mv, ok := f.r2[v.ID][m]; ok {
					f.terms = append(f.terms, ilp.Term{Var: mv, Coef: 1})
				}
			}
			f.model.AddEQ("mux-input-exclusivity", f.terms, 0)
		}
	}
}
