// Package mapper implements the paper's contribution: the
// architecture-agnostic ILP formulation of CGRA mapping over a Modulo
// Routing Resource Graph (paper §4), together with solution decoding and
// an independent mapping verifier.
//
// CGRA mapping associates DFG operations with MRRG FuncUnit nodes and DFG
// values with trees of RouteRes nodes connecting each producer to every
// consumer (paper §3.3). The formulation is built from a DFG and an MRRG
// only — no architecture-specific structure is assumed.
package mapper

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"cgramap/internal/dfg"
	"cgramap/internal/mrrg"
)

// Mapping is a complete placement and routing of a DFG onto an MRRG.
type Mapping struct {
	// DFG and MRRG are the mapped application and device graphs.
	DFG  *dfg.Graph
	MRRG *mrrg.Graph

	// Placement[opID] is the FuncUnit node executing the operation.
	Placement []int

	// Routes[valID][sinkIdx] lists the RouteRes node IDs used to carry
	// the value from its producer's output node to the sink's operand
	// port (both endpoints included), one entry per use of the value
	// (a sub-value, paper Fig. 5).
	Routes [][][]int
}

// RouteNodesOf returns the union of routing nodes used by value v.
func (m *Mapping) RouteNodesOf(v *dfg.Value) []int {
	seen := make(map[int]bool)
	for _, route := range m.Routes[v.ID] {
		for _, n := range route {
			seen[n] = true
		}
	}
	nodes := make([]int, 0, len(seen))
	for n := range seen {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}

// RoutingCost sums the cost of every routing node used by any value,
// counting a node once per value using it — the paper's objective
// (eq. 10).
func (m *Mapping) RoutingCost() int {
	cost := 0
	for _, v := range m.DFG.Vals() {
		for _, n := range m.RouteNodesOf(v) {
			cost += m.MRRG.Nodes[n].Cost
		}
	}
	return cost
}

// Write renders the mapping as text: one line per operation placement and
// per sub-value route.
func (m *Mapping) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "mapping of %s onto %s (%d contexts)\n",
		m.DFG.Name, m.MRRG.Arch.Name, m.MRRG.Contexts)
	for _, op := range m.DFG.Ops() {
		fmt.Fprintf(bw, "  place %-12s -> %s\n", op.Name, m.MRRG.Nodes[m.Placement[op.ID]].Name)
	}
	for _, v := range m.DFG.Vals() {
		for k, u := range v.Uses {
			fmt.Fprintf(bw, "  route %s -> %s.op%d:", v.Name, u.Op.Name, u.Operand)
			for _, n := range m.Routes[v.ID][k] {
				fmt.Fprintf(bw, " %s", m.MRRG.Nodes[n].Name)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// Verify independently checks that the mapping is legal, without
// consulting the ILP model:
//
//   - every operation sits on exactly one FuncUnit node that supports it,
//     with no two operations sharing a node (paper constraints 1–3);
//   - no routing node carries more than one value (constraint 4);
//   - every sub-value's node set contains a directed path from the
//     producer's output node to a compatible operand port of the sink's
//     placed FU (constraints 5–8), honouring operand order for
//     non-commutative operations and assigning distinct ports to the
//     operands of commutative ones (constraint 6).
func (m *Mapping) Verify() error {
	g, mg := m.DFG, m.MRRG
	if len(m.Placement) != g.NumOps() || len(m.Routes) != g.NumVals() {
		return fmt.Errorf("mapper: mapping shape mismatch")
	}
	// Placement legality and exclusivity.
	usedFU := make(map[int]*dfg.Op)
	for _, op := range g.Ops() {
		p := m.Placement[op.ID]
		if p < 0 || p >= len(mg.Nodes) || mg.Nodes[p].Kind != mrrg.FuncUnit {
			return fmt.Errorf("mapper: op %s placed on non-FuncUnit node %d", op.Name, p)
		}
		if !mg.Nodes[p].SupportsOp(op.Kind) {
			return fmt.Errorf("mapper: op %s (%s) placed on %s, which does not support it",
				op.Name, op.Kind, mg.Nodes[p].Name)
		}
		if prev := usedFU[p]; prev != nil {
			return fmt.Errorf("mapper: ops %s and %s share FuncUnit %s", prev.Name, op.Name, mg.Nodes[p].Name)
		}
		usedFU[p] = op
	}
	// Route exclusivity across values.
	owner := make(map[int]*dfg.Value)
	for _, v := range g.Vals() {
		for _, n := range m.RouteNodesOf(v) {
			if n < 0 || n >= len(mg.Nodes) || mg.Nodes[n].Kind != mrrg.RouteRes {
				return fmt.Errorf("mapper: value %s routed over non-routing node %d", v.Name, n)
			}
			if prev := owner[n]; prev != nil && prev != v {
				return fmt.Errorf("mapper: values %s and %s share routing node %s",
					prev.Name, v.Name, mg.Nodes[n].Name)
			}
			owner[n] = v
		}
	}
	// Per-sub-value connectivity and operand correctness.
	for _, v := range g.Vals() {
		src := mg.Nodes[m.Placement[v.Def.ID]].OutNode
		// reachedPorts[sinkIdx] = operand ports of the sink FU the
		// route actually reaches.
		for k, u := range v.Uses {
			route := m.Routes[v.ID][k]
			inRoute := make(map[int]bool, len(route))
			for _, n := range route {
				inRoute[n] = true
			}
			if !inRoute[src] {
				return fmt.Errorf("mapper: value %s sink %d: route misses producer output %s",
					v.Name, k, mg.Nodes[src].Name)
			}
			sinkFU := m.Placement[u.Op.ID]
			target := -1
			// BFS over the sub-value's own nodes.
			queue := []int{src}
			visited := map[int]bool{src: true}
			for len(queue) > 0 && target < 0 {
				n := queue[0]
				queue = queue[1:]
				node := mg.Nodes[n]
				if node.OperandPort >= 0 && node.FUNode == sinkFU &&
					mg.CompatibleSink(node, u.Op, u.Operand) {
					target = n
					break
				}
				for _, f := range node.Fanouts {
					if inRoute[f] && !visited[f] {
						visited[f] = true
						queue = append(queue, f)
					}
				}
			}
			if target < 0 {
				return fmt.Errorf("mapper: value %s sink %d (%s.op%d): no route from %s to a compatible port of %s",
					v.Name, k, u.Op.Name, u.Operand, mg.Nodes[src].Name, mg.Nodes[sinkFU].Name)
			}
		}
	}
	// Distinct-port assignment for multi-operand sinks: each operand's
	// route must be able to claim its own port (for commutative ops a
	// port may serve either operand, but not both at once). Ports are
	// routing nodes, so route exclusivity already forbids two
	// *different* values on one port; here we catch one value feeding
	// both operands through a single port.
	for _, op := range g.Ops() {
		if len(op.In) < 2 {
			continue
		}
		fu := mg.Nodes[m.Placement[op.ID]]
		// portsReached[s] = set of compatible ports operand s reaches.
		portsReached := make([]map[int]bool, len(op.In))
		for s, v := range op.In {
			portsReached[s] = make(map[int]bool)
			k := useIndex(v, op, s)
			route := m.Routes[v.ID][k]
			for _, n := range route {
				node := mg.Nodes[n]
				if node.OperandPort >= 0 && node.FUNode == fu.ID &&
					mg.CompatibleSink(node, op, s) {
					portsReached[s][n] = true
				}
			}
		}
		if len(op.In) == 2 {
			ok := false
			for p0 := range portsReached[0] {
				for p1 := range portsReached[1] {
					if p0 != p1 {
						ok = true
					}
				}
			}
			if !ok {
				return fmt.Errorf("mapper: op %s: operands cannot occupy distinct ports of %s",
					op.Name, fu.Name)
			}
		}
	}
	return nil
}

// useIndex finds the index within v.Uses of the use (op, operand).
func useIndex(v *dfg.Value, op *dfg.Op, operand int) int {
	for k, u := range v.Uses {
		if u.Op == op && u.Operand == operand {
			return k
		}
	}
	return -1
}
