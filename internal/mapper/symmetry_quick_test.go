package mapper

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/mrrg"
)

// applyNodePerm pushes an MRRG node permutation through a mapping,
// producing the image mapping: placements and every route node are
// rewritten through nodeMap.
func applyNodePerm(m *Mapping, nodeMap []int) *Mapping {
	img := &Mapping{
		DFG: m.DFG, MRRG: m.MRRG,
		Placement: make([]int, len(m.Placement)),
		Routes:    make([][][]int, len(m.Routes)),
	}
	for op, p := range m.Placement {
		img.Placement[op] = nodeMap[p]
	}
	for v, routes := range m.Routes {
		img.Routes[v] = make([][]int, len(routes))
		for k, route := range routes {
			img.Routes[v][k] = make([]int, len(route))
			for i, n := range route {
				img.Routes[v][k][i] = nodeMap[n]
			}
		}
	}
	return img
}

// TestQuickAutomorphismPreservesMapping is the soundness property the
// symmetry-breaking constraints rest on: applying any element of the
// discovered automorphism group to a valid mapping yields another valid
// mapping. Group elements are random words over the verified generator
// lifts; the base mappings are independently checked by Verify, so a
// violation here would mean a generator survived verification despite
// not being a true fabric symmetry.
func TestQuickAutomorphismPreservesMapping(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type instance struct {
		name     string
		mapping  *Mapping
		genLifts [][]int
	}
	var instances []instance

	// Two fabrics with different verified groups: the homogeneous
	// diagonal grid keeps all three reflection generators, the
	// heterogeneous one only rot180.
	fabrics := []struct {
		kernel string
		spec   arch.GridSpec
	}{
		{"accum", arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1}},
		{"mac", arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 2}},
	}
	for _, f := range fabrics {
		a, err := arch.Grid(f.spec)
		if err != nil {
			t.Fatal(err)
		}
		syms := arch.Discover(a)
		if syms.Trivial() {
			t.Fatalf("%s: no symmetry discovered", a.Name)
		}
		mg, err := mrrg.Generate(a)
		if err != nil {
			t.Fatal(err)
		}
		g := bench.MustGet(f.kernel)
		res, err := Map(ctx, g, mg, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s on %s: %v", f.kernel, a.Name, err)
		}
		if res.Mapping == nil {
			t.Fatalf("%s on %s: no mapping (status %v)", f.kernel, a.Name, res.Status)
		}
		if err := res.Mapping.Verify(); err != nil {
			t.Fatalf("%s on %s: base mapping invalid: %v", f.kernel, a.Name, err)
		}
		lifts := make([][]int, len(syms.Gens))
		for i := range syms.Gens {
			if lifts[i], err = mrrg.LiftAutomorphism(mg, &syms.Gens[i]); err != nil {
				t.Fatalf("%s lift %s: %v", a.Name, syms.Gens[i].Name, err)
			}
		}
		instances = append(instances, instance{a.Name + "/" + f.kernel, res.Mapping, lifts})
	}

	property := func(pick uint8, word []uint8) bool {
		inst := instances[int(pick)%len(instances)]
		// Compose a random group word over the generator lifts. Identity
		// words are fine — they exercise the trivial case.
		n := len(inst.mapping.MRRG.Nodes)
		comp := make([]int, n)
		for i := range comp {
			comp[i] = i
		}
		if len(word) > 8 {
			word = word[:8]
		}
		for _, w := range word {
			lift := inst.genLifts[int(w)%len(inst.genLifts)]
			for i := range comp {
				comp[i] = lift[comp[i]]
			}
		}
		img := applyNodePerm(inst.mapping, comp)
		if err := img.Verify(); err != nil {
			t.Logf("%s: word %v: image mapping invalid: %v", inst.name, word, err)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}
