package mapper

import (
	"bytes"
	"context"
	"os"
	"sync"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
)

// artifactArch is the heterogeneous Table 1 fabric the artifact tests
// stamp against (contexts overridden per II).
var artifactArch = arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 1}

func gridAt(t *testing.T, spec arch.GridSpec, ii int) (*arch.Arch, *mrrg.Graph) {
	t.Helper()
	spec.Contexts = ii
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return a, mg
}

func lpBytes(t *testing.T, m *ilp.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStampedScratchByteIdentity is the contract the artifact cache
// lives by: a model stamped from a cached template must be
// byte-identical — same variable numbering, same constraint order, same
// LP serialisation — to one formulated from scratch. Checked across
// kernels, objectives, and IIs, including the repeat-stamp case where
// the template really comes out of the cache.
func TestStampedScratchByteIdentity(t *testing.T) {
	kernels := []string{"accum", "mac", "2x2-f"}
	if os.Getenv("CGRAMAP_ARTIFACT_EQUIV_ALL") != "" {
		// The CI artifact-cache equivalence job sweeps the whole Table 1
		// set; the default subset keeps plain `go test` fast.
		kernels = bench.Names()
	}
	cache := NewArtifactCache(2 * len(kernels))
	for _, kernel := range kernels {
		g := bench.MustGet(kernel)
		for _, obj := range []ObjectiveMode{Feasibility, MinimizeRouting} {
			for ii := 1; ii <= 3; ii++ {
				_, mg := gridAt(t, artifactArch, ii)
				scratchOpts := Options{Objective: obj}
				cachedOpts := Options{Objective: obj, Artifacts: cache}

				sm, sreason, err := BuildModel(g, mg, scratchOpts)
				if err != nil {
					t.Fatal(err)
				}
				// Stamp twice: the first call may build the template, the
				// second must hit the cache. Both must match scratch.
				for pass := 0; pass < 2; pass++ {
					cm, creason, err := BuildModel(g, mg, cachedOpts)
					if err != nil {
						t.Fatal(err)
					}
					if creason != sreason {
						t.Fatalf("%s obj=%d ii=%d pass %d: cached reason %q, scratch %q",
							kernel, obj, ii, pass, creason, sreason)
					}
					if (cm == nil) != (sm == nil) {
						t.Fatalf("%s obj=%d ii=%d pass %d: cached model nil=%v, scratch nil=%v",
							kernel, obj, ii, pass, cm == nil, sm == nil)
					}
					if sm == nil {
						continue
					}
					if cm.Fingerprint() != sm.Fingerprint() {
						t.Fatalf("%s obj=%d ii=%d pass %d: stamped model fingerprint differs from scratch",
							kernel, obj, ii, pass)
					}
					if !bytes.Equal(lpBytes(t, cm), lpBytes(t, sm)) {
						t.Fatalf("%s obj=%d ii=%d pass %d: stamped LP bytes differ from scratch",
							kernel, obj, ii, pass)
					}
				}
			}
		}
	}
	st := cache.Stats()
	if st.TemplateMisses == 0 || st.TemplateHits == 0 {
		t.Fatalf("expected both template misses and hits, got %+v", st)
	}
}

// TestTemplateCacheEviction: a capacity-1 template store keeps only the
// most recent kernel; revisiting the evicted one misses again.
func TestTemplateCacheEviction(t *testing.T) {
	cache := NewArtifactCache(1)
	a, _ := gridAt(t, artifactArch, 1)
	ga, gb := bench.MustGet("accum"), bench.MustGet("mac")

	if _, err := cache.template(ga, a, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.template(gb, a, Options{}); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.TemplateEvictions != 1 || st.TemplateEntries != 1 {
		t.Fatalf("after 2 kernels at cap 1: evictions=%d entries=%d, want 1 and 1",
			st.TemplateEvictions, st.TemplateEntries)
	}
	if _, err := cache.template(ga, a, Options{}); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.TemplateMisses != 3 || st.TemplateHits != 0 {
		t.Fatalf("evicted template re-request: misses=%d hits=%d, want 3 and 0",
			st.TemplateMisses, st.TemplateHits)
	}
	if st.TemplateBytes <= 0 {
		t.Fatalf("template bytes gauge not maintained: %d", st.TemplateBytes)
	}
}

// TestTemplateCacheSingleFlight: concurrent misses for one key build the
// template exactly once; every waiter shares the pointer and counts as a
// hit.
func TestTemplateCacheSingleFlight(t *testing.T) {
	cache := NewArtifactCache(4)
	a, _ := gridAt(t, artifactArch, 1)
	g := bench.MustGet("mac")

	const n = 16
	var wg sync.WaitGroup
	results := make([]*Template, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tm, err := cache.template(g, a, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = tm
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different template pointer", i)
		}
	}
	st := cache.Stats()
	if st.TemplateMisses != 1 || st.TemplateHits != n-1 {
		t.Fatalf("single-flight stats: misses=%d hits=%d, want 1 and %d",
			st.TemplateMisses, st.TemplateHits, n-1)
	}
}

// TestConcurrentStampingMatchesScratch is the -race stress for the
// template's stamper pool: many goroutines stamp models for different
// IIs from one shared cache — the shape of MapAuto's parallel
// speculative lanes — and every stamped model must fingerprint
// identically to a scratch formulation at its II.
func TestConcurrentStampingMatchesScratch(t *testing.T) {
	cache := NewArtifactCache(8)
	g := bench.MustGet("mac")

	const maxII = 4
	want := make([]string, maxII+1)
	graphs := make([]*mrrg.Graph, maxII+1)
	for ii := 1; ii <= maxII; ii++ {
		_, mg := gridAt(t, artifactArch, ii)
		graphs[ii] = mg
		m, _, err := BuildModel(g, mg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[ii] = m.Fingerprint()
	}

	const lanes = 16
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ii := i%maxII + 1
			m, _, err := BuildModel(g, graphs[ii], Options{Artifacts: cache})
			if err != nil {
				t.Error(err)
				return
			}
			if m.Fingerprint() != want[ii] {
				t.Errorf("lane %d: stamped model at II=%d differs from scratch", i, ii)
			}
		}(i)
	}
	wg.Wait()
}

// TestMapAutoCachedEquivalentToScratchLadder: an auto-II sweep through a
// shared (and, on the second run, fully warm) artifact cache reports the
// same minimal II and per-II trajectory as a hand-rolled ladder of
// scratch solves.
func TestMapAutoCachedEquivalentToScratchLadder(t *testing.T) {
	spec := artifactArch
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := bench.MustGet("accum")
	const maxII = 4
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Ground truth: scratch solves, one per II, no caching anywhere.
	wantII, wantStatus := 0, ilp.Infeasible
	var trajectory []ilp.Status
	for ii := 1; ii <= maxII; ii++ {
		_, mg := gridAt(t, spec, ii)
		res, err := Map(ctx, g, mg, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		trajectory = append(trajectory, res.Status)
		if res.Feasible() {
			wantII, wantStatus = ii, res.Status
			break
		}
	}
	if wantII == 0 {
		t.Fatalf("accum unmappable up to II=%d on %s", maxII, a.Name)
	}

	shared := NewArtifactCache(16)
	for run := 0; run < 2; run++ {
		auto, err := MapAuto(ctx, g, a, maxII, Options{Seed: 1, Artifacts: shared})
		if err != nil {
			t.Fatal(err)
		}
		if auto.II != wantII || auto.Status != wantStatus {
			t.Fatalf("run %d: cached ladder II=%d status=%v, scratch II=%d status=%v",
				run, auto.II, auto.Status, wantII, wantStatus)
		}
		for i, s := range auto.Tried {
			if s != trajectory[i] {
				t.Fatalf("run %d: cached trajectory %v, scratch %v", run, auto.Tried, trajectory)
			}
		}
	}
	st := shared.Stats()
	if st.TemplateHits == 0 || st.MRRG.Hits == 0 {
		t.Fatalf("warm rerun produced no cache hits: %+v", st)
	}
}
