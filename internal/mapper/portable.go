package mapper

import (
	"fmt"

	"cgramap/internal/dfg"
	"cgramap/internal/mrrg"
)

// Portable is a serialisation-friendly rendering of a Mapping: every
// placement and route is expressed through stable names (DFG operation
// names, MRRG node names) instead of in-memory indices, so it survives
// JSON marshalling across a process boundary. FromPortable reconstructs
// (and re-verifies) a Mapping against locally rebuilt DFG and MRRG
// values — the round trip the mapping service's client uses.
type Portable struct {
	// Kernel and Arch identify the mapped application and device.
	Kernel string `json:"kernel"`
	Arch   string `json:"arch"`
	// Contexts is the initiation interval the mapping was solved at.
	Contexts int `json:"contexts"`
	// RoutingCost is the paper's eq. 10 objective value of the mapping.
	RoutingCost int `json:"routing_cost"`
	// Placements lists one FU assignment per DFG operation.
	Placements []PortablePlacement `json:"placements"`
	// Routes lists one node path per sub-value (value use).
	Routes []PortableRoute `json:"routes"`
}

// PortablePlacement assigns one operation to one MRRG FuncUnit node.
type PortablePlacement struct {
	Op   string `json:"op"`
	Node string `json:"node"`
}

// PortableRoute carries one sub-value: the route of value Value to
// operand Operand of operation Sink, as an ordered MRRG node name list.
type PortableRoute struct {
	Value   string   `json:"value"`
	Sink    string   `json:"sink"`
	Operand int      `json:"operand"`
	Nodes   []string `json:"nodes"`
}

// Portable renders the mapping in its name-based portable form.
func (m *Mapping) Portable() *Portable {
	p := &Portable{
		Kernel:      m.DFG.Name,
		Arch:        m.MRRG.Arch.Name,
		Contexts:    m.MRRG.Contexts,
		RoutingCost: m.RoutingCost(),
	}
	for _, op := range m.DFG.Ops() {
		p.Placements = append(p.Placements, PortablePlacement{
			Op:   op.Name,
			Node: m.MRRG.Nodes[m.Placement[op.ID]].Name,
		})
	}
	for _, v := range m.DFG.Vals() {
		for k, u := range v.Uses {
			route := PortableRoute{Value: v.Name, Sink: u.Op.Name, Operand: u.Operand}
			for _, n := range m.Routes[v.ID][k] {
				route.Nodes = append(route.Nodes, m.MRRG.Nodes[n].Name)
			}
			p.Routes = append(p.Routes, route)
		}
	}
	return p
}

// FromPortable rebinds a portable mapping to locally constructed DFG and
// MRRG values and verifies it from scratch, so a mapping received over
// the wire carries the same guarantee as one decoded from a local solve.
func FromPortable(g *dfg.Graph, mg *mrrg.Graph, p *Portable) (*Mapping, error) {
	if p.Contexts != mg.Contexts {
		return nil, fmt.Errorf("mapper: portable mapping solved at %d contexts, MRRG has %d", p.Contexts, mg.Contexts)
	}
	m := &Mapping{
		DFG:       g,
		MRRG:      mg,
		Placement: make([]int, g.NumOps()),
		Routes:    make([][][]int, g.NumVals()),
	}
	for i := range m.Placement {
		m.Placement[i] = -1
	}
	for _, pl := range p.Placements {
		op := g.OpByName(pl.Op)
		if op == nil {
			return nil, fmt.Errorf("mapper: portable mapping places unknown op %q", pl.Op)
		}
		node := mg.NodeByName(pl.Node)
		if node == nil {
			return nil, fmt.Errorf("mapper: portable mapping places %q on unknown node %q", pl.Op, pl.Node)
		}
		if m.Placement[op.ID] >= 0 {
			return nil, fmt.Errorf("mapper: portable mapping places op %q twice", pl.Op)
		}
		m.Placement[op.ID] = node.ID
	}
	for _, op := range g.Ops() {
		if m.Placement[op.ID] < 0 {
			return nil, fmt.Errorf("mapper: portable mapping leaves op %q unplaced", op.Name)
		}
	}
	for _, v := range g.Vals() {
		m.Routes[v.ID] = make([][]int, len(v.Uses))
	}
	for _, r := range p.Routes {
		v := valueByName(g, r.Value)
		if v == nil {
			return nil, fmt.Errorf("mapper: portable mapping routes unknown value %q", r.Value)
		}
		k := -1
		for i, u := range v.Uses {
			if u.Op.Name == r.Sink && u.Operand == r.Operand {
				k = i
				break
			}
		}
		if k < 0 {
			return nil, fmt.Errorf("mapper: portable mapping routes %q to unknown sink %s.op%d", r.Value, r.Sink, r.Operand)
		}
		if m.Routes[v.ID][k] != nil {
			return nil, fmt.Errorf("mapper: portable mapping routes sub-value %s->%s.op%d twice", r.Value, r.Sink, r.Operand)
		}
		nodes := make([]int, len(r.Nodes))
		for i, name := range r.Nodes {
			node := mg.NodeByName(name)
			if node == nil {
				return nil, fmt.Errorf("mapper: portable route for %q uses unknown node %q", r.Value, name)
			}
			nodes[i] = node.ID
		}
		m.Routes[v.ID][k] = nodes
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("mapper: portable mapping failed verification: %w", err)
	}
	return m, nil
}

// valueByName finds the value with the given name (values are named
// after their producing operation).
func valueByName(g *dfg.Graph, name string) *dfg.Value {
	op := g.OpByName(name)
	if op == nil {
		return nil
	}
	return op.Out
}
