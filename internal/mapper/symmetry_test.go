package mapper

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
)

// swapKernel builds a DFG with a clean value symmetry: two independent
// leaf inputs feeding one commutative multiply, plus a distinct anchor
// operation so the swap pair stays clear of orbit fixing.
func swapKernel(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New("swapk")
	x := g.In("x")
	a := g.In("a")
	b := g.In("b")
	m := g.Mul("m", a, b)
	s := g.Add("s", x, m)
	g.Out("y", s)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func homoGrid(t *testing.T, contexts int) *arch.Arch {
	t.Helper()
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal,
		Homogeneous: true, Contexts: contexts})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParseSymmetryMode(t *testing.T) {
	cases := map[string]SymmetryMode{
		"": SymmetryAuto, "auto": SymmetryAuto,
		"on": SymmetryOn, "true": SymmetryOn, "1": SymmetryOn,
		"off": SymmetryOff, "false": SymmetryOff, "0": SymmetryOff,
	}
	for in, want := range cases {
		got, err := ParseSymmetryMode(in)
		if err != nil || got != want {
			t.Errorf("ParseSymmetryMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSymmetryMode("maybe"); err == nil {
		t.Error("ParseSymmetryMode(maybe) accepted")
	}
	for _, m := range []SymmetryMode{SymmetryAuto, SymmetryOn, SymmetryOff} {
		back, err := ParseSymmetryMode(m.String())
		if err != nil || back != m {
			t.Errorf("round-trip %v -> %q -> %v, %v", m, m.String(), back, err)
		}
	}
}

// TestFindValueSwaps checks the operand-symmetry detector directly.
func TestFindValueSwaps(t *testing.T) {
	g := swapKernel(t)
	aID := g.OpByName("a").ID
	bID := g.OpByName("b").ID
	pairs := findValueSwaps(g, g.Ops()[0].ID)
	if len(pairs) != 1 || pairs[0] != [2]int{aID, bID} {
		t.Fatalf("pairs = %v, want [[%d %d]]", pairs, aID, bID)
	}
	// With the anchor inside the candidate pair, the pair must vanish.
	if got := findValueSwaps(g, aID); len(got) != 0 {
		t.Fatalf("anchor-containing pair not excluded: %v", got)
	}
	// Non-commutative consumers produce no pairs.
	g2 := dfg.New("sub")
	a := g2.In("a")
	b := g2.In("b")
	g2.Out("y", g2.Sub("d", a, b))
	if got := findValueSwaps(g2, g2.Ops()[0].ID); len(got) != 0 {
		t.Fatalf("sub operands treated as interchangeable: %v", got)
	}
}

// TestSymmetryConstraintGroups: with Symmetry on, the model carries the
// three symmetry constraint groups; with it off, none — and the
// formulation variables shared by both modes keep identical numbering
// (aux variables are strictly a tail).
func TestSymmetryConstraintGroups(t *testing.T) {
	g := swapKernel(t)
	a := homoGrid(t, 1)
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	on, _, err := BuildModel(g, mg, Options{Symmetry: SymmetryOn})
	if err != nil {
		t.Fatal(err)
	}
	off, _, err := BuildModel(g, mg, Options{Symmetry: SymmetryOff})
	if err != nil {
		t.Fatal(err)
	}
	if on == nil || off == nil {
		t.Fatal("instance unexpectedly infeasible at build time")
	}
	onStats, offStats := on.Stats(), off.Stats()
	for _, group := range []string{"sym-orbit", "sym-lex", "sym-swap"} {
		if onStats.ByName[group] == 0 {
			t.Errorf("symmetry-on model lacks %q constraints (groups: %v)", group, onStats.ByName)
		}
		if offStats.ByName[group] != 0 {
			t.Errorf("symmetry-off model has %d %q constraints", offStats.ByName[group], group)
		}
	}
	// The homogeneous 4x4 grid has three verified generators, so at
	// least three lex chains must appear (one x_0 <= y_0 head each).
	if onStats.ByName["sym-lex"] < 3 {
		t.Errorf("sym-lex constraints = %d, want >= 3 (one chain per generator)", onStats.ByName["sym-lex"])
	}
	if off.NumVars() >= on.NumVars() {
		t.Fatalf("no aux variables added: off %d vars, on %d", off.NumVars(), on.NumVars())
	}
	for i := 0; i < off.NumVars(); i++ {
		if off.VarName(ilp.Var(i)) != on.VarName(ilp.Var(i)) {
			t.Fatalf("var %d renamed by symmetry emission: %q vs %q",
				i, off.VarName(ilp.Var(i)), on.VarName(ilp.Var(i)))
		}
	}
	// Aux tail uses the stable "SE" composite prefix for cross-II VarKey
	// unification.
	sawAux := false
	for i := off.NumVars(); i < on.NumVars(); i++ {
		if strings.HasPrefix(on.VarName(ilp.Var(i)), "SE[") {
			sawAux = true
		}
	}
	if !sawAux {
		t.Error("no SE-prefixed aux variables in the symmetry tail")
	}
}

// TestSymmetryStampedMatchesScratch extends the PR 9 byte-determinism
// guarantee to symmetry emission: a model stamped from a cached template
// (after serving another II first) is byte-identical to a scratch build.
func TestSymmetryStampedMatchesScratch(t *testing.T) {
	g := bench.MustGet("mac")
	cache := NewArtifactCache(8)
	lp := func(opts Options, contexts int) string {
		a := homoGrid(t, contexts)
		mg, err := mrrg.Generate(a)
		if err != nil {
			t.Fatal(err)
		}
		m, reason, err := BuildModel(g, mg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			t.Fatalf("infeasible at build time: %s", reason)
		}
		var sb strings.Builder
		if err := m.WriteLP(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	// Warm the cached template at II=1, then stamp II=2 from it.
	lp(Options{Symmetry: SymmetryOn, Artifacts: cache}, 1)
	stamped := lp(Options{Symmetry: SymmetryOn, Artifacts: cache}, 2)
	scratch := lp(Options{Symmetry: SymmetryOn}, 2)
	if stamped != scratch {
		t.Fatal("stamped symmetry model differs from scratch build")
	}
	// The template key must separate the modes: an off-build through the
	// same cache may not reuse the symmetry template.
	offLP := lp(Options{Symmetry: SymmetryOff, Artifacts: cache}, 2)
	if offLP == stamped {
		t.Fatal("symmetry-off build returned the symmetry-on model")
	}
}

// TestMapSymmetryOn solves with the constraints active: a feasible
// instance still verifies, an infeasible one is still proven infeasible.
func TestMapSymmetryOn(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	g := swapKernel(t)
	mg, err := mrrg.Generate(homoGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(ctx, g, mg, Options{Symmetry: SymmetryOn, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("status %v, want feasible", res.Status)
	}
	if err := res.Mapping.Verify(); err != nil {
		t.Fatal(err)
	}

	// mult_10 needs II=2 on the heterogeneous grid: at a single context
	// the instance is infeasible, and must stay provably so.
	hetero, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal,
		Homogeneous: false, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	hmg, err := mrrg.Generate(hetero)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := Map(ctx, bench.MustGet("mult_10"), hmg, Options{Symmetry: SymmetryOn, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inf.Status != ilp.Infeasible {
		t.Fatalf("mult_10 at II=1: status %v, want infeasible", inf.Status)
	}
}

// TestMapAutoSymmetryEquivalence is the contract symmetry breaking lives
// by: for every kernel, MapAuto with symmetry on must report the same
// minimal II and per-II status trajectory as with it off. Breaking
// removes symmetric duplicates from the search space, never a whole
// solution orbit, so only solve speed may change. The CI equivalence job
// sets CGRAMAP_SYM_EQUIV_ALL=1 to sweep the full Table 1 set.
func TestMapAutoSymmetryEquivalence(t *testing.T) {
	kernels := equivKernels
	budget := 4 * time.Minute
	if os.Getenv("CGRAMAP_SYM_EQUIV_ALL") != "" {
		kernels = bench.Names()
		budget = 45 * time.Second
	}
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal,
		Homogeneous: false, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range kernels {
		name := name
		t.Run(name, func(t *testing.T) {
			g := bench.MustGet(name)
			octx, ocancel := context.WithTimeout(context.Background(), budget)
			defer ocancel()
			off, err := MapAuto(octx, g, a, 4, Options{Seed: 1, Symmetry: SymmetryOff})
			if err != nil {
				t.Fatal(err)
			}
			if off.Status == ilp.Unknown {
				t.Skipf("symmetry-off ladder undecided within %v; no ground truth", budget)
			}
			sctx, scancel := context.WithTimeout(context.Background(), 4*budget)
			defer scancel()
			sym, err := MapAuto(sctx, g, a, 4, Options{Seed: 1, Symmetry: SymmetryOn})
			if err != nil {
				t.Fatal(err)
			}
			if sym.II != off.II || sym.Status != off.Status {
				t.Fatalf("symmetry II=%d status=%v, plain II=%d status=%v",
					sym.II, sym.Status, off.II, off.Status)
			}
			if len(sym.Tried) != len(off.Tried) {
				t.Fatalf("symmetry tried %v, plain tried %v", sym.Tried, off.Tried)
			}
			for i := range sym.Tried {
				if sym.Tried[i] != off.Tried[i] {
					t.Fatalf("II rung %d: symmetry %v, plain %v (full: %v vs %v)",
						i, sym.Tried[i], off.Tried[i], sym.Tried, off.Tried)
				}
			}
			if sym.Feasible() {
				if err := sym.Mapping.Verify(); err != nil {
					t.Fatalf("symmetry mapping invalid: %v", err)
				}
			}
		})
	}
}

// TestMapAutoSymmetryIncremental composes symmetry breaking with the
// incremental session: the lex aux variables carry stable VarKeys across
// IIs, so the ladder must reuse constraints and still land on the same
// proven minimal II. mac on the homogeneous 3x3 grid is the smallest
// genuine two-rung ladder (II=1 solver-proven infeasible, II=2 maps).
func TestMapAutoSymmetryIncremental(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	a, err := arch.Grid(arch.GridSpec{Rows: 3, Cols: 3, Interconnect: arch.Diagonal,
		Homogeneous: true, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MapAuto(ctx, bench.MustGet("mac"), a, 4,
		Options{Seed: 1, Incremental: true, Symmetry: SymmetryOn})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() || res.II != 2 {
		t.Fatalf("II=%d status=%v, want feasible at II=2", res.II, res.Status)
	}
	if len(res.Tried) != 2 || res.Tried[0] != ilp.Infeasible {
		t.Fatalf("tried %v, want [infeasible optimal-or-feasible]", res.Tried)
	}
	if err := res.Mapping.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.SolverStats["incremental"] != 1 {
		t.Fatalf("final solve not incremental (stats %v)", res.SolverStats)
	}
	if res.SolverStats["cons_reused"] == 0 {
		t.Fatalf("no constraints reused across the ladder (stats %v)", res.SolverStats)
	}
}
