package mapper

import (
	"context"
	"fmt"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
	"cgramap/internal/sched"
)

// AutoResult reports an automatic II search.
type AutoResult struct {
	// II is the initiation interval (context count) of the returned
	// mapping.
	II int
	// Result is the successful mapping attempt at that II.
	*Result
	// Tried records the status of every attempted II in order.
	Tried []ilp.Status
}

// MapAuto searches for the smallest initiation interval that maps g onto
// the architecture, in the DRESC tradition: start at the
// modulo-scheduling lower bound MII and increase the context count until
// the ILP mapper finds a mapping (or maxII is exceeded). Because the ILP
// answers are proofs, the result is the provably minimal II for this
// architecture and kernel — the quantity a CGRA compiler ultimately
// optimises.
//
// The architecture is taken as a template: its Contexts field is
// overridden by each attempt. Every FU's own initiation interval must
// divide the attempted context count, so IIs that violate that are
// skipped.
func MapAuto(ctx context.Context, g *dfg.Graph, a *arch.Arch, maxII int, opts Options) (*AutoResult, error) {
	if maxII < 1 {
		return nil, fmt.Errorf("mapper: maxII %d < 1", maxII)
	}
	start := 1
	single := *a
	single.Contexts = 1
	if mg1, err := mrrg.Generate(&single); err == nil {
		if mii, err := sched.MII(g, mg1); err == nil {
			start = mii
		}
	}
	if start > maxII {
		return &AutoResult{
			Result: &Result{Status: ilp.Infeasible,
				Reason: fmt.Sprintf("minimum initiation interval %d exceeds maxII %d", start, maxII)},
		}, nil
	}
	auto := &AutoResult{}
	for ii := start; ii <= maxII; ii++ {
		attempt := *a
		attempt.Contexts = ii
		mg, err := mrrg.Generate(&attempt)
		if err != nil {
			// FU IIs incompatible with this context count.
			auto.Tried = append(auto.Tried, ilp.Infeasible)
			continue
		}
		res, err := Dispatch(ctx, g, mg, opts)
		if err != nil {
			return nil, err
		}
		auto.Tried = append(auto.Tried, res.Status)
		if res.Feasible() {
			auto.II = ii
			auto.Result = res
			return auto, nil
		}
		if ctx.Err() != nil {
			break
		}
	}
	auto.Result = &Result{Status: ilp.Infeasible,
		Reason: fmt.Sprintf("no feasible mapping up to II=%d", maxII)}
	// If any attempt timed out, we cannot claim infeasibility.
	for _, s := range auto.Tried {
		if s == ilp.Unknown {
			auto.Result.Status = ilp.Unknown
			auto.Result.Reason = fmt.Sprintf("undecided up to II=%d (solver timeouts)", maxII)
			break
		}
	}
	return auto, nil
}
