package mapper

import (
	"context"
	"fmt"

	"cgramap/internal/arch"
	"cgramap/internal/budget"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mrrg"
	"cgramap/internal/sched"
	"cgramap/internal/solve/cdcl"
)

// incrementalEligible reports whether the auto-II sweep may thread an
// incremental session through its attempts: the caller asked for it and
// has not supplied its own solver or orchestrator.
func incrementalEligible(opts Options) bool {
	return opts.Incremental && opts.Solver == nil && opts.MapWith == nil
}

// AutoResult reports an automatic II search.
type AutoResult struct {
	// II is the initiation interval (context count) of the returned
	// mapping.
	II int
	// Result is the successful mapping attempt at that II.
	*Result
	// Tried records the status of every attempted II in order.
	Tried []ilp.Status
}

// MapAuto searches for the smallest initiation interval that maps g onto
// the architecture, in the DRESC tradition: start at the
// modulo-scheduling lower bound MII and increase the context count until
// the ILP mapper finds a mapping (or maxII is exceeded). Because the ILP
// answers are proofs, the result is the provably minimal II for this
// architecture and kernel — the quantity a CGRA compiler ultimately
// optimises.
//
// With opts.Workers > 1 the sweep speculates: up to Workers candidate
// IIs solve concurrently (extra attempts beyond the first pay tokens
// from opts.Budget), and the search still returns the smallest feasible
// II — a higher II finishing first only wins once every lower II has
// been proven infeasible or timed out, exactly as in the sequential
// sweep. A cancelled context yields status Unknown, never Infeasible:
// an interrupted search proves nothing.
//
// The architecture is taken as a template: its Contexts field is
// overridden by each attempt. Every FU's own initiation interval must
// divide the attempted context count, so IIs that violate that are
// skipped.
func MapAuto(ctx context.Context, g *dfg.Graph, a *arch.Arch, maxII int, opts Options) (*AutoResult, error) {
	if maxII < 1 {
		return nil, fmt.Errorf("mapper: maxII %d < 1", maxII)
	}
	if opts.Symmetry == SymmetryAuto {
		// The ladder's cost is dominated by proving low IIs infeasible
		// — the regime where symmetry breaking pays — so auto resolves
		// to on. The resolved mode flows through every attempt,
		// speculative lane and portfolio retry below.
		opts.Symmetry = SymmetryOn
	}
	if opts.Artifacts == nil {
		// Even without a caller-provided cache, the ladder itself is a
		// reuse opportunity: one template serves every II, and the
		// MII-probe MRRG below is shared with the template's own MII
		// bound. The ephemeral cache dies with the sweep.
		opts.Artifacts = NewArtifactCache(maxII + 2)
	}
	start := 1
	single := *a
	single.Contexts = 1
	var mg1 *mrrg.Graph
	if mg, err := opts.Artifacts.MRRG(&single); err == nil {
		mg1 = mg
		if mii, err := sched.MII(g, mg1); err == nil {
			start = mii
		}
	}
	if start > maxII {
		return &AutoResult{
			Result: &Result{Status: ilp.Infeasible,
				Reason: fmt.Sprintf("minimum initiation interval %d exceeds maxII %d", start, maxII)},
		}, nil
	}
	if opts.Workers > 1 {
		return mapAutoSpeculative(ctx, g, a, start, maxII, opts, mg1)
	}
	if incrementalEligible(opts) {
		// One session carries learnt clauses and warm-started phases up
		// the whole ladder.
		opts.Solver = cdcl.NewSession(opts.Seed)
	}

	auto := &AutoResult{}
	for ii := start; ii <= maxII; ii++ {
		res, err := mapAtII(ctx, g, a, ii, opts, mg1)
		if err != nil {
			return nil, err
		}
		auto.Tried = append(auto.Tried, res.Status)
		if res.Feasible() {
			auto.II = ii
			auto.Result = res
			return auto, nil
		}
		if ctx.Err() != nil {
			// An interrupted sweep is inconclusive regardless of what
			// the attempts so far reported.
			auto.Result = &Result{Status: ilp.Unknown,
				Reason: fmt.Sprintf("cancelled during II=%d", ii)}
			return auto, nil
		}
	}
	auto.Result = exhaustedResult(auto.Tried, maxII)
	return auto, nil
}

// mapAtII runs one mapping attempt at the given context count, reusing
// the already-generated single-context MRRG when ii == 1. An MRRG
// generation failure (FU IIs incompatible with this context count) is an
// infeasible attempt, not an error.
func mapAtII(ctx context.Context, g *dfg.Graph, a *arch.Arch, ii int, opts Options, mg1 *mrrg.Graph) (*Result, error) {
	mg := mg1
	if ii != 1 || mg == nil {
		attempt := *a
		attempt.Contexts = ii
		var err error
		if opts.Artifacts != nil {
			mg, err = opts.Artifacts.MRRG(&attempt)
		} else {
			mg, err = mrrg.Generate(&attempt)
		}
		if err != nil {
			return &Result{Status: ilp.Infeasible, Reason: err.Error()}, nil
		}
	}
	return Dispatch(ctx, g, mg, opts)
}

// exhaustedResult summarises a sweep that ran out of IIs: provably
// infeasible only if every attempt ended in a proof.
func exhaustedResult(tried []ilp.Status, maxII int) *Result {
	for _, s := range tried {
		if s == ilp.Unknown {
			return &Result{Status: ilp.Unknown,
				Reason: fmt.Sprintf("undecided up to II=%d (solver timeouts)", maxII)}
		}
	}
	return &Result{Status: ilp.Infeasible,
		Reason: fmt.Sprintf("no feasible mapping up to II=%d", maxII)}
}

// mapAutoSpeculative is the concurrent II sweep: a sliding window of at
// most opts.Workers candidate IIs in flight, lowest first. The first
// in-flight attempt is free (the caller was going to solve it anyway);
// each additional one must win a token from the worker budget, so
// speculation narrows to sequential when the machine is busy. The
// moment some II proves feasible, every attempt at a higher II is
// cancelled (it can no longer matter); the feasible result is returned
// once all lower IIs have resolved, preserving the sequential sweep's
// minimality guarantee.
func mapAutoSpeculative(ctx context.Context, g *dfg.Graph, a *arch.Arch, start, maxII int, opts Options, mg1 *mrrg.Graph) (*AutoResult, error) {
	pool := opts.Budget
	if pool == nil {
		pool = budget.Global()
	}

	type outcome struct {
		ii   int
		res  *Result
		err  error
		sess *cdcl.Session
	}
	// With Incremental set, speculative lanes each own an incremental
	// session: a lane that finishes one II hands its session (and the
	// learnt state of the shared constraint prefix) to the next attempt
	// launched. Sessions are never shared between in-flight goroutines —
	// the pool is touched only by this coordinator, and the hand-off
	// through the outcomes channel orders the accesses. No clause import
	// happens across lanes: each session is a separate solver namespace,
	// which keeps clause carrying sound without cross-lane locking.
	useInc := incrementalEligible(opts)
	var sessPool []*cdcl.Session
	sessMade := int64(0)
	outcomes := make(chan outcome, opts.Workers)
	results := make(map[int]*Result)
	cancels := make(map[int]context.CancelFunc)
	paid := make(map[int]bool) // attempts holding a budget token
	inflight := 0
	next := start
	ceiling := maxII // lowest feasible II seen so far bounds the sweep

	drain := func() {
		for _, cancel := range cancels {
			cancel()
		}
		for inflight > 0 {
			o := <-outcomes
			inflight--
			if paid[o.ii] {
				pool.Release(1)
			}
		}
		sessPool = nil
	}
	defer drain()

	for {
		for next <= ceiling && inflight < opts.Workers && ctx.Err() == nil {
			if inflight > 0 && pool.TryAcquire(1) == 0 {
				break // no token for further speculation right now
			}
			ii := next
			next++
			paid[ii] = inflight > 0
			actx, cancel := context.WithCancel(ctx)
			cancels[ii] = cancel
			inflight++
			aopts := opts
			var sess *cdcl.Session
			if useInc {
				if n := len(sessPool); n > 0 {
					sess = sessPool[n-1]
					sessPool = sessPool[:n-1]
				} else {
					seed := opts.Seed
					if seed != 0 {
						// Lanes must not share a trajectory; derive
						// per-session seeds deterministically.
						seed += sessMade * 0x9e3779b9
					}
					sessMade++
					sess = cdcl.NewSession(seed)
				}
				aopts.Solver = sess
			}
			go func() {
				res, err := mapAtII(actx, g, a, ii, aopts, mg1)
				outcomes <- outcome{ii, res, err, sess}
			}()
		}
		if inflight == 0 {
			break // window empty and nothing left to launch
		}

		o := <-outcomes
		inflight--
		cancels[o.ii]()
		if paid[o.ii] {
			pool.Release(1)
			delete(paid, o.ii)
		}
		if o.sess != nil {
			// The lane's goroutine has exited; its session is free to be
			// warm-started by the next attempt launched.
			sessPool = append(sessPool, o.sess)
		}
		if o.err != nil {
			return nil, o.err
		}
		results[o.ii] = o.res
		if o.res.Feasible() && o.ii < ceiling {
			ceiling = o.ii
			// Higher IIs can no longer win; stop their attempts.
			for ii, cancel := range cancels {
				if ii > ceiling {
					cancel()
				}
			}
		}

		// Resolved when the smallest feasible II has every lower II
		// decided (a timeout below it is acceptable — the sequential
		// sweep returns a feasible II past an undecided one too).
		winner := -1
		for ii := start; ii <= ceiling; ii++ {
			r, ok := results[ii]
			if !ok {
				winner = -1
				break
			}
			if r.Feasible() {
				winner = ii
				break
			}
		}
		if winner >= 0 {
			auto := &AutoResult{II: winner, Result: results[winner]}
			for ii := start; ii <= winner; ii++ {
				auto.Tried = append(auto.Tried, results[ii].Status)
			}
			return auto, nil
		}
	}

	auto := &AutoResult{}
	for ii := start; ii <= maxII; ii++ {
		if r, ok := results[ii]; ok {
			auto.Tried = append(auto.Tried, r.Status)
		}
	}
	if ctx.Err() != nil {
		auto.Result = &Result{Status: ilp.Unknown, Reason: "cancelled during II sweep"}
		return auto, nil
	}
	auto.Result = exhaustedResult(auto.Tried, maxII)
	return auto, nil
}
