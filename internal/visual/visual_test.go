package visual

import (
	"context"
	"strings"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

func TestWriteGrid(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	g := bench.MustGet("accum")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := mapper.Map(ctx, g, mg, mapper.Options{})
	if err != nil || !res.Feasible() {
		t.Fatalf("map: %v %v", err, res.Status)
	}
	var sb strings.Builder
	if err := WriteGrid(&sb, res.Mapping); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"floor plan", "context 0", "context 1", "mul t1", "mem:"} {
		if !strings.Contains(out, want) {
			t.Errorf("floor plan missing %q:\n%s", want, out)
		}
	}
}

func TestWriteGridRejectsNonGrid(t *testing.T) {
	b := arch.NewBuilder("line", 1)
	io1 := b.FU("io1", []dfg.Kind{dfg.Input}, 0, 0, 1)
	io2 := b.FU("io2", []dfg.Kind{dfg.Output}, 1, 0, 1)
	b.Connect(io1, io2, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	g := dfg.New("k")
	v := g.In("x")
	g.Out("o", v)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := mapper.Map(ctx, g, mg, mapper.Options{})
	if err != nil || !res.Feasible() {
		t.Fatalf("map: %v", err)
	}
	if err := WriteGrid(&sbDiscard{}, res.Mapping); err == nil {
		t.Error("non-grid architecture accepted")
	}
}

type sbDiscard struct{}

func (*sbDiscard) Write(p []byte) (int, error) { return len(p), nil }
