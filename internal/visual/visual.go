// Package visual renders mappings on grid architectures as ASCII floor
// plans: one panel per execution context showing which operation runs on
// each functional block, which blocks act as routers, and which I/O and
// memory ports are active. Intended for quick human inspection of mapper
// output (the grid naming scheme of internal/arch.Grid is recognised;
// other architectures fall back to the flat Mapping.Write rendering).
package visual

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"cgramap/internal/dfg"
	"cgramap/internal/mapper"
)

const cellWidth = 11

// WriteGrid renders the mapping as per-context floor plans. It returns an
// error when the architecture does not follow the grid naming scheme.
func WriteGrid(w io.Writer, m *mapper.Mapping) error {
	rows, cols := gridShape(m)
	if rows == 0 || cols == 0 {
		return fmt.Errorf("visual: %s is not a grid architecture", m.MRRG.Arch.Name)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "floor plan of %s on %s\n", m.DFG.Name, m.MRRG.Arch.Name)

	// aluOp[ctx][r][c] = op name; routing blocks marked separately.
	placedAt := make(map[string]*dfg.Op)
	for _, op := range m.DFG.Ops() {
		placedAt[m.MRRG.Nodes[m.Placement[op.ID]].Name] = op
	}
	owner := make(map[string]*dfg.Value)
	for _, v := range m.DFG.Vals() {
		for _, n := range m.RouteNodesOf(v) {
			owner[m.MRRG.Nodes[n].Name] = v
		}
	}

	for ctx := 0; ctx < m.MRRG.Contexts; ctx++ {
		fmt.Fprintf(bw, "\ncontext %d:\n", ctx)
		// Top I/O row.
		fmt.Fprintf(bw, "%s\n", ioRow(placedAt, ctx, "io_top", cols))
		border := strings.Repeat("+"+strings.Repeat("-", cellWidth), cols) + "+"
		for r := 0; r < rows; r++ {
			fmt.Fprintln(bw, border)
			line := ""
			for c := 0; c < cols; c++ {
				line += "|" + pad(cellText(placedAt, owner, ctx, r, c))
			}
			// Left/right I/O and the row's memory port.
			left := ioCell(placedAt, fmt.Sprintf("c%d.io_left_%d.fu", ctx, r))
			right := ioCell(placedAt, fmt.Sprintf("c%d.io_right_%d.fu", ctx, r))
			mem := ioCell(placedAt, fmt.Sprintf("c%d.mem_%d.fu", ctx, r))
			fmt.Fprintf(bw, "%8s %s| %-10s mem:%s\n", left, line, right, mem)
		}
		fmt.Fprintln(bw, border)
		fmt.Fprintf(bw, "%s\n", ioRow(placedAt, ctx, "io_bot", cols))
	}
	return bw.Flush()
}

// gridShape infers (rows, cols) from pe_r_c.alu primitive names.
func gridShape(m *mapper.Mapping) (rows, cols int) {
	for _, p := range m.MRRG.Arch.Prims {
		var r, c int
		if n, _ := fmt.Sscanf(p.Name, "pe_%d_%d.alu", &r, &c); n == 2 && strings.HasSuffix(p.Name, ".alu") {
			if r+1 > rows {
				rows = r + 1
			}
			if c+1 > cols {
				cols = c + 1
			}
		}
	}
	return rows, cols
}

// cellText describes one functional block in one context.
func cellText(placedAt map[string]*dfg.Op, owner map[string]*dfg.Value, ctx, r, c int) string {
	alu := fmt.Sprintf("c%d.pe_%d_%d.alu", ctx, r, c)
	if op, ok := placedAt[alu]; ok {
		return fmt.Sprintf("%s %s", op.Kind, op.Name)
	}
	// Router mode: the block's register write mux carries a value
	// without the ALU computing.
	muxR := fmt.Sprintf("c%d.pe_%d_%d.mux_r", ctx, r, c)
	if v, ok := owner[muxR]; ok {
		return "~" + v.Name
	}
	return ""
}

func ioCell(placedAt map[string]*dfg.Op, nodeName string) string {
	if op, ok := placedAt[nodeName]; ok {
		return op.Name
	}
	return "."
}

func ioRow(placedAt map[string]*dfg.Op, ctx int, prefix string, cols int) string {
	parts := make([]string, cols)
	for c := 0; c < cols; c++ {
		parts[c] = pad(ioCell(placedAt, fmt.Sprintf("c%d.%s_%d.fu", ctx, prefix, c)))
	}
	return strings.Repeat(" ", 9) + " " + strings.Join(parts, " ")
}

func pad(s string) string {
	if len(s) > cellWidth {
		s = s[:cellWidth]
	}
	return fmt.Sprintf("%-*s", cellWidth, s)
}
