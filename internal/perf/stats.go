package perf

import "sort"

// Median returns the median of xs (the mean of the two central values
// for even lengths). It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation of xs: the median of
// |x - median(xs)|. A robust spread estimate that a single outlier
// sample (GC pause, scheduler hiccup) cannot inflate, which is why the
// diff uses it as its noise guard instead of the standard deviation.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		d := x - m
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	return Median(dev)
}
