package perf

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// op is one benchmark iteration. It may return engine counters (solver
// series); the last non-nil map of a series is recorded.
type op func() (map[string]int64, error)

// measureOptions fixes the sampling budget of one series.
type measureOptions struct {
	samples       int
	minSampleTime time.Duration
	maxIters      int
}

// calibrate picks the per-sample iteration count: the smallest power-of
// -ten multiple (1, 2, 5, 10, ...) whose total runtime reaches
// minSampleTime, capped by maxIters. Fixing the count once — rather than
// re-deriving it per sample — keeps every sample of a series, and every
// run of the same tier, measuring the same workload shape.
func calibrate(o op, opts measureOptions) (int, error) {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := o(); err != nil {
				return 0, err
			}
		}
		elapsed := time.Since(start)
		if elapsed >= opts.minSampleTime || iters >= opts.maxIters {
			return iters, nil
		}
		// Grow along the 1-2-5 sequence like testing.B does.
		switch {
		case elapsed <= 0:
			iters *= 100
		default:
			want := int(float64(iters) * float64(opts.minSampleTime) / float64(elapsed))
			iters = roundUp125(want + want/5) // 20% headroom
		}
		if iters > opts.maxIters {
			iters = opts.maxIters
		}
	}
}

// roundUp125 rounds n up to the next 1, 2 or 5 times a power of ten.
func roundUp125(n int) int {
	if n <= 1 {
		return 1
	}
	base := 1
	for {
		for _, m := range []int{1, 2, 5} {
			if v := m * base; v >= n {
				return v
			}
		}
		base *= 10
	}
}

// measure runs one series: calibrates the iteration count, then takes
// opts.samples timed samples, reading the allocator counters around each
// so allocations and bytes per op come out exact (single-goroutine
// benchmark bodies make the MemStats delta attributable). A GC runs
// before each sample so collection debt from one sample is not billed to
// the next.
func measure(ctx context.Context, name string, gated bool, o op, opts measureOptions) (Series, error) {
	iters, err := calibrate(o, opts)
	if err != nil {
		return Series{}, fmt.Errorf("perf: %s: %w", name, err)
	}
	s := Series{Name: name, Gated: gated, Iters: iters}
	var ms1, ms2 runtime.MemStats
	for i := 0; i < opts.samples; i++ {
		if err := ctx.Err(); err != nil {
			return Series{}, err
		}
		runtime.GC()
		runtime.ReadMemStats(&ms1)
		start := time.Now()
		var stats map[string]int64
		for j := 0; j < iters; j++ {
			st, err := o()
			if err != nil {
				return Series{}, fmt.Errorf("perf: %s: %w", name, err)
			}
			if st != nil {
				stats = st
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms2)
		n := float64(iters)
		s.TimeNsPerOp = append(s.TimeNsPerOp, float64(elapsed.Nanoseconds())/n)
		s.AllocsPerOp = append(s.AllocsPerOp, float64(ms2.Mallocs-ms1.Mallocs)/n)
		s.BytesPerOp = append(s.BytesPerOp, float64(ms2.TotalAlloc-ms1.TotalAlloc)/n)
		if stats != nil {
			s.SolverStats = stats
		}
	}
	return s, nil
}
