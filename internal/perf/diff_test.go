package perf

import (
	"math"
	"strings"
	"testing"
)

// mkResult builds a minimal valid result from (name, gated, allocs) rows.
// Every series gets constant samples so medians are exact.
func mkResult(label string, rows ...Series) *Result {
	r := NewResult(label, false)
	r.Series = rows
	return r
}

// flat returns n copies of v.
func flat(v float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = v
	}
	return xs
}

// series builds one series with constant time/allocs/bytes samples.
func series(name string, gated bool, timeNs, allocs float64) Series {
	return Series{
		Name:        name,
		Gated:       gated,
		Iters:       1,
		TimeNsPerOp: flat(timeNs, 5),
		AllocsPerOp: flat(allocs, 5),
		BytesPerOp:  flat(allocs*16, 5),
	}
}

func TestDiffMissingSeries(t *testing.T) {
	base := mkResult("base",
		series("gated-one", true, 1000, 10),
		series("ungated-one", false, 1000, 10),
	)
	cand := mkResult("cand", series("brand-new", false, 1, 1))

	rep, err := Diff(base, cand, DiffOptions{Metrics: []Metric{MetricAllocs}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Error("gated series missing from candidate must fail the diff")
	}
	verdicts := map[string]Verdict{}
	for _, d := range rep.Deltas {
		verdicts[d.Name] = d.Verdict
		if d.Verdict == Missing && !math.IsNaN(d.Change) {
			t.Errorf("%s: missing series should have NaN change, got %v", d.Name, d.Change)
		}
	}
	if verdicts["gated-one"] != Missing || verdicts["ungated-one"] != Missing {
		t.Errorf("want both series missing, got %v", verdicts)
	}
	if len(rep.NewSeries) != 1 || rep.NewSeries[0] != "brand-new" {
		t.Errorf("NewSeries = %v, want [brand-new]", rep.NewSeries)
	}

	// An ungated series going missing is reported but never fails.
	base2 := mkResult("base", series("ungated-one", false, 1000, 10))
	rep2, err := Diff(base2, cand, DiffOptions{Metrics: []Metric{MetricAllocs}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Failed {
		t.Error("ungated missing series must not fail the diff")
	}
}

func TestDiffGatedOnlySkipsUngated(t *testing.T) {
	base := mkResult("base",
		series("gated-one", true, 1000, 10),
		series("ungated-one", false, 1000, 10),
	)
	cand := mkResult("cand",
		series("gated-one", true, 1000, 10),
		// Huge ungated regression: must not even appear in a gated-only diff.
		series("ungated-one", false, 9000, 90),
	)
	rep, err := Diff(base, cand, DiffOptions{Metrics: []Metric{MetricAllocs}, GatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Error("gated-only diff must ignore the ungated regression")
	}
	for _, d := range rep.Deltas {
		if d.Name == "ungated-one" {
			t.Error("gated-only diff must not include ungated series")
		}
	}
}

func TestDiffZeroVarianceBaseline(t *testing.T) {
	// Constant samples → MAD 0 on both sides → the time noise guard
	// degrades to the plain threshold test and must still catch a clear
	// regression.
	base := mkResult("base", series("s", true, 1000, 10))
	cand := mkResult("cand", series("s", true, 1500, 10))
	rep, err := Diff(base, cand, DiffOptions{Metrics: []Metric{MetricTime}, Threshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deltas) != 1 || rep.Deltas[0].Verdict != Regressed || !rep.Failed {
		t.Errorf("zero-variance 50%% time regression: got %+v, failed=%v", rep.Deltas, rep.Failed)
	}
}

func TestDiffNoiseGuardSuppressesJitter(t *testing.T) {
	// The median moved past the threshold, but the shift is inside
	// NoiseMADs*(baseMAD+newMAD): no verdict change on the time metric.
	noisy := func(center float64) []float64 {
		return []float64{center - 200, center - 100, center, center + 100, center + 200}
	}
	base := mkResult("base", Series{Name: "s", Gated: true, Iters: 1,
		TimeNsPerOp: noisy(1000), AllocsPerOp: flat(10, 5), BytesPerOp: flat(160, 5)})
	cand := mkResult("cand", Series{Name: "s", Gated: true, Iters: 1,
		TimeNsPerOp: noisy(1400), AllocsPerOp: flat(10, 5), BytesPerOp: flat(160, 5)})
	rep, err := Diff(base, cand, DiffOptions{Metrics: []Metric{MetricTime}, Threshold: 0.25, NoiseMADs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// MAD is 100 on each side → guard 3*(100+100)=600 > 400 shift.
	if rep.Deltas[0].Verdict != Unchanged || rep.Failed {
		t.Errorf("400ns shift inside the 600ns guard must stay unchanged, got %+v", rep.Deltas[0])
	}

	// The same relative change on allocs (no noise guard) regresses.
	base2 := mkResult("base", series("s", true, 1000, 10))
	cand2 := mkResult("cand", series("s", true, 1000, 14))
	rep2, err := Diff(base2, cand2, DiffOptions{Metrics: []Metric{MetricAllocs}, Threshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Deltas[0].Verdict != Regressed {
		t.Errorf("40%% alloc regression must flag without a noise guard, got %+v", rep2.Deltas[0])
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	// 0 → 0 is unchanged; 0 → nonzero is a regression with NaN relative
	// change (an alloc-free path starting to allocate).
	base := mkResult("base",
		series("stays-zero", true, 100, 0),
		series("goes-nonzero", true, 100, 0),
	)
	cand := mkResult("cand",
		series("stays-zero", true, 100, 0),
		series("goes-nonzero", true, 100, 3),
	)
	rep, err := Diff(base, cand, DiffOptions{Metrics: []Metric{MetricAllocs}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Deltas {
		switch d.Name {
		case "stays-zero":
			if d.Verdict != Unchanged || d.Change != 0 {
				t.Errorf("0→0: got %+v", d)
			}
		case "goes-nonzero":
			if d.Verdict != Regressed || !math.IsNaN(d.Change) {
				t.Errorf("0→3: got %+v", d)
			}
		}
	}
	if !rep.Failed {
		t.Error("0→nonzero on a gated series must fail")
	}
}

func TestDiffRejectsInvalidInput(t *testing.T) {
	bad := mkResult("bad", series("s", true, 1000, 10))
	bad.Series[0].TimeNsPerOp[2] = math.NaN()
	good := mkResult("good", series("s", true, 1000, 10))
	if _, err := Diff(bad, good, DiffOptions{}); err == nil {
		t.Error("NaN sample in baseline must be rejected")
	}
	if _, err := Diff(good, bad, DiffOptions{}); err == nil {
		t.Error("NaN sample in candidate must be rejected")
	}
	bad.Series[0].TimeNsPerOp[2] = math.Inf(1)
	if _, err := Diff(bad, good, DiffOptions{}); err == nil {
		t.Error("Inf sample must be rejected")
	}
	bad.Series[0].TimeNsPerOp[2] = -1
	if _, err := Diff(bad, good, DiffOptions{}); err == nil {
		t.Error("negative sample must be rejected")
	}
}

func TestWriteMarkdown(t *testing.T) {
	base := mkResult("base",
		series("ok-series", true, 1000, 10),
		series("gone", true, 1000, 10),
	)
	cand := mkResult("cand", series("ok-series", true, 1000, 10))
	rep, err := Diff(base, cand, DiffOptions{Metrics: []Metric{MetricAllocs}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**MISSING**", "n/a", "**FAIL**", "ok-series"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestParseMetrics(t *testing.T) {
	ms, err := ParseMetrics("time, allocs,bytes")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0] != MetricTime || ms[1] != MetricAllocs || ms[2] != MetricBytes {
		t.Errorf("ParseMetrics = %v", ms)
	}
	if _, err := ParseMetrics("walltime"); err == nil {
		t.Error("unknown metric must be rejected")
	}
}
