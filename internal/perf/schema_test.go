package perf

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// validResult wraps Result with a quick.Generator that only produces
// schema-valid values (finite non-negative samples, unique non-empty
// names, consistent sample counts), so the property under test is the
// JSON round trip, not Validate's rejections.
type validResult struct{ R Result }

var _ quick.Generator = validResult{}

func (validResult) Generate(rng *rand.Rand, size int) reflect.Value {
	nSeries := 1 + rng.Intn(5)
	nSamples := 1 + rng.Intn(7)
	r := Result{
		SchemaVersion: SchemaVersion,
		Label:         "label-" + strconv.Itoa(rng.Intn(1000)),
		CreatedAt:     "2026-08-06T00:00:00Z",
		GoVersion:     "go-test",
		GOOS:          "linux",
		GOARCH:        "amd64",
		NumCPU:        1 + rng.Intn(64),
		Short:         rng.Intn(2) == 0,
	}
	samples := func() []float64 {
		xs := make([]float64, nSamples)
		for i := range xs {
			// Mix magnitudes: integers, tiny fractions, zero, and large
			// values near the float64 integer-precision edge.
			switch rng.Intn(4) {
			case 0:
				xs[i] = float64(rng.Intn(1000))
			case 1:
				xs[i] = rng.Float64()
			case 2:
				xs[i] = 0
			default:
				xs[i] = rng.Float64() * 1e15
			}
		}
		return xs
	}
	for i := 0; i < nSeries; i++ {
		s := Series{
			Name:        "series-" + strconv.Itoa(i),
			Gated:       rng.Intn(2) == 0,
			Iters:       1 + rng.Intn(100000),
			TimeNsPerOp: samples(),
			AllocsPerOp: samples(),
			BytesPerOp:  samples(),
		}
		if rng.Intn(2) == 0 {
			s.SolverStats = map[string]int64{
				"decisions": rng.Int63(),
				"conflicts": -rng.Int63(), // negative counters must survive too
			}
		}
		r.Series = append(r.Series, s)
	}
	return reflect.ValueOf(validResult{R: r})
}

// TestResultRoundTrip checks Write→Read is the identity on every valid
// result: encoding/json must preserve each float64 sample exactly and the
// decoder must accept everything the encoder emits.
func TestResultRoundTrip(t *testing.T) {
	prop := func(vr validResult) bool {
		var buf bytes.Buffer
		if err := vr.R.Write(&buf); err != nil {
			t.Logf("Write: %v", err)
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("Read: %v", err)
			return false
		}
		if !reflect.DeepEqual(*got, vr.R) {
			t.Logf("round trip changed the result:\n in: %+v\nout: %+v", vr.R, *got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	valid := func() *Result {
		r := NewResult("x", false)
		r.Series = []Series{{
			Name: "s", Iters: 1,
			TimeNsPerOp: []float64{1}, AllocsPerOp: []float64{1}, BytesPerOp: []float64{1},
		}}
		return r
	}
	cases := []struct {
		name string
		mut  func(*Result)
		frag string
	}{
		{"wrong schema version", func(r *Result) { r.SchemaVersion = SchemaVersion + 1 }, "schema version"},
		{"no series", func(r *Result) { r.Series = nil }, "no series"},
		{"empty name", func(r *Result) { r.Series[0].Name = "" }, "no name"},
		{"duplicate name", func(r *Result) { r.Series = append(r.Series, r.Series[0]) }, "duplicate"},
		{"zero iters", func(r *Result) { r.Series[0].Iters = 0 }, "iters"},
		{"no samples", func(r *Result) {
			r.Series[0].TimeNsPerOp = nil
			r.Series[0].AllocsPerOp = nil
			r.Series[0].BytesPerOp = nil
		}, "no samples"},
		{"mismatched counts", func(r *Result) { r.Series[0].AllocsPerOp = []float64{1, 2} }, "mismatched"},
		{"NaN sample", func(r *Result) { r.Series[0].TimeNsPerOp[0] = math.NaN() }, "invalid sample"},
		{"Inf sample", func(r *Result) { r.Series[0].BytesPerOp[0] = math.Inf(1) }, "invalid sample"},
		{"negative sample", func(r *Result) { r.Series[0].AllocsPerOp[0] = -1 }, "invalid sample"},
	}
	for _, c := range cases {
		r := valid()
		c.mut(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid result", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
	if err := valid().Validate(); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
}

// TestReadRejectsHugeLiteral documents the +Inf guard end to end: "1e999"
// decodes without error but must not validate.
func TestReadRejectsHugeLiteral(t *testing.T) {
	blob := `{"schema_version":1,"label":"x","go_version":"g","goos":"l","goarch":"a","num_cpu":1,
	  "series":[{"name":"s","iters":1,"time_ns_per_op":[1e999],"allocs_per_op":[1],"bytes_per_op":[1]}]}`
	if _, err := Read(strings.NewReader(blob)); err == nil {
		t.Fatal("1e999 sample must be rejected")
	}
}
