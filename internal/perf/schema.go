// Package perf is the benchmark-regression substrate: it runs the
// paper's benchmark suite (MRRG generation, ILP formulation, solver
// end-to-end) under fixed budgets, records wall time, allocations and
// solver counters into a versioned JSON schema, and compares two result
// files with robust statistics (median + MAD) so that CI can gate on
// performance regressions and PRs can commit before/after evidence
// (the BENCH_<label>.json files at the repository root).
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it on
// incompatible changes; Validate rejects files from other versions so a
// diff never silently compares mismatched schemas.
const SchemaVersion = 1

// Result is one benchmark run: a labelled collection of measured series
// plus enough environment metadata to judge comparability.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Label         string `json:"label"`
	CreatedAt     string `json:"created_at,omitempty"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	// Short marks a run of the reduced tier (gated series only, smaller
	// budgets) used by CI.
	Short  bool     `json:"short,omitempty"`
	Series []Series `json:"series"`
}

// Series is one measured benchmark series. Each sample runs Iters
// iterations back to back; the per-op figures are that sample's totals
// divided by Iters. Keeping every sample (rather than a single mean)
// is what lets the diff use median + MAD.
type Series struct {
	Name string `json:"name"`
	// Gated series participate in CI pass/fail; ungated series (the
	// solver end-to-end runs, whose timing is search-order noisy) are
	// reported but never fail a diff.
	Gated bool `json:"gated,omitempty"`
	// Iters is the per-sample iteration count fixed by calibration.
	Iters int `json:"iters"`
	// TimeNsPerOp, AllocsPerOp and BytesPerOp hold one per-op figure
	// per sample.
	TimeNsPerOp []float64 `json:"time_ns_per_op"`
	AllocsPerOp []float64 `json:"allocs_per_op"`
	BytesPerOp  []float64 `json:"bytes_per_op"`
	// SolverStats carries engine counters (decisions, propagations,
	// conflicts, ...) from the last iteration of solver series.
	SolverStats map[string]int64 `json:"solver_stats,omitempty"`
}

// NewResult returns a Result labelled and stamped with the current
// environment.
func NewResult(label string, short bool) *Result {
	return &Result{
		SchemaVersion: SchemaVersion,
		Label:         label,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Short:         short,
	}
}

// Validate checks schema version, series-name uniqueness, sample-shape
// consistency and that every figure is finite and non-negative (JSON
// cannot carry NaN/Inf, but a hand-edited or corrupted file could carry
// "1e999"-style values that decode to +Inf).
func (r *Result) Validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("perf: schema version %d, this tool reads %d", r.SchemaVersion, SchemaVersion)
	}
	if len(r.Series) == 0 {
		return fmt.Errorf("perf: result %q has no series", r.Label)
	}
	seen := make(map[string]bool, len(r.Series))
	for i := range r.Series {
		s := &r.Series[i]
		if s.Name == "" {
			return fmt.Errorf("perf: series %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("perf: duplicate series %q", s.Name)
		}
		seen[s.Name] = true
		if s.Iters <= 0 {
			return fmt.Errorf("perf: series %q has non-positive iters %d", s.Name, s.Iters)
		}
		if len(s.TimeNsPerOp) == 0 {
			return fmt.Errorf("perf: series %q has no samples", s.Name)
		}
		if len(s.AllocsPerOp) != len(s.TimeNsPerOp) || len(s.BytesPerOp) != len(s.TimeNsPerOp) {
			return fmt.Errorf("perf: series %q has mismatched sample counts (%d time, %d allocs, %d bytes)",
				s.Name, len(s.TimeNsPerOp), len(s.AllocsPerOp), len(s.BytesPerOp))
		}
		for _, samples := range [][]float64{s.TimeNsPerOp, s.AllocsPerOp, s.BytesPerOp} {
			for _, v := range samples {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return fmt.Errorf("perf: series %q has invalid sample %v", s.Name, v)
				}
			}
		}
	}
	return nil
}

// FindSeries returns the named series, or nil.
func (r *Result) FindSeries(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// Write serialises the result as indented JSON.
func (r *Result) Write(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the result to path.
func (r *Result) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses and validates a result.
func Read(rd io.Reader) (*Result, error) {
	var r Result
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadFile reads and validates the result at path.
func ReadFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
