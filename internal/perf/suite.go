package perf

import (
	"context"
	"fmt"
	"io"
	"regexp"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/budget"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/bb"
	"cgramap/internal/workload"
)

// SuiteOptions configures a suite run.
type SuiteOptions struct {
	// Label names the run (the BENCH_<label>.json convention).
	Label string
	// Short selects the reduced tier: gated series only (MRRG
	// generation and ILP formulation — the deterministic hot paths CI
	// gates on), smaller sampling budgets.
	Short bool
	// Samples per series; 0 selects 7 (5 in short mode).
	Samples int
	// MinSampleTime is the calibration floor per sample; 0 selects
	// 200ms (50ms in short mode).
	MinSampleTime time.Duration
	// Filter, when non-nil, restricts the run to matching series names.
	Filter *regexp.Regexp
	// SolveBudget bounds each iteration of the solver series; 0 selects
	// 30s.
	SolveBudget time.Duration
	// Workers sets the clause-sharing gang width of the parallel
	// mapauto series (0 selects 1 — the sequential scaling baseline).
	// The fixed-width solve-scale series ignore it.
	Workers int
}

// seriesSpec declares one suite entry. Gated series are the ones CI
// fails on; they must be deterministic enough (allocation counts,
// single-threaded construction code) for cross-run comparison.
type seriesSpec struct {
	name  string
	gated bool
	// shortTier marks the series as part of the reduced CI tier.
	shortTier bool
	setup     func(opts SuiteOptions) (op, error)
}

// formulationArch is the architecture the formulation series build
// against: the paper's 4x4 heterogeneous-capable grid with two contexts.
var formulationArch = arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2}

// suite returns the standard series set. MRRG generation and ILP
// formulation are gated (pure construction: deterministic allocations,
// stable timing); end-to-end solves are recorded for trajectory and
// engine counters but never gate, because CDCL search order makes their
// timing restart-noisy.
func suite() []seriesSpec {
	var specs []seriesSpec
	for _, gs := range []arch.GridSpec{
		{Rows: 4, Cols: 4, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1},
		{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 2},
		{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2},
	} {
		gs := gs
		specs = append(specs, seriesSpec{
			name:      "mrrg-gen/" + gs.Name(),
			gated:     true,
			shortTier: true,
			setup: func(SuiteOptions) (op, error) {
				a, err := arch.Grid(gs)
				if err != nil {
					return nil, err
				}
				return func() (map[string]int64, error) {
					_, err := mrrg.Generate(a)
					return nil, err
				}, nil
			},
		})
	}
	for _, kernel := range []string{"2x2-f", "accum", "extreme"} {
		kernel := kernel
		specs = append(specs, seriesSpec{
			name:      "formulate/" + kernel,
			gated:     true,
			shortTier: true,
			setup: func(SuiteOptions) (op, error) {
				a, err := arch.Grid(formulationArch)
				if err != nil {
					return nil, err
				}
				mg, err := mrrg.Generate(a)
				if err != nil {
					return nil, err
				}
				g, err := bench.Get(kernel)
				if err != nil {
					return nil, err
				}
				return func() (map[string]int64, error) {
					m, reason, err := mapper.BuildModel(g, mg, mapper.Options{})
					if err != nil {
						return nil, err
					}
					if m == nil {
						return nil, fmt.Errorf("unexpectedly infeasible: %s", reason)
					}
					return nil, nil
				}, nil
			},
		})
	}
	specs = append(specs,
		// The template/scratch twin pair measures what the artifact cache
		// buys on the formulation hot path: both build the same accum
		// model on the same fabric, but formulate/template stamps it from
		// a pre-warmed cached template (the per-II cost every ladder rung
		// after the first pays) while formulate/scratch re-derives the
		// II-independent analysis every iteration. Stamped models are
		// byte-identical to scratch ones, so the pair isolates pure
		// build-cost, not answer drift.
		formulateTwinSpec("formulate/template", true),
		formulateTwinSpec("formulate/scratch", false),
		// Generated-workload series (ungated for now: fresh code paths
		// establishing a trajectory before any CI gate).
		// gen/depth8_fanout3 measures the seeded DFG generator itself.
		seriesSpec{
			name: "gen/depth8_fanout3",
			setup: func(SuiteOptions) (op, error) {
				spec := workload.DFGSpec{Seed: 1, Ops: 32, Depth: 8, MaxFanout: 3, MulDensity: 0.25, Inputs: 8, Outputs: 4}
				return func() (map[string]int64, error) {
					_, err := workload.GenerateDFG(spec)
					return nil, err
				}, nil
			},
		},
		// frontier/8x8 measures the frontier path end to end on a probe
		// the counting presolve decides instantly: fabric build + MRRG
		// generation + formulation-free infeasibility proof, with no
		// restart-noisy CDCL search in the loop.
		seriesSpec{
			name: "frontier/8x8",
			setup: func(SuiteOptions) (op, error) {
				spec := workload.FrontierSpec{
					Family: workload.Dot,
					MinN:   17, // 35 I/O ops > the 8x8's 32 I/O blocks
					MaxN:   20,
					Fabrics: []workload.FabricSpec{
						{Rows: 8, Cols: 8, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1},
					},
				}
				return func() (map[string]int64, error) {
					front, err := workload.RunFrontier(context.Background(), spec, workload.FrontierOptions{})
					if err != nil {
						return nil, err
					}
					b := front.Boundaries[0]
					if b.MinInfeasibleN != spec.MinN {
						return nil, fmt.Errorf("expected presolve-infeasible at n=%d, got %+v", spec.MinN, b)
					}
					return nil, nil
				}, nil
			},
		},
		solveSpec("solve-cdcl/accum", "accum",
			arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1},
			mapper.Options{}),
		// Fixed-width scaling ladder: the same instance solved by gangs
		// of 1, 2 and 4 clause-sharing workers with a private budget, so
		// one result file exhibits the intra-run scaling curve. Seeded
		// for cross-run comparability; w1 doubles as a determinism
		// anchor (it must track solve-cdcl/accum's counters).
		solveScaleSpec(1), solveScaleSpec(2), solveScaleSpec(4),
		// mapAutoSpec follows SuiteOptions.Workers, so diffing a
		// Workers=1 file against a Workers=4 file measures the
		// speculative sweep + gang speedup end to end.
		mapAutoSpec(),
		// The incremental/scratch twin pair runs the same auto-II ladder
		// sequentially (Workers=1, fixed seed) with and without session
		// reuse, so one result file carries the incremental speedup and
		// CI can gate on its allocation profile: the sequential seeded
		// ladder is deterministic, and the gate diffs allocs, not the
		// restart-noisy wall clock.
		mapAutoLadderSpec("mapauto/incremental", true),
		mapAutoLadderSpec("mapauto/scratch", false),
		// The symmetry twin pair measures what lex-leader symmetry
		// breaking buys on a proving-dominated ladder: mac on the
		// homogeneous 3x3 grid must *prove* II=1 infeasible before
		// finding the II=2 optimum, and the infeasibility proof is where
		// collapsing the fabric's automorphism orbits pays. Sequential
		// and seeded like the other ladder twins, so the halves differ
		// only in the symmetry constraints.
		symmetryTwinSpec("mapauto/sym", mapper.SymmetryOn),
		symmetryTwinSpec("mapauto/nosym", mapper.SymmetryOff),
		// mapauto/cached is the third member of the ladder family: the
		// same sequential seeded mult_10 sweep as mapauto/scratch, but
		// run through a pre-warmed artifact cache, so every iteration
		// reuses cached MRRGs and the formulation template and pays only
		// stamping + solving. Diffing it against mapauto/scratch in one
		// result file shows the end-to-end artifact-cache speedup.
		mapAutoCachedSpec(),
		// BB cannot crack full mapping models within any sane budget
		// (the engine ablation shows mostly "T" cells), so its series
		// exercises the LP/branch-and-bound machinery on a synthetic
		// assignment model instead.
		seriesSpec{
			name: "solve-bb/assignment-8",
			setup: func(opts SuiteOptions) (op, error) {
				budget := opts.SolveBudget
				if budget <= 0 {
					budget = 30 * time.Second
				}
				return func() (map[string]int64, error) {
					m := assignmentModel(8)
					ctx, cancel := context.WithTimeout(context.Background(), budget)
					defer cancel()
					sol, err := bb.New().Solve(ctx, m)
					if err != nil {
						return nil, err
					}
					if sol.Status != ilp.Optimal {
						return nil, fmt.Errorf("expected an optimal assignment, got %v", sol.Status)
					}
					return sol.Stats, nil
				}, nil
			},
		},
	)
	return specs
}

// assignmentModel builds an n x n assignment problem: every row picks
// exactly one column, every column carries at most one row, minimising a
// fixed cost table. Deterministic by construction.
func assignmentModel(n int) *ilp.Model {
	m := ilp.NewModel(fmt.Sprintf("assignment-%d", n))
	vars := make([][]ilp.Var, n)
	for i := range vars {
		vars[i] = make([]ilp.Var, n)
		for j := range vars[i] {
			v := m.Binary(fmt.Sprintf("x[%d,%d]", i, j))
			vars[i][j] = v
			m.Objective = append(m.Objective, ilp.Term{Var: v, Coef: (i*7+j*3)%11 + 1})
		}
	}
	for i := 0; i < n; i++ {
		m.AddEQ("row", ilp.Sum(vars[i]...), 1)
		col := make([]ilp.Var, n)
		for j := 0; j < n; j++ {
			col[j] = vars[j][i]
		}
		m.AddLE("col", ilp.Sum(col...), 1)
	}
	return m
}

// solveScaleSpec builds one rung of the fixed-width scaling ladder: the
// accum kernel solved by a clause-sharing gang of w workers. The budget
// is private to the series so the rung measures a true w-gang regardless
// of what else the process caps workers at. Ungated: gang timing scales
// with the runner's core count by design.
func solveScaleSpec(w int) seriesSpec {
	gs := arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1}
	return seriesSpec{
		name: fmt.Sprintf("solve-scale/accum@w%d", w),
		setup: func(opts SuiteOptions) (op, error) {
			a, err := arch.Grid(gs)
			if err != nil {
				return nil, err
			}
			mg, err := mrrg.Generate(a)
			if err != nil {
				return nil, err
			}
			g, err := bench.Get("accum")
			if err != nil {
				return nil, err
			}
			solveBudget := opts.SolveBudget
			if solveBudget <= 0 {
				solveBudget = 30 * time.Second
			}
			mopts := mapper.Options{Workers: w, Seed: 1, Budget: budget.New(w)}
			return func() (map[string]int64, error) {
				ctx, cancel := context.WithTimeout(context.Background(), solveBudget)
				defer cancel()
				res, err := mapper.Map(ctx, g, mg, mopts)
				if err != nil {
					return nil, err
				}
				if !res.Feasible() {
					return nil, fmt.Errorf("expected a feasible mapping, got %v", res.Status)
				}
				return res.SolverStats, nil
			}, nil
		},
	}
}

// mapAutoSpec is the end-to-end auto-II series whose gang width follows
// SuiteOptions.Workers, so a Workers=1 result file diffed against a
// Workers=4 file measures the full parallel stack (speculative sweep +
// clause-sharing gangs) on the same instance. mult_10 on the
// heterogeneous grid is the classic MII-gated case: the sweep starts at
// II=2 and must prove feasibility there.
func mapAutoSpec() seriesSpec {
	gs := arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 1}
	return seriesSpec{
		name: "mapauto/mult_10",
		setup: func(opts SuiteOptions) (op, error) {
			a, err := arch.Grid(gs)
			if err != nil {
				return nil, err
			}
			g, err := bench.Get("mult_10")
			if err != nil {
				return nil, err
			}
			solveBudget := opts.SolveBudget
			if solveBudget <= 0 {
				solveBudget = 30 * time.Second
			}
			w := opts.Workers
			if w < 1 {
				w = 1
			}
			// Symmetry pinned off: this series isolates gang scaling.
			mopts := mapper.Options{Workers: w, Seed: 1, Symmetry: mapper.SymmetryOff, Budget: budget.New(w)}
			return func() (map[string]int64, error) {
				ctx, cancel := context.WithTimeout(context.Background(), solveBudget)
				defer cancel()
				res, err := mapper.MapAuto(ctx, g, a, 4, mopts)
				if err != nil {
					return nil, err
				}
				if !res.Feasible() || res.II != 2 {
					return nil, fmt.Errorf("expected mult_10 feasible at II=2, got II=%d %v", res.II, res.Status)
				}
				return res.SolverStats, nil
			}, nil
		},
	}
}

// mapAutoLadderSpec builds one half of the incremental/scratch twin
// pair: the mult_10 auto-II sweep on the heterogeneous grid (the
// MII-gated flagship the plain mapauto series also runs), solved
// sequentially (Workers=1, Seed=1) so both halves walk the exact same
// sweep and differ only in the engine: a fresh scratch solver per II
// versus one incremental session whose probing, learnt clauses and
// warm-started phases persist across the sweep. Gated on the short
// tier: sequential seeded solves are allocation-deterministic.
//
// Symmetry is pinned off so the pair keeps isolating the session-reuse
// variable: MapAuto's auto mode now adds lex-leader constraints, and on
// this single-rung SAT ladder they shift the seeded search trajectory
// (see mapauto/{sym,nosym} for the series that measures symmetry).
func mapAutoLadderSpec(name string, incremental bool) seriesSpec {
	gs := arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 1}
	return seriesSpec{
		name:      name,
		gated:     true,
		shortTier: true,
		setup: func(opts SuiteOptions) (op, error) {
			a, err := arch.Grid(gs)
			if err != nil {
				return nil, err
			}
			g, err := bench.Get("mult_10")
			if err != nil {
				return nil, err
			}
			solveBudget := opts.SolveBudget
			if solveBudget <= 0 {
				solveBudget = 30 * time.Second
			}
			mopts := mapper.Options{Workers: 1, Seed: 1, Incremental: incremental,
				Symmetry: mapper.SymmetryOff, Budget: budget.New(1)}
			return func() (map[string]int64, error) {
				ctx, cancel := context.WithTimeout(context.Background(), solveBudget)
				defer cancel()
				res, err := mapper.MapAuto(ctx, g, a, 4, mopts)
				if err != nil {
					return nil, err
				}
				if !res.Feasible() || res.II != 2 {
					return nil, fmt.Errorf("expected mult_10 feasible at II=2, got II=%d %v", res.II, res.Status)
				}
				return res.SolverStats, nil
			}, nil
		},
	}
}

// symmetryTwinSpec builds one half of the sym/nosym twin pair: the mac
// auto-II ladder on the homogeneous diagonal 3x3 grid (II=1 is
// infeasible and must be proven so; II=2 is optimal), solved
// sequentially with a fixed seed so the halves walk identical sweeps
// and differ only in whether the template carries lex-leader symmetry
// constraints. Gated on the short tier: like the incremental twins,
// the sequential seeded ladder is allocation-deterministic, and the
// gate diffs allocs rather than the restart-noisy wall clock.
func symmetryTwinSpec(name string, sym mapper.SymmetryMode) seriesSpec {
	gs := arch.GridSpec{Rows: 3, Cols: 3, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1}
	return seriesSpec{
		name:      name,
		gated:     true,
		shortTier: true,
		setup: func(opts SuiteOptions) (op, error) {
			a, err := arch.Grid(gs)
			if err != nil {
				return nil, err
			}
			g, err := bench.Get("mac")
			if err != nil {
				return nil, err
			}
			solveBudget := opts.SolveBudget
			if solveBudget <= 0 {
				solveBudget = 30 * time.Second
			}
			mopts := mapper.Options{Workers: 1, Seed: 1, Symmetry: sym, Budget: budget.New(1)}
			return func() (map[string]int64, error) {
				ctx, cancel := context.WithTimeout(context.Background(), solveBudget)
				defer cancel()
				res, err := mapper.MapAuto(ctx, g, a, 4, mopts)
				if err != nil {
					return nil, err
				}
				if !res.Feasible() || res.II != 2 {
					return nil, fmt.Errorf("expected mac feasible at II=2, got II=%d %v", res.II, res.Status)
				}
				return res.SolverStats, nil
			}, nil
		},
	}
}

// formulateTwinSpec builds one half of the template/scratch formulation
// pair: the accum model on the standard formulation fabric, stamped
// from a warm artifact cache (cached=true) or formulated from scratch
// every iteration (cached=false). Gated on the short tier like the
// other formulate series: pure construction, deterministic allocations.
func formulateTwinSpec(name string, cached bool) seriesSpec {
	return seriesSpec{
		name:      name,
		gated:     true,
		shortTier: true,
		setup: func(SuiteOptions) (op, error) {
			a, err := arch.Grid(formulationArch)
			if err != nil {
				return nil, err
			}
			mg, err := mrrg.Generate(a)
			if err != nil {
				return nil, err
			}
			g, err := bench.Get("accum")
			if err != nil {
				return nil, err
			}
			mopts := mapper.Options{}
			if cached {
				mopts.Artifacts = mapper.NewArtifactCache(4)
				// Warm the cache: the series then measures the steady
				// state — the stamp cost every ladder rung after the
				// first pays.
				if _, _, err := mapper.BuildModel(g, mg, mopts); err != nil {
					return nil, err
				}
			}
			return func() (map[string]int64, error) {
				m, reason, err := mapper.BuildModel(g, mg, mopts)
				if err != nil {
					return nil, err
				}
				if m == nil {
					return nil, fmt.Errorf("unexpectedly infeasible: %s", reason)
				}
				return nil, nil
			}, nil
		},
	}
}

// mapAutoCachedSpec is the artifact-cached variant of mapauto/scratch:
// the identical sequential seeded mult_10 sweep, run through a
// pre-warmed artifact cache shared across iterations.
func mapAutoCachedSpec() seriesSpec {
	gs := arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 1}
	return seriesSpec{
		name:      "mapauto/cached",
		gated:     true,
		shortTier: true,
		setup: func(opts SuiteOptions) (op, error) {
			a, err := arch.Grid(gs)
			if err != nil {
				return nil, err
			}
			g, err := bench.Get("mult_10")
			if err != nil {
				return nil, err
			}
			solveBudget := opts.SolveBudget
			if solveBudget <= 0 {
				solveBudget = 30 * time.Second
			}
			// Symmetry pinned off like the ladder twins this series is
			// diffed against: it isolates the artifact-cache variable.
			mopts := mapper.Options{Workers: 1, Seed: 1, Symmetry: mapper.SymmetryOff,
				Budget: budget.New(1), Artifacts: mapper.NewArtifactCache(8)}
			warmCtx, warmCancel := context.WithTimeout(context.Background(), solveBudget)
			defer warmCancel()
			if _, err := mapper.MapAuto(warmCtx, g, a, 4, mopts); err != nil {
				return nil, err
			}
			return func() (map[string]int64, error) {
				ctx, cancel := context.WithTimeout(context.Background(), solveBudget)
				defer cancel()
				res, err := mapper.MapAuto(ctx, g, a, 4, mopts)
				if err != nil {
					return nil, err
				}
				if !res.Feasible() || res.II != 2 {
					return nil, fmt.Errorf("expected mult_10 feasible at II=2, got II=%d %v", res.II, res.Status)
				}
				return res.SolverStats, nil
			}, nil
		},
	}
}

// solveSpec builds an ungated end-to-end solver series that records the
// engine's counters (decisions, propagations, conflicts, ...).
func solveSpec(name, kernel string, gs arch.GridSpec, mopts mapper.Options) seriesSpec {
	return seriesSpec{
		name: name,
		setup: func(opts SuiteOptions) (op, error) {
			a, err := arch.Grid(gs)
			if err != nil {
				return nil, err
			}
			mg, err := mrrg.Generate(a)
			if err != nil {
				return nil, err
			}
			g, err := bench.Get(kernel)
			if err != nil {
				return nil, err
			}
			budget := opts.SolveBudget
			if budget <= 0 {
				budget = 30 * time.Second
			}
			return func() (map[string]int64, error) {
				ctx, cancel := context.WithTimeout(context.Background(), budget)
				defer cancel()
				res, err := mapper.Map(ctx, g, mg, mopts)
				if err != nil {
					return nil, err
				}
				if !res.Feasible() {
					return nil, fmt.Errorf("expected a feasible mapping, got %v", res.Status)
				}
				return res.SolverStats, nil
			}, nil
		},
	}
}

// SeriesNames lists the suite's series for the given tier, in run order.
func SeriesNames(short bool) []string {
	var names []string
	for _, sp := range suite() {
		if short && !sp.shortTier {
			continue
		}
		names = append(names, sp.name)
	}
	return names
}

// RunSuite runs the benchmark suite and returns the collected result.
// Progress (one line per series) goes to progress when non-nil.
func RunSuite(ctx context.Context, opts SuiteOptions, progress io.Writer) (*Result, error) {
	samples := opts.Samples
	minTime := opts.MinSampleTime
	if samples <= 0 {
		samples = 7
		if opts.Short {
			samples = 5
		}
	}
	if minTime <= 0 {
		minTime = 200 * time.Millisecond
		if opts.Short {
			minTime = 50 * time.Millisecond
		}
	}
	res := NewResult(opts.Label, opts.Short)
	res.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	for _, sp := range suite() {
		if opts.Short && !sp.shortTier {
			continue
		}
		if opts.Filter != nil && !opts.Filter.MatchString(sp.name) {
			continue
		}
		o, err := sp.setup(opts)
		if err != nil {
			return nil, fmt.Errorf("perf: %s: %w", sp.name, err)
		}
		mopts := measureOptions{samples: samples, minSampleTime: minTime, maxIters: 1_000_000}
		start := time.Now()
		s, err := measure(ctx, sp.name, sp.gated, o, mopts)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			fmt.Fprintf(progress, "%-40s %4d samples x %6d iters   %12.0f ns/op %10.0f allocs/op   (%v)\n",
				sp.name, samples, s.Iters, Median(s.TimeNsPerOp), Median(s.AllocsPerOp), time.Since(start).Round(time.Millisecond))
		}
		res.Series = append(res.Series, s)
	}
	if len(res.Series) == 0 {
		return nil, fmt.Errorf("perf: no series matched")
	}
	return res, nil
}
