package perf

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Metric selects which per-op figure a comparison reads.
type Metric string

const (
	// MetricTime compares wall time per op. Machine-dependent: gate on
	// it only when baseline and candidate ran on comparable hardware.
	MetricTime Metric = "time"
	// MetricAllocs compares allocations per op. Deterministic for the
	// gated construction series, so it travels across machines — CI
	// gates on this one.
	MetricAllocs Metric = "allocs"
	// MetricBytes compares bytes allocated per op.
	MetricBytes Metric = "bytes"
)

// ParseMetrics parses a comma-separated metric list.
func ParseMetrics(s string) ([]Metric, error) {
	var ms []Metric
	for _, part := range strings.Split(s, ",") {
		switch m := Metric(strings.TrimSpace(part)); m {
		case MetricTime, MetricAllocs, MetricBytes:
			ms = append(ms, m)
		default:
			return nil, fmt.Errorf("perf: unknown metric %q (want time, allocs or bytes)", part)
		}
	}
	return ms, nil
}

func (s *Series) samples(m Metric) []float64 {
	switch m {
	case MetricTime:
		return s.TimeNsPerOp
	case MetricAllocs:
		return s.AllocsPerOp
	case MetricBytes:
		return s.BytesPerOp
	default:
		return nil
	}
}

// Verdict classifies one series/metric comparison.
type Verdict string

const (
	Improved  Verdict = "improved"
	Unchanged Verdict = "unchanged"
	Regressed Verdict = "regressed"
	// Missing means the series exists in the baseline but not in the
	// candidate run — a gated series going missing fails the diff
	// (silently dropping a benchmark must not read as a pass).
	Missing Verdict = "missing"
)

// DiffOptions tunes a comparison.
type DiffOptions struct {
	// Metrics to compare; default time+allocs.
	Metrics []Metric
	// Threshold is the fractional median change that counts as a
	// regression (and, symmetrically, as an improvement); default 0.25.
	Threshold float64
	// NoiseMADs scales the robust noise guard: a change must also
	// exceed NoiseMADs*(baseMAD+newMAD) to count, so a tight threshold
	// cannot flag jitter on fast series. Default 3. Applies to the time
	// metric only — allocation counts carry no scheduler noise.
	NoiseMADs float64
	// GatedOnly restricts the comparison to gated series.
	GatedOnly bool
}

func (o DiffOptions) withDefaults() DiffOptions {
	if len(o.Metrics) == 0 {
		o.Metrics = []Metric{MetricTime, MetricAllocs}
	}
	if o.Threshold == 0 {
		o.Threshold = 0.25
	}
	if o.NoiseMADs == 0 {
		o.NoiseMADs = 3
	}
	return o
}

// SeriesDelta is one series/metric comparison row.
type SeriesDelta struct {
	Name   string
	Metric Metric
	Gated  bool

	BaseMedian, NewMedian float64
	BaseMAD, NewMAD       float64
	// Change is the fractional median change (new-base)/base;
	// NaN when the baseline median is zero and the candidate's is not.
	Change  float64
	Verdict Verdict
}

// Report is the outcome of comparing two results.
type Report struct {
	BaseLabel, NewLabel string
	Threshold           float64
	Deltas              []SeriesDelta
	// NewSeries lists series present only in the candidate
	// (informational: a freshly added benchmark has no baseline yet).
	NewSeries []string
	// Failed is true when any gated series regressed or went missing.
	Failed bool
}

// Diff compares a candidate run against a baseline.
func Diff(base, cand *Result, opts DiffOptions) (*Report, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := cand.Validate(); err != nil {
		return nil, fmt.Errorf("candidate: %w", err)
	}
	opts = opts.withDefaults()
	rep := &Report{BaseLabel: base.Label, NewLabel: cand.Label, Threshold: opts.Threshold}
	for i := range base.Series {
		bs := &base.Series[i]
		if opts.GatedOnly && !bs.Gated {
			continue
		}
		cs := cand.FindSeries(bs.Name)
		for _, m := range opts.Metrics {
			d := SeriesDelta{Name: bs.Name, Metric: m, Gated: bs.Gated}
			if cs == nil {
				d.Verdict = Missing
				d.BaseMedian = Median(bs.samples(m))
				d.Change = math.NaN()
			} else {
				d = compareSeries(bs, cs, m, opts)
			}
			if d.Gated && (d.Verdict == Regressed || d.Verdict == Missing) {
				rep.Failed = true
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	for i := range cand.Series {
		if base.FindSeries(cand.Series[i].Name) == nil {
			rep.NewSeries = append(rep.NewSeries, cand.Series[i].Name)
		}
	}
	return rep, nil
}

// compareSeries applies the median + MAD decision rule to one metric.
func compareSeries(bs, cs *Series, m Metric, opts DiffOptions) SeriesDelta {
	b, c := bs.samples(m), cs.samples(m)
	d := SeriesDelta{
		Name: bs.Name, Metric: m, Gated: bs.Gated,
		BaseMedian: Median(b), NewMedian: Median(c),
		BaseMAD: MAD(b), NewMAD: MAD(c),
		Verdict: Unchanged,
	}
	change := d.NewMedian - d.BaseMedian
	if d.BaseMedian == 0 {
		// Zero-baseline guard: no finite relative change exists. A
		// zero-to-nonzero move is still a real regression (e.g. an
		// alloc-free path starting to allocate).
		if d.NewMedian == 0 {
			d.Change = 0
			return d
		}
		d.Change = math.NaN()
		d.Verdict = Regressed
		return d
	}
	d.Change = change / d.BaseMedian
	// Noise guard: on the time metric, require the shift to clear the
	// combined spread of both runs (a zero-variance baseline degrades
	// this to the plain threshold test).
	guard := 0.0
	if m == MetricTime {
		guard = opts.NoiseMADs * (d.BaseMAD + d.NewMAD)
	}
	switch {
	case d.Change > opts.Threshold && change > guard:
		d.Verdict = Regressed
	case d.Change < -opts.Threshold && -change > guard:
		d.Verdict = Improved
	}
	return d
}

// WriteMarkdown renders the report as a markdown document (the CI
// artifact and the human-readable summary).
func (r *Report) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# benchreg: %s vs %s\n\n", r.NewLabel, r.BaseLabel)
	fmt.Fprintf(w, "Regression threshold: %.0f%% on the median; gated series fail the diff.\n\n", r.Threshold*100)
	fmt.Fprintln(w, "| series | metric | gated | base median | new median | change | verdict |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|---:|---|")
	for _, d := range r.Deltas {
		gate := ""
		if d.Gated {
			gate = "yes"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s |\n",
			d.Name, d.Metric, gate,
			formatValue(d.Metric, d.BaseMedian), formatValue(d.Metric, d.NewMedian),
			formatChange(d.Change), verdictCell(d))
	}
	if len(r.NewSeries) > 0 {
		fmt.Fprintf(w, "\nNew series without a baseline: %s\n", strings.Join(r.NewSeries, ", "))
	}
	fmt.Fprintf(w, "\nResult: **%s**\n", map[bool]string{false: "PASS", true: "FAIL"}[r.Failed])
	return nil
}

func verdictCell(d SeriesDelta) string {
	switch d.Verdict {
	case Regressed:
		if d.Gated {
			return "**REGRESSED**"
		}
		return "regressed (ungated)"
	case Missing:
		if d.Gated {
			return "**MISSING**"
		}
		return "missing (ungated)"
	case Improved:
		return "improved"
	default:
		return "ok"
	}
}

func formatValue(m Metric, v float64) string {
	switch m {
	case MetricTime:
		switch {
		case v >= 1e9:
			return fmt.Sprintf("%.2fs", v/1e9)
		case v >= 1e6:
			return fmt.Sprintf("%.2fms", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.1fµs", v/1e3)
		default:
			return fmt.Sprintf("%.0fns", v)
		}
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func formatChange(c float64) string {
	if math.IsNaN(c) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", c*100)
}
