package perf

import "testing"

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5, 100}, 5}, // one outlier cannot move it
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
	// Median must not reorder the caller's slice.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestMAD(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5, 5, 5}, 0},
		{[]float64{1, 2, 3}, 1},
		{[]float64{5, 5, 5, 5, 100}, 0}, // robust to the outlier
	}
	for _, c := range cases {
		if got := MAD(c.xs); got != c.want {
			t.Errorf("MAD(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}
