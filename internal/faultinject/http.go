package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HTTPOptions configures service-level fault injection: the failure
// modes a mapping daemon's clients actually see in production — slow
// networks, flaky load balancers answering 5xx, dropped connections,
// and responses cut off mid-body. Each class fires independently per
// request with its own probability; everything is seeded so chaos runs
// are reproducible.
type HTTPOptions struct {
	// Latency is the added delay when the latency fault fires (default
	// 20ms when LatencyProb > 0).
	Latency time.Duration
	// LatencyProb is the per-request probability of added latency.
	LatencyProb float64
	// ErrorProb synthesizes a gateway-style 5xx response (502/503/504)
	// without the request reaching the inner transport/handler — the
	// retryable class a flaky load balancer serves up.
	ErrorProb float64
	// DropProb fails the exchange like a dropped connection: a transport
	// error client-side, an aborted connection server-side.
	DropProb float64
	// TruncateProb cuts the response body short, so readers observe an
	// unexpected EOF.
	TruncateProb float64
	// Seed seeds the fault lottery (0 selects a fixed default).
	Seed int64
}

func (o *HTTPOptions) fill() {
	if o.Latency == 0 {
		o.Latency = 20 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ParseHTTPOptions parses a compact comma-separated spec, the form the
// daemon's -chaos flag takes, e.g.
//
//	"error=0.1,drop=0.05,truncate=0.1,latency=20ms,latency-p=0.3,seed=7"
func ParseHTTPOptions(spec string) (HTTPOptions, error) {
	var o HTTPOptions
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return o, fmt.Errorf("faultinject: %q is not key=value", field)
		}
		var err error
		switch k {
		case "latency":
			o.Latency, err = time.ParseDuration(v)
		case "latency-p":
			o.LatencyProb, err = strconv.ParseFloat(v, 64)
		case "error":
			o.ErrorProb, err = strconv.ParseFloat(v, 64)
		case "drop":
			o.DropProb, err = strconv.ParseFloat(v, 64)
		case "truncate":
			o.TruncateProb, err = strconv.ParseFloat(v, 64)
		case "seed":
			o.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return o, fmt.Errorf("faultinject: unknown chaos key %q", k)
		}
		if err != nil {
			return o, fmt.Errorf("faultinject: parsing %q: %v", field, err)
		}
	}
	return o, nil
}

// httpRoll is one request's fault draw.
type httpRoll struct {
	latency   time.Duration
	drop      bool
	errCode   int     // 0 = none
	truncFrac float64 // < 0 = none; else fraction of the body to keep
}

// httpLottery is the shared seeded fault chooser behind the round
// tripper and the middleware. Safe for concurrent use.
type httpLottery struct {
	opts HTTPOptions

	mu    sync.Mutex
	rng   *rand.Rand
	calls int64
	fired map[string]int64
}

func newHTTPLottery(opts HTTPOptions) *httpLottery {
	opts.fill()
	return &httpLottery{
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		fired: make(map[string]int64),
	}
}

var injectedCodes = []int{
	http.StatusBadGateway,
	http.StatusServiceUnavailable,
	http.StatusGatewayTimeout,
}

func (l *httpLottery) roll() httpRoll {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.calls++
	r := httpRoll{truncFrac: -1}
	if l.rng.Float64() < l.opts.LatencyProb {
		r.latency = l.opts.Latency
		l.fired["latency"]++
	}
	if l.rng.Float64() < l.opts.DropProb {
		r.drop = true
		l.fired["drop"]++
	}
	if l.rng.Float64() < l.opts.ErrorProb {
		r.errCode = injectedCodes[l.rng.Intn(len(injectedCodes))]
		l.fired["error"]++
	}
	if l.rng.Float64() < l.opts.TruncateProb {
		r.truncFrac = l.rng.Float64()
		l.fired["truncate"]++
	}
	return r
}

func (l *httpLottery) snapshot() (calls int64, fired map[string]int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fired = make(map[string]int64, len(l.fired))
	for k, v := range l.fired {
		fired[k] = v
	}
	return l.calls, fired
}

// HTTPInjector is an http.RoundTripper decorator injecting the
// HTTPOptions fault classes into a client's exchanges. It proves,
// end to end, that the service client's retry/backoff/breaker layer
// converges through the failures a real deployment serves up.
type HTTPInjector struct {
	inner http.RoundTripper
	lot   *httpLottery
}

var _ http.RoundTripper = (*HTTPInjector)(nil)

// NewHTTPInjector wraps inner (nil selects http.DefaultTransport).
func NewHTTPInjector(inner http.RoundTripper, opts HTTPOptions) *HTTPInjector {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &HTTPInjector{inner: inner, lot: newHTTPLottery(opts)}
}

// Calls returns how many requests the injector has seen.
func (in *HTTPInjector) Calls() int64 {
	calls, _ := in.lot.snapshot()
	return calls
}

// Fired returns a copy of the per-fault fire counts, keyed by class.
func (in *HTTPInjector) Fired() map[string]int64 {
	_, fired := in.lot.snapshot()
	return fired
}

// RoundTrip injects the rolled faults around the inner transport.
func (in *HTTPInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	r := in.lot.roll()
	if r.latency > 0 {
		t := time.NewTimer(r.latency)
		select {
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		case <-t.C:
		}
	}
	if r.drop {
		// The request may or may not have reached the server in a real
		// drop; modelling "never sent" exercises the ambiguity clients
		// must tolerate either way.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: injected connection drop (%s %s)", req.Method, req.URL.Path)
	}
	if r.errCode != 0 {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		body := fmt.Sprintf("faultinject: injected %d", r.errCode)
		return &http.Response{
			StatusCode:    r.errCode,
			Status:        fmt.Sprintf("%d %s", r.errCode, http.StatusText(r.errCode)),
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := in.inner.RoundTrip(req)
	if err != nil || resp == nil || r.truncFrac < 0 {
		return resp, err
	}
	resp.Body = &truncatedBody{inner: resp.Body, frac: r.truncFrac}
	return resp, nil
}

// truncatedBody serves a fraction of the inner body, then reports an
// unexpected EOF — what a reader sees when the peer vanishes mid-body.
type truncatedBody struct {
	inner io.ReadCloser
	frac  float64

	buf  []byte
	pos  int
	read bool
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if !t.read {
		t.read = true
		all, err := io.ReadAll(t.inner)
		if err != nil {
			return 0, err
		}
		t.buf = all[:int(float64(len(all))*t.frac)]
	}
	if t.pos >= len(t.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, t.buf[t.pos:])
	t.pos += n
	return n, nil
}

func (t *truncatedBody) Close() error { return t.inner.Close() }

// HTTPMiddleware wraps an http.Handler with the same fault classes on
// the server side, so a daemon can be run "behind" the injector (the
// -chaos flag of cmd/cgramapd): added latency, synthesized 5xx, aborted
// connections, truncated response bodies.
func HTTPMiddleware(next http.Handler, opts HTTPOptions) http.Handler {
	lot := newHTTPLottery(opts)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := lot.roll()
		if r.latency > 0 {
			t := time.NewTimer(r.latency)
			select {
			case <-req.Context().Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		if r.drop {
			// Abort the connection without a response; the client sees
			// EOF, like a crashed or LB-killed backend.
			panic(http.ErrAbortHandler)
		}
		if r.errCode != 0 {
			http.Error(w, fmt.Sprintf("faultinject: injected %d", r.errCode), r.errCode)
			return
		}
		if r.truncFrac >= 0 {
			rec := &recordingWriter{header: make(http.Header)}
			next.ServeHTTP(rec, req)
			for k, v := range rec.header {
				w.Header()[k] = v
			}
			// Advertise the full length, deliver a prefix, then kill the
			// connection: readers observe an unexpected EOF.
			w.Header().Set("Content-Length", strconv.Itoa(len(rec.body)))
			w.WriteHeader(rec.code())
			w.Write(rec.body[:int(float64(len(rec.body))*r.truncFrac)])
			if f, ok := w.(http.Flusher); ok {
				// Push the prefix onto the wire before aborting, so the
				// client observes a mid-body EOF rather than no response.
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, req)
	})
}

// recordingWriter buffers a handler's response so the middleware can
// replay a truncated prefix of it.
type recordingWriter struct {
	header     http.Header
	statusCode int
	body       []byte
}

func (r *recordingWriter) Header() http.Header { return r.header }

func (r *recordingWriter) WriteHeader(code int) {
	if r.statusCode == 0 {
		r.statusCode = code
	}
}

func (r *recordingWriter) Write(p []byte) (int, error) {
	r.WriteHeader(http.StatusOK)
	r.body = append(r.body, p...)
	return len(p), nil
}

func (r *recordingWriter) code() int {
	if r.statusCode == 0 {
		return http.StatusOK
	}
	return r.statusCode
}
