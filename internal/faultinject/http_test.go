package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseHTTPOptions(t *testing.T) {
	o, err := ParseHTTPOptions("error=0.1,drop=0.05,truncate=0.2,latency=30ms,latency-p=0.3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if o.ErrorProb != 0.1 || o.DropProb != 0.05 || o.TruncateProb != 0.2 ||
		o.Latency != 30*time.Millisecond || o.LatencyProb != 0.3 || o.Seed != 7 {
		t.Fatalf("parsed %+v", o)
	}
	if _, err := ParseHTTPOptions("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseHTTPOptions("error=notafloat"); err == nil {
		t.Error("bad float accepted")
	}
	if _, err := ParseHTTPOptions("error"); err == nil {
		t.Error("missing value accepted")
	}
	if o, err := ParseHTTPOptions(""); err != nil || o != (HTTPOptions{}) {
		t.Errorf("empty spec: %+v, %v", o, err)
	}
}

func injectorBackend(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "hello from the backend")
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestHTTPInjectorError(t *testing.T) {
	var hits atomic.Int64
	ts := injectorBackend(t, &hits)
	in := NewHTTPInjector(nil, HTTPOptions{ErrorProb: 1})
	c := &http.Client{Transport: in}

	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 500 {
		t.Fatalf("status = %d, want injected 5xx", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Error("injected error still reached the backend")
	}
	if in.Calls() != 1 || in.Fired()["error"] != 1 {
		t.Errorf("calls=%d fired=%v", in.Calls(), in.Fired())
	}
}

func TestHTTPInjectorDrop(t *testing.T) {
	var hits atomic.Int64
	ts := injectorBackend(t, &hits)
	in := NewHTTPInjector(nil, HTTPOptions{DropProb: 1})
	c := &http.Client{Transport: in}

	_, err := c.Get(ts.URL)
	if err == nil || !strings.Contains(err.Error(), "injected connection drop") {
		t.Fatalf("got %v, want injected drop error", err)
	}
	if in.Fired()["drop"] != 1 {
		t.Errorf("fired=%v", in.Fired())
	}
}

func TestHTTPInjectorTruncate(t *testing.T) {
	var hits atomic.Int64
	ts := injectorBackend(t, &hits)
	in := NewHTTPInjector(nil, HTTPOptions{TruncateProb: 1})
	c := &http.Client{Transport: in}

	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read returned %v, want unexpected EOF", err)
	}
	if len(body) >= len("hello from the backend") {
		t.Errorf("body %q not truncated", body)
	}
	if hits.Load() != 1 {
		t.Errorf("backend hits = %d, want 1 (truncation happens after the exchange)", hits.Load())
	}
}

func TestHTTPInjectorLatency(t *testing.T) {
	var hits atomic.Int64
	ts := injectorBackend(t, &hits)
	in := NewHTTPInjector(nil, HTTPOptions{LatencyProb: 1, Latency: 50 * time.Millisecond})
	c := &http.Client{Transport: in}

	start := time.Now()
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Errorf("request took %v, want >= ~50ms injected latency", elapsed)
	}
}

func TestHTTPInjectorSeededReproducible(t *testing.T) {
	run := func() []string {
		in := NewHTTPInjector(http.RoundTripper(roundTripFunc(func(req *http.Request) (*http.Response, error) {
			return &http.Response{StatusCode: 200, Body: io.NopCloser(strings.NewReader("ok")), Request: req}, nil
		})), HTTPOptions{ErrorProb: 0.3, DropProb: 0.3, Seed: 99})
		c := &http.Client{Transport: in}
		var outcomes []string
		for i := 0; i < 50; i++ {
			resp, err := c.Get("http://fake.invalid/")
			switch {
			case err != nil:
				outcomes = append(outcomes, "drop")
			case resp.StatusCode >= 500:
				resp.Body.Close()
				outcomes = append(outcomes, "5xx")
			default:
				resp.Body.Close()
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a[i], b[i])
		}
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

func middlewareServer(t *testing.T, opts HTTPOptions) *httptest.Server {
	t.Helper()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello from the handler")
	})
	ts := httptest.NewServer(HTTPMiddleware(inner, opts))
	t.Cleanup(ts.Close)
	return ts
}

func TestHTTPMiddlewareError(t *testing.T) {
	ts := middlewareServer(t, HTTPOptions{ErrorProb: 1})
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 500 {
		t.Fatalf("status = %d, want injected 5xx", resp.StatusCode)
	}
}

func TestHTTPMiddlewareDrop(t *testing.T) {
	ts := middlewareServer(t, HTTPOptions{DropProb: 1})
	resp, err := http.Get(ts.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatal("dropped connection still produced a response")
	}
}

func TestHTTPMiddlewareTruncate(t *testing.T) {
	ts := middlewareServer(t, HTTPOptions{TruncateProb: 1})
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("full body %q read through a truncating middleware", body)
	}
	if len(body) >= len("hello from the handler") {
		t.Errorf("body %q not truncated", body)
	}
}
