package faultinject_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/faultinject"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/cdcl"
)

func instance(t testing.TB) (*ilp.Model, funcMap) {
	t.Helper()
	g, err := bench.Get("2x2-f")
	if err != nil {
		t.Fatal(err)
	}
	a, err := arch.Grid(arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	model, reason, err := mapper.BuildModel(g, mg, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatalf("instance infeasible at build time: %s", reason)
	}
	return model, func(ctx context.Context, opts mapper.Options) (*mapper.Result, error) {
		return mapper.Map(ctx, g, mg, opts)
	}
}

type funcMap func(ctx context.Context, opts mapper.Options) (*mapper.Result, error)

func TestDelayRespectsCancellation(t *testing.T) {
	model, _ := instance(t)
	inj := faultinject.New(cdcl.New(), faultinject.Options{Faults: faultinject.Delay, DelayFor: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	sol, err := inj.Solve(ctx, model)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delayed solve ignored cancellation")
	}
	if sol.Status != ilp.Unknown || sol.Stats["cancelled"] != 1 {
		t.Fatalf("got %v %v, want Unknown with cancelled stat", sol.Status, sol.Stats)
	}
}

func TestPanicFires(t *testing.T) {
	model, _ := instance(t)
	inj := faultinject.New(cdcl.New(), faultinject.Options{Faults: faultinject.Panic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("injected panic did not fire")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "injected panic") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	_, _ = inj.Solve(context.Background(), model)
}

func TestCancelEarlyYieldsUnknown(t *testing.T) {
	model, _ := instance(t)
	inj := faultinject.New(cdcl.New(), faultinject.Options{Faults: faultinject.CancelEarly})
	sol, err := inj.Solve(context.Background(), model)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Unknown || sol.Stats["cancelled"] != 1 {
		t.Fatalf("got %v %v, want Unknown with cancelled stat", sol.Status, sol.Stats)
	}
}

func TestCallAndFireCounters(t *testing.T) {
	model, _ := instance(t)
	inj := faultinject.New(cdcl.New(), faultinject.Options{Faults: faultinject.CorruptFlip})
	for i := 0; i < 3; i++ {
		if _, err := inj.Solve(context.Background(), model); err != nil {
			t.Fatal(err)
		}
	}
	if inj.Calls() != 3 {
		t.Errorf("Calls() = %d, want 3", inj.Calls())
	}
	if got := inj.Fired()["corrupt-flip"]; got != 3 {
		t.Errorf(`Fired()["corrupt-flip"] = %d, want 3`, got)
	}
}

// TestCorruptedSolutionsNeverReportedFeasible is the harness's central
// property: across many corruption seeds, a bit-flipped or truncated
// assignment either fails the mapper's decode/Verify gate (Map errors
// out) or — when the flips happen to land on redundant routing bits —
// still decodes to a mapping that independently passes Verify. A
// feasible result with an invalid mapping must never escape.
func TestCorruptedSolutionsNeverReportedFeasible(t *testing.T) {
	_, mapIt := instance(t)
	modes := []struct {
		name   string
		faults faultinject.Fault
	}{
		{"flip", faultinject.CorruptFlip},
		{"truncate", faultinject.CorruptTruncate},
		{"flip+truncate", faultinject.CorruptFlip | faultinject.CorruptTruncate},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			rejected := 0
			for seed := int64(1); seed <= 25; seed++ {
				inj := faultinject.New(cdcl.New(), faultinject.Options{
					Faults:   mode.faults,
					Seed:     seed,
					MaxFlips: 8,
				})
				res, err := mapIt(context.Background(), mapper.Options{Solver: inj})
				if err != nil {
					rejected++ // decode/Verify gate caught the corruption
					continue
				}
				if !res.Feasible() {
					continue
				}
				if res.Mapping == nil {
					t.Fatalf("seed %d: feasible result with nil mapping", seed)
				}
				if verr := res.Mapping.Verify(); verr != nil {
					t.Fatalf("seed %d: corrupted mapping reported feasible: %v", seed, verr)
				}
			}
			if mode.faults&faultinject.CorruptTruncate != 0 && rejected != 25 {
				// Truncation always changes the assignment length, so
				// the decode length guard must catch every one.
				t.Errorf("rejected %d/25 truncated solutions, want 25", rejected)
			}
			if rejected == 0 {
				t.Errorf("no corrupted solution was rejected across 25 seeds — gate looks dead")
			}
		})
	}
}

// TestCorruptPure pins Corrupt's contract: the input is never modified,
// flips change at least one bit, truncation always shortens.
func TestCorruptPure(t *testing.T) {
	orig := make(ilp.Assignment, 64)
	for i := range orig {
		orig[i] = i%3 == 0
	}
	snapshot := make(ilp.Assignment, len(orig))
	copy(snapshot, orig)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		flipped := faultinject.Corrupt(orig, faultinject.CorruptFlip, rng, 4)
		if len(flipped) != len(orig) {
			t.Fatalf("flip changed length: %d", len(flipped))
		}
		diff := 0
		for j := range orig {
			if orig[j] != flipped[j] {
				diff++
			}
		}
		if diff == 0 {
			t.Fatal("flip corrupted nothing")
		}
		truncated := faultinject.Corrupt(orig, faultinject.CorruptTruncate, rng, 4)
		if len(truncated) >= len(orig) {
			t.Fatalf("truncate did not shorten: %d", len(truncated))
		}
		for j := range orig {
			if orig[j] != snapshot[j] {
				t.Fatal("Corrupt modified its input")
			}
		}
	}
}
