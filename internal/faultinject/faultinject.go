// Package faultinject provides an ilp.Solver decorator that injects
// configurable faults — delays, spurious panics, premature cancellation,
// and corrupted assignments (bit-flipped or truncated solutions) — into
// an otherwise-correct engine.
//
// It exists to prove, end to end, that everything above the solver seam
// degrades instead of breaking: the mapper's decode/Verify gate must
// reject every corrupted solution, the experiment sweeps must keep going
// past a wedged or crashing instance, and the portfolio orchestrator must
// contain panics and retry transient stalls. The injector is safe for
// concurrent use (the portfolio races solvers on parallel goroutines).
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cgramap/internal/ilp"
)

// Fault is a bit set of fault classes to inject.
type Fault uint

const (
	// Delay sleeps before delegating to the inner solver (respecting
	// context cancellation), simulating a stalled engine.
	Delay Fault = 1 << iota
	// Panic panics instead of solving, simulating an engine bug.
	Panic
	// CancelEarly runs the inner solver under an already-cancelled
	// context, simulating a premature deadline.
	CancelEarly
	// CorruptFlip flips random bits of a feasible assignment.
	CorruptFlip
	// CorruptTruncate drops trailing entries of a feasible assignment.
	CorruptTruncate
)

// names lists every fault with its diagnostic label, in bit order.
var names = []struct {
	f    Fault
	name string
}{
	{Delay, "delay"},
	{Panic, "panic"},
	{CancelEarly, "cancel-early"},
	{CorruptFlip, "corrupt-flip"},
	{CorruptTruncate, "corrupt-truncate"},
}

// String names the fault set.
func (f Fault) String() string {
	s := ""
	for _, n := range names {
		if f&n.f != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// Options configures an Injector.
type Options struct {
	// Faults enables fault classes.
	Faults Fault
	// Prob is the per-call probability that each enabled fault fires
	// (0 defaults to 1: always fire).
	Prob float64
	// Seed seeds the fault lottery (0 selects a fixed default).
	Seed int64
	// DelayFor is the Delay duration (0 defaults to 50ms).
	DelayFor time.Duration
	// MaxFlips bounds CorruptFlip's bit flips per solution (0 defaults
	// to 4; at least one bit is always flipped when the fault fires).
	MaxFlips int
}

func (o *Options) fill() {
	if o.Prob == 0 {
		o.Prob = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DelayFor == 0 {
		o.DelayFor = 50 * time.Millisecond
	}
	if o.MaxFlips == 0 {
		o.MaxFlips = 4
	}
}

// Injector decorates an ilp.Solver with fault injection. It implements
// ilp.Solver and is safe for concurrent use.
type Injector struct {
	inner ilp.Solver
	opts  Options

	mu    sync.Mutex
	rng   *rand.Rand
	calls int64
	fired map[string]int64
}

var _ ilp.Solver = (*Injector)(nil)

// New wraps inner with the configured faults.
func New(inner ilp.Solver, opts Options) *Injector {
	opts.fill()
	return &Injector{
		inner: inner,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		fired: make(map[string]int64),
	}
}

// Calls returns how many Solve calls the injector has seen.
func (in *Injector) Calls() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// Fired returns a copy of the per-fault fire counts, keyed by fault name.
func (in *Injector) Fired() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

// roll decides which enabled faults fire for one call and hands back a
// private rng stream for corruption choices.
func (in *Injector) roll() (fired Fault, rng *rand.Rand) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls++
	for _, n := range names {
		if in.opts.Faults&n.f == 0 {
			continue
		}
		if in.rng.Float64() < in.opts.Prob {
			fired |= n.f
			in.fired[n.name]++
		}
	}
	return fired, rand.New(rand.NewSource(in.rng.Int63()))
}

// Solve injects the rolled faults around the inner engine's Solve.
func (in *Injector) Solve(ctx context.Context, m *ilp.Model) (*ilp.Solution, error) {
	fired, rng := in.roll()

	if fired&Delay != 0 {
		t := time.NewTimer(in.opts.DelayFor)
		select {
		case <-ctx.Done():
			t.Stop()
			return &ilp.Solution{Status: ilp.Unknown, Stats: map[string]int64{"cancelled": 1}}, nil
		case <-t.C:
		}
	}
	if fired&Panic != 0 {
		panic(fmt.Sprintf("faultinject: injected panic (model %s)", m.Name))
	}
	if fired&CancelEarly != 0 {
		early, cancel := context.WithCancel(ctx)
		cancel()
		ctx = early
	}

	sol, err := in.inner.Solve(ctx, m)
	if err != nil || sol == nil || sol.Assignment == nil {
		return sol, err
	}
	if fired&(CorruptFlip|CorruptTruncate) != 0 {
		// Corrupt a copy so the inner engine's own state stays intact.
		corrupted := *sol
		corrupted.Assignment = Corrupt(sol.Assignment, fired, rng, in.opts.MaxFlips)
		return &corrupted, nil
	}
	return sol, nil
}

// Corrupt returns a corrupted copy of a: CorruptFlip flips 1..maxFlips
// random bits, CorruptTruncate drops at least one trailing entry. Other
// bits of mode are ignored. The input assignment is never modified.
func Corrupt(a ilp.Assignment, mode Fault, rng *rand.Rand, maxFlips int) ilp.Assignment {
	out := make(ilp.Assignment, len(a))
	copy(out, a)
	if mode&CorruptFlip != 0 && len(out) > 0 {
		if maxFlips < 1 {
			maxFlips = 1
		}
		for i, n := 0, 1+rng.Intn(maxFlips); i < n; i++ {
			v := rng.Intn(len(out))
			out[v] = !out[v]
		}
	}
	if mode&CorruptTruncate != 0 && len(out) > 0 {
		out = out[:rng.Intn(len(out))]
	}
	return out
}
