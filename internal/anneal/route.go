package anneal

import (
	"container/heap"
	"math"
	"sort"

	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// unroutedPenalty is the cost charged per sub-value the router failed to
// connect; it dominates any real route length so the anneal always
// prefers routable configurations.
const unroutedPenalty = 10000

// ripUp removes a value's routes and usage contributions.
func (s *state) ripUp(valID int) {
	if s.routes == nil {
		return
	}
	for _, n := range s.unionNodes(valID) {
		s.usage[n]--
	}
	for k := range s.routes[valID] {
		s.routes[valID][k] = nil
	}
}

// unionNodes returns the union of nodes over a value's sub-routes.
func (s *state) unionNodes(valID int) []int {
	seen := map[int]bool{}
	var out []int
	for _, nodes := range s.routes[valID] {
		for _, n := range nodes {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// rerouteAll rips up and re-routes every value in a deterministic order.
func (s *state) rerouteAll() {
	s.routes = make([][][]int, s.g.NumVals())
	s.usage = make([]int, len(s.mg.Nodes))
	for _, v := range s.g.Vals() {
		s.routes[v.ID] = make([][]int, len(v.Uses))
	}
	for _, v := range s.g.Vals() {
		s.route(v.ID)
	}
}

// route (re)builds the routing tree of one value: one shortest path per
// sub-value from the producer's output node to a compatible operand port
// of the sink's FU, where nodes already used by this value are free
// (tree sharing) and nodes used by other values cost extra (congestion
// negotiation). Terminal ports already claimed by a sibling sub-value of
// the same value are excluded so both operands of x*x land on distinct
// ports.
func (s *state) route(valID int) {
	v := s.g.Vals()[valID]
	src := s.mg.Nodes[s.place[v.Def.ID]].OutNode
	inTree := map[int]bool{}
	claimedPorts := map[int]bool{}
	for k, u := range v.Uses {
		sinkFU := s.place[u.Op.ID]
		path := s.shortestPath(src, inTree, valID, func(n *mrrg.Node) bool {
			return n.OperandPort >= 0 && n.FUNode == sinkFU &&
				s.mg.CompatibleSink(n, u.Op, u.Operand) && !claimedPorts[n.ID]
		})
		if path == nil {
			s.routes[valID][k] = nil
			continue
		}
		claimedPorts[path[len(path)-1]] = true
		// The sub-route is the new path plus the shared prefix: for
		// verification purposes each sub-route must contain a full
		// source-to-sink path, so include the tree nodes it grafted
		// onto.
		full := append([]int(nil), path...)
		for n := range inTree {
			full = append(full, n)
		}
		sort.Ints(full)
		s.routes[valID][k] = dedupe(full)
		for _, n := range path {
			inTree[n] = true
		}
	}
	for _, n := range s.unionNodes(valID) {
		s.usage[n]++
	}
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, n := range sorted {
		if i == 0 || n != sorted[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	x := old[len(old)-1]
	*q = old[:len(old)-1]
	return x
}

// shortestPath runs congestion-weighted Dijkstra over routing nodes from
// src (or any node already in this value's tree) to the first node
// satisfying goal. It returns the node path including the start node, or
// nil.
func (s *state) shortestPath(src int, inTree map[int]bool, valID int, goal func(*mrrg.Node) bool) []int {
	dist := map[int]float64{}
	prev := map[int]int{}
	var q pq
	push := func(n int, d float64) {
		if old, ok := dist[n]; !ok || d < old {
			dist[n] = d
			heap.Push(&q, pqItem{n, d})
		}
	}
	push(src, 0)
	for n := range inTree {
		push(n, 0)
		prev[n] = -1
	}
	prev[src] = -1
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.node]+1e-12 {
			continue // stale entry
		}
		node := s.mg.Nodes[it.node]
		if goal(node) {
			return s.walkBack(prev, it.node)
		}
		for _, f := range node.Fanouts {
			fn := s.mg.Nodes[f]
			if fn.Kind != mrrg.RouteRes {
				continue
			}
			c := s.nodeCost(f, valID)
			if old, ok := dist[f]; !ok || it.dist+c < old {
				dist[f] = it.dist + c
				prev[f] = it.node
				heap.Push(&q, pqItem{f, it.dist + c})
			}
		}
	}
	return nil
}

// nodeCost prices a routing node: base cost, inflated when other values
// already use it (present-sharing congestion penalty).
func (s *state) nodeCost(n, valID int) float64 {
	others := s.usage[n]
	cost := float64(s.mg.Nodes[n].Cost)
	if others > 0 {
		if s.penalty >= blockPenalty {
			return math.Inf(1)
		}
		cost += s.penalty * float64(others)
	}
	return cost
}

// blockPenalty marks the final clean-up pass where overuse is forbidden
// outright.
const blockPenalty = 1e7

func (s *state) walkBack(prev map[int]int, end int) []int {
	var path []int
	for n := end; n != -1; n = prev[n] {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// cost is the annealing energy: route lengths plus congestion and
// failure penalties, plus placement collisions.
func (s *state) cost() float64 {
	total := 0.0
	for n, u := range s.usage {
		c := float64(s.mg.Nodes[n].Cost)
		total += c * float64(u)
		if u > 1 {
			total += unroutedPenalty / 4 * float64(u-1)
		}
	}
	for _, v := range s.g.Vals() {
		for _, nodes := range s.routes[v.ID] {
			if nodes == nil {
				total += unroutedPenalty
			}
		}
	}
	// Placement collisions (two ops on one FU).
	byFU := map[int]int{}
	for _, op := range s.g.Ops() {
		byFU[s.place[op.ID]]++
	}
	for _, n := range byFU {
		if n > 1 {
			total += unroutedPenalty * float64(n-1)
		}
	}
	return total
}

// legalNow reports whether the current state is a fully legal mapping.
func (s *state) legalNow() bool {
	byFU := map[int]bool{}
	for _, op := range s.g.Ops() {
		p := s.place[op.ID]
		if byFU[p] {
			return false
		}
		byFU[p] = true
	}
	for n, u := range s.usage {
		_ = n
		if u > 1 {
			return false
		}
	}
	for _, v := range s.g.Vals() {
		for _, nodes := range s.routes[v.ID] {
			if nodes == nil {
				return false
			}
		}
	}
	return true
}

// toMapping exports the state as a mapper.Mapping.
func (s *state) toMapping() *mapper.Mapping {
	m := &mapper.Mapping{
		DFG:       s.g,
		MRRG:      s.mg,
		Placement: append([]int(nil), s.place...),
		Routes:    make([][][]int, s.g.NumVals()),
	}
	for _, v := range s.g.Vals() {
		m.Routes[v.ID] = make([][]int, len(v.Uses))
		for k, nodes := range s.routes[v.ID] {
			m.Routes[v.ID][k] = append([]int(nil), nodes...)
		}
	}
	return m
}
