package anneal

import (
	"context"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/mrrg"
)

func gridMRRG(t *testing.T, spec arch.GridSpec) *mrrg.Graph {
	t.Helper()
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAnnealFindsEasyMapping(t *testing.T) {
	mg := gridMRRG(t, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	g := bench.MustGet("2x2-f")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Map(ctx, g, mg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("2x2-f on the most flexible architecture not found (cost %v after %d moves)", res.Cost, res.Moves)
	}
	// Mapping was verified inside Map; double-check.
	if err := res.Mapping.Verify(); err != nil {
		t.Error(err)
	}
}

func TestAnnealUnsupportedKind(t *testing.T) {
	mg := gridMRRG(t, arch.GridSpec{Rows: 2, Cols: 2, Contexts: 1})
	g := dfg.New("d")
	x := g.In("x")
	op, _ := g.AddOp("d", dfg.Div, x, x)
	g.Out("o", op.Out)
	res, err := Map(context.Background(), g, mg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("div mapped despite no supporting FU")
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	mg := gridMRRG(t, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1})
	g := bench.MustGet("accum")
	ctx := context.Background()
	r1, err := Map(ctx, g, mg, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Map(ctx, bench.MustGet("accum"), mg, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Feasible != r2.Feasible || r1.Moves != r2.Moves || r1.Cost != r2.Cost {
		t.Errorf("same seed diverged: %+v vs %+v", r1, r2)
	}
}

func TestAnnealRespectsContext(t *testing.T) {
	mg := gridMRRG(t, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	g := bench.MustGet("weighted_sum")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := Map(ctx, g, mg, Options{}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancelled anneal ran on")
	}
}

// TestAnnealProducesVerifiedMappingOrNothing: across several benchmarks
// and seeds, every feasible result must pass independent verification
// (Map errors out otherwise, so reaching the assertion means it held).
func TestAnnealSweepSmall(t *testing.T) {
	mg := gridMRRG(t, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	found := 0
	for _, name := range []string{"accum", "2x2-f", "2x2-p", "add_10"} {
		res, err := Map(context.Background(), bench.MustGet(name), mg, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Feasible {
			found++
		}
	}
	if found == 0 {
		t.Error("annealer found no mapping on the easiest architecture")
	}
}
