package anneal

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// randomKernel builds a small random DFG over ALU-mappable operations.
func randomKernel(seed int64, maxOps int) *dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dfg.New("rk")
	nIn := 1 + rng.Intn(3)
	vals := make([]*dfg.Value, 0, 16)
	for i := 0; i < nIn; i++ {
		vals = append(vals, g.In(fmt.Sprintf("in%d", i)))
	}
	kinds := []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Xor, dfg.And, dfg.Shr}
	nOps := rng.Intn(maxOps)
	for i := 0; i < nOps; i++ {
		k := kinds[rng.Intn(len(kinds))]
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		op, err := g.AddOp(fmt.Sprintf("op%d", i), k, a, b)
		if err != nil {
			panic(err)
		}
		vals = append(vals, op.Out)
	}
	g.Out("out", vals[len(vals)-1])
	return g
}

// TestPropertyHeuristicNeverBeatsProof: if the annealer finds a mapping,
// the ILP mapper cannot have proven the instance infeasible — an SA
// success is a constructive existence proof.
func TestPropertyHeuristicNeverBeatsProof(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 3, Cols: 3, Interconnect: arch.Orthogonal, Homogeneous: false, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		g := randomKernel(seed, 4)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ilpRes, err := mapper.Map(ctx, g, mg, mapper.Options{})
		if err != nil {
			t.Logf("seed %d: ilp: %v", seed, err)
			return false
		}
		saRes, err := Map(ctx, g, mg, Options{Seed: seed + 1, MovesPerTemp: 150})
		if err != nil {
			t.Logf("seed %d: sa: %v", seed, err)
			return false
		}
		if saRes.Feasible && ilpRes.Status == ilp.Infeasible {
			t.Logf("seed %d: SA mapped an instance the ILP proved infeasible", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
