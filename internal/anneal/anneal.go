// Package anneal implements the simulated-annealing CGRA mapper used as
// the comparison baseline in the paper's Fig. 8. It follows the
// DRESC/SPR lineage the paper describes: operations are placed on
// functional-unit nodes and moved/swapped under a Metropolis acceptance
// rule with a geometric cooling schedule, while values are routed over
// the MRRG by congestion-negotiated shortest paths (PathFinder-style
// present-sharing penalties that stiffen as the anneal cools).
//
// Being a heuristic, it can fail to find mappings that exist — which is
// exactly the gap the paper's ILP mapper quantifies.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// Options are the annealing parameters. The zero value selects the
// "moderate parameters" defaults used for the Fig. 8 reproduction.
type Options struct {
	// Seed seeds the random source (0 selects a fixed default).
	Seed int64
	// MovesPerTemp is the inner-loop move count per temperature step.
	MovesPerTemp int
	// InitialTemp, Cooling and MinTemp define the geometric schedule.
	InitialTemp float64
	Cooling     float64
	MinTemp     float64
	// OverusePenalty is the starting congestion penalty; it grows each
	// temperature step.
	OverusePenalty float64
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MovesPerTemp == 0 {
		o.MovesPerTemp = 400
	}
	if o.InitialTemp == 0 {
		o.InitialTemp = 30
	}
	if o.Cooling == 0 {
		o.Cooling = 0.85
	}
	if o.MinTemp == 0 {
		o.MinTemp = 0.05
	}
	if o.OverusePenalty == 0 {
		o.OverusePenalty = 2
	}
}

// Result reports one annealing run.
type Result struct {
	// Feasible is true when a fully legal mapping was found (verified
	// independently by mapper.Mapping.Verify).
	Feasible bool
	// Mapping is the legal mapping (nil unless Feasible).
	Mapping *mapper.Mapping
	// Cost is the final annealing cost (routing + penalties).
	Cost float64
	// Moves and Accepted count annealing moves.
	Moves, Accepted int
	// Status aligns the heuristic with the ILP engines' solve statuses
	// so orchestrators (internal/portfolio) can treat all strategies
	// uniformly: Feasible when a legal mapping was found, Unknown
	// otherwise — a heuristic can prove neither infeasibility nor
	// optimality.
	Status ilp.Status
	// Stats carries counters ("moves", "accepted") plus "cancelled"
	// when the context ended the schedule early — the same cancellation
	// convention the cdcl and bb engines use.
	Stats map[string]int64
}

// finish stamps the unified status/stat fields before returning r.
func (r *Result) finish(cancelled bool) *Result {
	if r.Feasible {
		r.Status = ilp.Feasible
	} else {
		r.Status = ilp.Unknown
	}
	r.Stats = map[string]int64{"moves": int64(r.Moves), "accepted": int64(r.Accepted)}
	if cancelled {
		r.Stats["cancelled"] = 1
	}
	return r
}

// state is the annealing state: a (possibly illegal) placement plus
// negotiated routes.
type state struct {
	g   *dfg.Graph
	mg  *mrrg.Graph
	rng *rand.Rand

	legal   [][]int // op -> candidate FU nodes
	place   []int   // op -> FU node
	fuOwner map[int]int

	// routes[val][k]: node set for the sub-value, nil when unroutable.
	routes [][][]int
	// usage[node]: number of distinct values using the node.
	usage []int

	penalty float64
}

// Map runs the annealer. It returns an infeasible Result (not an error)
// when no legal mapping was found within the schedule.
func Map(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts Options) (*Result, error) {
	opts.fill()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("anneal: invalid DFG: %w", err)
	}
	if ctx.Err() != nil {
		return (&Result{}).finish(true), nil
	}
	s := &state{
		g:   g,
		mg:  mg,
		rng: rand.New(rand.NewSource(opts.Seed)),
	}
	if err := s.computeLegal(); err != nil {
		return (&Result{}).finish(false), nil //nolint:nilerr // unmappable kind: heuristic just fails
	}
	s.randomPlacement()
	s.penalty = opts.OverusePenalty
	s.rerouteAll()
	cost := s.cost()

	res := &Result{}
	for temp := opts.InitialTemp; temp > opts.MinTemp; temp *= opts.Cooling {
		for i := 0; i < opts.MovesPerTemp; i++ {
			if ctx.Err() != nil {
				return res.finish(true), nil
			}
			res.Moves++
			undo, touched := s.randomMove()
			if undo == nil {
				continue
			}
			for _, v := range touched {
				s.ripUp(v)
			}
			for _, v := range touched {
				s.route(v)
			}
			newCost := s.cost()
			delta := newCost - cost
			if delta <= 0 || s.rng.Float64() < math.Exp(-delta/temp) {
				res.Accepted++
				cost = newCost
			} else {
				undo()
				for _, v := range touched {
					s.ripUp(v)
				}
				for _, v := range touched {
					s.route(v)
				}
				cost = s.cost()
			}
		}
		// Stiffen congestion penalties and renegotiate all routes
		// (PathFinder-style).
		s.penalty *= 1.5
		s.rerouteAll()
		cost = s.cost()
		if s.legalNow() {
			break
		}
	}
	res.Cost = cost
	if !s.legalNow() {
		return res.finish(false), nil
	}
	m := s.toMapping()
	if err := m.Verify(); err != nil {
		// A mapping the verifier rejects is a bug, not a heuristic
		// miss.
		return nil, fmt.Errorf("anneal: produced invalid mapping: %w", err)
	}
	res.Feasible = true
	res.Mapping = m
	return res.finish(false), nil
}

func (s *state) computeLegal() error {
	s.legal = make([][]int, s.g.NumOps())
	for _, op := range s.g.Ops() {
		for _, p := range s.mg.FuncUnits() {
			if s.mg.Nodes[p].SupportsOp(op.Kind) {
				s.legal[op.ID] = append(s.legal[op.ID], p)
			}
		}
		if len(s.legal[op.ID]) == 0 {
			return fmt.Errorf("no FU supports %s", op.Kind)
		}
	}
	return nil
}

// randomPlacement assigns every op a random legal FU without collisions
// (greedy with retries; collisions that cannot be avoided leave the op on
// an occupied FU, to be repaired by annealing moves).
func (s *state) randomPlacement() {
	s.place = make([]int, s.g.NumOps())
	s.fuOwner = make(map[int]int)
	for _, op := range s.g.Ops() {
		placed := false
		for try := 0; try < 30 && !placed; try++ {
			p := s.legal[op.ID][s.rng.Intn(len(s.legal[op.ID]))]
			if _, busy := s.fuOwner[p]; !busy {
				s.place[op.ID] = p
				s.fuOwner[p] = op.ID
				placed = true
			}
		}
		if !placed {
			p := s.legal[op.ID][s.rng.Intn(len(s.legal[op.ID]))]
			s.place[op.ID] = p // collision: cost will punish it
		}
	}
}

// randomMove moves a random op to a random other legal FU, swapping when
// the target is occupied and the swap is legal both ways. It returns an
// undo closure and the IDs of values whose routes are affected, or nil
// when no move was possible.
func (s *state) randomMove() (undo func(), touched []int) {
	op := s.g.Ops()[s.rng.Intn(s.g.NumOps())]
	cands := s.legal[op.ID]
	target := cands[s.rng.Intn(len(cands))]
	cur := s.place[op.ID]
	if target == cur {
		return nil, nil
	}
	otherID, occupied := s.fuOwner[target]
	if occupied {
		other := s.g.Ops()[otherID]
		if !s.mg.Nodes[cur].SupportsOp(other.Kind) {
			return nil, nil
		}
		s.place[op.ID], s.place[otherID] = target, cur
		s.fuOwner[target], s.fuOwner[cur] = op.ID, otherID
		undo = func() {
			s.place[op.ID], s.place[otherID] = cur, target
			s.fuOwner[target], s.fuOwner[cur] = otherID, op.ID
		}
		touched = s.incidentVals(op, other)
	} else {
		s.place[op.ID] = target
		delete(s.fuOwner, cur)
		s.fuOwner[target] = op.ID
		undo = func() {
			s.place[op.ID] = cur
			delete(s.fuOwner, target)
			s.fuOwner[cur] = op.ID
		}
		touched = s.incidentVals(op)
	}
	return undo, touched
}

// incidentVals returns the IDs of values produced or consumed by the ops.
func (s *state) incidentVals(ops ...*dfg.Op) []int {
	seen := map[int]bool{}
	var vals []int
	add := func(v *dfg.Value) {
		if v != nil && !seen[v.ID] {
			seen[v.ID] = true
			vals = append(vals, v.ID)
		}
	}
	for _, op := range ops {
		add(op.Out)
		for _, v := range op.In {
			add(v)
		}
	}
	return vals
}
