package arch

import (
	"fmt"

	"cgramap/internal/dfg"
)

// Interconnect selects the inter-block routing style of a grid
// architecture (paper §5).
type Interconnect int

const (
	// Orthogonal connects each block to its four nearest neighbours
	// (paper Fig. 6).
	Orthogonal Interconnect = iota
	// Diagonal adds connectivity to the four diagonal neighbours,
	// widening each block's input multiplexers.
	Diagonal
)

// String returns "orth" or "diag".
func (ic Interconnect) String() string {
	if ic == Diagonal {
		return "diag"
	}
	return "orth"
}

// GridSpec parameterises the family of test architectures from the
// paper's experimental study: an RxC array of functional blocks
// (Fig. 3) with peripheral I/O and one shared memory port per row
// (Fig. 6).
type GridSpec struct {
	// Rows and Cols give the array dimensions (the paper uses 4x4).
	Rows, Cols int
	// Interconnect selects Orthogonal or Diagonal connectivity.
	Interconnect Interconnect
	// Homogeneous gives every ALU a multiplier; otherwise only the
	// checkerboard half of the blocks can multiply (Heterogeneous).
	Homogeneous bool
	// Contexts is the number of execution contexts (1 or 2 in the
	// paper; II equals the context count).
	Contexts int
	// Torus wraps the block-to-block interconnect around the array
	// edges (an extension beyond the paper's architectures, for
	// architecture-exploration studies).
	Torus bool
	// MemPortEvery places one shared memory port every k rows instead
	// of the paper's one per row (Fig. 6): rows r, r+1, ..., r+k-1
	// share the port of row r. Values <= 1 keep the paper's layout.
	// Larger strides model memory-poor fabrics for
	// mappability-frontier studies.
	MemPortEvery int
}

// memStride normalises MemPortEvery to a stride >= 1.
func (s GridSpec) memStride() int {
	if s.MemPortEvery < 1 {
		return 1
	}
	return s.MemPortEvery
}

// memHome returns the row whose memory port serves row r.
func (s GridSpec) memHome(r int) int { return r - r%s.memStride() }

// Name derives a canonical architecture name, e.g. "homo-diag-c2-4x4".
func (s GridSpec) Name() string {
	fb := "hetero"
	if s.Homogeneous {
		fb = "homo"
	}
	torus := ""
	if s.Torus {
		torus = "-torus"
	}
	mem := ""
	if s.memStride() > 1 {
		mem = fmt.Sprintf("-mem%d", s.memStride())
	}
	return fmt.Sprintf("%s-%s%s-c%d-%dx%d%s", fb, s.Interconnect, torus, s.Contexts, s.Rows, s.Cols, mem)
}

// PaperArchitectures returns the eight architecture configurations of the
// paper's Table 2, in the table's column order: single context
// {Hetero-Orth, Hetero-Diag, Homo-Orth, Homo-Diag}, then the same four
// with two contexts.
func PaperArchitectures() []GridSpec {
	var specs []GridSpec
	for _, contexts := range []int{1, 2} {
		for _, homo := range []bool{false, true} {
			for _, ic := range []Interconnect{Orthogonal, Diagonal} {
				specs = append(specs, GridSpec{
					Rows: 4, Cols: 4,
					Interconnect: ic,
					Homogeneous:  homo,
					Contexts:     contexts,
				})
			}
		}
	}
	return specs
}

// baseALUOps are the RISC-like operations every functional block supports
// (paper Fig. 3: "add, mul, shl, etc." — multiplication is added
// separately depending on the Homogeneous axis).
var baseALUOps = []dfg.Kind{
	dfg.Add, dfg.Sub, dfg.Shl, dfg.Shr, dfg.And, dfg.Or, dfg.Xor, dfg.Not,
}

// aluOps returns the operation set of the block at (r, c).
func (s GridSpec) aluOps(r, c int) []dfg.Kind {
	ops := append([]dfg.Kind(nil), baseALUOps...)
	if s.Homogeneous || (r+c)%2 == 0 {
		ops = append(ops, dfg.Mul)
	}
	return ops
}

// HasMultiplier reports whether the block at (r, c) contains a multiplier
// under this spec.
func (s GridSpec) HasMultiplier(r, c int) bool {
	return s.Homogeneous || (r+c)%2 == 0
}

// Grid builds the architecture described by spec.
//
// Per functional block (paper Fig. 3): two operand input multiplexers
// feeding an ALU with latency 0; an output register whose write
// multiplexer selects the ALU result or any block input; and an output
// multiplexer selecting the ALU result or the register. There is no
// combinational input-to-output bypass: forwarding a neighbour's value
// through a block ("router mode") captures it in the register and
// occupies the block's single output bus — the resource tension that
// makes single-context mapping hard in the paper's Table 2.
//
// Periphery (paper Fig. 6): one I/O block per edge-adjacent array
// position (16 for a 4x4 array), each wired to the up-to-three nearest
// edge blocks of its side; one memory port per row, modelled as a
// load/store functional unit whose two operand multiplexers select among
// the row's block outputs and whose result fans back to every block in
// the row.
func Grid(spec GridSpec) (*Arch, error) {
	if spec.Rows < 1 || spec.Cols < 1 {
		return nil, fmt.Errorf("arch: grid %dx%d invalid", spec.Rows, spec.Cols)
	}
	if spec.Contexts < 1 {
		return nil, fmt.Errorf("arch: grid with %d contexts invalid", spec.Contexts)
	}
	b := NewBuilder(spec.Name(), spec.Contexts)

	type pe struct {
		muxA, muxB, muxR, muxOut, alu, reg PrimID
	}
	pes := make([][]pe, spec.Rows)
	idx := func(r, c int) int { return r*spec.Cols + c }
	peOut := func(r, c int) string { return fmt.Sprintf("pe_%d_%d.mux_out", r, c) }
	peReg := func(r, c int) string { return fmt.Sprintf("pe_%d_%d.reg", r, c) }

	// Peripheral I/O adjacency: each I/O block serves the up-to-three
	// nearest blocks of its edge. ioPEs[ioName] lists (r, c) of served
	// blocks; peIOs mirrors it per block.
	ioPEs := make(map[string][][2]int)
	peIOs := make([][][]string, spec.Rows)
	for r := range peIOs {
		peIOs[r] = make([][]string, spec.Cols)
	}
	clip := func(i, n int) bool { return i >= 0 && i < n }
	addIO := func(name string, r, c int) {
		ioPEs[name] = append(ioPEs[name], [2]int{r, c})
		peIOs[r][c] = append(peIOs[r][c], name)
	}
	var ioNames []string
	for c := 0; c < spec.Cols; c++ {
		name := fmt.Sprintf("io_top_%d", c)
		ioNames = append(ioNames, name)
		for d := -1; d <= 1; d++ {
			if clip(c+d, spec.Cols) {
				addIO(name, 0, c+d)
			}
		}
	}
	for r := 0; r < spec.Rows; r++ {
		name := fmt.Sprintf("io_right_%d", r)
		ioNames = append(ioNames, name)
		for d := -1; d <= 1; d++ {
			if clip(r+d, spec.Rows) {
				addIO(name, r+d, spec.Cols-1)
			}
		}
	}
	for c := 0; c < spec.Cols; c++ {
		name := fmt.Sprintf("io_bot_%d", c)
		ioNames = append(ioNames, name)
		for d := -1; d <= 1; d++ {
			if clip(c+d, spec.Cols) {
				addIO(name, spec.Rows-1, c+d)
			}
		}
	}
	for r := 0; r < spec.Rows; r++ {
		name := fmt.Sprintf("io_left_%d", r)
		ioNames = append(ioNames, name)
		for d := -1; d <= 1; d++ {
			if clip(r+d, spec.Rows) {
				addIO(name, r+d, 0)
			}
		}
	}

	// Routing inputs of each block: neighbouring block outputs, served
	// I/O blocks, and the row's memory port result.
	inputsOf := make([][]string, spec.Rows*spec.Cols)
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			var in []string
			type nb struct{ dr, dc int }
			nbs := []nb{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
			if spec.Interconnect == Diagonal {
				nbs = append(nbs, nb{-1, -1}, nb{-1, 1}, nb{1, -1}, nb{1, 1})
			}
			seen := map[string]bool{}
			for _, n := range nbs {
				nr, nc := r+n.dr, c+n.dc
				if spec.Torus {
					nr = (nr + spec.Rows) % spec.Rows
					nc = (nc + spec.Cols) % spec.Cols
					if nr == r && nc == c {
						continue // degenerate wrap on tiny grids
					}
				} else if !clip(nr, spec.Rows) || !clip(nc, spec.Cols) {
					continue
				}
				name := peOut(nr, nc)
				if !seen[name] {
					seen[name] = true
					in = append(in, name)
				}
			}
			for _, io := range peIOs[r][c] {
				in = append(in, io+".fu")
			}
			in = append(in, fmt.Sprintf("mem_%d.fu", spec.memHome(r)))
			inputsOf[idx(r, c)] = in
		}
	}

	// Create primitives: I/O blocks, memory ports, then functional
	// blocks.
	for _, name := range ioNames {
		b.Mux(name+".mux", len(ioPEs[name]))
		b.FU(name+".fu", []dfg.Kind{dfg.Input, dfg.Output}, 1, 0, 1)
	}
	// One memory port per stride of rows; its operand muxes select
	// among every block output of its served rows.
	stride := spec.memStride()
	servedRows := func(pr int) int {
		n := spec.Rows - pr
		if n > stride {
			n = stride
		}
		return n
	}
	memMuxA := make([]PrimID, spec.Rows)
	memMuxB := make([]PrimID, spec.Rows)
	memFU := make([]PrimID, spec.Rows)
	for pr := 0; pr < spec.Rows; pr += stride {
		base := fmt.Sprintf("mem_%d", pr)
		nIn := spec.Cols * servedRows(pr)
		memMuxA[pr] = b.Mux(base+".mux_addr", nIn)
		memMuxB[pr] = b.Mux(base+".mux_data", nIn)
		memFU[pr] = b.FU(base+".fu", []dfg.Kind{dfg.Load, dfg.Store}, 2, 0, 1)
	}
	for r := 0; r < spec.Rows; r++ {
		pes[r] = make([]pe, spec.Cols)
		for c := 0; c < spec.Cols; c++ {
			base := fmt.Sprintf("pe_%d_%d", r, c)
			nIn := len(inputsOf[idx(r, c)])
			pes[r][c] = pe{
				muxA:   b.Mux(base+".mux_a", nIn+1),
				muxB:   b.Mux(base+".mux_b", nIn+1),
				alu:    b.FU(base+".alu", spec.aluOps(r, c), 2, 0, 1),
				muxR:   b.Mux(base+".mux_r", nIn+1),
				reg:    b.Reg(base + ".reg"),
				muxOut: b.Mux(base+".mux_out", 2),
			}
		}
	}

	// Connections.
	prim := func(name string) PrimID {
		id, ok := b.arch.byName[name]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("grid: unknown primitive %q", name))
			return -1
		}
		return PrimID(id)
	}
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			p := pes[r][c]
			in := inputsOf[idx(r, c)]
			for i, s := range in {
				b.Connect(prim(s), p.muxA, i)
				b.Connect(prim(s), p.muxB, i)
				b.Connect(prim(s), p.muxR, i+1)
			}
			reg := prim(peReg(r, c))
			b.Connect(reg, p.muxA, len(in))
			b.Connect(reg, p.muxB, len(in))
			b.Connect(p.muxA, p.alu, 0)
			b.Connect(p.muxB, p.alu, 1)
			b.Connect(p.alu, p.muxR, 0)
			b.Connect(p.muxR, p.reg, 0)
			b.Connect(p.alu, p.muxOut, 0)
			b.Connect(reg, p.muxOut, 1)
		}
	}
	// I/O blocks consume from their served blocks through their input
	// mux.
	for _, name := range ioNames {
		mux := prim(name + ".mux")
		for i, rc := range ioPEs[name] {
			b.Connect(prim(peOut(rc[0], rc[1])), mux, i)
		}
		b.Connect(mux, prim(name+".fu"), 0)
	}
	// Memory port operand muxes select among the served rows' block
	// outputs.
	for pr := 0; pr < spec.Rows; pr += stride {
		for dr := 0; dr < servedRows(pr); dr++ {
			for c := 0; c < spec.Cols; c++ {
				b.Connect(pes[pr+dr][c].muxOut, memMuxA[pr], dr*spec.Cols+c)
				b.Connect(pes[pr+dr][c].muxOut, memMuxB[pr], dr*spec.Cols+c)
			}
		}
		b.Connect(memMuxA[pr], memFU[pr], 0)
		b.Connect(memMuxB[pr], memFU[pr], 1)
	}
	return b.Build()
}
