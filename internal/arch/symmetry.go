package arch

import (
	"regexp"
	"sort"
	"strconv"

	"cgramap/internal/dfg"
)

// Automorphism is a verified structural symmetry of an architecture: a
// permutation of the primitive netlist that preserves every primitive's
// behavioural parameters and the entire connection structure. Applying
// it to any valid mapping yields another valid mapping, which is what
// makes automorphisms usable for symmetry-breaking constraints
// (ROADMAP item 3) — equivalence classes of mappings collapse to one
// representative.
type Automorphism struct {
	// Name identifies the generating transform, e.g. "reflect-rows".
	Name string
	// Perm maps each primitive index to its image: Prims[Perm[i]] is
	// where primitive i lands.
	Perm []int
	// PortPerm, for multiplexer primitives whose input ports are
	// reordered by the automorphism, maps each input port of primitive
	// i to the port of Perm[i] that receives the image of its driver.
	// A nil entry means the identity port map. Functional-unit ports
	// carry operand semantics and are never permuted.
	PortPerm [][]int
}

// Apply returns the image primitive index of i.
func (a *Automorphism) Apply(i int) int { return a.Perm[i] }

// Port returns the input port of Perm[i] corresponding to port p of
// primitive i.
func (a *Automorphism) Port(i, p int) int {
	if a.PortPerm[i] == nil {
		return p
	}
	return a.PortPerm[i][p]
}

// Symmetries is the verified automorphism group of an architecture,
// represented by its generators, together with the primitive orbits of
// the generated group.
type Symmetries struct {
	// Gens are the verified generators, in deterministic discovery
	// order.
	Gens []Automorphism

	orbitRep []int   // per primitive: largest index in its orbit
	orbits   [][]int // sorted orbits, ordered by smallest member
}

// OrbitRep returns the canonical representative of primitive i's orbit
// under the generated group: the largest primitive index in the orbit.
// (The mapper's lexicographic tie-break orders placement slots by
// ascending index and prefers the single set bit as late as possible,
// so the lex-minimal member of a placement orbit sits on the
// largest-index primitive — the representative must agree or orbit
// fixing and lex-leader constraints would contradict each other.)
func (s *Symmetries) OrbitRep(i int) int { return s.orbitRep[i] }

// Orbits returns every orbit with more than one member, each sorted
// ascending, ordered by smallest member.
func (s *Symmetries) Orbits() [][]int { return s.orbits }

// Trivial reports whether no symmetry was verified.
func (s *Symmetries) Trivial() bool { return len(s.Gens) == 0 }

// gridCoord is a (possibly virtual) grid coordinate. Functional blocks
// occupy rows 0..R-1 and columns 0..C-1; peripheral I/O blocks occupy
// the virtual border rows -1 (top) and R (bottom) and columns -1
// (left) and C (right), which lets one affine transform move blocks
// and periphery together: reflecting the columns of the array maps the
// left edge onto the right edge.
type gridCoord struct{ r, c int }

// gridLayout is the coordinate structure recovered from primitive
// names.
type gridLayout struct {
	rows, cols int
	blockAt    map[gridCoord]string // block name by (virtual) coordinate
	memRows    []int                // sorted home rows of memory ports
	prims      []parsedPrim
}

type parsedPrim struct {
	isMem  bool
	coord  gridCoord // pe/io blocks
	memRow int       // mem blocks
	suffix string    // ".mux_a", ".fu", ... (includes the dot)
}

var (
	rePE  = regexp.MustCompile(`^pe_(\d+)_(\d+)$`)
	reIO  = regexp.MustCompile(`^io_(top|bot|left|right)_(\d+)$`)
	reMem = regexp.MustCompile(`^mem_(\d+)$`)
)

// parseGrid recovers grid coordinates from the naming convention of the
// grid composer (grid.go). It returns nil when any primitive falls
// outside the convention — symmetry candidates are then unavailable
// and discovery reports no symmetry rather than guessing.
func parseGrid(a *Arch) *gridLayout {
	g := &gridLayout{blockAt: make(map[gridCoord]string), prims: make([]parsedPrim, len(a.Prims))}
	maxR, maxC := -1, -1
	memSeen := map[int]bool{}
	for i, p := range a.Prims {
		dot := -1
		for j := 0; j < len(p.Name); j++ {
			if p.Name[j] == '.' {
				dot = j
				break
			}
		}
		if dot < 0 {
			return nil
		}
		block, suffix := p.Name[:dot], p.Name[dot:]
		pp := parsedPrim{suffix: suffix}
		if m := rePE.FindStringSubmatch(block); m != nil {
			r, _ := strconv.Atoi(m[1])
			c, _ := strconv.Atoi(m[2])
			pp.coord = gridCoord{r, c}
			if r > maxR {
				maxR = r
			}
			if c > maxC {
				maxC = c
			}
			g.blockAt[pp.coord] = block
		} else if m := reMem.FindStringSubmatch(block); m != nil {
			r, _ := strconv.Atoi(m[1])
			pp.isMem = true
			pp.memRow = r
			memSeen[r] = true
		} else if reIO.MatchString(block) {
			// Virtual coordinates are resolved after rows/cols are
			// known; record the block name for the second pass.
			pp.coord = gridCoord{-2, -2}
		} else {
			return nil
		}
		g.prims[i] = pp
	}
	if maxR < 0 || maxC < 0 {
		return nil
	}
	g.rows, g.cols = maxR+1, maxC+1
	for i, p := range a.Prims {
		pp := &g.prims[i]
		if pp.coord != (gridCoord{-2, -2}) {
			continue
		}
		block := p.Name[:len(p.Name)-len(pp.suffix)]
		m := reIO.FindStringSubmatch(block)
		n, _ := strconv.Atoi(m[2])
		switch m[1] {
		case "top":
			pp.coord = gridCoord{-1, n}
		case "bot":
			pp.coord = gridCoord{g.rows, n}
		case "left":
			pp.coord = gridCoord{n, -1}
		case "right":
			pp.coord = gridCoord{n, g.cols}
		}
		g.blockAt[pp.coord] = block
	}
	for r := range memSeen {
		g.memRows = append(g.memRows, r)
	}
	sort.Ints(g.memRows)
	return g
}

// memHomeFor returns the memory-port home row covering row r, or -1.
func (g *gridLayout) memHomeFor(r int) int {
	home := -1
	for _, mr := range g.memRows {
		if mr <= r {
			home = mr
		}
	}
	return home
}

// candidate is a geometric transform proposed as an automorphism. The
// coordinate map acts on real and virtual coordinates alike (the
// affine reflection/rotation formulas extend to the border rows and
// columns, which is exactly what maps I/O blocks correctly). rowImage
// gives the column-independent row map used to move memory ports; it
// is absent for diagonal transforms, which therefore cannot move
// row-anchored memory ports and are rejected when any exist.
type candidate struct {
	name     string
	coord    func(r, c int) (int, int)
	rowImage func(r int) int // nil when the row image depends on the column
}

// candidates enumerates the geometric symmetries of an RxC grid:
// reflections and 180-degree rotation always, the four diagonal
// transforms on square grids, and the two torus translation generators.
// These are *candidates* only — each is verified against the actual
// netlist, which is where heterogeneous ALU placement, shared memory
// ports and edge-anchored I/O prune the list down to the true group.
func (g *gridLayout) candidates() []candidate {
	R, C := g.rows, g.cols
	cands := []candidate{
		{"reflect-rows", func(r, c int) (int, int) { return R - 1 - r, c }, func(r int) int { return R - 1 - r }},
		{"reflect-cols", func(r, c int) (int, int) { return r, C - 1 - c }, func(r int) int { return r }},
		{"rot180", func(r, c int) (int, int) { return R - 1 - r, C - 1 - c }, func(r int) int { return R - 1 - r }},
	}
	if R == C {
		cands = append(cands,
			candidate{"transpose", func(r, c int) (int, int) { return c, r }, nil},
			candidate{"anti-transpose", func(r, c int) (int, int) { return C - 1 - c, R - 1 - r }, nil},
			candidate{"rot90", func(r, c int) (int, int) { return c, R - 1 - r }, nil},
			candidate{"rot270", func(r, c int) (int, int) { return C - 1 - c, r }, nil},
		)
	}
	// Torus translations: shift in-range coordinates with wraparound
	// and leave virtual border coordinates on their border (border
	// blocks cannot wrap; verification rejects the translation unless
	// the fabric has no border anchoring on that axis).
	wrap := func(dr, dc int) func(r, c int) (int, int) {
		return func(r, c int) (int, int) {
			nr, nc := r, c
			if r >= 0 && r < R {
				nr = (r + dr) % R
			}
			if c >= 0 && c < C {
				nc = (c + dc) % C
			}
			return nr, nc
		}
	}
	if R > 1 {
		cands = append(cands, candidate{"translate-rows", wrap(1, 0), func(r int) int { return (r + 1) % R }})
	}
	if C > 1 {
		cands = append(cands, candidate{"translate-cols", wrap(0, 1), func(r int) int { return r }})
	}
	return cands
}

// buildPerm lifts a candidate's coordinate transform to a primitive
// permutation, or reports that the transform does not even map the
// name structure onto itself (e.g. a missing image block).
func (g *gridLayout) buildPerm(a *Arch, cand candidate) ([]int, bool) {
	if len(g.memRows) > 0 && cand.rowImage == nil {
		return nil, false
	}
	perm := make([]int, len(a.Prims))
	for i := range a.Prims {
		pp := &g.prims[i]
		var imgBlock string
		if pp.isMem {
			home := g.memHomeFor(cand.rowImage(pp.memRow))
			if home < 0 {
				return nil, false
			}
			imgBlock = "mem_" + strconv.Itoa(home)
		} else {
			r, c := cand.coord(pp.coord.r, pp.coord.c)
			var ok bool
			imgBlock, ok = g.blockAt[gridCoord{r, c}]
			if !ok {
				return nil, false
			}
		}
		img := a.PrimIndex(imgBlock + pp.suffix)
		if img < 0 {
			return nil, false
		}
		perm[i] = img
	}
	return perm, true
}

// verifyPerm checks a primitive permutation against the netlist:
// behavioural invariants must match pointwise and every connection
// must map onto a connection. Multiplexer input ports are
// interchangeable routing choices, so their drivers are matched as a
// set (the induced port permutation is recorded); functional-unit
// ports carry operand indices and register/wire ports are singular, so
// those must match exactly.
func verifyPerm(a *Arch, name string, perm []int) (Automorphism, bool) {
	n := len(a.Prims)
	seen := make([]bool, n)
	identity := true
	for i, img := range perm {
		if img < 0 || img >= n || seen[img] {
			return Automorphism{}, false
		}
		seen[img] = true
		if img != i {
			identity = false
		}
	}
	if identity {
		return Automorphism{}, false
	}
	for i, p := range a.Prims {
		q := a.Prims[perm[i]]
		if p.Kind != q.Kind || p.NIn != q.NIn || p.Latency != q.Latency || p.II != q.II || p.Cost != q.Cost {
			return Automorphism{}, false
		}
		if !sameOpSet(p.Ops, q.Ops) {
			return Automorphism{}, false
		}
	}
	// Driver table: Validate guarantees exactly one driver per port.
	driver := make([][]int, n)
	for i, p := range a.Prims {
		driver[i] = make([]int, p.NIn)
		for k := range driver[i] {
			driver[i][k] = -1
		}
	}
	for _, c := range a.Conns {
		driver[c.Dst][c.DstPort] = c.Src
	}
	portPerm := make([][]int, n)
	for i, p := range a.Prims {
		img := perm[i]
		switch p.Kind {
		case Mux:
			used := make([]bool, p.NIn)
			pp := make([]int, p.NIn)
			ident := true
			for port := 0; port < p.NIn; port++ {
				want := perm[driver[i][port]]
				found := -1
				for q := 0; q < p.NIn; q++ {
					if !used[q] && driver[img][q] == want {
						found = q
						break
					}
				}
				if found < 0 {
					return Automorphism{}, false
				}
				used[found] = true
				pp[port] = found
				if found != port {
					ident = false
				}
			}
			if !ident {
				portPerm[i] = pp
			}
		default:
			for port := 0; port < p.NIn; port++ {
				if driver[img][port] != perm[driver[i][port]] {
					return Automorphism{}, false
				}
			}
		}
	}
	return Automorphism{Name: name, Perm: perm, PortPerm: portPerm}, true
}

// sameOpSet compares FU operation lists as sets. Grid FUs list each
// operation once, but set semantics keep the check honest for
// hand-built fabrics with duplicated entries.
func sameOpSet(x, y []dfg.Kind) bool {
	have := make(map[dfg.Kind]bool, len(x))
	for _, k := range x {
		have[k] = true
	}
	for _, k := range y {
		if !have[k] {
			return false
		}
	}
	back := make(map[dfg.Kind]bool, len(y))
	for _, k := range y {
		back[k] = true
	}
	for _, k := range x {
		if !back[k] {
			return false
		}
	}
	return true
}

// Discover finds the verified automorphisms of an architecture.
//
// Candidate transforms come from the grid naming convention
// (reflections, rotations, diagonal flips, torus translations); each
// is verified generically against the primitive and connection
// structure, so a candidate survives only when the fabric is *really*
// symmetric under it — a heterogeneous multiplier checkerboard kills
// the reflections that flip parity, per-row memory ports kill the
// diagonal transforms, and edge-anchored I/O kills translations on
// non-torus fabrics. Architectures outside the naming convention
// yield no candidates and hence no symmetry.
//
// The result is deterministic for a given architecture.
func Discover(a *Arch) *Symmetries {
	s := &Symmetries{orbitRep: make([]int, len(a.Prims))}
	for i := range s.orbitRep {
		s.orbitRep[i] = i
	}
	g := parseGrid(a)
	if g != nil {
		var perms [][]int
		for _, cand := range g.candidates() {
			perm, ok := g.buildPerm(a, cand)
			if !ok {
				continue
			}
			auto, ok := verifyPerm(a, cand.name, perm)
			if !ok {
				continue
			}
			dup := false
			for _, prev := range perms {
				if equalPerm(prev, perm) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			perms = append(perms, perm)
			s.Gens = append(s.Gens, auto)
		}
	}
	s.computeOrbits(len(a.Prims))
	return s
}

func equalPerm(x, y []int) bool {
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// computeOrbits runs union-find over the generators and materialises
// representative (largest member) and non-trivial orbit lists.
func (s *Symmetries) computeOrbits(n int) {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for _, g := range s.Gens {
		for i, img := range g.Perm {
			union(i, img)
		}
	}
	members := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		members[r] = append(members[r], i)
	}
	s.orbitRep = make([]int, n)
	var roots []int
	for r, m := range members {
		rep := m[len(m)-1] // members ascend; largest is canonical
		for _, i := range m {
			s.orbitRep[i] = rep
		}
		if len(m) > 1 {
			roots = append(roots, r)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return members[roots[i]][0] < members[roots[j]][0] })
	s.orbits = make([][]int, 0, len(roots))
	for _, r := range roots {
		s.orbits = append(s.orbits, members[r])
	}
}
