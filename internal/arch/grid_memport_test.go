package arch

import (
	"strings"
	"testing"

	"cgramap/internal/dfg"
)

// TestGridMemPortStride checks the memory-poor layouts: one port every k
// rows, every block wired to its home port, everything validating.
func TestGridMemPortStride(t *testing.T) {
	for _, tc := range []struct {
		rows, cols, every int
		wantPorts         int
	}{
		{4, 4, 0, 4}, // default: paper layout, one per row
		{4, 4, 1, 4}, // explicit stride 1 is the same layout
		{4, 4, 2, 2}, // ports at rows 0 and 2
		{8, 8, 4, 2}, // ports at rows 0 and 4
		{8, 8, 3, 3}, // uneven tail: ports at rows 0, 3, 6
		{4, 4, 8, 1}, // stride beyond the array: single shared port
		{16, 8, 16, 1},
	} {
		spec := GridSpec{Rows: tc.rows, Cols: tc.cols, Homogeneous: true, Contexts: 1, MemPortEvery: tc.every}
		a, err := Grid(spec)
		if err != nil {
			t.Fatalf("Grid(%+v): %v", spec, err)
		}
		ports := 0
		for _, p := range a.Prims {
			if p.Kind == FU && p.SupportsOp(dfg.Load) {
				ports++
			}
		}
		if ports != tc.wantPorts {
			t.Errorf("%s: %d memory ports, want %d", a.Name, ports, tc.wantPorts)
		}
		// Every row's blocks must see their home port's result.
		for r := 0; r < tc.rows; r++ {
			home := spec.memHome(r)
			mem := a.PrimIndex("mem_" + itoa(home) + ".fu")
			if mem < 0 {
				t.Fatalf("%s: home port mem_%d missing for row %d", a.Name, home, r)
			}
			muxA := a.PrimIndex("pe_" + itoa(r) + "_0.mux_a")
			found := false
			for _, c := range a.Conns {
				if c.Src == mem && c.Dst == muxA {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: row %d not fed by its home memory port %d", a.Name, r, home)
			}
		}
	}
}

// TestGridMemPortDefaultUnchanged pins the default layout: a spec without
// MemPortEvery must serialise byte-identically to one with stride 1, and
// its name must not grow a suffix (cached fingerprints depend on it).
func TestGridMemPortDefaultUnchanged(t *testing.T) {
	base := GridSpec{Rows: 4, Cols: 4, Interconnect: Diagonal, Homogeneous: true, Contexts: 2}
	one := base
	one.MemPortEvery = 1
	if base.Name() != one.Name() {
		t.Fatalf("names differ: %q vs %q", base.Name(), one.Name())
	}
	if strings.Contains(base.Name(), "mem") {
		t.Fatalf("default name %q carries a mem suffix", base.Name())
	}
	xml := func(s GridSpec) string {
		a, err := Grid(s)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := a.WriteXML(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if xml(base) != xml(one) {
		t.Fatal("stride 1 changed the generated architecture")
	}
	poor := base
	poor.MemPortEvery = 4
	if !strings.HasSuffix(poor.Name(), "-mem4") {
		t.Fatalf("memory-poor name %q lacks -mem4 suffix", poor.Name())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
