package arch

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cgramap/internal/dfg"
)

// buildNamed assembles a small fixed-topology architecture whose
// primitive names come from name(i) and whose connections are inserted
// in the order conns permutes — the two degrees of freedom Fingerprint
// must be invariant to.
func buildNamed(t *testing.T, name func(int) string, connOrder []int) *Arch {
	t.Helper()
	b := NewBuilder("fp-test", 2)
	fu0 := b.FU(name(0), []dfg.Kind{dfg.Add, dfg.Sub}, 2, 0, 1)
	fu1 := b.FU(name(1), []dfg.Kind{dfg.Add, dfg.Mul}, 2, 0, 1)
	m0 := b.Mux(name(2), 2)
	m1 := b.Mux(name(3), 2)
	r0 := b.Reg(name(4))
	conns := []struct {
		src, dst PrimID
		port     int
	}{
		{fu0, m0, 0}, {fu1, m0, 1},
		{fu0, m1, 0}, {fu1, m1, 1},
		{m0, fu0, 0}, {m0, fu1, 0},
		{m1, r0, 0},
		{r0, fu0, 1}, {r0, fu1, 1},
	}
	for _, i := range connOrder {
		c := conns[i]
		b.Connect(c.src, c.dst, c.port)
	}
	a, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return a
}

func identity(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

// TestArchFingerprintInvariance: renaming primitives and shuffling the
// connection insertion order (the shape a map-ordered builder produces)
// leave the fingerprint unchanged.
func TestArchFingerprintInvariance(t *testing.T) {
	base := buildNamed(t, func(i int) string { return fmt.Sprintf("p%d", i) }, identity(9))
	fp := base.Fingerprint()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := identity(9)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		renamed := buildNamed(t, func(i int) string {
			return fmt.Sprintf("blk_%c%d_%d", 'a'+i, rng.Intn(100), i)
		}, order)
		return renamed.Fingerprint() == fp
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestArchFingerprintSemanticEdits: context count, FU operation sets, and
// primitive parameters all feed the key.
func TestArchFingerprintSemanticEdits(t *testing.T) {
	base := buildNamed(t, func(i int) string { return fmt.Sprintf("p%d", i) }, identity(9))
	fp := base.Fingerprint()

	ctx := *base
	ctx.Contexts = 3
	if ctx.Fingerprint() == fp {
		t.Error("context count not hashed")
	}

	opEdit := buildNamed(t, func(i int) string { return fmt.Sprintf("p%d", i) }, identity(9))
	opEdit.Prims[1].Ops = []dfg.Kind{dfg.Add} // drop Mul support
	if opEdit.Fingerprint() == fp {
		t.Error("FU operation set not hashed")
	}

	costEdit := buildNamed(t, func(i int) string { return fmt.Sprintf("p%d", i) }, identity(9))
	costEdit.Prims[4].Cost = 7
	if costEdit.Fingerprint() == fp {
		t.Error("primitive cost not hashed")
	}

	latEdit := buildNamed(t, func(i int) string { return fmt.Sprintf("p%d", i) }, identity(9))
	latEdit.Prims[0].Latency = 2
	if latEdit.Fingerprint() == fp {
		t.Error("FU latency not hashed")
	}
}

// TestGridFingerprintCoversEverySpecField: perturbing any single
// GridSpec field — including MemPortEvery, which only moves shared
// memory ports between rows — produces a different architecture
// fingerprint. This is the audit backing the artifact caches: every
// layout-affecting knob must reach the content address, or a cache
// could serve one fabric's MRRG or formulation template for another.
func TestGridFingerprintCoversEverySpecField(t *testing.T) {
	base := GridSpec{Rows: 3, Cols: 3, Interconnect: Orthogonal,
		Homogeneous: true, Contexts: 2}
	baseFP := mustGridFP(t, base)

	perturb := []struct {
		field string
		edit  func(*GridSpec)
	}{
		{"Rows", func(s *GridSpec) { s.Rows = 4 }},
		{"Cols", func(s *GridSpec) { s.Cols = 4 }},
		{"Interconnect", func(s *GridSpec) { s.Interconnect = Diagonal }},
		{"Homogeneous", func(s *GridSpec) { s.Homogeneous = false }},
		{"Contexts", func(s *GridSpec) { s.Contexts = 3 }},
		{"Torus", func(s *GridSpec) { s.Torus = true }},
		{"MemPortEvery", func(s *GridSpec) { s.MemPortEvery = 2 }},
	}
	for _, p := range perturb {
		spec := base
		p.edit(&spec)
		if mustGridFP(t, spec) == baseFP {
			t.Errorf("GridSpec.%s does not reach the fingerprint", p.field)
		}
	}
}

func mustGridFP(t *testing.T, spec GridSpec) string {
	t.Helper()
	a, err := Grid(spec)
	if err != nil {
		t.Fatalf("grid %s: %v", spec.Name(), err)
	}
	return a.Fingerprint()
}

// TestGridFingerprintDistinguishesPaperArchitectures: the eight Table 2
// architectures all key differently, and regeneration is stable.
func TestGridFingerprintDistinguishesPaperArchitectures(t *testing.T) {
	seen := make(map[string]string)
	for _, spec := range PaperArchitectures() {
		a, err := Grid(spec)
		if err != nil {
			t.Fatal(err)
		}
		fp := a.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s share a fingerprint", prev, spec.Name())
		}
		seen[fp] = spec.Name()
		b, err := Grid(spec)
		if err != nil {
			t.Fatal(err)
		}
		if b.Fingerprint() != fp {
			t.Errorf("%s: fingerprint not reproducible", spec.Name())
		}
	}
}

// TestXMLRoundTripPreservesFingerprint: writing an architecture to XML
// and reading it back preserves the content key — the property the
// mapping service relies on when clients submit XML.
func TestXMLRoundTripPreservesFingerprint(t *testing.T) {
	a, err := Grid(GridSpec{Rows: 2, Cols: 2, Interconnect: Diagonal, Homogeneous: true, Contexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := a.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	b, err := ReadXML(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("XML round trip changed the fingerprint")
	}
}
