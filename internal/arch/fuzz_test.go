package arch_test

import (
	"strings"
	"testing"

	"cgramap/internal/arch"
)

// FuzzReadArchXML throws arbitrary bytes at the architecture XML reader.
// The reader must never panic, and any architecture it accepts must pass
// validation and survive a WriteXML/ReadXML round trip.
func FuzzReadArchXML(f *testing.F) {
	// Seed with the serialised form of real architectures (the paper's
	// grid family at several sizes) plus malformed edge cases.
	specs := []arch.GridSpec{
		{Rows: 2, Cols: 2, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1},
		{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2},
		{Rows: 3, Cols: 3, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 1},
		// Scaled fabrics from the workload generator's ladder: shared
		// memory ports, torus wrap, non-square grids. (The committed
		// corpus under testdata/fuzz adds an 8x8 and a 16x16.)
		{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1, MemPortEvery: 4},
		{Rows: 3, Cols: 5, Interconnect: arch.Orthogonal, Homogeneous: false, Contexts: 2, Torus: true, MemPortEvery: 2},
	}
	for _, spec := range specs {
		a, err := arch.Grid(spec)
		if err != nil {
			f.Fatal(err)
		}
		var sb strings.Builder
		if err := a.WriteXML(&sb); err != nil {
			f.Fatal(err)
		}
		f.Add(sb.String())
	}
	f.Add("")
	f.Add("<cgra/>")
	f.Add(`<cgra name="x" contexts="1"></cgra>`)
	f.Add(`<cgra name="x" contexts="0"><prim name="p" kind="reg"/></cgra>`)
	f.Add(`<cgra name="x" contexts="1"><prim name="p" kind="zorp"/></cgra>`)
	f.Add(`<cgra name="x" contexts="1"><prim name="p" kind="reg"/><prim name="p" kind="reg" cost="3"/></cgra>`)
	f.Add(`<cgra name="x" contexts="1"><prim name="f" kind="fu" nin="2" ops="add frobnicate"/></cgra>`)
	f.Add(`<cgra name="x" contexts="1"><prim name="p" kind="reg"/><conn from="p" to="q" port="0"/></cgra>`)
	f.Add(`<cgra name="x" contexts="1"><prim name="m" kind="mux" nin="-1"/></cgra>`)
	f.Add(`<cgra name="x" contexts="1"><conn from="a" to="b" port="-7"/></cgra>`)

	f.Fuzz(func(t *testing.T, text string) {
		a, err := arch.ParseXMLString(text)
		if err != nil {
			return
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("reader accepted an invalid architecture: %v\ninput: %q", verr, text)
		}
		var sb strings.Builder
		if err := a.WriteXML(&sb); err != nil {
			t.Fatalf("accepted architecture does not serialise: %v", err)
		}
		b, err := arch.ParseXMLString(sb.String())
		if err != nil {
			t.Fatalf("serialised architecture does not reparse: %v\nxml: %s", err, sb.String())
		}
		if len(b.Prims) != len(a.Prims) || len(b.Conns) != len(a.Conns) {
			t.Fatalf("round trip changed shape: %d/%d prims, %d/%d conns",
				len(a.Prims), len(b.Prims), len(a.Conns), len(b.Conns))
		}
	})
}
