// Package arch models CGRA architectures generically, in the spirit of the
// CGRA-ME framework the paper builds on: an architecture is a netlist of
// coarse-grained primitives (functional units, multiplexers, registers and
// wires) from which a Modulo Routing Resource Graph can be generated for
// any number of execution contexts.
//
// The package also provides the grid composer that builds the paper's
// eight 4x4 test architectures (grid.go) and an XML description language
// for architectures (xml.go), mirroring CGRA-ME's high-level XML input.
package arch

import (
	"fmt"

	"cgramap/internal/dfg"
)

// Kind classifies an architecture primitive.
type Kind int

const (
	// FU is a functional unit: it executes DFG operations. Each input
	// port corresponds to one operand index.
	FU Kind = iota + 1
	// Mux is a dynamically reconfigurable n-to-1 routing multiplexer;
	// on any cycle it routes exactly one of its inputs (paper Fig. 1).
	Mux
	// Reg is a register: it moves a value from one cycle (context) to
	// the next (paper Fig. 1).
	Reg
	// Wire is a combinational 1-to-1 routing resource.
	Wire
)

var kindNames = map[Kind]string{FU: "fu", Mux: "mux", Reg: "reg", Wire: "wire"}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindFromString resolves a name produced by Kind.String.
func KindFromString(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("arch: unknown primitive kind %q", s)
}

// Prim is one architecture primitive. Every primitive has NIn input ports
// and exactly one output.
type Prim struct {
	// Name is the unique hierarchical name, e.g. "pe_1_2.mux_a".
	Name string
	// Kind is the primitive class.
	Kind Kind
	// NIn is the number of input ports. For FUs, port p carries
	// operand p of the executed operation.
	NIn int
	// Ops lists the operation kinds an FU can execute (FU only).
	Ops []dfg.Kind
	// Latency is the cycles from operand consumption to result
	// availability (FU only; registers implicitly have latency 1).
	Latency int
	// II is the initiation interval: the FU accepts new operands every
	// II cycles (FU only; paper Fig. 2).
	II int
	// Cost is the routing-objective weight of the primitive's routing
	// resources (paper eq. 10 discussion); defaults to 1.
	Cost int
}

// SupportsOp reports whether an FU primitive can execute operations of
// kind k.
func (p *Prim) SupportsOp(k dfg.Kind) bool {
	for _, o := range p.Ops {
		if o == k {
			return true
		}
	}
	return false
}

func (p *Prim) String() string { return fmt.Sprintf("%s(%s)", p.Name, p.Kind) }

// Conn connects the output of primitive Src to input port DstPort of
// primitive Dst. Primitives are identified by index into Arch.Prims.
type Conn struct {
	Src     int
	Dst     int
	DstPort int
}

// Arch is a complete architecture: a primitive netlist plus the number of
// execution contexts it is operated with. Arch values are immutable after
// Build; the exported slices must not be modified.
type Arch struct {
	// Name identifies the architecture.
	Name string
	// Contexts is the number of execution contexts (>= 1); the CGRA
	// cycles through them with initiation interval II = Contexts.
	Contexts int
	// Prims is the primitive list; Conns the connection list.
	Prims []*Prim
	Conns []Conn

	byName map[string]int
}

// PrimIndex returns the index of the named primitive, or -1.
func (a *Arch) PrimIndex(name string) int {
	if i, ok := a.byName[name]; ok {
		return i
	}
	return -1
}

// PrimByName returns the named primitive, or nil.
func (a *Arch) PrimByName(name string) *Prim {
	if i, ok := a.byName[name]; ok {
		return a.Prims[i]
	}
	return nil
}

// Stats summarises an architecture.
type Stats struct {
	FUs, Muxes, Regs, Wires int
	Conns                   int
	// FUsByOp counts how many FUs support each operation kind.
	FUsByOp map[dfg.Kind]int
}

// Stats computes summary counts.
func (a *Arch) Stats() Stats {
	s := Stats{FUsByOp: make(map[dfg.Kind]int), Conns: len(a.Conns)}
	for _, p := range a.Prims {
		switch p.Kind {
		case FU:
			s.FUs++
			for _, op := range p.Ops {
				s.FUsByOp[op]++
			}
		case Mux:
			s.Muxes++
		case Reg:
			s.Regs++
		case Wire:
			s.Wires++
		}
	}
	return s
}

// Validate checks structural invariants: unique names, legal primitive
// parameters, in-range connections, and that every input port has exactly
// one driver.
func (a *Arch) Validate() error {
	if a.Contexts < 1 {
		return fmt.Errorf("arch %s: contexts = %d, want >= 1", a.Name, a.Contexts)
	}
	seen := make(map[string]bool, len(a.Prims))
	for i, p := range a.Prims {
		if p.Name == "" {
			return fmt.Errorf("arch %s: primitive %d has empty name", a.Name, i)
		}
		if seen[p.Name] {
			return fmt.Errorf("arch %s: duplicate primitive name %q", a.Name, p.Name)
		}
		seen[p.Name] = true
		if a.byName != nil && a.byName[p.Name] != i {
			return fmt.Errorf("arch %s: name index stale for %q", a.Name, p.Name)
		}
		switch p.Kind {
		case FU:
			if len(p.Ops) == 0 {
				return fmt.Errorf("arch %s: FU %q supports no operations", a.Name, p.Name)
			}
			if p.Latency < 0 {
				return fmt.Errorf("arch %s: FU %q has negative latency", a.Name, p.Name)
			}
			if p.II < 1 {
				return fmt.Errorf("arch %s: FU %q has II %d, want >= 1", a.Name, p.Name, p.II)
			}
			for _, op := range p.Ops {
				if p.NIn < op.NumOperands() {
					return fmt.Errorf("arch %s: FU %q has %d input ports but supports %s (%d operands)",
						a.Name, p.Name, p.NIn, op, op.NumOperands())
				}
			}
		case Mux:
			if p.NIn < 1 {
				return fmt.Errorf("arch %s: mux %q has %d inputs, want >= 1", a.Name, p.Name, p.NIn)
			}
		case Reg, Wire:
			if p.NIn != 1 {
				return fmt.Errorf("arch %s: %s %q has %d inputs, want 1", a.Name, p.Kind, p.Name, p.NIn)
			}
		default:
			return fmt.Errorf("arch %s: primitive %q has invalid kind", a.Name, p.Name)
		}
		if p.Cost < 0 {
			return fmt.Errorf("arch %s: primitive %q has negative cost", a.Name, p.Name)
		}
	}
	driven := make(map[[2]int]bool, len(a.Conns))
	for _, c := range a.Conns {
		if c.Src < 0 || c.Src >= len(a.Prims) || c.Dst < 0 || c.Dst >= len(a.Prims) {
			return fmt.Errorf("arch %s: connection %v out of range", a.Name, c)
		}
		if c.DstPort < 0 || c.DstPort >= a.Prims[c.Dst].NIn {
			return fmt.Errorf("arch %s: connection to %q port %d out of range (NIn=%d)",
				a.Name, a.Prims[c.Dst].Name, c.DstPort, a.Prims[c.Dst].NIn)
		}
		key := [2]int{c.Dst, c.DstPort}
		if driven[key] {
			return fmt.Errorf("arch %s: %q port %d driven more than once", a.Name, a.Prims[c.Dst].Name, c.DstPort)
		}
		driven[key] = true
	}
	for i, p := range a.Prims {
		for port := 0; port < p.NIn; port++ {
			if !driven[[2]int{i, port}] {
				return fmt.Errorf("arch %s: %q port %d undriven", a.Name, p.Name, port)
			}
		}
	}
	return nil
}

// PrimID identifies a primitive during construction.
type PrimID int

// Builder incrementally assembles an Arch. Errors are accumulated and
// reported by Build, keeping construction code linear.
type Builder struct {
	arch *Arch
	errs []error
}

// NewBuilder starts a new architecture with the given name and context
// count.
func NewBuilder(name string, contexts int) *Builder {
	return &Builder{arch: &Arch{
		Name:     name,
		Contexts: contexts,
		byName:   make(map[string]int),
	}}
}

func (b *Builder) add(p *Prim) PrimID {
	if _, dup := b.arch.byName[p.Name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate primitive %q", p.Name))
		return PrimID(-1)
	}
	if p.Cost == 0 {
		p.Cost = 1
	}
	id := len(b.arch.Prims)
	b.arch.byName[p.Name] = id
	b.arch.Prims = append(b.arch.Prims, p)
	return PrimID(id)
}

// FU adds a functional unit supporting the given operations.
func (b *Builder) FU(name string, ops []dfg.Kind, nIn, latency, ii int) PrimID {
	return b.add(&Prim{Name: name, Kind: FU, NIn: nIn, Ops: ops, Latency: latency, II: ii})
}

// Mux adds an n-to-1 multiplexer.
func (b *Builder) Mux(name string, nIn int) PrimID {
	return b.add(&Prim{Name: name, Kind: Mux, NIn: nIn})
}

// Reg adds a register.
func (b *Builder) Reg(name string) PrimID {
	return b.add(&Prim{Name: name, Kind: Reg, NIn: 1})
}

// Wire adds a combinational wire.
func (b *Builder) Wire(name string) PrimID {
	return b.add(&Prim{Name: name, Kind: Wire, NIn: 1})
}

// Connect wires the output of src to input port dstPort of dst.
func (b *Builder) Connect(src, dst PrimID, dstPort int) {
	if src < 0 || dst < 0 {
		b.errs = append(b.errs, fmt.Errorf("connect with invalid primitive id"))
		return
	}
	b.arch.Conns = append(b.arch.Conns, Conn{Src: int(src), Dst: int(dst), DstPort: dstPort})
}

// Build validates and returns the architecture.
func (b *Builder) Build() (*Arch, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("arch %s: %d construction errors, first: %w", b.arch.Name, len(b.errs), b.errs[0])
	}
	if err := b.arch.Validate(); err != nil {
		return nil, err
	}
	return b.arch, nil
}
