package arch

import (
	"strings"
	"testing"

	"cgramap/internal/dfg"
)

// tinyArch builds a minimal legal architecture: one input-capable FU
// feeding an ALU through a mux, with a register loop.
func tinyArch(t *testing.T) *Arch {
	t.Helper()
	b := NewBuilder("tiny", 1)
	io := b.FU("io", []dfg.Kind{dfg.Input, dfg.Output}, 1, 0, 1)
	mux := b.Mux("mux", 2)
	alu := b.FU("alu", []dfg.Kind{dfg.Add, dfg.Mul}, 2, 0, 1)
	reg := b.Reg("reg")
	b.Connect(io, mux, 0)
	b.Connect(reg, mux, 1)
	b.Connect(mux, alu, 0)
	b.Connect(mux, alu, 1)
	b.Connect(alu, reg, 0)
	b.Connect(alu, io, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return a
}

func TestBuilderAndValidate(t *testing.T) {
	a := tinyArch(t)
	if a.PrimByName("alu") == nil || a.PrimIndex("alu") < 0 {
		t.Error("lookup of alu failed")
	}
	if a.PrimByName("nope") != nil || a.PrimIndex("nope") != -1 {
		t.Error("lookup of missing primitive should fail")
	}
	st := a.Stats()
	if st.FUs != 2 || st.Muxes != 1 || st.Regs != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if st.FUsByOp[dfg.Mul] != 1 || st.FUsByOp[dfg.Input] != 1 {
		t.Errorf("FUsByOp = %v", st.FUsByOp)
	}
	if !a.PrimByName("alu").SupportsOp(dfg.Add) || a.PrimByName("alu").SupportsOp(dfg.Sub) {
		t.Error("SupportsOp wrong")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Arch, error)
	}{
		{"undriven port", func() (*Arch, error) {
			b := NewBuilder("x", 1)
			b.Mux("m", 2)
			return b.Build()
		}},
		{"double driver", func() (*Arch, error) {
			b := NewBuilder("x", 1)
			w1 := b.Wire("w1")
			w2 := b.Wire("w2")
			b.Connect(w1, w2, 0)
			b.Connect(w2, w1, 0)
			b.Connect(w2, w1, 0)
			return b.Build()
		}},
		{"duplicate name", func() (*Arch, error) {
			b := NewBuilder("x", 1)
			b.Wire("w")
			b.Wire("w")
			return b.Build()
		}},
		{"fu no ops", func() (*Arch, error) {
			b := NewBuilder("x", 1)
			b.FU("f", nil, 2, 0, 1)
			return b.Build()
		}},
		{"fu bad ii", func() (*Arch, error) {
			b := NewBuilder("x", 1)
			b.FU("f", []dfg.Kind{dfg.Add}, 2, 0, 0)
			return b.Build()
		}},
		{"fu too few ports", func() (*Arch, error) {
			b := NewBuilder("x", 1)
			b.FU("f", []dfg.Kind{dfg.Add}, 1, 0, 1)
			return b.Build()
		}},
		{"zero contexts", func() (*Arch, error) {
			b := NewBuilder("x", 0)
			return b.Build()
		}},
		{"port out of range", func() (*Arch, error) {
			b := NewBuilder("x", 1)
			w1 := b.Wire("w1")
			w2 := b.Wire("w2")
			b.Connect(w1, w2, 5)
			b.Connect(w2, w1, 0)
			return b.Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		}
	}
}

func TestPaperArchitectures(t *testing.T) {
	specs := PaperArchitectures()
	if len(specs) != 8 {
		t.Fatalf("len = %d, want 8", len(specs))
	}
	wantNames := []string{
		"hetero-orth-c1-4x4", "hetero-diag-c1-4x4", "homo-orth-c1-4x4", "homo-diag-c1-4x4",
		"hetero-orth-c2-4x4", "hetero-diag-c2-4x4", "homo-orth-c2-4x4", "homo-diag-c2-4x4",
	}
	for i, s := range specs {
		if s.Name() != wantNames[i] {
			t.Errorf("spec %d name = %q, want %q", i, s.Name(), wantNames[i])
		}
	}
}

func TestGridStructure(t *testing.T) {
	for _, spec := range PaperArchitectures() {
		a, err := Grid(spec)
		if err != nil {
			t.Errorf("%s: %v", spec.Name(), err)
			continue
		}
		st := a.Stats()
		// 16 ALUs + 16 I/O blocks + 4 memory ports.
		if st.FUs != 36 {
			t.Errorf("%s: FUs = %d, want 36", spec.Name(), st.FUs)
		}
		wantMul := 8
		if spec.Homogeneous {
			wantMul = 16
		}
		if st.FUsByOp[dfg.Mul] != wantMul {
			t.Errorf("%s: multiplier FUs = %d, want %d", spec.Name(), st.FUsByOp[dfg.Mul], wantMul)
		}
		if st.FUsByOp[dfg.Input] != 16 || st.FUsByOp[dfg.Load] != 4 {
			t.Errorf("%s: io FUs = %d, mem FUs = %d, want 16/4",
				spec.Name(), st.FUsByOp[dfg.Input], st.FUsByOp[dfg.Load])
		}
		if st.Regs != 16 {
			t.Errorf("%s: regs = %d, want 16", spec.Name(), st.Regs)
		}
		if a.Contexts != spec.Contexts {
			t.Errorf("%s: contexts = %d, want %d", spec.Name(), a.Contexts, spec.Contexts)
		}
	}
}

func TestGridMuxWidths(t *testing.T) {
	orth, err := Grid(GridSpec{Rows: 4, Cols: 4, Interconnect: Orthogonal, Homogeneous: true, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := Grid(GridSpec{Rows: 4, Cols: 4, Interconnect: Diagonal, Homogeneous: true, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Orthogonal interior block: 4 neighbours + mem + reg = 6 operand
	// mux inputs; diagonal interior adds 4 more.
	if got := orth.PrimByName("pe_1_1.mux_a").NIn; got != 6 {
		t.Errorf("orth pe_1_1.mux_a NIn = %d, want 6", got)
	}
	if got := diag.PrimByName("pe_1_1.mux_a").NIn; got != 10 {
		t.Errorf("diag pe_1_1.mux_a NIn = %d, want 10 (paper: diagonal widens muxes)", got)
	}
	// Corner block: 3 neighbours, 4 I/O blocks, memory, register.
	if got := diag.PrimByName("pe_0_0.mux_a").NIn; got != 9 {
		t.Errorf("diag pe_0_0.mux_a NIn = %d, want 9", got)
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := Grid(GridSpec{Rows: 0, Cols: 4, Contexts: 1}); err == nil {
		t.Error("rows=0 accepted")
	}
	if _, err := Grid(GridSpec{Rows: 4, Cols: 4, Contexts: 0}); err == nil {
		t.Error("contexts=0 accepted")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	for _, spec := range []GridSpec{
		{Rows: 2, Cols: 2, Interconnect: Orthogonal, Homogeneous: true, Contexts: 1},
		{Rows: 4, Cols: 4, Interconnect: Diagonal, Homogeneous: false, Contexts: 2},
	} {
		a, err := Grid(spec)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := a.WriteXML(&sb); err != nil {
			t.Fatalf("%s: WriteXML: %v", spec.Name(), err)
		}
		a2, err := ParseXMLString(sb.String())
		if err != nil {
			t.Fatalf("%s: ReadXML: %v", spec.Name(), err)
		}
		if a2.Name != a.Name || a2.Contexts != a.Contexts {
			t.Errorf("%s: header changed", spec.Name())
		}
		if len(a2.Prims) != len(a.Prims) || len(a2.Conns) != len(a.Conns) {
			t.Fatalf("%s: prims %d->%d conns %d->%d", spec.Name(),
				len(a.Prims), len(a2.Prims), len(a.Conns), len(a2.Conns))
		}
		for i, p := range a.Prims {
			q := a2.Prims[i]
			if p.Name != q.Name || p.Kind != q.Kind || p.NIn != q.NIn ||
				p.Latency != q.Latency || p.II != q.II || p.Cost != q.Cost ||
				len(p.Ops) != len(q.Ops) {
				t.Errorf("%s: prim %d differs: %+v vs %+v", spec.Name(), i, p, q)
			}
		}
		var sb2 strings.Builder
		if err := a2.WriteXML(&sb2); err != nil {
			t.Fatal(err)
		}
		if sb.String() != sb2.String() {
			t.Errorf("%s: XML not stable across round trip", spec.Name())
		}
	}
}

func TestXMLErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not xml at all",
		"bad kind":     `<cgra name="x" contexts="1"><prim name="p" kind="zorp"/></cgra>`,
		"bad op":       `<cgra name="x" contexts="1"><prim name="f" kind="fu" nin="2" ops="frob"/></cgra>`,
		"unknown from": `<cgra name="x" contexts="1"><prim name="w" kind="wire"/><conn from="q" to="w" port="0"/></cgra>`,
		"unknown to":   `<cgra name="x" contexts="1"><prim name="w" kind="wire"/><conn from="w" to="q" port="0"/></cgra>`,
		"invalid arch": `<cgra name="x" contexts="1"><prim name="w" kind="wire"/></cgra>`,
	}
	for name, src := range cases {
		if _, err := ParseXMLString(src); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestHasMultiplierCheckerboard(t *testing.T) {
	s := GridSpec{Rows: 4, Cols: 4}
	count := 0
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if s.HasMultiplier(r, c) {
				count++
			}
		}
	}
	if count != 8 {
		t.Errorf("heterogeneous multiplier count = %d, want 8 (half)", count)
	}
	s.Homogeneous = true
	if !s.HasMultiplier(0, 1) {
		t.Error("homogeneous block missing multiplier")
	}
}

func TestTorusWrapsInterconnect(t *testing.T) {
	spec := GridSpec{Rows: 4, Cols: 4, Interconnect: Orthogonal, Homogeneous: true, Contexts: 1, Torus: true}
	if spec.Name() != "homo-orth-torus-c1-4x4" {
		t.Errorf("Name = %q", spec.Name())
	}
	a, err := Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	// A corner block now has four block neighbours (wrapped) plus its
	// four I/O blocks, the memory port and the register feedback.
	if got := a.PrimByName("pe_0_0.mux_a").NIn; got != 10 {
		t.Errorf("torus corner mux_a NIn = %d, want 10", got)
	}
	// Degenerate wraps are deduplicated on tiny grids.
	tiny, err := Grid(GridSpec{Rows: 2, Cols: 2, Contexts: 1, Torus: true})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.PrimByName("pe_0_0.mux_a") == nil {
		t.Fatal("tiny torus missing block")
	}
}
