package arch

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"cgramap/internal/dfg"
)

// The XML architecture description language mirrors CGRA-ME's approach of
// specifying CGRAs in a high-level XML language from which an MRRG is
// generated. A description is a flat primitive netlist:
//
//	<cgra name="homo-orth-c1-4x4" contexts="1">
//	  <prim name="pe_0_0.mux_a" kind="mux" nin="6"/>
//	  <prim name="pe_0_0.alu" kind="fu" nin="2" latency="0" ii="1"
//	        ops="add sub shl shr and or xor not mul"/>
//	  <prim name="pe_0_0.reg" kind="reg"/>
//	  <conn from="pe_0_0.mux_a" to="pe_0_0.alu" port="0"/>
//	  ...
//	</cgra>

type xmlCGRA struct {
	XMLName  xml.Name  `xml:"cgra"`
	Name     string    `xml:"name,attr"`
	Contexts int       `xml:"contexts,attr"`
	Prims    []xmlPrim `xml:"prim"`
	Conns    []xmlConn `xml:"conn"`
}

type xmlPrim struct {
	Name    string `xml:"name,attr"`
	Kind    string `xml:"kind,attr"`
	NIn     int    `xml:"nin,attr,omitempty"`
	Latency int    `xml:"latency,attr,omitempty"`
	II      int    `xml:"ii,attr,omitempty"`
	Cost    int    `xml:"cost,attr,omitempty"`
	Ops     string `xml:"ops,attr,omitempty"`
}

type xmlConn struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
	Port int    `xml:"port,attr"`
}

// WriteXML serialises the architecture in the XML description language.
func (a *Arch) WriteXML(w io.Writer) error {
	doc := xmlCGRA{Name: a.Name, Contexts: a.Contexts}
	for _, p := range a.Prims {
		xp := xmlPrim{Name: p.Name, Kind: p.Kind.String()}
		switch p.Kind {
		case FU:
			xp.NIn = p.NIn
			xp.Latency = p.Latency
			xp.II = p.II
			ops := make([]string, len(p.Ops))
			for i, op := range p.Ops {
				ops[i] = op.String()
			}
			xp.Ops = strings.Join(ops, " ")
		case Mux:
			xp.NIn = p.NIn
		}
		if p.Cost != 1 {
			xp.Cost = p.Cost
		}
		doc.Prims = append(doc.Prims, xp)
	}
	for _, c := range a.Conns {
		doc.Conns = append(doc.Conns, xmlConn{
			From: a.Prims[c.Src].Name,
			To:   a.Prims[c.Dst].Name,
			Port: c.DstPort,
		})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return fmt.Errorf("arch: writing XML: %w", err)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("arch: encoding XML: %w", err)
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return fmt.Errorf("arch: writing XML: %w", err)
	}
	return nil
}

// ReadXML parses an architecture from its XML description and validates
// it.
func ReadXML(r io.Reader) (*Arch, error) {
	var doc xmlCGRA
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("arch: decoding XML: %w", err)
	}
	b := NewBuilder(doc.Name, doc.Contexts)
	for _, xp := range doc.Prims {
		kind, err := KindFromString(xp.Kind)
		if err != nil {
			return nil, fmt.Errorf("arch: primitive %q: %w", xp.Name, err)
		}
		var id PrimID
		switch kind {
		case FU:
			var ops []dfg.Kind
			for _, s := range strings.Fields(xp.Ops) {
				op, err := dfg.KindFromString(s)
				if err != nil {
					return nil, fmt.Errorf("arch: FU %q: %w", xp.Name, err)
				}
				ops = append(ops, op)
			}
			ii := xp.II
			if ii == 0 {
				ii = 1
			}
			id = b.FU(xp.Name, ops, xp.NIn, xp.Latency, ii)
		case Mux:
			id = b.Mux(xp.Name, xp.NIn)
		case Reg:
			id = b.Reg(xp.Name)
		case Wire:
			id = b.Wire(xp.Name)
		}
		// The builder reports duplicate names through its error list and
		// returns -1; indexing Prims with it would panic on malformed
		// input (Build surfaces the real error below).
		if xp.Cost != 0 && id >= 0 {
			b.arch.Prims[id].Cost = xp.Cost
		}
	}
	for _, xc := range doc.Conns {
		src, okSrc := b.arch.byName[xc.From]
		dst, okDst := b.arch.byName[xc.To]
		if !okSrc {
			return nil, fmt.Errorf("arch: connection from unknown primitive %q", xc.From)
		}
		if !okDst {
			return nil, fmt.Errorf("arch: connection to unknown primitive %q", xc.To)
		}
		b.Connect(PrimID(src), PrimID(dst), xc.Port)
	}
	return b.Build()
}

// ParseXMLString is ReadXML over a string.
func ParseXMLString(s string) (*Arch, error) { return ReadXML(strings.NewReader(s)) }
