package arch

import (
	"fmt"
	"testing"

	"cgramap/internal/dfg"
)

func gridFor(t *testing.T, spec GridSpec) *Arch {
	t.Helper()
	a, err := Grid(spec)
	if err != nil {
		t.Fatalf("Grid(%v): %v", spec, err)
	}
	return a
}

func genNames(s *Symmetries) []string {
	var names []string
	for _, g := range s.Gens {
		names = append(names, g.Name)
	}
	return names
}

func wantGens(t *testing.T, s *Symmetries, want ...string) {
	t.Helper()
	got := genNames(s)
	if len(got) != len(want) {
		t.Fatalf("generators = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("generators = %v, want %v", got, want)
		}
	}
}

// checkAutomorphism replays the definition: invariants pointwise and a
// connection bijection under (Perm, PortPerm).
func checkAutomorphism(t *testing.T, a *Arch, auto Automorphism) {
	t.Helper()
	seen := make([]bool, len(a.Prims))
	for i, img := range auto.Perm {
		if seen[img] {
			t.Fatalf("%s: not a permutation (double image %d)", auto.Name, img)
		}
		seen[img] = true
		p, q := a.Prims[i], a.Prims[img]
		if p.Kind != q.Kind || p.NIn != q.NIn || p.Latency != q.Latency || p.II != q.II || p.Cost != q.Cost {
			t.Fatalf("%s: %s -> %s invariant mismatch", auto.Name, p.Name, q.Name)
		}
	}
	conns := make(map[Conn]bool, len(a.Conns))
	for _, c := range a.Conns {
		conns[c] = true
	}
	for _, c := range a.Conns {
		img := Conn{Src: auto.Perm[c.Src], Dst: auto.Perm[c.Dst], DstPort: auto.Port(c.Dst, c.DstPort)}
		if !conns[img] {
			t.Fatalf("%s: connection %v maps to missing %v", auto.Name, c, img)
		}
	}
}

func TestDiscoverHomogeneousGrid(t *testing.T) {
	for _, ic := range []Interconnect{Orthogonal, Diagonal} {
		t.Run(ic.String(), func(t *testing.T) {
			a := gridFor(t, GridSpec{Rows: 4, Cols: 4, Interconnect: ic, Homogeneous: true, Contexts: 1})
			s := Discover(a)
			// Diagonal transforms die on the per-row memory ports,
			// translations on the edge-anchored I/O; the Klein
			// four-group of reflections survives.
			wantGens(t, s, "reflect-rows", "reflect-cols", "rot180")
			for _, g := range s.Gens {
				checkAutomorphism(t, a, g)
			}
		})
	}
}

func TestDiscoverHeterogeneousGrid(t *testing.T) {
	a := gridFor(t, GridSpec{Rows: 4, Cols: 4, Interconnect: Diagonal, Homogeneous: false, Contexts: 1})
	s := Discover(a)
	// The multiplier checkerboard has parity (r+c)%2; single-axis
	// reflections flip it (4x4: r -> 3-r), rot180 preserves it.
	wantGens(t, s, "rot180")
	checkAutomorphism(t, a, s.Gens[0])
}

func TestDiscoverTwoContextGridMatchesSingle(t *testing.T) {
	// Contexts are a runtime notion; the netlist and hence the group
	// are context-independent.
	s1 := Discover(gridFor(t, GridSpec{Rows: 4, Cols: 4, Homogeneous: true, Contexts: 1}))
	s2 := Discover(gridFor(t, GridSpec{Rows: 4, Cols: 4, Homogeneous: true, Contexts: 2}))
	g1, g2 := genNames(s1), genNames(s2)
	if fmt.Sprint(g1) != fmt.Sprint(g2) {
		t.Fatalf("contexts changed the group: %v vs %v", g1, g2)
	}
}

func TestDiscoverMemPortStride(t *testing.T) {
	// Stride 2 on 4 rows: served row sets {0,1} and {2,3} map onto
	// each other under row reflection, so the full reflection group
	// survives.
	a := gridFor(t, GridSpec{Rows: 4, Cols: 4, Homogeneous: true, Contexts: 1, MemPortEvery: 2})
	wantGens(t, Discover(a), "reflect-rows", "reflect-cols", "rot180")

	// Stride 3 on 4 rows is lopsided (rows {0,1,2} vs {3}): any
	// transform moving rows must map a 3-row port onto a 1-row port
	// and dies; only the column reflection survives.
	a = gridFor(t, GridSpec{Rows: 4, Cols: 4, Homogeneous: true, Contexts: 1, MemPortEvery: 3})
	wantGens(t, Discover(a), "reflect-cols")
}

func TestDiscoverRectangular(t *testing.T) {
	a := gridFor(t, GridSpec{Rows: 2, Cols: 4, Homogeneous: true, Contexts: 1})
	s := Discover(a)
	// No diagonal candidates on a non-square grid.
	wantGens(t, s, "reflect-rows", "reflect-cols", "rot180")
}

// pureRing builds a borderless ring of N blocks under the grid naming
// convention: no I/O or memory anchoring, so torus translation can
// actually verify.
func pureRing(t *testing.T, n int) *Arch {
	t.Helper()
	b := NewBuilder(fmt.Sprintf("ring-%d", n), 1)
	ops := []dfg.Kind{dfg.Not}
	muxes := make([]PrimID, n)
	fus := make([]PrimID, n)
	for c := 0; c < n; c++ {
		muxes[c] = b.Mux(fmt.Sprintf("pe_0_%d.mux", c), 2)
		fus[c] = b.FU(fmt.Sprintf("pe_0_%d.fu", c), ops, 1, 0, 1)
	}
	for c := 0; c < n; c++ {
		b.Connect(fus[(c+n-1)%n], muxes[c], 0)
		b.Connect(fus[(c+1)%n], muxes[c], 1)
		b.Connect(muxes[c], fus[c], 0)
	}
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDiscoverTorusTranslation(t *testing.T) {
	a := pureRing(t, 6)
	s := Discover(a)
	// rot180 collapses onto reflect-cols on a single-row fabric and is
	// deduplicated.
	wantGens(t, s, "reflect-cols", "translate-cols")
	for _, g := range s.Gens {
		checkAutomorphism(t, a, g)
	}
	// Reflection + a full-cycle translation generate the dihedral
	// group acting transitively: one orbit per suffix class.
	fuOrbit := 0
	for _, o := range s.Orbits() {
		if a.Prims[o[0]].Kind == FU {
			fuOrbit++
			if len(o) != 6 {
				t.Fatalf("FU orbit size = %d, want 6", len(o))
			}
		}
	}
	if fuOrbit != 1 {
		t.Fatalf("FU orbits = %d, want 1 (transitive action)", fuOrbit)
	}
}

func TestDiscoverGridTorusKeepsEdgeAnchors(t *testing.T) {
	// GridSpec.Torus wraps only the block interconnect; I/O stays
	// edge-anchored and memory row-anchored, so translations must NOT
	// verify even on a torus grid.
	a := gridFor(t, GridSpec{Rows: 4, Cols: 4, Homogeneous: true, Contexts: 1, Torus: true})
	for _, g := range Discover(a).Gens {
		if g.Name == "translate-rows" || g.Name == "translate-cols" {
			t.Fatalf("translation %q verified on an edge-anchored torus grid", g.Name)
		}
	}
}

func TestOrbitsAndReps(t *testing.T) {
	a := gridFor(t, GridSpec{Rows: 4, Cols: 4, Homogeneous: true, Contexts: 1})
	s := Discover(a)
	// ALU orbits under the reflection group: corner/edge/interior
	// classes of size 4 each; 16 ALUs -> 4 orbits.
	aluOrbits := 0
	for _, o := range s.Orbits() {
		if a.Prims[o[0]].Name[len(a.Prims[o[0]].Name)-4:] == ".alu" {
			aluOrbits++
			if len(o) != 4 {
				t.Fatalf("ALU orbit size = %d, want 4", len(o))
			}
			rep := s.OrbitRep(o[0])
			for _, m := range o {
				if s.OrbitRep(m) != rep {
					t.Fatalf("inconsistent orbit rep")
				}
				if m > rep {
					t.Fatalf("rep %d not maximal in orbit %v", rep, o)
				}
			}
		}
	}
	if aluOrbits != 4 {
		t.Fatalf("ALU orbits = %d, want 4", aluOrbits)
	}
	// A trivial architecture has no generators and self-representatives.
	if !Discover(pureRingless(t)).Trivial() {
		t.Fatalf("asymmetric fabric reported symmetry")
	}
}

// pureRingless is a deliberately asymmetric two-block fabric.
func pureRingless(t *testing.T) *Arch {
	t.Helper()
	b := NewBuilder("asym", 1)
	f0 := b.FU("pe_0_0.fu", []dfg.Kind{dfg.Not}, 1, 0, 1)
	f1 := b.FU("pe_0_1.fu", []dfg.Kind{dfg.Not, dfg.Add}, 2, 0, 1)
	b.Connect(f1, f0, 0)
	b.Connect(f0, f1, 0)
	b.Connect(f0, f1, 1)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}
