package arch

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sort"
)

// Fingerprint returns a canonical content hash of the architecture's
// semantic structure: the context count, every primitive's parameters
// (kind, port count, supported operations, latency, initiation interval,
// cost) in netlist index order, and the connection list in a sorted
// canonical order. Primitive and architecture names are excluded, so
// renaming primitives does not change the hash, and connections hash
// identically however their insertion order was produced (e.g. from a
// map-ordered builder). Any semantic edit — another context count, a
// different FU operation set, an added or rewired connection — changes
// the hash.
//
// Together with dfg.Fingerprint this keys the mapping service's
// content-addressed result cache: the MRRG (and therefore the ILP
// formulation) is generated from exactly the structure hashed here.
func (a *Arch) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte("cgramap/arch/v1\n"))
	fpInt(h, a.Contexts)
	fpInt(h, len(a.Prims))
	for _, p := range a.Prims {
		fpInt(h, int(p.Kind))
		fpInt(h, p.NIn)
		fpInt(h, p.Latency)
		fpInt(h, p.II)
		fpInt(h, p.Cost)
		ops := make([]int, len(p.Ops))
		for i, op := range p.Ops {
			ops[i] = int(op)
		}
		sort.Ints(ops)
		fpInt(h, len(ops))
		for _, op := range ops {
			fpInt(h, op)
		}
	}
	conns := make([]Conn, len(a.Conns))
	copy(conns, a.Conns)
	sort.Slice(conns, func(i, j int) bool {
		if conns[i].Dst != conns[j].Dst {
			return conns[i].Dst < conns[j].Dst
		}
		if conns[i].DstPort != conns[j].DstPort {
			return conns[i].DstPort < conns[j].DstPort
		}
		return conns[i].Src < conns[j].Src
	})
	fpInt(h, len(conns))
	for _, c := range conns {
		fpInt(h, c.Src)
		fpInt(h, c.Dst)
		fpInt(h, c.DstPort)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fpInt feeds one integer into the hash in a fixed-width encoding, so
// adjacent fields cannot alias.
func fpInt(h hash.Hash, v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	h.Write(buf[:])
}
