package bench

import (
	"fmt"
	"sort"

	"cgramap/internal/dfg"
)

// Extra kernels beyond the paper's Table 1 suite: realistic workloads for
// the examples, the extended tests and architecture-exploration studies.
// They exercise parts of the system the Table 1 set does not — multiple
// outputs, loop-carried recurrences, strided memory traffic.

var extraBuilders = map[string]func() *dfg.Graph{
	"fir4":       buildFIR4,
	"complexmul": buildComplexMul,
	"matvec2":    buildMatVec2,
	"horner4":    buildHorner4,
	"iir1":       buildIIR1,
	"memstride":  buildMemStride,
}

// ExtraNames lists the extended kernels in a stable order.
func ExtraNames() []string {
	names := make([]string, 0, len(extraBuilders))
	for n := range extraBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GetExtra builds one of the extended kernels.
func GetExtra(name string) (*dfg.Graph, error) {
	b, ok := extraBuilders[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown extra kernel %q (known: %v)", name, ExtraNames())
	}
	return b(), nil
}

// buildFIR4: four-tap finite impulse response filter,
// y = sum(w_i * x_i), evaluated as a multiply/accumulate chain.
func buildFIR4() *dfg.Graph {
	g := dfg.New("fir4")
	acc := g.Mul("m0", g.In("w0"), g.In("x0"))
	for i := 1; i < 4; i++ {
		m := g.Mul(fmt.Sprintf("m%d", i), g.In(fmt.Sprintf("w%d", i)), g.In(fmt.Sprintf("x%d", i)))
		acc = g.Add(fmt.Sprintf("a%d", i), acc, m)
	}
	g.Out("y", acc)
	return g
}

// buildComplexMul: complex multiplication
// (a+bi)(c+di) = (ac-bd) + (ad+bc)i — two outputs sharing four products.
func buildComplexMul() *dfg.Graph {
	g := dfg.New("complexmul")
	a := g.In("a")
	b := g.In("b")
	c := g.In("c")
	d := g.In("d")
	ac := g.Mul("ac", a, c)
	bd := g.Mul("bd", b, d)
	ad := g.Mul("ad", a, d)
	bc := g.Mul("bc", b, c)
	g.Out("re", g.Sub("res", ac, bd))
	g.Out("im", g.Add("ims", ad, bc))
	return g
}

// buildMatVec2: 2x2 matrix-vector product — two independent dot products
// over a shared input vector (fanout on x0/x1).
func buildMatVec2() *dfg.Graph {
	g := dfg.New("matvec2")
	x0 := g.In("x0")
	x1 := g.In("x1")
	for r := 0; r < 2; r++ {
		a := g.In(fmt.Sprintf("a%d0", r))
		b := g.In(fmt.Sprintf("a%d1", r))
		y := g.Add(fmt.Sprintf("y%d", r),
			g.Mul(fmt.Sprintf("p%d0", r), a, x0),
			g.Mul(fmt.Sprintf("p%d1", r), b, x1))
		g.Out(fmt.Sprintf("out%d", r), y)
	}
	return g
}

// buildHorner4: degree-4 polynomial by Horner's rule,
// p = (((c4*x + c3)*x + c2)*x + c1)*x + c0.
func buildHorner4() *dfg.Graph {
	g := dfg.New("horner4")
	x := g.In("x")
	acc := g.In("c4")
	for i := 3; i >= 0; i-- {
		m := g.Mul(fmt.Sprintf("m%d", i), acc, x)
		acc = g.Add(fmt.Sprintf("s%d", i), m, g.In(fmt.Sprintf("c%d", i)))
	}
	g.Out("p", acc)
	return g
}

// buildIIR1: first-order infinite impulse response filter
// y = a*y_prev + b*x — a loop-carried recurrence (back-edge), exercising
// cross-context register routing (RecMII = 2: multiply then add on the
// cycle).
func buildIIR1() *dfg.Graph {
	g := dfg.New("iir1")
	a := g.In("a")
	b := g.In("b")
	x := g.In("x")
	bx := g.Mul("bx", b, x)
	// ay = a * y  (y wired below as a back-edge)
	ay, err := g.AddOp("ay", dfg.Mul, a, a) // placeholder second operand
	if err != nil {
		panic(err)
	}
	y, err := g.AddOp("y", dfg.Add, ay.Out, bx)
	if err != nil {
		panic(err)
	}
	// Rewire ay's second operand to y's output (the recurrence).
	old := ay.In[1]
	ay.In[1] = y.Out
	old.Uses = old.Uses[:1]
	y.Out.Uses = append(y.Out.Uses, dfg.Use{Op: ay, Operand: 1})
	g.Out("out", y.Out)
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// buildMemStride: strided memory traffic — load two elements, combine,
// store to a derived address. Exercises the row-shared memory ports.
func buildMemStride() *dfg.Graph {
	g := dfg.New("memstride")
	base := g.In("base")
	one := g.In("one")
	a := g.Load("lda", base)
	next := g.Add("next", base, one)
	b := g.Load("ldb", next)
	sum := g.Add("sum", a, b)
	dst := g.Add("dst", next, one)
	g.Store("st", dst, sum)
	return g
}
