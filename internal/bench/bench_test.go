package bench

import (
	"testing"

	"cgramap/internal/dfg"
)

// TestTable1Exact verifies that every synthesised benchmark reproduces the
// published Table 1 characteristics exactly.
func TestTable1Exact(t *testing.T) {
	for _, want := range Table1 {
		g, err := Get(want.Name)
		if err != nil {
			t.Errorf("%s: %v", want.Name, err)
			continue
		}
		st := g.Stats()
		if st.IOs != want.IOs || st.Ops != want.Ops || st.Multiplies != want.Multiplies {
			t.Errorf("%s: got {IOs:%d Ops:%d Mul:%d}, want {IOs:%d Ops:%d Mul:%d}",
				want.Name, st.IOs, st.Ops, st.Multiplies, want.IOs, want.Ops, want.Multiplies)
		}
	}
}

func TestAllValidAcyclic(t *testing.T) {
	for _, g := range All() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if !g.Acyclic() {
			t.Errorf("%s: unexpected cycle", g.Name)
		}
	}
}

func TestNamesMatchTable(t *testing.T) {
	names := Names()
	if len(names) != 19 {
		t.Fatalf("len(Names()) = %d, want 19", len(names))
	}
	for i, n := range names {
		if n != Table1[i].Name {
			t.Errorf("Names()[%d] = %q, want %q", i, n, Table1[i].Name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) succeeded")
	}
}

func TestMACUsesMemoryOps(t *testing.T) {
	g := MustGet("mac")
	if g.OpsOfKind(dfg.Load) != 2 || g.OpsOfKind(dfg.Store) != 1 {
		t.Errorf("mac: loads=%d stores=%d, want 2/1",
			g.OpsOfKind(dfg.Load), g.OpsOfKind(dfg.Store))
	}
}

func TestExtremeHasHighFanout(t *testing.T) {
	g := MustGet("extreme")
	h := g.OpByName("h")
	if h == nil || h.Out == nil {
		t.Fatal("extreme: hub op missing")
	}
	if len(h.Out.Uses) < 6 {
		t.Errorf("extreme hub fanout = %d, want >= 6 (routing stress)", len(h.Out.Uses))
	}
}

func TestTextRoundTripAllBenchmarks(t *testing.T) {
	for _, g := range All() {
		text := g.FormatString()
		g2, err := dfg.ParseString(text)
		if err != nil {
			t.Errorf("%s: reparse: %v", g.Name, err)
			continue
		}
		if g.Stats() != g2.Stats() || g.NumSubVals() != g2.NumSubVals() {
			t.Errorf("%s: round trip changed characteristics", g.Name)
		}
	}
}
