// Package bench provides the 19 benchmark data-flow graphs evaluated in
// the paper (Table 1).
//
// The paper's DFGs were produced by an LLVM-based flow plus hand-crafted
// kernels; the exact graph topologies are not published. Each benchmark
// here is synthesised so that its I/O count, internal operation count and
// multiply count match Table 1 exactly, with graph structure chosen to
// reflect the benchmark's nature (adder/multiplier chains, Taylor-series
// polynomial kernels, a high-fanout routing stress case, ...). See
// DESIGN.md for the substitution rationale.
package bench

import (
	"fmt"
	"sort"

	"cgramap/internal/dfg"
)

// Characteristics mirrors one row of the paper's Table 1.
type Characteristics struct {
	Name       string
	IOs        int
	Ops        int
	Multiplies int
}

// Table1 lists the published benchmark characteristics in paper order.
var Table1 = []Characteristics{
	{"accum", 10, 8, 4},
	{"mac", 1, 9, 3},
	{"add_10", 10, 10, 0},
	{"add_14", 14, 14, 0},
	{"add_16", 16, 16, 0},
	{"mult_10", 10, 9, 9},
	{"mult_14", 14, 13, 13},
	{"mult_16", 16, 15, 15},
	{"2x2-f", 5, 5, 1},
	{"2x2-p", 6, 6, 1},
	{"cos_4", 5, 14, 12},
	{"cosh_4", 5, 14, 12},
	{"exp_4", 4, 9, 5},
	{"exp_5", 5, 12, 9},
	{"exp_6", 6, 15, 14},
	{"sinh_4", 5, 13, 9},
	{"tay_4", 5, 10, 6},
	{"extreme", 16, 19, 4},
	{"weighted_sum", 16, 16, 8},
}

var builders = map[string]func() *dfg.Graph{
	"accum":        buildAccum,
	"mac":          buildMAC,
	"add_10":       func() *dfg.Graph { return buildAddChain("add_10", 10) },
	"add_14":       func() *dfg.Graph { return buildAddChain("add_14", 14) },
	"add_16":       func() *dfg.Graph { return buildAddChain("add_16", 16) },
	"mult_10":      func() *dfg.Graph { return buildMulChain("mult_10", 9) },
	"mult_14":      func() *dfg.Graph { return buildMulChain("mult_14", 13) },
	"mult_16":      func() *dfg.Graph { return buildMulChain("mult_16", 15) },
	"2x2-f":        build2x2F,
	"2x2-p":        build2x2P,
	"cos_4":        func() *dfg.Graph { return buildTrig4("cos_4") },
	"cosh_4":       func() *dfg.Graph { return buildTrig4("cosh_4") },
	"exp_4":        buildExp4,
	"exp_5":        buildExp5,
	"exp_6":        buildExp6,
	"sinh_4":       buildSinh4,
	"tay_4":        buildTay4,
	"extreme":      buildExtreme,
	"weighted_sum": buildWeightedSum,
}

// Names returns all benchmark names in Table 1 (paper) order.
func Names() []string {
	names := make([]string, len(Table1))
	for i, c := range Table1 {
		names[i] = c.Name
	}
	return names
}

// Get builds the named benchmark DFG.
func Get(name string) (*dfg.Graph, error) {
	b, ok := builders[name]
	if !ok {
		known := make([]string, 0, len(builders))
		for n := range builders {
			known = append(known, n)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("bench: unknown benchmark %q (known: %v)", name, known)
	}
	return b(), nil
}

// MustGet is Get but panics on unknown names; for use with the fixed
// benchmark list.
func MustGet(name string) *dfg.Graph {
	g, err := Get(name)
	if err != nil {
		panic(err)
	}
	return g
}

// All builds every benchmark in Table 1 order.
func All() []*dfg.Graph {
	gs := make([]*dfg.Graph, len(Table1))
	for i, c := range Table1 {
		gs[i] = MustGet(c.Name)
	}
	return gs
}

// buildAccum: an alternating multiply/accumulate chain,
// t = ((((in0*in1)+in2)*in3)+in4)..., the running-sum form such kernels
// compile to. 9 inputs + 1 output = 10 I/Os; 4 mul + 4 add = 8 ops.
func buildAccum() *dfg.Graph {
	g := dfg.New("accum")
	in := inputs(g, 9)
	t := g.Mul("t1", in[0], in[1])
	for i := 2; i <= 8; i++ {
		name := fmt.Sprintf("t%d", i)
		if i%2 == 0 {
			t = g.Add(name, t, in[i])
		} else {
			t = g.Mul(name, t, in[i])
		}
	}
	g.Out("out0", t)
	return g
}

// buildMAC: a memory-resident multiply-accumulate. A single address input,
// two loads, three multiply-accumulate rounds and a store back:
// 1 I/O; 2 load + 3 mul + 3 add + 1 store = 9 ops.
func buildMAC() *dfg.Graph {
	g := dfg.New("mac")
	addr := g.In("addr")
	a := g.Load("lda", addr)
	b := g.Load("ldb", addr)
	m1 := g.Mul("m1", a, b)
	s1 := g.Add("s1", m1, a)
	m2 := g.Mul("m2", s1, b)
	s2 := g.Add("s2", m2, m1)
	m3 := g.Mul("m3", s2, a)
	s3 := g.Add("s3", m3, s2)
	g.Store("st", addr, s3)
	return g
}

// buildReduceTree builds an nOps-operation reduction of nIn inputs using
// the given binary operation: pairwise leaf reductions, a combining
// tree over the partial results and any leftover leaf, one chain step
// consuming the final input, then result-doubling steps
// (t+t / t*t) to reach the exact published operation count.
func buildReduceTree(g *dfg.Graph, combine func(name string, a, b *dfg.Value) *dfg.Value, nIn, nOps int) *dfg.Value {
	in := inputs(g, nIn)
	nLeaf := (nIn - 1) / 2
	ops := 0
	step := func(a, b *dfg.Value) *dfg.Value {
		ops++
		return combine(fmt.Sprintf("t%d", ops), a, b)
	}
	level := make([]*dfg.Value, 0, nLeaf)
	for i := 0; i < nLeaf; i++ {
		level = append(level, step(in[2*i], in[2*i+1]))
	}
	for len(level) > 1 {
		next := level[:0:0]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, step(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	t := step(level[0], in[nIn-1])
	for ops < nOps {
		t = step(t, t)
	}
	return t
}

// buildAddChain: an n-operation addition reduction of n-1 inputs
// (I/Os = (n-1)+1 = n; ops = n adds).
func buildAddChain(name string, n int) *dfg.Graph {
	g := dfg.New(name)
	t := buildReduceTree(g, g.Add, n-1, n)
	g.Out("out0", t)
	return g
}

// buildMulChain: an n-operation multiplication reduction of n inputs plus
// one output (I/Os = n+1, matching the mult_10/14/16 rows).
func buildMulChain(name string, n int) *dfg.Graph {
	g := dfg.New(name)
	t := buildReduceTree(g, g.Mul, n, n)
	g.Out("out0", t)
	return g
}

// build2x2F: small 2x2 filter: one product feeding an accumulation chain.
// 4 inputs + 1 output = 5 I/Os; 1 mul + 4 add = 5 ops.
func build2x2F() *dfg.Graph {
	g := dfg.New("2x2-f")
	in := inputs(g, 4)
	m := g.Mul("m", in[0], in[1])
	a1 := g.Add("a1", m, in[2])
	a2 := g.Add("a2", a1, in[3])
	a3 := g.Add("a3", a2, a2)
	a4 := g.Add("a4", a3, a3)
	g.Out("out0", a4)
	return g
}

// build2x2P: the 2x2-f structure with one more tap.
// 5 inputs + 1 output = 6 I/Os; 1 mul + 5 add = 6 ops.
func build2x2P() *dfg.Graph {
	g := dfg.New("2x2-p")
	in := inputs(g, 5)
	m := g.Mul("m", in[0], in[1])
	a1 := g.Add("a1", m, in[2])
	a2 := g.Add("a2", a1, in[3])
	a3 := g.Add("a3", a2, in[4])
	a4 := g.Add("a4", a3, a3)
	a5 := g.Add("a5", a4, a4)
	g.Out("out0", a5)
	return g
}

// buildTrig4: 4-term even-power Taylor kernel (cos/cosh shape):
// k0 + c1*x^2 + c2*x^4 + c3*x^6 with every power chain recomputed from x
// (no sharing), the multiply-heavy form the paper's counts imply.
// Inputs x,c1,c2,c3 + 1 output = 5 I/Os; 12 mul + 2 add = 14 ops.
func buildTrig4(name string) *dfg.Graph {
	g := dfg.New(name)
	x := g.In("x")
	c1 := g.In("c1")
	c2 := g.In("c2")
	c3 := g.In("c3")
	// term 1: x^2 * c1 (2 muls)
	p1 := g.Mul("p1", x, x)
	t1 := g.Mul("t1", p1, c1)
	// term 2: x^4 * c2 without reuse (4 muls)
	q1 := g.Mul("q1", x, x)
	q2 := g.Mul("q2", q1, x)
	q3 := g.Mul("q3", q2, x)
	t2 := g.Mul("t2", q3, c2)
	// term 3: x^6 * c3 without reuse (6 muls)
	r1 := g.Mul("r1", x, x)
	r2 := g.Mul("r2", r1, x)
	r3 := g.Mul("r3", r2, x)
	r4 := g.Mul("r4", r3, x)
	r5 := g.Mul("r5", r4, x)
	t3 := g.Mul("t3", r5, c3)
	s1 := g.Add("s1", t1, t2)
	s2 := g.Add("s2", s1, t3)
	g.Out("out0", s2)
	return g
}

// buildExp4: 4-term exponential Taylor kernel.
// Inputs x,c2,c3 + 1 output = 4 I/Os; 5 mul + 4 add = 9 ops.
func buildExp4() *dfg.Graph {
	g := dfg.New("exp_4")
	x := g.In("x")
	c2 := g.In("c2")
	c3 := g.In("c3")
	p1 := g.Mul("p1", x, x)
	t2 := g.Mul("t2", p1, c2)
	q1 := g.Mul("q1", x, x)
	q2 := g.Mul("q2", q1, x)
	t3 := g.Mul("t3", q2, c3)
	a1 := g.Add("a1", x, x)
	a2 := g.Add("a2", a1, t2)
	a3 := g.Add("a3", a2, t3)
	a4 := g.Add("a4", a3, a3)
	g.Out("out0", a4)
	return g
}

// buildExp5: 5-term exponential Taylor kernel.
// Inputs x,c2,c3,c4 + 1 output = 5 I/Os; 9 mul + 3 add = 12 ops.
func buildExp5() *dfg.Graph {
	g := dfg.New("exp_5")
	x := g.In("x")
	c2 := g.In("c2")
	c3 := g.In("c3")
	c4 := g.In("c4")
	p1 := g.Mul("p1", x, x)
	t2 := g.Mul("t2", p1, c2)
	q1 := g.Mul("q1", x, x)
	q2 := g.Mul("q2", q1, x)
	t3 := g.Mul("t3", q2, c3)
	r1 := g.Mul("r1", x, x)
	r2 := g.Mul("r2", r1, x)
	r3 := g.Mul("r3", r2, x)
	t4 := g.Mul("t4", r3, c4)
	a1 := g.Add("a1", x, t2)
	a2 := g.Add("a2", a1, t3)
	a3 := g.Add("a3", a2, t4)
	g.Out("out0", a3)
	return g
}

// buildExp6: 6-term exponential kernel in a deep product chain (the
// multiply-dominated form the published counts imply: a single addition).
// Inputs x,c2,c3,c4,c5 + 1 output = 6 I/Os; 14 mul + 1 add = 15 ops.
func buildExp6() *dfg.Graph {
	g := dfg.New("exp_6")
	x := g.In("x")
	c2 := g.In("c2")
	c3 := g.In("c3")
	c4 := g.In("c4")
	c5 := g.In("c5")
	p := make([]*dfg.Value, 0, 14)
	t := g.Mul("p1", x, x)
	p = append(p, t)
	mulBy := []*dfg.Value{c2, x, c3, x, c4, x, c5}
	for i, v := range mulBy {
		t = g.Mul(fmt.Sprintf("p%d", i+2), t, v)
		p = append(p, t)
	}
	// Keep multiplying by earlier partial products (re-normalisation
	// chain); consumes every intermediate value.
	for i := 0; i < 6; i++ {
		t = g.Mul(fmt.Sprintf("p%d", i+9), t, p[i])
	}
	a1 := g.Add("a1", t, p[6])
	g.Out("out0", a1)
	return g
}

// buildSinh4: 4-term odd-power Taylor kernel with partial power reuse.
// Inputs x,c3,c5,c7 + 1 output = 5 I/Os; 9 mul + 4 add = 13 ops.
func buildSinh4() *dfg.Graph {
	g := dfg.New("sinh_4")
	x := g.In("x")
	c3 := g.In("c3")
	c5 := g.In("c5")
	c7 := g.In("c7")
	m1 := g.Mul("m1", x, x)   // x^2
	m2 := g.Mul("m2", m1, x)  // x^3
	t3 := g.Mul("t3", m2, c3) // term 3
	m4 := g.Mul("m4", m1, m1) // x^4
	m5 := g.Mul("m5", m4, x)  // x^5
	t5 := g.Mul("t5", m5, c5) // term 5
	m7 := g.Mul("m7", m4, m1) // x^6
	m8 := g.Mul("m8", m7, x)  // x^7
	t7 := g.Mul("t7", m8, c7) // term 7
	s1 := g.Add("s1", x, t3)
	s2 := g.Add("s2", s1, t5)
	s3 := g.Add("s3", s2, t7)
	s4 := g.Add("s4", s3, s3)
	g.Out("out0", s4)
	return g
}

// buildTay4: generic 4-term Taylor kernel with full power reuse.
// Inputs x,c2,c3,c5 + 1 output = 5 I/Os; 6 mul + 4 add = 10 ops.
func buildTay4() *dfg.Graph {
	g := dfg.New("tay_4")
	x := g.In("x")
	ca := g.In("ca")
	cb := g.In("cb")
	cc := g.In("cc")
	m1 := g.Mul("m1", x, x)   // x^2
	t2 := g.Mul("t2", m1, ca) // term 2
	m3 := g.Mul("m3", m1, x)  // x^3
	t3 := g.Mul("t3", m3, cb) // term 3
	m5 := g.Mul("m5", m3, m1) // x^5
	t5 := g.Mul("t5", m5, cc) // term 5
	s1 := g.Add("s1", x, t2)
	s2 := g.Add("s2", s1, t3)
	s3 := g.Add("s3", s2, t5)
	s4 := g.Add("s4", s3, s3)
	g.Out("out0", s4)
	return g
}

// buildExtreme: routing stress case with a fanout-7 internal value and
// four result streams. 12 inputs + 4 outputs = 16 I/Os;
// 4 mul + 9 add + 1 xor + 1 or + 1 and + 2 shift = 19 ops.
func buildExtreme() *dfg.Graph {
	g := dfg.New("extreme")
	in := inputs(g, 12)
	p1 := g.Add("p1", in[0], in[1])
	p2 := g.Add("p2", in[2], in[3])
	p3 := g.Add("p3", in[4], in[5])
	p4 := g.Add("p4", in[6], in[7])
	h := g.Add("h", p1, p2) // high-fanout hub (7 consumers)
	m1 := g.Mul("m1", h, in[8])
	m2 := g.Mul("m2", h, in[9])
	m3 := g.Mul("m3", h, in[10])
	m4 := g.Mul("m4", h, in[11])
	q1 := g.Add("q1", m1, p3)
	q2 := g.Add("q2", m2, p4)
	q3 := g.Add("q3", m3, h)
	q4 := g.Add("q4", m4, h)
	r1, _ := g.AddOp("r1", dfg.Xor, q1, q2)
	r2, _ := g.AddOp("r2", dfg.Or, q3, q4)
	r3, _ := g.AddOp("r3", dfg.And, r1.Out, r2.Out)
	r4 := g.Add("r4", r3.Out, h)
	s1 := g.Shr("sr", r4, in[8])
	s2 := g.Shl("sl", r4, in[9])
	g.Out("out0", s1)
	g.Out("out1", s2)
	g.Out("out2", r1.Out)
	g.Out("out3", r2.Out)
	return g
}

// buildWeightedSum: a Horner-style nested weighting chain alternating
// multiply and add, t = (((in0*in1)+in2)*in3 + in4)..., with two closing
// self-combinations. 15 inputs + 1 output = 16 I/Os; 8 mul + 8 add = 16
// ops.
func buildWeightedSum() *dfg.Graph {
	g := dfg.New("weighted_sum")
	in := inputs(g, 15)
	t := g.Mul("t1", in[0], in[1])
	for i := 2; i <= 14; i++ {
		name := fmt.Sprintf("t%d", i)
		if i%2 == 0 {
			t = g.Add(name, t, in[i])
		} else {
			t = g.Mul(name, t, in[i])
		}
	}
	t = g.Mul("t15", t, t)
	t = g.Add("t16", t, t)
	g.Out("out0", t)
	return g
}

func inputs(g *dfg.Graph, n int) []*dfg.Value {
	vals := make([]*dfg.Value, n)
	for i := range vals {
		vals[i] = g.In(fmt.Sprintf("in%d", i))
	}
	return vals
}
