package bench

import (
	"testing"

	"cgramap/internal/dfg"
)

func TestExtraKernelsValid(t *testing.T) {
	for _, name := range ExtraNames() {
		g, err := GetExtra(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := GetExtra("nope"); err == nil {
		t.Error("unknown extra kernel accepted")
	}
}

func TestExtraKernelShapes(t *testing.T) {
	fir, _ := GetExtra("fir4")
	st := fir.Stats()
	if st.Multiplies != 4 || st.IOs != 9 {
		t.Errorf("fir4 stats %+v", st)
	}
	cm, _ := GetExtra("complexmul")
	outs := 0
	for _, op := range cm.Ops() {
		if op.Kind == dfg.Output {
			outs++
		}
	}
	if outs != 2 {
		t.Errorf("complexmul outputs = %d, want 2", outs)
	}
	iir, _ := GetExtra("iir1")
	if iir.Acyclic() {
		t.Error("iir1 should carry a recurrence back-edge")
	}
	ms, _ := GetExtra("memstride")
	if ms.OpsOfKind(dfg.Load) != 2 || ms.OpsOfKind(dfg.Store) != 1 {
		t.Errorf("memstride memory ops wrong")
	}
}

func TestExtraKernelsEvaluate(t *testing.T) {
	fir, _ := GetExtra("fir4")
	res, err := fir.Eval(map[string]uint32{
		"w0": 1, "x0": 10, "w1": 2, "x1": 20, "w2": 3, "x2": 30, "w3": 4, "x3": 40,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["y"] != 1*10+2*20+3*30+4*40 {
		t.Errorf("fir4 y = %d", res.Outputs["y"])
	}
	cm, _ := GetExtra("complexmul")
	res, err = cm.Eval(map[string]uint32{"a": 5, "b": 2, "c": 7, "d": 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["re"] != 5*7-2*3 || res.Outputs["im"] != 5*3+2*7 {
		t.Errorf("complexmul = %v", res.Outputs)
	}
	hz, _ := GetExtra("horner4")
	res, err = hz.Eval(map[string]uint32{"x": 2, "c4": 1, "c3": 0, "c2": 0, "c1": 0, "c0": 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["p"] != 16+5 {
		t.Errorf("horner4 p = %d, want 21", res.Outputs["p"])
	}
}
