// Package budget provides the process-wide solver worker budget: a
// counting semaphore of CPU tokens shared by every component that fans
// work out across goroutines (the parallel CDCL engine, the speculative
// auto-II sweep, the portfolio racer, and the service's job workers).
//
// The budget exists so that layered parallelism composes instead of
// multiplying: a daemon running W concurrent jobs, each job speculating
// over several IIs, each II solved by a clause-sharing worker gang,
// would oversubscribe the machine many times over if every layer assumed
// it owned all cores. Instead, every goroutine beyond a caller's own is
// paid for with a token from one shared pool, and a layer that finds the
// pool empty simply runs narrower (down to fully sequential) rather than
// queueing or failing. Acquisition is non-blocking by design: mapping
// work always makes progress on the caller's goroutine; tokens only add
// width.
//
// The default pool is sized to runtime.NumCPU, overridable with the
// CGRAMAP_WORKERS environment variable or SetGlobal (the -workers flags
// of cgramap, cgramapd and experiments call SetGlobal at startup).
package budget

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// Pool is a fixed-size pool of worker tokens. The zero value is not
// usable; create pools with New. A nil *Pool is a valid "unlimited"
// pool: every TryAcquire succeeds in full (useful in tests that want
// deterministic width without consulting the machine).
type Pool struct {
	mu   sync.Mutex
	free int
	size int
	peak int // high-water mark of tokens out, for observability
}

// New returns a pool holding n tokens (n < 0 is clamped to 0: a pool
// that never grants extra width).
func New(n int) *Pool {
	if n < 0 {
		n = 0
	}
	return &Pool{free: n, size: n}
}

// Size returns the pool's total token count.
func (p *Pool) Size() int {
	if p == nil {
		return int(^uint(0) >> 1)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// TryAcquire takes up to n tokens without blocking and returns how many
// it got (possibly 0). The caller must Release exactly that many.
func (p *Pool) TryAcquire(n int) int {
	if n <= 0 {
		return 0
	}
	if p == nil {
		return n
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.free {
		n = p.free
	}
	p.free -= n
	if out := p.size - p.free; out > p.peak {
		p.peak = out
	}
	return n
}

// Release returns n tokens to the pool. Releasing more tokens than were
// acquired panics: it indicates unbalanced accounting.
func (p *Pool) Release(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free += n
	if p.free > p.size {
		panic("budget: Release without matching TryAcquire")
	}
}

// InUse reports how many tokens are currently out.
func (p *Pool) InUse() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size - p.free
}

// Peak reports the high-water mark of tokens out.
func (p *Pool) Peak() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

var (
	globalMu sync.Mutex
	global   *Pool
)

// DefaultSize is the size Global uses when SetGlobal was never called:
// the CGRAMAP_WORKERS environment variable when set to a positive
// integer, otherwise runtime.NumCPU.
func DefaultSize() int {
	if s := os.Getenv("CGRAMAP_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
}

// Global returns the process-wide pool, creating it at DefaultSize on
// first use.
func Global() *Pool {
	globalMu.Lock()
	defer globalMu.Unlock()
	if global == nil {
		global = New(DefaultSize())
	}
	return global
}

// SetGlobal replaces the process-wide pool with a fresh one of n tokens.
// Call it once at startup, before solving begins: tokens out of the old
// pool are returned there, not to the new one.
func SetGlobal(n int) {
	globalMu.Lock()
	defer globalMu.Unlock()
	global = New(n)
}
