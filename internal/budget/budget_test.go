package budget

import (
	"sync"
	"testing"
)

func TestTryAcquireBounded(t *testing.T) {
	p := New(3)
	if got := p.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) = %d, want 2", got)
	}
	if got := p.TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) on 1 free = %d, want 1", got)
	}
	if got := p.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on empty pool = %d, want 0", got)
	}
	if p.InUse() != 3 || p.Peak() != 3 {
		t.Fatalf("InUse=%d Peak=%d, want 3/3", p.InUse(), p.Peak())
	}
	p.Release(3)
	if p.InUse() != 0 {
		t.Fatalf("InUse after full release = %d", p.InUse())
	}
	if got := p.TryAcquire(3); got != 3 {
		t.Fatalf("TryAcquire after release = %d, want 3", got)
	}
	p.Release(3)
}

func TestNilPoolIsUnlimited(t *testing.T) {
	var p *Pool
	if got := p.TryAcquire(7); got != 7 {
		t.Fatalf("nil pool TryAcquire(7) = %d", got)
	}
	p.Release(7) // must not panic
	if p.InUse() != 0 {
		t.Fatal("nil pool reports usage")
	}
}

func TestOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release did not panic")
		}
	}()
	New(1).Release(1)
}

func TestNegativeAndZero(t *testing.T) {
	p := New(-5)
	if p.Size() != 0 {
		t.Fatalf("Size = %d, want 0", p.Size())
	}
	if got := p.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on empty = %d", got)
	}
	if got := p.TryAcquire(0); got != 0 {
		t.Fatalf("TryAcquire(0) = %d", got)
	}
}

// TestConcurrentAccounting hammers the pool from many goroutines and
// checks that tokens are conserved (run under -race in CI).
func TestConcurrentAccounting(t *testing.T) {
	p := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				n := p.TryAcquire(2)
				if n > 0 {
					p.Release(n)
				}
			}
		}()
	}
	wg.Wait()
	if p.InUse() != 0 {
		t.Fatalf("tokens leaked: InUse = %d", p.InUse())
	}
	if p.Peak() > 4 {
		t.Fatalf("peak %d exceeds pool size 4", p.Peak())
	}
}

func TestGlobalConfigurable(t *testing.T) {
	SetGlobal(2)
	defer SetGlobal(DefaultSize())
	if Global().Size() != 2 {
		t.Fatalf("global size = %d, want 2", Global().Size())
	}
	t.Setenv("CGRAMAP_WORKERS", "9")
	if DefaultSize() != 9 {
		t.Fatalf("DefaultSize with env = %d, want 9", DefaultSize())
	}
	t.Setenv("CGRAMAP_WORKERS", "bogus")
	if DefaultSize() < 1 {
		t.Fatal("DefaultSize with bad env must fall back to NumCPU")
	}
}
