// Package bb implements a textbook branch-and-bound ILP engine on top of
// the LP simplex relaxation (internal/lp). Unlike the CDCL engine it
// accepts arbitrary integer coefficients; it is the independent
// cross-check used to validate the default engine on reduced instances
// (see the ablation benches), mirroring how the paper positions ILP as
// the provably-correct reference for heuristic methods.
package bb

import (
	"context"
	"fmt"
	"math"

	"cgramap/internal/ilp"
	"cgramap/internal/lp"
)

// Engine is a branch-and-bound 0-1 ILP solver. The zero value is ready to
// use. It implements ilp.Solver.
type Engine struct{}

// New returns a ready Engine.
func New() *Engine { return &Engine{} }

var _ ilp.Solver = (*Engine)(nil)

const intTol = 1e-6

type searchState struct {
	m     *ilp.Model
	fixed []int8 // -1 unfixed, 0, 1
	best  ilp.Assignment
	obj   int
	nodes int64
	ctx   context.Context
	// cancelled is set when ctx fires; the search unwinds.
	cancelled bool
}

// Solve explores the 0-1 tree depth first, pruning with the LP
// relaxation bound. A cancelled solve returns the best incumbent with
// status Feasible (or Unknown when none was found) and a "cancelled"
// marker in Stats.
func (e *Engine) Solve(ctx context.Context, m *ilp.Model) (*ilp.Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return &ilp.Solution{Status: ilp.Unknown, Stats: map[string]int64{"nodes": 0, "cancelled": 1}}, nil
	}
	st := &searchState{
		m:     m,
		fixed: make([]int8, m.NumVars()),
		ctx:   ctx,
	}
	for i := range st.fixed {
		st.fixed[i] = -1
	}
	if err := st.branch(); err != nil {
		return nil, err
	}
	stats := map[string]int64{"nodes": st.nodes}
	if st.cancelled {
		stats["cancelled"] = 1
	}
	switch {
	case st.cancelled && st.best != nil:
		return &ilp.Solution{Status: ilp.Feasible, Assignment: st.best, Objective: st.obj, Stats: stats}, nil
	case st.cancelled:
		return &ilp.Solution{Status: ilp.Unknown, Stats: stats}, nil
	case st.best != nil:
		return &ilp.Solution{Status: ilp.Optimal, Assignment: st.best, Objective: st.obj, Stats: stats}, nil
	default:
		return &ilp.Solution{Status: ilp.Infeasible, Stats: stats}, nil
	}
}

// relax builds and solves the LP relaxation under the current fixings.
func (st *searchState) relax() (*lp.Solution, error) {
	n := st.m.NumVars()
	p := &lp.Problem{NumVars: n, Obj: make([]float64, n), Cancel: st.ctx.Done()}
	for _, t := range st.m.Objective {
		p.Obj[t.Var] += float64(t.Coef)
	}
	for i := range st.m.Constraints {
		c := &st.m.Constraints[i]
		coefs := make([]float64, n)
		for _, t := range c.Terms {
			coefs[t.Var] += float64(t.Coef)
		}
		var rel lp.Rel
		switch c.Rel {
		case ilp.LE:
			rel = lp.LE
		case ilp.GE:
			rel = lp.GE
		case ilp.EQ:
			rel = lp.EQ
		}
		p.Rows = append(p.Rows, lp.Constraint{Coefs: coefs, Rel: rel, RHS: float64(c.RHS)})
	}
	// Fixings as rows (the box already enforces [0,1]).
	for v, f := range st.fixed {
		if f < 0 {
			continue
		}
		coefs := make([]float64, n)
		coefs[v] = 1
		p.Rows = append(p.Rows, lp.Constraint{Coefs: coefs, Rel: lp.EQ, RHS: float64(f)})
	}
	return lp.Solve(p)
}

func (st *searchState) branch() error {
	if st.cancelled {
		return nil
	}
	st.nodes++
	if st.ctx.Err() != nil {
		st.cancelled = true
		return nil
	}
	sol, err := st.relax()
	if err != nil {
		return fmt.Errorf("bb: node %d: %w", st.nodes, err)
	}
	switch sol.Status {
	case lp.Infeasible:
		return nil
	case lp.Unbounded:
		return fmt.Errorf("bb: relaxation unbounded on a 0-1 box (internal error)")
	case lp.Cancelled:
		st.cancelled = true
		return nil
	}
	// Bound: with an integral objective, any integer solution in this
	// subtree costs at least ceil(lpObj).
	if st.best != nil && len(st.m.Objective) > 0 {
		if int(math.Ceil(sol.Obj-intTol)) >= st.obj {
			return nil
		}
	}
	// Integral?
	frac := -1
	fracDist := 0.0
	for v, x := range sol.X {
		d := math.Abs(x - math.Round(x))
		if d > intTol && d > fracDist {
			frac = v
			fracDist = d
		}
	}
	if frac < 0 {
		a := make(ilp.Assignment, len(sol.X))
		for v, x := range sol.X {
			a[v] = x > 0.5
		}
		if err := st.m.Check(a); err == nil {
			obj := a.Eval(st.m.Objective)
			if st.best == nil || obj < st.obj {
				st.best = a
				st.obj = obj
			}
			return nil
		}
		// Numerically integral but infeasible after rounding: fall
		// through and branch on the first unfixed variable to decide
		// exactly.
		for v, f := range st.fixed {
			if f < 0 {
				frac = v
				break
			}
		}
		if frac < 0 {
			return nil // fully fixed and infeasible
		}
	}
	// With no objective, the first integral feasible point finishes the
	// search (st.best short-circuits siblings).
	order := [2]int8{1, 0}
	if sol.X[frac] < 0.5 {
		order = [2]int8{0, 1}
	}
	for _, val := range order {
		if st.best != nil && len(st.m.Objective) == 0 {
			return nil
		}
		st.fixed[frac] = val
		if err := st.branch(); err != nil {
			return err
		}
		st.fixed[frac] = -1
		if st.cancelled {
			return nil
		}
	}
	return nil
}
