package bb

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cgramap/internal/ilp"
	"cgramap/internal/solve/cdcl"
)

func bruteForce(m *ilp.Model) (ilp.Status, int) {
	n := m.NumVars()
	bestObj := 0
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		a := make(ilp.Assignment, n)
		for v := 0; v < n; v++ {
			a[v] = mask&(1<<v) != 0
		}
		if m.Check(a) != nil {
			continue
		}
		obj := a.Eval(m.Objective)
		if !found || obj < bestObj {
			bestObj = obj
			found = true
		}
	}
	if !found {
		return ilp.Infeasible, 0
	}
	return ilp.Optimal, bestObj
}

func TestKnapsackStyle(t *testing.T) {
	// min -(3a+4b+5c) s.t. 2a+3b+4c <= 5 => pick a,b (value 7... check:
	// a+c = 2+4=6 >5; b+c=7>5; a+b=5 ok obj -7; c alone -5).
	m := ilp.NewModel("knap")
	a := m.Binary("a")
	b := m.Binary("b")
	c := m.Binary("c")
	m.AddLE("w", []ilp.Term{{Var: a, Coef: 2}, {Var: b, Coef: 3}, {Var: c, Coef: 4}}, 5)
	m.Objective = []ilp.Term{{Var: a, Coef: -3}, {Var: b, Coef: -4}, {Var: c, Coef: -5}}
	sol, err := New().Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Optimal || sol.Objective != -7 {
		t.Errorf("status=%v obj=%d, want optimal -7", sol.Status, sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	m := ilp.NewModel("inf")
	x := m.Binary("x")
	y := m.Binary("y")
	m.AddGE("c1", ilp.Sum(x, y), 2)
	m.AddLE("c2", ilp.Sum(x, y), 1)
	sol, err := New().Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestFeasibilityOnly(t *testing.T) {
	m := ilp.NewModel("feas")
	vars := make([]ilp.Var, 6)
	for i := range vars {
		vars[i] = m.Binary(fmt.Sprintf("x%d", i))
	}
	m.AddEQ("pick2", ilp.Sum(vars...), 2)
	sol, err := New().Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if err := m.Check(sol.Assignment); err != nil {
		t.Error(err)
	}
}

func TestCancellation(t *testing.T) {
	// A big-ish model; immediate-cancel context must return promptly
	// with Unknown or Feasible, not an error.
	m := ilp.NewModel("big")
	vars := make([]ilp.Var, 40)
	for i := range vars {
		vars[i] = m.Binary(fmt.Sprintf("x%d", i))
	}
	for i := 0; i+2 < len(vars); i++ {
		m.AddLE("c", ilp.Sum(vars[i], vars[i+1], vars[i+2]), 2)
	}
	m.Objective = ilp.Sum(vars...)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	sol, err := New().Solve(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == ilp.Infeasible {
		t.Errorf("cancelled solve claimed infeasibility")
	}
}

// randomModel builds random *general-coefficient* models (the bb engine,
// unlike cdcl, accepts any integer coefficients).
func randomModel(seed int64) *ilp.Model {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(7)
	m := ilp.NewModel("rand")
	vars := make([]ilp.Var, n)
	for i := range vars {
		vars[i] = m.Binary(fmt.Sprintf("x%d", i))
	}
	nCons := 1 + rng.Intn(8)
	for c := 0; c < nCons; c++ {
		size := 1 + rng.Intn(min(4, n))
		var terms []ilp.Term
		used := map[int]bool{}
		for len(terms) < size {
			v := rng.Intn(n)
			if used[v] {
				continue
			}
			used[v] = true
			coef := rng.Intn(7) - 3
			if coef == 0 {
				coef = 1
			}
			terms = append(terms, ilp.Term{Var: vars[v], Coef: coef})
		}
		rel := []ilp.Rel{ilp.LE, ilp.GE, ilp.EQ}[rng.Intn(3)]
		rhs := rng.Intn(2*size+2) - size
		m.Add("r", terms, rel, rhs)
	}
	if rng.Intn(2) == 0 {
		for _, v := range vars {
			if rng.Intn(3) != 0 {
				coef := rng.Intn(9) - 4
				if coef == 0 {
					coef = 2
				}
				m.Objective = append(m.Objective, ilp.Term{Var: v, Coef: coef})
			}
		}
	}
	return m
}

// TestAgainstBruteForce validates bb on random general models.
func TestAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		m := randomModel(seed)
		wantStatus, wantObj := bruteForce(m)
		sol, err := New().Solve(context.Background(), m)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if sol.Status != wantStatus {
			t.Logf("seed %d: status %v, want %v", seed, sol.Status, wantStatus)
			return false
		}
		if wantStatus == ilp.Optimal {
			if sol.Objective != wantObj {
				t.Logf("seed %d: obj %d, want %d", seed, sol.Objective, wantObj)
				return false
			}
			if err := m.Check(sol.Assignment); err != nil {
				t.Logf("seed %d: infeasible assignment: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestEnginesAgree: bb and cdcl agree on random unit-coefficient models —
// the cross-check DESIGN.md promises.
func TestEnginesAgree(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := ilp.NewModel("agree")
		vars := make([]ilp.Var, n)
		for i := range vars {
			vars[i] = m.Binary(fmt.Sprintf("x%d", i))
		}
		for c := 0; c < 1+rng.Intn(6); c++ {
			size := 1 + rng.Intn(min(3, n))
			var terms []ilp.Term
			used := map[int]bool{}
			for len(terms) < size {
				v := rng.Intn(n)
				if used[v] {
					continue
				}
				used[v] = true
				coef := 1
				if rng.Intn(3) == 0 {
					coef = -1
				}
				terms = append(terms, ilp.Term{Var: vars[v], Coef: coef})
			}
			m.Add("r", terms, []ilp.Rel{ilp.LE, ilp.GE, ilp.EQ}[rng.Intn(3)], rng.Intn(size+2)-1)
		}
		if rng.Intn(2) == 0 {
			m.Objective = ilp.Sum(vars...)
		}
		ctx := context.Background()
		s1, err1 := New().Solve(ctx, m)
		s2, err2 := cdcl.New().Solve(ctx, m)
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: errs %v %v", seed, err1, err2)
			return false
		}
		if s1.Status != s2.Status {
			t.Logf("seed %d: bb=%v cdcl=%v", seed, s1.Status, s2.Status)
			return false
		}
		if s1.Status == ilp.Optimal && len(m.Objective) > 0 && s1.Objective != s2.Objective {
			t.Logf("seed %d: obj bb=%d cdcl=%d", seed, s1.Objective, s2.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
