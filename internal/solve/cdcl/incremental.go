package cdcl

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"

	"cgramap/internal/ilp"
)

// Session is an assumption-based incremental CDCL context. It implements
// ilp.Solver, but unlike Engine it keeps one live solver across Solve
// calls: successive models of the same instance family (the MapAuto II
// ladder, a frontier sweep's probes, a portfolio retry of one instance)
// share almost their entire variable set and constraint prefix, and the
// session carries everything learnt about the shared part forward
// instead of starting from zero.
//
// Mechanics (see DESIGN.md, "Incremental solving"):
//
//   - Variables are unified across models by ilp.VarKey: the variable
//     named "F[op,fu@ctx]" at II=3 is the same solver variable it was at
//     II=2, so its VSIDS activity and saved phase — including the phase
//     snapshot of the previous model's best assignment, written by the
//     backtrack that ends each solve — warm-start the next search.
//   - Constraints are content-addressed: each distinct normalized
//     constraint is installed once, guarded by its own fresh selector
//     literal s (clauses become ¬s ∨ C; cardinality constraints only
//     bite while s is true), and a model is solved under the assumption
//     of exactly its constraints' selectors. Selectors appear only
//     negatively in the database and only positively as assumptions, so
//     conflict resolution can never eliminate them: every learnt clause
//     automatically carries the negated selectors of exactly the
//     constraints it depends on. On the II ladder the context-local
//     constraints of shared contexts are byte-identical across IIs, so
//     their selectors — and every learnt clause tagged only with
//     surviving selectors — carry forward; this is the "shared
//     constraint prefix" the clause-carrying soundness rule refers to.
//   - At the start of each solve, constraints the new model does not
//     reference are retired: their selectors are fixed false at level 0,
//     which satisfies (and garbage-collects) their guarded constraints
//     and every learnt clause that depended on them. Clauses tagged only
//     with still-live selectors are kept.
//
// A Session is not safe for concurrent use; give each goroutine its own
// (the speculative sweep keeps a pool, one per lane). Failed-literal
// probing runs above the assumption prefix and records failures through
// regular conflict analysis, so a probed exclusion is a learnt clause
// tagged with the selectors of exactly the constraints that refuted it —
// sound to carry, unlike the scratch engine's unguarded root facts.
type Session struct {
	// seed, when non-zero, jitters activities and phases of variables
	// the first time they are created, exactly like Engine.Seed; later
	// models inherit the learnt state instead of being re-jittered.
	seed int64

	s        *solver
	rng      *rand.Rand
	vars     map[ilp.VarKey]int
	lastSeen []int64 // per solver var: group that last mapped it
	group    int64   // models solved so far

	// Content-addressed constraint store. cons holds the live
	// constraints in install order (retirement iterates it, so the
	// order — and with it the whole search — stays deterministic);
	// consIdx maps a constraint's canonical content key to its position.
	cons    []consEntry
	consIdx map[string]int

	// boundSel guards the objective bound cards of the current solve's
	// optimisation loop; retired at the next solve so bounds never leak
	// across models.
	boundSel lit

	keyBuf []byte // scratch for canonical content keys

	// busy guards against reuse after an aborted solve: if a Solve call
	// never returned (a panic recovered upstream, as the portfolio and
	// frontier probes do), the solver's invariants are unknown and the
	// session rebuilds itself from scratch on the next call.
	busy bool

	carried int64 // learnt clauses alive after the last retirement GC
}

type consEntry struct {
	key  string
	sel  lit
	seen int64 // group that last referenced this constraint
}

var _ ilp.Solver = (*Session)(nil)

// NewSession returns an empty incremental session. A non-zero seed
// randomizes the initial trajectory like Engine.Seed.
func NewSession(seed int64) *Session {
	return &Session{seed: seed, boundSel: litUndef}
}

// reset discards all carried state; the next Solve starts from scratch.
func (ses *Session) reset() {
	ses.s = nil
	ses.vars = nil
	ses.lastSeen = nil
	ses.cons = nil
	ses.consIdx = nil
	ses.boundSel = litUndef
}

// consKey builds the canonical content key of a normalized constraint
// over solver literals: the sorted literals plus the bound, byte-encoded.
func (ses *Session) consKey(lits []lit, k int) string {
	buf := ses.keyBuf[:0]
	var tmp [4]byte
	for _, l := range lits {
		binary.LittleEndian.PutUint32(tmp[:], uint32(l))
		buf = append(buf, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:], uint32(k))
	buf = append(buf, tmp[:]...)
	ses.keyBuf = buf
	return string(buf)
}

// normItem is one normalized, remapped constraint awaiting install.
type normItem struct {
	key  string
	lits []lit
	k    int
}

// Solve decides the model, reusing everything carried from previous
// calls. It implements ilp.Solver; statuses agree with Engine.Solve on
// every decided instance (Feasible/Infeasible are semantic properties of
// the model, not of the search trajectory).
func (ses *Session) Solve(ctx context.Context, m *ilp.Model) (*ilp.Solution, error) {
	if ses.busy {
		// A previous call aborted mid-solve; the invariants are gone.
		ses.reset()
	}
	ses.busy = true
	sol, err := ses.solve(ctx, m)
	// Deliberately not a defer: a panic must leave busy set, so the next
	// call (after a caller's recover, as in the portfolio's attempt
	// containment) rebuilds instead of trusting a half-updated solver.
	ses.busy = false
	return sol, err
}

func (ses *Session) solve(ctx context.Context, m *ilp.Model) (*ilp.Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return &ilp.Solution{Status: ilp.Unknown, Stats: map[string]int64{"cancelled": 1}}, nil
	}
	if ses.s == nil {
		ses.s = newSolver(0)
		ses.vars = make(map[ilp.VarKey]int, m.NumVars())
		ses.consIdx = make(map[string]int, len(m.Constraints))
	}
	if ses.rng == nil && ses.seed != 0 {
		ses.rng = rand.New(rand.NewSource(ses.seed))
	}
	s := ses.s
	ses.group++
	g := ses.group

	// Unify the model's variables with the session namespace. Fresh
	// variables get solver indices now; the solver itself grows once,
	// after the selector count is known.
	modelVar := make([]int, m.NumVars())
	next := s.nVars
	var reusedVars int64
	fresh := make([]int, 0, 16) // model vars that allocated a new solver var
	for v := 0; v < m.NumVars(); v++ {
		key := m.VarKey(ilp.Var(v))
		sv, ok := ses.vars[key]
		if !ok {
			sv = next
			next++
			ses.vars[key] = sv
			fresh = append(fresh, v)
		} else {
			reusedVars++
		}
		for len(ses.lastSeen) <= sv {
			ses.lastSeen = append(ses.lastSeen, 0)
		}
		if ses.lastSeen[sv] == g {
			return nil, fmt.Errorf("cdcl: model %q has duplicate variable name %q; incremental solving requires unique names", m.Name, m.VarName(ilp.Var(v)))
		}
		ses.lastSeen[sv] = g
		modelVar[v] = sv
	}

	// Normalize, remap and content-address every constraint. Reused
	// constraints are marked as referenced by this group; new content is
	// queued for install. Within-model duplicates collapse onto one
	// selector.
	remap := func(lits []lit) {
		for i, l := range lits {
			lits[i] = mkLit(modelVar[l.vi()], l.sign())
		}
		// Canonical order for content addressing (remapping does not
		// preserve the model-index sort).
		sortLits(lits)
	}
	var assumpsReused, assumpsNew []lit
	var pending []normItem
	pendingIdx := make(map[string]struct{})
	var reusedCons int64
	collect := func(c *ilp.Constraint, flip bool) error {
		n, err := normalizeLE(c.Terms, c.RHS, flip)
		if err != nil {
			return fmt.Errorf("%s constraint %q: %w", m.Name, c.Name, err)
		}
		remap(n.lits)
		key := ses.consKey(n.lits, n.k)
		if idx, ok := ses.consIdx[key]; ok {
			if ses.cons[idx].seen != g {
				ses.cons[idx].seen = g
				assumpsReused = append(assumpsReused, ses.cons[idx].sel)
				reusedCons++
			}
			return nil
		}
		if _, ok := pendingIdx[key]; ok {
			return nil
		}
		pendingIdx[key] = struct{}{}
		pending = append(pending, normItem{key: key, lits: n.lits, k: n.k})
		return nil
	}
	for i := range m.Constraints {
		c := &m.Constraints[i]
		if c.Rel == ilp.LE || c.Rel == ilp.EQ {
			if err := collect(c, false); err != nil {
				return nil, err
			}
		}
		if c.Rel == ilp.GE || c.Rel == ilp.EQ {
			if err := collect(c, true); err != nil {
				return nil, err
			}
		}
	}

	// Retire everything the new model does not reference: the objective
	// bound of the previous solve and every unreferenced constraint.
	s.cancelUntil(0)
	retired := false
	if ses.boundSel != litUndef {
		if !s.addFact(ses.boundSel.neg()) {
			return nil, fmt.Errorf("cdcl: incremental session state corrupt at group %d", g)
		}
		ses.boundSel = litUndef
		retired = true
	}
	if len(assumpsReused) != len(ses.cons) {
		kept := ses.cons[:0]
		for _, e := range ses.cons {
			if e.seen == g {
				kept = append(kept, e)
				continue
			}
			delete(ses.consIdx, e.key)
			if !s.addFact(e.sel.neg()) {
				return nil, fmt.Errorf("cdcl: incremental session state corrupt at group %d", g)
			}
			retired = true
		}
		ses.cons = kept
		for i := range ses.cons {
			ses.consIdx[ses.cons[i].key] = i
		}
	}
	if retired {
		if confl := s.propagate(); !confl.none() {
			s.ok = false
		}
		if !s.simplifyAtRoot() {
			// A level-0 conflict in the guarded union theory cannot
			// happen (all selectors false satisfies every group).
			ses.reset()
			return nil, fmt.Errorf("cdcl: incremental session derived a global conflict at group %d (bug)", g)
		}
	}
	ses.carried = int64(len(s.learnts))

	// Grow the solver: formulation variables first, then one selector
	// per pending constraint.
	selBase := next
	s.ensureVars(next + len(pending))

	// Fresh variables take the model's branching hints (and the seed
	// jitter, once); reused variables keep their learnt activity and
	// saved phase — that is the warm start.
	for _, v := range fresh {
		sv := modelVar[v]
		if pri := m.BranchPriority(ilp.Var(v)); pri != 0 {
			s.activity[sv] = float64(pri)
		}
		s.phase[sv] = m.PhaseHint(ilp.Var(v))
		if ses.rng != nil {
			s.activity[sv] += ses.rng.Float64() * 0.4
			if m.PhaseHint(ilp.Var(v)) {
				s.phase[sv] = ses.rng.Float64() >= 0.1
			} else {
				s.phase[sv] = ses.rng.Intn(2) == 1
			}
		}
		s.heap.update(sv)
	}

	// Install the new constraints behind their selectors.
	for i := range pending {
		sel := mkLit(selBase+i, false)
		s.addAtMostGuarded(pending[i].lits, pending[i].k, sel)
		if !s.ok {
			return nil, fmt.Errorf("cdcl: incremental session database became unsatisfiable installing group %d (bug)", g)
		}
		ses.consIdx[pending[i].key] = len(ses.cons)
		ses.cons = append(ses.cons, consEntry{key: pending[i].key, sel: sel, seen: g})
		assumpsNew = append(assumpsNew, sel)
	}

	objLits, offset, err := objectiveLits(m)
	if err != nil {
		return nil, err
	}
	remap(objLits)

	base := struct{ conflicts, decisions, propagations, restarts int64 }{
		s.conflicts, s.decisions, s.propagations, s.restarts,
	}
	stats := func() map[string]int64 {
		return map[string]int64{
			"conflicts":       s.conflicts - base.conflicts,
			"decisions":       s.decisions - base.decisions,
			"propagations":    s.propagations - base.propagations,
			"restarts":        s.restarts - base.restarts,
			"clauses":         int64(len(s.clauses)),
			"cards":           int64(len(s.cards)),
			"learnts":         int64(len(s.learnts)),
			"incremental":     1,
			"group":           g,
			"vars_reused":     reusedVars,
			"vars_new":        int64(len(fresh)),
			"cons_reused":     reusedCons,
			"cons_new":        int64(len(pending)),
			"learnts_carried": ses.carried,
			"assumptions":     int64(len(s.assumps)),
		}
	}

	extract := func() ilp.Assignment {
		a := make(ilp.Assignment, m.NumVars())
		for v := range a {
			a[v] = s.modelValue(modelVar[v])
		}
		return a
	}

	s.assumps = append(s.assumps[:0], assumpsReused...)
	s.assumps = append(s.assumps, assumpsNew...)

	// Failed-literal probing of prioritised variables, above the
	// assumption prefix. Matches the scratch engine's probe pass; a
	// variable excluded in an earlier group skips re-probing because its
	// carried exclusion clause already propagates it false.
	var probeCands []int
	for v := 0; v < m.NumVars(); v++ {
		if m.BranchPriority(ilp.Var(v)) > 0 {
			probeCands = append(probeCands, modelVar[v])
		}
	}
	if len(probeCands) > 0 {
		switch s.probeAssumps(ctx, probeCands) {
		case lUndef:
			st := stats()
			st["cancelled"] = 1
			return &ilp.Solution{Status: ilp.Unknown, Stats: st}, nil
		case lFalse:
			if !s.ok {
				ses.reset()
				return nil, fmt.Errorf("cdcl: incremental session derived a global conflict at group %d (bug)", g)
			}
			return &ilp.Solution{Status: ilp.Infeasible, Stats: stats()}, nil
		}
	}

	var best ilp.Assignment
	bestObj := 0
	for {
		res := s.search(ctx)
		switch res {
		case lUndef: // cancelled
			st := stats()
			st["cancelled"] = 1
			if best != nil {
				return &ilp.Solution{Status: ilp.Feasible, Assignment: best, Objective: bestObj, Stats: st}, nil
			}
			return &ilp.Solution{Status: ilp.Unknown, Stats: st}, nil
		case lFalse:
			if !s.ok {
				// A level-0 conflict would mean the guarded union
				// theory itself is unsatisfiable, which cannot happen
				// (all selectors false satisfies every group). Fail
				// loudly rather than report a wrong Infeasible.
				ses.reset()
				return nil, fmt.Errorf("cdcl: incremental session derived a global conflict at group %d (bug)", g)
			}
			if best != nil {
				return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: bestObj, Stats: stats()}, nil
			}
			return &ilp.Solution{Status: ilp.Infeasible, Stats: stats()}, nil
		}
		// Satisfiable under the model's assumptions.
		best = extract()
		bestObj = best.Eval(m.Objective)
		if len(m.Objective) == 0 {
			return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: 0, Stats: stats()}, nil
		}
		litCount := bestObj - offset
		if litCount == 0 {
			return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: bestObj, Stats: stats()}, nil
		}
		// Strengthen the bound under a solve-local selector so it
		// retires with this model instead of constraining later ones.
		s.cancelUntil(0)
		if ses.boundSel == litUndef {
			s.ensureVars(s.nVars + 1)
			ses.boundSel = mkLit(s.nVars-1, false)
			s.assumps = append(s.assumps, ses.boundSel)
		}
		if !s.addAtMostGuarded(objLits, litCount-1, ses.boundSel) {
			return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: bestObj, Stats: stats()}, nil
		}
	}
}

// learnConflict analyzes a conflict, backjumps, and installs the learnt
// clause (as a fact when unit — unit learnts are assumption-free by
// construction, hence globally sound). Returns false on a root
// refutation, with ok cleared by the caller's convention intact.
func (s *solver) learnConflict(confl conflictRef) bool {
	s.conflicts++
	learnt, bt := s.analyze(confl)
	s.cancelUntil(s.clampBackjump(bt, len(learnt)))
	if len(learnt) == 1 {
		return s.addFact(learnt[0])
	}
	s.sinkSelectors(learnt)
	c := &clause{lits: learnt, learnt: true}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.bumpClause(c)
	s.enqueue(learnt[0], c, -1)
	s.decayActivities()
	return true
}

// raiseAssumptions brings the trail up to the assumption prefix, learning
// from any conflicts on the way. Returns lTrue with every assumption
// enqueued and propagated, lFalse when the assumptions are refuted
// (assumpFailed set; or ok cleared on a true root conflict), lUndef on
// cancellation.
func (s *solver) raiseAssumptions(ctx context.Context) lbool {
	for {
		if confl := s.propagate(); !confl.none() {
			if s.decisionLevel() == 0 {
				s.ok = false
				return lFalse
			}
			if !s.learnConflict(confl) {
				return lFalse
			}
			if s.conflicts%1024 == 0 && ctx.Err() != nil {
				return lUndef
			}
			continue
		}
		dl := s.decisionLevel()
		if dl >= len(s.assumps) {
			return lTrue
		}
		p := s.assumps[dl]
		switch s.value(p) {
		case lFalse:
			s.assumpFailed = true
			return lFalse
		case lTrue:
			s.trailLim = append(s.trailLim, len(s.trail))
		default:
			s.decisions++
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(p, nil, -1)
		}
	}
}

// probeAssumps is root-level failed-literal probing made sound for
// incremental solving: each candidate is tried true one decision level
// above the assumption prefix, and a failing probe goes through analyze,
// producing a clause tagged with the negated selectors of exactly the
// constraints the refutation used (an unguarded fact when it used none).
// Repeats to a bounded fixpoint like the scratch engine's probe.
func (s *solver) probeAssumps(ctx context.Context, candidates []int) lbool {
	for round := 0; round < 3; round++ {
		progress := false
		for _, v := range candidates {
			if r := s.raiseAssumptions(ctx); r != lTrue {
				return r
			}
			if s.assigns[v] != lUndef {
				continue
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(mkLit(v, false), nil, -1)
			confl := s.propagate()
			if confl.none() {
				s.cancelUntil(len(s.assumps))
				continue
			}
			progress = true
			if !s.learnConflict(confl) {
				return lFalse
			}
			if ctx.Err() != nil {
				return lTrue // stop probing, let search handle the deadline
			}
		}
		if !progress {
			break
		}
	}
	// Leave the trail wherever the last backjump put it; search replays
	// the assumption prefix from there.
	return lTrue
}

// sortLits sorts literals ascending (insertion sort: constraint arities
// are small and often nearly sorted after remapping).
func sortLits(lits []lit) {
	for i := 1; i < len(lits); i++ {
		l := lits[i]
		j := i - 1
		for j >= 0 && lits[j] > l {
			lits[j+1] = lits[j]
			j--
		}
		lits[j+1] = l
	}
}
