package cdcl

import (
	"context"
	"fmt"
	"testing"

	"cgramap/internal/ilp"
)

// TestProbingFixesFailedLiterals: a prioritised variable whose assignment
// propagates to a contradiction must be fixed false at the root, and the
// answers with and without probing must agree.
func TestProbingFixesFailedLiterals(t *testing.T) {
	build := func() *ilp.Model {
		m := ilp.NewModel("probe")
		x := m.Binary("x")
		y := m.Binary("y")
		z := m.Binary("z")
		// x -> y and x -> ¬y: x is a failed literal.
		m.AddLE("c1", []ilp.Term{{Var: x, Coef: 1}, {Var: y, Coef: -1}}, 0)
		m.AddLE("c2", []ilp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, 1)
		m.AddGE("c3", ilp.Sum(x, z), 1)
		m.SetBranchPriority(x, 1)
		return m
	}
	withProbe, err := New().Solve(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	without, err := (&Engine{DisableProbing: true}).Solve(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	if withProbe.Status != ilp.Optimal || without.Status != ilp.Optimal {
		t.Fatalf("status with=%v without=%v", withProbe.Status, without.Status)
	}
	if withProbe.Assignment[0] {
		t.Error("failed literal x assigned true")
	}
}

// TestProbingPreservesAnswers: probing never changes the verdict on
// random unit models when every variable is prioritised.
func TestProbingPreservesAnswers(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		m1 := randomUnitModel(seed)
		for v := 0; v < m1.NumVars(); v++ {
			m1.SetBranchPriority(ilp.Var(v), 1)
		}
		m2 := randomUnitModel(seed)
		s1, err := New().Solve(context.Background(), m1)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := (&Engine{DisableProbing: true}).Solve(context.Background(), m2)
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status {
			t.Fatalf("seed %d: probing changed status %v -> %v", seed, s2.Status, s1.Status)
		}
		if s1.Status == ilp.Optimal && s1.Objective != s2.Objective {
			t.Fatalf("seed %d: probing changed objective %d -> %d", seed, s2.Objective, s1.Objective)
		}
	}
}

// TestProbingprovesRootInfeasibility: when probing alone refutes every
// branch of an exactly-one group, the instance is infeasible without
// search.
func TestProbingProvesRootInfeasibility(t *testing.T) {
	m := ilp.NewModel("dead-group")
	var group []ilp.Var
	blocker := m.Binary("b")
	m.AddGE("force-b", ilp.Sum(blocker), 1)
	for i := 0; i < 3; i++ {
		v := m.Binary(fmt.Sprintf("g%d", i))
		m.SetBranchPriority(v, 1)
		group = append(group, v)
		// each group member contradicts b
		m.AddLE("clash", ilp.Sum(v, blocker), 1)
	}
	m.AddGE("one-of", ilp.Sum(group...), 1)
	sol, err := New().Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}
