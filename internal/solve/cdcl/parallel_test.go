package cdcl

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cgramap/internal/budget"
	"cgramap/internal/ilp"
)

func TestPoolLengthCapEnforced(t *testing.T) {
	p := newSharePool(3, 16)
	if p.Export(0, []lit{mkLit(0, false), mkLit(1, false), mkLit(2, false), mkLit(3, false)}) {
		t.Error("clause above the length cap was accepted")
	}
	if !p.Export(0, []lit{mkLit(0, false), mkLit(1, true)}) {
		t.Error("clause within the cap was refused")
	}
	if p.Export(0, nil) {
		t.Error("empty clause accepted")
	}
	exp, ref, _ := p.Stats()
	if exp != 1 || ref != 2 {
		t.Errorf("exported=%d refused=%d, want 1/2", exp, ref)
	}
}

func TestPoolNoSelfImport(t *testing.T) {
	p := newSharePool(8, 16)
	p.Export(0, []lit{mkLit(0, false)})
	p.Export(1, []lit{mkLit(1, false)})
	p.Export(0, []lit{mkLit(2, false)})

	var got []lit
	cursor, n := p.Import(0, 0, func(lits []lit) bool {
		got = append(got, lits...)
		return true
	})
	if n != 1 || len(got) != 1 || got[0] != mkLit(1, false) {
		t.Fatalf("owner 0 imported %v (n=%d), want only worker 1's clause", got, n)
	}
	// Re-importing from the advanced cursor delivers nothing new.
	if _, n := p.Import(0, cursor, func([]lit) bool { return true }); n != 0 {
		t.Errorf("duplicate delivery: %d clauses on second import", n)
	}
	// A different worker sees both of worker 0's clauses exactly once.
	if _, n := p.Import(2, 0, func([]lit) bool { return true }); n != 3 {
		t.Errorf("worker 2 imported %d clauses, want 3", n)
	}
}

func TestPoolRingOverflow(t *testing.T) {
	p := newSharePool(8, 4)
	for i := 0; i < 10; i++ {
		p.Export(0, []lit{mkLit(i, false)})
	}
	_, _, dropped := p.Stats()
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	// A cursor pointing into the dropped region clamps to the window.
	var got []lit
	if _, n := p.Import(1, 2, func(lits []lit) bool {
		got = append(got, lits...)
		return true
	}); n != 4 {
		t.Errorf("imported %d, want the 4 surviving clauses", n)
	}
	if got[0] != mkLit(6, false) {
		t.Errorf("oldest surviving clause = %v, want var 6", got[0])
	}
}

// TestPoolConcurrent hammers the pool from several exporting and
// importing goroutines (meaningful under -race): no worker may ever
// receive its own clause, and cursors must never deliver a clause twice.
func TestPoolConcurrent(t *testing.T) {
	const workers, perWorker = 4, 500
	p := newSharePool(8, 256)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor uint64
			seen := map[lit]int{}
			for i := 0; i < perWorker; i++ {
				// Each worker's clauses carry its identity in the
				// literal's variable index modulo the worker count.
				p.Export(w, []lit{mkLit(i*workers+w, false)})
				cursor, _ = p.Import(w, cursor, func(lits []lit) bool {
					seen[lits[0]]++
					return true
				})
			}
			cursor, _ = p.Import(w, cursor, func(lits []lit) bool {
				seen[lits[0]]++
				return true
			})
			for l, n := range seen {
				if l.vi()%workers == w {
					errs <- fmt.Errorf("worker %d imported its own clause %v", w, l)
					return
				}
				if n > 1 {
					errs <- fmt.Errorf("worker %d saw clause %v %d times", w, l, n)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func TestImportLearntSimplifies(t *testing.T) {
	s := newSolver(3)
	if !s.addFact(mkLit(0, false)) { // x0 = true at level 0
		t.Fatal("addFact failed")
	}
	// (¬x0 ∨ x1): x0 true ⇒ clause is unit, forcing x1.
	if !s.importLearnt([]lit{mkLit(0, true), mkLit(1, false)}) {
		t.Fatal("import of a unit-after-simplification clause failed")
	}
	if s.value(mkLit(1, false)) != lTrue {
		t.Error("imported unit did not force x1")
	}
	// (x0): satisfied at level 0, silently redundant.
	if !s.importLearnt([]lit{mkLit(0, false)}) {
		t.Error("satisfied clause import reported conflict")
	}
	// (¬x0): contradicts the level-0 assignment — top-level conflict.
	if s.importLearnt([]lit{mkLit(0, true)}) {
		t.Error("conflicting import not detected")
	}
	if s.ok {
		t.Error("solver still ok after top-level conflict")
	}
}

// TestParallelK1BitIdentical: with one worker and a fixed seed the
// parallel engine must be indistinguishable from the sequential engine —
// same status, same assignment, same objective, same stats, across many
// random models.
func TestParallelK1BitIdentical(t *testing.T) {
	prop := func(seed int64) bool {
		m := randomUnitModel(seed)
		seq, err := (&Engine{Seed: 7}).Solve(context.Background(), m)
		if err != nil {
			return true // both paths reject identically; covered below
		}
		par, err := NewParallel(1, 7).Solve(context.Background(), m)
		if err != nil {
			t.Logf("seed %d: parallel errored where sequential did not: %v", seed, err)
			return false
		}
		if seq.Status != par.Status || seq.Objective != par.Objective ||
			!reflect.DeepEqual(seq.Assignment, par.Assignment) ||
			!reflect.DeepEqual(seq.Stats, par.Stats) {
			t.Logf("seed %d: K=1 parallel diverged: %+v vs %+v", seed, seq, par)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestParallelAgainstBruteForce: a 4-worker clause-sharing gang agrees
// with exhaustive enumeration on feasibility and the optimal objective.
func TestParallelAgainstBruteForce(t *testing.T) {
	pool := budget.New(8)
	prop := func(seed int64) bool {
		m := randomUnitModel(seed)
		wantStatus, wantObj := bruteForce(m)
		e := NewParallel(4, seed)
		e.Budget = pool
		sol, err := e.Solve(context.Background(), m)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if sol.Status != wantStatus {
			t.Logf("seed %d: status %v, want %v", seed, sol.Status, wantStatus)
			return false
		}
		if wantStatus == ilp.Optimal {
			if sol.Objective != wantObj {
				t.Logf("seed %d: objective %d, want %d", seed, sol.Objective, wantObj)
				return false
			}
			if err := m.Check(sol.Assignment); err != nil {
				t.Logf("seed %d: infeasible assignment returned: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func buildPigeonhole(n int) *ilp.Model {
	m := ilp.NewModel(fmt.Sprintf("php%d", n))
	x := make([][]ilp.Var, n+1)
	for p := range x {
		x[p] = make([]ilp.Var, n)
		for h := 0; h < n; h++ {
			x[p][h] = m.Binary(fmt.Sprintf("p%dh%d", p, h))
		}
		m.AddGE("placed", ilp.Sum(x[p]...), 1)
	}
	for h := 0; h < n; h++ {
		col := make([]ilp.Var, n+1)
		for p := range x {
			col[p] = x[p][h]
		}
		m.AddLE("cap", ilp.Sum(col...), 1)
	}
	return m
}

// TestParallelUnsatProof: the gang proves pigeonhole infeasibility (an
// UNSAT proof must survive clause sharing) and reports gang stats.
func TestParallelUnsatProof(t *testing.T) {
	e := NewParallel(4, 3)
	e.Budget = budget.New(8)
	e.ShareMaxLen = 32 // pigeonhole learnt clauses are mid-length
	sol, err := e.Solve(context.Background(), buildPigeonhole(6))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	if sol.Stats["workers"] < 2 {
		t.Errorf("workers = %d, want >= 2 (budget had tokens)", sol.Stats["workers"])
	}
	if _, ok := sol.Stats["shared_exported"]; !ok {
		t.Error("stats missing shared_exported")
	}
}

func TestParallelOptimization(t *testing.T) {
	m := ilp.NewModel("cover")
	const n = 5
	v := make([]ilp.Var, n)
	for i := range v {
		v[i] = m.Binary(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i++ {
		m.AddGE("edge", ilp.Sum(v[i], v[(i+1)%n]), 1)
	}
	m.Objective = ilp.Sum(v...)
	e := NewParallel(3, 1)
	e.Budget = budget.New(4)
	sol, err := e.Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Optimal || sol.Objective != 3 {
		t.Errorf("status=%v obj=%d, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewParallel(4, 1)
	e.Budget = budget.New(4)
	sol, err := e.Solve(ctx, buildPigeonhole(4))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Unknown || sol.Stats["cancelled"] != 1 {
		t.Errorf("pre-cancelled solve: status=%v stats=%v, want unknown+cancelled", sol.Status, sol.Stats)
	}

	// Mid-solve cancellation: a hard instance under a tiny deadline must
	// come back unknown (or a genuinely finished proof), never hang.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	e2 := NewParallel(4, 1)
	e2.Budget = budget.New(4)
	sol2, err := e2.Solve(ctx2, buildPigeonhole(9))
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != ilp.Unknown && sol2.Status != ilp.Infeasible {
		t.Errorf("status = %v, want unknown or infeasible", sol2.Status)
	}
}

// TestParallelBudgetExhausted: with an empty budget the engine runs the
// plain sequential path (no gang bookkeeping in the stats).
func TestParallelBudgetExhausted(t *testing.T) {
	m := ilp.NewModel("sat")
	x := m.Binary("x")
	m.AddGE("up", ilp.Sum(x), 1)
	e := NewParallel(8, 5)
	e.Budget = budget.New(0)
	sol, err := e.Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if _, ok := sol.Stats["workers"]; ok {
		t.Error("sequential fallback still reports gang stats")
	}
	if e.Budget.InUse() != 0 {
		t.Error("budget tokens leaked")
	}
}
