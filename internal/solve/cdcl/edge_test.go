package cdcl

import (
	"context"
	"fmt"
	"testing"

	"cgramap/internal/ilp"
)

// TestCardinalityPropagation: an at-most-k over many literals must
// falsify the remainder the moment k are true.
func TestCardinalityPropagation(t *testing.T) {
	m := ilp.NewModel("amk")
	const n = 30
	vars := make([]ilp.Var, n)
	for i := range vars {
		vars[i] = m.Binary(fmt.Sprintf("x%d", i))
	}
	m.AddLE("amk", ilp.Sum(vars...), 3)
	// Force three specific ones true.
	for i := 0; i < 3; i++ {
		m.AddGE("force", ilp.Sum(vars[i]), 1)
	}
	// Objective rewards more true vars; optimum must still be 3 picks,
	// i.e. objective -3.
	for _, v := range vars {
		m.Objective = append(m.Objective, ilp.Term{Var: v, Coef: -1})
	}
	sol := solve(t, m)
	if sol.Status != ilp.Optimal || sol.Objective != -3 {
		t.Fatalf("status=%v obj=%d, want optimal -3", sol.Status, sol.Objective)
	}
	for i := 3; i < n; i++ {
		if sol.Assignment[vars[i]] {
			t.Fatalf("x%d true beyond the cardinality bound", i)
		}
	}
}

// TestEqualityCardinality: exactly-k decomposes into two bounds that must
// propagate in both directions.
func TestEqualityCardinality(t *testing.T) {
	m := ilp.NewModel("eqk")
	const n = 12
	vars := make([]ilp.Var, n)
	for i := range vars {
		vars[i] = m.Binary(fmt.Sprintf("x%d", i))
	}
	m.AddEQ("eqk", ilp.Sum(vars...), 5)
	// Forbid the first eight except one.
	for i := 0; i < 7; i++ {
		m.AddLE("off", ilp.Sum(vars[i]), 0)
	}
	sol := solve(t, m)
	if sol.Status != ilp.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	count := 0
	for _, v := range vars {
		if sol.Assignment[v] {
			count++
		}
	}
	if count != 5 {
		t.Errorf("true count = %d, want 5", count)
	}
}

// TestGEAllNegated: sum(-x_i) >= -k normalises to at-most-k over the
// positives.
func TestGEAllNegated(t *testing.T) {
	m := ilp.NewModel("neg")
	a := m.Binary("a")
	b := m.Binary("b")
	c := m.Binary("c")
	m.AddGE("f", []ilp.Term{{Var: a, Coef: -1}, {Var: b, Coef: -1}, {Var: c, Coef: -1}}, -1)
	m.Objective = []ilp.Term{{Var: a, Coef: -1}, {Var: b, Coef: -1}, {Var: c, Coef: -1}}
	sol := solve(t, m)
	if sol.Status != ilp.Optimal || sol.Objective != -1 {
		t.Errorf("status=%v obj=%d, want optimal -1 (at most one can be true)", sol.Status, sol.Objective)
	}
}

// TestIncrementalObjectiveBoundSoundness: the optimisation loop's
// strengthening must never return a worse-than-optimal incumbent even
// with adversarial phase hints.
func TestIncrementalObjectiveBoundSoundness(t *testing.T) {
	m := ilp.NewModel("hinted")
	vars := make([]ilp.Var, 10)
	for i := range vars {
		vars[i] = m.Binary(fmt.Sprintf("x%d", i))
		m.SetPhaseHint(vars[i], true) // start from the worst corner
		m.SetBranchPriority(vars[i], 1)
	}
	// Chain: x0 >= x1 >= ... (monotone), x0 forced.
	m.AddGE("seed", ilp.Sum(vars[0]), 1)
	for i := 0; i+1 < len(vars); i++ {
		m.AddGE("mono", []ilp.Term{{Var: vars[i], Coef: 1}, {Var: vars[i+1], Coef: -1}}, 0)
	}
	m.Objective = ilp.Sum(vars...)
	sol := solve(t, m)
	if sol.Status != ilp.Optimal || sol.Objective != 1 {
		t.Errorf("status=%v obj=%d, want optimal 1 (only x0)", sol.Status, sol.Objective)
	}
}

// TestTautologyAndDuplicates: constraints that cancel or duplicate must
// not confuse the encoder.
func TestTautologyAndDuplicates(t *testing.T) {
	m := ilp.NewModel("taut")
	x := m.Binary("x")
	y := m.Binary("y")
	// 0 <= 1 after cancellation.
	m.AddLE("cancel", []ilp.Term{{Var: x, Coef: 1}, {Var: x, Coef: -1}}, 1)
	// Duplicate constraint added twice.
	m.AddGE("dup", ilp.Sum(x, y), 1)
	m.AddGE("dup", ilp.Sum(x, y), 1)
	sol := solve(t, m)
	if sol.Status != ilp.Optimal {
		t.Errorf("status = %v", sol.Status)
	}
}

// TestLargeChainPerformance: deep implication chains must solve by pure
// propagation (near-zero decisions).
func TestLargeChainPerformance(t *testing.T) {
	m := ilp.NewModel("chain")
	const n = 3000
	vars := make([]ilp.Var, n)
	for i := range vars {
		vars[i] = m.Binary(fmt.Sprintf("x%d", i))
	}
	m.AddGE("seed", ilp.Sum(vars[0]), 1)
	for i := 0; i+1 < n; i++ {
		m.AddLE("imp", []ilp.Term{{Var: vars[i], Coef: 1}, {Var: vars[i+1], Coef: -1}}, 0)
	}
	sol, err := New().Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	for _, v := range vars {
		if !sol.Assignment[v] {
			t.Fatal("chain propagation incomplete")
		}
	}
	if sol.Stats["decisions"] > int64(n) {
		t.Errorf("decisions = %d for a pure-propagation instance", sol.Stats["decisions"])
	}
}
