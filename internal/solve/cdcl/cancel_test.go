package cdcl

import (
	"context"
	"fmt"
	"testing"
	"time"

	"cgramap/internal/ilp"
)

// pigeonhole builds PHP(pigeons, holes): every pigeon in at least one
// hole, at most one pigeon per hole. With pigeons > holes it is provably
// infeasible and exponentially hard for clause learning, which makes it a
// reliable way to keep the solver busy in cancellation tests.
func pigeonhole(pigeons, holes int) *ilp.Model {
	m := ilp.NewModel(fmt.Sprintf("php-%d-%d", pigeons, holes))
	x := make([][]ilp.Var, pigeons)
	for p := range x {
		x[p] = make([]ilp.Var, holes)
		for h := range x[p] {
			x[p][h] = m.Binary(fmt.Sprintf("x_%d_%d", p, h))
		}
	}
	for p := 0; p < pigeons; p++ {
		m.AddGE("pigeon", ilp.Sum(x[p]...), 1)
	}
	for h := 0; h < holes; h++ {
		col := make([]ilp.Var, pigeons)
		for p := 0; p < pigeons; p++ {
			col[p] = x[p][h]
		}
		m.AddLE("hole", ilp.Sum(col...), 1)
	}
	return m
}

func TestSolvePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := New().Solve(ctx, pigeonhole(6, 5))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != ilp.Unknown {
		t.Fatalf("status = %v, want unknown", sol.Status)
	}
	if sol.Stats["cancelled"] != 1 {
		t.Errorf("stats = %v, want cancelled=1", sol.Stats)
	}
}

// TestCancellationLatency asserts that a cancelled solve returns within a
// small bound even on a propagation- and conflict-heavy instance, via the
// conflict-, propagation- and restart-clock context checks in search.
func TestCancellationLatency(t *testing.T) {
	m := pigeonhole(40, 39)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type out struct {
		sol *ilp.Solution
		err error
	}
	done := make(chan out, 1)
	go func() {
		sol, err := New().Solve(ctx, m)
		done <- out{sol, err}
	}()

	time.Sleep(100 * time.Millisecond)
	cancel()
	cancelled := time.Now()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("Solve: %v", o.err)
		}
		if lat := time.Since(cancelled); lat > 2*time.Second {
			t.Errorf("solve returned %v after cancellation, want < 2s", lat)
		}
		if o.sol.Status == ilp.Unknown && o.sol.Stats["cancelled"] != 1 {
			t.Errorf("unknown status without cancelled stat: %v", o.sol.Stats)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solve did not return within 5s of cancellation")
	}
}

// TestSeededTrajectoriesAgree checks that randomized-seed engines remain
// complete and sound: every seed must reach the same feasibility verdict.
func TestSeededTrajectoriesAgree(t *testing.T) {
	sat := pigeonhole(5, 5)
	unsat := pigeonhole(6, 5)
	for seed := int64(0); seed < 4; seed++ {
		e := &Engine{Seed: seed}
		sol, err := e.Solve(context.Background(), sat)
		if err != nil || sol.Status != ilp.Optimal {
			t.Fatalf("seed %d on sat: status=%v err=%v", seed, sol.Status, err)
		}
		if err := sat.Check(sol.Assignment); err != nil {
			t.Fatalf("seed %d returned infeasible assignment: %v", seed, err)
		}
		sol, err = e.Solve(context.Background(), unsat)
		if err != nil || sol.Status != ilp.Infeasible {
			t.Fatalf("seed %d on unsat: status=%v err=%v", seed, sol.Status, err)
		}
	}
}
