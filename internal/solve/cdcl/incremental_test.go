package cdcl

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"cgramap/internal/ilp"
)

// phpModel builds pigeonhole(pigeons, holes): feasible iff holes >=
// pigeons. Variable names are shared across instances with the same
// shape, which is exactly the II-ladder situation the session targets.
func phpModel(pigeons, holes int) *ilp.Model {
	m := ilp.NewModel(fmt.Sprintf("php-%d-%d", pigeons, holes))
	x := make([][]ilp.Var, pigeons)
	for p := range x {
		x[p] = make([]ilp.Var, holes)
		for h := range x[p] {
			x[p][h] = m.BinaryComposite("x", fmt.Sprint(p), fmt.Sprint(h), -1)
		}
	}
	for p := 0; p < pigeons; p++ {
		terms := make([]ilp.Term, holes)
		for h := 0; h < holes; h++ {
			terms[h] = ilp.Term{Var: x[p][h], Coef: 1}
		}
		m.Add("pigeon", terms, ilp.GE, 1)
	}
	for h := 0; h < holes; h++ {
		terms := make([]ilp.Term, pigeons)
		for p := 0; p < pigeons; p++ {
			terms[p] = ilp.Term{Var: x[p][h], Coef: 1}
		}
		m.Add("hole", terms, ilp.LE, 1)
	}
	return m
}

// TestSessionLadderMatchesEngine walks a pigeonhole "ladder" (growing
// holes, like a growing II) through one session and checks every status
// against a scratch Engine solve. The flip from Infeasible to Feasible
// must land at the same rung.
func TestSessionLadderMatchesEngine(t *testing.T) {
	ses := NewSession(0)
	for holes := 1; holes <= 6; holes++ {
		m := phpModel(4, holes)
		inc, err := ses.Solve(context.Background(), m)
		if err != nil {
			t.Fatalf("holes=%d: session: %v", holes, err)
		}
		scr, err := New().Solve(context.Background(), phpModel(4, holes))
		if err != nil {
			t.Fatalf("holes=%d: engine: %v", holes, err)
		}
		if inc.Status != scr.Status {
			t.Fatalf("holes=%d: session %v, engine %v", holes, inc.Status, scr.Status)
		}
		if inc.Status == ilp.Optimal {
			if err := m.Check(inc.Assignment); err != nil {
				t.Fatalf("holes=%d: session assignment invalid: %v", holes, err)
			}
		}
		if inc.Stats["incremental"] != 1 || inc.Stats["group"] != int64(holes) {
			t.Fatalf("holes=%d: missing incremental stats: %v", holes, inc.Stats)
		}
	}
}

// TestSessionChainAgainstBruteForce runs chains of random
// unit-coefficient models through one session. Successive models share
// variable names (the generator names them x0..xn), so this exercises
// cross-group variable unification, guard retirement, learnt-clause
// carrying, and guarded objective bounds, with every status and optimum
// checked against exhaustive enumeration.
func TestSessionChainAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		ses := NewSession(0)
		for step := int64(0); step < 4; step++ {
			m := randomUnitModel(seed + 1000*step)
			wantStatus, wantObj := bruteForce(m)
			sol, err := ses.Solve(context.Background(), m)
			if err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			if sol.Status != wantStatus {
				t.Logf("seed %d step %d: status %v, want %v", seed, step, sol.Status, wantStatus)
				return false
			}
			if wantStatus == ilp.Optimal {
				if sol.Objective != wantObj {
					t.Logf("seed %d step %d: objective %d, want %d", seed, step, sol.Objective, wantObj)
					return false
				}
				if err := m.Check(sol.Assignment); err != nil {
					t.Logf("seed %d step %d: assignment infeasible: %v", seed, step, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSessionSeededChainAgainstBruteForce is the same chain property
// with a jittered trajectory, covering the seeded warm-start path.
func TestSessionSeededChainAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		ses := NewSession(seed | 1)
		for step := int64(0); step < 3; step++ {
			m := randomUnitModel(seed + 777*step)
			wantStatus, wantObj := bruteForce(m)
			sol, err := ses.Solve(context.Background(), m)
			if err != nil || sol.Status != wantStatus {
				t.Logf("seed %d step %d: got %v/%v want %v", seed, step, sol, err, wantStatus)
				return false
			}
			if wantStatus == ilp.Optimal && sol.Objective != wantObj {
				t.Logf("seed %d step %d: objective %d, want %d", seed, step, sol.Objective, wantObj)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSessionGuardedCardRetirement: a tight cardinality bound in one
// group must not leak into the next group after retirement, and a card
// whose counter is already at the bound when the guard arrives must
// still propagate (the guard-activation path).
func TestSessionGuardedCardRetirement(t *testing.T) {
	ses := NewSession(0)

	// Group 1: force three of x0..x4 true but allow at most two: UNSAT.
	m1 := ilp.NewModel("tight")
	v1 := make([]ilp.Var, 5)
	terms := make([]ilp.Term, 5)
	for i := range v1 {
		v1[i] = m1.Binary(fmt.Sprintf("x%d", i))
		terms[i] = ilp.Term{Var: v1[i], Coef: 1}
	}
	m1.Add("atmost2", terms, ilp.LE, 2)
	m1.Add("atleast3", terms, ilp.GE, 3)
	sol, err := ses.Solve(context.Background(), m1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Infeasible {
		t.Fatalf("group 1: got %v, want Infeasible", sol.Status)
	}

	// Group 2: same variables, bound relaxed to 3: SAT. A stale group-1
	// card would wrongly keep this infeasible.
	m2 := ilp.NewModel("relaxed")
	v2 := make([]ilp.Var, 5)
	terms2 := make([]ilp.Term, 5)
	for i := range v2 {
		v2[i] = m2.Binary(fmt.Sprintf("x%d", i))
		terms2[i] = ilp.Term{Var: v2[i], Coef: 1}
	}
	m2.Add("atmost3", terms2, ilp.LE, 3)
	m2.Add("atleast3", terms2, ilp.GE, 3)
	sol, err = ses.Solve(context.Background(), m2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Optimal {
		t.Fatalf("group 2: got %v, want Optimal", sol.Status)
	}
	if err := m2.Check(sol.Assignment); err != nil {
		t.Fatal(err)
	}
	if sol.Stats["vars_reused"] != 5 {
		t.Fatalf("group 2: vars_reused = %d, want 5", sol.Stats["vars_reused"])
	}
}

// TestSessionDuplicateNamesRejected: variable unification is keyed by
// name, so a model naming two variables identically must be rejected
// rather than silently aliased.
func TestSessionDuplicateNamesRejected(t *testing.T) {
	m := ilp.NewModel("dup")
	a := m.Binary("same")
	b := m.Binary("same")
	m.AddGE("c", ilp.Sum(a, b), 1)
	if _, err := NewSession(0).Solve(context.Background(), m); err == nil {
		t.Fatal("want duplicate-name error, got nil")
	}
}

// TestSessionCancellation: a cancelled solve returns Unknown with the
// cancelled marker, and the session remains usable afterwards.
func TestSessionCancellation(t *testing.T) {
	ses := NewSession(0)
	m := phpModel(9, 8) // hard UNSAT instance
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	sol, err := ses.Solve(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == ilp.Unknown && sol.Stats["cancelled"] != 1 {
		t.Fatalf("cancelled solve missing marker: %v", sol.Stats)
	}
	// The session must still answer correctly after the abort.
	sol, err = ses.Solve(context.Background(), phpModel(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Optimal {
		t.Fatalf("post-cancel solve: got %v, want Optimal", sol.Status)
	}
}

// TestSessionPoisonedRebuild: if a Solve never returned (panic recovered
// by a caller), the next call must rebuild from scratch instead of
// trusting broken invariants.
func TestSessionPoisonedRebuild(t *testing.T) {
	ses := NewSession(0)
	if _, err := ses.Solve(context.Background(), phpModel(3, 3)); err != nil {
		t.Fatal(err)
	}
	ses.busy = true // simulate an aborted call
	sol, err := ses.Solve(context.Background(), phpModel(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Infeasible {
		t.Fatalf("got %v, want Infeasible", sol.Status)
	}
	// The rebuild discards the variable namespace: nothing is "reused".
	if sol.Stats["vars_reused"] != 0 || sol.Stats["cons_reused"] != 0 {
		t.Fatalf("poisoned session did not rebuild: %v", sol.Stats)
	}
}

// TestSessionCarriesLearnts: when the next model's constraints are a
// superset of the previous model's, every selector is re-referenced and
// the whole learnt-clause database must carry forward (this is the
// portfolio-retry / repeated-probe case, and the strongest form of the
// shared-prefix rule).
func TestSessionCarriesLearnts(t *testing.T) {
	ses := NewSession(0)
	sol, err := ses.Solve(context.Background(), phpModel(6, 5))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Infeasible {
		t.Fatalf("php(6,5): got %v, want Infeasible", sol.Status)
	}

	// Same content plus one benign extra constraint: the 11 pigeonhole
	// constraints dedup onto their existing selectors, so the UNSAT
	// proof's learnt clauses survive retirement and the second solve is
	// decided almost for free.
	m2 := phpModel(6, 5)
	extra := []ilp.Term{
		{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1},
	}
	m2.Add("extra", extra, ilp.LE, 2)
	sol, err = ses.Solve(context.Background(), m2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Infeasible {
		t.Fatalf("php(6,5)+extra: got %v, want Infeasible", sol.Status)
	}
	if sol.Stats["cons_reused"] != 11 { // 6 pigeon + 5 hole constraints
		t.Fatalf("cons_reused = %d, want 11 (stats %v)", sol.Stats["cons_reused"], sol.Stats)
	}
	if sol.Stats["cons_new"] != 1 {
		t.Fatalf("cons_new = %d, want 1", sol.Stats["cons_new"])
	}
	if sol.Stats["vars_reused"] != 30 {
		t.Fatalf("vars_reused = %d, want 30", sol.Stats["vars_reused"])
	}
	if sol.Stats["learnts_carried"] == 0 {
		t.Fatal("no learnt clauses carried across groups")
	}
	// The carried proof should make the re-solve far cheaper than the
	// original; conflicts is a deterministic proxy.
	if sol.Stats["conflicts"] > 0 && ses.carried == 0 {
		t.Fatal("carried database not used")
	}

	// Third model drops to a disjoint shape: shared-prefix bookkeeping
	// must retire cleanly and still answer correctly.
	sol, err = ses.Solve(context.Background(), phpModel(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Optimal {
		t.Fatalf("php(3,3): got %v, want Optimal", sol.Status)
	}
}
