// Package cdcl implements the repository's default ILP engine: a
// conflict-driven clause-learning (CDCL) search procedure specialised for
// 0-1 programs whose constraints have unit (+1/-1) coefficients — which
// is exactly the structure of the paper's CGRA-mapping formulation
// (eqs. 1–10; every constraint is a clause, an at-most-k, or an equality
// of unit sums).
//
// The engine is a complete decision procedure: it proves feasibility,
// infeasibility, and — by iteratively tightening a bound on the objective
// — optimality, the three properties the paper obtains from Gurobi (see
// DESIGN.md, substitutions).
//
// Implementation: two-watched-literal clause propagation, counter-based
// cardinality propagation, first-UIP conflict analysis, VSIDS variable
// activities, phase saving (default phase false: mapping solutions are
// sparse), Luby restarts, and activity-based learnt-clause reduction.
package cdcl

// lit is a literal: variable index shifted left once, low bit set when
// negated.
type lit int32

const litUndef lit = -1

func mkLit(v int, neg bool) lit {
	l := lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// vi returns the literal's variable index.
func (l lit) vi() int { return int(l >> 1) }

// neg returns the complementary literal.
func (l lit) neg() lit { return l ^ 1 }

// sign reports whether the literal is negated.
func (l lit) sign() bool { return l&1 == 1 }

// lbool is a three-valued assignment.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// valueOf evaluates a literal under variable assignments.
func valueOf(assigns []lbool, l lit) lbool {
	v := assigns[l.vi()]
	if v == lUndef {
		return lUndef
	}
	if l.sign() {
		return -v
	}
	return v
}
