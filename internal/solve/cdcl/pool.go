package cdcl

import "sync"

// sharePool is the bounded exchange through which parallel workers trade
// learnt clauses, in the ManySAT tradition: workers export short learnt
// clauses (short clauses prune the most and cost the least to ship) and
// import everything their peers published at their own restart
// boundaries, when the trail is at level 0 and installing foreign
// clauses is trivially sound.
//
// The pool is a ring of the most recent entries, each tagged with the
// exporting worker: a worker's import cursor (a monotone sequence
// number) guarantees it sees each foreign clause at most once and its
// own clauses never. When the ring overflows, the oldest clauses fall
// off — a slow worker simply misses them, which costs pruning power but
// never soundness (every shared clause is a logical consequence of the
// common formula).
//
// All methods are safe for concurrent use.
type sharePool struct {
	mu      sync.Mutex
	maxLen  int         // export length cap (clauses longer are refused)
	limit   int         // ring capacity
	entries []poolEntry // entries[i] has sequence number head-len+i
	head    uint64      // sequence number one past the newest entry

	exported, refused, dropped int64
}

type poolEntry struct {
	owner int
	lits  []lit // immutable after publication
}

// newSharePool builds a pool with the given clause-length cap and ring
// capacity (both must be positive).
func newSharePool(maxLen, limit int) *sharePool {
	return &sharePool{maxLen: maxLen, limit: limit}
}

// Export publishes a clause learnt by the given worker. Clauses longer
// than the length cap are refused (reported false). The literals are
// copied: the caller's slice may be reordered by its solver afterwards.
func (p *sharePool) Export(owner int, lits []lit) bool {
	if len(lits) == 0 || len(lits) > p.maxLen {
		p.mu.Lock()
		p.refused++
		p.mu.Unlock()
		return false
	}
	cp := make([]lit, len(lits))
	copy(cp, lits)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = append(p.entries, poolEntry{owner: owner, lits: cp})
	p.head++
	p.exported++
	if len(p.entries) > p.limit {
		drop := len(p.entries) - p.limit
		p.entries = p.entries[drop:]
		p.dropped += int64(drop)
	}
	return true
}

// Import streams every clause published since the caller's cursor that
// the caller did not export itself, and returns the advanced cursor plus
// the number of clauses delivered. fn must copy the slice if it retains
// it; returning false stops the iteration early (the cursor still
// advances past everything delivered so far, including the clause fn
// rejected).
func (p *sharePool) Import(owner int, cursor uint64, fn func(lits []lit) bool) (uint64, int) {
	p.mu.Lock()
	// Snapshot the window under the lock; the entry slices themselves
	// are immutable, so fn can run outside it.
	base := p.head - uint64(len(p.entries))
	if cursor < base {
		cursor = base // the ring overwrote entries the caller never saw
	}
	window := p.entries[cursor-base:]
	p.mu.Unlock()

	delivered := 0
	for i, e := range window {
		if e.owner == owner {
			continue
		}
		delivered++
		if !fn(e.lits) {
			return cursor + uint64(i) + 1, delivered
		}
	}
	return cursor + uint64(len(window)), delivered
}

// Stats returns the pool's export counters: clauses accepted, refused by
// the length cap, and dropped off the ring.
func (p *sharePool) Stats() (exported, refused, dropped int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exported, p.refused, p.dropped
}

// importLearnt installs a clause learnt by another worker over the same
// formula. It must be called with the trail at decision level 0, where
// literals false under the current assignment are globally false and can
// be dropped. Returns false when the clause is empty after
// simplification — a top-level conflict proving unsatisfiability.
func (s *solver) importLearnt(in []lit) bool {
	if !s.ok {
		return false
	}
	lits := make([]lit, 0, len(in))
	for _, l := range in {
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0: permanently redundant
		case lFalse:
			continue
		}
		lits = append(lits, l)
	}
	switch len(lits) {
	case 0:
		s.ok = false
		return false
	case 1:
		return s.addFact(lits[0])
	}
	c := &clause{lits: lits, learnt: true}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.bumpClause(c)
	return true
}
