package cdcl

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"cgramap/internal/ilp"
)

// Engine solves unit-coefficient 0-1 ILP models. The zero value is ready
// to use. It implements ilp.Solver.
type Engine struct {
	// DisableProbing turns off root-level failed-literal probing of
	// prioritised variables (on by default; see probe).
	DisableProbing bool
	// Seed, when non-zero, randomizes the initial search trajectory:
	// variable activities get a small jitter (breaking ties under the
	// model's branch priorities) and saved phases start random. Distinct
	// seeds give effectively independent restarts of the same complete
	// search, which is what the portfolio racer's reseeded strategies
	// and backoff-and-reseed retries rely on.
	Seed int64
}

// New returns a ready Engine.
func New() *Engine { return &Engine{} }

// NewSeeded returns an Engine with a randomized search trajectory.
func NewSeeded(seed int64) *Engine { return &Engine{Seed: seed} }

// probe performs failed-literal probing at the root: each candidate
// variable is tentatively assigned true; if unit propagation derives a
// conflict, the variable is permanently false. Repeats to a fixpoint
// (bounded), which on CGRA-mapping models eliminates placements whose
// routing obligations are locally contradictory. Returns false when the
// model is proven infeasible outright.
func probe(ctx context.Context, s *solver, candidates []int) bool {
	if confl := s.propagate(); !confl.none() {
		s.ok = false
		return false
	}
	for round := 0; round < 3; round++ {
		progress := false
		for _, v := range candidates {
			if s.assigns[v] != lUndef {
				continue
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(mkLit(v, false), nil, -1)
			confl := s.propagate()
			s.cancelUntil(0)
			if confl.none() {
				continue
			}
			progress = true
			if !s.addFact(mkLit(v, true)) {
				return false
			}
			if c := s.propagate(); !c.none() {
				s.ok = false
				return false
			}
			if ctx.Err() != nil {
				return true // stop probing, let search handle the deadline
			}
		}
		if !progress {
			break
		}
	}
	return true
}

var _ ilp.Solver = (*Engine)(nil)

// normalized is a constraint rewritten to "sum of literals <= k":
// a +1 coefficient keeps the positive literal; a -1 coefficient becomes
// the negated literal and raises k by one.
type normalized struct {
	lits []lit
	k    int
}

// normalizeLE rewrites sum(terms) <= rhs into at-most-k form. Terms must
// be unit-coefficient after merging duplicates; flip negates every
// coefficient first (for >=).
func normalizeLE(terms []ilp.Term, rhs int, flip bool) (normalized, error) {
	merged := make(map[ilp.Var]int, len(terms))
	for _, t := range terms {
		c := t.Coef
		if flip {
			c = -c
		}
		merged[t.Var] += c
	}
	if flip {
		rhs = -rhs
	}
	n := normalized{k: rhs}
	for v, c := range merged {
		switch c {
		case 0:
			// cancelled out
		case 1:
			n.lits = append(n.lits, mkLit(int(v), false))
		case -1:
			n.lits = append(n.lits, mkLit(int(v), true))
			n.k++
		default:
			return normalized{}, fmt.Errorf("cdcl: coefficient %d on variable %d not supported (unit coefficients only)", c, int(v))
		}
	}
	// Deterministic ordering for reproducible search behaviour.
	sort.Slice(n.lits, func(i, j int) bool { return n.lits[i] < n.lits[j] })
	return n, nil
}

// install adds one normalized at-most constraint to the solver.
func install(s *solver, n normalized) {
	s.addAtMost(n.lits, n.k)
}

// compile encodes a model into a fresh solver. It returns an error for
// non-unit coefficients, and a nil solver when the model is trivially
// infeasible at the root. A non-zero seed jitters activities and phases
// for an independent search trajectory.
func compile(m *ilp.Model, seed int64) (*solver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := newSolver(m.NumVars())
	// Honour the model's branching hints: priorities become initial
	// VSIDS activities (decided first, then adapted by learning), phase
	// hints the initial saved phase.
	rebuildHeap := false
	for v := 0; v < m.NumVars(); v++ {
		if pri := m.BranchPriority(ilp.Var(v)); pri != 0 {
			s.activity[v] = float64(pri)
			rebuildHeap = true
		}
		if m.PhaseHint(ilp.Var(v)) {
			s.phase[v] = true
		}
	}
	if seed != 0 {
		rng := rand.New(rand.NewSource(seed))
		rebuildHeap = true
		for v := 0; v < m.NumVars(); v++ {
			// Jitter below 0.5 shuffles ties without overturning the
			// integer branch priorities.
			s.activity[v] += rng.Float64() * 0.4
			if m.PhaseHint(ilp.Var(v)) {
				// Keep hints mostly, flipping a few for diversity.
				s.phase[v] = rng.Float64() >= 0.1
			} else {
				s.phase[v] = rng.Intn(2) == 1
			}
		}
	}
	if rebuildHeap {
		s.heap.init(s)
		for i := len(s.heap.heap)/2 - 1; i >= 0; i-- {
			s.heap.down(i)
		}
	}
	for i := range m.Constraints {
		c := &m.Constraints[i]
		switch c.Rel {
		case ilp.LE, ilp.EQ:
			n, err := normalizeLE(c.Terms, c.RHS, false)
			if err != nil {
				return nil, fmt.Errorf("%s constraint %q: %w", m.Name, c.Name, err)
			}
			install(s, n)
		}
		switch c.Rel {
		case ilp.GE, ilp.EQ:
			n, err := normalizeLE(c.Terms, c.RHS, true)
			if err != nil {
				return nil, fmt.Errorf("%s constraint %q: %w", m.Name, c.Name, err)
			}
			install(s, n)
		}
		if !s.ok {
			return s, nil
		}
	}
	return s, nil
}

// objectiveLits normalizes the objective for bound tightening. A
// unit-coefficient objective sum(c_i x_i) equals sum over literals plus a
// constant offset: +x contributes literal x; -x contributes literal ¬x
// with offset -1.
func objectiveLits(m *ilp.Model) (lits []lit, offset int, err error) {
	merged := make(map[ilp.Var]int, len(m.Objective))
	for _, t := range m.Objective {
		merged[t.Var] += t.Coef
	}
	for v, c := range merged {
		switch c {
		case 0:
		case 1:
			lits = append(lits, mkLit(int(v), false))
		case -1:
			lits = append(lits, mkLit(int(v), true))
			offset--
		default:
			return nil, 0, fmt.Errorf("cdcl: objective coefficient %d not supported (unit coefficients only)", c)
		}
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	return lits, offset, nil
}

// Solve decides the model. With an objective, it repeatedly strengthens
// an at-most bound on the objective literals until infeasibility proves
// the incumbent optimal (the standard linear-search optimisation loop on
// top of a complete feasibility engine). Context cancellation returns the
// best incumbent with status Feasible, or Unknown when none was found;
// either way the solution's Stats carry a "cancelled" marker.
func (e *Engine) Solve(ctx context.Context, m *ilp.Model) (*ilp.Solution, error) {
	if ctx.Err() != nil {
		return &ilp.Solution{Status: ilp.Unknown, Stats: map[string]int64{"cancelled": 1}}, nil
	}
	s, err := compile(m, e.Seed)
	if err != nil {
		return nil, err
	}
	stats := func() map[string]int64 {
		if s == nil {
			return map[string]int64{}
		}
		return map[string]int64{
			"conflicts":    s.conflicts,
			"decisions":    s.decisions,
			"propagations": s.propagations,
			"restarts":     s.restarts,
			"clauses":      int64(len(s.clauses)),
			"cards":        int64(len(s.cards)),
			"learnts":      int64(len(s.learnts)),
		}
	}
	if s != nil && !s.ok {
		return &ilp.Solution{Status: ilp.Infeasible, Stats: stats()}, nil
	}

	objLits, offset, err := objectiveLits(m)
	if err != nil {
		return nil, err
	}

	if !e.DisableProbing {
		var candidates []int
		for v := 0; v < m.NumVars(); v++ {
			if m.BranchPriority(ilp.Var(v)) > 0 {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) > 0 && !probe(ctx, s, candidates) {
			return &ilp.Solution{Status: ilp.Infeasible, Stats: stats()}, nil
		}
	}

	extract := func() ilp.Assignment {
		a := make(ilp.Assignment, m.NumVars())
		for v := range a {
			a[v] = s.modelValue(v)
		}
		return a
	}

	var best ilp.Assignment
	bestObj := 0
	for {
		res := s.search(ctx)
		switch res {
		case lUndef: // cancelled
			st := stats()
			st["cancelled"] = 1
			if best != nil {
				return &ilp.Solution{Status: ilp.Feasible, Assignment: best, Objective: bestObj, Stats: st}, nil
			}
			return &ilp.Solution{Status: ilp.Unknown, Stats: st}, nil
		case lFalse:
			if best != nil {
				// The strengthened bound is infeasible: the
				// incumbent is optimal.
				return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: bestObj, Stats: stats()}, nil
			}
			return &ilp.Solution{Status: ilp.Infeasible, Stats: stats()}, nil
		}
		// Satisfiable.
		best = extract()
		bestObj = best.Eval(m.Objective)
		if len(m.Objective) == 0 {
			return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: 0, Stats: stats()}, nil
		}
		// Count of true objective literals achieved.
		litCount := bestObj - offset
		if litCount == 0 {
			// Cannot improve below the offset floor.
			return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: bestObj, Stats: stats()}, nil
		}
		// Require strictly fewer true objective literals.
		s.cancelUntil(0)
		if !s.addAtMost(objLits, litCount-1) {
			return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: bestObj, Stats: stats()}, nil
		}
	}
}
