package cdcl

import (
	"context"
	"sync"

	"cgramap/internal/budget"
	"cgramap/internal/ilp"
)

// ParallelEngine solves unit-coefficient 0-1 ILP models with a gang of
// diversified CDCL workers exchanging learnt clauses — the ManySAT-style
// multicore counterpart of Engine. Each worker runs the same complete
// search over the same formula but from a different trajectory
// (branching seed, VSIDS decay, saved-phase polarity, restart schedule);
// workers export short learnt clauses into a bounded shared pool and
// import their peers' clauses at restart boundaries. The first worker to
// reach a definitive answer — a satisfying model or an unsatisfiability
// proof — wins and cancels the rest. Both outcomes stay proofs: every
// shared clause is a logical consequence of the common formula, so the
// gang is as complete as a single solver.
//
// Worker count: Workers is a request, not a demand. One worker always
// runs on the caller's goroutine budget; each additional worker must win
// a token from Budget (default: the process-wide budget.Global pool), so
// layered parallelism — a daemon's job pool above, speculative auto-II
// sweeps beside — degrades to narrower gangs instead of oversubscribing
// the machine.
//
// Determinism: with Workers <= 1 the engine delegates to the sequential
// Engine with the same seed, producing bit-identical results (same
// assignment, same stats). With more workers the winning trajectory is
// a race and stats vary run to run, but the answer itself (and, for
// optimisation models, the optimal objective value) is unique.
//
// It implements ilp.Solver.
type ParallelEngine struct {
	// Workers is the requested gang size (see above; values <= 1 select
	// the sequential engine).
	Workers int
	// Seed drives worker 0's trajectory exactly like Engine.Seed; the
	// other workers derive their diversification seeds from it, so a
	// fixed Seed makes the whole gang's trajectories reproducible.
	Seed int64
	// DisableProbing turns off root-level failed-literal probing (run by
	// worker 0, which shares the derived facts with the gang).
	DisableProbing bool
	// ShareMaxLen caps the length of exported clauses (default 8):
	// short clauses prune the most per byte shipped.
	ShareMaxLen int
	// SharePoolCap bounds the shared pool's clause ring (default 4096).
	SharePoolCap int
	// Budget pays for workers beyond the first; nil selects the
	// process-wide budget.Global pool.
	Budget *budget.Pool
}

// NewParallel returns a ParallelEngine with the given gang size and base
// seed.
func NewParallel(workers int, seed int64) *ParallelEngine {
	return &ParallelEngine{Workers: workers, Seed: seed}
}

var _ ilp.Solver = (*ParallelEngine)(nil)

// Per-worker diversification tables (index = worker lane mod table
// length). Lane 0 keeps the sequential defaults so that the flagship
// trajectory is exactly the one the sequential engine would run.
var (
	laneDecay   = []float64{0.95, 0.85, 0.99, 0.75, 0.93, 0.88, 0.97, 0.80}
	laneRestart = []int64{100, 50, 300, 150, 700, 80, 200, 40}
)

// mixSeed derives a worker lane's seed from the base seed with a
// splitmix64-style finalizer (the same construction the portfolio racer
// uses for attempt reseeds). Lane 0 returns the base unchanged, so the
// flagship worker is bit-compatible with Engine{Seed: base}.
func mixSeed(base int64, lane int) int64 {
	if lane == 0 {
		return base
	}
	h := uint64(base) + uint64(lane)*0x9E3779B97F4A7C15
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	if h == 0 {
		h = 1
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

func (e *ParallelEngine) shareMaxLen() int {
	if e.ShareMaxLen > 0 {
		return e.ShareMaxLen
	}
	return 8
}

func (e *ParallelEngine) sharePoolCap() int {
	if e.SharePoolCap > 0 {
		return e.SharePoolCap
	}
	return 4096
}

// Solve decides (and, with an objective, optimises) the model. See
// Engine.Solve for the contract; the parallel engine adds aggregated
// per-worker counters plus clause-sharing statistics ("workers",
// "shared_exported", "shared_imported", "winner") to Solution.Stats.
func (e *ParallelEngine) Solve(ctx context.Context, m *ilp.Model) (*ilp.Solution, error) {
	if e.Workers <= 1 {
		return (&Engine{Seed: e.Seed, DisableProbing: e.DisableProbing}).Solve(ctx, m)
	}
	pool := e.Budget
	if pool == nil {
		pool = budget.Global()
	}
	extra := pool.TryAcquire(e.Workers - 1)
	defer pool.Release(extra)
	if extra == 0 {
		// No spare tokens: run the sequential engine on the caller's
		// goroutine rather than a one-worker gang with pool overhead.
		return (&Engine{Seed: e.Seed, DisableProbing: e.DisableProbing}).Solve(ctx, m)
	}
	k := 1 + extra

	if ctx.Err() != nil {
		return &ilp.Solution{Status: ilp.Unknown, Stats: map[string]int64{"cancelled": 1}}, nil
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	objLits, offset, err := objectiveLits(m)
	if err != nil {
		return nil, err
	}

	total := map[string]int64{"workers": int64(k)}
	accumulate := func(st map[string]int64) {
		for key, v := range st {
			if key == "workers" {
				continue
			}
			total[key] += v
		}
	}

	// The optimisation loop runs at the coordinator level: each bound
	// step is one parallel decision query over the same formula, which
	// keeps clause sharing sound (every worker of a step solves exactly
	// the same constraint set, including the incumbent bound).
	var best ilp.Assignment
	bestObj := 0
	var bound *atMostBound
	for {
		res, asg, stats, err := e.decide(ctx, m, bound, k)
		accumulate(stats)
		if err != nil {
			return nil, err
		}
		switch res {
		case lUndef: // cancelled
			total["cancelled"] = 1
			if best != nil {
				return &ilp.Solution{Status: ilp.Feasible, Assignment: best, Objective: bestObj, Stats: total}, nil
			}
			return &ilp.Solution{Status: ilp.Unknown, Stats: total}, nil
		case lFalse:
			if best != nil {
				return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: bestObj, Stats: total}, nil
			}
			return &ilp.Solution{Status: ilp.Infeasible, Stats: total}, nil
		}
		best = asg
		bestObj = best.Eval(m.Objective)
		if len(m.Objective) == 0 {
			return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: 0, Stats: total}, nil
		}
		litCount := bestObj - offset
		if litCount == 0 {
			return &ilp.Solution{Status: ilp.Optimal, Assignment: best, Objective: bestObj, Stats: total}, nil
		}
		bound = &atMostBound{lits: objLits, k: litCount - 1}
	}
}

// atMostBound is an objective-strengthening constraint added on top of
// the compiled model for one decision query.
type atMostBound struct {
	lits []lit
	k    int
}

// workerOutcome is what one gang member reports back.
type workerOutcome struct {
	id  int
	res lbool
	s   *solver
}

// decide runs one parallel decision query: is the model (plus the
// optional bound) satisfiable? It returns the winner's verdict, the
// satisfying assignment when lTrue, and the gang's aggregated counters.
func (e *ParallelEngine) decide(ctx context.Context, m *ilp.Model, bound *atMostBound, k int) (lbool, ilp.Assignment, map[string]int64, error) {
	pool := newSharePool(e.shareMaxLen(), e.sharePoolCap())

	// Compile the gang serially: identical formula, diversified
	// trajectories. A root-level contradiction surfaces here without
	// spawning anything.
	workers := make([]*solver, k)
	imported := make([]int64, k) // per-worker import counters, indexed by id
	for i := 0; i < k; i++ {
		s, err := compile(m, mixSeed(e.Seed, i))
		if err != nil {
			return lUndef, nil, nil, err
		}
		s.varDecay = laneDecay[i%len(laneDecay)]
		s.restartScale = laneRestart[i%len(laneRestart)]
		if bound != nil && s.ok {
			s.addAtMost(bound.lits, bound.k)
		}
		workers[i] = s
	}

	stats := func() map[string]int64 {
		agg := map[string]int64{}
		exp, ref, drop := pool.Stats()
		agg["shared_exported"] = exp
		agg["shared_refused"] = ref
		agg["shared_dropped"] = drop
		for i, s := range workers {
			agg["conflicts"] += s.conflicts
			agg["decisions"] += s.decisions
			agg["propagations"] += s.propagations
			agg["restarts"] += s.restarts
			agg["shared_imported"] += imported[i]
		}
		agg["clauses"] = int64(len(workers[0].clauses))
		agg["cards"] = int64(len(workers[0].cards))
		agg["learnts"] = int64(len(workers[0].learnts))
		return agg
	}

	if !workers[0].ok {
		return lFalse, nil, stats(), nil
	}

	gangCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	outcomes := make(chan workerOutcome, k)
	var wg sync.WaitGroup
	maxLen := e.shareMaxLen()
	for i := 0; i < k; i++ {
		i, s := i, workers[i]
		var cursor uint64
		s.onLearn = func(lits []lit) {
			if len(lits) <= maxLen {
				pool.Export(i, lits)
			}
		}
		s.onRestart = func() bool {
			sound := true
			var n int
			cursor, n = pool.Import(i, cursor, func(lits []lit) bool {
				if !s.importLearnt(lits) {
					sound = false
					return false
				}
				return true
			})
			imported[i] += int64(n)
			return sound
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := lFalse
			if s.ok {
				if i == 0 && !e.DisableProbing {
					var candidates []int
					for v := 0; v < m.NumVars(); v++ {
						if m.BranchPriority(ilp.Var(v)) > 0 {
							candidates = append(candidates, v)
						}
					}
					if len(candidates) > 0 && !probe(gangCtx, s, candidates) {
						outcomes <- workerOutcome{i, lFalse, s}
						return
					}
					// Publish the probe's level-0 facts so the other
					// workers prune the same placements without paying
					// for the probing themselves.
					for _, l := range s.trail {
						pool.Export(i, []lit{l})
					}
				}
				res = s.search(gangCtx)
			}
			outcomes <- workerOutcome{i, res, s}
		}()
	}

	winner := -1
	verdict := lUndef
	for range workers {
		o := <-outcomes
		if o.res != lUndef && winner < 0 {
			winner = o.id
			verdict = o.res
			cancel() // first definitive answer ends the race
		}
	}
	wg.Wait() // all counters quiescent before aggregation

	agg := stats()
	if winner >= 0 {
		agg["winner"] = int64(winner)
	}
	if verdict == lTrue {
		ws := workers[winner]
		asg := make(ilp.Assignment, m.NumVars())
		for v := range asg {
			asg[v] = ws.modelValue(v)
		}
		return lTrue, asg, agg, nil
	}
	return verdict, nil, agg, nil
}
