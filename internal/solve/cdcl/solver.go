package cdcl

import (
	"context"
	"sort"
)

// clause is a disjunction of literals. Watched literals are lits[0] and
// lits[1].
type clause struct {
	lits   []lit
	act    float64
	learnt bool
}

// card is an at-most-k constraint over literals: sum(lits true) <= k.
// count tracks how many literals are currently true. A guarded card
// (guard != litUndef) is active only while its guard literal is true:
// the incremental session guards each instance group's cardinality
// constraints behind an assumption literal so that retiring the group
// (fixing the guard false at level 0) deactivates them soundly.
type card struct {
	lits  []lit
	k     int
	count int
	guard lit
}

type watcher struct {
	c       *clause
	blocker lit
}

// solver is the CDCL core. It is not safe for concurrent use.
type solver struct {
	nVars int
	ok    bool // false once a top-level conflict is derived

	clauses []*clause
	learnts []*clause
	cards   []*card

	// watches[l] lists clauses watching literal l, inspected when l
	// becomes false.
	watches [][]watcher
	// cardOcc[l] lists cards containing literal l.
	cardOcc [][]int32
	// guardOcc[g] lists cards guarded by literal g, inspected when g
	// becomes true (the card's counter may already be at or past its
	// bound by then).
	guardOcc [][]int32

	// assumps are solve-under-assumption literals, enqueued as the first
	// pseudo-decisions of every descent (one level each, MiniSat-style).
	// When the database forces an assumption false, search returns lFalse
	// with assumpFailed set — UNSAT under assumptions, solver intact —
	// as opposed to a level-0 conflict, which proves the database itself
	// unsatisfiable (ok = false).
	assumps      []lit
	assumpFailed bool
	// isSel marks selector variables (incremental constraint guards):
	// assigned true for the whole solve, so their negations are dead
	// literals in every clause body. Learnt clauses sink them behind the
	// model literals to keep watch-replacement scans short. Empty outside
	// sessions.
	isSel []bool

	assigns  []lbool
	level    []int32
	reasonCl []*clause
	reasonCd []int32
	trail    []lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap
	phase    []bool
	seen     []bool

	claInc     float64
	maxLearnts int

	// Diversification parameters. The defaults reproduce the historical
	// single-threaded search exactly; the parallel engine varies them per
	// worker so that the gang explores genuinely different trajectories
	// (ManySAT-style portfolio diversification).
	varDecay     float64 // VSIDS decay: varInc /= varDecay per conflict
	restartScale int64   // Luby restart unit, in conflicts

	// Clause-sharing hooks (nil for the sequential engine). onLearn is
	// invoked with every learnt clause, immediately after conflict
	// analysis; the callee must copy the slice if it retains it (the
	// solver reorders a clause's literals as watches move). onRestart is
	// invoked at every restart boundary with the trail at level 0; it
	// returns false when an imported clause produced a top-level
	// conflict, proving the formula unsatisfiable.
	onLearn   func(lits []lit)
	onRestart func() bool

	// Conflict-analysis scratch, reused across conflicts and restarts
	// (the learnt clause itself is copied out exactly sized, so these
	// grow to the working-set high-water mark once and then allocate
	// nothing per conflict).
	learntBuf []lit
	origBuf   []lit
	reasonBuf []lit
	minBuf    []lit

	conflicts, decisions, propagations, restarts int64
}

func newSolver(nVars int) *solver {
	s := &solver{
		nVars:        nVars,
		ok:           true,
		watches:      make([][]watcher, 2*nVars),
		cardOcc:      make([][]int32, 2*nVars),
		guardOcc:     make([][]int32, 2*nVars),
		assigns:      make([]lbool, nVars),
		level:        make([]int32, nVars),
		reasonCl:     make([]*clause, nVars),
		reasonCd:     make([]int32, nVars),
		activity:     make([]float64, nVars),
		phase:        make([]bool, nVars),
		seen:         make([]bool, nVars),
		varInc:       1,
		claInc:       1,
		maxLearnts:   20000,
		varDecay:     0.95,
		restartScale: 100,
	}
	for i := range s.reasonCd {
		s.reasonCd[i] = -1
	}
	s.heap.init(s)
	return s
}

// ensureVars grows the solver to at least n variables. New variables
// start unassigned with zero activity and phase false, and enter the
// branching heap. The incremental session uses this to extend one live
// solver with each successive model's fresh variables while keeping the
// shared ones (and everything learnt about them) in place.
func (s *solver) ensureVars(n int) {
	if n <= s.nVars {
		return
	}
	old := s.nVars
	s.nVars = n
	for len(s.watches) < 2*n {
		s.watches = append(s.watches, nil)
	}
	for len(s.cardOcc) < 2*n {
		s.cardOcc = append(s.cardOcc, nil)
	}
	for len(s.guardOcc) < 2*n {
		s.guardOcc = append(s.guardOcc, nil)
	}
	for v := old; v < n; v++ {
		s.assigns = append(s.assigns, lUndef)
		s.level = append(s.level, 0)
		s.reasonCl = append(s.reasonCl, nil)
		s.reasonCd = append(s.reasonCd, -1)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, false)
		s.seen = append(s.seen, false)
		s.heap.pos = append(s.heap.pos, -1)
		s.heap.push(v)
	}
}

func (s *solver) decisionLevel() int { return len(s.trailLim) }

func (s *solver) value(l lit) lbool { return valueOf(s.assigns, l) }

// enqueue assigns literal l true with the given reason. It must only be
// called when l is unassigned. Card counters are maintained here (and in
// cancelUntil) so that they stay balanced even for literals that are
// enqueued but never reached by the propagation head before a conflict.
func (s *solver) enqueue(l lit, rc *clause, rd int32) {
	v := l.vi()
	if l.sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reasonCl[v] = rc
	s.reasonCd[v] = rd
	s.trail = append(s.trail, l)
	for _, ci := range s.cardOcc[l] {
		s.cards[ci].count++
	}
}

// addFact enqueues a top-level unit fact; returns false on conflict.
func (s *solver) addFact(l lit) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		s.ok = false
		return false
	}
	s.enqueue(l, nil, -1)
	return true
}

// addClause installs a clause at decision level 0. Literals already false
// at level 0 are dropped; a satisfied clause is skipped. Returns false on
// a top-level conflict.
func (s *solver) addClause(in []lit) bool {
	if !s.ok {
		return false
	}
	lits := make([]lit, 0, len(in))
	for _, l := range in {
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		dup := false
		for _, m := range lits {
			if m == l {
				dup = true
				break
			}
			if m == l.neg() {
				return true // tautology
			}
		}
		if !dup {
			lits = append(lits, l)
		}
	}
	switch len(lits) {
	case 0:
		s.ok = false
		return false
	case 1:
		return s.addFact(lits[0])
	}
	c := &clause{lits: lits}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

// addAtMost installs sum(lits) <= k at decision level 0, simplifying
// against the current top-level assignment. Returns false on a top-level
// conflict. Literals must be over distinct variables.
func (s *solver) addAtMost(in []lit, k int) bool {
	return s.addAtMostGuarded(in, k, litUndef)
}

// addAtMostGuarded installs guard -> sum(lits) <= k. With guard ==
// litUndef the constraint is unconditional (addAtMost). A guarded
// constraint only bites while the guard literal is true; since guards
// appear only negatively in the clause database and only positively as
// assumptions, every learnt clause that depends on a guarded group
// automatically contains the guard's negation, which is what makes
// carrying learnt clauses across groups sound (see DESIGN.md,
// "Incremental solving"). Simplification against level-0 facts is
// sound for guarded constraints too: facts hold in every extension.
func (s *solver) addAtMostGuarded(in []lit, k int, guard lit) bool {
	if !s.ok {
		return false
	}
	if guard != litUndef {
		s.markSelector(guard.vi())
	}
	lits := make([]lit, 0, len(in))
	for _, l := range in {
		switch s.value(l) {
		case lTrue:
			k--
		case lFalse:
			// contributes 0, drop
		default:
			lits = append(lits, l)
		}
	}
	if k < 0 {
		if guard != litUndef {
			// Level-0 facts alone violate the bound: the group is
			// infeasible, which is exactly ¬guard.
			return s.addFact(guard.neg())
		}
		s.ok = false
		return false
	}
	if len(lits) <= k {
		return true
	}
	if k == 0 {
		for _, l := range lits {
			if guard != litUndef {
				if !s.addClause([]lit{guard.neg(), l.neg()}) {
					return false
				}
			} else if !s.addFact(l.neg()) {
				return false
			}
		}
		return true
	}
	if k == len(lits)-1 {
		// "not all true": a plain clause of negations. The guard literal
		// goes last: it is false whenever the group is live, so watch-
		// replacement scans should reach the model literals first.
		neg := make([]lit, 0, len(lits)+1)
		for _, l := range lits {
			neg = append(neg, l.neg())
		}
		if guard != litUndef {
			neg = append(neg, guard.neg())
		}
		return s.addClause(neg)
	}
	c := &card{lits: lits, k: k, guard: guard}
	ci := int32(len(s.cards))
	s.cards = append(s.cards, c)
	for _, l := range lits {
		s.cardOcc[l] = append(s.cardOcc[l], ci)
	}
	if guard != litUndef {
		s.guardOcc[guard] = append(s.guardOcc[guard], ci)
	}
	return true
}

// markSelector records v as a constraint-guard variable (see isSel).
func (s *solver) markSelector(v int) {
	for len(s.isSel) <= v {
		s.isSel = append(s.isSel, false)
	}
	s.isSel[v] = true
}

// sinkSelectors moves selector tags behind the model literals in
// lits[2:]. Tags are false for the whole solve, so a watch-replacement
// scan that reaches them walks dead weight; after sinking, viable
// candidates come first. The two watched positions are left alone. A
// no-op (and free) outside incremental sessions.
func (s *solver) sinkSelectors(lits []lit) {
	if len(s.isSel) == 0 || len(lits) < 4 {
		return
	}
	i, j := 2, len(lits)-1
	for i < j {
		for i < j && (lits[i].vi() >= len(s.isSel) || !s.isSel[lits[i].vi()]) {
			i++
		}
		for i < j && lits[j].vi() < len(s.isSel) && s.isSel[lits[j].vi()] {
			j--
		}
		if i < j {
			lits[i], lits[j] = lits[j], lits[i]
		}
	}
}

// clampBackjump bounds a conflict backjump at the assumption prefix.
// Jumping into the prefix would re-decide thousands of selector
// assumptions one pseudo-level at a time, and the learnt clause is
// equally asserting at the prefix top: its non-UIP literals all live at
// levels <= bt < len(assumps), so they stay false there. Unit learnts
// must still reach level 0 to become facts, and conflicts inside the
// prefix itself (assumption raising) keep the vanilla backjump so
// assumption refutation terminates. A no-op without assumptions.
func (s *solver) clampBackjump(bt, learntLen int) int {
	if lvl := len(s.assumps); learntLen > 1 && bt < lvl && s.decisionLevel() > lvl {
		return lvl
	}
	return bt
}

func (s *solver) attach(c *clause) {
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], watcher{c, c.lits[1]})
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], watcher{c, c.lits[0]})
}

// conflictRef identifies the constraint a conflict arose from: a clause
// or a card index. The zero-ish value noConflict means none — passing it
// by value keeps the propagation loop allocation-free.
type conflictRef struct {
	cl *clause
	cd int32
}

var noConflict = conflictRef{cl: nil, cd: -1}

// none reports the absence of a conflict.
func (c conflictRef) none() bool { return c.cl == nil && c.cd < 0 }

// propagate performs unit propagation over clauses and counter
// propagation over cards; it returns the conflicting constraint or
// noConflict.
func (s *solver) propagate() conflictRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++

		// Clause propagation: literal ¬p just became false.
		fl := p.neg()
		ws := s.watches[fl]
		out := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.value(w.blocker) == lTrue {
				out = append(out, w)
				continue
			}
			c := w.c
			if c.lits[0] == fl {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Now lits[1] == fl (false).
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				out = append(out, watcher{c, first})
				continue
			}
			found := false
			for i := 2; i < len(c.lits); i++ {
				if s.value(c.lits[i]) != lFalse {
					c.lits[1], c.lits[i] = c.lits[i], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved
			}
			// Unit or conflict.
			out = append(out, watcher{c, first})
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers, restore list.
				out = append(out, ws[wi+1:]...)
				s.watches[fl] = out
				s.qhead = len(s.trail)
				return conflictRef{cl: c, cd: -1}
			}
			s.enqueue(first, c, -1)
		}
		s.watches[fl] = out

		// Cardinality checks: literal p just became true (its counts
		// were already bumped at enqueue time). Guarded cards only bite
		// while their guard holds.
		for _, ci := range s.cardOcc[p] {
			c := s.cards[ci]
			if c.guard != litUndef && s.value(c.guard) != lTrue {
				continue
			}
			if c.count > c.k {
				s.qhead = len(s.trail)
				return conflictRef{cl: nil, cd: ci}
			}
			if c.count == c.k {
				for _, l := range c.lits {
					if s.value(l) == lUndef {
						s.enqueue(l.neg(), nil, ci)
					}
				}
			}
		}

		// Guard activation: p may be the guard of cards whose counters
		// already sit at or past the bound (counts are maintained
		// regardless of guard state).
		for _, ci := range s.guardOcc[p] {
			c := s.cards[ci]
			if c.count > c.k {
				s.qhead = len(s.trail)
				return conflictRef{cl: nil, cd: ci}
			}
			if c.count == c.k {
				for _, l := range c.lits {
					if s.value(l) == lUndef {
						s.enqueue(l.neg(), nil, ci)
					}
				}
			}
		}
	}
	return noConflict
}

// cancelUntil backtracks to the given decision level.
func (s *solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	end := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= end; i-- {
		p := s.trail[i]
		v := p.vi()
		s.phase[v] = s.assigns[v] == lTrue
		// Trail literals are true by construction; undo their card
		// counts (mirror of enqueue).
		for _, ci := range s.cardOcc[p] {
			s.cards[ci].count--
		}
		s.assigns[v] = lUndef
		s.reasonCl[v] = nil
		s.reasonCd[v] = -1
		s.heap.push(v)
	}
	s.trail = s.trail[:end]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// reasonLits materialises the implication clause of an assigned literal p
// (p is its first element) or, with p == litUndef, of a conflicting
// constraint.
func (s *solver) reasonLits(p lit, rc *clause, rd int32, buf []lit) []lit {
	buf = buf[:0]
	if rc != nil {
		return append(buf, rc.lits...)
	}
	if p != litUndef {
		buf = append(buf, p)
	}
	c := s.cards[rd]
	if c.guard != litUndef {
		// A guarded card implies nothing unless its guard holds: the
		// implication clause carries ¬guard, so conflict analysis tags
		// every derived clause with the groups it depends on.
		buf = append(buf, c.guard.neg())
	}
	for _, l := range c.lits {
		if s.value(l) == lTrue {
			buf = append(buf, l.neg())
		}
	}
	return buf
}

// analyze derives a first-UIP learnt clause from a conflict and returns
// it with the backjump level. learnt[0] is the asserting literal. The
// returned slice is freshly allocated at its exact final size (the
// caller stores it in a clause); all intermediate work happens in the
// solver's reusable scratch buffers.
func (s *solver) analyze(confl conflictRef) (learnt []lit, btLevel int) {
	work := append(s.learntBuf[:0], litUndef)
	pathC := 0
	p := litUndef
	idx := len(s.trail) - 1
	reason := s.reasonLits(litUndef, confl.cl, confl.cd, s.reasonBuf)

	for {
		for _, q := range reason {
			if q == p {
				continue
			}
			v := q.vi()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				pathC++
			} else {
				work = append(work, q)
			}
		}
		for !s.seen[s.trail[idx].vi()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.vi()] = false
		pathC--
		if pathC <= 0 {
			break
		}
		v := p.vi()
		reason = s.reasonLits(p, s.reasonCl[v], s.reasonCd[v], reason)
	}
	work[0] = p.neg()
	s.reasonBuf = reason

	// Local clause minimisation: a literal is redundant when every
	// antecedent of its implication is already in the clause (or fixed
	// at level 0). seen[] still marks exactly the learnt literals'
	// variables here, which is what the check needs.
	original := append(s.origBuf[:0], work[1:]...)
	s.origBuf = original
	kept := work[:1]
	buf := s.minBuf
	for _, q := range original {
		v := q.vi()
		rc, rd := s.reasonCl[v], s.reasonCd[v]
		if rc == nil && rd < 0 {
			kept = append(kept, q) // decision literal
			continue
		}
		redundant := true
		buf = s.reasonLits(q.neg(), rc, rd, buf)
		for _, r := range buf {
			if r == q.neg() {
				continue
			}
			if !s.seen[r.vi()] && s.level[r.vi()] != 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			kept = append(kept, q)
		}
	}
	s.minBuf = buf
	s.learntBuf = work

	// Backjump level: highest level among the other literals.
	btLevel = 0
	maxI := 1
	for i := 1; i < len(kept); i++ {
		if int(s.level[kept[i].vi()]) > btLevel {
			btLevel = int(s.level[kept[i].vi()])
			maxI = i
		}
	}
	if len(kept) > 1 {
		kept[1], kept[maxI] = kept[maxI], kept[1]
	}
	for _, l := range original {
		s.seen[l.vi()] = false
	}
	learnt = make([]lit, len(kept))
	copy(learnt, kept)
	return learnt, btLevel
}

func (s *solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *solver) decayActivities() {
	s.varInc /= s.varDecay
	s.claInc /= 0.999
}

func (s *solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// locked reports whether c is the reason of a current assignment.
func (s *solver) locked(c *clause) bool {
	v := c.lits[0].vi()
	return s.reasonCl[v] == c && s.assigns[v] != lUndef
}

// reduceDB removes roughly half of the least active learnt clauses.
func (s *solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool { return s.learnts[i].act > s.learnts[j].act })
	kept := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || s.locked(c) || len(c.lits) == 2 {
			kept = append(kept, c)
			continue
		}
		s.detach(c)
	}
	s.learnts = kept
}

// simplifyAtRoot garbage-collects the database against the level-0
// assignment: clauses satisfied at level 0 are dropped (this is how a
// retired group's constraints and every learnt clause tagged with its
// guard disappear — the guard's negation is true), surviving clauses
// re-select non-false watches, clauses reduced to a unit become facts,
// and cards whose guard is false at level 0 are removed with occurrence
// lists and counters rebuilt. Must be called at decision level 0; it
// finishes with a propagation fixpoint. Returns false when a top-level
// conflict is derived (ok is cleared).
func (s *solver) simplifyAtRoot() bool {
	if !s.ok {
		return false
	}
	// Reasons of level-0 literals are never materialised by analyze;
	// clearing them frees dropped clauses and permits card re-indexing.
	for _, p := range s.trail {
		v := p.vi()
		s.reasonCl[v] = nil
		s.reasonCd[v] = -1
	}

	// Rebuild the card store without dead (retired-guard) cards.
	keptCards := s.cards[:0]
	for _, c := range s.cards {
		if c.guard != litUndef && s.value(c.guard) == lFalse {
			continue
		}
		c.count = 0
		for _, l := range c.lits {
			if s.value(l) == lTrue {
				c.count++
			}
		}
		keptCards = append(keptCards, c)
	}
	s.cards = keptCards
	for i := range s.cardOcc {
		s.cardOcc[i] = s.cardOcc[i][:0]
	}
	for i := range s.guardOcc {
		s.guardOcc[i] = s.guardOcc[i][:0]
	}
	for i, c := range s.cards {
		for _, l := range c.lits {
			s.cardOcc[l] = append(s.cardOcc[l], int32(i))
		}
		if c.guard != litUndef {
			s.guardOcc[c.guard] = append(s.guardOcc[c.guard], int32(i))
		}
	}

	// Rebuild the watch lists: survivors watch two non-false literals.
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	process := func(list []*clause) ([]*clause, bool) {
		kept := list[:0]
		for _, c := range list {
			sat := false
			nf := 0 // non-false literals, moved to the front
			for i, l := range c.lits {
				switch s.value(l) {
				case lTrue:
					sat = true
				case lFalse:
					// stays; propagation skips false literals
				default:
					if nf < 2 {
						c.lits[nf], c.lits[i] = c.lits[i], c.lits[nf]
						nf++
					}
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			switch nf {
			case 0:
				s.ok = false
				return kept, false
			case 1:
				if !s.addFact(c.lits[0]) {
					return kept, false
				}
			default:
				s.attach(c)
				kept = append(kept, c)
			}
		}
		return kept, true
	}
	var ok bool
	if s.clauses, ok = process(s.clauses); !ok {
		return false
	}
	if s.learnts, ok = process(s.learnts); !ok {
		return false
	}
	if confl := s.propagate(); !confl.none() {
		s.ok = false
		return false
	}
	return true
}

func (s *solver) detach(c *clause) {
	for _, l := range c.lits[:2] {
		ws := s.watches[l]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// propCheckInterval bounds how many unit propagations may pass between
// context checks. Conflict-driven checks alone (every 1024 conflicts) can
// ignore a deadline for a long time on propagation-heavy instances where
// conflicts are rare; see TestCancellationLatency.
const propCheckInterval = 100_000

// search runs the CDCL loop until SAT (lTrue), UNSAT (lFalse) or context
// cancellation (lUndef). Cancellation is observed on three clocks:
// every 1024 conflicts, every ~100k propagations, and at every restart.
func (s *solver) search(ctx context.Context) lbool {
	s.assumpFailed = false
	if !s.ok {
		return lFalse
	}
	if ctx.Err() != nil {
		return lUndef
	}
	restartIdx := int64(0)
	conflictsSinceRestart := int64(0)
	restartBudget := luby(1) * s.restartScale
	nextPropCheck := s.propagations + propCheckInterval
	// A search start is a restart boundary too: pick up clauses shared
	// by workers that got ahead before this one finished compiling.
	if s.onRestart != nil && !s.onRestart() {
		s.ok = false
		return lFalse
	}

	for {
		confl := s.propagate()
		if s.propagations >= nextPropCheck {
			nextPropCheck = s.propagations + propCheckInterval
			if ctx.Err() != nil {
				return lUndef
			}
		}
		if !confl.none() {
			s.conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return lFalse
			}
			learnt, bt := s.analyze(confl)
			if s.onLearn != nil {
				s.onLearn(learnt)
			}
			s.cancelUntil(s.clampBackjump(bt, len(learnt)))
			if len(learnt) == 1 {
				if !s.addFact(learnt[0]) {
					return lFalse
				}
			} else {
				s.sinkSelectors(learnt)
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.enqueue(learnt[0], c, -1)
			}
			s.decayActivities()
			if s.conflicts%1024 == 0 && ctx.Err() != nil {
				return lUndef
			}
			continue
		}

		if conflictsSinceRestart >= restartBudget {
			restartIdx++
			conflictsSinceRestart = 0
			restartBudget = luby(restartIdx+1) * s.restartScale
			s.restarts++
			// Restarts keep the assumption prefix: re-propagating
			// thousands of selector assumptions from scratch at every
			// restart would dominate incremental solves. Without
			// assumptions this is the usual full restart to level 0.
			s.cancelUntil(len(s.assumps))
			if len(s.learnts) > s.maxLearnts {
				s.reduceDB()
			}
			if s.onRestart != nil && !s.onRestart() {
				s.ok = false
				return lFalse
			}
			if ctx.Err() != nil {
				return lUndef
			}
			continue
		}

		// Decide. Pending assumptions go first, one pseudo-decision
		// level each; only below them does the activity heap branch.
		if dl := s.decisionLevel(); dl < len(s.assumps) {
			p := s.assumps[dl]
			switch s.value(p) {
			case lFalse:
				// Forced false below its own level: UNSAT under
				// assumptions. The database itself stays consistent.
				s.assumpFailed = true
				return lFalse
			case lTrue:
				// Already implied; keep the level structure with an
				// empty pseudo-level so assumps[i] lives at level <= i+1.
				s.trailLim = append(s.trailLim, len(s.trail))
			default:
				s.decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(p, nil, -1)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return lTrue // all variables assigned, no conflict
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(mkLit(v, !s.phase[v]), nil, -1)
	}
}

func (s *solver) pickBranchVar() int {
	for {
		v := s.heap.popMax()
		if v < 0 {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// modelValue returns the value of variable v in the satisfying
// assignment; valid immediately after search returns lTrue.
func (s *solver) modelValue(v int) bool { return s.assigns[v] == lTrue }

// varHeap is a max-heap over variable activities with lazy re-insertion.
type varHeap struct {
	s    *solver
	heap []int32
	pos  []int32
}

func (h *varHeap) init(s *solver) {
	h.s = s
	h.pos = make([]int32, s.nVars)
	h.heap = make([]int32, 0, s.nVars)
	for v := 0; v < s.nVars; v++ {
		h.pos[v] = int32(v)
		h.heap = append(h.heap, int32(v))
	}
}

func (h *varHeap) less(i, j int) bool {
	return h.s.activity[h.heap[i]] > h.s.activity[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// push re-inserts a variable (no-op if present).
func (h *varHeap) push(v int) {
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, int32(v))
	h.up(len(h.heap) - 1)
}

// popMax removes and returns the most active variable, or -1.
func (h *varHeap) popMax() int {
	if len(h.heap) == 0 {
		return -1
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return int(v)
}

// update restores heap order after an activity bump of v.
func (h *varHeap) update(v int) {
	if h.pos[v] >= 0 {
		h.up(int(h.pos[v]))
	}
}
