package cdcl

import (
	"context"
	"sort"
)

// clause is a disjunction of literals. Watched literals are lits[0] and
// lits[1].
type clause struct {
	lits   []lit
	act    float64
	learnt bool
}

// card is an at-most-k constraint over literals: sum(lits true) <= k.
// count tracks how many literals are currently true.
type card struct {
	lits  []lit
	k     int
	count int
}

type watcher struct {
	c       *clause
	blocker lit
}

// solver is the CDCL core. It is not safe for concurrent use.
type solver struct {
	nVars int
	ok    bool // false once a top-level conflict is derived

	clauses []*clause
	learnts []*clause
	cards   []*card

	// watches[l] lists clauses watching literal l, inspected when l
	// becomes false.
	watches [][]watcher
	// cardOcc[l] lists cards containing literal l.
	cardOcc [][]int32

	assigns  []lbool
	level    []int32
	reasonCl []*clause
	reasonCd []int32
	trail    []lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap
	phase    []bool
	seen     []bool

	claInc     float64
	maxLearnts int

	// Diversification parameters. The defaults reproduce the historical
	// single-threaded search exactly; the parallel engine varies them per
	// worker so that the gang explores genuinely different trajectories
	// (ManySAT-style portfolio diversification).
	varDecay     float64 // VSIDS decay: varInc /= varDecay per conflict
	restartScale int64   // Luby restart unit, in conflicts

	// Clause-sharing hooks (nil for the sequential engine). onLearn is
	// invoked with every learnt clause, immediately after conflict
	// analysis; the callee must copy the slice if it retains it (the
	// solver reorders a clause's literals as watches move). onRestart is
	// invoked at every restart boundary with the trail at level 0; it
	// returns false when an imported clause produced a top-level
	// conflict, proving the formula unsatisfiable.
	onLearn   func(lits []lit)
	onRestart func() bool

	// Conflict-analysis scratch, reused across conflicts and restarts
	// (the learnt clause itself is copied out exactly sized, so these
	// grow to the working-set high-water mark once and then allocate
	// nothing per conflict).
	learntBuf []lit
	origBuf   []lit
	reasonBuf []lit
	minBuf    []lit

	conflicts, decisions, propagations, restarts int64
}

func newSolver(nVars int) *solver {
	s := &solver{
		nVars:        nVars,
		ok:           true,
		watches:      make([][]watcher, 2*nVars),
		cardOcc:      make([][]int32, 2*nVars),
		assigns:      make([]lbool, nVars),
		level:        make([]int32, nVars),
		reasonCl:     make([]*clause, nVars),
		reasonCd:     make([]int32, nVars),
		activity:     make([]float64, nVars),
		phase:        make([]bool, nVars),
		seen:         make([]bool, nVars),
		varInc:       1,
		claInc:       1,
		maxLearnts:   20000,
		varDecay:     0.95,
		restartScale: 100,
	}
	for i := range s.reasonCd {
		s.reasonCd[i] = -1
	}
	s.heap.init(s)
	return s
}

func (s *solver) decisionLevel() int { return len(s.trailLim) }

func (s *solver) value(l lit) lbool { return valueOf(s.assigns, l) }

// enqueue assigns literal l true with the given reason. It must only be
// called when l is unassigned. Card counters are maintained here (and in
// cancelUntil) so that they stay balanced even for literals that are
// enqueued but never reached by the propagation head before a conflict.
func (s *solver) enqueue(l lit, rc *clause, rd int32) {
	v := l.vi()
	if l.sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reasonCl[v] = rc
	s.reasonCd[v] = rd
	s.trail = append(s.trail, l)
	for _, ci := range s.cardOcc[l] {
		s.cards[ci].count++
	}
}

// addFact enqueues a top-level unit fact; returns false on conflict.
func (s *solver) addFact(l lit) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		s.ok = false
		return false
	}
	s.enqueue(l, nil, -1)
	return true
}

// addClause installs a clause at decision level 0. Literals already false
// at level 0 are dropped; a satisfied clause is skipped. Returns false on
// a top-level conflict.
func (s *solver) addClause(in []lit) bool {
	if !s.ok {
		return false
	}
	lits := make([]lit, 0, len(in))
	for _, l := range in {
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		dup := false
		for _, m := range lits {
			if m == l {
				dup = true
				break
			}
			if m == l.neg() {
				return true // tautology
			}
		}
		if !dup {
			lits = append(lits, l)
		}
	}
	switch len(lits) {
	case 0:
		s.ok = false
		return false
	case 1:
		return s.addFact(lits[0])
	}
	c := &clause{lits: lits}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

// addAtMost installs sum(lits) <= k at decision level 0, simplifying
// against the current top-level assignment. Returns false on a top-level
// conflict. Literals must be over distinct variables.
func (s *solver) addAtMost(in []lit, k int) bool {
	if !s.ok {
		return false
	}
	lits := make([]lit, 0, len(in))
	for _, l := range in {
		switch s.value(l) {
		case lTrue:
			k--
		case lFalse:
			// contributes 0, drop
		default:
			lits = append(lits, l)
		}
	}
	if k < 0 {
		s.ok = false
		return false
	}
	if len(lits) <= k {
		return true
	}
	if k == 0 {
		for _, l := range lits {
			if !s.addFact(l.neg()) {
				return false
			}
		}
		return true
	}
	if k == len(lits)-1 {
		// "not all true": a plain clause of negations.
		neg := make([]lit, len(lits))
		for i, l := range lits {
			neg[i] = l.neg()
		}
		return s.addClause(neg)
	}
	c := &card{lits: lits, k: k}
	ci := int32(len(s.cards))
	s.cards = append(s.cards, c)
	for _, l := range lits {
		s.cardOcc[l] = append(s.cardOcc[l], ci)
	}
	return true
}

func (s *solver) attach(c *clause) {
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], watcher{c, c.lits[1]})
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], watcher{c, c.lits[0]})
}

// conflictRef identifies the constraint a conflict arose from: a clause
// or a card index. The zero-ish value noConflict means none — passing it
// by value keeps the propagation loop allocation-free.
type conflictRef struct {
	cl *clause
	cd int32
}

var noConflict = conflictRef{cl: nil, cd: -1}

// none reports the absence of a conflict.
func (c conflictRef) none() bool { return c.cl == nil && c.cd < 0 }

// propagate performs unit propagation over clauses and counter
// propagation over cards; it returns the conflicting constraint or
// noConflict.
func (s *solver) propagate() conflictRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++

		// Clause propagation: literal ¬p just became false.
		fl := p.neg()
		ws := s.watches[fl]
		out := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.value(w.blocker) == lTrue {
				out = append(out, w)
				continue
			}
			c := w.c
			if c.lits[0] == fl {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Now lits[1] == fl (false).
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				out = append(out, watcher{c, first})
				continue
			}
			found := false
			for i := 2; i < len(c.lits); i++ {
				if s.value(c.lits[i]) != lFalse {
					c.lits[1], c.lits[i] = c.lits[i], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved
			}
			// Unit or conflict.
			out = append(out, watcher{c, first})
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers, restore list.
				out = append(out, ws[wi+1:]...)
				s.watches[fl] = out
				s.qhead = len(s.trail)
				return conflictRef{cl: c, cd: -1}
			}
			s.enqueue(first, c, -1)
		}
		s.watches[fl] = out

		// Cardinality checks: literal p just became true (its counts
		// were already bumped at enqueue time).
		for _, ci := range s.cardOcc[p] {
			c := s.cards[ci]
			if c.count > c.k {
				s.qhead = len(s.trail)
				return conflictRef{cl: nil, cd: ci}
			}
			if c.count == c.k {
				for _, l := range c.lits {
					if s.value(l) == lUndef {
						s.enqueue(l.neg(), nil, ci)
					}
				}
			}
		}
	}
	return noConflict
}

// cancelUntil backtracks to the given decision level.
func (s *solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	end := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= end; i-- {
		p := s.trail[i]
		v := p.vi()
		s.phase[v] = s.assigns[v] == lTrue
		// Trail literals are true by construction; undo their card
		// counts (mirror of enqueue).
		for _, ci := range s.cardOcc[p] {
			s.cards[ci].count--
		}
		s.assigns[v] = lUndef
		s.reasonCl[v] = nil
		s.reasonCd[v] = -1
		s.heap.push(v)
	}
	s.trail = s.trail[:end]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// reasonLits materialises the implication clause of an assigned literal p
// (p is its first element) or, with p == litUndef, of a conflicting
// constraint.
func (s *solver) reasonLits(p lit, rc *clause, rd int32, buf []lit) []lit {
	buf = buf[:0]
	if rc != nil {
		return append(buf, rc.lits...)
	}
	if p != litUndef {
		buf = append(buf, p)
	}
	c := s.cards[rd]
	for _, l := range c.lits {
		if s.value(l) == lTrue {
			buf = append(buf, l.neg())
		}
	}
	return buf
}

// analyze derives a first-UIP learnt clause from a conflict and returns
// it with the backjump level. learnt[0] is the asserting literal. The
// returned slice is freshly allocated at its exact final size (the
// caller stores it in a clause); all intermediate work happens in the
// solver's reusable scratch buffers.
func (s *solver) analyze(confl conflictRef) (learnt []lit, btLevel int) {
	work := append(s.learntBuf[:0], litUndef)
	pathC := 0
	p := litUndef
	idx := len(s.trail) - 1
	reason := s.reasonLits(litUndef, confl.cl, confl.cd, s.reasonBuf)

	for {
		for _, q := range reason {
			if q == p {
				continue
			}
			v := q.vi()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				pathC++
			} else {
				work = append(work, q)
			}
		}
		for !s.seen[s.trail[idx].vi()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.vi()] = false
		pathC--
		if pathC <= 0 {
			break
		}
		v := p.vi()
		reason = s.reasonLits(p, s.reasonCl[v], s.reasonCd[v], reason)
	}
	work[0] = p.neg()
	s.reasonBuf = reason

	// Local clause minimisation: a literal is redundant when every
	// antecedent of its implication is already in the clause (or fixed
	// at level 0). seen[] still marks exactly the learnt literals'
	// variables here, which is what the check needs.
	original := append(s.origBuf[:0], work[1:]...)
	s.origBuf = original
	kept := work[:1]
	buf := s.minBuf
	for _, q := range original {
		v := q.vi()
		rc, rd := s.reasonCl[v], s.reasonCd[v]
		if rc == nil && rd < 0 {
			kept = append(kept, q) // decision literal
			continue
		}
		redundant := true
		buf = s.reasonLits(q.neg(), rc, rd, buf)
		for _, r := range buf {
			if r == q.neg() {
				continue
			}
			if !s.seen[r.vi()] && s.level[r.vi()] != 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			kept = append(kept, q)
		}
	}
	s.minBuf = buf
	s.learntBuf = work

	// Backjump level: highest level among the other literals.
	btLevel = 0
	maxI := 1
	for i := 1; i < len(kept); i++ {
		if int(s.level[kept[i].vi()]) > btLevel {
			btLevel = int(s.level[kept[i].vi()])
			maxI = i
		}
	}
	if len(kept) > 1 {
		kept[1], kept[maxI] = kept[maxI], kept[1]
	}
	for _, l := range original {
		s.seen[l.vi()] = false
	}
	learnt = make([]lit, len(kept))
	copy(learnt, kept)
	return learnt, btLevel
}

func (s *solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *solver) decayActivities() {
	s.varInc /= s.varDecay
	s.claInc /= 0.999
}

func (s *solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// locked reports whether c is the reason of a current assignment.
func (s *solver) locked(c *clause) bool {
	v := c.lits[0].vi()
	return s.reasonCl[v] == c && s.assigns[v] != lUndef
}

// reduceDB removes roughly half of the least active learnt clauses.
func (s *solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool { return s.learnts[i].act > s.learnts[j].act })
	kept := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || s.locked(c) || len(c.lits) == 2 {
			kept = append(kept, c)
			continue
		}
		s.detach(c)
	}
	s.learnts = kept
}

func (s *solver) detach(c *clause) {
	for _, l := range c.lits[:2] {
		ws := s.watches[l]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// propCheckInterval bounds how many unit propagations may pass between
// context checks. Conflict-driven checks alone (every 1024 conflicts) can
// ignore a deadline for a long time on propagation-heavy instances where
// conflicts are rare; see TestCancellationLatency.
const propCheckInterval = 100_000

// search runs the CDCL loop until SAT (lTrue), UNSAT (lFalse) or context
// cancellation (lUndef). Cancellation is observed on three clocks:
// every 1024 conflicts, every ~100k propagations, and at every restart.
func (s *solver) search(ctx context.Context) lbool {
	if !s.ok {
		return lFalse
	}
	if ctx.Err() != nil {
		return lUndef
	}
	restartIdx := int64(0)
	conflictsSinceRestart := int64(0)
	restartBudget := luby(1) * s.restartScale
	nextPropCheck := s.propagations + propCheckInterval
	// A search start is a restart boundary too: pick up clauses shared
	// by workers that got ahead before this one finished compiling.
	if s.onRestart != nil && !s.onRestart() {
		s.ok = false
		return lFalse
	}

	for {
		confl := s.propagate()
		if s.propagations >= nextPropCheck {
			nextPropCheck = s.propagations + propCheckInterval
			if ctx.Err() != nil {
				return lUndef
			}
		}
		if !confl.none() {
			s.conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return lFalse
			}
			learnt, bt := s.analyze(confl)
			if s.onLearn != nil {
				s.onLearn(learnt)
			}
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				if !s.addFact(learnt[0]) {
					return lFalse
				}
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.enqueue(learnt[0], c, -1)
			}
			s.decayActivities()
			if s.conflicts%1024 == 0 && ctx.Err() != nil {
				return lUndef
			}
			continue
		}

		if conflictsSinceRestart >= restartBudget {
			restartIdx++
			conflictsSinceRestart = 0
			restartBudget = luby(restartIdx+1) * s.restartScale
			s.restarts++
			s.cancelUntil(0)
			if len(s.learnts) > s.maxLearnts {
				s.reduceDB()
			}
			if s.onRestart != nil && !s.onRestart() {
				s.ok = false
				return lFalse
			}
			if ctx.Err() != nil {
				return lUndef
			}
			continue
		}

		// Decide.
		v := s.pickBranchVar()
		if v < 0 {
			return lTrue // all variables assigned, no conflict
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(mkLit(v, !s.phase[v]), nil, -1)
	}
}

func (s *solver) pickBranchVar() int {
	for {
		v := s.heap.popMax()
		if v < 0 {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// modelValue returns the value of variable v in the satisfying
// assignment; valid immediately after search returns lTrue.
func (s *solver) modelValue(v int) bool { return s.assigns[v] == lTrue }

// varHeap is a max-heap over variable activities with lazy re-insertion.
type varHeap struct {
	s    *solver
	heap []int32
	pos  []int32
}

func (h *varHeap) init(s *solver) {
	h.s = s
	h.pos = make([]int32, s.nVars)
	h.heap = make([]int32, 0, s.nVars)
	for v := 0; v < s.nVars; v++ {
		h.pos[v] = int32(v)
		h.heap = append(h.heap, int32(v))
	}
}

func (h *varHeap) less(i, j int) bool {
	return h.s.activity[h.heap[i]] > h.s.activity[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// push re-inserts a variable (no-op if present).
func (h *varHeap) push(v int) {
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, int32(v))
	h.up(len(h.heap) - 1)
}

// popMax removes and returns the most active variable, or -1.
func (h *varHeap) popMax() int {
	if len(h.heap) == 0 {
		return -1
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return int(v)
}

// update restores heap order after an activity bump of v.
func (h *varHeap) update(v int) {
	if h.pos[v] >= 0 {
		h.up(int(h.pos[v]))
	}
}
