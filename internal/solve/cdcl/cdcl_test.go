package cdcl

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cgramap/internal/ilp"
)

// bruteForce enumerates every assignment of m (NumVars <= ~20) and
// returns the status and optimal objective.
func bruteForce(m *ilp.Model) (ilp.Status, int) {
	n := m.NumVars()
	bestObj := 0
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		a := make(ilp.Assignment, n)
		for v := 0; v < n; v++ {
			a[v] = mask&(1<<v) != 0
		}
		if m.Check(a) != nil {
			continue
		}
		obj := a.Eval(m.Objective)
		if !found || obj < bestObj {
			bestObj = obj
			found = true
		}
	}
	if !found {
		return ilp.Infeasible, 0
	}
	return ilp.Optimal, bestObj
}

func solve(t *testing.T, m *ilp.Model) *ilp.Solution {
	t.Helper()
	sol, err := New().Solve(context.Background(), m)
	if err != nil {
		t.Fatalf("Solve(%s): %v", m.Name, err)
	}
	return sol
}

func TestTrivial(t *testing.T) {
	m := ilp.NewModel("sat")
	x := m.Binary("x")
	y := m.Binary("y")
	m.AddGE("or", ilp.Sum(x, y), 1)
	sol := solve(t, m)
	if sol.Status != ilp.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !sol.Assignment[x] && !sol.Assignment[y] {
		t.Error("neither x nor y true")
	}
	if err := m.Check(sol.Assignment); err != nil {
		t.Error(err)
	}

	m2 := ilp.NewModel("unsat")
	z := m2.Binary("z")
	m2.AddGE("up", ilp.Sum(z), 1)
	m2.AddLE("down", ilp.Sum(z), 0)
	if sol := solve(t, m2); sol.Status != ilp.Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestExactlyOneChain(t *testing.T) {
	// n groups, exactly one per group, with cross-group implications.
	m := ilp.NewModel("chain")
	const n = 20
	vars := make([][3]ilp.Var, n)
	for i := range vars {
		for j := 0; j < 3; j++ {
			vars[i][j] = m.Binary(fmt.Sprintf("x_%d_%d", i, j))
		}
		m.AddEQ("one", ilp.Sum(vars[i][0], vars[i][1], vars[i][2]), 1)
	}
	// x[i][0] -> x[i+1][0]: forces a cascade once x[0][0] is chosen.
	for i := 0; i+1 < n; i++ {
		m.AddLE("imp", []ilp.Term{{Var: vars[i][0], Coef: 1}, {Var: vars[i+1][0], Coef: -1}}, 0)
	}
	m.AddGE("start", ilp.Sum(vars[0][0]), 1)
	sol := solve(t, m)
	if sol.Status != ilp.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	for i := range vars {
		if !sol.Assignment[vars[i][0]] {
			t.Fatalf("cascade broken at %d", i)
		}
	}
}

// TestPigeonhole: n+1 pigeons in n holes is infeasible — exercises the
// UNSAT-proving path the paper relies on for the '0' entries of Table 2.
func TestPigeonhole(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6} {
		m := ilp.NewModel(fmt.Sprintf("php%d", n))
		x := make([][]ilp.Var, n+1)
		for p := range x {
			x[p] = make([]ilp.Var, n)
			for h := 0; h < n; h++ {
				x[p][h] = m.Binary(fmt.Sprintf("p%dh%d", p, h))
			}
			m.AddGE("placed", ilp.Sum(x[p]...), 1)
		}
		for h := 0; h < n; h++ {
			col := make([]ilp.Var, n+1)
			for p := range x {
				col[p] = x[p][h]
			}
			m.AddLE("cap", ilp.Sum(col...), 1)
		}
		if sol := solve(t, m); sol.Status != ilp.Infeasible {
			t.Errorf("php%d: status = %v, want infeasible", n, sol.Status)
		}
	}
}

func TestOptimization(t *testing.T) {
	// Minimum vertex cover of a 5-cycle = 3.
	m := ilp.NewModel("cover")
	const n = 5
	v := make([]ilp.Var, n)
	for i := range v {
		v[i] = m.Binary(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i++ {
		m.AddGE("edge", ilp.Sum(v[i], v[(i+1)%n]), 1)
	}
	m.Objective = ilp.Sum(v...)
	sol := solve(t, m)
	if sol.Status != ilp.Optimal || sol.Objective != 3 {
		t.Errorf("status=%v obj=%d, want optimal 3", sol.Status, sol.Objective)
	}
	if err := m.Check(sol.Assignment); err != nil {
		t.Error(err)
	}
}

func TestNegativeObjective(t *testing.T) {
	// Maximise an independent set via negative unit coefficients.
	m := ilp.NewModel("indep")
	a := m.Binary("a")
	b := m.Binary("b")
	c := m.Binary("c")
	m.AddLE("ab", ilp.Sum(a, b), 1)
	m.AddLE("bc", ilp.Sum(b, c), 1)
	m.Objective = []ilp.Term{{Var: a, Coef: -1}, {Var: b, Coef: -1}, {Var: c, Coef: -1}}
	sol := solve(t, m)
	if sol.Status != ilp.Optimal || sol.Objective != -2 {
		t.Errorf("status=%v obj=%d, want optimal -2 (pick a and c)", sol.Status, sol.Objective)
	}
}

func TestNonUnitCoefficientRejected(t *testing.T) {
	m := ilp.NewModel("bad")
	x := m.Binary("x")
	m.AddLE("c", []ilp.Term{{Var: x, Coef: 2}}, 1)
	if _, err := New().Solve(context.Background(), m); err == nil {
		t.Error("non-unit coefficient accepted")
	}
	m2 := ilp.NewModel("badobj")
	y := m2.Binary("y")
	m2.Objective = []ilp.Term{{Var: y, Coef: 3}}
	if _, err := New().Solve(context.Background(), m2); err == nil {
		t.Error("non-unit objective accepted")
	}
}

func TestMergedDuplicateTerms(t *testing.T) {
	// x - x cancels to 0; constraint 0 <= 0 holds trivially.
	m := ilp.NewModel("cancel")
	x := m.Binary("x")
	y := m.Binary("y")
	m.AddLE("c", []ilp.Term{{Var: x, Coef: 1}, {Var: x, Coef: -1}, {Var: y, Coef: 1}}, 0)
	sol := solve(t, m)
	if sol.Status != ilp.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Assignment[y] {
		t.Error("y should be forced false")
	}
}

func TestCancellationReturnsBestEffort(t *testing.T) {
	// A model large enough not to finish instantly: pigeonhole 9/8.
	m := ilp.NewModel("php-big")
	const n = 8
	x := make([][]ilp.Var, n+1)
	for p := range x {
		x[p] = make([]ilp.Var, n)
		for h := 0; h < n; h++ {
			x[p][h] = m.Binary(fmt.Sprintf("p%dh%d", p, h))
		}
		m.AddGE("placed", ilp.Sum(x[p]...), 1)
	}
	for h := 0; h < n; h++ {
		col := make([]ilp.Var, n+1)
		for p := range x {
			col[p] = x[p][h]
		}
		m.AddLE("cap", ilp.Sum(col...), 1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	sol, err := New().Solve(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	// Either it finished (infeasible) or it reports unknown — never an
	// unproven claim.
	if sol.Status != ilp.Infeasible && sol.Status != ilp.Unknown {
		t.Errorf("status = %v, want infeasible or unknown", sol.Status)
	}
}

func TestEmptyModel(t *testing.T) {
	m := ilp.NewModel("empty")
	sol := solve(t, m)
	if sol.Status != ilp.Optimal {
		t.Errorf("empty model: %v", sol.Status)
	}
}

// randomUnitModel builds a random unit-coefficient model comparable
// against brute force.
func randomUnitModel(seed int64) *ilp.Model {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(8) // 3..10 vars
	m := ilp.NewModel("rand")
	vars := make([]ilp.Var, n)
	for i := range vars {
		vars[i] = m.Binary(fmt.Sprintf("x%d", i))
	}
	nCons := 2 + rng.Intn(10)
	for c := 0; c < nCons; c++ {
		size := 1 + rng.Intn(min(4, n))
		var terms []ilp.Term
		used := map[int]bool{}
		for len(terms) < size {
			v := rng.Intn(n)
			if used[v] {
				continue
			}
			used[v] = true
			coef := 1
			if rng.Intn(3) == 0 {
				coef = -1
			}
			terms = append(terms, ilp.Term{Var: vars[v], Coef: coef})
		}
		rel := []ilp.Rel{ilp.LE, ilp.GE, ilp.EQ}[rng.Intn(3)]
		rhs := rng.Intn(size+2) - 1
		m.Add("r", terms, rel, rhs)
	}
	if rng.Intn(2) == 0 {
		for _, v := range vars {
			coef := 1
			if rng.Intn(4) == 0 {
				coef = -1
			}
			if rng.Intn(3) != 0 {
				m.Objective = append(m.Objective, ilp.Term{Var: v, Coef: coef})
			}
		}
	}
	return m
}

// TestAgainstBruteForce: the engine agrees with exhaustive enumeration on
// feasibility and optimal objective for random unit-coefficient models.
func TestAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		m := randomUnitModel(seed)
		wantStatus, wantObj := bruteForce(m)
		sol, err := New().Solve(context.Background(), m)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if sol.Status != wantStatus {
			t.Logf("seed %d: status %v, want %v", seed, sol.Status, wantStatus)
			return false
		}
		if wantStatus == ilp.Optimal {
			if sol.Objective != wantObj {
				t.Logf("seed %d: objective %d, want %d", seed, sol.Objective, wantObj)
				return false
			}
			if err := m.Check(sol.Assignment); err != nil {
				t.Logf("seed %d: returned assignment infeasible: %v", seed, err)
				return false
			}
			if sol.Assignment.Eval(m.Objective) != sol.Objective {
				t.Logf("seed %d: reported objective mismatches assignment", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	m := ilp.NewModel("s")
	x := m.Binary("x")
	m.AddGE("c", ilp.Sum(x), 1)
	sol := solve(t, m)
	if sol.Stats == nil {
		t.Fatal("stats nil")
	}
	if _, ok := sol.Stats["decisions"]; !ok {
		t.Error("stats missing decisions")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
