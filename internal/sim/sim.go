// Package sim is a cycle-accurate functional simulator for configured
// CGRAs: it executes a fabric configuration (internal/config) on the
// architecture model, cycling through the execution contexts, and
// observes the values consumed by output operations and written by
// stores.
//
// Its purpose is end-to-end validation of the mapping flow: for an
// acyclic kernel, simulating the mapped configuration with constant
// inputs must converge to exactly the values direct DFG evaluation
// produces (see Validate) — demonstrating that a feasible ILP mapping is
// not merely structurally legal but computes the kernel.
//
// Memory model: loads read a fixed pre-iteration memory image; stores are
// collected separately (single-iteration semantics, matching
// dfg.Graph.Eval).
package sim

import (
	"fmt"

	"cgramap/internal/arch"
	"cgramap/internal/config"
	"cgramap/internal/dfg"
)

// value is a simulated bus value; valid distinguishes driven wires from
// unconfigured or not-yet-settled ones.
type value struct {
	v     uint32
	valid bool
}

// Machine simulates one configured fabric.
type Machine struct {
	cfg    *config.Config
	inputs map[string]uint32
	mem    map[uint32]uint32

	// drivers[prim][port] is the primitive driving that input port.
	drivers [][]int

	// regs holds each register's latched value.
	regs []value
	// fuPipe holds per-FU result pipelines for latency > 0 units,
	// indexed by cycle modulo (latency+1).
	fuPipe [][]value

	// outputs and stores collect observations (latest value wins,
	// i.e. the converged steady state).
	outputs map[string]uint32
	stores  map[uint32]uint32

	cycle int

	// per-cycle evaluation memo: state 0 untouched, 1 in progress,
	// 2 done.
	evalState []int8
	evalVal   []value
}

// New prepares a machine for the configuration with the given input
// values (keyed by input-operation name) and load memory.
func New(cfg *config.Config, inputs map[string]uint32, mem map[uint32]uint32) (*Machine, error) {
	m := &Machine{
		cfg:     cfg,
		inputs:  inputs,
		mem:     mem,
		outputs: make(map[string]uint32),
		stores:  make(map[uint32]uint32),
	}
	prims := cfg.Arch.Prims
	m.drivers = make([][]int, len(prims))
	for i, p := range prims {
		m.drivers[i] = make([]int, p.NIn)
		for j := range m.drivers[i] {
			m.drivers[i][j] = -1
		}
	}
	for _, c := range cfg.Arch.Conns {
		m.drivers[c.Dst][c.DstPort] = c.Src
	}
	m.regs = make([]value, len(prims))
	m.fuPipe = make([][]value, len(prims))
	for i, p := range prims {
		if p.Kind == arch.FU && p.Latency > 0 {
			m.fuPipe[i] = make([]value, p.Latency+1)
		}
	}
	m.evalState = make([]int8, len(prims))
	m.evalVal = make([]value, len(prims))
	return m, nil
}

// context returns the execution context of the current cycle.
func (m *Machine) context() int { return m.cycle % m.cfg.Contexts }

// Step simulates one cycle: combinational evaluation of every primitive
// output, observation of outputs and stores, then register latching.
func (m *Machine) Step() error {
	for i := range m.evalState {
		m.evalState[i] = 0
	}
	// Evaluate every primitive output once (memoised); detect
	// combinational loops, which a legal configuration cannot form.
	for i := range m.cfg.Arch.Prims {
		if _, err := m.eval(i); err != nil {
			return err
		}
	}
	// Observe sinks and collect register updates with this cycle's
	// values; latching happens after every evaluation so all reads see
	// the pre-cycle register state.
	ctx := m.context()
	type latch struct {
		reg int
		v   value
	}
	var latches []latch
	for i, p := range m.cfg.Arch.Prims {
		switch p.Kind {
		case arch.FU:
			setting, ok := m.cfg.FU[config.Key{Prim: i, Context: ctx}]
			if !ok || !m.isFiring(i, ctx) {
				continue
			}
			switch setting.Op.Kind {
			case dfg.Output:
				if in, err := m.port(i, 0); err != nil {
					return err
				} else if in.valid {
					m.outputs[setting.Op.Name] = in.v
				}
			case dfg.Store:
				addr, err := m.port(i, 0)
				if err != nil {
					return err
				}
				data, err := m.port(i, 1)
				if err != nil {
					return err
				}
				if addr.valid && data.valid {
					m.stores[addr.v] = data.v
				}
			}
		case arch.Reg:
			in, err := m.input(i, 0)
			if err != nil {
				return err
			}
			latches = append(latches, latch{i, in})
		}
	}
	for _, l := range latches {
		m.regs[l.reg] = l.v
	}
	m.cycle++
	return nil
}

// isFiring reports whether FU i accepts operands in context ctx.
func (m *Machine) isFiring(i, ctx int) bool {
	return ctx%m.cfg.Arch.Prims[i].II == 0
}

// input evaluates the driver of input port `port` of primitive i.
func (m *Machine) input(i, port int) (value, error) {
	d := m.drivers[i][port]
	if d < 0 {
		return value{}, fmt.Errorf("sim: %s port %d undriven", m.cfg.Arch.Prims[i].Name, port)
	}
	return m.eval(d)
}

// port is input() with operand-swap handling for FUs.
func (m *Machine) port(i, operand int) (value, error) {
	setting := m.cfg.FU[config.Key{Prim: i, Context: m.context()}]
	p := operand
	if setting.Swapped && operand < 2 {
		p = 1 - operand
	}
	return m.input(i, p)
}

// eval computes the output value of primitive i in the current cycle.
func (m *Machine) eval(i int) (value, error) {
	switch m.evalState[i] {
	case 2:
		return m.evalVal[i], nil
	case 1:
		return value{}, fmt.Errorf("sim: combinational loop through %s", m.cfg.Arch.Prims[i].Name)
	}
	m.evalState[i] = 1
	v, err := m.evalUncached(i)
	if err != nil {
		return value{}, err
	}
	m.evalState[i] = 2
	m.evalVal[i] = v
	return v, nil
}

func (m *Machine) evalUncached(i int) (value, error) {
	p := m.cfg.Arch.Prims[i]
	ctx := m.context()
	switch p.Kind {
	case arch.Wire:
		return m.input(i, 0)
	case arch.Reg:
		return m.regs[i], nil
	case arch.Mux:
		sel, ok := m.cfg.MuxSel[config.Key{Prim: i, Context: ctx}]
		if !ok {
			return value{}, nil // unused this context
		}
		return m.input(i, sel)
	case arch.FU:
		return m.evalFU(i, p, ctx)
	default:
		return value{}, fmt.Errorf("sim: unknown primitive kind %v", p.Kind)
	}
}

func (m *Machine) evalFU(i int, p *arch.Prim, ctx int) (value, error) {
	// For latency-L units the externally visible value is the one
	// computed L cycles ago.
	computeNow := func() (value, error) {
		setting, ok := m.cfg.FU[config.Key{Prim: i, Context: ctx}]
		if !ok || !m.isFiring(i, ctx) {
			return value{}, nil
		}
		op := setting.Op
		switch op.Kind {
		case dfg.Input:
			x, ok := m.inputs[op.Name]
			if !ok {
				return value{}, fmt.Errorf("sim: no input value for %q", op.Name)
			}
			return value{x, true}, nil
		case dfg.Output, dfg.Store:
			return value{}, nil // pure sinks drive nothing
		case dfg.Const:
			return value{0, true}, nil
		case dfg.Load:
			addr, err := m.port(i, 0)
			if err != nil || !addr.valid {
				return value{}, err
			}
			return value{m.mem[addr.v], true}, nil
		default:
			a, err := m.port(i, 0)
			if err != nil {
				return value{}, err
			}
			var bv value
			if op.Kind.NumOperands() == 2 {
				bv, err = m.port(i, 1)
				if err != nil {
					return value{}, err
				}
			} else {
				bv = value{0, true}
			}
			if !a.valid || !bv.valid {
				return value{}, nil
			}
			x, err := dfg.EvalOp(op.Kind, a.v, bv.v)
			if err != nil {
				return value{}, fmt.Errorf("sim: %s: %w", op.Name, err)
			}
			return value{x, true}, nil
		}
	}
	if p.Latency == 0 {
		return computeNow()
	}
	// Pipelined unit: compute and push into the pipe, emit the delayed
	// value.
	pipe := m.fuPipe[i]
	out := pipe[(m.cycle+1)%len(pipe)] // value from L cycles ago
	now, err := computeNow()
	if err != nil {
		return value{}, err
	}
	pipe[m.cycle%len(pipe)] = now
	return out, nil
}

// Run simulates the given number of complete context wheels.
func (m *Machine) Run(wheels int) error {
	for w := 0; w < wheels*m.cfg.Contexts; w++ {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Outputs returns the last value consumed by each output operation.
func (m *Machine) Outputs() map[string]uint32 { return m.outputs }

// Stores returns the last value stored to each address.
func (m *Machine) Stores() map[uint32]uint32 { return m.stores }
