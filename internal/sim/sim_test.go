package sim

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/config"
	"cgramap/internal/dfg"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

func mapOnGrid(t *testing.T, g *dfg.Graph, spec arch.GridSpec) *mapper.Mapping {
	t.Helper()
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := mapper.Map(ctx, g, mg, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("%s unmappable: %v (%s)", g.Name, res.Status, res.Reason)
	}
	return res.Mapping
}

var flexGrid = arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2}

// TestSimulateDot2: mapped configuration computes a*b + c*d.
func TestSimulateDot2(t *testing.T) {
	g := dfg.New("dot2")
	a := g.In("a")
	b := g.In("b")
	c := g.In("c")
	d := g.In("d")
	g.Out("r", g.Add("s", g.Mul("ab", a, b), g.Mul("cd", c, d)))
	m := mapOnGrid(t, g, flexGrid)
	inputs := map[string]uint32{"a": 3, "b": 5, "c": 7, "d": 11}
	cfg, err := config.Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := New(cfg, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.Run(20); err != nil {
		t.Fatal(err)
	}
	if got := machine.Outputs()["r"]; got != 3*5+7*11 {
		t.Errorf("r = %d, want %d", got, 3*5+7*11)
	}
}

// TestValidateBenchmarks: mapped benchmark kernels compute what their
// DFGs compute — the full flow (ILP map -> config -> simulate) is
// functionally correct, including the memory-using mac kernel.
func TestValidateBenchmarks(t *testing.T) {
	for _, name := range []string{"accum", "2x2-f", "2x2-p", "exp_4", "mac"} {
		g := bench.MustGet(name)
		m := mapOnGrid(t, g, flexGrid)
		inputs := DefaultInputs(g, 7)
		mem := map[uint32]uint32{}
		for a := uint32(0); a < 64; a++ {
			mem[a] = a*a + 1
		}
		if err := Validate(m, inputs, mem); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestValidateSingleContext: same flow on a single-context architecture
// (combinational chains plus same-cycle register wrap).
func TestValidateSingleContext(t *testing.T) {
	g := bench.MustGet("2x2-p")
	m := mapOnGrid(t, g, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1})
	if err := Validate(m, DefaultInputs(g, 100), nil); err != nil {
		t.Error(err)
	}
}

// TestSimulatePipelinedFU: a latency-1 multiplier delivers its result one
// cycle late; the simulator must model the pipeline.
func TestSimulatePipelinedFU(t *testing.T) {
	b := arch.NewBuilder("pipe", 2)
	src := b.FU("src", []dfg.Kind{dfg.Input}, 0, 0, 1)
	mul := b.FU("mul", []dfg.Kind{dfg.Mul}, 2, 1, 1)
	sink := b.FU("sink", []dfg.Kind{dfg.Output}, 1, 0, 1)
	b.Connect(src, mul, 0)
	b.Connect(src, mul, 1)
	b.Connect(mul, sink, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	g := dfg.New("sq")
	x := g.In("x")
	g.Out("o", g.Mul("m", x, x))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := mapper.Map(ctx, g, mg, mapper.Options{})
	if err != nil || !res.Feasible() {
		t.Fatalf("map: %v %v", err, res.Status)
	}
	if err := Validate(res.Mapping, map[string]uint32{"x": 9}, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertySimulationMatchesEval: random kernels mapped on the grid
// compute exactly what direct evaluation computes, over random input
// vectors.
func TestPropertySimulationMatchesEval(t *testing.T) {
	a, err := arch.Grid(flexGrid)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.New("rk")
		nIn := 1 + rng.Intn(3)
		vals := make([]*dfg.Value, 0, 8)
		for i := 0; i < nIn; i++ {
			vals = append(vals, g.In(fmt.Sprintf("in%d", i)))
		}
		kinds := []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Xor, dfg.And, dfg.Or, dfg.Shl}
		for i := 0; i < 1+rng.Intn(4); i++ {
			k := kinds[rng.Intn(len(kinds))]
			op, err := g.AddOp(fmt.Sprintf("op%d", i), k,
				vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))])
			if err != nil {
				panic(err)
			}
			vals = append(vals, op.Out)
		}
		g.Out("out", vals[len(vals)-1])

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := mapper.Map(ctx, g, mg, mapper.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !res.Feasible() {
			return true
		}
		inputs := make(map[string]uint32)
		for i := 0; i < nIn; i++ {
			inputs[fmt.Sprintf("in%d", i)] = rng.Uint32()
		}
		if err := Validate(res.Mapping, inputs, nil); err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, g.FormatString())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSimulatorRejectsBrokenConfig: removing a mux selection breaks the
// route; validation must fail, not silently pass.
func TestSimulatorRejectsBrokenConfig(t *testing.T) {
	g := bench.MustGet("2x2-f")
	m := mapOnGrid(t, g, flexGrid)
	cfg, err := config.Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one mux selection.
	for k := range cfg.MuxSel {
		delete(cfg.MuxSel, k)
		break
	}
	machine, err := New(cfg, DefaultInputs(g, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.Run(30); err != nil {
		return // a detected loop/undriven error is also acceptable
	}
	want, err := g.Eval(DefaultInputs(g, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for name, w := range want.Outputs {
		if machine.Outputs()[name] != w {
			same = false
		}
	}
	if same && len(want.Outputs) > 0 {
		t.Error("broken configuration still produced correct outputs")
	}
}

// TestValidateExtraKernels: the extended kernels (FIR, complex multiply,
// matrix-vector, Horner, strided memory) map and simulate correctly.
func TestValidateExtraKernels(t *testing.T) {
	for _, name := range []string{"fir4", "complexmul", "matvec2", "horner4", "memstride"} {
		g, err := bench.GetExtra(name)
		if err != nil {
			t.Fatal(err)
		}
		m := mapOnGrid(t, g, flexGrid)
		mem := map[uint32]uint32{}
		for a := uint32(0); a < 64; a++ {
			mem[a] = 3 * a
		}
		if err := Validate(m, DefaultInputs(g, 11), mem); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestIIRRecurrenceMaps: the loop-carried iir1 kernel maps with two
// contexts (RecMII = 2) and its back-edge routes through registers.
func TestIIRRecurrenceMaps(t *testing.T) {
	g, err := bench.GetExtra("iir1")
	if err != nil {
		t.Fatal(err)
	}
	m := mapOnGrid(t, g, flexGrid)
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}
