package sim

import (
	"fmt"

	"cgramap/internal/config"
	"cgramap/internal/dfg"
	"cgramap/internal/mapper"
)

// Validate checks a mapping end to end: it extracts the fabric
// configuration, simulates it with the given inputs and load memory
// until the (acyclic) dataflow has settled, and compares every observed
// output and store against direct DFG evaluation.
func Validate(m *mapper.Mapping, inputs map[string]uint32, mem map[uint32]uint32) error {
	want, err := m.DFG.Eval(inputs, mem)
	if err != nil {
		return fmt.Errorf("sim: reference evaluation: %w", err)
	}
	cfg, err := config.Extract(m)
	if err != nil {
		return err
	}
	machine, err := New(cfg, inputs, mem)
	if err != nil {
		return err
	}
	// With constant inputs the configured network settles after at most
	// one cycle per operation and routing register; a generous bound is
	// cheap.
	wheels := m.DFG.NumOps() + len(m.MRRG.Nodes)/max(1, m.MRRG.Contexts)/8 + 8
	if err := machine.Run(wheels); err != nil {
		return err
	}
	got := machine.Outputs()
	for name, w := range want.Outputs {
		g, ok := got[name]
		if !ok {
			return fmt.Errorf("sim: output %q never settled", name)
		}
		if g != w {
			return fmt.Errorf("sim: output %q = %d, want %d", name, g, w)
		}
	}
	gotStores := machine.Stores()
	for addr, w := range want.Stores {
		g, ok := gotStores[addr]
		if !ok {
			return fmt.Errorf("sim: store to %d never happened", addr)
		}
		if g != w {
			return fmt.Errorf("sim: store [%d] = %d, want %d", addr, g, w)
		}
	}
	return nil
}

// DefaultInputs builds a deterministic input vector for a DFG: each input
// operation receives a distinct small value derived from its position.
func DefaultInputs(g *dfg.Graph, seed uint32) map[string]uint32 {
	inputs := make(map[string]uint32)
	i := uint32(0)
	for _, op := range g.Ops() {
		if op.Kind == dfg.Input {
			inputs[op.Name] = seed + 3*i + 1
			i++
		}
	}
	return inputs
}
