package exper

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"cgramap/internal/anneal"
	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/mrrg"
)

// Fig8Row is one architecture's bar pair in the paper's Fig. 8: how many
// of the benchmarks each mapper could map.
type Fig8Row struct {
	Arch string
	ILP  int
	SA   int
}

// Fig8Options configures the mapper-comparison experiment.
type Fig8Options struct {
	// ILPSweep supplies the ILP mapper results; when nil, RunFig8 runs
	// the sweep itself with Sweep options.
	ILPSweep *Sweep
	// Sweep configures the ILP side when ILPSweep is nil.
	Sweep SweepOptions
	// SA carries the annealer's "moderate parameters" (paper §5);
	// zero values select the defaults.
	SA anneal.Options
	// SATimeout bounds each annealing run.
	SATimeout time.Duration
	// Progress, when non-nil, receives one line per completed SA cell.
	Progress io.Writer
}

// RunFig8 reproduces the paper's Fig. 8: feasible-mapping counts per
// architecture for the ILP mapper versus the simulated-annealing mapper
// on the same benchmarks.
func RunFig8(ctx context.Context, opts Fig8Options) ([]Fig8Row, *Sweep, error) {
	sweep := opts.ILPSweep
	if sweep == nil {
		var err error
		sweep, err = RunSweep(ctx, opts.Sweep)
		if err != nil {
			return nil, nil, err
		}
	}
	if opts.SATimeout == 0 {
		opts.SATimeout = 60 * time.Second
	}
	ilpTotals := sweep.FeasibleTotals()

	rows := make([]Fig8Row, len(sweep.Specs))
	mrrgs := make([]*mrrg.Graph, len(sweep.Specs))
	for i, spec := range sweep.Specs {
		a, err := arch.Grid(spec)
		if err != nil {
			return nil, nil, err
		}
		if mrrgs[i], err = mrrg.Generate(a); err != nil {
			return nil, nil, err
		}
		rows[i] = Fig8Row{Arch: spec.Name(), ILP: ilpTotals[i]}
	}
	for _, name := range sweep.Benchmarks {
		g, err := bench.Get(name)
		if err != nil {
			return nil, nil, err
		}
		for i := range sweep.Specs {
			saCtx, cancel := context.WithTimeout(ctx, opts.SATimeout)
			start := time.Now()
			res, err := anneal.Map(saCtx, g, mrrgs[i], opts.SA)
			cancel()
			if err != nil {
				return nil, nil, fmt.Errorf("exper: SA %s on %s: %w", name, rows[i].Arch, err)
			}
			if res.Feasible {
				rows[i].SA++
			}
			if opts.Progress != nil {
				// A heuristic miss is an undecided instance, not an
				// infeasibility proof, so it renders as the paper's "T".
				fmt.Fprintf(opts.Progress, "SA %-14s %-20s %s %8.1fms (%d moves)\n",
					name, rows[i].Arch, res.Status.Mark(),
					float64(time.Since(start).Microseconds())/1000, res.Moves)
			}
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
		}
	}
	return rows, sweep, nil
}

// RenderFig8 prints the comparison as a horizontal text bar chart, one
// pair of bars per architecture (the paper's grouped bar graph).
func RenderFig8(w io.Writer, rows []Fig8Row, total int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Feasible mappings out of %d benchmarks (ILP mapper vs SA mapper)\n\n", total)
	for _, r := range rows {
		fmt.Fprintf(bw, "%-20s ILP %2d |%s\n", r.Arch, r.ILP, strings.Repeat("#", r.ILP))
		fmt.Fprintf(bw, "%-20s SA  %2d |%s\n\n", "", r.SA, strings.Repeat("=", r.SA))
	}
	wins := 0
	for _, r := range rows {
		if r.ILP >= r.SA {
			wins++
		}
	}
	fmt.Fprintf(bw, "ILP finds at least as many mappings as SA on %d/%d architectures\n", wins, len(rows))
	return bw.Flush()
}

// VerifyILPAtLeastSA reports the architectures where SA beat the ILP
// mapper — possible only through solver timeouts (an SA success is a
// constructive feasibility proof the ILP run failed to reach in budget).
func VerifyILPAtLeastSA(rows []Fig8Row) []string {
	var anomalies []string
	for _, r := range rows {
		if r.SA > r.ILP {
			anomalies = append(anomalies, r.Arch)
		}
	}
	return anomalies
}
