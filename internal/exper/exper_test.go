package exper

import (
	"context"
	"strings"
	"testing"
	"time"

	"cgramap/internal/anneal"
	"cgramap/internal/arch"
)

var smallSpecs = []arch.GridSpec{
	{Rows: 3, Cols: 3, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1},
	{Rows: 3, Cols: 3, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2},
}

func TestRunSweepSmall(t *testing.T) {
	sweep, err := RunSweep(context.Background(), SweepOptions{
		Timeout:    20 * time.Second,
		Benchmarks: []string{"2x2-f", "accum", "mult_16"},
		Specs:      smallSpecs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != 3 || len(sweep.Cells[0]) != 2 {
		t.Fatalf("grid shape %dx%d", len(sweep.Cells), len(sweep.Cells[0]))
	}
	// mult_16 needs 15 multipliers; a 3x3 grid has at most 9 ALUs per
	// context.
	if sweep.Cells[2][0].Status.String() != "infeasible" {
		t.Errorf("mult_16 on 3x3 c1 = %v, want infeasible", sweep.Cells[2][0].Status)
	}
	totals := sweep.FeasibleTotals()
	if len(totals) != 2 {
		t.Fatalf("totals %v", totals)
	}

	var tbl strings.Builder
	if err := sweep.RenderTable2(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Benchmark", "Total Feasible", "2x2-f", "homo-diag-c2-3x3"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var rt strings.Builder
	if err := sweep.RuntimeSummary(&rt, time.Second, time.Minute); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rt.String(), "slowest run") {
		t.Errorf("runtime summary:\n%s", rt.String())
	}
}

func TestRenderTable1MatchesPaper(t *testing.T) {
	var sb strings.Builder
	if err := RenderTable1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("Table 1 deviates from the paper:\n%s", out)
	}
	if !strings.Contains(out, "weighted_sum") {
		t.Errorf("Table 1 incomplete:\n%s", out)
	}
}

func TestRunFig8Small(t *testing.T) {
	rows, sweep, err := RunFig8(context.Background(), Fig8Options{
		Sweep: SweepOptions{
			Timeout:    20 * time.Second,
			Benchmarks: []string{"2x2-f", "2x2-p"},
			Specs:      smallSpecs,
		},
		SA:        anneal.Options{MovesPerTemp: 60, InitialTemp: 4},
		SATimeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || sweep == nil {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r.SA < 0 || r.SA > 2 || r.ILP < 0 || r.ILP > 2 {
			t.Errorf("row out of range: %+v", r)
		}
	}
	var sb strings.Builder
	if err := RenderFig8(&sb, rows, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ILP") || !strings.Contains(sb.String(), "SA") {
		t.Errorf("fig8 rendering:\n%s", sb.String())
	}
}

func TestVerifyILPAtLeastSA(t *testing.T) {
	rows := []Fig8Row{{Arch: "a", ILP: 3, SA: 2}, {Arch: "b", ILP: 1, SA: 2}}
	anom := VerifyILPAtLeastSA(rows)
	if len(anom) != 1 || anom[0] != "b" {
		t.Errorf("anomalies = %v", anom)
	}
}

func TestPruningAblation(t *testing.T) {
	rows, err := RunPruningAblation(context.Background(), 20*time.Second,
		[]string{"2x2-f"}, arch.GridSpec{Rows: 3, Cols: 3, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 configs", len(rows))
	}
	var pruned, unpruned int
	for _, r := range rows {
		switch r.Config {
		case "pruned+presolve":
			pruned = r.Vars
		case "unpruned":
			unpruned = r.Vars
		}
	}
	if pruned >= unpruned {
		t.Errorf("pruning did not shrink the model: %d vs %d", pruned, unpruned)
	}
	var sb strings.Builder
	if err := RenderAblation(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "unpruned") {
		t.Errorf("ablation rendering:\n%s", sb.String())
	}
}

func TestEngineAblationAgrees(t *testing.T) {
	rows, err := RunEngineAblation(context.Background(), 45*time.Second, []string{"2x2-f"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestRunSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSweep(ctx, SweepOptions{
		Timeout:    time.Second,
		Benchmarks: []string{"accum"},
		Specs:      smallSpecs,
	})
	if err == nil {
		t.Error("cancelled sweep returned no error")
	}
}
