package exper

import (
	"context"
	"strings"
	"testing"
	"time"

	"cgramap/internal/dfg"
	"cgramap/internal/faultinject"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/cdcl"
)

// TestSweepSurvivesFaultySolver drives a sweep through a solver that
// randomly panics, stalls, and corrupts solutions. The grid must come
// back complete — wedged cells degrade to "T", contained panics are
// recorded in the cell, and no corrupted mapping is ever reported
// feasible (the mapper's decode/Verify gate downgrades those cells).
func TestSweepSurvivesFaultySolver(t *testing.T) {
	inj := faultinject.New(cdcl.New(), faultinject.Options{
		Faults:   faultinject.Panic | faultinject.Delay | faultinject.CorruptFlip | faultinject.CorruptTruncate,
		Prob:     0.6,
		Seed:     1,
		DelayFor: 3 * time.Second, // longer than the cell timeout: a stall becomes a "T"
		MaxFlips: 8,
	})
	benchmarks := []string{"2x2-f", "accum", "add_10", "mult_10"}
	sweep, err := RunSweep(context.Background(), SweepOptions{
		Timeout:    time.Second,
		Benchmarks: benchmarks,
		Specs:      smallSpecs,
		Mapper:     mapper.Options{Solver: inj},
	})
	if err != nil {
		t.Fatalf("sweep crashed instead of degrading: %v", err)
	}
	if len(sweep.Cells) != len(benchmarks) {
		t.Fatalf("sweep returned %d rows, want %d", len(sweep.Cells), len(benchmarks))
	}
	contained := 0
	for _, row := range sweep.Cells {
		if len(row) != len(smallSpecs) {
			t.Fatalf("incomplete row: %d cells, want %d", len(row), len(smallSpecs))
		}
		for _, c := range row {
			if c.Status == ilp.Optimal || c.Status == ilp.Feasible {
				// Feasible cells pass through mapper.Map, which decodes
				// and verifies before reporting: a corrupted assignment
				// cannot land here. A feasibility claim with a failure
				// reason would mean the gate was bypassed.
				if strings.Contains(c.Reason, "panicked") || strings.Contains(c.Reason, "failed") {
					t.Errorf("%s/%s: feasible cell carries failure reason %q", c.Benchmark, c.Arch, c.Reason)
				}
			}
			if strings.Contains(c.Reason, "panicked") || strings.Contains(c.Reason, "failed") {
				if c.Status != ilp.Unknown {
					t.Errorf("%s/%s: contained failure has status %v, want Unknown", c.Benchmark, c.Arch, c.Status)
				}
				contained++
			}
		}
	}
	if fired := inj.Fired(); fired["panic"] == 0 {
		t.Fatalf("injector never panicked (fired: %v) — test exercises nothing", fired)
	}
	if contained == 0 {
		t.Error("no cell recorded a contained failure despite injected panics")
	}
}

// TestSweepThroughDispatch checks the MapWith seam at the sweep level:
// options carrying a custom MapFunc are honoured for every cell.
func TestSweepThroughDispatch(t *testing.T) {
	calls := 0
	sweep, err := RunSweep(context.Background(), SweepOptions{
		Timeout:    20 * time.Second,
		Benchmarks: []string{"2x2-f", "accum"},
		Specs:      smallSpecs[:1],
		Mapper: mapper.Options{
			MapWith: func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts mapper.Options) (*mapper.Result, error) {
				calls++
				return mapper.Map(ctx, g, mg, opts)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sweep.Benchmarks) * len(sweep.Specs); calls != want {
		t.Errorf("MapWith invoked %d times, want %d", calls, want)
	}
}
