package exper

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/solve/bb"
)

// AblationRow compares one mapping instance across mapper configurations
// (the design-choice studies DESIGN.md calls out).
type AblationRow struct {
	Benchmark string
	Arch      string
	Config    string
	Status    ilp.Status
	Vars      int
	Consts    int
	Elapsed   time.Duration
}

// RunPruningAblation measures the effect of sub-value reachability
// pruning and the counting presolve on model size and runtime, over a set
// of representative benchmark/architecture pairs.
func RunPruningAblation(ctx context.Context, timeout time.Duration, benchmarks []string, spec arch.GridSpec) ([]AblationRow, error) {
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	a, err := arch.Grid(spec)
	if err != nil {
		return nil, err
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		opts mapper.Options
	}{
		{"pruned+presolve", mapper.Options{}},
		{"pruned", mapper.Options{DisablePresolve: true}},
		{"unpruned", mapper.Options{DisablePruning: true, DisablePresolve: true}},
	}
	var rows []AblationRow
	for _, name := range benchmarks {
		g, err := bench.Get(name)
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			cellCtx, cancel := context.WithTimeout(ctx, timeout)
			start := time.Now()
			res, err := mapper.Map(cellCtx, g, mg, cfg.opts)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("exper: ablation %s/%s: %w", name, cfg.name, err)
			}
			rows = append(rows, AblationRow{
				Benchmark: name,
				Arch:      spec.Name(),
				Config:    cfg.name,
				Status:    res.Status,
				Vars:      res.Vars,
				Consts:    res.Constraints,
				Elapsed:   time.Since(start),
			})
		}
	}
	return rows, nil
}

// RunEngineAblation cross-checks the default CDCL engine against the
// LP-relaxation branch-and-bound engine on small mapping instances (a
// tiny grid keeps the B&B tractable). It returns rows plus an error if
// the engines ever disagree on feasibility.
func RunEngineAblation(ctx context.Context, timeout time.Duration, benchmarks []string) ([]AblationRow, error) {
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	spec := arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 1}
	a, err := arch.Grid(spec)
	if err != nil {
		return nil, err
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, name := range benchmarks {
		g, err := bench.Get(name)
		if err != nil {
			return nil, err
		}
		var statuses []ilp.Status
		for _, cfg := range []struct {
			name string
			opts mapper.Options
		}{
			{"cdcl", mapper.Options{}},
			{"branch-and-bound", mapper.Options{Solver: bb.New()}},
		} {
			cellCtx, cancel := context.WithTimeout(ctx, timeout)
			start := time.Now()
			res, err := mapper.Map(cellCtx, g, mg, cfg.opts)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("exper: engine ablation %s/%s: %w", name, cfg.name, err)
			}
			statuses = append(statuses, res.Status)
			rows = append(rows, AblationRow{
				Benchmark: name,
				Arch:      spec.Name(),
				Config:    cfg.name,
				Status:    res.Status,
				Vars:      res.Vars,
				Consts:    res.Constraints,
				Elapsed:   time.Since(start),
			})
		}
		if decided(statuses[0]) && decided(statuses[1]) && feasible(statuses[0]) != feasible(statuses[1]) {
			return rows, fmt.Errorf("exper: engines disagree on %s: cdcl=%v bb=%v", name, statuses[0], statuses[1])
		}
	}
	return rows, nil
}

func decided(s ilp.Status) bool  { return s != ilp.Unknown }
func feasible(s ilp.Status) bool { return s == ilp.Optimal || s == ilp.Feasible }

// RenderAblation prints ablation rows as a table.
func RenderAblation(w io.Writer, rows []AblationRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-14s %-20s %-18s %-10s %8s %8s %10s\n",
		"Benchmark", "Arch", "Config", "Status", "Vars", "Consts", "Time")
	for _, r := range rows {
		fmt.Fprintf(bw, "%-14s %-20s %-18s %-10s %8d %8d %9.1fms\n",
			r.Benchmark, r.Arch, r.Config, r.Status, r.Vars, r.Consts,
			float64(r.Elapsed.Microseconds())/1000)
	}
	return bw.Flush()
}
