// Package exper contains the experiment runners that regenerate the
// paper's evaluation artifacts: Table 1 (benchmark characteristics),
// Table 2 (ILP mappability of 19 benchmarks over 8 architectures) and
// Fig. 8 (ILP mapper vs simulated-annealing mapper), plus the ablation
// studies called out in DESIGN.md.
package exper

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// Cell is one benchmark-on-architecture outcome.
type Cell struct {
	Benchmark string
	Arch      string
	Status    ilp.Status
	// Elapsed is the cell's wall clock (build + solve + decode across
	// however many workers ran); SolveTime is the solver's own share.
	// With parallel workers the two diverge: wall clock is what a user
	// waits, solver time is what the machine spent.
	Elapsed   time.Duration
	SolveTime time.Duration
	Vars      int
	Consts    int
	Reason    string
}

// Mark renders the cell the way the paper's Table 2 does: 1 feasible,
// 0 infeasible, T solver timeout (ilp.Status.Mark).
func (c Cell) Mark() string { return c.Status.Mark() }

// Sweep is a full benchmarks-by-architectures result grid.
type Sweep struct {
	Benchmarks []string
	Specs      []arch.GridSpec
	// Cells[b][a] corresponds to Benchmarks[b] on Specs[a].
	Cells [][]Cell
}

// FeasibleTotals returns the per-architecture feasible counts (the
// paper's "Total Feasible" row).
func (s *Sweep) FeasibleTotals() []int {
	totals := make([]int, len(s.Specs))
	for _, row := range s.Cells {
		for a, c := range row {
			if feasible(c.Status) {
				totals[a]++
			}
		}
	}
	return totals
}

// SweepOptions configures a Table 2 style run.
type SweepOptions struct {
	// Timeout bounds each benchmark/architecture solve (the paper used
	// a 24 h cap; experiments here default to seconds).
	Timeout time.Duration
	// Benchmarks defaults to the paper's 19; Specs to the paper's 8.
	Benchmarks []string
	Specs      []arch.GridSpec
	// Mapper carries mapper options (engine, objective, ablations). Set
	// Mapper.MapWith (e.g. portfolio.MapFunc) to route every cell
	// through an orchestrator instead of the direct pipeline.
	Mapper mapper.Options
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

func (o *SweepOptions) fill() {
	if o.Timeout == 0 {
		o.Timeout = 60 * time.Second
	}
	if o.Benchmarks == nil {
		o.Benchmarks = bench.Names()
	}
	if o.Specs == nil {
		o.Specs = arch.PaperArchitectures()
	}
}

// RunSweep maps every benchmark onto every architecture with the ILP
// mapper, regenerating the data behind the paper's Table 2.
func RunSweep(ctx context.Context, opts SweepOptions) (*Sweep, error) {
	opts.fill()
	mrrgs := make([]*mrrg.Graph, len(opts.Specs))
	for i, spec := range opts.Specs {
		a, err := arch.Grid(spec)
		if err != nil {
			return nil, fmt.Errorf("exper: building %s: %w", spec.Name(), err)
		}
		if mrrgs[i], err = mrrg.Generate(a); err != nil {
			return nil, fmt.Errorf("exper: MRRG for %s: %w", spec.Name(), err)
		}
	}
	sweep := &Sweep{Benchmarks: opts.Benchmarks, Specs: opts.Specs}
	for _, name := range opts.Benchmarks {
		g, err := bench.Get(name)
		if err != nil {
			return nil, err
		}
		row := make([]Cell, len(opts.Specs))
		for a, spec := range opts.Specs {
			cell, err := runCell(ctx, g, mrrgs[a], spec.Name(), opts)
			if err != nil {
				return nil, err
			}
			row[a] = cell
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "%-14s %-20s %s  wall %8.1fms  solve %8.1fms  (%d vars, %d constraints) %s\n",
					name, spec.Name(), cell.Mark(),
					float64(cell.Elapsed.Microseconds())/1000,
					float64(cell.SolveTime.Microseconds())/1000, cell.Vars, cell.Consts, cell.Reason)
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		sweep.Cells = append(sweep.Cells, row)
	}
	return sweep, nil
}

// runCell maps one benchmark onto one architecture under the per-cell
// deadline. A crashing or erroring mapper must not take the whole sweep
// down with it (the paper's grid has 152 cells; one wedged instance
// should cost one "T", not the run), so panics and mapper errors are
// contained into an Unknown cell with the failure recorded as its
// Reason. Only a cancelled sweep context aborts the grid.
func runCell(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, archName string, opts SweepOptions) (cell Cell, err error) {
	cellCtx, cancel := context.WithTimeout(ctx, opts.Timeout)
	defer cancel()
	start := time.Now()
	cell = Cell{Benchmark: g.Name, Arch: archName}
	defer func() {
		cell.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			cell.Status = ilp.Unknown
			cell.Reason = fmt.Sprintf("mapper panicked: %v", r)
			err = nil
		}
	}()
	res, mapErr := mapper.Dispatch(cellCtx, g, mg, opts.Mapper)
	if mapErr != nil {
		if ctx.Err() != nil {
			return Cell{}, fmt.Errorf("exper: %s on %s: %w", g.Name, archName, mapErr)
		}
		cell.Status = ilp.Unknown
		cell.Reason = fmt.Sprintf("mapper failed: %v", mapErr)
		return cell, nil
	}
	cell.Status = res.Status
	cell.SolveTime = res.SolveTime
	cell.Vars = res.Vars
	cell.Consts = res.Constraints
	cell.Reason = res.Reason
	return cell, nil
}

// RenderTable2 prints the sweep in the paper's Table 2 layout.
func (s *Sweep) RenderTable2(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-14s", "Benchmark")
	for _, spec := range s.Specs {
		fmt.Fprintf(bw, " %-18s", spec.Name())
	}
	fmt.Fprintln(bw)
	for b, name := range s.Benchmarks {
		fmt.Fprintf(bw, "%-14s", name)
		for a := range s.Specs {
			fmt.Fprintf(bw, " %-18s", s.Cells[b][a].Mark())
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, "%-14s", "Total Feasible")
	for _, total := range s.FeasibleTotals() {
		fmt.Fprintf(bw, " %-18d", total)
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}

// RuntimeSummary reports the fraction of cells solved within each of the
// given budgets plus the worst cell — the paper's ">80% of runs completed
// within one hour" observation, rescaled to this solver stack.
func (s *Sweep) RuntimeSummary(w io.Writer, budgets ...time.Duration) error {
	var all []time.Duration
	var totalWall, totalSolve time.Duration
	worst := Cell{}
	for _, row := range s.Cells {
		for _, c := range row {
			all = append(all, c.Elapsed)
			totalWall += c.Elapsed
			totalSolve += c.SolveTime
			if c.Elapsed > worst.Elapsed {
				worst = c
			}
		}
	}
	bw := bufio.NewWriter(w)
	for _, b := range budgets {
		n := 0
		for _, d := range all {
			if d <= b {
				n++
			}
		}
		fmt.Fprintf(bw, "runs within %-8v: %d/%d (%.0f%%)\n", b, n, len(all), 100*float64(n)/float64(len(all)))
	}
	fmt.Fprintf(bw, "slowest run: %s on %s (%v, %s)\n", worst.Benchmark, worst.Arch, worst.Elapsed, worst.Mark())
	fmt.Fprintf(bw, "total wall clock %v, total solver time %v\n",
		totalWall.Round(time.Millisecond), totalSolve.Round(time.Millisecond))
	return bw.Flush()
}

// RenderTable1 prints the benchmark characteristics (paper Table 1),
// computed from the synthesised DFGs and cross-checked against the
// published numbers.
func RenderTable1(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-14s %5s %11s %12s\n", "Benchmark", "I/Os", "Operations", "# Multiplies")
	for _, want := range bench.Table1 {
		g := bench.MustGet(want.Name)
		st := g.Stats()
		note := ""
		if st.IOs != want.IOs || st.Ops != want.Ops || st.Multiplies != want.Multiplies {
			note = "  MISMATCH vs paper"
		}
		fmt.Fprintf(bw, "%-14s %5d %11d %12d%s\n", want.Name, st.IOs, st.Ops, st.Multiplies, note)
	}
	return bw.Flush()
}
