// Package config extracts CGRA configurations from verified mappings:
// the per-context multiplexer selections and functional-unit opcodes that
// would be loaded into the fabric's configuration memory to execute the
// mapped kernel. This is the artifact a downstream user ultimately wants
// from a mapper, and it is what the functional simulator
// (internal/sim) executes to validate mappings end to end.
package config

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// Key addresses one primitive in one execution context.
type Key struct {
	Prim    int
	Context int
}

// FUSetting is the configuration of one functional unit in one context.
type FUSetting struct {
	// Op is the DFG operation executed in this slot.
	Op *dfg.Op
	// Swapped is true when the operands of a (commutative) binary
	// operation arrive on opposite ports.
	Swapped bool
}

// Config is a complete fabric configuration: every used multiplexer's
// selected input and every used functional unit's opcode, per context.
type Config struct {
	// Arch is the configured architecture; Contexts its context count.
	Arch     *arch.Arch
	Contexts int
	// MuxSel maps used multiplexers to their selected input port.
	MuxSel map[Key]int
	// FU maps used functional units to their executed operation.
	FU map[Key]FUSetting
}

// Extract derives the configuration from a mapping. The mapping must be
// valid (Extract re-verifies it) and every used multiplexer must be
// entered by exactly one pin — which the ILP's Multiplexer Input
// Exclusivity constraint guarantees.
func Extract(m *mapper.Mapping) (*Config, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("config: mapping invalid: %w", err)
	}
	mg := m.MRRG
	cfg := &Config{
		Arch:     mg.Arch,
		Contexts: mg.Contexts,
		MuxSel:   make(map[Key]int),
		FU:       make(map[Key]FUSetting),
	}

	// Node ownership across all values.
	owner := make(map[int]*dfg.Value)
	for _, v := range m.DFG.Vals() {
		for _, n := range m.RouteNodesOf(v) {
			owner[n] = v
		}
	}

	// Multiplexer selections: a used mux node must have exactly one
	// used pin (its entry point); the pin index is the selection.
	for n, v := range owner {
		node := mg.Nodes[n]
		if mg.Arch.Prims[node.Prim].Kind != arch.Mux || node.PinPort >= 0 {
			continue // only internal mux nodes here
		}
		sel := -1
		for _, pin := range node.Fanins {
			if owner[pin] == v {
				if sel >= 0 {
					return nil, fmt.Errorf("config: mux %s entered by two pins for value %s", node.Name, v.Name)
				}
				sel = mg.Nodes[pin].PinPort
			}
		}
		if sel < 0 {
			return nil, fmt.Errorf("config: mux %s used by value %s without an entry pin", node.Name, v.Name)
		}
		key := Key{Prim: node.Prim, Context: node.Context}
		if prev, dup := cfg.MuxSel[key]; dup && prev != sel {
			return nil, fmt.Errorf("config: conflicting selections for mux %s", node.Name)
		}
		cfg.MuxSel[key] = sel
	}

	// Functional-unit opcodes and operand orientation.
	for _, op := range m.DFG.Ops() {
		fuNode := mg.Nodes[m.Placement[op.ID]]
		key := Key{Prim: fuNode.Prim, Context: fuNode.Context}
		if prev, dup := cfg.FU[key]; dup {
			return nil, fmt.Errorf("config: ops %s and %s share FU slot %s", prev.Op.Name, op.Name, fuNode.Name)
		}
		setting := FUSetting{Op: op}
		if len(op.In) == 2 {
			set0 := terminalPorts(m, op, 0, fuNode)
			set1 := terminalPorts(m, op, 1, fuNode)
			switch {
			case set0[0] && set1[1]:
				setting.Swapped = false
			case set0[1] && set1[0]:
				setting.Swapped = true
			default:
				return nil, fmt.Errorf("config: operands of %s cannot be assigned distinct ports of %s",
					op.Name, fuNode.Name)
			}
		}
		cfg.FU[key] = setting
	}
	return cfg, nil
}

// terminalPorts reports which operand ports of fu the route of operand s
// of op reaches (a route set may brush several ports when it carries a
// whole routing tree, e.g. from the annealer; the caller picks a distinct
// assignment).
func terminalPorts(m *mapper.Mapping, op *dfg.Op, s int, fu *mrrg.Node) map[int]bool {
	ports := make(map[int]bool)
	v := op.In[s]
	for i, u := range v.Uses {
		if u.Op != op || u.Operand != s {
			continue
		}
		for _, n := range m.Routes[v.ID][i] {
			node := m.MRRG.Nodes[n]
			if node.FUNode == fu.ID && node.OperandPort >= 0 &&
				m.MRRG.CompatibleSink(node, op, s) {
				ports[node.OperandPort] = true
			}
		}
	}
	return ports
}

// Render prints the configuration as a per-context table.
func (c *Config) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "configuration of %s (%d contexts): %d FU slots, %d mux selections\n",
		c.Arch.Name, c.Contexts, len(c.FU), len(c.MuxSel))
	for ctx := 0; ctx < c.Contexts; ctx++ {
		fmt.Fprintf(bw, "context %d:\n", ctx)
		var fuKeys, muxKeys []Key
		for k := range c.FU {
			if k.Context == ctx {
				fuKeys = append(fuKeys, k)
			}
		}
		for k := range c.MuxSel {
			if k.Context == ctx {
				muxKeys = append(muxKeys, k)
			}
		}
		sort.Slice(fuKeys, func(i, j int) bool { return fuKeys[i].Prim < fuKeys[j].Prim })
		sort.Slice(muxKeys, func(i, j int) bool { return muxKeys[i].Prim < muxKeys[j].Prim })
		for _, k := range fuKeys {
			s := c.FU[k]
			swap := ""
			if s.Swapped {
				swap = " (operands swapped)"
			}
			fmt.Fprintf(bw, "  fu  %-22s %s = %s%s\n", c.Arch.Prims[k.Prim].Name, s.Op.Kind, s.Op.Name, swap)
		}
		for _, k := range muxKeys {
			fmt.Fprintf(bw, "  mux %-22s select input %d\n", c.Arch.Prims[k.Prim].Name, c.MuxSel[k])
		}
	}
	return bw.Flush()
}
