package config

import (
	"context"
	"strings"
	"testing"
	"time"

	"cgramap/internal/anneal"
	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

func mapBenchmark(t *testing.T, name string, spec arch.GridSpec) *mapper.Mapping {
	t.Helper()
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	g := bench.MustGet(name)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := mapper.Map(ctx, g, mg, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("%s unmappable: %v (%s)", name, res.Status, res.Reason)
	}
	return res.Mapping
}

func TestExtractAccum(t *testing.T) {
	m := mapBenchmark(t, "accum", arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	cfg, err := Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	// One FU slot per operation.
	if len(cfg.FU) != m.DFG.NumOps() {
		t.Errorf("FU settings = %d, want %d", len(cfg.FU), m.DFG.NumOps())
	}
	// Every op appears exactly once with its own kind.
	seen := map[string]bool{}
	for k, s := range cfg.FU {
		if seen[s.Op.Name] {
			t.Errorf("op %s configured twice", s.Op.Name)
		}
		seen[s.Op.Name] = true
		prim := cfg.Arch.Prims[k.Prim]
		if !prim.SupportsOp(s.Op.Kind) {
			t.Errorf("op %s (%s) configured on incompatible %s", s.Op.Name, s.Op.Kind, prim.Name)
		}
	}
	if len(cfg.MuxSel) == 0 {
		t.Error("no mux selections extracted")
	}
	for k, sel := range cfg.MuxSel {
		prim := cfg.Arch.Prims[k.Prim]
		if prim.Kind != arch.Mux {
			t.Errorf("selection on non-mux %s", prim.Name)
		}
		if sel < 0 || sel >= prim.NIn {
			t.Errorf("mux %s selection %d out of range", prim.Name, sel)
		}
	}
	var sb strings.Builder
	if err := cfg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"configuration of", "context 0", "context 1", "mul", "select input"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestExtractFromAnnealer(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: true, Contexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := anneal.Map(ctx, bench.MustGet("2x2-f"), mg, anneal.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("annealer missed; nothing to extract")
	}
	if _, err := Extract(res.Mapping); err != nil {
		t.Errorf("annealer mapping not extractable: %v", err)
	}
}

func TestExtractSwappedOperands(t *testing.T) {
	// x*x forces the two sub-values onto distinct ports; extraction
	// must succeed regardless of which port got which.
	b := arch.NewBuilder("sq", 1)
	in := b.FU("in", []dfg.Kind{dfg.Input}, 0, 0, 1)
	muxA := b.Mux("mux_a", 1)
	muxB := b.Mux("mux_b", 1)
	alu := b.FU("alu", []dfg.Kind{dfg.Mul}, 2, 0, 1)
	out := b.FU("out", []dfg.Kind{dfg.Output}, 1, 0, 1)
	b.Connect(in, muxA, 0)
	b.Connect(in, muxB, 0)
	b.Connect(muxA, alu, 0)
	b.Connect(muxB, alu, 1)
	b.Connect(alu, out, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	g := dfg.New("sq")
	x := g.In("x")
	g.Out("o", g.Mul("m", x, x))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := mapper.Map(ctx, g, mg, mapper.Options{})
	if err != nil || !res.Feasible() {
		t.Fatalf("map: %v %v", err, res)
	}
	cfg, err := Extract(res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.FU) != 3 {
		t.Errorf("FU settings = %d, want 3", len(cfg.FU))
	}
}

func TestExtractRejectsCorruptMapping(t *testing.T) {
	m := mapBenchmark(t, "2x2-f", arch.GridSpec{Rows: 4, Cols: 4, Homogeneous: true, Contexts: 1})
	// Corrupt: point two ops at the same FU.
	m.Placement[1] = m.Placement[2]
	if _, err := Extract(m); err == nil {
		t.Error("corrupt mapping extracted")
	}
}
