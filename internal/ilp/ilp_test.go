package ilp

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func smallModel() (*Model, Var, Var, Var) {
	m := NewModel("small")
	x := m.Binary("x")
	y := m.Binary("y")
	z := m.Binary("z")
	m.AddEQ("pick-one", Sum(x, y, z), 1)
	m.AddLE("cap", []Term{{x, 2}, {y, 1}}, 2)
	m.Objective = []Term{{x, 3}, {y, 1}, {z, 2}}
	return m, x, y, z
}

func TestModelBasics(t *testing.T) {
	m, x, _, _ := smallModel()
	if m.NumVars() != 3 {
		t.Fatalf("NumVars = %d", m.NumVars())
	}
	if m.VarName(x) != "x" {
		t.Errorf("VarName = %q", m.VarName(x))
	}
	if m.VarName(Var(99)) == "" {
		t.Error("out-of-range VarName should still return something")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	m := NewModel("bad")
	x := m.Binary("x")
	m.AddLE("oops", []Term{{Var(7), 1}}, 1)
	if err := m.Validate(); err == nil {
		t.Error("undeclared variable accepted")
	}
	m2 := NewModel("bad2")
	m2.Binary("x")
	m2.Objective = []Term{{x, 0}}
	if err := m2.Validate(); err == nil {
		t.Error("zero coefficient accepted")
	}
}

func TestCheckAndEval(t *testing.T) {
	m, _, _, _ := smallModel()
	feasible := Assignment{false, true, false} // y
	if err := m.Check(feasible); err != nil {
		t.Errorf("feasible assignment rejected: %v", err)
	}
	if got := feasible.Eval(m.Objective); got != 1 {
		t.Errorf("objective = %d, want 1", got)
	}
	for name, a := range map[string]Assignment{
		"none picked": {false, false, false},
		"two picked":  {true, true, false},
	} {
		if err := m.Check(a); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := m.Check(Assignment{true}); err == nil {
		t.Error("wrong-length assignment accepted")
	}
}

func TestRelAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Rel strings wrong")
	}
	for s, want := range map[Status]string{
		Unknown: "unknown", Infeasible: "infeasible", Feasible: "feasible", Optimal: "optimal",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestWriteLP(t *testing.T) {
	m, _, _, _ := smallModel()
	var sb strings.Builder
	if err := m.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Minimize", "Subject To", "Binary", "End", "x_v0", "= 1", "<= 2", "+ 3 x_v0"} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
	// Names with exotic characters must be sanitised but stay unique.
	m2 := NewModel("weird")
	a := m2.Binary("F[c0.pe/1,op:2]")
	b := m2.Binary("F[c0.pe/1;op:2]")
	m2.AddLE("c", Sum(a, b), 1)
	var sb2 strings.Builder
	if err := m2.WriteLP(&sb2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "_v0") || !strings.Contains(sb2.String(), "_v1") {
		t.Errorf("sanitised names lost uniqueness:\n%s", sb2.String())
	}
	// Empty objective still writes a syntactically plausible section.
	m3 := NewModel("feas")
	m3.Binary("x")
	var sb3 strings.Builder
	if err := m3.WriteLP(&sb3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb3.String(), "Minimize") {
		t.Error("empty-objective LP missing Minimize section")
	}
}

// TestEvalLinearity: Eval is linear in the term list.
func TestEvalLinearity(t *testing.T) {
	prop := func(bits []bool, coefs []int8) bool {
		n := len(bits)
		if n == 0 {
			return true
		}
		m := NewModel("p")
		for i := 0; i < n; i++ {
			m.Binary("v")
		}
		var t1, t2 []Term
		for i, c := range coefs {
			term := Term{Var: Var(i % n), Coef: int(c)}
			if i%2 == 0 {
				t1 = append(t1, term)
			} else {
				t2 = append(t2, term)
			}
		}
		a := Assignment(bits)
		return a.Eval(append(append([]Term{}, t1...), t2...)) == a.Eval(t1)+a.Eval(t2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	m, _, _, _ := smallModel()
	s := m.Stats()
	if s.Vars != 3 || s.Constraints != 2 {
		t.Errorf("stats %+v", s)
	}
	if s.ByName["pick-one"] != 1 || s.ByName["cap"] != 1 {
		t.Errorf("ByName %v", s.ByName)
	}
	if s.LongestConstraint != 3 || s.Terms != 5 {
		t.Errorf("terms %d longest %d", s.Terms, s.LongestConstraint)
	}
}

func TestStatusMarshalRoundTrip(t *testing.T) {
	for _, s := range []Status{Unknown, Infeasible, Feasible, Optimal} {
		text, err := s.MarshalText()
		if err != nil {
			t.Fatalf("%v: MarshalText: %v", s, err)
		}
		if string(text) != s.String() {
			t.Errorf("%v: text %q != String %q", s, text, s.String())
		}
		var back Status
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%v: UnmarshalText(%q): %v", s, text, err)
		}
		if back != s {
			t.Errorf("round trip %v -> %q -> %v", s, text, back)
		}
		// Through encoding/json: statuses embed as readable names.
		blob, err := json.Marshal(map[string]Status{"status": s})
		if err != nil {
			t.Fatalf("%v: json: %v", s, err)
		}
		want := `{"status":"` + s.String() + `"}`
		if string(blob) != want {
			t.Errorf("json %s, want %s", blob, want)
		}
		var decoded map[string]Status
		if err := json.Unmarshal(blob, &decoded); err != nil {
			t.Fatalf("%v: json unmarshal: %v", s, err)
		}
		if decoded["status"] != s {
			t.Errorf("json round trip %v -> %s -> %v", s, blob, decoded["status"])
		}
	}
	if _, err := Status(42).MarshalText(); err == nil {
		t.Error("invalid status marshalled")
	}
	var s Status
	if err := s.UnmarshalText([]byte("zorp")); err == nil {
		t.Error("bad status name accepted")
	}
	if _, err := StatusFromString("status(7)"); err == nil {
		t.Error("formatted invalid status accepted")
	}
}

func TestStatusMark(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "1", Feasible: "1", Infeasible: "0", Unknown: "T", Status(9): "T",
	} {
		if got := s.Mark(); got != want {
			t.Errorf("%v.Mark() = %q, want %q", s, got, want)
		}
	}
}
