package ilp

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
)

var lpSafe = regexp.MustCompile(`[^A-Za-z0-9_.]`)

// lpName sanitises a variable name for the LP file format, appending the
// variable index to keep names unique after sanitisation.
func (m *Model) lpName(v Var) string {
	return fmt.Sprintf("%s_v%d", lpSafe.ReplaceAllString(m.VarName(v), "_"), int(v))
}

// WriteLP serialises the model in the CPLEX LP file format, so that
// formulations can be inspected or handed to an external solver (the
// paper used Gurobi, which reads this format).
func (m *Model) WriteLP(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "\\ Model: %s (%d binaries, %d constraints)\n", m.Name, m.NumVars(), len(m.Constraints))
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	if len(m.Objective) == 0 {
		fmt.Fprint(bw, " 0")
		if m.NumVars() > 0 {
			// LP format needs at least one variable reference.
			fmt.Fprintf(bw, " %s", m.lpName(0))
			fmt.Fprintf(bw, " - %s", m.lpName(0))
		}
	} else {
		writeTerms(bw, m, m.Objective)
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "Subject To")
	for i, c := range m.Constraints {
		fmt.Fprintf(bw, " c%d:", i)
		writeTerms(bw, m, c.Terms)
		if len(c.Terms) == 0 {
			fmt.Fprint(bw, " 0")
		}
		fmt.Fprintf(bw, " %s %d\n", c.Rel, c.RHS)
	}
	fmt.Fprintln(bw, "Binary")
	for v := 0; v < m.NumVars(); v++ {
		fmt.Fprintf(bw, " %s\n", m.lpName(Var(v)))
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

func writeTerms(w io.Writer, m *Model, terms []Term) {
	for _, t := range terms {
		switch {
		case t.Coef == 1:
			fmt.Fprintf(w, " + %s", m.lpName(t.Var))
		case t.Coef == -1:
			fmt.Fprintf(w, " - %s", m.lpName(t.Var))
		case t.Coef < 0:
			fmt.Fprintf(w, " - %d %s", -t.Coef, m.lpName(t.Var))
		default:
			fmt.Fprintf(w, " + %d %s", t.Coef, m.lpName(t.Var))
		}
	}
}
