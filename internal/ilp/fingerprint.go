package ilp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
)

// Fingerprint returns a canonical content hash of the complete model:
// the name, every variable (diagnostic name, branch priority, phase
// hint) in index order, every constraint in emission order, and the
// objective. Two models fingerprint equal exactly when they are
// byte-identical to a solver — same variable numbering, same constraint
// order, same hints — which is the property the artifact-cache
// equivalence gate checks: a formulation stamped from a cached template
// must hash identically to one built from scratch.
func (m *Model) Fingerprint() string {
	h := sha256.New()
	io.WriteString(h, "cgramap/ilp/v1\n")
	io.WriteString(h, m.Name)
	h.Write([]byte{0})
	hashInt(h, m.NumVars())
	for v := 0; v < m.NumVars(); v++ {
		io.WriteString(h, m.VarName(Var(v)))
		h.Write([]byte{0})
		hashInt(h, m.BranchPriority(Var(v)))
		if m.PhaseHint(Var(v)) {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	hashInt(h, len(m.Constraints))
	for _, c := range m.Constraints {
		io.WriteString(h, c.Name)
		h.Write([]byte{0})
		hashInt(h, int(c.Rel))
		hashInt(h, c.RHS)
		hashInt(h, len(c.Terms))
		for _, t := range c.Terms {
			hashInt(h, int(t.Var))
			hashInt(h, t.Coef)
		}
	}
	hashInt(h, len(m.Objective))
	for _, t := range m.Objective {
		hashInt(h, int(t.Var))
		hashInt(h, t.Coef)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashInt feeds one integer into the hash in a fixed-width encoding, so
// adjacent fields cannot alias.
func hashInt(h hash.Hash, v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	h.Write(buf[:])
}
