// Package ilp provides a solver-independent modelling layer for 0-1
// integer linear programs: binary variables, linear constraints, a linear
// objective, feasibility checking, and an LP-format writer.
//
// The paper formulates CGRA mapping as an ILP over three families of
// binary variables and solves it with Gurobi; this package is the
// modelling seam that lets the formulation (internal/mapper) be solved by
// the repository's own engines (internal/solve/...) or exported in LP
// format for an external solver.
package ilp

import (
	"context"
	"fmt"
	"strconv"
)

// Var identifies a binary decision variable within a Model.
type Var int

// Term is one coefficient*variable product of a linear expression.
type Term struct {
	Var  Var
	Coef int
}

// Rel is a linear constraint relation.
type Rel int

const (
	// LE is "less than or equal".
	LE Rel = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// String returns the mathematical symbol of the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("rel(%d)", int(r))
	}
}

// Constraint is a linear constraint sum(Terms) Rel RHS.
type Constraint struct {
	// Name labels the constraint for diagnostics (e.g. the paper
	// constraint family it came from).
	Name  string
	Terms []Term
	Rel   Rel
	RHS   int
}

// varName is a variable's diagnostic name in unformatted form. Mapping
// models create hundreds of thousands of variables whose names are all
// "prefix[a,b]" or "prefix[a,b,k]" over already-interned strings; storing
// the parts and formatting on demand keeps name construction off the
// model-build hot path entirely. A plain name uses only the prefix field.
type varName struct {
	prefix string
	a, b   string
	k      int32 // third component; < 0 when absent
}

func (n *varName) format() string {
	if n.a == "" && n.b == "" {
		return n.prefix
	}
	if n.k < 0 {
		return n.prefix + "[" + n.a + "," + n.b + "]"
	}
	return n.prefix + "[" + n.a + "," + n.b + "," + strconv.Itoa(int(n.k)) + "]"
}

// Model is a 0-1 integer linear program. All variables are binary.
type Model struct {
	// Name labels the model.
	Name string
	// Objective is minimised; an empty objective makes the model a
	// pure feasibility problem.
	Objective []Term

	names []varName
	// priorities and phases are dense per-variable hint tables (index =
	// Var), grown on first write; nil when no hint was ever set.
	priorities  []int32
	phases      []bool
	Constraints []Constraint

	// termArena backs constraint term lists: Add copies incoming terms
	// into the current chunk so small constraints share allocations and
	// callers can reuse their scratch buffers.
	termArena []Term
}

// NewModel returns an empty model.
func NewModel(name string) *Model {
	return &Model{Name: name}
}

// Reserve pre-sizes the model's backing storage for the given variable,
// constraint and term counts. It never changes model content — only
// where appends land — so callers that know a model's shape in advance
// (e.g. a formulation template re-stamping a sibling II) skip the
// incremental growth copies. Counts at or below current capacity are
// no-ops.
func (m *Model) Reserve(nvars, ncons, nterms int) {
	if nvars > cap(m.names) {
		grown := make([]varName, len(m.names), nvars)
		copy(grown, m.names)
		m.names = grown
	}
	if ncons > cap(m.Constraints) {
		grown := make([]Constraint, len(m.Constraints), ncons)
		copy(grown, m.Constraints)
		m.Constraints = grown
	}
	if len(m.termArena) == 0 && nterms > cap(m.termArena) {
		// Only a fresh arena may be replaced: constraints already hold
		// sub-slices of a used one.
		m.termArena = make([]Term, 0, nterms)
	}
}

// Binary adds a binary variable with the given diagnostic name.
func (m *Model) Binary(name string) Var {
	m.names = append(m.names, varName{prefix: name, k: -1})
	return Var(len(m.names) - 1)
}

// BinaryComposite adds a binary variable named "prefix[a,b]", or
// "prefix[a,b,k]" when k >= 0, without formatting the name now. This is
// the allocation-free naming path for bulk variable creation.
func (m *Model) BinaryComposite(prefix, a, b string, k int) Var {
	if k < 0 {
		k = -1
	}
	m.names = append(m.names, varName{prefix: prefix, a: a, b: b, k: int32(k)})
	return Var(len(m.names) - 1)
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// VarKey is a variable's structural identity: the unformatted parts of
// its diagnostic name, comparable and hashable. Successive models of one
// instance family (the II ladder, an architecture sweep) name the same
// decision identically — "F[op,fu@ctx]" denotes the same
// placement at every II — so incremental solvers use VarKey to unify
// variables across models and carry learnt state between solves.
type VarKey struct {
	Prefix, A, B string
	K            int32
}

// VarKey returns the structural key of v. Keys are only unique when the
// model's variable names are; the mapping formulation guarantees this.
func (m *Model) VarKey(v Var) VarKey {
	if int(v) < 0 || int(v) >= len(m.names) {
		return VarKey{Prefix: fmt.Sprintf("x%d", int(v)), K: -1}
	}
	n := m.names[v]
	return VarKey{Prefix: n.prefix, A: n.a, B: n.b, K: n.k}
}

// VarName returns the diagnostic name of v.
func (m *Model) VarName(v Var) string {
	if int(v) < 0 || int(v) >= len(m.names) {
		return fmt.Sprintf("x%d", int(v))
	}
	return m.names[v].format()
}

// SetBranchPriority advises solvers to branch on higher-priority
// variables first (the analogue of Gurobi's BranchPriority attribute).
// The default priority is 0.
func (m *Model) SetBranchPriority(v Var, pri int) {
	if m.priorities == nil {
		m.priorities = make([]int32, len(m.names))
	}
	for int(v) >= len(m.priorities) {
		m.priorities = append(m.priorities, 0)
	}
	m.priorities[v] = int32(pri)
}

// BranchPriority returns the branch priority of v.
func (m *Model) BranchPriority(v Var) int {
	if int(v) < 0 || int(v) >= len(m.priorities) {
		return 0
	}
	return int(m.priorities[v])
}

// SetPhaseHint advises solvers to try the given value first when
// branching on v (the analogue of a solution hint). The default is false.
func (m *Model) SetPhaseHint(v Var, val bool) {
	if m.phases == nil {
		m.phases = make([]bool, len(m.names))
	}
	for int(v) >= len(m.phases) {
		m.phases = append(m.phases, false)
	}
	m.phases[v] = val
}

// PhaseHint returns the phase hint of v.
func (m *Model) PhaseHint(v Var) bool {
	if int(v) < 0 || int(v) >= len(m.phases) {
		return false
	}
	return m.phases[v]
}

// termArenaChunk is the growth unit of the term arena.
const termArenaChunk = 8192

// copyTerms copies terms into the arena and returns the stable,
// capacity-clipped sub-slice.
func (m *Model) copyTerms(terms []Term) []Term {
	if len(terms) == 0 {
		return nil
	}
	if cap(m.termArena)-len(m.termArena) < len(terms) {
		size := termArenaChunk
		if size < len(terms) {
			size = len(terms)
		}
		m.termArena = make([]Term, 0, size)
	}
	start := len(m.termArena)
	m.termArena = append(m.termArena, terms...)
	return m.termArena[start:len(m.termArena):len(m.termArena)]
}

// Add appends the constraint sum(terms) rel rhs. The terms are copied,
// so the caller may reuse its buffer for the next constraint.
func (m *Model) Add(name string, terms []Term, rel Rel, rhs int) {
	m.Constraints = append(m.Constraints, Constraint{Name: name, Terms: m.copyTerms(terms), Rel: rel, RHS: rhs})
}

// AddLE appends sum(terms) <= rhs.
func (m *Model) AddLE(name string, terms []Term, rhs int) { m.Add(name, terms, LE, rhs) }

// AddGE appends sum(terms) >= rhs.
func (m *Model) AddGE(name string, terms []Term, rhs int) { m.Add(name, terms, GE, rhs) }

// AddEQ appends sum(terms) = rhs.
func (m *Model) AddEQ(name string, terms []Term, rhs int) { m.Add(name, terms, EQ, rhs) }

// Sum builds a unit-coefficient term list over vars.
func Sum(vars ...Var) []Term {
	ts := make([]Term, len(vars))
	for i, v := range vars {
		ts[i] = Term{Var: v, Coef: 1}
	}
	return ts
}

// Validate checks that every term references a declared variable and has
// a non-zero coefficient. The happy path allocates nothing: mapping
// models carry hundreds of thousands of terms, so the per-constraint
// context strings are only built once a violation is found.
func (m *Model) Validate() error {
	check := func(terms []Term) (Var, bool) {
		for _, t := range terms {
			if int(t.Var) < 0 || int(t.Var) >= len(m.names) || t.Coef == 0 {
				return t.Var, false
			}
		}
		return 0, true
	}
	describe := func(where string, v Var) error {
		if int(v) < 0 || int(v) >= len(m.names) {
			return fmt.Errorf("ilp %s: %s references undeclared variable %d", m.Name, where, int(v))
		}
		return fmt.Errorf("ilp %s: %s has zero coefficient on %s", m.Name, where, m.VarName(v))
	}
	for i, c := range m.Constraints {
		if v, ok := check(c.Terms); !ok {
			return describe(fmt.Sprintf("constraint %d (%s)", i, c.Name), v)
		}
	}
	if v, ok := check(m.Objective); !ok {
		return describe("objective", v)
	}
	return nil
}

// Stats summarises a model: variable count and constraints grouped by
// their diagnostic name (for mapping models, the paper's constraint
// families).
type Stats struct {
	Vars              int
	Constraints       int
	ByName            map[string]int
	Terms             int
	LongestConstraint int
}

// Stats computes model statistics.
func (m *Model) Stats() Stats {
	s := Stats{Vars: m.NumVars(), Constraints: len(m.Constraints), ByName: make(map[string]int)}
	for i := range m.Constraints {
		c := &m.Constraints[i]
		s.ByName[c.Name]++
		s.Terms += len(c.Terms)
		if len(c.Terms) > s.LongestConstraint {
			s.LongestConstraint = len(c.Terms)
		}
	}
	return s
}

// Assignment is a candidate solution: one boolean per variable.
type Assignment []bool

// Eval computes the value of a linear expression under the assignment.
func (a Assignment) Eval(terms []Term) int {
	sum := 0
	for _, t := range terms {
		if a[t.Var] {
			sum += t.Coef
		}
	}
	return sum
}

// Check reports the first violated constraint, or nil if the assignment
// is feasible.
func (m *Model) Check(a Assignment) error {
	if len(a) != len(m.names) {
		return fmt.Errorf("ilp %s: assignment has %d values, want %d", m.Name, len(a), len(m.names))
	}
	for i, c := range m.Constraints {
		lhs := a.Eval(c.Terms)
		ok := false
		switch c.Rel {
		case LE:
			ok = lhs <= c.RHS
		case GE:
			ok = lhs >= c.RHS
		case EQ:
			ok = lhs == c.RHS
		}
		if !ok {
			return fmt.Errorf("ilp %s: constraint %d (%s) violated: %d %s %d", m.Name, i, c.Name, lhs, c.Rel, c.RHS)
		}
	}
	return nil
}

// Status is the outcome of a solve.
type Status int

const (
	// Unknown means the solver could not decide within its budget
	// (e.g. timeout with no incumbent) — the paper's "T" entries.
	Unknown Status = iota
	// Infeasible means the model provably has no feasible assignment.
	Infeasible
	// Feasible means a feasible assignment was found but optimality
	// was not proven (e.g. timeout during objective tightening).
	Feasible
	// Optimal means the returned assignment is provably optimal (any
	// feasible assignment when the objective is empty).
	Optimal
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Unknown:
		return "unknown"
	case Infeasible:
		return "infeasible"
	case Feasible:
		return "feasible"
	case Optimal:
		return "optimal"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Mark renders the status the way the paper's Table 2 does: "1" when a
// mapping exists (Feasible/Optimal), "0" when mapping is provably
// impossible, "T" when the solver could not decide within its budget.
func (s Status) Mark() string {
	switch s {
	case Optimal, Feasible:
		return "1"
	case Infeasible:
		return "0"
	default:
		return "T"
	}
}

// StatusFromString resolves a name produced by Status.String.
func StatusFromString(name string) (Status, error) {
	switch name {
	case "unknown":
		return Unknown, nil
	case "infeasible":
		return Infeasible, nil
	case "feasible":
		return Feasible, nil
	case "optimal":
		return Optimal, nil
	default:
		return Unknown, fmt.Errorf("ilp: unknown solve status %q", name)
	}
}

// MarshalText encodes the status as its String form, so statuses embed in
// JSON (and any other textual encoding) as readable names instead of bare
// integers.
func (s Status) MarshalText() ([]byte, error) {
	if s < Unknown || s > Optimal {
		return nil, fmt.Errorf("ilp: cannot marshal invalid status %d", int(s))
	}
	return []byte(s.String()), nil
}

// UnmarshalText decodes a status name produced by MarshalText.
func (s *Status) UnmarshalText(text []byte) error {
	v, err := StatusFromString(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Solution is a solver result. Assignment and Objective are meaningful
// only for Feasible and Optimal statuses.
type Solution struct {
	Status     Status
	Assignment Assignment
	Objective  int
	// Stats carries engine-specific counters for diagnostics.
	Stats map[string]int64
}

// Solver is implemented by the repository's ILP engines.
type Solver interface {
	// Solve decides m, respecting ctx cancellation/deadline. A
	// cancelled solve returns the best known solution with status
	// Feasible or Unknown rather than an error.
	Solve(ctx context.Context, m *Model) (*Solution, error)
}
