package service

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"time"
)

// ErrCircuitOpen is returned (inside *Error, match with errors.Is) when
// the client's circuit breaker is open: recent calls all failed at the
// transport level, so the daemon is presumed sick and calls fail fast
// instead of piling more load onto it.
var ErrCircuitOpen = errors.New("service client: circuit breaker open")

// transportError wraps a failure that never produced an HTTP response —
// dial/reset errors, or a response body that died mid-read (truncation).
// These are the retryable-by-transport class, and the only class the
// circuit breaker counts: a 5xx proves the server is at least up.
type transportError struct{ err error }

func (e *transportError) Error() string { return "service client: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// breaker is a consecutive-failure circuit breaker. threshold transport
// failures in a row open it for cooldown; the first call after the
// cooldown is the half-open trial — its failure re-opens the breaker,
// its success closes it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	fails     int
	openUntil time.Time
}

// allow reports whether a call may proceed now; when it may not, it
// returns how long until the next half-open trial.
func (b *breaker) allow(now time.Time) (time.Duration, bool) {
	if now.Before(b.openUntil) {
		return b.openUntil.Sub(now), false
	}
	return 0, true
}

func (b *breaker) failure(now time.Time) {
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}

func (b *breaker) success() {
	b.fails = 0
	b.openUntil = time.Time{}
}

// classifyRetry decides whether an API call failure is worth retrying,
// and surfaces any server-provided Retry-After delay.
func classifyRetry(err error) (retryable bool, retryAfter time.Duration) {
	var te *transportError
	if errors.As(err, &te) {
		return true, 0
	}
	var se *Error
	if errors.As(err, &se) {
		switch se.Code {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true, time.Duration(se.RetryAfter) * time.Second
		}
	}
	return false, 0
}

// backoffDelay computes the attempt-th retry delay: exponential from
// base, capped at max, with full [50%,100%] jitter so synchronized
// clients decorrelate.
func backoffDelay(rng *rand.Rand, base, max time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
