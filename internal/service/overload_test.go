package service

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cgramap/internal/ilp"
)

// TestAdmissionShedsUnservableDeadlines: once the server has solve-time
// evidence, a submission whose deadline is smaller than the estimated
// queue wait is shed with 429 + Retry-After instead of accepted and
// failed later.
func TestAdmissionShedsUnservableDeadlines(t *testing.T) {
	block := make(chan struct{})
	var blocking atomic.Bool
	s := New(Options{
		Workers:    1,
		QueueDepth: 4,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			if blocking.Load() {
				<-block
			} else {
				time.Sleep(50 * time.Millisecond)
			}
			return fakeResult(spec.Fingerprint[:8]), nil
		},
	})
	defer func() { close(block); s.Shutdown(context.Background()) }()

	// Warm the admission estimator with two real ~50ms solves.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 1; i <= 2; i++ {
		st, err := s.Submit(gridReq(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}

	// Pin the worker and park one job in the queue, so a new submission
	// faces an estimated wait of roughly two average solves.
	blocking.Store(true)
	if _, err := s.Submit(gridReq(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(gridReq(4)); err != nil {
		t.Fatal(err)
	}

	req := gridReq(5)
	req.DeadlineMS = 1
	_, err := s.Submit(req)
	var se *Error
	if !errors.As(err, &se) || se.Code != 429 {
		t.Fatalf("unservable-deadline submission: got %v, want 429", err)
	}
	if !errors.Is(err, ErrDeadlineUnservable) {
		t.Errorf("shed error does not wrap ErrDeadlineUnservable: %v", err)
	}
	if se.RetryAfter < 1 {
		t.Errorf("shed without Retry-After: %+v", se)
	}
	if got := s.Metrics.JobsShed.Load(); got != 1 {
		t.Errorf("JobsShed = %d, want 1", got)
	}

	// The same job with a generous deadline is admitted.
	req.DeadlineMS = 60_000
	if _, err := s.Submit(req); err != nil {
		t.Fatalf("generous-deadline submission rejected: %v", err)
	}
}

// TestDegradedLaneAnswersUnderSaturation: with degradation enabled, a
// queue-full submission is answered by the heuristic fast lane, marked
// degraded, labelled, and never cached; auto-II jobs are still shed.
func TestDegradedLaneAnswersUnderSaturation(t *testing.T) {
	block := make(chan struct{})
	running := make(chan struct{}, 4)
	var degradedCalls atomic.Int64
	s := New(Options{
		Workers:           1,
		QueueDepth:        1,
		DegradeOnOverload: true,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			running <- struct{}{}
			<-block
			return fakeResult("exact"), nil
		},
		SolveDegraded: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			degradedCalls.Add(1)
			return &JobResult{Status: ilp.Feasible, Feasible: true, Engine: EngineAnneal}, nil
		},
	})
	defer func() { close(block); s.Shutdown(context.Background()) }()

	// Saturate: one running (wait until the worker has actually picked
	// it up, or job 2 could land in the degraded lane), one queued.
	if _, err := s.Submit(gridReq(1)); err != nil {
		t.Fatal(err)
	}
	<-running
	if _, err := s.Submit(gridReq(2)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		st, err := s.Submit(gridReq(3))
		if err != nil {
			t.Fatalf("saturated submission %d not degraded: %v", i, err)
		}
		if !st.Degraded {
			t.Fatalf("saturated submission %d status not marked degraded: %+v", i, st)
		}
		final, err := s.Wait(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != JobDone {
			t.Fatalf("degraded job ended %s (%s)", final.State, final.Error)
		}
		res, err := s.Result(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded || !strings.Contains(res.Reason, "degraded") {
			t.Errorf("degraded result unlabelled: %+v", res)
		}
	}
	// Two identical degraded submissions must both have run the fast
	// lane: degraded answers are never cached or deduplicated.
	if got := degradedCalls.Load(); got != 2 {
		t.Errorf("degraded lane ran %d times for 2 identical submissions, want 2 (no cache/dedup)", got)
	}
	if got := s.Metrics.JobsDegraded.Load(); got != 2 {
		t.Errorf("JobsDegraded = %d, want 2", got)
	}

	// Auto-II needs an exact proof chain, so it is shed, not degraded.
	auto := gridReq(4)
	auto.AutoII = 2
	_, err := s.Submit(auto)
	var se *Error
	if !errors.As(err, &se) || se.Code != 429 {
		t.Fatalf("saturated auto-II submission: got %v, want 429", err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("auto-II shed does not wrap ErrQueueFull: %v", err)
	}
}

// TestDeadlineExceededWhileQueued: the job deadline is absolute from
// submission — a job that expires in the queue fails with a
// deadline-exceeded error without burning a solve slot.
func TestDeadlineExceededWhileQueued(t *testing.T) {
	release := make(chan struct{})
	var solves atomic.Int64
	s := New(Options{
		Workers:    1,
		QueueDepth: 4,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			solves.Add(1)
			<-release
			return fakeResult("blocker"), nil
		},
	})
	defer s.Shutdown(context.Background())

	if _, err := s.Submit(gridReq(1)); err != nil {
		t.Fatal(err)
	}
	victim := gridReq(2)
	victim.DeadlineMS = 30
	st, err := s.Submit(victim) // admitted: the estimator has no evidence yet
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let the victim's deadline lapse in the queue
	close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobFailed || !strings.Contains(final.Error, "deadline exceeded") {
		t.Fatalf("expired-in-queue job ended %s (%q), want failed with deadline error", final.State, final.Error)
	}
	if got := solves.Load(); got != 1 {
		t.Errorf("%d solves ran, want 1 (the expired job must not reach the solver)", got)
	}
	if got := s.Metrics.DeadlineExceeded.Load(); got < 1 {
		t.Errorf("DeadlineExceeded = %d, want >= 1", got)
	}
}

// TestJobTimeoutCapsSolve: the server-side -job-timeout cap cancels a
// solve regardless of how generous the client's deadline was.
func TestJobTimeoutCapsSolve(t *testing.T) {
	s := New(Options{
		Workers:    1,
		JobTimeout: 30 * time.Millisecond,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	defer s.Shutdown(context.Background())

	req := gridReq(1)
	req.DeadlineMS = 60_000
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	final, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobFailed {
		t.Fatalf("capped job ended %s, want failed", final.State)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("job-timeout cap took %v to fire, want ~30ms", elapsed)
	}
	if got := s.Metrics.DeadlineExceeded.Load(); got != 1 {
		t.Errorf("DeadlineExceeded = %d, want 1", got)
	}
}

// TestSustainedOverload is the synthetic acceptance scenario: sustained
// submissions at well over worker capacity. Every submission must be
// accepted (and reach a terminal state), degraded, or shed with 429 +
// Retry-After; the queue stays bounded by construction, the overload
// counters are visible in /metrics, and no goroutines or memory leak.
func TestSustainedOverload(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	s := New(Options{
		Workers:           2,
		QueueDepth:        8,
		DegradeOnOverload: true,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			time.Sleep(2 * time.Millisecond)
			return fakeResult("ok"), nil
		},
		SolveDegraded: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			return fakeResult("fast"), nil
		},
	})

	const clients = 4 // 2x the worker pool
	const perClient = 100
	var next atomic.Int64
	var accepted, shed atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := gridReq(int(next.Add(1))) // all distinct instances
				req.DeadlineMS = 5000
				st, err := s.Submit(req)
				if err != nil {
					var se *Error
					if !errors.As(err, &se) || se.Code != 429 {
						t.Errorf("overload submission: got %v, want accept or 429", err)
						return
					}
					if se.RetryAfter < 1 {
						t.Errorf("429 without Retry-After: %+v", se)
						return
					}
					shed.Add(1)
					continue
				}
				accepted.Add(1)
				final, err := s.Wait(ctx, st.ID)
				if err != nil {
					t.Errorf("waiting accepted job: %v", err)
					return
				}
				if !final.State.Terminal() {
					t.Errorf("accepted job ended non-terminal: %+v", final)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := accepted.Load() + shed.Load(); got != clients*perClient {
		t.Fatalf("accounted for %d submissions, want %d", got, clients*perClient)
	}
	if accepted.Load() == 0 {
		t.Error("overload run accepted nothing")
	}

	m := metricsText(t, s)
	for _, name := range []string{
		"cgramapd_jobs_shed_total",
		"cgramapd_jobs_degraded_total",
		"cgramapd_deadline_exceeded_total",
		"cgramapd_retry_after_responses_total",
		"cgramapd_degraded_queue_depth",
	} {
		if !strings.Contains(m, name) {
			t.Errorf("overload counter %s missing from /metrics", name)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	waitGoroutines(t, baseline)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc && after.HeapAlloc-before.HeapAlloc > 64<<20 {
		t.Errorf("heap grew by %d bytes across the overload run, want bounded", after.HeapAlloc-before.HeapAlloc)
	}
}

// waitGoroutines waits for the goroutine count to settle back to the
// baseline (plus scheduler slack), failing the test if it never does.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
