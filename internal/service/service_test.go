package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// gridReq builds a small distinguishable job: benchmark 2x2-f on an
// n-context 2x2 grid, with variant folded into the deadline-independent
// part via contexts.
func gridReq(contexts int) *JobRequest {
	return &JobRequest{
		Benchmark: "2x2-f",
		Grid:      &arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true},
		Contexts:  contexts,
	}
}

// fakeResult returns a distinguishable definitive result.
func fakeResult(tag string) *JobResult {
	return &JobResult{Status: ilp.Feasible, Feasible: true, Reason: tag, Engine: EngineCDCL}
}

// TestSingleFlightAndCache is the headline e2e test: N concurrent
// clients submit a mix of duplicate and distinct jobs, and each distinct
// instance is solved exactly once — later duplicates are answered by the
// in-flight dedup or the cache, never by a second solve. Verified both
// through the solve counter and through the exported metrics.
func TestSingleFlightAndCache(t *testing.T) {
	var solves sync.Map // fingerprint -> *int64
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := New(Options{
		Workers:    4,
		QueueDepth: 64,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			n, _ := solves.LoadOrStore(spec.Fingerprint, new(int64))
			atomic.AddInt64(n.(*int64), 1)
			once.Do(func() { close(started) })
			<-release // hold every solve until all submissions are in
			return fakeResult(spec.Fingerprint[:8]), nil
		},
	})

	const clients = 12
	const distinct = 3 // contexts 1..3
	var wg sync.WaitGroup
	ids := make([]string, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(gridReq(1 + i%distinct))
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	<-started
	close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range ids {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobDone {
			t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
		}
	}

	total := int64(0)
	solves.Range(func(_, v any) bool {
		n := atomic.LoadInt64(v.(*int64))
		if n != 1 {
			t.Errorf("a distinct instance was solved %d times, want exactly 1", n)
		}
		total += n
		return true
	})
	if total != distinct {
		t.Errorf("%d instances solved, want %d", total, distinct)
	}

	// Cached now: a fresh duplicate submission must not solve again.
	st, err := s.Submit(gridReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit || st.State != JobDone {
		t.Errorf("post-completion duplicate: cache_hit=%v state=%s, want hit+done", st.CacheHit, st.State)
	}

	m := metricsText(t, s)
	wantMetric(t, m, "cgramapd_jobs_submitted_total", clients+1)
	wantMetric(t, m, "cgramapd_cache_misses_total", distinct)
	wantMetric(t, m, "cgramapd_cache_hits_total", 1)
	wantMetric(t, m, "cgramapd_singleflight_dedup_total", clients-distinct)
	wantMetric(t, m, `cgramapd_jobs_completed_total{state="done"}`, clients+1)
	wantMetric(t, m, "cgramapd_cache_entries", distinct)

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCancelPropagatesToSolverContext: DELETE on the last interested job
// cancels the solver's context; a duplicate submission keeps the solve
// alive until it too is cancelled.
func TestCancelPropagatesToSolverContext(t *testing.T) {
	running := make(chan struct{})
	observed := make(chan error, 1)
	s := New(Options{
		Workers: 1,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			close(running)
			<-ctx.Done()
			observed <- ctx.Err()
			return nil, ctx.Err()
		},
	})
	defer s.Shutdown(context.Background())

	first, err := s.Submit(gridReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-running
	second, err := s.Submit(gridReq(1)) // dedups onto the same solve
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduped {
		t.Fatalf("duplicate of a running job not deduped: %+v", second)
	}

	if _, err := s.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-observed:
		t.Fatalf("solve cancelled while a live duplicate still wants it: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	if _, err := s.Cancel(second.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-observed:
		if err != context.Canceled {
			t.Fatalf("solver ctx ended with %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelling the last job did not cancel the solver context")
	}

	for _, id := range []string{first.ID, second.ID} {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobCancelled {
			t.Errorf("job %s state %s, want cancelled", id, st.State)
		}
	}
}

// TestClientSolveCancelled: ctx expiring while the client polls must
// surface the ctx error (not panic on the nil Wait status) and
// best-effort cancel the remote job so the server stops solving.
func TestClientSolveCancelled(t *testing.T) {
	running := make(chan struct{})
	observed := make(chan error, 1)
	s := New(Options{
		Workers: 1,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			close(running)
			<-ctx.Done()
			observed <- ctx.Err()
			return nil, ctx.Err()
		},
	})
	defer s.Shutdown(context.Background())
	// Signal the first status poll, which proves the client is past
	// Submit and inside Wait — the window the bug lived in.
	polled := make(chan struct{})
	var pollOnce sync.Once
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			pollOnce.Do(func() { close(polled) })
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.PollInterval = 5 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Solve(ctx, gridReq(1))
		errCh <- err
	}()
	<-running
	<-polled
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Solve returned nil error after ctx cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Solve did not return after ctx cancellation")
	}
	select {
	case err := <-observed:
		if err != context.Canceled {
			t.Errorf("solver ctx ended with %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client cancellation never propagated to the solver context")
	}
}

// TestCancelledExecKeepsSuccessorInflight: a fully-cancelled exec whose
// fingerprint has since been resubmitted must not evict the successor's
// inflight entry when it (a) is skipped while queued or (b) finishes a
// running solve — otherwise later duplicates stop deduplicating.
func TestCancelledExecKeepsSuccessorInflight(t *testing.T) {
	calls := make(chan struct{}, 16)
	proceed := make(chan struct{})
	s := New(Options{
		Workers:    1,
		QueueDepth: 8,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			calls <- struct{}{}
			<-ctx.Done()
			<-proceed
			return nil, ctx.Err()
		},
	})
	defer s.Shutdown(context.Background())

	// Running variant: cancel the sole submission of a running solve, so
	// Cancel removes its inflight entry while the worker is still inside
	// Solve, then resubmit the same fingerprint.
	first, err := s.Submit(gridReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-calls // worker inside Solve for first
	if _, err := s.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(gridReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if second.Deduped {
		t.Fatalf("resubmission after full cancellation deduped onto a dead exec: %+v", second)
	}

	// Queued variant: park another fingerprint behind the busy worker,
	// cancel it, and resubmit; its first exec is skipped by the worker
	// with no attached jobs.
	queued, err := s.Submit(gridReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	requeued, err := s.Submit(gridReq(2))
	if err != nil {
		t.Fatal(err)
	}

	// Release the first (cancelled) solve: its exec completes with no
	// jobs, then the worker skips the cancelled queued exec, then starts
	// the two live resubmissions in turn.
	close(proceed)
	<-calls // worker inside Solve for second
	dup, err := s.Submit(gridReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Deduped {
		t.Error("duplicate of the running resubmission not deduped: the dead exec evicted its successor's inflight entry")
	}

	for _, id := range []string{second.ID, dup.ID} {
		if _, err := s.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	<-calls // worker inside Solve for requeued
	dup2, err := s.Submit(gridReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if !dup2.Deduped {
		t.Error("duplicate of the requeued solve not deduped: the skipped exec evicted its successor's inflight entry")
	}
	for _, id := range []string{requeued.ID, dup2.ID} {
		if _, err := s.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBackpressure: with workers busy and the queue full, submissions
// are rejected with a 429 error carrying Retry-After.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s := New(Options{
		Workers:    1,
		QueueDepth: 1,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			once.Do(func() { close(started) })
			<-release
			return fakeResult("bp"), nil
		},
	})
	defer func() { close(release); s.Shutdown(context.Background()) }()

	// Occupy the worker, then fill the queue: with the solve pinned, one
	// more job fits in the queue and every further submission must bounce.
	if _, err := s.Submit(gridReq(1)); err != nil {
		t.Fatal(err)
	}
	<-started
	accepted, rejected := 1, 0
	for i := 0; i < 5; i++ {
		_, err := s.Submit(gridReq(2 + i))
		switch e := err.(type) {
		case nil:
			accepted++
		case *Error:
			if e.Code != 429 {
				t.Fatalf("rejection code %d, want 429", e.Code)
			}
			if e.RetryAfter <= 0 {
				t.Error("429 without Retry-After")
			}
			rejected++
		default:
			t.Fatal(err)
		}
	}
	if accepted != 2 || rejected != 4 {
		t.Errorf("accepted %d rejected %d, want 2 and 4 (worker + queue slot)", accepted, rejected)
	}
	if got := s.Metrics.JobsRejected.Load(); got != int64(rejected) {
		t.Errorf("rejected metric %d, want %d", got, rejected)
	}
}

// TestShutdownDrains: SIGTERM-style shutdown finishes every accepted job
// and rejects new submissions, dropping nothing.
func TestShutdownDrains(t *testing.T) {
	var solved atomic.Int64
	s := New(Options{
		Workers:    2,
		QueueDepth: 16,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			time.Sleep(10 * time.Millisecond)
			solved.Add(1)
			return fakeResult("drain"), nil
		},
	})

	const jobs = 8
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		st, err := s.Submit(gridReq(1 + i)) // all distinct
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Submit(gridReq(99)); err == nil {
		t.Error("submission accepted after shutdown")
	} else if se, ok := err.(*Error); !ok || se.Code != 503 {
		t.Errorf("post-shutdown submit error %v, want 503", err)
	}
	if got := solved.Load(); got != jobs {
		t.Errorf("%d jobs solved through drain, want %d", got, jobs)
	}
	for _, id := range ids {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobDone {
			t.Errorf("job %s ended %s after drain, want done", id, st.State)
		}
	}
}

// TestHTTPEndToEnd exercises the real stack over HTTP: submit via the
// client, solve with the real CDCL mapper, fetch the result, reconstruct
// and re-verify the mapping locally, then hit the cache on resubmission.
func TestHTTPEndToEnd(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	req := &JobRequest{
		Benchmark: "2x2-f",
		Grid:      &arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Diagonal, Homogeneous: true},
		Contexts:  2,
	}
	res, err := c.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Mapping == nil {
		t.Fatalf("expected feasible mapping, got %+v", res)
	}

	// The client-side MapFunc path: same instance through the mapper seam,
	// reconstructing and re-verifying the portable mapping.
	g, a := mustInstance(t, req)
	mres, err := solveViaMapFunc(ctx, c, g, a)
	if err != nil {
		t.Fatal(err)
	}
	if !mres.Feasible() || mres.Mapping == nil {
		t.Fatalf("MapFunc path: expected verified feasible mapping, got %v", mres.Status)
	}
	if err := mres.Mapping.Verify(); err != nil {
		t.Fatalf("reconstructed mapping fails verification: %v", err)
	}

	// Second identical submission must be served from cache.
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Errorf("resubmission not a cache hit: %+v", st)
	}

	// Metrics endpoint over HTTP.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// Two hits: the MapFunc submission (same instance shipped as DFG
	// text + arch XML rather than benchmark + grid — the fingerprint
	// sees through the representation) and the explicit resubmission.
	if !strings.Contains(string(blob), "cgramapd_cache_hits_total 2") {
		t.Errorf("metrics missing cache hits:\n%s", blob)
	}

	// Unknown engine must 400 through the full stack.
	if _, err := c.Submit(ctx, &JobRequest{Benchmark: "2x2-f", Grid: req.Grid, Engine: "gurobi"}); err == nil {
		t.Error("unknown engine accepted")
	} else if se, ok := err.(*Error); !ok || se.Code != 400 {
		t.Errorf("unknown engine error %v, want 400", err)
	}

	// healthz flips to 503 once draining.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 503 {
		t.Fatalf("healthz while draining: got %d, want 503", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestFingerprintSemantics: the job fingerprint ignores the deadline and
// distinguishes engines, objectives and auto-II bounds.
func TestFingerprintSemantics(t *testing.T) {
	s := New(Options{Workers: 1, Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
		return fakeResult("fp"), nil
	}})
	defer s.Shutdown(context.Background())

	base := gridReq(2)
	fp := func(mutate func(*JobRequest)) string {
		r := *base
		if mutate != nil {
			mutate(&r)
		}
		spec, err := s.ParseRequest(&r)
		if err != nil {
			t.Fatal(err)
		}
		return spec.Fingerprint
	}

	ref := fp(nil)
	if fp(func(r *JobRequest) { r.DeadlineMS = 12345 }) != ref {
		t.Error("deadline leaked into the job fingerprint")
	}
	if fp(func(r *JobRequest) { r.Engine = EnginePortfolio }) == ref {
		t.Error("engine not part of the job fingerprint")
	}
	if fp(func(r *JobRequest) { r.Objective = "routing" }) == ref {
		t.Error("objective not part of the job fingerprint")
	}
	if fp(func(r *JobRequest) { r.AutoII = 4 }) == ref {
		t.Error("auto-II bound not part of the job fingerprint")
	}
	if fp(func(r *JobRequest) { r.Contexts = 3 }) == ref {
		t.Error("context count not part of the job fingerprint")
	}
	if fp(func(r *JobRequest) { r.Incremental = true }) != ref {
		t.Error("incremental flag leaked into the job fingerprint (it never changes the answer)")
	}
}

// TestIncrementalThreading: the request's incremental flag (or the
// server-wide default) must reach the solve dispatch through the spec.
func TestIncrementalThreading(t *testing.T) {
	for _, tc := range []struct {
		server, request, want bool
	}{
		{false, false, false},
		{false, true, true},
		{true, false, true},
	} {
		var got bool
		s := New(Options{Workers: 1, Incremental: tc.server,
			Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				got = spec.Incremental
				return fakeResult("inc"), nil
			}})
		req := gridReq(1)
		req.Incremental = tc.request
		st, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := s.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		cancel()
		if got != tc.want {
			t.Errorf("server=%v request=%v: spec.Incremental = %v, want %v",
				tc.server, tc.request, got, tc.want)
		}
		s.Shutdown(context.Background())
	}
}

// TestUnknownNotCached: an Unknown (budget-limited) answer must not be
// served to a later submission.
func TestUnknownNotCached(t *testing.T) {
	var calls atomic.Int64
	s := New(Options{Workers: 1, Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
		calls.Add(1)
		return &JobResult{Status: ilp.Unknown, Reason: "budget"}, nil
	}})
	defer s.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		st, err := s.Submit(gridReq(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		if st.CacheHit {
			t.Fatal("Unknown result served from cache")
		}
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("%d solves for two Unknown submissions, want 2 (no caching)", got)
	}
}

// mustInstance rebuilds the DFG and architecture a JobRequest names, the
// way a local orchestrator holding in-memory values would have them.
func mustInstance(t *testing.T, req *JobRequest) (*dfg.Graph, *arch.Arch) {
	t.Helper()
	g, err := bench.Get(req.Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	spec := *req.Grid
	if spec.Contexts == 0 {
		spec.Contexts = req.Contexts
	}
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

// solveViaMapFunc drives the client through the mapper.MapWith seam.
func solveViaMapFunc(ctx context.Context, c *Client, g *dfg.Graph, a *arch.Arch) (*mapper.Result, error) {
	mg, err := mrrg.Generate(a)
	if err != nil {
		return nil, err
	}
	return mapper.Dispatch(ctx, g, mg, mapper.Options{MapWith: c.MapFunc(EngineCDCL)})
}

func metricsText(t *testing.T, s *Server) string {
	t.Helper()
	var sb strings.Builder
	if err := s.Metrics.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func wantMetric(t *testing.T, text, name string, want int) {
	t.Helper()
	needle := fmt.Sprintf("%s %d\n", name, want)
	if !strings.Contains(text, needle) {
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
				t.Errorf("metric %s: got %q, want %d", name, line, want)
				return
			}
		}
		t.Errorf("metric %s absent, want %d", name, want)
	}
}
