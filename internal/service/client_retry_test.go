package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func okStatusHandler(calls *atomic.Int64, failFirst int, failWith func(w http.ResponseWriter)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(failFirst) {
			failWith(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"x","state":"done"}`)
	}
}

func fastClient(url string) *Client {
	c := NewClient(url)
	c.RetryBaseDelay = time.Millisecond
	c.RetryMaxDelay = 10 * time.Millisecond
	return c
}

func TestClientRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(okStatusHandler(&calls, 2, func(w http.ResponseWriter) {
		http.Error(w, `{"error":"upstream hiccup"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	st, err := c.Job(context.Background(), "x")
	if err != nil {
		t.Fatalf("Job after transient 503s: %v", err)
	}
	if st.State != JobDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
	if got := c.Retries.Load(); got != 2 {
		t.Errorf("client counted %d retries, want 2", got)
	}
}

func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(okStatusHandler(&calls, 99, func(w http.ResponseWriter) {
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	_, err := c.Job(context.Background(), "x")
	var se *Error
	if !errors.As(err, &se) || se.Code != 404 {
		t.Fatalf("got %v, want 404 *Error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls for a 404, want 1 (no retries)", got)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(okStatusHandler(&calls, 1, func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := fastClient(ts.URL) // backoff alone would be ~1ms
	start := time.Now()
	if _, err := c.Job(context.Background(), "x"); err != nil {
		t.Fatalf("Job after 429: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= ~1s (the server's Retry-After)", elapsed)
	}
}

func TestClientRetriesTruncatedBody(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Advertise more bytes than delivered, then kill the
			// connection: the client reads an unexpected EOF mid-body.
			w.Header().Set("Content-Length", "4096")
			w.Write([]byte(`{"id":"x"`))
			panic(http.ErrAbortHandler)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"x","state":"done"}`)
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	st, err := c.Job(context.Background(), "x")
	if err != nil {
		t.Fatalf("Job after truncated body: %v", err)
	}
	if st.State != JobDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

func TestClientCircuitBreaker(t *testing.T) {
	// A closed listener gives instant connection-refused transport errors.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	c := NewClient(deadURL)
	c.MaxRetries = -1 // isolate the breaker from the retry loop
	c.BreakerThreshold = 2
	c.BreakerCooldown = 250 * time.Millisecond

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, err := c.Job(ctx, "x")
		var te *transportError
		if !errors.As(err, &te) {
			t.Fatalf("call %d: got %v, want transport error", i, err)
		}
	}
	// Threshold reached: the breaker is open and calls fail fast.
	_, err = c.Job(ctx, "x")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-threshold call: got %v, want ErrCircuitOpen", err)
	}

	// After the cooldown one half-open trial goes through; its transport
	// failure re-opens the breaker immediately.
	time.Sleep(300 * time.Millisecond)
	_, err = c.Job(ctx, "x")
	var te *transportError
	if !errors.As(err, &te) {
		t.Fatalf("half-open trial: got %v, want transport error", err)
	}
	_, err = c.Job(ctx, "x")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-trial call: got %v, want ErrCircuitOpen (re-opened)", err)
	}
}

func TestClientBreakerIgnoresHTTPErrors(t *testing.T) {
	// 5xx proves the server is up; only transport failures may open the
	// breaker.
	var calls atomic.Int64
	ts := httptest.NewServer(okStatusHandler(&calls, 99, func(w http.ResponseWriter) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	c.MaxRetries = -1
	c.BreakerThreshold = 2
	for i := 0; i < 5; i++ {
		_, err := c.Job(context.Background(), "x")
		var se *Error
		if !errors.As(err, &se) || se.Code != 500 {
			t.Fatalf("call %d: got %v, want 500 *Error", i, err)
		}
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("breaker opened on HTTP 500s at call %d", i)
		}
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := 100 * time.Millisecond
	max := 5 * time.Second
	for attempt := 0; attempt < 12; attempt++ {
		full := base << uint(attempt)
		if full <= 0 || full > max {
			full = max
		}
		for i := 0; i < 100; i++ {
			d := backoffDelay(rng, base, max, attempt)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
}
