package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// Client talks to a cgramapd server over its HTTP API.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8537".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is the status polling cadence of Wait (default 50ms).
	PollInterval time.Duration
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do performs one API call and decodes the response into out, converting
// non-2xx responses into *Error values.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var payload struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&payload) == nil && payload.Error != "" {
			msg = payload.Error
		}
		return &Error{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a mapping job and returns its initial status.
func (c *Client) Submit(ctx context.Context, req *JobRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a completed job's result.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	var res JobResult
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls until the job reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	var last *JobStatus
	err := Poll(ctx, c.PollInterval, func(ctx context.Context) (bool, error) {
		st, err := c.Job(ctx, id)
		if err != nil {
			return false, err
		}
		last = st
		return st.State.Terminal(), nil
	})
	if err != nil {
		return nil, err
	}
	return last, nil
}

// Solve submits a job, waits for it, and returns its result. On ctx
// cancellation the remote job is cancelled too (best-effort, so a
// client disappearing does not leave the server solving for nobody).
func (c *Client) Solve(ctx context.Context, req *JobRequest) (*JobResult, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		if ctx.Err() != nil {
			cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			c.Cancel(cancelCtx, st.ID)
			cancel()
		}
		return nil, err
	}
	st = final
	switch st.State {
	case JobDone:
		return c.Result(ctx, st.ID)
	case JobCancelled:
		return nil, &Error{Code: 409, Message: fmt.Sprintf("job %s cancelled", st.ID)}
	default:
		return nil, &Error{Code: 500, Message: fmt.Sprintf("job %s %s: %s", st.ID, st.State, st.Error)}
	}
}

// MapFunc adapts the client to the mapper.MapFunc seam, so local
// orchestrators (cmd/experiments sweeps, MapAuto) can transparently
// offload every solve to a cgramapd server. The remote mapping comes
// back in portable form and is re-verified locally by FromPortable —
// the daemon is never trusted.
func (c *Client) MapFunc(engine string) mapper.MapFunc {
	return func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts mapper.Options) (*mapper.Result, error) {
		var archXML strings.Builder
		if err := mg.Arch.WriteXML(&archXML); err != nil {
			return nil, err
		}
		objective := "feasibility"
		if opts.Objective == mapper.MinimizeRouting {
			objective = "routing"
		}
		var deadlineMS int64
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem > 0 {
				deadlineMS = rem.Milliseconds()
			}
		}
		jr, err := c.Solve(ctx, &JobRequest{
			DFG:        g.FormatString(),
			ArchXML:    archXML.String(),
			Contexts:   mg.Contexts,
			Engine:     engine,
			Objective:  objective,
			DeadlineMS: deadlineMS,
		})
		if err != nil {
			return nil, err
		}
		res := &mapper.Result{
			Status:      jr.Status,
			Reason:      jr.Reason,
			Vars:        jr.Vars,
			Constraints: jr.Constraints,
			BuildTime:   time.Duration(jr.BuildMS * float64(time.Millisecond)),
			SolveTime:   time.Duration(jr.SolveMS * float64(time.Millisecond)),
		}
		if jr.Mapping != nil {
			m, err := mapper.FromPortable(g, mg, jr.Mapping)
			if err != nil {
				return nil, fmt.Errorf("service: remote mapping failed local verification: %w", err)
			}
			res.Mapping = m
		}
		if jr.Feasible && res.Mapping == nil {
			return nil, fmt.Errorf("service: remote result claims feasible but carries no mapping")
		}
		if res.Status == ilp.Optimal || res.Status == ilp.Feasible {
			if res.Mapping == nil {
				return nil, fmt.Errorf("service: remote status %v without mapping", res.Status)
			}
		}
		return res, nil
	}
}
