package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
)

// Client talks to a cgramapd server over its HTTP API.
//
// Transient failures — transport errors, truncated responses, and
// 429/502/503/504 answers — are retried with exponential backoff and
// jitter, honouring any server-provided Retry-After. Retrying a submit
// is safe even when the first attempt silently reached the server:
// submissions are content-addressed, so a replay deduplicates onto the
// original solve or hits its cached result. A consecutive-transport-
// failure circuit breaker makes a sick daemon's pollers fail fast (and
// back off) instead of hammering it.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8537".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is the status polling cadence of Wait (default 50ms,
	// jittered ±20% per poller so fleets don't thundering-herd).
	PollInterval time.Duration
	// MaxRetries bounds how many times one API call retries a transient
	// failure (default 4; negative disables retries).
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff (default 100ms).
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps a single backoff sleep (default 5s).
	RetryMaxDelay time.Duration
	// RetrySeed seeds the backoff jitter (0: a fixed default).
	RetrySeed int64
	// BreakerThreshold consecutive transport failures open the circuit
	// breaker (default 5; negative disables it). While open, calls fail
	// fast with ErrCircuitOpen until the cooldown elapses, then one
	// half-open trial is allowed through.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open (default 2s).
	BreakerCooldown time.Duration

	// Retries counts retries performed across all calls (observability).
	Retries atomic.Int64

	initOnce sync.Once
	mu       sync.Mutex // guards rng and brk
	rng      *rand.Rand
	brk      *breaker
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) init() {
	c.initOnce.Do(func() {
		seed := c.RetrySeed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
		if c.BreakerThreshold >= 0 {
			threshold := c.BreakerThreshold
			if threshold == 0 {
				threshold = 5
			}
			cooldown := c.BreakerCooldown
			if cooldown <= 0 {
				cooldown = 2 * time.Second
			}
			c.brk = &breaker{threshold: threshold, cooldown: cooldown}
		}
	})
}

func (c *Client) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 4
	}
	return c.MaxRetries
}

func (c *Client) nextDelay(attempt int, retryAfter time.Duration) time.Duration {
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.RetryMaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	c.mu.Lock()
	d := backoffDelay(c.rng, base, max, attempt)
	c.mu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// breakerAllow checks the circuit breaker; when closed it returns ok.
func (c *Client) breakerAllow() (time.Duration, bool) {
	if c.brk == nil {
		return 0, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.brk.allow(time.Now())
}

func (c *Client) breakerObserve(transportFailed bool) {
	if c.brk == nil {
		return
	}
	c.mu.Lock()
	if transportFailed {
		c.brk.failure(time.Now())
	} else {
		c.brk.success()
	}
	c.mu.Unlock()
}

// do performs one API call with transient-failure retries, decoding the
// response into out and converting non-2xx responses into *Error values.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	c.init()
	var blob []byte
	if body != nil {
		var err error
		if blob, err = json.Marshal(body); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if wait, ok := c.breakerAllow(); !ok {
			lastErr = &Error{Code: http.StatusServiceUnavailable,
				Message: fmt.Sprintf("%v (next trial in %v)", ErrCircuitOpen, wait.Round(time.Millisecond)),
				Err:     ErrCircuitOpen}
			if attempt >= c.maxRetries() {
				return lastErr
			}
			// Wait out the open window (bounded like any backoff sleep),
			// then the half-open trial is this loop's next iteration.
			if err := sleepCtx(ctx, c.nextDelay(attempt, wait)); err != nil {
				return lastErr
			}
			c.Retries.Add(1)
			continue
		}
		lastErr = c.once(ctx, method, path, blob, out)
		if lastErr == nil {
			return nil
		}
		retryable, retryAfter := classifyRetry(lastErr)
		if !retryable || attempt >= c.maxRetries() || ctx.Err() != nil {
			return lastErr
		}
		if err := sleepCtx(ctx, c.nextDelay(attempt, retryAfter)); err != nil {
			return lastErr
		}
		c.Retries.Add(1)
	}
}

// once performs a single round trip. Failures that never produced a
// usable HTTP response come back as *transportError (and count against
// the circuit breaker); HTTP-level errors come back as *Error.
func (c *Client) once(ctx context.Context, method, path string, blob []byte, out any) error {
	var rd io.Reader
	if blob != nil {
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if blob != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller gave up; not evidence of server sickness.
			return err
		}
		c.breakerObserve(true)
		return &transportError{err: err}
	}
	defer resp.Body.Close()
	c.breakerObserve(false)
	payload, readErr := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		var envelope struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.Unmarshal(payload, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		retryAfter := 0
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if n, err := strconv.Atoi(ra); err == nil && n > 0 {
				retryAfter = n
			}
		}
		return &Error{Code: resp.StatusCode, Message: msg, RetryAfter: retryAfter}
	}
	if readErr != nil {
		// A 2xx whose body died mid-read (dropped conn, truncation) is a
		// transport failure: the request is re-runnable.
		return &transportError{err: readErr}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		// Undecodable success body: truncated or mangled in flight.
		return &transportError{err: err}
	}
	return nil
}

// Submit posts a mapping job and returns its initial status.
func (c *Client) Submit(ctx context.Context, req *JobRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a completed job's result.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	var res JobResult
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls until the job reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	var last *JobStatus
	err := Poll(ctx, c.PollInterval, func(ctx context.Context) (bool, error) {
		st, err := c.Job(ctx, id)
		if err != nil {
			return false, err
		}
		last = st
		return st.State.Terminal(), nil
	})
	if err != nil {
		return nil, err
	}
	return last, nil
}

// Solve submits a job, waits for it, and returns its result. On ctx
// cancellation the remote job is cancelled too (best-effort, so a
// client disappearing does not leave the server solving for nobody).
func (c *Client) Solve(ctx context.Context, req *JobRequest) (*JobResult, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		if ctx.Err() != nil {
			cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			c.Cancel(cancelCtx, st.ID)
			cancel()
		}
		return nil, err
	}
	st = final
	switch st.State {
	case JobDone:
		return c.Result(ctx, st.ID)
	case JobCancelled:
		return nil, &Error{Code: 409, Message: fmt.Sprintf("job %s cancelled", st.ID)}
	default:
		return nil, &Error{Code: 500, Message: fmt.Sprintf("job %s %s: %s", st.ID, st.State, st.Error)}
	}
}

// MapFunc adapts the client to the mapper.MapFunc seam, so local
// orchestrators (cmd/experiments sweeps, MapAuto) can transparently
// offload every solve to a cgramapd server. The remote mapping comes
// back in portable form and is re-verified locally by FromPortable —
// the daemon is never trusted.
func (c *Client) MapFunc(engine string) mapper.MapFunc {
	return func(ctx context.Context, g *dfg.Graph, mg *mrrg.Graph, opts mapper.Options) (*mapper.Result, error) {
		var archXML strings.Builder
		if err := mg.Arch.WriteXML(&archXML); err != nil {
			return nil, err
		}
		objective := "feasibility"
		if opts.Objective == mapper.MinimizeRouting {
			objective = "routing"
		}
		var deadlineMS int64
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem > 0 {
				deadlineMS = rem.Milliseconds()
			}
		}
		jr, err := c.Solve(ctx, &JobRequest{
			DFG:        g.FormatString(),
			ArchXML:    archXML.String(),
			Contexts:   mg.Contexts,
			Engine:     engine,
			Objective:  objective,
			DeadlineMS: deadlineMS,
			// Forward the local speed-knob preferences: a remote auto-II
			// or portfolio job honours them server-side.
			Incremental: opts.Incremental,
			Symmetry:    opts.Symmetry.String(),
		})
		if err != nil {
			return nil, err
		}
		res := &mapper.Result{
			Status:      jr.Status,
			Reason:      jr.Reason,
			Vars:        jr.Vars,
			Constraints: jr.Constraints,
			BuildTime:   time.Duration(jr.BuildMS * float64(time.Millisecond)),
			SolveTime:   time.Duration(jr.SolveMS * float64(time.Millisecond)),
		}
		if jr.Mapping != nil {
			m, err := mapper.FromPortable(g, mg, jr.Mapping)
			if err != nil {
				return nil, fmt.Errorf("service: remote mapping failed local verification: %w", err)
			}
			res.Mapping = m
		}
		if jr.Feasible && res.Mapping == nil {
			return nil, fmt.Errorf("service: remote result claims feasible but carries no mapping")
		}
		if res.Status == ilp.Optimal || res.Status == ilp.Feasible {
			if res.Mapping == nil {
				return nil, fmt.Errorf("service: remote status %v without mapping", res.Status)
			}
		}
		return res, nil
	}
}
