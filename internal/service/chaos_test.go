package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"cgramap/internal/faultinject"
)

// TestChaosSoak drives one server at 2x+ worker capacity through a
// fault-injecting transport — added latency, synthesized 5xx, dropped
// connections, truncated bodies — and requires every Solve to converge
// via the client's retry/backoff/breaker layer, with no goroutine leaks
// and bounded memory. This is the service-level companion to the
// solver-level faultinject harness.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	baseline := runtime.NumGoroutine()
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	s := New(Options{
		Workers:    2,
		QueueDepth: 64,
		Solve: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
			// Tiny variable solve time, derived from the instance so
			// identical jobs stay deterministic.
			time.Sleep(time.Duration(1+int(spec.Fingerprint[0])%3) * time.Millisecond)
			return fakeResult(spec.Fingerprint[:8]), nil
		},
	})
	ts := httptest.NewServer(s.Handler())

	const clients = 6 // 3x the worker pool
	const perClient = 10
	var wg sync.WaitGroup
	injectors := make([]*faultinject.HTTPInjector, clients)
	errs := make(chan error, clients*perClient)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	for i := 0; i < clients; i++ {
		inj := faultinject.NewHTTPInjector(nil, faultinject.HTTPOptions{
			Latency:      2 * time.Millisecond,
			LatencyProb:  0.3,
			ErrorProb:    0.15,
			DropProb:     0.08,
			TruncateProb: 0.08,
			Seed:         int64(1000 + i),
		})
		injectors[i] = inj
		c := NewClient(ts.URL)
		c.HTTPClient = &http.Client{Transport: inj}
		c.PollInterval = 3 * time.Millisecond
		c.MaxRetries = 12
		c.RetryBaseDelay = 2 * time.Millisecond
		c.RetryMaxDelay = 40 * time.Millisecond
		c.RetrySeed = int64(500 + i)
		c.BreakerThreshold = 4
		c.BreakerCooldown = 25 * time.Millisecond

		wg.Add(1)
		go func(id int, c *Client) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				// A mix of duplicate and distinct instances, so the soak
				// also exercises dedup/caching under faults.
				req := gridReq((id*perClient+j)%8 + 1)
				req.DeadlineMS = 60_000
				res, err := c.Solve(ctx, req)
				if err != nil {
					errs <- fmt.Errorf("client %d job %d: %w", id, j, err)
					return
				}
				if !res.Feasible {
					errs <- fmt.Errorf("client %d job %d: infeasible result", id, j)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var fired int64
	for _, inj := range injectors {
		for _, n := range inj.Fired() {
			fired += n
		}
	}
	if fired == 0 {
		t.Error("fault injectors never fired — the soak exercised nothing")
	}
	t.Logf("chaos soak: %d injected faults across %d clients x %d jobs", fired, clients, perClient)

	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()

	waitGoroutines(t, baseline)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc && after.HeapAlloc-before.HeapAlloc > 64<<20 {
		t.Errorf("heap grew by %d bytes across the soak, want bounded", after.HeapAlloc-before.HeapAlloc)
	}
}
