package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs             submit a mapping job (JobRequest -> JobStatus)
//	GET    /v1/jobs/{id}        job lifecycle snapshot (JobStatus)
//	GET    /v1/jobs/{id}/result completed result (JobResult)
//	DELETE /v1/jobs/{id}        cancel a queued/running job
//	GET    /healthz             liveness ("ok", or 503 while draining)
//	GET    /metrics             Prometheus text exposition
//
// Errors are rendered as {"error": "..."} with the *Error status code;
// backpressure (429) and draining (503) responses carry a Retry-After
// header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, errf(400, "decoding request: %v", err))
			return
		}
		st, err := s.Submit(&req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Job(r.PathValue("id"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Result(r.PathValue("id"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.Header().Set("Retry-After", strconv.Itoa(drainRetryAfter))
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Metrics.Render(w)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError renders any failure as the wire error envelope, counting
// delivered Retry-After hints so backpressure is observable in /metrics.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	se := httpError(err)
	if se.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
		s.Metrics.RetryAfterSent.Add(1)
	}
	writeJSON(w, se.Code, map[string]string{"error": se.Message})
}

// httpError normalises a failure into a wire *Error. Typed service
// errors pass through (backpressure codes are guaranteed a Retry-After
// even if the producer forgot one); bare queue-full / shed / draining
// sentinels from other layers map to 429/503 with a Retry-After hint
// instead of a generic 5xx; anything else is a 500.
func httpError(err error) *Error {
	var se *Error
	if errors.As(err, &se) && se.Code != 0 {
		if (se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable) && se.RetryAfter <= 0 {
			out := *se
			out.RetryAfter = 1
			return &out
		}
		return se
	}
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDeadlineUnservable):
		return &Error{Code: http.StatusTooManyRequests, Message: err.Error(), RetryAfter: 1, Err: err}
	case errors.Is(err, ErrDraining):
		return &Error{Code: http.StatusServiceUnavailable, Message: err.Error(), RetryAfter: drainRetryAfter, Err: err}
	}
	return &Error{Code: http.StatusInternalServerError, Message: err.Error()}
}
