package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs             submit a mapping job (JobRequest -> JobStatus)
//	GET    /v1/jobs/{id}        job lifecycle snapshot (JobStatus)
//	GET    /v1/jobs/{id}/result completed result (JobResult)
//	DELETE /v1/jobs/{id}        cancel a queued/running job
//	GET    /healthz             liveness ("ok", or 503 while draining)
//	GET    /metrics             Prometheus text exposition
//
// Errors are rendered as {"error": "..."} with the *Error status code;
// 429 responses carry a Retry-After header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, errf(400, "decoding request: %v", err))
			return
		}
		st, err := s.Submit(&req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Result(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Metrics.Render(w)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var se *Error
	if !errors.As(err, &se) {
		se = &Error{Code: http.StatusInternalServerError, Message: err.Error()}
	}
	if se.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
	}
	writeJSON(w, se.Code, map[string]string{"error": se.Message})
}
