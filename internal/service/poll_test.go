package service

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestPollJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	interval := 100 * time.Millisecond
	lo := time.Duration(float64(interval) * (1 - pollJitterFrac))
	hi := time.Duration(float64(interval) * (1 + pollJitterFrac))
	seen := make(map[time.Duration]bool)
	for i := 0; i < 1000; i++ {
		d := jitterInterval(rng, interval)
		if d < lo || d > hi {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct jittered sleeps over 1000 draws; jitter is not spreading", len(seen))
	}
}

func TestPollJitterDecorrelatesPollers(t *testing.T) {
	// Two pollers started at the same instant must draw different sleep
	// sequences (per-poller seeded streams), or a fleet herds.
	a := rand.New(rand.NewSource(int64(mix64(1))))
	b := rand.New(rand.NewSource(int64(mix64(2))))
	same := 0
	for i := 0; i < 100; i++ {
		if jitterInterval(a, time.Second) == jitterInterval(b, time.Second) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d/100 identical draws across pollers; streams are correlated", same)
	}
}

func TestPollRunsImmediately(t *testing.T) {
	calls := 0
	err := Poll(context.Background(), time.Hour, func(context.Context) (bool, error) {
		calls++
		return true, nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("Poll = %v after %d calls; an already-true condition must not wait", err, calls)
	}
}

func TestPollPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := Poll(context.Background(), time.Millisecond, func(context.Context) (bool, error) {
		return false, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Poll = %v, want %v", err, boom)
	}
}

func TestPollStopsOnContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := Poll(ctx, time.Millisecond, func(context.Context) (bool, error) {
		return false, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Poll = %v, want deadline exceeded", err)
	}
}

func TestWaitHealthy(t *testing.T) {
	// The server 503s while "booting", then turns healthy.
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if hits.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.PollInterval = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitHealthy(ctx); err != nil {
		t.Fatalf("WaitHealthy = %v", err)
	}
	if hits.Load() < 3 {
		t.Fatalf("healthz polled %d times, want >= 3", hits.Load())
	}
}

func TestWaitHealthyTimesOut(t *testing.T) {
	// Nothing listens on this address: transport errors must be retried
	// until the context ends, then reported with the base URL.
	c := NewClient("http://127.0.0.1:1")
	c.PollInterval = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := c.WaitHealthy(ctx)
	if err == nil {
		t.Fatal("WaitHealthy against a dead port must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitHealthy = %v, want wrapped deadline exceeded", err)
	}
}
