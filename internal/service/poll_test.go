package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestPollRunsImmediately(t *testing.T) {
	calls := 0
	err := Poll(context.Background(), time.Hour, func(context.Context) (bool, error) {
		calls++
		return true, nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("Poll = %v after %d calls; an already-true condition must not wait", err, calls)
	}
}

func TestPollPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := Poll(context.Background(), time.Millisecond, func(context.Context) (bool, error) {
		return false, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Poll = %v, want %v", err, boom)
	}
}

func TestPollStopsOnContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := Poll(ctx, time.Millisecond, func(context.Context) (bool, error) {
		return false, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Poll = %v, want deadline exceeded", err)
	}
}

func TestWaitHealthy(t *testing.T) {
	// The server 503s while "booting", then turns healthy.
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if hits.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.PollInterval = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitHealthy(ctx); err != nil {
		t.Fatalf("WaitHealthy = %v", err)
	}
	if hits.Load() < 3 {
		t.Fatalf("healthz polled %d times, want >= 3", hits.Load())
	}
}

func TestWaitHealthyTimesOut(t *testing.T) {
	// Nothing listens on this address: transport errors must be retried
	// until the context ends, then reported with the base URL.
	c := NewClient("http://127.0.0.1:1")
	c.PollInterval = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := c.WaitHealthy(ctx)
	if err == nil {
		t.Fatal("WaitHealthy against a dead port must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitHealthy = %v, want wrapped deadline exceeded", err)
	}
}
