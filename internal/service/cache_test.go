package service

import (
	"fmt"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(3)
	res := func(i int) *JobResult { return &JobResult{Reason: fmt.Sprintf("r%d", i)} }
	for i := 0; i < 3; i++ {
		c.Add(fmt.Sprintf("k%d", i), res(i))
	}
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}

	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Add("k3", res(3))
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 survived eviction despite being least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}

	// Refreshing an existing key replaces the value without growing.
	c.Add("k0", res(99))
	if got, _ := c.Get("k0"); got.Reason != "r99" {
		t.Errorf("refresh kept %q, want r99", got.Reason)
	}
	if c.Len() != 3 {
		t.Errorf("len %d after refresh, want 3", c.Len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Add("k", &JobResult{})
	if _, ok := c.Get("k"); ok || c.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}
