package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cgramap/internal/mapper"
)

// solveBuckets are the histogram bucket upper bounds (seconds) for
// per-engine solve latencies. Mapping solves span sub-millisecond
// presolve rejections to minutes-long exact searches, hence the wide
// log-ish spread.
var solveBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}

// histogram is a fixed-bucket latency histogram (cumulative counts are
// computed at exposition time, as the Prometheus text format requires).
type histogram struct {
	counts []uint64 // one per bucket, non-cumulative
	more   uint64   // observations above the last bucket
	sum    float64
	count  uint64
}

func (h *histogram) observe(seconds float64) {
	h.sum += seconds
	h.count++
	for i, ub := range solveBuckets {
		if seconds <= ub {
			h.counts[i]++
			return
		}
	}
	h.more++
}

// Metrics aggregates the service's operational counters and exposes them
// in the Prometheus text exposition format. All methods are safe for
// concurrent use.
type Metrics struct {
	// Counters (atomically updated on the hot path).
	JobsSubmitted atomic.Int64
	JobsRejected  atomic.Int64
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	Deduplicated  atomic.Int64
	WorkersBusy   atomic.Int64
	// JobsShed counts submissions rejected by deadline-aware admission
	// control (the estimated queue wait exceeded the job's deadline);
	// each shed is also counted in JobsRejected.
	JobsShed atomic.Int64
	// JobsDegraded counts submissions accepted into the overload fast
	// lane and answered with a labelled heuristic instead of shed.
	JobsDegraded atomic.Int64
	// DeadlineExceeded counts jobs whose deadline fired server-side:
	// expired while queued, or cancelled mid-solve.
	DeadlineExceeded atomic.Int64
	// RetryAfterSent counts HTTP error responses that carried a
	// Retry-After header (backpressure advice actually delivered).
	RetryAfterSent atomic.Int64

	mu        sync.Mutex
	completed map[string]int64      // final job state -> count
	solve     map[string]*histogram // engine -> solve latency

	// Gauge sources, wired by the Server at construction.
	queueDepth    func() int
	degQueueDepth func() int
	cacheLen      func() int
	artifactStats func() mapper.ArtifactStats
	workers       int
}

func newMetrics() *Metrics {
	return &Metrics{
		completed: make(map[string]int64),
		solve:     make(map[string]*histogram),
	}
}

// IncCompleted counts one job reaching the given terminal state.
func (m *Metrics) IncCompleted(state JobState) {
	m.mu.Lock()
	m.completed[string(state)]++
	m.mu.Unlock()
}

// ObserveSolve records one engine solve's wall-clock latency.
func (m *Metrics) ObserveSolve(engine string, d time.Duration) {
	m.mu.Lock()
	h := m.solve[engine]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(solveBuckets))}
		m.solve[engine] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// Render writes every metric in the Prometheus text exposition format
// with deterministic ordering.
func (m *Metrics) Render(w io.Writer) error {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("cgramapd_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", m.JobsSubmitted.Load())
	counter("cgramapd_jobs_rejected_total", "Jobs rejected with 429 under backpressure.", m.JobsRejected.Load())
	counter("cgramapd_cache_hits_total", "Submissions answered from the content-addressed result cache.", m.CacheHits.Load())
	counter("cgramapd_cache_misses_total", "Submissions that required a new solve.", m.CacheMisses.Load())
	counter("cgramapd_singleflight_dedup_total", "Submissions coalesced onto an identical in-flight solve.", m.Deduplicated.Load())
	counter("cgramapd_jobs_shed_total", "Submissions shed by deadline-aware admission control.", m.JobsShed.Load())
	counter("cgramapd_jobs_degraded_total", "Submissions answered by the degraded heuristic fast lane.", m.JobsDegraded.Load())
	counter("cgramapd_deadline_exceeded_total", "Jobs whose deadline fired server-side (queued or mid-solve).", m.DeadlineExceeded.Load())
	counter("cgramapd_retry_after_responses_total", "Error responses that carried a Retry-After header.", m.RetryAfterSent.Load())

	m.mu.Lock()
	states := make([]string, 0, len(m.completed))
	for s := range m.completed {
		states = append(states, s)
	}
	sort.Strings(states)
	fmt.Fprintf(w, "# HELP cgramapd_jobs_completed_total Jobs reaching a terminal state.\n# TYPE cgramapd_jobs_completed_total counter\n")
	for _, s := range states {
		fmt.Fprintf(w, "cgramapd_jobs_completed_total{state=%q} %d\n", s, m.completed[s])
	}

	engines := make([]string, 0, len(m.solve))
	for e := range m.solve {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	fmt.Fprintf(w, "# HELP cgramapd_solve_seconds Wall-clock solve latency per engine.\n# TYPE cgramapd_solve_seconds histogram\n")
	for _, e := range engines {
		h := m.solve[e]
		cum := uint64(0)
		for i, ub := range solveBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "cgramapd_solve_seconds_bucket{engine=%q,le=\"%g\"} %d\n", e, ub, cum)
		}
		fmt.Fprintf(w, "cgramapd_solve_seconds_bucket{engine=%q,le=\"+Inf\"} %d\n", e, cum+h.more)
		fmt.Fprintf(w, "cgramapd_solve_seconds_sum{engine=%q} %g\n", e, h.sum)
		fmt.Fprintf(w, "cgramapd_solve_seconds_count{engine=%q} %d\n", e, h.count)
	}
	m.mu.Unlock()

	gauge("cgramapd_workers_busy", "Workers currently running a solve.", m.WorkersBusy.Load())
	gauge("cgramapd_workers", "Size of the worker pool.", int64(m.workers))
	if m.queueDepth != nil {
		gauge("cgramapd_queue_depth", "Solves waiting for a worker.", int64(m.queueDepth()))
	}
	if m.degQueueDepth != nil {
		gauge("cgramapd_degraded_queue_depth", "Jobs waiting in the degraded fast lane.", int64(m.degQueueDepth()))
	}
	if m.cacheLen != nil {
		gauge("cgramapd_cache_entries", "Completed results held by the LRU cache.", int64(m.cacheLen()))
	}
	if m.artifactStats != nil {
		st := m.artifactStats()
		counter("cgramapd_artifact_mrrg_hits_total", "MRRG requests served from the artifact cache.", st.MRRG.Hits)
		counter("cgramapd_artifact_mrrg_misses_total", "MRRG requests that generated a new graph.", st.MRRG.Misses)
		gauge("cgramapd_artifact_mrrg_entries", "Generated MRRGs held by the artifact cache.", int64(st.MRRG.Entries))
		gauge("cgramapd_artifact_mrrg_bytes", "Approximate bytes held by cached MRRGs.", st.MRRG.Bytes)
		counter("cgramapd_artifact_template_hits_total", "Formulation-template requests served from the artifact cache.", st.TemplateHits)
		counter("cgramapd_artifact_template_misses_total", "Formulation-template requests that built a new template.", st.TemplateMisses)
		gauge("cgramapd_artifact_template_entries", "Formulation templates held by the artifact cache.", int64(st.TemplateEntries))
		gauge("cgramapd_artifact_template_bytes", "Approximate bytes held by cached templates.", st.TemplateBytes)
	}
	return nil
}
