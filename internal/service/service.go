// Package service implements mapping-as-a-service: a long-lived,
// concurrent job server over the repository's CGRA mappers, built for
// the paper's headline workload — architecture exploration re-mapping
// the same kernels across many CGRA variants.
//
// A submission names a DFG, an architecture, and a mapper configuration.
// Jobs flow through a bounded queue into a fixed worker pool that drives
// the existing engines (cdcl, bb, the portfolio orchestrator, or the
// annealer) with a per-job context and deadline. In front of the workers
// sits a content-addressed result cache: the canonical fingerprint of
// (DFG structure, architecture structure, engine options) — stable under
// node renaming and insertion order — keys an LRU of completed results,
// and single-flight deduplication coalesces concurrent identical
// submissions onto one solve. The server degrades under load with 429 +
// Retry-After instead of queueing unboundedly, and drains accepted jobs
// on shutdown instead of dropping them.
//
// The HTTP surface lives in http.go, the Go client in client.go, and the
// daemon entry point in cmd/cgramapd.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cgramap/internal/anneal"
	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/ilp"
	"cgramap/internal/mapper"
	"cgramap/internal/mrrg"
	"cgramap/internal/portfolio"
	"cgramap/internal/solve/bb"
)

// Engine names accepted by job submissions.
const (
	EngineCDCL      = "cdcl"
	EngineBB        = "bb"
	EnginePortfolio = "portfolio"
	EngineAnneal    = "anneal"
)

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle states. Queued and Running are transient; Done,
// Cancelled and Failed are terminal.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobCancelled JobState = "cancelled"
	JobFailed    JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobCancelled || s == JobFailed
}

// JobRequest is the wire form of a mapping job submission
// (POST /v1/jobs). Exactly one application source (DFG or Benchmark) and
// one architecture source (ArchXML or Grid) must be set.
type JobRequest struct {
	// DFG is the application in the textual DFG format (internal/dfg).
	DFG string `json:"dfg,omitempty"`
	// Benchmark names one of the paper's Table 1 kernels instead.
	Benchmark string `json:"benchmark,omitempty"`
	// ArchXML is the architecture in the XML description language.
	ArchXML string `json:"arch,omitempty"`
	// Grid builds a paper-style grid architecture instead.
	Grid *arch.GridSpec `json:"grid,omitempty"`
	// Contexts, when > 0, overrides the architecture's context count.
	Contexts int `json:"contexts,omitempty"`
	// AutoII, when > 0, searches for the provably smallest initiation
	// interval up to this bound (mapper.MapAuto) instead of solving at
	// a fixed context count.
	AutoII int `json:"auto_ii,omitempty"`
	// Engine selects cdcl (default), bb, portfolio, or anneal.
	Engine string `json:"engine,omitempty"`
	// Incremental solves an auto-II job through an assumption-based
	// incremental CDCL session (the solver carries learnt clauses up the
	// II ladder), and adds the incremental strategy to a portfolio race.
	// Purely a speed knob: the answer is unchanged.
	Incremental bool `json:"incremental,omitempty"`
	// Symmetry controls symmetry-breaking constraints: "auto" (default:
	// on for auto-II ladders, off at a fixed context count), "on" or
	// "off". Like Incremental it is purely a speed knob — the answer is
	// unchanged.
	Symmetry string `json:"symmetry,omitempty"`
	// Objective is "feasibility" (default) or "routing".
	Objective string `json:"objective,omitempty"`
	// DeadlineMS bounds the solve wall clock (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// JobSpec is a parsed, validated job: the exact inputs a worker solves.
type JobSpec struct {
	DFG       *dfg.Graph
	Arch      *arch.Arch
	Engine    string
	Objective mapper.ObjectiveMode
	AutoII    int
	Deadline  time.Duration
	// Workers is the solver-level parallelism inside this job: a
	// clause-sharing CDCL gang (and, with AutoII, a speculative II
	// sweep) of this width, paid for from the process-wide worker
	// budget. Like the deadline it is excluded from the fingerprint —
	// it changes how fast the answer arrives, never what it is.
	Workers int
	// Seed fixes the base search trajectory (also fingerprint-exempt:
	// every trajectory proves the same answer).
	Seed int64
	// Incremental threads an incremental CDCL session through auto-II
	// ladders and adds the cdcl-inc strategy to portfolio races. Like
	// Workers and Seed it is fingerprint-exempt — it changes the solve
	// trajectory, never the answer.
	Incremental bool
	// Symmetry selects the symmetry-breaking mode for the job's
	// formulations. Symmetry breaking removes symmetric duplicates from
	// the search space but never a whole solution orbit, so it is
	// fingerprint-exempt like Workers, Seed and Incremental: it changes
	// how fast the answer arrives, never what it is.
	Symmetry mapper.SymmetryMode
	// Artifacts is the server-wide artifact cache (MRRGs, formulation
	// templates), stamped onto every spec at parse time. Like Workers,
	// Seed and Incremental it is fingerprint-exempt: stamped
	// formulations are byte-identical to scratch ones, so the cache
	// changes how fast the answer arrives, never what it is. Nil when
	// artifact caching is disabled.
	Artifacts *mapper.ArtifactCache
	// Fingerprint is the canonical content-address of this job (see
	// Fingerprint); equal fingerprints have equal answers.
	Fingerprint string
}

// JobResult is the wire form of a completed solve.
type JobResult struct {
	Status   ilp.Status `json:"status"`
	Feasible bool       `json:"feasible"`
	// Degraded is true when the answer came from the overload fast
	// lane: a short heuristic solve served because the exact queue was
	// saturated. A degraded answer is verified but proves nothing, and
	// is never cached.
	Degraded bool `json:"degraded,omitempty"`
	// Proven is true when the answer is a proof from a complete engine;
	// a heuristic witness is verified but proves nothing beyond
	// feasibility.
	Proven bool `json:"proven"`
	// Winner names the portfolio strategy that produced the answer.
	Winner string `json:"winner,omitempty"`
	Reason string `json:"reason,omitempty"`
	// II is the initiation interval found by an auto-II search.
	II          int     `json:"ii,omitempty"`
	Vars        int     `json:"vars,omitempty"`
	Constraints int     `json:"constraints,omitempty"`
	BuildMS     float64 `json:"build_ms"`
	SolveMS     float64 `json:"solve_ms"`
	Engine      string  `json:"engine"`
	// Mapping is the verified mapping in portable (name-based) form,
	// present when feasible.
	Mapping *mapper.Portable `json:"mapping,omitempty"`
}

// JobStatus is the wire form of a job's lifecycle snapshot.
type JobStatus struct {
	ID          string    `json:"id"`
	State       JobState  `json:"state"`
	Fingerprint string    `json:"fingerprint"`
	Engine      string    `json:"engine"`
	CacheHit    bool      `json:"cache_hit,omitempty"`
	Deduped     bool      `json:"deduped,omitempty"`
	Degraded    bool      `json:"degraded,omitempty"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// Sentinel admission failures. They travel inside *Error (match with
// errors.Is) so HTTP and client layers can map overload conditions to
// 429/503 + Retry-After without string inspection.
var (
	// ErrQueueFull marks a submission rejected because no queue slot was
	// available (429).
	ErrQueueFull = errors.New("job queue full")
	// ErrDeadlineUnservable marks a submission shed because the
	// estimated queue wait already exceeds the job's deadline (429):
	// accepting it would only fail it later, after burning a slot.
	ErrDeadlineUnservable = errors.New("estimated queue wait exceeds job deadline")
	// ErrDraining marks a submission refused during shutdown (503).
	ErrDraining = errors.New("server is draining")
)

// drainRetryAfter is the Retry-After hint (seconds) sent with 503
// draining responses, so load balancers and clients re-route or back
// off instead of hammering a terminating instance.
const drainRetryAfter = 10

// Error is a service failure with an HTTP status code.
type Error struct {
	Code    int
	Message string
	// RetryAfter, in seconds, is set on backpressure rejections.
	RetryAfter int
	// Err is the underlying cause, when one of the sentinel admission
	// errors applies (errors.Is sees through it).
	Err error
}

func (e *Error) Error() string { return e.Message }

// Unwrap exposes the sentinel cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

func errf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Fingerprint computes the canonical content-address of a job: the DFG
// structure hash, the architecture structure hash (which covers the
// context count), and the solver-relevant options. Names and the
// submission's deadline are deliberately excluded — a deadline changes
// whether the answer arrives, never what it is, and only definitive
// answers enter the cache.
func Fingerprint(g *dfg.Graph, a *arch.Arch, engine string, objective mapper.ObjectiveMode, autoII int) string {
	h := sha256.New()
	fmt.Fprintf(h, "cgramap/job/v1\n%s\n%s\n%s\n%d\n%d\n",
		g.Fingerprint(), a.Fingerprint(), engine, int(objective), autoII)
	return hex.EncodeToString(h.Sum(nil))
}

// Options configures a Server. The zero value picks sensible defaults.
type Options struct {
	// Workers is the solve pool size (default 4).
	Workers int
	// QueueDepth bounds the number of solves waiting for a worker;
	// submissions beyond it are rejected with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 512; negative
	// disables caching).
	CacheEntries int
	// ArtifactCacheEntries bounds the artifact cache shared by every
	// job: generated MRRGs and formulation templates, each in their own
	// LRU of this many entries (default 64; negative disables artifact
	// caching entirely). Purely a speed knob — cached artifacts are
	// content-addressed and stamped formulations are byte-identical to
	// scratch ones.
	ArtifactCacheEntries int
	// DefaultDeadline applies to jobs that set no deadline (default 60s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines (default 15m).
	MaxDeadline time.Duration
	// RetainJobs bounds how many finished job records are kept for
	// status/result polling before the oldest are forgotten
	// (default 4096).
	RetainJobs int
	// SolveWorkers requests solver-level parallelism of this width
	// inside every job (see JobSpec.Workers); <= 1 keeps each solve
	// sequential. The job pool (Workers) and the solver gangs share the
	// process-wide worker budget, so layering the two degrades
	// gracefully instead of oversubscribing.
	SolveWorkers int
	// Seed fixes the base solver trajectory of every job (0 keeps the
	// engines' defaults).
	Seed int64
	// Incremental turns on incremental CDCL sessions for every job
	// (clients can also request it per job; either side opting in
	// enables it). See JobSpec.Incremental.
	Incremental bool
	// Symmetry is the server-wide symmetry-breaking default for jobs
	// that submit "auto" (or nothing). A job's explicit "on"/"off" wins.
	// See JobSpec.Symmetry.
	Symmetry mapper.SymmetryMode
	// JobTimeout caps every job's solve wall clock server-side, measured
	// from the moment a worker starts it (0 = no cap). It bounds the
	// long tail regardless of the deadline the client asked for.
	JobTimeout time.Duration
	// DegradeOnOverload answers queue-full submissions with a fast
	// labelled heuristic mapping (degraded: true) from a small dedicated
	// lane instead of shedding them with 429. Auto-II jobs are still
	// shed: a heuristic cannot prove an II minimal.
	DegradeOnOverload bool
	// DegradedDeadline bounds each degraded heuristic solve (default 2s,
	// further clamped by the job's own deadline).
	DegradedDeadline time.Duration
	// DegradedWorkers sizes the degraded fast lane pool (default 1).
	DegradedWorkers int
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
	// Solve replaces the built-in engine dispatch — the seam the tests
	// (and embedders with custom pipelines) plug into. nil selects the
	// real mappers.
	Solve func(ctx context.Context, spec *JobSpec) (*JobResult, error)
	// SolveDegraded replaces the degraded lane's dispatch (default
	// RunSpecDegraded: one short simulated-annealing run).
	SolveDegraded func(ctx context.Context, spec *JobSpec) (*JobResult, error)
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 512
	}
	if o.ArtifactCacheEntries == 0 {
		o.ArtifactCacheEntries = 64
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 60 * time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 15 * time.Minute
	}
	if o.RetainJobs <= 0 {
		o.RetainJobs = 4096
	}
	if o.DegradedDeadline <= 0 {
		o.DegradedDeadline = 2 * time.Second
	}
	if o.DegradedWorkers <= 0 {
		o.DegradedWorkers = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Solve == nil {
		o.Solve = RunSpec
	}
	if o.SolveDegraded == nil {
		o.SolveDegraded = RunSpecDegraded
	}
}

// job is the server-side job record. All fields are guarded by the
// server mutex except done, which is closed exactly once under it.
type job struct {
	id          string
	fingerprint string
	engine      string
	state       JobState
	cacheHit    bool
	deduped     bool
	degraded    bool
	result      *JobResult
	errMsg      string
	submitted   time.Time
	started     time.Time
	finished    time.Time
	done        chan struct{}
	ex          *exec
}

// exec is one in-flight solve, shared by every job submitted with the
// same fingerprint while it runs (single-flight).
type exec struct {
	fp     string
	spec   *JobSpec
	ctx    context.Context
	cancel context.CancelFunc
	// deadline is the job's absolute deadline, anchored at submission:
	// time spent waiting in the queue spends it too, so a backlog can
	// never make accepted work run arbitrarily late.
	deadline time.Time
	// degraded routes the exec through the overload fast lane (short
	// heuristic solve, no dedup, no caching).
	degraded bool
	jobs     []*job // attached live jobs; empty means fully cancelled
}

// Server is the mapping job server. Create with New, serve its Handler,
// and Shutdown to drain.
type Server struct {
	opts    Options
	Metrics *Metrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // finished-job retention ring, oldest first
	inflight map[string]*exec
	queue    chan *exec
	degQueue chan *exec // overload fast lane; nil unless DegradeOnOverload
	draining bool
	nextID   uint64

	// avgSolveNS is an EWMA of recent solve wall clocks (nanoseconds),
	// feeding the admission estimator.
	avgSolveNS atomic.Int64

	cache     *resultCache
	artifacts *mapper.ArtifactCache // nil when ArtifactCacheEntries < 0
	wg        sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts.fill()
	s := &Server{
		opts:     opts,
		Metrics:  newMetrics(),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*exec),
		queue:    make(chan *exec, opts.QueueDepth),
		cache:    newResultCache(opts.CacheEntries),
	}
	if opts.ArtifactCacheEntries > 0 {
		s.artifacts = mapper.NewArtifactCache(opts.ArtifactCacheEntries)
		s.Metrics.artifactStats = s.artifacts.Stats
	}
	s.Metrics.workers = opts.Workers
	s.Metrics.queueDepth = func() int { return len(s.queue) }
	s.Metrics.cacheLen = s.cache.Len
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if opts.DegradeOnOverload {
		s.degQueue = make(chan *exec, opts.QueueDepth)
		s.Metrics.degQueueDepth = func() int { return len(s.degQueue) }
		for i := 0; i < opts.DegradedWorkers; i++ {
			s.wg.Add(1)
			go s.degradedWorker()
		}
	}
	return s
}

// estimatedWait predicts how long a newly enqueued job would wait for a
// worker: queue occupancy (plus itself) times the recent average solve
// time, divided across the pool. Zero until the first solve completes —
// with no evidence, everything is admitted. Callers hold s.mu.
func (s *Server) estimatedWait() time.Duration {
	avg := time.Duration(s.avgSolveNS.Load())
	if avg <= 0 {
		return 0
	}
	return avg * time.Duration(len(s.queue)+1) / time.Duration(s.opts.Workers)
}

// recordSolveTime folds one completed solve into the admission
// estimator's EWMA (weight 0.3, integer arithmetic).
func (s *Server) recordSolveTime(d time.Duration) {
	for {
		old := s.avgSolveNS.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)*3/10
		}
		if s.avgSolveNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds renders a wait estimate as a Retry-After header
// value: at least 1 second (the header has second granularity), capped
// so a pathological estimate never parks clients for minutes.
func retryAfterSeconds(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// ParseRequest validates a submission and resolves it into a JobSpec.
func (s *Server) ParseRequest(req *JobRequest) (*JobSpec, error) {
	var g *dfg.Graph
	var err error
	switch {
	case req.DFG != "" && req.Benchmark != "":
		return nil, errf(400, "specify dfg or benchmark, not both")
	case req.DFG != "":
		if g, err = dfg.ParseString(req.DFG); err != nil {
			return nil, errf(400, "parsing dfg: %v", err)
		}
	case req.Benchmark != "":
		if g, err = bench.Get(req.Benchmark); err != nil {
			return nil, errf(400, "%v", err)
		}
	default:
		return nil, errf(400, "no application: set dfg or benchmark")
	}

	var a *arch.Arch
	switch {
	case req.ArchXML != "" && req.Grid != nil:
		return nil, errf(400, "specify arch or grid, not both")
	case req.ArchXML != "":
		if a, err = arch.ReadXML(strings.NewReader(req.ArchXML)); err != nil {
			return nil, errf(400, "parsing arch: %v", err)
		}
	case req.Grid != nil:
		spec := *req.Grid
		if spec.Contexts == 0 && req.Contexts > 0 {
			spec.Contexts = req.Contexts
		}
		if a, err = arch.Grid(spec); err != nil {
			return nil, errf(400, "building grid: %v", err)
		}
	default:
		return nil, errf(400, "no architecture: set arch or grid")
	}
	if req.Contexts < 0 || req.AutoII < 0 {
		return nil, errf(400, "contexts and auto_ii must be non-negative")
	}
	if req.Contexts > 0 {
		aa := *a
		aa.Contexts = req.Contexts
		a = &aa
	}

	engine := req.Engine
	if engine == "" {
		engine = EngineCDCL
	}
	switch engine {
	case EngineCDCL, EngineBB, EnginePortfolio, EngineAnneal:
	default:
		return nil, errf(400, "unknown engine %q", engine)
	}
	if engine == EngineAnneal && req.AutoII > 0 {
		return nil, errf(400, "auto_ii requires an exact engine (a heuristic cannot prove an II minimal)")
	}

	objective := mapper.Feasibility
	switch req.Objective {
	case "", "feasibility":
	case "routing":
		objective = mapper.MinimizeRouting
	default:
		return nil, errf(400, "unknown objective %q", req.Objective)
	}

	symmetry, err := mapper.ParseSymmetryMode(req.Symmetry)
	if err != nil {
		return nil, errf(400, "%v", err)
	}
	if symmetry == mapper.SymmetryAuto {
		// The server-wide default fills in only when the job itself did
		// not choose; auto then resolves inside the mapper (on for
		// auto-II ladders, off at a fixed II).
		symmetry = s.opts.Symmetry
	}

	deadline := s.opts.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.opts.MaxDeadline {
		deadline = s.opts.MaxDeadline
	}

	return &JobSpec{
		DFG:         g,
		Arch:        a,
		Engine:      engine,
		Objective:   objective,
		AutoII:      req.AutoII,
		Deadline:    deadline,
		Workers:     s.opts.SolveWorkers,
		Seed:        s.opts.Seed,
		Incremental: req.Incremental || s.opts.Incremental,
		Symmetry:    symmetry,
		Artifacts:   s.artifacts,
		Fingerprint: Fingerprint(g, a, engine, objective, req.AutoII),
	}, nil
}

// Submit accepts a job: answered from cache, coalesced onto an identical
// in-flight solve, enqueued for a worker, or — when the queue is
// saturated and degradation is enabled — routed to the heuristic fast
// lane. It returns the job's initial status snapshot, or an *Error
// (400 invalid, 429 backpressure/shed, 503 draining).
func (s *Server) Submit(req *JobRequest) (*JobStatus, error) {
	spec, err := s.ParseRequest(req)
	if err != nil {
		return nil, err
	}
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, &Error{Code: 503, Message: ErrDraining.Error(),
			RetryAfter: drainRetryAfter, Err: ErrDraining}
	}
	j := &job{
		fingerprint: spec.Fingerprint,
		engine:      spec.Engine,
		submitted:   now,
		done:        make(chan struct{}),
	}
	s.nextID++
	j.id = "j" + strconv.FormatUint(s.nextID, 36) + "-" + spec.Fingerprint[:8]

	if res, ok := s.cache.Get(spec.Fingerprint); ok {
		j.state = JobDone
		j.cacheHit = true
		j.result = res
		j.started, j.finished = now, now
		close(j.done)
		s.Metrics.JobsSubmitted.Add(1)
		s.Metrics.CacheHits.Add(1)
		s.Metrics.IncCompleted(JobDone)
		s.register(j)
		return snapshot(j), nil
	}

	if ex := s.inflight[spec.Fingerprint]; ex != nil {
		j.state = ex.jobs[0].state // mirrors queued/running
		j.deduped = true
		j.started = ex.jobs[0].started
		j.ex = ex
		ex.jobs = append(ex.jobs, j)
		s.Metrics.JobsSubmitted.Add(1)
		s.Metrics.Deduplicated.Add(1)
		s.register(j)
		return snapshot(j), nil
	}

	// Deadline-aware admission: estimate how long a new job would wait
	// for a worker. A job whose deadline would expire in the queue is
	// shed now, with a Retry-After hint sized to the backlog, instead of
	// accepted and failed later.
	if wait := s.estimatedWait(); wait > spec.Deadline {
		s.Metrics.JobsShed.Add(1)
		s.Metrics.JobsRejected.Add(1)
		return nil, &Error{Code: 429,
			Message: fmt.Sprintf("%v: estimated wait %v > deadline %v",
				ErrDeadlineUnservable, wait.Round(time.Millisecond), spec.Deadline),
			RetryAfter: retryAfterSeconds(wait), Err: ErrDeadlineUnservable}
	}

	ctx, cancel := context.WithCancel(context.Background())
	ex := &exec{fp: spec.Fingerprint, spec: spec, ctx: ctx, cancel: cancel,
		deadline: now.Add(spec.Deadline)}
	j.state = JobQueued
	j.ex = ex
	ex.jobs = []*job{j}
	select {
	case s.queue <- ex:
	default:
		// The exact queue is saturated. Degrade to the heuristic fast
		// lane when enabled (auto-II jobs excluded: a heuristic cannot
		// prove an II minimal), otherwise shed with 429.
		if s.degQueue != nil && spec.AutoII == 0 {
			ex.degraded = true
			j.degraded = true
			select {
			case s.degQueue <- ex:
				s.Metrics.JobsSubmitted.Add(1)
				s.Metrics.JobsDegraded.Add(1)
				s.register(j)
				return snapshot(j), nil
			default:
				// Fast lane saturated too: fall through to shedding.
			}
		}
		cancel()
		s.Metrics.JobsRejected.Add(1)
		return nil, &Error{Code: 429, Message: ErrQueueFull.Error(),
			RetryAfter: retryAfterSeconds(s.estimatedWait()), Err: ErrQueueFull}
	}
	s.inflight[spec.Fingerprint] = ex
	s.Metrics.JobsSubmitted.Add(1)
	s.Metrics.CacheMisses.Add(1)
	s.register(j)
	return snapshot(j), nil
}

// register indexes a job and evicts the oldest finished jobs beyond the
// retention bound. Callers hold s.mu.
func (s *Server) register(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.order) > s.opts.RetainJobs {
		victim := s.jobs[s.order[0]]
		if victim != nil && !victim.state.Terminal() {
			break // never forget a live job
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

// Job returns a job's status snapshot.
func (s *Server) Job(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, errf(404, "unknown job %q", id)
	}
	return snapshot(j), nil
}

// Result returns a finished job's result. It fails with 409 while the
// job is still queued/running or was cancelled, and 500 if it failed.
func (s *Server) Result(id string) (*JobResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, errf(404, "unknown job %q", id)
	}
	switch j.state {
	case JobDone:
		return j.result, nil
	case JobFailed:
		return nil, errf(500, "job %s failed: %s", id, j.errMsg)
	case JobCancelled:
		return nil, errf(409, "job %s was cancelled", id)
	default:
		return nil, errf(409, "job %s is %s", id, j.state)
	}
}

// Cancel cancels a queued or running job. The cancellation propagates to
// the solver context once no other live submission shares the solve.
func (s *Server) Cancel(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, errf(404, "unknown job %q", id)
	}
	if j.state.Terminal() {
		return nil, errf(409, "job %s already %s", id, j.state)
	}
	j.state = JobCancelled
	j.finished = time.Now()
	close(j.done)
	s.Metrics.IncCompleted(JobCancelled)
	if ex := j.ex; ex != nil {
		live := ex.jobs[:0]
		for _, other := range ex.jobs {
			if other != j {
				live = append(live, other)
			}
		}
		ex.jobs = live
		if len(ex.jobs) == 0 {
			// Last interested submission gone: stop the solve. Degraded
			// execs never enter the inflight index, so only remove the
			// entry when it is really this exec's (a live successor may
			// own the fingerprint by now).
			ex.cancel()
			if s.inflight[ex.fp] == ex {
				delete(s.inflight, ex.fp)
			}
		}
	}
	return snapshot(j), nil
}

// Wait blocks until the job reaches a terminal state or ctx ends, and
// returns the final snapshot.
func (s *Server) Wait(ctx context.Context, id string) (*JobStatus, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, errf(404, "unknown job %q", id)
	}
	select {
	case <-j.done:
		// Snapshot the captured job rather than re-looking it up: once
		// terminal it may already have been evicted from s.jobs by the
		// retention loop.
		s.mu.Lock()
		defer s.mu.Unlock()
		return snapshot(j), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops accepting submissions and waits until every accepted
// job has reached a terminal state (the queue drains through the worker
// pool; nothing accepted is dropped). It returns ctx.Err if ctx ends
// first, leaving workers running — callers may retry.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // workers drain the remaining solves, then exit
		if s.degQueue != nil {
			close(s.degQueue)
		}
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker consumes solves from the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for ex := range s.queue {
		s.runExec(ex)
	}
}

// runExec performs one solve and completes every attached job.
func (s *Server) runExec(ex *exec) {
	s.mu.Lock()
	if len(ex.jobs) == 0 {
		// Every submission was cancelled while queued. Cancel already
		// removed the inflight entry, and a later Submit may have
		// installed a fresh exec under the same fingerprint — only
		// remove the entry if it is still ours.
		if s.inflight[ex.fp] == ex {
			delete(s.inflight, ex.fp)
		}
		s.mu.Unlock()
		ex.cancel()
		return
	}
	now := time.Now()
	for _, j := range ex.jobs {
		j.state = JobRunning
		j.started = now
	}
	s.mu.Unlock()

	// The deadline is absolute from submission; a job whose deadline
	// expired while it queued is failed without burning a solve slot
	// (the admission estimator tries to shed these up front, but it is
	// an estimate, not a guarantee).
	if !ex.deadline.After(now) {
		s.Metrics.DeadlineExceeded.Add(1)
		s.failExec(ex, "deadline exceeded while queued")
		return
	}

	s.Metrics.WorkersBusy.Add(1)
	ctx, cancel := context.WithDeadline(ex.ctx, ex.deadline)
	if s.opts.JobTimeout > 0 {
		// Server-side cap on the solve itself, independent of how
		// generous a deadline the client asked for.
		var capCancel context.CancelFunc
		ctx, capCancel = context.WithTimeout(ctx, s.opts.JobTimeout)
		defer capCancel()
	}
	start := time.Now()
	res, err := s.opts.Solve(ctx, ex.spec)
	elapsed := time.Since(start)
	if ctx.Err() == context.DeadlineExceeded {
		s.Metrics.DeadlineExceeded.Add(1)
	}
	cancel()
	s.Metrics.WorkersBusy.Add(-1)
	s.Metrics.ObserveSolve(ex.spec.Engine, elapsed)
	s.recordSolveTime(elapsed)
	if err != nil {
		s.opts.Logf("service: job %s (%s on %s) failed: %v",
			ex.fp[:8], ex.spec.DFG.Name, ex.spec.Arch.Name, err)
	}

	s.mu.Lock()
	if s.inflight[ex.fp] == ex {
		delete(s.inflight, ex.fp)
	}
	now = time.Now()
	for _, j := range ex.jobs {
		j.finished = now
		if err != nil {
			j.state = JobFailed
			j.errMsg = err.Error()
		} else {
			j.state = JobDone
			j.result = res
		}
		s.Metrics.IncCompleted(j.state)
		close(j.done)
	}
	cacheable := err == nil && res.Status != ilp.Unknown && len(ex.jobs) > 0
	if cacheable {
		s.cache.Add(ex.fp, res)
	}
	s.mu.Unlock()
	ex.cancel()
}

// failExec completes every job attached to ex as failed with msg.
func (s *Server) failExec(ex *exec, msg string) {
	s.mu.Lock()
	if s.inflight[ex.fp] == ex {
		delete(s.inflight, ex.fp)
	}
	now := time.Now()
	for _, j := range ex.jobs {
		j.finished = now
		j.state = JobFailed
		j.errMsg = msg
		s.Metrics.IncCompleted(JobFailed)
		close(j.done)
	}
	s.mu.Unlock()
	ex.cancel()
}

// DegradedReason labels every answer served by the overload fast lane.
const DegradedReason = "degraded: heuristic (simulated annealing) answer served under overload; no optimality or infeasibility proof"

// degradedWorker consumes the overload fast lane until Shutdown closes it.
func (s *Server) degradedWorker() {
	defer s.wg.Done()
	for ex := range s.degQueue {
		s.runDegraded(ex)
	}
}

// runDegraded answers one overload-admitted job from the fast lane: a
// short heuristic solve, labelled degraded, never cached and never
// deduplicated — the answer reflects this moment's overload, not a
// property of the instance.
func (s *Server) runDegraded(ex *exec) {
	s.mu.Lock()
	if len(ex.jobs) == 0 {
		s.mu.Unlock()
		ex.cancel()
		return
	}
	now := time.Now()
	for _, j := range ex.jobs {
		j.state = JobRunning
		j.started = now
	}
	s.mu.Unlock()

	if !ex.deadline.After(now) {
		s.Metrics.DeadlineExceeded.Add(1)
		s.failExec(ex, "deadline exceeded while queued (degraded lane)")
		return
	}
	deadline := now.Add(s.opts.DegradedDeadline)
	if ex.deadline.Before(deadline) {
		deadline = ex.deadline
	}
	ctx, cancel := context.WithDeadline(ex.ctx, deadline)
	start := time.Now()
	res, err := s.opts.SolveDegraded(ctx, ex.spec)
	cancel()
	s.Metrics.ObserveSolve("degraded", time.Since(start))
	if err == nil && res != nil {
		res.Degraded = true
		if res.Reason == "" {
			res.Reason = DegradedReason
		}
	}
	if err != nil {
		s.opts.Logf("service: degraded job %s (%s on %s) failed: %v",
			ex.fp[:8], ex.spec.DFG.Name, ex.spec.Arch.Name, err)
	}

	s.mu.Lock()
	now = time.Now()
	for _, j := range ex.jobs {
		j.finished = now
		if err != nil {
			j.state = JobFailed
			j.errMsg = err.Error()
		} else {
			j.state = JobDone
			j.result = res
		}
		s.Metrics.IncCompleted(j.state)
		close(j.done)
	}
	s.mu.Unlock()
	ex.cancel()
}

// snapshot renders a job's wire status. Callers hold s.mu.
func snapshot(j *job) *JobStatus {
	return &JobStatus{
		ID:          j.id,
		State:       j.state,
		Fingerprint: j.fingerprint,
		Engine:      j.engine,
		CacheHit:    j.cacheHit,
		Deduped:     j.deduped,
		Degraded:    j.degraded,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
}

// RunSpec is the built-in engine dispatch: it solves a JobSpec with the
// engine it names, honouring ctx for cancellation and deadline. It is
// the default Options.Solve.
func RunSpec(ctx context.Context, spec *JobSpec) (*JobResult, error) {
	out := &JobResult{Engine: spec.Engine}

	if spec.Engine == EngineAnneal {
		mg, err := specMRRG(spec)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := anneal.Map(ctx, spec.DFG, mg, anneal.Options{})
		if err != nil {
			return nil, err
		}
		out.Status = res.Status
		out.Feasible = res.Feasible
		out.SolveMS = ms(time.Since(start))
		if res.Feasible {
			out.Reason = "heuristic (simulated annealing) witness; no optimality or infeasibility proof"
			out.Mapping = res.Mapping.Portable()
		}
		return out, nil
	}

	mo := mapper.Options{Objective: spec.Objective, Workers: spec.Workers, Seed: spec.Seed,
		Incremental: spec.Incremental, Symmetry: spec.Symmetry, Artifacts: spec.Artifacts}
	switch spec.Engine {
	case EngineCDCL:
	case EngineBB:
		mo.Solver = bb.New()
	case EnginePortfolio:
	default:
		return nil, fmt.Errorf("service: unknown engine %q", spec.Engine)
	}

	if spec.AutoII > 0 {
		if spec.Engine == EnginePortfolio {
			// Exact engines only inside the auto-II loop: a heuristic
			// miss at some II proves nothing, which would poison the
			// "smallest feasible II" claim.
			mo.MapWith = portfolio.MapFunc(portfolio.Options{
				DisableFallback: true, Workers: spec.Workers, Seed: spec.Seed,
				Incremental: spec.Incremental})
		}
		auto, err := mapper.MapAuto(ctx, spec.DFG, spec.Arch, spec.AutoII, mo)
		if err != nil {
			return nil, err
		}
		fillFromMapperResult(out, auto.Result)
		out.II = auto.II
		out.Proven = auto.Status != ilp.Unknown
		return out, nil
	}

	mg, err := specMRRG(spec)
	if err != nil {
		return nil, err
	}
	if spec.Engine == EnginePortfolio {
		pres, err := portfolio.Map(ctx, spec.DFG, mg, portfolio.Options{
			Mapper: mo, Workers: spec.Workers, Seed: spec.Seed,
			Incremental: spec.Incremental})
		if err != nil {
			return nil, err
		}
		fillFromMapperResult(out, pres.Result)
		out.Winner = pres.Winner
		out.Proven = pres.Proven && pres.Status != ilp.Unknown
		return out, nil
	}
	res, err := mapper.Map(ctx, spec.DFG, mg, mo)
	if err != nil {
		return nil, err
	}
	fillFromMapperResult(out, res)
	out.Proven = res.Status != ilp.Unknown
	return out, nil
}

// RunSpecDegraded is the degraded lane's default dispatch: one short
// simulated-annealing run — the same labelled fallback the portfolio
// degrades to when every exact engine times out. It is the default
// Options.SolveDegraded.
func RunSpecDegraded(ctx context.Context, spec *JobSpec) (*JobResult, error) {
	mg, err := specMRRG(spec)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := anneal.Map(ctx, spec.DFG, mg, anneal.Options{Seed: spec.Seed})
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Engine:   EngineAnneal,
		Degraded: true,
		Status:   res.Status,
		Feasible: res.Feasible,
		Reason:   DegradedReason,
		SolveMS:  ms(time.Since(start)),
	}
	if res.Feasible {
		out.Mapping = res.Mapping.Portable()
	}
	return out, nil
}

// specMRRG resolves the MRRG for a spec's architecture through the
// server-wide artifact cache when the spec carries one, generating from
// scratch otherwise.
func specMRRG(spec *JobSpec) (*mrrg.Graph, error) {
	if spec.Artifacts != nil {
		return spec.Artifacts.MRRG(spec.Arch)
	}
	return mrrg.Generate(spec.Arch)
}

func fillFromMapperResult(out *JobResult, res *mapper.Result) {
	out.Status = res.Status
	out.Feasible = res.Feasible()
	out.Reason = res.Reason
	out.Vars = res.Vars
	out.Constraints = res.Constraints
	out.BuildMS = ms(res.BuildTime)
	out.SolveMS = ms(res.SolveTime)
	if res.Mapping != nil {
		out.Mapping = res.Mapping.Portable()
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
