package service

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"
)

// DefaultPollInterval is the cadence used by Poll-based waiters when the
// caller does not override it.
const DefaultPollInterval = 50 * time.Millisecond

// pollJitterFrac spreads every poll sleep across ±20% of the interval.
// A fleet of Wait pollers started together (an archexplore sweep fanning
// a batch onto one daemon) would otherwise synchronize into a thundering
// herd that slams the status endpoint in lockstep.
const pollJitterFrac = 0.2

// pollSeq derives a distinct, deterministic jitter stream per Poll call:
// seeded, so runs are reproducible, yet decorrelated across pollers.
var pollSeq atomic.Uint64

// mix64 is SplitMix64's finalizer: spreads consecutive sequence numbers
// into independent-looking seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// jitterInterval draws one sleep from [interval*(1-frac), interval*(1+frac)].
func jitterInterval(rng *rand.Rand, interval time.Duration) time.Duration {
	f := 1 + pollJitterFrac*(2*rng.Float64()-1)
	return time.Duration(float64(interval) * f)
}

// Poll invokes fn at the given interval (jittered ±20%, seeded) until it
// reports done, returns an error, or ctx ends. It runs fn once
// immediately, so a condition that already holds never waits out an
// interval. A non-positive interval uses DefaultPollInterval.
//
// This is the single polling loop shared by Client.Wait, Client.WaitHealthy
// and cmd/waitready; timeouts live in the caller's ctx so every consumer
// (CLI flags, CI scripts, tests) configures them in one place.
func Poll(ctx context.Context, interval time.Duration, fn func(context.Context) (done bool, err error)) error {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	rng := rand.New(rand.NewSource(int64(mix64(pollSeq.Add(1)))))
	for {
		done, err := fn(ctx)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(jitterInterval(rng, interval)):
		}
	}
}

// WaitHealthy polls the server's /healthz endpoint until it answers 200,
// the context ends, or a non-transport error surfaces. Transport errors
// (connection refused while the daemon boots) are retried; HTTP responses
// other than 200 are also retried, since the server may still be starting
// its listeners. The poll cadence is the client's PollInterval.
func (c *Client) WaitHealthy(ctx context.Context) error {
	err := Poll(ctx, c.PollInterval, func(ctx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
		if err != nil {
			return false, err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return false, nil // not up yet; keep polling
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK, nil
	})
	if err != nil && ctx.Err() != nil {
		return fmt.Errorf("service: %s not healthy: %w", c.BaseURL, err)
	}
	return err
}
