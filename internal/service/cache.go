package service

import (
	"container/list"
	"sync"
)

// resultCache is a size-bounded LRU of completed job results, keyed by
// the canonical job fingerprint. Only definitive outcomes (feasible
// mappings and infeasibility proofs) are stored — an Unknown answer is a
// budget artefact, not a property of the instance, so it must never be
// served to a later submission that might have a larger budget.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *JobResult
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result for key and refreshes its recency.
func (c *resultCache) Get(key string) (*JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Add stores (or refreshes) a result, evicting the least recently used
// entry when over capacity. A zero or negative capacity disables the
// cache entirely.
func (c *resultCache) Add(key string, res *JobResult) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
