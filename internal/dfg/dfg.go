// Package dfg implements the data-flow graph (DFG) representation used as
// the application input to CGRA mapping.
//
// A DFG is a directed graph whose vertices are operations and whose edges
// are data dependencies between operations (paper §3.1). Multi-fanout
// values are first-class: an operation produces at most one Value, and a
// Value records every (operation, operand-index) use. During mapping each
// use becomes a sub-value — an independent source-to-sink routing demand
// (paper Fig. 5).
package dfg

import (
	"fmt"
	"sort"
)

// Kind identifies the operation performed by a DFG node.
type Kind int

// Operation kinds. Input and Output are the I/O operations counted in the
// "I/Os" column of the paper's Table 1; loads and stores are internal
// operations executed on memory-port functional units.
const (
	Invalid Kind = iota
	Input
	Output
	Const
	Add
	Sub
	Mul
	Div
	Shl
	Shr
	And
	Or
	Xor
	Not
	Load
	Store
)

var kindNames = map[Kind]string{
	Invalid: "invalid",
	Input:   "input",
	Output:  "output",
	Const:   "const",
	Add:     "add",
	Sub:     "sub",
	Mul:     "mul",
	Div:     "div",
	Shl:     "shl",
	Shr:     "shr",
	And:     "and",
	Or:      "or",
	Xor:     "xor",
	Not:     "not",
	Load:    "load",
	Store:   "store",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// Kinds returns every valid operation kind in a stable order.
func Kinds() []Kind {
	ks := make([]Kind, 0, len(kindNames)-1)
	for k := range kindNames {
		if k != Invalid {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// String returns the lower-case mnemonic of the kind (e.g. "mul").
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindFromString resolves a mnemonic produced by Kind.String.
func KindFromString(s string) (Kind, error) {
	if k, ok := kindByName[s]; ok && k != Invalid {
		return k, nil
	}
	return Invalid, fmt.Errorf("dfg: unknown operation kind %q", s)
}

// NumOperands reports how many ordered operands an operation of this kind
// consumes.
func (k Kind) NumOperands() int {
	switch k {
	case Input, Const:
		return 0
	case Output, Not, Load:
		return 1
	case Store:
		return 2
	default:
		return 2
	}
}

// ProducesValue reports whether operations of this kind define a value.
// Output and Store operations are pure sinks.
func (k Kind) ProducesValue() bool {
	return k != Output && k != Store
}

// Commutative reports whether the two operands of a binary operation of
// this kind may be exchanged. The mapper uses this for operand-port
// correctness (paper constraint 6).
func (k Kind) Commutative() bool {
	switch k {
	case Add, Mul, And, Or, Xor:
		return true
	default:
		return false
	}
}

// IsIO reports whether the kind is an external I/O operation (counted in
// the "I/Os" column of Table 1).
func (k Kind) IsIO() bool { return k == Input || k == Output }

// IsMemory reports whether the kind accesses memory and therefore must be
// placed on a memory-port functional unit.
func (k Kind) IsMemory() bool { return k == Load || k == Store }

// Op is one operation vertex of a DFG.
type Op struct {
	// ID is the dense index of the operation within its graph.
	ID int
	// Name is the unique, human-readable name of the operation.
	Name string
	// Kind is the operation performed.
	Kind Kind
	// In holds the ordered operand values. len(In) == Kind.NumOperands().
	In []*Value
	// Out is the value defined by this operation, or nil when
	// Kind.ProducesValue() is false.
	Out *Value
}

func (o *Op) String() string { return fmt.Sprintf("%s(%s)", o.Name, o.Kind) }

// Use records one consumption of a value: operand Operand of operation Op.
type Use struct {
	Op      *Op
	Operand int
}

// Value is a value produced by an operation and consumed by zero or more
// operations. Each element of Uses is one sub-value (source-to-sink
// routing demand) during mapping.
type Value struct {
	// ID is the dense index of the value within its graph.
	ID int
	// Name is the unique name of the value (derived from its producer).
	Name string
	// Def is the operation defining this value.
	Def *Op
	// Uses lists every (op, operand) consumption in creation order.
	Uses []Use
}

func (v *Value) String() string { return v.Name }

// Graph is a data-flow graph. The zero value is unusable; create graphs
// with New.
type Graph struct {
	// Name identifies the kernel (e.g. a benchmark name).
	Name string

	ops    []*Op
	vals   []*Value
	byName map[string]*Op
}

// New returns an empty DFG with the given kernel name.
func New(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]*Op)}
}

// Ops returns the operations in creation order. The slice must not be
// modified.
func (g *Graph) Ops() []*Op { return g.ops }

// Vals returns the values in creation order. The slice must not be
// modified.
func (g *Graph) Vals() []*Value { return g.vals }

// NumOps returns the number of operations.
func (g *Graph) NumOps() int { return len(g.ops) }

// NumVals returns the number of values.
func (g *Graph) NumVals() int { return len(g.vals) }

// OpByName returns the operation with the given name, or nil.
func (g *Graph) OpByName(name string) *Op { return g.byName[name] }

// AddOp appends an operation consuming the given operand values and
// returns it. The operand count must match kind.NumOperands(), the name
// must be unique within the graph, and every operand must belong to this
// graph.
func (g *Graph) AddOp(name string, kind Kind, operands ...*Value) (*Op, error) {
	if kind == Invalid {
		return nil, fmt.Errorf("dfg: op %q has invalid kind", name)
	}
	if name == "" {
		return nil, fmt.Errorf("dfg: op name must be non-empty")
	}
	if _, dup := g.byName[name]; dup {
		return nil, fmt.Errorf("dfg: duplicate op name %q", name)
	}
	if got, want := len(operands), kind.NumOperands(); got != want {
		return nil, fmt.Errorf("dfg: op %q (%s) takes %d operands, got %d", name, kind, want, got)
	}
	for i, v := range operands {
		if v == nil {
			return nil, fmt.Errorf("dfg: op %q operand %d is nil", name, i)
		}
		if v.ID >= len(g.vals) || g.vals[v.ID] != v {
			return nil, fmt.Errorf("dfg: op %q operand %d (%s) belongs to a different graph", name, i, v)
		}
	}
	op := &Op{ID: len(g.ops), Name: name, Kind: kind, In: operands}
	for i, v := range operands {
		v.Uses = append(v.Uses, Use{Op: op, Operand: i})
	}
	if kind.ProducesValue() {
		val := &Value{ID: len(g.vals), Name: name, Def: op}
		op.Out = val
		g.vals = append(g.vals, val)
	}
	g.ops = append(g.ops, op)
	g.byName[name] = op
	return op, nil
}

// mustOp wraps AddOp for the fluent builder helpers; the helpers are used
// with programmatically constructed graphs where the error conditions are
// programming errors.
func (g *Graph) mustOp(name string, kind Kind, operands ...*Value) *Value {
	op, err := g.AddOp(name, kind, operands...)
	if err != nil {
		panic(err)
	}
	return op.Out
}

// In adds an input operation and returns its value.
func (g *Graph) In(name string) *Value { return g.mustOp(name, Input) }

// Out adds an output operation consuming v.
func (g *Graph) Out(name string, v *Value) { g.mustOp(name, Output, v) }

// Constant adds a constant operation and returns its value.
func (g *Graph) Constant(name string) *Value { return g.mustOp(name, Const) }

// Add adds an addition and returns its result value.
func (g *Graph) Add(name string, a, b *Value) *Value { return g.mustOp(name, Add, a, b) }

// Sub adds a subtraction and returns its result value.
func (g *Graph) Sub(name string, a, b *Value) *Value { return g.mustOp(name, Sub, a, b) }

// Mul adds a multiplication and returns its result value.
func (g *Graph) Mul(name string, a, b *Value) *Value { return g.mustOp(name, Mul, a, b) }

// Shl adds a left shift and returns its result value.
func (g *Graph) Shl(name string, a, b *Value) *Value { return g.mustOp(name, Shl, a, b) }

// Shr adds a right shift and returns its result value.
func (g *Graph) Shr(name string, a, b *Value) *Value { return g.mustOp(name, Shr, a, b) }

// Load adds a memory load from address addr and returns the loaded value.
func (g *Graph) Load(name string, addr *Value) *Value { return g.mustOp(name, Load, addr) }

// Store adds a memory store of data to address addr.
func (g *Graph) Store(name string, addr, data *Value) { g.mustOp(name, Store, addr, data) }

// Stats summarises a DFG the way the paper's Table 1 does.
type Stats struct {
	// IOs counts input and output operations.
	IOs int
	// Ops counts internal operations (everything that is not an I/O;
	// loads and stores are internal, matching Table 1).
	Ops int
	// Multiplies counts multiplication operations.
	Multiplies int
}

// Stats computes Table 1-style characteristics of the graph.
func (g *Graph) Stats() Stats {
	var s Stats
	for _, op := range g.ops {
		switch {
		case op.Kind.IsIO():
			s.IOs++
		default:
			s.Ops++
		}
		if op.Kind == Mul {
			s.Multiplies++
		}
	}
	return s
}

// OpsOfKind returns the number of operations of the given kind.
func (g *Graph) OpsOfKind(k Kind) int {
	n := 0
	for _, op := range g.ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

// NumSubVals returns the total number of sub-values (source-to-sink
// routing demands) in the graph.
func (g *Graph) NumSubVals() int {
	n := 0
	for _, v := range g.vals {
		n += len(v.Uses)
	}
	return n
}

// Validate checks the structural invariants of the graph: operand counts,
// def-use consistency and dense IDs. It does not require acyclicity —
// back-edges express loop-carried dependencies (paper §3.1).
func (g *Graph) Validate() error {
	for i, op := range g.ops {
		if op.ID != i {
			return fmt.Errorf("dfg %s: op %q has ID %d, want %d", g.Name, op.Name, op.ID, i)
		}
		if got, want := len(op.In), op.Kind.NumOperands(); got != want {
			return fmt.Errorf("dfg %s: op %q (%s) has %d operands, want %d", g.Name, op.Name, op.Kind, got, want)
		}
		if op.Kind.ProducesValue() != (op.Out != nil) {
			return fmt.Errorf("dfg %s: op %q (%s) output presence mismatch", g.Name, op.Name, op.Kind)
		}
		if g.byName[op.Name] != op {
			return fmt.Errorf("dfg %s: op %q not registered under its name", g.Name, op.Name)
		}
		for idx, v := range op.In {
			found := false
			for _, u := range v.Uses {
				if u.Op == op && u.Operand == idx {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dfg %s: op %q operand %d (%s) missing reciprocal use", g.Name, op.Name, idx, v)
			}
		}
	}
	for i, v := range g.vals {
		if v.ID != i {
			return fmt.Errorf("dfg %s: value %q has ID %d, want %d", g.Name, v.Name, v.ID, i)
		}
		if v.Def == nil || v.Def.Out != v {
			return fmt.Errorf("dfg %s: value %q def link broken", g.Name, v.Name)
		}
		for _, u := range v.Uses {
			if u.Operand < 0 || u.Operand >= len(u.Op.In) || u.Op.In[u.Operand] != v {
				return fmt.Errorf("dfg %s: value %q use by %q operand %d inconsistent", g.Name, v.Name, u.Op.Name, u.Operand)
			}
		}
	}
	return nil
}

// Acyclic reports whether the graph has no data-dependence cycles
// (i.e. no loop-carried back-edges).
func (g *Graph) Acyclic() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make([]int, len(g.ops))
	var visit func(op *Op) bool
	visit = func(op *Op) bool {
		state[op.ID] = grey
		if op.Out != nil {
			for _, u := range op.Out.Uses {
				switch state[u.Op.ID] {
				case grey:
					return false
				case white:
					if !visit(u.Op) {
						return false
					}
				}
			}
		}
		state[op.ID] = black
		return true
	}
	for _, op := range g.ops {
		if state[op.ID] == white && !visit(op) {
			return false
		}
	}
	return true
}

// CriticalPathLength returns the number of operations on the longest
// acyclic dependence chain. It reports an error if the graph has cycles.
func (g *Graph) CriticalPathLength() (int, error) {
	if !g.Acyclic() {
		return 0, fmt.Errorf("dfg %s: critical path undefined on cyclic graph", g.Name)
	}
	memo := make([]int, len(g.ops))
	for i := range memo {
		memo[i] = -1
	}
	var depth func(op *Op) int
	depth = func(op *Op) int {
		if memo[op.ID] >= 0 {
			return memo[op.ID]
		}
		best := 0
		for _, v := range op.In {
			if d := depth(v.Def); d > best {
				best = d
			}
		}
		memo[op.ID] = best + 1
		return best + 1
	}
	longest := 0
	for _, op := range g.ops {
		if d := depth(op); d > longest {
			longest = d
		}
	}
	return longest, nil
}
