package dfg

import "fmt"

// EvalOp computes the 32-bit result of a binary/unary operation kind.
// Shift amounts use the low five bits, mirroring RISC semantics.
func EvalOp(k Kind, a, b uint32) (uint32, error) {
	switch k {
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case Mul:
		return a * b, nil
	case Div:
		if b == 0 {
			return 0, fmt.Errorf("dfg: division by zero")
		}
		return a / b, nil
	case Shl:
		return a << (b & 31), nil
	case Shr:
		return a >> (b & 31), nil
	case And:
		return a & b, nil
	case Or:
		return a | b, nil
	case Xor:
		return a ^ b, nil
	case Not:
		return ^a, nil
	default:
		return 0, fmt.Errorf("dfg: %s is not an ALU operation", k)
	}
}

// EvalResult holds the observable effects of one kernel iteration.
type EvalResult struct {
	// Outputs maps output-operation names to the value they consumed.
	Outputs map[string]uint32
	// Stores maps addresses written by store operations to the stored
	// values.
	Stores map[uint32]uint32
}

// Eval executes one iteration of an acyclic DFG with the given input
// values (keyed by input-operation name) and initial memory. Loads read
// the initial memory; stores are collected into the result (the
// single-iteration memory model also used by the mapped-configuration
// simulator).
func (g *Graph) Eval(inputs map[string]uint32, mem map[uint32]uint32) (*EvalResult, error) {
	if !g.Acyclic() {
		return nil, fmt.Errorf("dfg %s: Eval requires an acyclic graph", g.Name)
	}
	res := &EvalResult{
		Outputs: make(map[string]uint32),
		Stores:  make(map[uint32]uint32),
	}
	vals := make([]uint32, g.NumVals())
	done := make([]bool, g.NumVals())

	var eval func(v *Value) (uint32, error)
	evalOpNode := func(op *Op) (uint32, error) {
		var in [2]uint32
		for i, v := range op.In {
			x, err := eval(v)
			if err != nil {
				return 0, err
			}
			in[i] = x
		}
		switch op.Kind {
		case Input:
			x, ok := inputs[op.Name]
			if !ok {
				return 0, fmt.Errorf("dfg %s: no input value for %q", g.Name, op.Name)
			}
			return x, nil
		case Const:
			return 0, nil
		case Load:
			return mem[in[0]], nil
		default:
			return EvalOp(op.Kind, in[0], in[1])
		}
	}
	eval = func(v *Value) (uint32, error) {
		if done[v.ID] {
			return vals[v.ID], nil
		}
		x, err := evalOpNode(v.Def)
		if err != nil {
			return 0, err
		}
		vals[v.ID] = x
		done[v.ID] = true
		return x, nil
	}

	for _, op := range g.Ops() {
		switch op.Kind {
		case Output:
			x, err := eval(op.In[0])
			if err != nil {
				return nil, err
			}
			res.Outputs[op.Name] = x
		case Store:
			addr, err := eval(op.In[0])
			if err != nil {
				return nil, err
			}
			data, err := eval(op.In[1])
			if err != nil {
				return nil, err
			}
			res.Stores[addr] = data
		default:
			if op.Out != nil {
				if _, err := eval(op.Out); err != nil {
					return nil, err
				}
			}
		}
	}
	return res, nil
}
