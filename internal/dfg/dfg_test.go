package dfg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildMAC(t *testing.T) *Graph {
	t.Helper()
	g := New("mac")
	a := g.In("a")
	b := g.In("b")
	p := g.Mul("p", a, b)
	s := g.Add("s", p, a)
	g.Out("o", s)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := buildMAC(t)
	if got := g.NumOps(); got != 5 {
		t.Errorf("NumOps = %d, want 5", got)
	}
	if got := g.NumVals(); got != 4 {
		t.Errorf("NumVals = %d, want 4 (output produces none)", got)
	}
	st := g.Stats()
	if st.IOs != 3 || st.Ops != 2 || st.Multiplies != 1 {
		t.Errorf("Stats = %+v, want {IOs:3 Ops:2 Multiplies:1}", st)
	}
	if !g.Acyclic() {
		t.Error("Acyclic = false, want true")
	}
	if cp, err := g.CriticalPathLength(); err != nil || cp != 4 {
		t.Errorf("CriticalPathLength = %d, %v; want 4 (in,mul,add,out)", cp, err)
	}
}

func TestMultiFanoutSubValues(t *testing.T) {
	g := buildMAC(t)
	a := g.OpByName("a").Out
	// a feeds the mul and the add: two sub-values.
	if len(a.Uses) != 2 {
		t.Fatalf("value a has %d uses, want 2", len(a.Uses))
	}
	if g.NumSubVals() != 5 {
		t.Errorf("NumSubVals = %d, want 5", g.NumSubVals())
	}
}

func TestSameValueBothOperands(t *testing.T) {
	g := New("square")
	x := g.In("x")
	sq := g.Mul("sq", x, x)
	g.Out("o", sq)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(x.Uses) != 2 {
		t.Fatalf("x.Uses = %d, want 2 (one sub-value per operand slot)", len(x.Uses))
	}
	if x.Uses[0].Operand == x.Uses[1].Operand {
		t.Error("both uses claim the same operand slot")
	}
}

func TestAddOpErrors(t *testing.T) {
	g := New("err")
	a := g.In("a")
	cases := []struct {
		name string
		fn   func() error
	}{
		{"duplicate name", func() error { _, err := g.AddOp("a", Input); return err }},
		{"wrong operand count", func() error { _, err := g.AddOp("x", Add, a); return err }},
		{"invalid kind", func() error { _, err := g.AddOp("x", Invalid); return err }},
		{"empty name", func() error { _, err := g.AddOp("", Input); return err }},
		{"nil operand", func() error { _, err := g.AddOp("x", Not, nil); return err }},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
	// Foreign value detection.
	h := New("other")
	b := h.In("b")
	if _, err := g.AddOp("y", Not, b); err == nil {
		t.Error("foreign operand accepted")
	}
}

func TestKindProperties(t *testing.T) {
	for _, k := range Kinds() {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Errorf("KindFromString(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Error("KindFromString(bogus) succeeded")
	}
	if !Add.Commutative() || Sub.Commutative() || Shl.Commutative() {
		t.Error("commutativity table wrong for add/sub/shl")
	}
	if Input.NumOperands() != 0 || Store.NumOperands() != 2 || Load.NumOperands() != 1 {
		t.Error("operand counts wrong for input/store/load")
	}
	if Output.ProducesValue() || Store.ProducesValue() || !Load.ProducesValue() {
		t.Error("ProducesValue wrong for output/store/load")
	}
	if !Load.IsMemory() || !Store.IsMemory() || Add.IsMemory() {
		t.Error("IsMemory wrong")
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("loop")
	a := g.In("a")
	// Manually wire a loop-carried dependence: acc = add(a, acc).
	op, err := g.AddOp("acc", Add, a, a)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire second operand to the op's own output (a back-edge).
	old := op.In[1]
	op.In[1] = op.Out
	// Fix use lists to keep the graph valid.
	old.Uses = old.Uses[:1]
	op.Out.Uses = append(op.Out.Uses, Use{Op: op, Operand: 1})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate on back-edge graph: %v", err)
	}
	if g.Acyclic() {
		t.Error("Acyclic = true on a graph with a back-edge")
	}
	if _, err := g.CriticalPathLength(); err == nil {
		t.Error("CriticalPathLength on cyclic graph should error")
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	src := `
# multiply-accumulate
dfg mac
input a
input b
mul p a b
add s p a
output o s
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Name != "mac" || g.NumOps() != 5 {
		t.Fatalf("parsed %s with %d ops", g.Name, g.NumOps())
	}
	text := g.FormatString()
	g2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if g2.FormatString() != text {
		t.Errorf("format not stable:\n%s\nvs\n%s", text, g2.FormatString())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"no header":         "input a\n",
		"bad header":        "dfg\n",
		"bad kind":          "dfg x\nfrobnicate a\n",
		"missing name":      "dfg x\ninput\n",
		"undefined operand": "dfg x\noutput o missing\n",
		"no value operand":  "dfg x\ninput a\noutput o a\noutput p o\n",
		"operand count":     "dfg x\ninput a\nadd s a\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildMAC(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", `"a" -> "p"`, "shape=box"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// randomGraph builds a random acyclic DFG from a seed. Used by the
// property tests below.
func randomGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New("rand")
	nIn := 1 + rng.Intn(6)
	vals := make([]*Value, 0, 32)
	for i := 0; i < nIn; i++ {
		vals = append(vals, g.In(names("in", i)))
	}
	kinds := []Kind{Add, Sub, Mul, Shl, Shr, And, Or, Xor, Not, Load}
	nOps := rng.Intn(20)
	for i := 0; i < nOps; i++ {
		k := kinds[rng.Intn(len(kinds))]
		var operands []*Value
		for j := 0; j < k.NumOperands(); j++ {
			operands = append(operands, vals[rng.Intn(len(vals))])
		}
		op, err := g.AddOp(names("op", i), k, operands...)
		if err != nil {
			panic(err)
		}
		vals = append(vals, op.Out)
	}
	nOut := 1 + rng.Intn(3)
	for i := 0; i < nOut; i++ {
		g.Out(names("out", i), vals[rng.Intn(len(vals))])
	}
	return g
}

func names(prefix string, i int) string {
	return prefix + "_" + string(rune('a'+i%26)) + string(rune('0'+i/26%10))
}

func TestRandomGraphInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed)
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !g.Acyclic() {
			t.Logf("seed %d: builder produced a cycle", seed)
			return false
		}
		// Sub-value count equals total operand edges.
		edges := 0
		for _, op := range g.Ops() {
			edges += len(op.In)
		}
		return g.NumSubVals() == edges
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomGraphTextRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed)
		text := g.FormatString()
		g2, err := ParseString(text)
		if err != nil {
			t.Logf("seed %d: reparse: %v", seed, err)
			return false
		}
		if g2.FormatString() != text {
			return false
		}
		s1, s2 := g.Stats(), g2.Stats()
		return s1 == s2 && g.NumSubVals() == g2.NumSubVals()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
