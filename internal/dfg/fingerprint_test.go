package dfg

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildRandom synthesises a random acyclic DFG from its own seeded
// source, naming every operation through name(i). Structure depends only
// on the seed, so two calls with different naming schemes build
// isomorphic graphs.
func buildRandom(seed int64, name func(int) string) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(fmt.Sprintf("rand-%s", name(0)))
	nOps := 3 + rng.Intn(12)
	var producers []*Value
	binaries := []Kind{Add, Sub, Mul, And, Or, Xor, Shl, Shr}
	for i := 0; i < nOps; i++ {
		var err error
		var op *Op
		switch {
		case len(producers) == 0 || rng.Intn(4) == 0:
			op, err = g.AddOp(name(g.NumOps()), Input)
		case rng.Intn(5) == 0:
			op, err = g.AddOp(name(g.NumOps()), Not, producers[rng.Intn(len(producers))])
		default:
			k := binaries[rng.Intn(len(binaries))]
			a := producers[rng.Intn(len(producers))]
			b := producers[rng.Intn(len(producers))]
			op, err = g.AddOp(name(g.NumOps()), k, a, b)
		}
		if err != nil {
			panic(err)
		}
		if op.Out != nil {
			producers = append(producers, op.Out)
		}
	}
	if _, err := g.AddOp(name(g.NumOps()), Output, producers[rng.Intn(len(producers))]); err != nil {
		panic(err)
	}
	return g
}

// TestFingerprintRenameInvariant: isomorphic graphs that differ only in
// operation names (and kernel name) fingerprint identically.
func TestFingerprintRenameInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		a := buildRandom(seed, func(i int) string { return fmt.Sprintf("op%d", i) })
		b := buildRandom(seed, func(i int) string { return fmt.Sprintf("node_%c_%d", 'a'+i%26, i) })
		return a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFingerprintStable: repeated fingerprints of the same graph value
// are identical (no map-iteration-order or other nondeterminism).
func TestFingerprintStable(t *testing.T) {
	prop := func(seed int64) bool {
		g := buildRandom(seed, func(i int) string { return fmt.Sprintf("op%d", i) })
		fp := g.Fingerprint()
		for i := 0; i < 5; i++ {
			if g.Fingerprint() != fp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFingerprintSemanticEdits: changing an operation kind, rewiring an
// operand, or appending an operation all change the fingerprint.
func TestFingerprintSemanticEdits(t *testing.T) {
	prop := func(seed int64) bool {
		base := buildRandom(seed, func(i int) string { return fmt.Sprintf("op%d", i) })
		fp := base.Fingerprint()

		// Kind edit: flip the first commutative binary op to Sub (or Add).
		kindEdit := buildRandom(seed, func(i int) string { return fmt.Sprintf("op%d", i) })
		for _, op := range kindEdit.Ops() {
			if len(op.In) == 2 && op.Kind != Store {
				if op.Kind == Sub {
					op.Kind = Add
				} else {
					op.Kind = Sub
				}
				if kindEdit.Fingerprint() == fp {
					return false
				}
				break
			}
		}

		// Edge edit: retarget a binary op's second operand to a different
		// producer, when the graph has one.
		edgeEdit := buildRandom(seed, func(i int) string { return fmt.Sprintf("op%d", i) })
		for _, op := range edgeEdit.Ops() {
			if len(op.In) != 2 {
				continue
			}
			var alt *Value
			for _, v := range edgeEdit.Vals() {
				// Keep the edit acyclic and distinct: reuse an earlier
				// producer that is not the current operand.
				if v.Def.ID < op.ID && v != op.In[1] {
					alt = v
					break
				}
			}
			if alt == nil {
				continue
			}
			op.In[1] = alt // structural edit is enough for hashing purposes
			if edgeEdit.Fingerprint() == fp {
				return false
			}
			break
		}

		// Growth edit: one more operation changes the key.
		grown := buildRandom(seed, func(i int) string { return fmt.Sprintf("op%d", i) })
		grown.In(fmt.Sprintf("op%d", grown.NumOps()))
		return grown.Fingerprint() != fp
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
