package dfg_test

import (
	"strings"
	"testing"

	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/workload"
)

// FuzzParseDFG throws arbitrary text at the DFG parser. The parser must
// never panic, and anything it accepts must be a structurally valid
// graph that round-trips through Format and reparses to the same text.
func FuzzParseDFG(f *testing.F) {
	// Seed with every built-in kernel's textual form plus a few
	// hand-picked near-miss inputs around the grammar's edges.
	for _, name := range bench.Names() {
		f.Add(bench.MustGet(name).FormatString())
	}
	for _, name := range bench.ExtraNames() {
		g, err := bench.GetExtra(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(g.FormatString())
	}
	f.Add("")
	f.Add("dfg")
	f.Add("dfg k\n")
	f.Add("dfg k\ninput a\noutput o a\n")
	f.Add("dfg k\ninput a\nadd s a a\n# comment\noutput o s\n")
	f.Add("dfg k\nadd s missing\n")
	f.Add("dfg k\noutput o o\n")
	f.Add("dfg k\ninput\n")
	f.Add("zorp k\ninput a\n")
	f.Add("dfg k\ninput a\ninput a\n")
	f.Add("dfg k\ninput a\nstore s a a a\n")
	// Generated workloads stress shapes the hand-written benchmarks
	// don't: deep chains, saturated fanout, memory traffic. (The
	// committed corpus under testdata/fuzz adds more.)
	for _, spec := range []workload.DFGSpec{
		{Seed: 1},
		{Seed: 2, Ops: 32, Depth: 16, MaxFanout: 1, MulDensity: 1, Inputs: 2, Outputs: 8},
		{Seed: 3, Ops: 12, Depth: 3, Inputs: 6, Outputs: 2, Loads: 4, Stores: 3},
	} {
		g, err := workload.GenerateDFG(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(g.FormatString())
	}
	for _, fam := range workload.Families() {
		g, err := workload.Kernel(fam, 6, 1)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(g.FormatString())
	}

	f.Fuzz(func(t *testing.T, text string) {
		g, err := dfg.ParseString(text)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid graph: %v\ninput: %q", verr, text)
		}
		formatted := g.FormatString()
		g2, err := dfg.ParseString(formatted)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\nformatted: %q", err, formatted)
		}
		if again := g2.FormatString(); again != formatted {
			t.Fatalf("format/parse round-trip unstable:\nfirst:  %q\nsecond: %q", formatted, again)
		}
		if !strings.HasPrefix(formatted, "dfg "+g.Name) {
			t.Fatalf("formatted graph lost its header: %q", formatted)
		}
	})
}
