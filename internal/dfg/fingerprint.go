package dfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Fingerprint returns a canonical content hash of the graph's semantic
// structure: the operation kinds and the def-use edge structure, with
// operand order preserved. Two graphs that differ only in operation (and
// hence value) names — or in the kernel name — fingerprint identically,
// while any semantic edit (an operation kind, an extra operation, a
// rewired operand) changes the hash. The computation iterates only the
// graph's dense slices, so it is independent of map iteration order by
// construction.
//
// The fingerprint is the content-addressing key the mapping service uses
// to deduplicate and cache solves: the ILP formulation is built from
// exactly the structure hashed here, so equal fingerprints (for a fixed
// architecture and mapper configuration) yield the same mappability
// answer.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte("cgramap/dfg/v1\n"))
	hashInt(h, len(g.ops))
	for _, op := range g.ops {
		hashInt(h, int(op.Kind))
		hashInt(h, len(op.In))
		for _, v := range op.In {
			// Operand identity is the producing operation's dense ID —
			// stable under renaming, sensitive to rewiring.
			hashInt(h, v.Def.ID)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashInt feeds one integer into the hash in a fixed-width encoding, so
// adjacent fields cannot alias (e.g. lengths bleeding into IDs).
func hashInt(h hash.Hash, v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	h.Write(buf[:])
}
