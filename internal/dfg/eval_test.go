package dfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvalOpSemantics(t *testing.T) {
	cases := []struct {
		k       Kind
		a, b    uint32
		want    uint32
		wantErr bool
	}{
		{Add, 3, 4, 7, false},
		{Sub, 3, 4, 0xffffffff, false},
		{Mul, 6, 7, 42, false},
		{Div, 42, 6, 7, false},
		{Div, 1, 0, 0, true},
		{Shl, 1, 4, 16, false},
		{Shl, 1, 36, 16, false}, // amount masked to 5 bits
		{Shr, 16, 4, 1, false},
		{And, 0b1100, 0b1010, 0b1000, false},
		{Or, 0b1100, 0b1010, 0b1110, false},
		{Xor, 0b1100, 0b1010, 0b0110, false},
		{Not, 0, 0, 0xffffffff, false},
		{Input, 0, 0, 0, true},
	}
	for _, c := range cases {
		got, err := EvalOp(c.k, c.a, c.b)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v", c.k, err)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.k, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalMAC(t *testing.T) {
	g := New("mac")
	a := g.In("a")
	b := g.In("b")
	p := g.Mul("p", a, b)
	s := g.Add("s", p, a)
	g.Out("o", s)
	res, err := g.Eval(map[string]uint32{"a": 3, "b": 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["o"] != 18 {
		t.Errorf("o = %d, want 18", res.Outputs["o"])
	}
}

func TestEvalMemory(t *testing.T) {
	g := New("memcopy")
	addr := g.In("addr")
	v := g.Load("ld", addr)
	two := g.Add("two", addr, addr)
	g.Store("st", two, v)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := g.Eval(map[string]uint32{"addr": 10}, map[uint32]uint32{10: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stores[20] != 99 {
		t.Errorf("stores = %v, want 20->99", res.Stores)
	}
}

func TestEvalErrors(t *testing.T) {
	g := New("e")
	x := g.In("x")
	g.Out("o", x)
	if _, err := g.Eval(map[string]uint32{}, nil); err == nil {
		t.Error("missing input accepted")
	}
	// Cyclic graph rejected.
	g2 := New("loop")
	a := g2.In("a")
	op, _ := g2.AddOp("acc", Add, a, a)
	old := op.In[1]
	op.In[1] = op.Out
	old.Uses = old.Uses[:1]
	op.Out.Uses = append(op.Out.Uses, Use{Op: op, Operand: 1})
	if _, err := g2.Eval(map[string]uint32{"a": 1}, nil); err == nil {
		t.Error("cyclic graph accepted")
	}
	// Division by zero propagates.
	g3 := New("div")
	n := g3.In("n")
	d := g3.In("d")
	q, _ := g3.AddOp("q", Div, n, d)
	g3.Out("o", q.Out)
	if _, err := g3.Eval(map[string]uint32{"n": 1, "d": 0}, nil); err == nil {
		t.Error("division by zero accepted")
	}
}

// TestEvalDeterministic: evaluation is a pure function of inputs.
func TestEvalDeterministic(t *testing.T) {
	prop := func(seed int64, a, b, c uint32) bool {
		g := randomGraph(seed)
		inputs := map[string]uint32{}
		vals := []uint32{a, b, c, a ^ b, b ^ c, a + c}
		i := 0
		for _, op := range g.Ops() {
			if op.Kind == Input {
				inputs[op.Name] = vals[i%len(vals)]
				i++
			}
		}
		mem := map[uint32]uint32{0: 1, 1: 2}
		r1, err1 := g.Eval(inputs, mem)
		r2, err2 := g.Eval(inputs, mem)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true // e.g. division by zero: consistent failure is fine
		}
		for k, v := range r1.Outputs {
			if r2.Outputs[k] != v {
				return false
			}
		}
		return len(r1.Outputs) == len(r2.Outputs)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
