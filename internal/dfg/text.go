package dfg

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The textual DFG format is line oriented:
//
//	dfg <kernel-name>
//	<kind> <op-name> [operand-op-name...]
//
// Operands name the *operation* that produces the consumed value, so an
// operation must be declared before it is used (back-edges can be added
// only programmatically). '#' starts a comment; blank lines are ignored.
//
// Example (multiply-accumulate fragment):
//
//	dfg mac
//	input a
//	input b
//	mul t a b
//	add s t a
//	output o s

// Parse reads a DFG in the textual format from r.
func Parse(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if g == nil {
			if fields[0] != "dfg" || len(fields) != 2 {
				return nil, fmt.Errorf("dfg: line %d: expected header \"dfg <name>\", got %q", lineNo, line)
			}
			g = New(fields[1])
			continue
		}
		kind, err := KindFromString(fields[0])
		if err != nil {
			return nil, fmt.Errorf("dfg: line %d: %v", lineNo, err)
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("dfg: line %d: missing op name", lineNo)
		}
		name := fields[1]
		operands := make([]*Value, 0, len(fields)-2)
		for _, opnd := range fields[2:] {
			src := g.OpByName(opnd)
			if src == nil {
				return nil, fmt.Errorf("dfg: line %d: op %q uses undefined operand %q", lineNo, name, opnd)
			}
			if src.Out == nil {
				return nil, fmt.Errorf("dfg: line %d: op %q uses %q, which produces no value", lineNo, name, opnd)
			}
			operands = append(operands, src.Out)
		}
		if _, err := g.AddOp(name, kind, operands...); err != nil {
			return nil, fmt.Errorf("dfg: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dfg: reading input: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("dfg: empty input, expected \"dfg <name>\" header")
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }

// Format writes the graph in the textual format accepted by Parse.
// Operations are emitted in creation order, which for graphs built through
// AddOp is a valid definition-before-use order when the graph is acyclic.
func (g *Graph) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "dfg %s\n", g.Name)
	for _, op := range g.ops {
		fmt.Fprintf(bw, "%s %s", op.Kind, op.Name)
		for _, v := range op.In {
			fmt.Fprintf(bw, " %s", v.Def.Name)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// FormatString returns the textual form of the graph.
func (g *Graph) FormatString() string {
	var sb strings.Builder
	if err := g.Format(&sb); err != nil {
		return ""
	}
	return sb.String()
}

// WriteDOT emits a Graphviz rendering of the DFG: boxes for I/O
// operations, ellipses for compute, with operand indices on edges of
// non-commutative consumers.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", g.Name)
	fmt.Fprintf(bw, "  rankdir=TB;\n")
	for _, op := range g.ops {
		shape := "ellipse"
		if op.Kind.IsIO() {
			shape = "box"
		}
		fmt.Fprintf(bw, "  %q [label=\"%s\\n%s\", shape=%s];\n", op.Name, op.Name, op.Kind, shape)
	}
	for _, v := range g.vals {
		for _, u := range v.Uses {
			if u.Op.Kind.Commutative() || len(u.Op.In) < 2 {
				fmt.Fprintf(bw, "  %q -> %q;\n", v.Def.Name, u.Op.Name)
			} else {
				fmt.Fprintf(bw, "  %q -> %q [label=\"%d\"];\n", v.Def.Name, u.Op.Name, u.Operand)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
