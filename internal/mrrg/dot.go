package mrrg

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT emits a Graphviz rendering of the MRRG, with one cluster per
// context, FuncUnit nodes as boxes and routing resources as ellipses.
// Cross-context (register) edges are drawn dashed.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", g.Arch.Name)
	for c := 0; c < g.Contexts; c++ {
		fmt.Fprintf(bw, "  subgraph cluster_ctx%d {\n    label=\"context %d\";\n", c, c)
		for _, n := range g.Nodes {
			if n.Context != c {
				continue
			}
			shape := "ellipse"
			if n.Kind == FuncUnit {
				shape = "box"
			}
			fmt.Fprintf(bw, "    n%d [label=%q, shape=%s];\n", n.ID, n.Name, shape)
		}
		fmt.Fprintln(bw, "  }")
	}
	for _, n := range g.Nodes {
		for _, f := range n.Fanouts {
			style := ""
			if g.Nodes[f].Context != n.Context {
				style = " [style=dashed]"
			}
			fmt.Fprintf(bw, "  n%d -> n%d%s;\n", n.ID, f, style)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
