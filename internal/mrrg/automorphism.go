package mrrg

import (
	"fmt"
	"strconv"
	"strings"

	"cgramap/internal/arch"
)

// LiftAutomorphism lifts a verified architecture automorphism
// (arch.Discover) to the MRRG: it returns the node permutation nodeMap
// with nodeMap[id] the image node of id. The lift acts uniformly on
// contexts — primitive i's replica in context c maps to Perm[i]'s
// replica in context c — which is well-defined at every II because
// automorphisms preserve each primitive's II and latency, so the image
// primitive fires and produces in exactly the same contexts.
//
// Because node names are "c<ctx>.<prim><suffix>", the lift is computed
// by name rewriting: swap the primitive segment for its image and remap
// multiplexer pin suffixes through the automorphism's port permutation
// (FU operand ports are never permuted). An error means the
// automorphism does not actually fit this graph — the defensive check
// the mapper relies on before emitting symmetry constraints.
func LiftAutomorphism(g *Graph, auto *arch.Automorphism) ([]int, error) {
	if len(auto.Perm) != len(g.Arch.Prims) {
		return nil, fmt.Errorf("mrrg: automorphism over %d primitives, graph has %d", len(auto.Perm), len(g.Arch.Prims))
	}
	nodeMap := make([]int, len(g.Nodes))
	for id, n := range g.Nodes {
		pname := g.Arch.Prims[n.Prim].Name
		qname := g.Arch.Prims[auto.Perm[n.Prim]].Name
		dot := strings.IndexByte(n.Name, '.')
		if dot < 0 || !strings.HasPrefix(n.Name[dot+1:], pname) {
			return nil, fmt.Errorf("mrrg: node %q does not carry primitive name %q", n.Name, pname)
		}
		suffix := n.Name[dot+1+len(pname):]
		if n.PinPort >= 0 && auto.PortPerm[n.Prim] != nil {
			suffix = ".in" + strconv.Itoa(auto.PortPerm[n.Prim][n.PinPort])
		}
		img := g.NodeByName(n.Name[:dot+1] + qname + suffix)
		if img == nil {
			return nil, fmt.Errorf("mrrg: automorphism %s has no image for node %q", auto.Name, n.Name)
		}
		nodeMap[id] = img.ID
	}
	// The lift of a bijection by total name rewriting is a bijection,
	// but verify cheaply rather than trust the rewrite.
	seen := make([]bool, len(nodeMap))
	for _, img := range nodeMap {
		if seen[img] {
			return nil, fmt.Errorf("mrrg: automorphism %s lift is not a permutation", auto.Name)
		}
		seen[img] = true
	}
	return nodeMap, nil
}
