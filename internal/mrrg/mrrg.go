// Package mrrg implements the Modulo Routing Resource Graph (MRRG)
// abstraction of a CGRA (paper §3.2, after Mei et al., DRESC).
//
// An MRRG is a directed graph with two vertex classes: routing resources
// (RouteRes) and functional-unit execution slots (FuncUnit). The graph
// contains one replica of the device resources per execution context;
// registers produce edges that cross from context i to context
// (i+1) mod N, modelling values that are produced in one context and
// consumed in the next (paper Fig. 1).
package mrrg

import (
	"fmt"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
)

// NodeKind classifies MRRG vertices (paper §3.2).
type NodeKind int

const (
	// RouteRes is a routing resource: a wire, bus, multiplexer or
	// register time-slot, including functional-unit operand ports and
	// outputs.
	RouteRes NodeKind = iota + 1
	// FuncUnit is an execution time-slot of a physical functional
	// unit.
	FuncUnit
)

// String returns "route" or "fu".
func (k NodeKind) String() string {
	switch k {
	case RouteRes:
		return "route"
	case FuncUnit:
		return "fu"
	default:
		return fmt.Sprintf("nodekind(%d)", int(k))
	}
}

// Node is one MRRG vertex.
type Node struct {
	// ID is the dense node index within the graph.
	ID int
	// Kind distinguishes routing resources from functional units.
	Kind NodeKind
	// Name is the unique node name, e.g. "c0.pe_1_2.mux_a".
	Name string
	// Context is the execution context (cycle modulo N) of the node.
	Context int
	// Prim indexes the architecture primitive this node was expanded
	// from.
	Prim int
	// Cost is the objective weight of using this routing resource.
	Cost int

	// Ops lists the operations executable on a FuncUnit node.
	Ops []dfg.Kind

	// OperandPort is the operand index carried by a functional-unit
	// input-port node, or -1 for every other node.
	OperandPort int
	// PinPort is, for multiplexer input-pin nodes, the selectable
	// input index of the owning multiplexer; -1 otherwise. Used for
	// configuration extraction.
	PinPort int
	// FUNode is, for operand-port and output nodes, the FuncUnit node
	// they attach to; -1 otherwise.
	FUNode int

	// PortNodes and OutNode are set on FuncUnit nodes: the operand
	// port node per operand index, and the result node.
	PortNodes []int
	OutNode   int

	// Fanouts and Fanins are adjacent node IDs.
	Fanouts []int
	Fanins  []int
}

// SupportsOp reports whether a FuncUnit node can execute operations of
// kind k.
func (n *Node) SupportsOp(k dfg.Kind) bool {
	for _, o := range n.Ops {
		if o == k {
			return true
		}
	}
	return false
}

func (n *Node) String() string { return n.Name }

// Graph is a complete MRRG.
type Graph struct {
	// Arch is the architecture the graph was generated from.
	Arch *arch.Arch
	// Contexts is the number of context replicas (equals Arch.Contexts).
	Contexts int
	// Nodes holds every vertex; Node.ID indexes this slice.
	Nodes []*Node

	byName    map[string]int
	funcUnits []int
}

// NodeByName returns the named node, or nil.
func (g *Graph) NodeByName(name string) *Node {
	if i, ok := g.byName[name]; ok {
		return g.Nodes[i]
	}
	return nil
}

// FuncUnits returns the IDs of all FuncUnit nodes. The slice must not be
// modified.
func (g *Graph) FuncUnits() []int { return g.funcUnits }

// NumRouteRes returns the number of routing-resource nodes.
func (g *Graph) NumRouteRes() int { return len(g.Nodes) - len(g.funcUnits) }

// Stats summarises an MRRG.
type Stats struct {
	Nodes, Edges, FuncUnits, RouteRes int
	// CrossContextEdges counts edges between different context
	// replicas (register traversals).
	CrossContextEdges int
}

// Stats computes summary counts.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: len(g.Nodes), FuncUnits: len(g.funcUnits)}
	s.RouteRes = s.Nodes - s.FuncUnits
	for _, n := range g.Nodes {
		s.Edges += len(n.Fanouts)
		for _, f := range n.Fanouts {
			if g.Nodes[f].Context != n.Context {
				s.CrossContextEdges++
			}
		}
	}
	return s
}

// Validate checks the structural invariants the ILP formulation relies
// on:
//
//   - fanin/fanout reciprocity and dense IDs;
//   - FuncUnit nodes connect only port nodes (in) and an output routing
//     node (out);
//   - operand-port nodes have the FU as their only fanout;
//   - every directed cycle passes through a multi-fanin routing node, so
//     the Multiplexer Input Exclusivity constraint (paper eq. 9 and
//     Example 2) is sufficient to prevent self-reinforcing routing loops.
func (g *Graph) Validate() error {
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("mrrg: node %q ID %d, want %d", n.Name, n.ID, i)
		}
		if g.byName[n.Name] != i {
			return fmt.Errorf("mrrg: node %q not indexed by name", n.Name)
		}
		if n.Context < 0 || n.Context >= g.Contexts {
			return fmt.Errorf("mrrg: node %q context %d out of range", n.Name, n.Context)
		}
		for _, f := range n.Fanouts {
			if f < 0 || f >= len(g.Nodes) {
				return fmt.Errorf("mrrg: node %q fanout out of range", n.Name)
			}
			if !contains(g.Nodes[f].Fanins, i) {
				return fmt.Errorf("mrrg: edge %q->%q missing reciprocal fanin", n.Name, g.Nodes[f].Name)
			}
		}
		for _, f := range n.Fanins {
			if !contains(g.Nodes[f].Fanouts, i) {
				return fmt.Errorf("mrrg: edge %q<-%q missing reciprocal fanout", n.Name, g.Nodes[f].Name)
			}
		}
		switch n.Kind {
		case FuncUnit:
			if len(n.Ops) == 0 {
				return fmt.Errorf("mrrg: FuncUnit %q supports no ops", n.Name)
			}
			for _, p := range n.Fanins {
				if g.Nodes[p].OperandPort < 0 || g.Nodes[p].FUNode != i {
					return fmt.Errorf("mrrg: FuncUnit %q fanin %q is not its operand port", n.Name, g.Nodes[p].Name)
				}
			}
			if len(n.Fanouts) != 1 || g.Nodes[n.Fanouts[0]].Kind != RouteRes {
				return fmt.Errorf("mrrg: FuncUnit %q must have exactly one routing output", n.Name)
			}
			if n.OutNode != n.Fanouts[0] {
				return fmt.Errorf("mrrg: FuncUnit %q OutNode inconsistent", n.Name)
			}
			for op, p := range n.PortNodes {
				if g.Nodes[p].OperandPort != op || g.Nodes[p].FUNode != i {
					return fmt.Errorf("mrrg: FuncUnit %q port %d inconsistent", n.Name, op)
				}
			}
		case RouteRes:
			if n.OperandPort >= 0 {
				if len(n.Fanouts) != 1 || n.Fanouts[0] != n.FUNode {
					return fmt.Errorf("mrrg: port node %q must feed only its FU", n.Name)
				}
			}
			for _, f := range n.Fanouts {
				fn := g.Nodes[f]
				if fn.Kind == FuncUnit && n.OperandPort < 0 {
					return fmt.Errorf("mrrg: non-port routing node %q feeds FuncUnit %q", n.Name, fn.Name)
				}
			}
		default:
			return fmt.Errorf("mrrg: node %q has invalid kind", n.Name)
		}
	}
	if err := g.checkCyclesGated(); err != nil {
		return err
	}
	return nil
}

// checkCyclesGated verifies that the subgraph obtained by removing all
// multi-fanin routing nodes is acyclic. This is the property that makes
// constraint (9) a complete loop guard.
func (g *Graph) checkCyclesGated() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make([]int, len(g.Nodes))
	skip := func(n *Node) bool { return n.Kind == RouteRes && len(n.Fanins) > 1 }
	// Iterative DFS to avoid recursion depth issues on large graphs.
	type frame struct{ node, next int }
	for start, n := range g.Nodes {
		if skip(n) || state[start] != white {
			continue
		}
		stack := []frame{{start, 0}}
		state[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			node := g.Nodes[f.node]
			if f.next < len(node.Fanouts) {
				next := node.Fanouts[f.next]
				f.next++
				if skip(g.Nodes[next]) {
					continue
				}
				switch state[next] {
				case grey:
					return fmt.Errorf("mrrg: cycle through %q not gated by a multi-fanin node", g.Nodes[next].Name)
				case white:
					state[next] = grey
					stack = append(stack, frame{next, 0})
				}
				continue
			}
			state[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
