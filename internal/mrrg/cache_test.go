package mrrg

import (
	"sync"
	"testing"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
)

func gridArch(t *testing.T, spec arch.GridSpec) *arch.Arch {
	t.Helper()
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatalf("Grid(%+v): %v", spec, err)
	}
	return a
}

func TestCacheHitSharesGraph(t *testing.T) {
	c := NewCache(4)
	a := gridArch(t, arch.GridSpec{Rows: 2, Cols: 2, Contexts: 2})
	g1, err := c.Generate(a)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// A structurally identical but distinct Arch value must hit.
	b := gridArch(t, arch.GridSpec{Rows: 2, Cols: 2, Contexts: 2})
	g2, err := c.Generate(b)
	if err != nil {
		t.Fatalf("Generate (repeat): %v", err)
	}
	if g1 != g2 {
		t.Fatalf("repeat generation did not return the cached graph")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
	if s.Bytes <= 0 {
		t.Fatalf("stats.Bytes = %d, want > 0", s.Bytes)
	}
}

func TestCacheKeyDistinguishesContexts(t *testing.T) {
	c := NewCache(4)
	for _, contexts := range []int{1, 2, 3} {
		a := gridArch(t, arch.GridSpec{Rows: 2, Cols: 2, Contexts: contexts})
		g, err := c.Generate(a)
		if err != nil {
			t.Fatalf("Generate(c%d): %v", contexts, err)
		}
		if g.Contexts != contexts {
			t.Fatalf("Generate(c%d) returned a %d-context graph", contexts, g.Contexts)
		}
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 3 || s.Entries != 3 {
		t.Fatalf("stats = %+v, want 0 hits / 3 misses / 3 entries", s)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	specs := []arch.GridSpec{
		{Rows: 2, Cols: 2, Contexts: 1},
		{Rows: 2, Cols: 2, Contexts: 2},
		{Rows: 2, Cols: 3, Contexts: 1},
	}
	for _, s := range specs {
		if _, err := c.Generate(gridArch(t, s)); err != nil {
			t.Fatalf("Generate: %v", err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction after overflow", s)
	}
	// The first (least recently used) entry was evicted: regenerating it
	// must miss; the most recent entries must still hit.
	if _, err := c.Generate(gridArch(t, specs[0])); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := c.Stats(); got.Misses != 4 {
		t.Fatalf("misses = %d after re-requesting evicted entry, want 4", got.Misses)
	}
	if _, err := c.Generate(gridArch(t, specs[2])); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("hits = %d after re-requesting recent entry, want 1", got.Hits)
	}
}

func TestCacheBytesShrinkOnEviction(t *testing.T) {
	c := NewCache(1)
	small := gridArch(t, arch.GridSpec{Rows: 2, Cols: 2, Contexts: 1})
	big := gridArch(t, arch.GridSpec{Rows: 4, Cols: 4, Contexts: 2})
	if _, err := c.Generate(big); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	bigBytes := c.Stats().Bytes
	if _, err := c.Generate(small); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	s := c.Stats()
	if s.Entries != 1 || s.Bytes <= 0 || s.Bytes >= bigBytes {
		t.Fatalf("stats = %+v after evicting larger graph, want 1 smaller entry (big was %d bytes)", s, bigBytes)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	a := gridArch(t, arch.GridSpec{Rows: 2, Cols: 2, Contexts: 1})
	g1, err := c.Generate(a)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	g2, err := c.Generate(a)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g1 == g2 {
		t.Fatalf("disabled cache returned a shared graph")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("disabled cache retained entries: %+v", s)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4)
	// An FU with II 2 cannot be replicated into 3 contexts: generation
	// fails, and the failure must not occupy a cache slot or poison
	// later requests.
	b := arch.NewBuilder("bad", 3)
	src := b.FU("src", []dfg.Kind{dfg.Input}, 1, 0, 1)
	slow := b.FU("slow", []dfg.Kind{dfg.Not}, 1, 0, 2)
	b.Connect(src, slow, 0)
	b.Connect(slow, src, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Generate(a); err == nil {
			t.Fatalf("Generate attempt %d: expected II-divisibility error", i)
		}
	}
	s := c.Stats()
	if s.Entries != 0 || s.Hits != 0 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want errors uncached (0 entries, 2 misses)", s)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(4)
	a := gridArch(t, arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Contexts: 2})
	const callers = 16
	graphs := make([]*Graph, callers)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			g, err := c.Generate(a)
			if err != nil {
				t.Errorf("Generate: %v", err)
				return
			}
			graphs[i] = g
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := 1; i < callers; i++ {
		if graphs[i] != graphs[0] {
			t.Fatalf("caller %d received a different graph: single-flight failed", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d for %d concurrent identical requests, want 1 (single-flight)", s.Misses, callers)
	}
	if s.Hits != callers-1 {
		t.Fatalf("hits = %d, want %d", s.Hits, callers-1)
	}
}
