package mrrg

import (
	"testing"

	"cgramap/internal/arch"
)

// TestLiftAutomorphismPreservesGraph lifts every verified fabric
// automorphism to the MRRG at several IIs and checks the lift is a
// genuine graph automorphism: kinds, contexts, costs, operand ports
// and every edge are preserved.
func TestLiftAutomorphismPreservesGraph(t *testing.T) {
	for _, contexts := range []int{1, 2} {
		for _, homo := range []bool{true, false} {
			spec := arch.GridSpec{Rows: 4, Cols: 4, Interconnect: arch.Diagonal, Homogeneous: homo, Contexts: contexts}
			a, err := arch.Grid(spec)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Generate(a)
			if err != nil {
				t.Fatal(err)
			}
			syms := arch.Discover(a)
			if syms.Trivial() {
				t.Fatalf("%s: no symmetry discovered", spec.Name())
			}
			for gi := range syms.Gens {
				auto := &syms.Gens[gi]
				nodeMap, err := LiftAutomorphism(g, auto)
				if err != nil {
					t.Fatalf("%s/%s: %v", spec.Name(), auto.Name, err)
				}
				edge := make(map[[2]int]bool)
				for _, n := range g.Nodes {
					for _, to := range n.Fanouts {
						edge[[2]int{n.ID, to}] = true
					}
				}
				for _, n := range g.Nodes {
					m := g.Nodes[nodeMap[n.ID]]
					if n.Kind != m.Kind || n.Context != m.Context || n.Cost != m.Cost || n.OperandPort != m.OperandPort {
						t.Fatalf("%s/%s: %q -> %q invariant mismatch", spec.Name(), auto.Name, n.Name, m.Name)
					}
					for _, to := range n.Fanouts {
						if !edge[[2]int{m.ID, nodeMap[to]}] {
							t.Fatalf("%s/%s: edge %q->%q has no image", spec.Name(), auto.Name, n.Name, g.Nodes[to].Name)
						}
					}
				}
			}
		}
	}
}
