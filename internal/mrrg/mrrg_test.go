package mrrg

import (
	"strings"
	"testing"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
)

// wireFU builds a minimal architecture: src FU -> mux -> dst FU port 0,
// a second mux input from a register fed by dst, so everything is driven.
func muxRegArch(t *testing.T, contexts int) *arch.Arch {
	t.Helper()
	b := arch.NewBuilder("muxreg", contexts)
	src := b.FU("src", []dfg.Kind{dfg.Input, dfg.Output}, 1, 0, 1)
	mux := b.Mux("mux", 2)
	reg := b.Reg("reg")
	dst := b.FU("dst", []dfg.Kind{dfg.Add, dfg.Sub}, 2, 0, 1)
	b.Connect(src, mux, 0)
	b.Connect(reg, mux, 1)
	b.Connect(mux, dst, 0)
	b.Connect(mux, dst, 1)
	b.Connect(dst, reg, 0)
	b.Connect(dst, src, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestFigure1MuxAndRegister checks the expansion of a multiplexer and a
// register (paper Fig. 1): the mux is a single exclusive routing node per
// context with one fanin per selectable input, and the register's input
// in cycle i connects to its output in cycle i+1 mod N.
func TestFigure1MuxAndRegister(t *testing.T) {
	g, err := Generate(muxRegArch(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	mux0 := g.NodeByName("c0.mux")
	if mux0 == nil || mux0.Kind != RouteRes {
		t.Fatal("c0.mux missing")
	}
	if len(mux0.Fanins) != 2 {
		t.Errorf("mux fanins = %d, want 2 (one per selectable input)", len(mux0.Fanins))
	}
	regIn0 := g.NodeByName("c0.reg.in")
	regOut1 := g.NodeByName("c1.reg.out")
	if regIn0 == nil || regOut1 == nil {
		t.Fatal("register nodes missing")
	}
	if len(regIn0.Fanouts) != 1 || regIn0.Fanouts[0] != regOut1.ID {
		t.Errorf("register c0 input should feed c1 output (value moves to next cycle)")
	}
	// Modulo wrap: context 1 input feeds context 0 output.
	regIn1 := g.NodeByName("c1.reg.in")
	regOut0 := g.NodeByName("c0.reg.out")
	if regIn1.Fanouts[0] != regOut0.ID {
		t.Error("register wrap edge c1.in -> c0.out missing")
	}
}

// TestFigure1SingleContext: with one context the register's next-cycle
// edge wraps to the same replica (i+1 mod 1 == i).
func TestFigure1SingleContext(t *testing.T) {
	g, err := Generate(muxRegArch(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	in := g.NodeByName("c0.reg.in")
	out := g.NodeByName("c0.reg.out")
	if in.Fanouts[0] != out.ID {
		t.Error("single-context register must wrap to itself")
	}
	if s := g.Stats(); s.CrossContextEdges != 0 {
		t.Errorf("single context has %d cross-context edges, want 0", s.CrossContextEdges)
	}
}

// fuArch builds one FU with the given latency/II plus a feeding input FU,
// all ports driven.
func fuArch(t *testing.T, contexts, latency, ii int) *arch.Arch {
	t.Helper()
	b := arch.NewBuilder("fuarch", contexts)
	src := b.FU("src", []dfg.Kind{dfg.Input}, 0, 0, 1)
	mul := b.FU("mul", []dfg.Kind{dfg.Mul}, 2, latency, ii)
	sink := b.FU("sink", []dfg.Kind{dfg.Output}, 1, 0, 1)
	b.Connect(src, mul, 0)
	b.Connect(src, mul, 1)
	b.Connect(mul, sink, 0)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestFigure2LatencyII covers the paper's Fig. 2: FU expansion for
// (L=1,II=1), (L=2,II=2) and (L=2,II=1) across 4 contexts.
func TestFigure2LatencyII(t *testing.T) {
	cases := []struct {
		latency, ii   int
		wantInstances int // FuncUnit nodes for "mul" in 4 contexts
		firing        int // context of first instance
		outCtx        int // context of its output node
	}{
		{1, 1, 4, 0, 1},
		{2, 2, 2, 0, 2},
		{2, 1, 4, 0, 2},
	}
	for _, c := range cases {
		g, err := Generate(fuArch(t, 4, c.latency, c.ii))
		if err != nil {
			t.Fatalf("L=%d II=%d: %v", c.latency, c.ii, err)
		}
		instances := 0
		for _, id := range g.FuncUnits() {
			if strings.HasSuffix(g.Nodes[id].Name, ".mul") {
				instances++
			}
		}
		if instances != c.wantInstances {
			t.Errorf("L=%d II=%d: %d instances, want %d (replicated every II cycles)",
				c.latency, c.ii, instances, c.wantInstances)
		}
		fu := g.NodeByName("c0.mul")
		if fu == nil {
			t.Fatalf("L=%d II=%d: c0.mul missing", c.latency, c.ii)
		}
		out := g.Nodes[fu.OutNode]
		if out.Context != c.outCtx {
			t.Errorf("L=%d II=%d: output context %d, want %d (output delayed by latency)",
				c.latency, c.ii, out.Context, c.outCtx)
		}
	}
}

// TestFigure2IIMustDivideContexts: the modulo wheel only closes when the
// firing pattern repeats within it, so an FU's II must divide the context
// count.
func TestFigure2IIMustDivideContexts(t *testing.T) {
	if _, err := Generate(fuArch(t, 3, 0, 2)); err == nil {
		t.Error("II=2 with 3 contexts accepted; firing pattern cannot repeat")
	}
	if _, err := Generate(fuArch(t, 4, 0, 2)); err != nil {
		t.Errorf("II=2 with 4 contexts rejected: %v", err)
	}
}

// TestFigure3FunctionalBlock expands the paper's Fig. 3 functional block
// (FU latency 0, register, input muxes, output mux) for one context and
// checks its MRRG shape.
func TestFigure3FunctionalBlock(t *testing.T) {
	spec := arch.GridSpec{Rows: 2, Cols: 2, Interconnect: arch.Orthogonal, Homogeneous: true, Contexts: 1}
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	alu := g.NodeByName("c0.pe_0_0.alu")
	if alu == nil || alu.Kind != FuncUnit {
		t.Fatal("alu FuncUnit node missing")
	}
	if len(alu.PortNodes) != 2 {
		t.Fatalf("alu ports = %d, want 2", len(alu.PortNodes))
	}
	// Latency 0: output node in the same context.
	if g.Nodes[alu.OutNode].Context != 0 {
		t.Error("latency-0 ALU output must stay in the same context")
	}
	// Operand port is fed by the corresponding operand mux.
	port0 := g.Nodes[alu.PortNodes[0]]
	muxA := g.NodeByName("c0.pe_0_0.mux_a")
	if len(port0.Fanins) != 1 || port0.Fanins[0] != muxA.ID {
		t.Error("alu port 0 should be driven by mux_a")
	}
	// The register is written through its write mux, which selects the
	// ALU result or any block input (router mode).
	regIn := g.NodeByName("c0.pe_0_0.reg.in")
	muxR := g.NodeByName("c0.pe_0_0.mux_r")
	if len(regIn.Fanins) != 1 || regIn.Fanins[0] != muxR.ID {
		t.Error("register should be driven by its write mux")
	}
	if len(muxR.Fanins) < 3 {
		t.Errorf("write mux fanins = %d, want ALU plus block inputs", len(muxR.Fanins))
	}
}

func TestGridMRRGValidatesAndScales(t *testing.T) {
	for _, spec := range arch.PaperArchitectures() {
		a, err := arch.Grid(spec)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Generate(a)
		if err != nil {
			t.Errorf("%s: %v", spec.Name(), err)
			continue
		}
		st := g.Stats()
		// 36 FUs per context replica.
		if st.FuncUnits != 36*spec.Contexts {
			t.Errorf("%s: FuncUnits = %d, want %d", spec.Name(), st.FuncUnits, 36*spec.Contexts)
		}
		if spec.Contexts == 2 && st.CrossContextEdges == 0 {
			t.Errorf("%s: no cross-context edges despite 2 contexts", spec.Name())
		}
		if spec.Contexts == 1 && st.CrossContextEdges != 0 {
			t.Errorf("%s: cross-context edges in single context", spec.Name())
		}
	}
}

func TestContextReplicasIdentical(t *testing.T) {
	a, err := arch.Grid(arch.GridSpec{Rows: 3, Cols: 3, Interconnect: arch.Diagonal, Homogeneous: false, Contexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	perCtx := make([]int, g.Contexts)
	for _, n := range g.Nodes {
		perCtx[n.Context]++
	}
	if perCtx[0] != perCtx[1] {
		t.Errorf("replica sizes differ: %v (all primitives here are II=1)", perCtx)
	}
}

func TestCompatibleSink(t *testing.T) {
	g, err := Generate(muxRegArch(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	dfgG := dfg.New("k")
	x := dfgG.In("x")
	y := dfgG.In("y")
	add := dfgG.Add("s", x, y)
	subOp, _ := dfgG.AddOp("d", dfg.Sub, x, y)
	dfgG.Out("o", add)

	port0 := g.Nodes[g.NodeByName("c0.dst").PortNodes[0]]
	port1 := g.Nodes[g.NodeByName("c0.dst").PortNodes[1]]
	addOp := dfgG.OpByName("s")
	// Commutative: both ports accept either operand.
	if !g.CompatibleSink(port0, addOp, 1) || !g.CompatibleSink(port1, addOp, 0) {
		t.Error("commutative add should terminate on either port")
	}
	// Non-commutative: operand index must match the port.
	if g.CompatibleSink(port0, subOp, 1) || !g.CompatibleSink(port0, subOp, 0) {
		t.Error("sub operand 1 must not terminate on port 0")
	}
	// Unsupported op kind.
	mulOp, _ := dfgG.AddOp("m", dfg.Mul, x, y)
	if g.CompatibleSink(port0, mulOp, 0) {
		t.Error("dst does not support mul")
	}
	// Non-port nodes are never sinks.
	if g.CompatibleSink(g.NodeByName("c0.mux"), addOp, 0) {
		t.Error("mux node accepted as sink")
	}
}

func TestWriteDOT(t *testing.T) {
	g, err := Generate(muxRegArch(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cluster_ctx0", "cluster_ctx1", "style=dashed", "shape=box"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Graph {
		g, err := Generate(muxRegArch(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := fresh()
	g.Nodes[3].ID = 99
	if err := g.Validate(); err == nil {
		t.Error("ID corruption undetected")
	}
	g = fresh()
	// Break reciprocity.
	for _, n := range g.Nodes {
		if len(n.Fanouts) > 0 {
			n.Fanouts[0] = (n.Fanouts[0] + 1) % len(g.Nodes)
			break
		}
	}
	if err := g.Validate(); err == nil {
		t.Error("reciprocity corruption undetected")
	}
	g = fresh()
	// An ungated cycle: two fresh single-fanin routing nodes feeding
	// each other (no multi-fanin node on the cycle).
	a := &Node{ID: len(g.Nodes), Kind: RouteRes, Name: "loop.a", OperandPort: -1, FUNode: -1, OutNode: -1}
	g.Nodes = append(g.Nodes, a)
	g.byName[a.Name] = a.ID
	b := &Node{ID: len(g.Nodes), Kind: RouteRes, Name: "loop.b", OperandPort: -1, FUNode: -1, OutNode: -1}
	g.Nodes = append(g.Nodes, b)
	g.byName[b.Name] = b.ID
	a.Fanouts = []int{b.ID}
	a.Fanins = []int{b.ID}
	b.Fanouts = []int{a.ID}
	b.Fanins = []int{a.ID}
	if err := g.Validate(); err == nil {
		t.Error("ungated cycle undetected")
	}
}
