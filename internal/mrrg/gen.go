package mrrg

import (
	"fmt"
	"strconv"

	"cgramap/internal/arch"
	"cgramap/internal/dfg"
)

// countNodes computes the exact node count Generate will create, so the
// node arena and name index can be sized once up front. The formula
// mirrors the expansion switch in Generate exactly.
func countNodes(a *arch.Arch) int {
	N := a.Contexts
	total := 0
	for _, p := range a.Prims {
		switch p.Kind {
		case arch.Wire:
			total += N
		case arch.Mux:
			total += N * (1 + p.NIn)
		case arch.Reg:
			total += 2 * N
		case arch.FU:
			if p.II > 0 && N%p.II == 0 {
				total += (N / p.II) * (2 + p.NIn)
			}
		}
	}
	return total
}

// Generate expands an architecture into its MRRG with one replica per
// execution context (paper §3.2).
//
// Primitive expansion (Figs. 1–3), per context c:
//
//   - Wire:  one RouteRes node.
//   - Mux:   one RouteRes pin node per selectable input feeding one
//     internal RouteRes node (paper Fig. 1). The internal node guarantees
//     exclusivity to a single input on any cycle, and the pin nodes are
//     what make the Multiplexer Input Exclusivity constraint sound: a
//     value occupies a pin only when it actually enters this multiplexer,
//     not merely because its driver fans out past it. (The paper's
//     separate mux output node has a single fanin and is contracted into
//     the internal node — a pure contraction that preserves semantics.)
//   - Reg:   an input node in context c and an output node in context
//     (c+1) mod N — the special wire that moves a value to the next cycle.
//   - FU(L, II): at each firing context (c mod II == 0): one RouteRes
//     port node per operand, a FuncUnit node, and a RouteRes output node
//     in context (c+L) mod N (Fig. 2: a latency-2 II-2 unit has its output
//     two cycles later and is replicated every second context only).
//
// Device models are regenerated on every mapping request (and the job
// service rebuilds them per job), so generation is a measured hot path:
// nodes come from one contiguous arena, adjacency lists are carved from
// two exact-size edge arenas, and names are assembled from pre-computed
// context prefixes instead of fmt.
func Generate(a *arch.Arch) (*Graph, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("mrrg: invalid architecture: %w", err)
	}
	N := a.Contexts
	total := countNodes(a)
	g := &Graph{
		Arch:     a,
		Contexts: N,
		Nodes:    make([]*Node, 0, total),
		byName:   make(map[string]int, total),
	}
	// One contiguous arena for all nodes; &arena[i] stays valid because
	// the exact capacity is precomputed (addNode falls back to the heap
	// if the count formula ever drifts from the expansion rules).
	arena := make([]Node, 0, total)

	// ctxPrefix[c] is "c<c>." — shared by every node name in context c.
	ctxPrefix := make([]string, N)
	for c := range ctxPrefix {
		ctxPrefix[c] = "c" + strconv.Itoa(c) + "."
	}

	addNode := func(name string, kind NodeKind, ctx, prim int) *Node {
		if _, dup := g.byName[name]; dup {
			panic(fmt.Sprintf("mrrg: duplicate node name %q", name))
		}
		var n *Node
		if len(arena) < cap(arena) {
			arena = append(arena, Node{})
			n = &arena[len(arena)-1]
		} else {
			n = &Node{}
		}
		*n = Node{
			ID:          len(g.Nodes),
			Kind:        kind,
			Name:        name,
			Context:     ctx,
			Prim:        prim,
			Cost:        a.Prims[prim].Cost,
			OperandPort: -1,
			PinPort:     -1,
			FUNode:      -1,
			OutNode:     -1,
		}
		g.Nodes = append(g.Nodes, n)
		g.byName[name] = n.ID
		if kind == FuncUnit {
			g.funcUnits = append(g.funcUnits, n.ID)
		}
		return n
	}

	// Edges are collected flat and materialised into exact-size
	// adjacency arenas once all nodes exist, so no per-node slice has
	// to grow incrementally.
	type edge struct{ from, to int32 }
	edges := make([]edge, 0, total*2)
	addEdge := func(from, to int) {
		edges = append(edges, edge{int32(from), int32(to)})
	}

	// inOf[prim][port][ctx] and outOf[prim][ctx] record the node that
	// receives external connections into / out of each primitive at
	// each context (-1 where the primitive has no presence, e.g. an
	// II=2 FU on an odd context).
	inOf := make([][][]int, len(a.Prims))
	outOf := make([][]int, len(a.Prims))
	for pi, p := range a.Prims {
		inOf[pi] = make([][]int, p.NIn)
		for port := range inOf[pi] {
			inOf[pi][port] = fill(N, -1)
		}
		outOf[pi] = fill(N, -1)
	}

	for pi, p := range a.Prims {
		switch p.Kind {
		case arch.Wire:
			for c := 0; c < N; c++ {
				n := addNode(ctxPrefix[c]+p.Name, RouteRes, c, pi)
				inOf[pi][0][c] = n.ID
				outOf[pi][c] = n.ID
			}
		case arch.Mux:
			for c := 0; c < N; c++ {
				base := ctxPrefix[c] + p.Name
				m := addNode(base, RouteRes, c, pi)
				for port := 0; port < p.NIn; port++ {
					pin := addNode(base+".in"+strconv.Itoa(port), RouteRes, c, pi)
					pin.PinPort = port
					addEdge(pin.ID, m.ID)
					inOf[pi][port][c] = pin.ID
				}
				outOf[pi][c] = m.ID
			}
		case arch.Reg:
			ins := make([]int, N)
			outs := make([]int, N)
			for c := 0; c < N; c++ {
				ins[c] = addNode(ctxPrefix[c]+p.Name+".in", RouteRes, c, pi).ID
			}
			for c := 0; c < N; c++ {
				outs[c] = addNode(ctxPrefix[c]+p.Name+".out", RouteRes, c, pi).ID
			}
			for c := 0; c < N; c++ {
				addEdge(ins[c], outs[(c+1)%N])
				inOf[pi][0][c] = ins[c]
				outOf[pi][c] = outs[c]
			}
		case arch.FU:
			// The modulo wheel only closes consistently when the
			// firing pattern repeats within it: II must divide
			// the context count (II=1 always does).
			if N%p.II != 0 {
				return nil, fmt.Errorf("mrrg: FU %q has II %d, which does not divide the %d contexts",
					p.Name, p.II, N)
			}
			for c := 0; c < N; c++ {
				if c%p.II != 0 {
					continue
				}
				base := ctxPrefix[c] + p.Name
				fu := addNode(base, FuncUnit, c, pi)
				fu.Ops = p.Ops
				fu.PortNodes = make([]int, p.NIn)
				for port := 0; port < p.NIn; port++ {
					pn := addNode(base+".in"+strconv.Itoa(port), RouteRes, c, pi)
					pn.OperandPort = port
					pn.FUNode = fu.ID
					fu.PortNodes[port] = pn.ID
					addEdge(pn.ID, fu.ID)
					inOf[pi][port][c] = pn.ID
				}
				oc := (c + p.Latency) % N
				on := addNode(base+".out", RouteRes, oc, pi)
				on.FUNode = fu.ID
				fu.OutNode = on.ID
				addEdge(fu.ID, on.ID)
				outOf[pi][oc] = on.ID
			}
		}
	}

	// External connections: context-aligned edges wherever both
	// endpoints exist.
	for _, conn := range a.Conns {
		for c := 0; c < N; c++ {
			src := outOf[conn.Src][c]
			dst := inOf[conn.Dst][conn.DstPort][c]
			if src >= 0 && dst >= 0 {
				addEdge(src, dst)
			}
		}
	}

	// Materialise adjacency: count degrees, carve per-node slices out
	// of two shared arenas (full-slice expressions, so a later append
	// by a caller reallocates instead of clobbering a neighbour).
	fanoutCnt := make([]int32, len(g.Nodes))
	faninCnt := make([]int32, len(g.Nodes))
	for _, e := range edges {
		fanoutCnt[e.from]++
		faninCnt[e.to]++
	}
	fanoutArena := make([]int, len(edges))
	faninArena := make([]int, len(edges))
	fo, fi := 0, 0
	for id, n := range g.Nodes {
		n.Fanouts = fanoutArena[fo : fo : fo+int(fanoutCnt[id])]
		fo += int(fanoutCnt[id])
		n.Fanins = faninArena[fi : fi : fi+int(faninCnt[id])]
		fi += int(faninCnt[id])
	}
	for _, e := range edges {
		from, to := g.Nodes[e.from], g.Nodes[e.to]
		from.Fanouts = from.Fanouts[:len(from.Fanouts)+1]
		from.Fanouts[len(from.Fanouts)-1] = int(e.to)
		to.Fanins = to.Fanins[:len(to.Fanins)+1]
		to.Fanins[len(to.Fanins)-1] = int(e.from)
	}

	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func fill(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// CompatibleSink reports whether a routing node can be the termination
// point of a sub-value destined for operand index `operand` of operation
// op: the node must be an FU operand port whose FU supports the
// operation, on the matching port (any port for commutative binary
// operations — paper constraint 6 "operand correctness").
func (g *Graph) CompatibleSink(n *Node, op *dfg.Op, operand int) bool {
	if n.OperandPort < 0 {
		return false
	}
	fu := g.Nodes[n.FUNode]
	if !fu.SupportsOp(op.Kind) {
		return false
	}
	if op.Kind.Commutative() && len(op.In) == 2 {
		return true
	}
	return n.OperandPort == operand
}
