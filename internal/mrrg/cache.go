package mrrg

import (
	"container/list"
	"sync"

	"cgramap/internal/arch"
)

// Cache is a bounded, concurrency-safe store of generated MRRGs, keyed
// by (arch.Fingerprint(), context count). Architecture exploration —
// the paper's motivating workload — re-maps many DFGs over the same
// fabric at the same II ladder, so the same graphs are regenerated over
// and over; the cache makes every repeat a pointer copy.
//
// Entries are content-addressed: the key is derived purely from the
// architecture's semantic structure, so two *arch.Arch values that
// describe the same fabric share one entry, and any semantic edit
// (another FU operation set, a rewired connection, a different context
// count) misses by construction. Cached graphs are shared between
// callers and must be treated as immutable — every consumer in this
// repository already does (the mapper reads, never writes, its MRRG).
//
// Concurrent misses on one key are single-flighted: the first caller
// generates, the rest wait for that one generation instead of
// duplicating it. Generation errors (an FU initiation interval that
// does not divide the context count) are returned to every waiter but
// never cached — they are cheap to recompute and callers treat them as
// per-II infeasibility, not persistent state.
type Cache struct {
	mu       sync.Mutex
	cap      int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight

	hits      int64
	misses    int64
	evictions int64
	bytes     int64 // approximate retained size of cached graphs
}

type mrrgEntry struct {
	key   string
	g     *Graph
	bytes int64
}

type flight struct {
	done chan struct{}
	g    *Graph
	err  error
}

// NewCache returns a cache bounded to the given number of graphs. A
// zero or negative capacity disables caching: Generate then always
// builds from scratch (still single-flighted per key, so concurrent
// identical requests share one build).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:      capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	// Bytes approximates the retained size of all cached graphs (node
	// structs, adjacency, names, and the by-name index).
	Bytes int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
		Bytes:     c.bytes,
	}
}

// Generate returns the MRRG for a, from cache when present. The
// returned graph is shared: callers must not modify it.
func (c *Cache) Generate(a *arch.Arch) (*Graph, error) {
	key := cacheKey(a)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		g := el.Value.(*mrrgEntry).g
		c.mu.Unlock()
		return g, nil
	}
	if fl, ok := c.inflight[key]; ok {
		// Someone else is generating this exact graph; share their
		// result instead of duplicating the work. The waiter still
		// counts as a hit: no second generation happened.
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.g, fl.err
	}
	c.misses++
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.g, fl.err = Generate(a)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil && c.cap > 0 {
		size := approxBytes(fl.g)
		c.entries[key] = c.order.PushFront(&mrrgEntry{key: key, g: fl.g, bytes: size})
		c.bytes += size
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			e := oldest.Value.(*mrrgEntry)
			delete(c.entries, e.key)
			c.bytes -= e.bytes
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.g, fl.err
}

// cacheKey derives the content-addressed key (fingerprint, II). The
// fingerprint already covers Contexts, but the context count is appended
// explicitly so the key scheme matches its specification and stays
// correct even if the fingerprint's coverage ever changes.
func cacheKey(a *arch.Arch) string {
	return a.Fingerprint() + "/" + itoa(a.Contexts)
}

// itoa is a minimal non-negative integer formatter (avoids strconv for
// a two-digit hot-path key suffix).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// approxBytes estimates the retained size of a graph: the node structs,
// their adjacency and port slices, names, and the by-name index. It is
// an estimate for capacity accounting and metrics, not an exact
// measurement.
func approxBytes(g *Graph) int64 {
	// Node struct: ~11 words of scalars plus 4 slice headers ≈ 184
	// bytes on 64-bit, rounded up for allocator slack.
	const nodeOverhead = 192
	const mapEntryOverhead = 48 // bucket slot + string header
	b := int64(len(g.Nodes)) * (nodeOverhead + mapEntryOverhead)
	for _, n := range g.Nodes {
		b += int64(2 * len(n.Name)) // name bytes, once per struct + once per map key
		b += int64(8 * (len(n.Fanouts) + len(n.Fanins) + len(n.PortNodes)))
		b += int64(len(n.Ops))
	}
	b += int64(8 * len(g.funcUnits))
	return b
}
