package sched

import (
	"testing"

	"cgramap/internal/arch"
	"cgramap/internal/bench"
	"cgramap/internal/dfg"
	"cgramap/internal/mrrg"
)

func singleCtxMRRG(t *testing.T, spec arch.GridSpec) *mrrg.Graph {
	t.Helper()
	spec.Contexts = 1
	a, err := arch.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mrrg.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

func TestLevelsChain(t *testing.T) {
	g := dfg.New("chain")
	x := g.In("x")
	a := g.Add("a", x, x)
	b := g.Add("b", a, x)
	g.Out("o", b)
	l, err := ComputeLevels(g)
	if err != nil {
		t.Fatal(err)
	}
	if l.Depth != 3 {
		t.Errorf("depth = %d, want 3", l.Depth)
	}
	// x is needed directly by both adds: it has zero mobility only if
	// on the critical path; here ASAP(x)=0, ALAP(x)=... x feeds b at
	// level 2, so ALAP(x)=1? No: ALAP = depth - tail; tail(x) = 3.
	if l.ASAP[g.OpByName("x").ID] != 0 || l.Mobility(g.OpByName("x").ID) != 0 {
		t.Errorf("x: asap=%d mobility=%d", l.ASAP[g.OpByName("x").ID], l.Mobility(g.OpByName("x").ID))
	}
	if l.ASAP[g.OpByName("o").ID] != 3 || l.ALAP[g.OpByName("o").ID] != 3 {
		t.Errorf("o levels wrong")
	}
}

func TestLevelsMobility(t *testing.T) {
	// Diamond with a short side: the short-side op has slack.
	g := dfg.New("d")
	x := g.In("x")
	l1 := g.Add("l1", x, x)
	l2 := g.Add("l2", l1, x)
	short := g.Add("short", x, x)
	join := g.Add("join", l2, short)
	g.Out("o", join)
	l, err := ComputeLevels(g)
	if err != nil {
		t.Fatal(err)
	}
	if l.Mobility(g.OpByName("short").ID) != 1 {
		t.Errorf("short mobility = %d, want 1", l.Mobility(g.OpByName("short").ID))
	}
	if l.Mobility(g.OpByName("l1").ID) != 0 {
		t.Errorf("l1 mobility = %d, want 0 (critical)", l.Mobility(g.OpByName("l1").ID))
	}
}

func TestLevelsRejectCycles(t *testing.T) {
	g := dfg.New("loop")
	a := g.In("a")
	op, _ := g.AddOp("acc", dfg.Add, a, a)
	old := op.In[1]
	op.In[1] = op.Out
	old.Uses = old.Uses[:1]
	op.Out.Uses = append(op.Out.Uses, dfg.Use{Op: op, Operand: 1})
	if _, err := ComputeLevels(g); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestResMIIMultipliers(t *testing.T) {
	hetero := singleCtxMRRG(t, arch.GridSpec{Rows: 4, Cols: 4})
	homo := singleCtxMRRG(t, arch.GridSpec{Rows: 4, Cols: 4, Homogeneous: true})

	// mult_16: 15 multiplies. Hetero has 8 multiplier slots -> ResMII
	// 2; homo has 16 -> ResMII 1.
	g := bench.MustGet("mult_16")
	if mii, err := ResMII(g, hetero); err != nil || mii != 2 {
		t.Errorf("hetero ResMII = %d, %v; want 2", mii, err)
	}
	if mii, err := ResMII(g, homo); err != nil || mii != 1 {
		t.Errorf("homo ResMII = %d, %v; want 1", mii, err)
	}
	// extreme: 19 ALU ops on 16 ALUs -> ResMII 2 even homogeneous.
	if mii, err := ResMII(bench.MustGet("extreme"), homo); err != nil || mii != 2 {
		t.Errorf("extreme homo ResMII = %d, %v; want 2", mii, err)
	}
}

func TestResMIIUnsupported(t *testing.T) {
	mg := singleCtxMRRG(t, arch.GridSpec{Rows: 2, Cols: 2})
	g := dfg.New("d")
	x := g.In("x")
	op, _ := g.AddOp("q", dfg.Div, x, x)
	g.Out("o", op.Out)
	if _, err := ResMII(g, mg); err == nil {
		t.Error("unsupported kind accepted")
	}
	// Multi-context MRRG rejected.
	spec := arch.GridSpec{Rows: 2, Cols: 2, Contexts: 2}
	a, _ := arch.Grid(spec)
	mg2, _ := mrrg.Generate(a)
	if _, err := ResMII(bench.MustGet("accum"), mg2); err == nil {
		t.Error("multi-context MRRG accepted")
	}
}

func TestRecMII(t *testing.T) {
	// Acyclic: 1.
	if got := RecMII(bench.MustGet("accum")); got != 1 {
		t.Errorf("acyclic RecMII = %d", got)
	}
	// Two-op recurrence: acc = add(x, t), t = not(acc) -> cycle length 2.
	g := dfg.New("rec2")
	x := g.In("x")
	acc, _ := g.AddOp("acc", dfg.Add, x, x)
	not, _ := g.AddOp("neg", dfg.Not, acc.Out)
	// back-edge: acc operand 1 := not's output
	old := acc.In[1]
	acc.In[1] = not.Out
	old.Uses = old.Uses[:1]
	not.Out.Uses = append(not.Out.Uses, dfg.Use{Op: acc, Operand: 1})
	g.Out("o", acc.Out)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := RecMII(g); got != 2 {
		t.Errorf("RecMII = %d, want 2", got)
	}
}

func TestMIICombines(t *testing.T) {
	hetero := singleCtxMRRG(t, arch.GridSpec{Rows: 4, Cols: 4})
	mii, err := MII(bench.MustGet("cos_4"), hetero)
	if err != nil {
		t.Fatal(err)
	}
	// 12 multiplies vs 8 slots -> 2.
	if mii != 2 {
		t.Errorf("cos_4 hetero MII = %d, want 2", mii)
	}
}

func TestAllBenchmarksMIIAtMostTwo(t *testing.T) {
	// The paper maps every benchmark with two contexts on homogeneous
	// hardware; the MII bound must agree (<= 2 on homo).
	homo := singleCtxMRRG(t, arch.GridSpec{Rows: 4, Cols: 4, Homogeneous: true})
	for _, name := range bench.Names() {
		mii, err := MII(bench.MustGet(name), homo)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if mii > 2 {
			t.Errorf("%s: MII = %d > 2 contradicts the paper's dual-context results", name, mii)
		}
	}
}
