// Package sched provides classical modulo-scheduling analyses over DFG /
// architecture pairs: ASAP/ALAP levels and mobility, the
// resource-constrained minimum initiation interval (ResMII) and the
// recurrence-constrained minimum II (RecMII).
//
// The MRRG frames modulo scheduling inside the mapping problem (paper
// §3.2-3.3): an architecture operated with N contexts realises II = N, so
// MII = max(ResMII, RecMII) is a sound lower bound on the context count
// any feasible mapping needs. The ILP mapper uses it as an additional
// counting presolve, and architects can use it to pick the context count
// to evaluate (the paper's single- vs dual-context axis).
package sched

import (
	"fmt"

	"cgramap/internal/dfg"
	"cgramap/internal/mrrg"
)

// Levels holds ASAP/ALAP schedules of an acyclic DFG in unit-latency
// levels.
type Levels struct {
	// ASAP[opID] is the earliest level of the operation (sources at 0).
	ASAP []int
	// ALAP[opID] is the latest level not extending the critical path.
	ALAP []int
	// Depth is the critical path length in levels.
	Depth int
}

// Mobility returns ALAP-ASAP slack of an operation: 0 means
// critical-path.
func (l *Levels) Mobility(opID int) int { return l.ALAP[opID] - l.ASAP[opID] }

// ComputeLevels derives ASAP/ALAP levels. It fails on cyclic graphs
// (loop-carried back-edges have no acyclic levelisation; see RecMII).
func ComputeLevels(g *dfg.Graph) (*Levels, error) {
	if !g.Acyclic() {
		return nil, fmt.Errorf("sched: %s has back-edges; levels undefined", g.Name)
	}
	n := g.NumOps()
	l := &Levels{ASAP: make([]int, n), ALAP: make([]int, n)}

	// ASAP: longest path from sources, memoised DFS.
	memo := make([]int, n)
	for i := range memo {
		memo[i] = -1
	}
	var asap func(op *dfg.Op) int
	asap = func(op *dfg.Op) int {
		if memo[op.ID] >= 0 {
			return memo[op.ID]
		}
		level := 0
		for _, v := range op.In {
			if d := asap(v.Def) + 1; d > level {
				level = d
			}
		}
		memo[op.ID] = level
		return level
	}
	for _, op := range g.Ops() {
		l.ASAP[op.ID] = asap(op)
		if l.ASAP[op.ID] > l.Depth {
			l.Depth = l.ASAP[op.ID]
		}
	}

	// ALAP: longest path to sinks, subtracted from the depth.
	down := make([]int, n)
	for i := range down {
		down[i] = -1
	}
	var tail func(op *dfg.Op) int
	tail = func(op *dfg.Op) int {
		if down[op.ID] >= 0 {
			return down[op.ID]
		}
		level := 0
		if op.Out != nil {
			for _, u := range op.Out.Uses {
				if d := tail(u.Op) + 1; d > level {
					level = d
				}
			}
		}
		down[op.ID] = level
		return level
	}
	for _, op := range g.Ops() {
		l.ALAP[op.ID] = l.Depth - tail(op)
	}
	return l, nil
}

// ResMII computes the resource-constrained minimum initiation interval
// using Hall-type counting bounds: for a set K of operation kinds, the
// ops needing K fit only on functional units supporting some kind of K,
// so II >= ceil(ops(K) / slots(K)). The bound is evaluated for every
// union of the architecture's FU-class kind sets (functional units
// grouped by identical supported-operation sets), which covers both the
// per-kind bounds and aggregates like "19 ALU operations on 16 ALUs".
// The architecture is inspected through its single-context MRRG so that
// FU initiation intervals are respected.
func ResMII(g *dfg.Graph, mg *mrrg.Graph) (int, error) {
	if mg.Contexts != 1 {
		return 0, fmt.Errorf("sched: ResMII wants a single-context MRRG (got %d contexts)", mg.Contexts)
	}
	// Group FUs into classes by supported-kind signature. Slot counts
	// are in 1/II units scaled by lcmBase.
	type class struct {
		kinds map[dfg.Kind]bool
		slots int
	}
	classes := make(map[string]*class)
	for _, id := range mg.FuncUnits() {
		node := mg.Nodes[id]
		sig := ""
		for _, k := range dfg.Kinds() {
			if node.SupportsOp(k) {
				sig += k.String() + ","
			}
		}
		c := classes[sig]
		if c == nil {
			c = &class{kinds: make(map[dfg.Kind]bool)}
			for _, k := range node.Ops {
				c.kinds[k] = true
			}
			classes[sig] = c
		}
		c.slots += lcmBase / mg.Arch.Prims[node.Prim].II
	}
	classList := make([]*class, 0, len(classes))
	for _, c := range classes {
		classList = append(classList, c)
	}
	if len(classList) > 16 {
		return 0, fmt.Errorf("sched: %d FU classes exceed the enumeration bound", len(classList))
	}

	counts := make(map[dfg.Kind]int)
	for _, op := range g.Ops() {
		counts[op.Kind]++
	}
	// Every used kind must be supported somewhere.
	for k := range counts {
		supported := false
		for _, c := range classList {
			if c.kinds[k] {
				supported = true
				break
			}
		}
		if !supported {
			return 0, fmt.Errorf("sched: no functional unit supports %s", k)
		}
	}

	mii := 1
	// Per-kind singleton bounds (e.g. 15 multiplies on 8 multiplier
	// slots), which unions of whole class kind-sets cannot express.
	for k, n := range counts {
		slots := 0
		for _, c := range classList {
			if c.kinds[k] {
				slots += c.slots
			}
		}
		if ii := (n*lcmBase + slots - 1) / slots; ii > mii {
			mii = ii
		}
	}
	for mask := 1; mask < 1<<len(classList); mask++ {
		kindSet := make(map[dfg.Kind]bool)
		for i, c := range classList {
			if mask&(1<<i) != 0 {
				for k := range c.kinds {
					kindSet[k] = true
				}
			}
		}
		ops := 0
		for k, n := range counts {
			if kindSet[k] {
				ops += n
			}
		}
		if ops == 0 {
			continue
		}
		slots := 0
		for _, c := range classList {
			for k := range c.kinds {
				if kindSet[k] {
					slots += c.slots
					break
				}
			}
		}
		ii := (ops*lcmBase + slots - 1) / slots
		if ii > mii {
			mii = ii
		}
	}
	return mii, nil
}

// lcmBase scales fractional slot counts (1/II) to integers; supports FU
// IIs up to 12 exactly.
const lcmBase = 27720

// RecMII computes the recurrence-constrained minimum II: the maximum over
// dependence cycles of ceil(latency/distance). With the unit-distance
// back-edge model used here (a back-edge carries the value one iteration
// forward), this is the length of the longest elementary dependence
// cycle. Returns 1 for acyclic graphs. Cycle enumeration is exponential
// in general; kernels here have few back-edges, and the search is bounded
// by maxCycleLen.
func RecMII(g *dfg.Graph) int {
	const maxCycleLen = 64
	best := 1
	n := g.NumOps()
	onPath := make([]bool, n)
	var dfs func(start, cur *dfg.Op, depth int)
	dfs = func(start, cur *dfg.Op, depth int) {
		if depth > maxCycleLen {
			return
		}
		if cur.Out == nil {
			return
		}
		for _, u := range cur.Out.Uses {
			next := u.Op
			if next == start {
				if depth > best {
					best = depth
				}
				continue
			}
			// Only explore from the smallest-ID op of a cycle to
			// avoid counting rotations.
			if next.ID < start.ID || onPath[next.ID] {
				continue
			}
			onPath[next.ID] = true
			dfs(start, next, depth+1)
			onPath[next.ID] = false
		}
	}
	for _, op := range g.Ops() {
		dfs(op, op, 1)
	}
	return best
}

// MII returns max(ResMII, RecMII): the smallest context count that could
// possibly map the graph onto the architecture.
func MII(g *dfg.Graph, singleCtx *mrrg.Graph) (int, error) {
	res, err := ResMII(g, singleCtx)
	if err != nil {
		return 0, err
	}
	rec := RecMII(g)
	if rec > res {
		return rec, nil
	}
	return res, nil
}
